(* Guaranteed service: the paper's intolerant client (Section 2.3 imagines a
   surgeon assisting remotely over a video link — no service interruption is
   acceptable, so the client takes the traditional worst-case contract).

   The surgery video reserves a clock rate equal to its token-bucket rate
   and gets the Parekh-Gallager worst-case bound.  The same link also
   carries deliberately hostile traffic: a greedy source blasting far above
   its share into the datagram class.  The guaranteed flow's measured
   worst-case delay stays under its precomputed bound no matter what the
   hostile source does — that is what "guaranteed" means.

   Run with: dune exec examples/remote_surgery.exe *)

open Ispn_sim
module Service = Csz.Service
module Spec = Ispn_admission.Spec

let () =
  let engine = Engine.create () in
  let svc = Service.create ~engine ~n_switches:3 () in
  Service.start svc;

  (* 300 kbit/s of video, bursty within a (300 pkt/s, 20 packet) bucket;
     the client asks for a clock rate equal to its bucket rate. *)
  let video_bucket = Spec.bucket ~rate_pps:300. ~depth_packets:20. () in
  let delays = Ispn_util.Fvec.create () in
  let video =
    match
      Service.request svc ~flow:1 ~ingress:0 ~egress:2
        ~own_bucket:video_bucket
        (Spec.Guaranteed { clock_rate_bps = 300_000. })
        ~sink:(fun pkt ->
          Ispn_util.Fvec.push delays (Packet.qdelay_total pkt);
          Packet.free pkt)
    with
    | Ok est -> est
    | Error e -> failwith ("video rejected: " ^ e)
  in
  let bound =
    match video.Service.advertised_bound with
    | Some b -> b
    | None -> assert false
  in
  Printf.printf
    "Surgery video admitted; Parekh-Gallager queueing bound: %.1f ms\n"
    (1000. *. bound);

  (* Conforming emission: a greedy-but-honest source that keeps its own
     token bucket exactly empty — the paper's worst case for the bound. *)
  let video_source =
    Ispn_traffic.Greedy.create ~engine ~flow:1 ~rate_pps:300.
      ~burst_packets:20 ~emit:video.Service.emit ()
  in

  (* The attacker: a datagram source flooding at well over the leftover
     capacity.  No reservation, no conformance, no mercy. *)
  let flood =
    match
      Service.request svc ~flow:66 ~ingress:0 ~egress:2 Spec.Datagram
        ~sink:(fun _ -> ())
    with
    | Ok est -> est
    | Error _ -> assert false
  in
  let flood_source =
    Ispn_traffic.Greedy.create ~engine ~flow:66 ~rate_pps:900.
      ~burst_packets:100 ~emit:flood.Service.emit ()
  in

  video_source.Ispn_traffic.Source.start ();
  flood_source.Ispn_traffic.Source.start ();
  Engine.run engine ~until:120.;

  let worst =
    Ispn_util.Fvec.fold Stdlib.max 0. delays
  in
  Printf.printf
    "Video packets delivered: %d; worst observed queueing delay: %.1f ms\n"
    (Ispn_util.Fvec.length delays) (1000. *. worst);
  Printf.printf "Flood packets offered alongside: %d\n"
    (flood_source.Ispn_traffic.Source.generated ());
  if worst <= bound then
    Printf.printf
      "\nThe worst case stayed under the precomputed bound (%.1f <= %.1f \
       ms)\neven though the datagram flood ran unconstrained: WFQ isolation \
       at work.\n"
      (1000. *. worst) (1000. *. bound)
  else
    Printf.printf "\nBOUND VIOLATED — this would be a bug.\n"
