(* Adaptive audio: the paper's motivating application (Section 2).

   A packet-voice conference crosses a four-switch network carrying bursty
   predicted-service traffic.  Two receivers play back the same audio flow:

   - a RIGID one that sets its play-back point once, to the a-priori bound
     the network advertised, and never moves it;
   - an ADAPTIVE one (in the spirit of VT/VAT) that measures arriving
     delays and keeps its play-back point at the 99th percentile of the
     recent past plus a small margin, adjusting silent periods to absorb
     the changes.

   The adaptive client ends up with a far earlier play-back point — i.e. a
   far more interactive conversation — at the price of a small packet loss
   when the network shifts under it.

   Run with: dune exec examples/adaptive_audio.exe *)

open Ispn_sim
module Service = Csz.Service
module Spec = Ispn_admission.Spec

let () =
  let engine = Engine.create () in
  let svc = Service.create ~engine ~n_switches:4 () in
  Service.start svc;
  let prng = Ispn_util.Prng.create ~seed:7L in

  (* The audio flow: 64 kbit/s voice = 64 pkt/s of 1000-bit packets, bursty
     with talk spurts (on/off), requesting predicted service with a loose
     200 ms end-to-end target. *)
  let rigid = Ispn_playback.Client.rigid ~bound:0.2 in
  let adaptive =
    Ispn_playback.Client.adaptive ~window:200 ~quantile:0.99 ~margin:0.002 ()
  in
  let audio_request =
    Spec.Predicted
      {
        bucket = Spec.bucket ~rate_pps:64. ~depth_packets:30. ();
        target_delay = 0.2;
        target_loss = 0.01;
      }
  in
  let audio =
    match
      Service.request svc ~flow:0 ~ingress:0 ~egress:3 audio_request
        ~sink:(fun pkt ->
          let delay = Engine.now engine -. Packet.created pkt in
          Packet.free pkt;
          Ispn_playback.Client.receive rigid ~delay;
          Ispn_playback.Client.receive adaptive ~delay)
    with
    | Ok est -> est
    | Error e -> failwith ("audio flow rejected: " ^ e)
  in
  (match audio.Service.advertised_bound with
  | Some b ->
      Printf.printf
        "Audio admitted in class %s; advertised a-priori bound: %.0f ms\n"
        (match audio.Service.cls with Some c -> string_of_int c | None -> "-")
        (1000. *. b);
      (* The rigid client pins its play-back point to that bound. *)
      ignore b
  | None -> ());
  let audio_source =
    Ispn_traffic.Onoff.create ~engine ~prng:(Ispn_util.Prng.split prng)
      ~flow:0 ~avg_rate_pps:64. ~emit:audio.Service.emit ()
  in

  (* Bursty background flows keep asking to share the path; the admission
     controller takes as many as the class delay targets allow and refuses
     the rest — refusals here are the architecture working, not an error. *)
  let background =
    List.filter_map
      (fun i ->
        let flow = 10 + i in
        let request =
          Spec.Predicted
            {
              bucket = Spec.bucket ~rate_pps:110. ~depth_packets:20. ();
              target_delay = 0.2;
              target_loss = 0.01;
            }
        in
        match
          Service.request svc ~flow ~ingress:0 ~egress:3 request
            ~sink:(fun _ -> ())
        with
        | Ok est ->
            Some
              (Ispn_traffic.Onoff.create ~engine
                 ~prng:(Ispn_util.Prng.split prng) ~flow ~avg_rate_pps:110.
                 ~emit:est.Service.emit ())
        | Error reason ->
            Printf.printf "background flow %d refused (%s)\n" flow reason;
            None)
      (List.init 7 Fun.id)
  in
  Printf.printf "%d of 7 background flows admitted\n"
    (List.length background);

  audio_source.Ispn_traffic.Source.start ();
  List.iter (fun s -> s.Ispn_traffic.Source.start ()) background;
  Engine.run engine ~until:300.;

  let report name client =
    Printf.printf
      "%-9s play-back point %6.1f ms (mean), application loss %5.2f%% over \
       %d packets\n"
      name
      (1000. *. Ispn_playback.Client.mean_playback_point client)
      (100. *. Ispn_playback.Client.loss_rate client)
      (Ispn_playback.Client.received client)
  in
  print_newline ();
  report "rigid" rigid;
  report "adaptive" adaptive;
  Printf.printf
    "\nThe adaptive receiver holds the conversation at a fraction of the \
     rigid delay\nby gambling that the recent past predicts the near future \
     (Section 2.3).\n"
