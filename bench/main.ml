(* Benchmark harness: regenerates every table and figure of Clark, Shenker &
   Zhang (SIGCOMM 1992) plus the extension experiments, and microbenchmarks
   the per-packet cost of each scheduler.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe table2     # one section
     dune exec bench/main.exe -- --fast  # 60 s runs instead of 600 s
     dune exec bench/main.exe -- -j 4    # fan runs over 4 domains

   Absolute numbers need not match the paper (different simulator details);
   the shapes are what the harness demonstrates, and the paper's reference
   values are printed alongside for comparison.

   Stdout is a function of (sections, duration, seed) only — timing goes to
   stderr and the fan-out is deterministic, so `-j N` output is byte-
   identical to `-j 1` for every N. *)

module E = Csz.Experiment
module X = Csz.Extensions
module Pool = Ispn_exec.Pool
module Table = Ispn_util.Table

let duration = ref Ispn_util.Units.sim_duration_s
let jobs = ref (Pool.default_jobs ())
let shards = ref 1
let json = ref false
let metrics_file : string option ref = ref None
let series_file : string option ref = ref None
let trace_cap : int option ref = ref None
let debug = ref false
let seed = 42L

(* Per-run metrics snapshots accumulate here (in canonical section/job
   order) and are written once at exit when --metrics FILE was given. *)
let collected : (string * Ispn_obs.Metrics.snapshot) list ref = ref []
let obs_on () = !metrics_file <> None || !debug
let series_on () = !series_file <> None

(* Sampled timelines accumulate the same way and are written once at exit
   when --series FILE was given; stdout never mentions them, so --series
   alone leaves the default output untouched. *)
let collected_series : (string * Ispn_obs.Series.export) list ref = ref []
let emit_series labeled = collected_series := !collected_series @ labeled

(* A job running under Pool.map builds its own registry so domains never
   share one; snapshots are merged here in canonical job order, keeping
   stdout byte-identical for every -j.  --series needs a registry to
   sample even when --metrics is off; series and hist share it so a
   --metrics run also picks the histogram percentiles up in its footers. *)
type job_obs = {
  jo_metrics : Ispn_obs.Metrics.t option;
  jo_series : Ispn_obs.Series.t option;
  jo_hist : Ispn_obs.Hist.t option;
}

let job_obs () =
  if obs_on () || series_on () then begin
    let m = Ispn_obs.Metrics.create () in
    if series_on () then
      { jo_metrics = Some m;
        jo_series = Some (Ispn_obs.Series.create ~metrics:m ());
        jo_hist = Some (Ispn_obs.Hist.create ~metrics:m ()) }
    else { jo_metrics = Some m; jo_series = None; jo_hist = None }
  end
  else { jo_metrics = None; jo_series = None; jo_hist = None }

let obs_snapshot ~label jo =
  if obs_on () then
    Option.map (fun m -> (label, Ispn_obs.Metrics.snapshot m)) jo.jo_metrics
  else None

let series_export ~label jo =
  Option.map
    (fun s -> (label, Ispn_obs.Series.export ?hist:jo.jo_hist s))
    jo.jo_series

let series_interval () = if series_on () then Some 1.0 else None

let emit_obs labeled =
  if labeled <> [] then begin
    print_string (Csz.Report.obs_footer labeled);
    collected := !collected @ labeled
  end

(* --check: each pool job owns a private audit context and finalizes it
   in-job (summaries are plain data); footers print in canonical job order,
   so output is -j-independent, and stdout is untouched when off. *)
let check_on = ref false
let check_violations = ref 0
let audit_ctx () = if !check_on then Some (Ispn_check.Audit.create ()) else None

let audit_summary ~label a =
  Option.map (fun a -> (label, Ispn_check.Audit.finalize a)) a

let emit_check labeled =
  List.iter
    (fun (label, s) ->
      check_violations := !check_violations + s.Ispn_check.Audit.violations;
      List.iter print_endline (Ispn_check.Audit.footer_lines ~label s))
    labeled

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let section name f =
  banner name;
  let t0 = Unix.gettimeofday () in
  f ();
  (* Host time is nondeterministic; stderr keeps stdout reproducible.  The
     line names both parallelism widths — the pool fan-out (-j) and the
     intra-simulation sharding (--shards) — so A/B timing runs are
     self-describing. *)
  Printf.eprintf "[%s done in %.1fs of host time; jobs=%d shards=%d]\n%!" name
    (Unix.gettimeofday () -. t0)
    !jobs !shards

(* ---- Table 1 ------------------------------------------------------------ *)

let table1 () =
  let runs =
    Pool.map ~j:!jobs
      (fun sched ->
        let jo = job_obs () in
        let a = audit_ctx () in
        let results, info =
          E.run_single_link ~sched ?metrics:jo.jo_metrics ?audit:a
            ?series:jo.jo_series ?hist:jo.jo_hist ~duration:!duration ~seed ()
        in
        let label = "table1." ^ E.sched_name sched in
        ( sched, results, info, obs_snapshot ~label jo,
          audit_summary ~label a, series_export ~label jo ))
      [ E.Wfq; E.Fifo ]
  in
  print_endline
    (Csz.Report.table1
       (List.map (fun (s, r, i, _, _, _) -> (s, r, i)) runs)
       ~sample_flow:0);
  emit_obs (List.filter_map (fun (_, _, _, snap, _, _) -> snap) runs);
  emit_check (List.filter_map (fun (_, _, _, _, chk, _) -> chk) runs);
  emit_series (List.filter_map (fun (_, _, _, _, _, se) -> se) runs);
  print_endline
    "\nPaper (Table 1):  WFQ mean 3.16, 99.9%ile 53.86;  FIFO mean 3.17, \
     99.9%ile 34.72\nShape to check: equal means; FIFO tail well below WFQ \
     tail at 83.5% load."

(* ---- Figure 1 ----------------------------------------------------------- *)

let topology () = print_string (Csz.Report.figure1 ())

(* ---- Table 2 ------------------------------------------------------------ *)

let table2 () =
  let runs =
    Pool.map ~j:!jobs
      (fun sched ->
        let jo = job_obs () in
        let a = audit_ctx () in
        let results, _ =
          E.run_figure1 ~sched ?metrics:jo.jo_metrics ?audit:a
            ?series:jo.jo_series ?hist:jo.jo_hist ~duration:!duration ~seed ()
        in
        let label = "table2." ^ E.sched_name sched in
        ( sched, results, obs_snapshot ~label jo, audit_summary ~label a,
          series_export ~label jo ))
      [ E.Wfq; E.Fifo; E.Fifo_plus ]
  in
  print_endline
    (Csz.Report.table2
       (List.map (fun (s, r, _, _, _) -> (s, r)) runs)
       ~sample_flows:[ 18; 8; 2; 0 ]);
  emit_obs (List.filter_map (fun (_, _, snap, _, _) -> snap) runs);
  emit_check (List.filter_map (fun (_, _, _, chk, _) -> chk) runs);
  emit_series (List.filter_map (fun (_, _, _, _, se) -> se) runs);
  print_endline
    "\nPaper (Table 2), 99.9%ile by path length 1/2/3/4:\n\
    \  WFQ   45.31  60.31  65.86  80.59\n\
    \  FIFO  30.49  41.22  52.36  58.13\n\
    \  FIFO+ 33.59  38.15  43.30  45.25\n\
     Shape to check: tails grow with hops everywhere; FIFO+ grows slowest,\n\
     wins clearly at 3-4 hops, and gives a little back on 1-hop paths."

(* ---- Table 3 ------------------------------------------------------------ *)

let table3 () =
  let jo = job_obs () in
  let a = audit_ctx () in
  let res =
    E.run_table3 ?metrics:jo.jo_metrics ?audit:a ?series:jo.jo_series
      ?hist:jo.jo_hist ~duration:!duration ~seed ()
  in
  print_endline (Csz.Report.table3 res);
  emit_obs (Option.to_list (obs_snapshot ~label:"table3" jo));
  emit_check (Option.to_list (audit_summary ~label:"table3" a));
  emit_series (Option.to_list (series_export ~label:"table3" jo));
  print_endline
    "\nPaper (Table 3): Peak/4 max 15.99 vs bound 23.53; Peak/2 8.79 vs \
     11.76;\n\
    \  Average/3 296.23 vs 611.76; Average/1 247.24 vs 588.24;\n\
    \  High/4 99.9%ile 8.20; High/2 5.83; Low/3 104.83; Low/1 79.57;\n\
    \  utilization >99% (83.5% real-time), datagram drop ~0.1%.\n\
     Shape to check: every guaranteed max under its P-G bound; Peak << \
     Average;\n\
     High < Low; link near saturation with real-time at ~83.5%."

(* ---- E1: bake-off ------------------------------------------------------- *)

let bakeoff () =
  let runs =
    X.run_bakeoff ~duration:!duration ~seed ~j:!jobs ~check:!check_on ()
  in
  let f2 = Table.fmt_float ~decimals:2 in
  let f0 = Table.fmt_float ~decimals:0 in
  let pt =
    Ispn_util.Units.packet_times ~link_rate_bps:Ispn_util.Units.link_rate_bps
      ~packet_bits:Ispn_util.Units.packet_bits
  in
  let sample = [ 18; 8; 2; 0 ] in
  let rows =
    List.map
      (fun (row : X.bakeoff_row) ->
        X.bakeoff_name row.X.bk_sched
        :: List.concat_map
             (fun flow ->
               let r =
                 List.find (fun (fr : E.flow_result) -> fr.E.flow = flow)
                   row.X.bk_results
               in
               (* Zero delivered packets means no percentiles: print "-",
                  never a 0.00 (or NaN) that reads as a measurement. *)
               let stat v = if r.E.received = 0 then "-" else f2 v in
               let bound =
                 match row.X.bk_bounds with
                 | None -> "-"
                 | Some bs -> f0 (pt (List.assoc flow bs))
               in
               [ stat r.E.mean; stat r.E.p999; bound ])
             sample)
      runs
  in
  print_endline
    (Table.render
       ~header:
         [
           "scheduler"; "mean@1"; "p999@1"; "bound@1"; "mean@2"; "p999@2";
           "bound@2"; "mean@3"; "p999@3"; "bound@3"; "mean@4"; "p999@4";
           "bound@4";
         ]
       ~rows ());
  emit_check
    (List.filter_map
       (fun (row : X.bakeoff_row) ->
         Option.map
           (fun s -> ("bakeoff." ^ X.bakeoff_name row.X.bk_sched, s))
           row.X.bk_check)
       runs);
  print_endline
    "\nShape to check: the isolating schedulers (WFQ, VirtualClock, DRR,\n\
     WRR, RR-groups) all pay a tail penalty against the sharing\n\
     schedulers; EDF with equal budgets tracks FIFO exactly (Section 5's\n\
     degeneracy), as does MC-FIFO by construction; FIFO+ has the flattest\n\
     tail growth with path length; and the non-work-conserving schemes\n\
     (CBS, ATS, Stop-and-Go, HRR, Jitter-EDD) show Section 11's trade —\n\
     higher mean delay bought for a narrower delay spread.  The bound@h\n\
     columns are the shapers' deterministic per-packet delay bounds\n\
     (CBS/ATS: Mohammadpour et al.; WRR: Constantin et al.; MC-FIFO:\n\
     Jiang-Misra), in packet times; --check audits every delivered\n\
     packet against them, and their hundred-fold slack over the measured\n\
     tails is the paper's isolation argument made quantitative: without\n\
     per-flow isolation the provable bound balloons with the shared\n\
     bursts even while typical delays stay small."

(* ---- E2: admission ------------------------------------------------------ *)

let admission () =
  List.iter
    (fun (r : X.admission_result) ->
      Printf.printf
        "%-24s requests %3d, accepted %3d, utilization %5.1f%%, violations \
         %6.2f%%, drops %6.2f%%\n"
        (X.policy_name r.X.policy) r.X.requests r.X.accepted
        (100. *. r.X.mean_utilization)
        (100. *. r.X.violation_rate)
        (100. *. r.X.net_drop_rate))
    (X.run_admission ~duration:!duration ~seed ~j:!jobs ());
  print_endline
    "\nShape to check (the paper's Section 9/12 conjecture): the measured\n\
     policy admits more flows and runs the link hotter than worst-case\n\
     declared-rate admission, with both keeping violations at zero; no\n\
     admission control saturates the link and shreds the delay targets."

(* ---- E3: playback ------------------------------------------------------- *)

let playback () =
  List.iter
    (fun (r : X.playback_result) ->
      Printf.printf
        "%-10s mean play-back point %6.2f packet times, application loss \
         %.3f%%\n"
        r.X.client r.X.mean_point
        (100. *. r.X.app_loss_rate))
    (X.run_playback ~duration:!duration ~seed ());
  print_endline
    "\nShape to check (Section 2.3/12): both adaptive clients' play-back\n\
     points sit far below the rigid client's advertised-bound point at a\n\
     small loss rate; the VAT-style spike-following filter converts most of\n\
     the windowed tracker's residual loss into a similar point."

(* ---- E6: priority cascade ------------------------------------------------ *)

let cascade () =
  List.iter
    (fun (r : X.cascade_row) ->
      Printf.printf "%-10s per-hop mean %6.2f, 99.9%%ile %8.2f\n"
        r.X.cascade_class r.X.c_mean r.X.c_p999)
    (X.run_cascade ~duration:!duration ~seed ());
  print_endline
    "\nShape to check (Section 7): each class absorbs the jitter of the\n\
     classes above it, so tails grow monotonically down the priority\n\
     ladder, with the datagram class carrying the accumulated burstiness\n\
     of everyone."

(* ---- E4: isolation ------------------------------------------------------ *)

let isolation () =
  List.iter
    (fun (r : X.isolation_row) ->
      Printf.printf
        "%-28s honest: mean %7.2f p999 %8.2f | cheater: mean %8.2f p999 \
         %8.2f\n"
        r.X.iso_sched r.X.honest_mean r.X.honest_p999 r.X.cheat_mean
        r.X.cheat_p999)
    (X.run_isolation ~duration:!duration ~seed ());
  print_endline
    "\nShape to check (Section 5): under plain FIFO the cheater drags \
     everyone\ndown; WFQ quarantines the damage to the cheater; edge \
     policing restores\nFIFO's low tails — isolation and sharing are \
     separable concerns."

(* ---- E5: discard -------------------------------------------------------- *)

let discard () =
  List.iter
    (fun (r : X.discard_result) ->
      Printf.printf
        "threshold %-8s 4-hop 99.9%%ile %7.2f, discarded %.3f%% of packets\n"
        (match r.X.threshold with
        | None -> "off"
        | Some t -> Printf.sprintf "%.0f ms" (1000. *. t))
        r.X.p999_4hop
        (100. *. r.X.discarded_fraction))
    (X.run_discard ~duration:!duration ~seed ());
  print_endline
    "\nShape to check (Section 10): discarding packets whose accumulated \
     offset\nmarks them as hopelessly late trims the tail for everyone else \
     at a tiny\nloss cost."

(* ---- E7: Table 3 through the full service stack --------------------------- *)

let service () =
  let r = X.run_table3_service ~duration:!duration ~seed () in
  List.iter
    (fun (row : X.e2e_row) ->
      Printf.printf "  flow %2d %-20s %d hop(s) -> %s\n" row.X.e2e_flow
        row.X.e2e_label row.X.e2e_hops row.X.e2e_outcome)
    r.X.e2e_rows;
  Printf.printf
    "admitted %d (of 22 real-time flows; %d refusals counted across \
     retries),\nutilization %.1f%%, predicted target violations %.2f%%\n"
    r.X.e2e_admitted r.X.e2e_rejected
    (100. *. r.X.e2e_utilization)
    (100. *. r.X.e2e_violations);
  print_endline
    "\nShape to check: guaranteed flows admitted immediately; predicted\n\
     admissions arrive in waves as measurement replaces worst-case\n\
     bookings; everything admitted keeps its targets; TCP refills the\n\
     link to ~99%.  The Section 9 example criterion is (by design) more\n\
     conservative than the paper's hand-placed Table 3."

(* ---- E8: load sweep ------------------------------------------------------- *)

let sweep () =
  List.iter
    (fun (r : X.sweep_row) ->
      Printf.printf
        "utilization %5.1f%%  FIFO 99.9%%ile %6.2f   WFQ 99.9%%ile %6.2f   \
         WFQ/FIFO %.2f\n"
        (100. *. r.X.achieved_utilization)
        r.X.fifo_p999 r.X.wfq_p999
        (r.X.wfq_p999 /. r.X.fifo_p999))
    (X.run_load_sweep ~duration:!duration ~seed ~j:!jobs ());
  print_endline
    "\nShape to check (Section 12): sharing and isolation coincide when\n\
     bandwidth is plentiful; the sharing advantage (WFQ/FIFO tail ratio)\n\
     appears around 80% load and widens as the link saturates — \"careful\n\
     attention to sharing arises only when bandwidth is limited\"."

(* ---- E9: in-band signaling latency ---------------------------------------- *)

let signaling () =
  List.iter
    (fun (r : X.signaling_row) ->
      Printf.printf
        "background load %3.0f%%: %3d setups, mean %6.2f ms, max %7.2f ms\n"
        (100. *. r.X.sig_load) r.X.sig_setups r.X.sig_mean_ms r.X.sig_max_ms)
    (X.run_signaling ~duration:(Stdlib.min !duration 120.) ~seed ());
  print_endline
    "\nShape to check: establishment takes real network time (about 6 ms\n\
     across four hops when idle: four 0.5 ms control transmissions plus\n\
     the reverse-path confirmation) and stretches by an order of magnitude\n\
     when the datagram class the control packets share is loaded — the\n\
     paper's fourth architectural component, priced."

(* ---- Ablation: FIFO+ gain ----------------------------------------------- *)

let ablation () =
  List.iter
    (fun (gain, (r : E.flow_result)) ->
      Printf.printf "gain 1/%-6.0f 4-hop mean %5.2f, 99.9%%ile %6.2f\n"
        (1. /. gain) r.E.mean r.E.p999)
    (X.run_gain_ablation ~duration:!duration ~seed ~j:!jobs ());
  print_endline
    "\nShape to check (DESIGN.md): a fast class average (1/16) mutes the \
     jitter\noffsets and FIFO+ degenerates toward FIFO; the slow default \
     (1/4096)\nrecovers the paper's multi-hop tail reduction."

(* ---- E10: packet-importance classes ---------------------------------------- *)

let importance () =
  List.iter
    (fun (r : X.importance_row) ->
      Printf.printf "%-16s received %6d   mean %6.2f   99.9%%ile %7.2f\n"
        r.X.imp_label r.X.imp_received r.X.imp_mean r.X.imp_p999)
    (X.run_importance ~duration:!duration ~seed ());
  print_endline
    "\nShape to check (Section 10): one application, two importance tags,\n\
     adjacent priority classes: the important packets see almost no\n\
     queueing while the less-important ones absorb the congestion —\n\
     controlled degradation from existing mechanism."

(* ---- Seed robustness ------------------------------------------------------ *)

let seeds () =
  let rows =
    X.run_seed_robustness ~duration:(Stdlib.min !duration 300.) ~j:!jobs ()
  in
  List.iter
    (fun (r : X.seeds_row) ->
      Printf.printf
        "%-6s 4-hop 99.9%%ile over 5 seeds: mean %6.2f  (min %6.2f, max %6.2f)\n"
        (E.sched_name r.X.seeds_sched)
        r.X.p999_mean r.X.p999_min r.X.p999_max)
    rows;
  print_endline
    "\nShape to check: the Table-2 ordering (FIFO+ < FIFO < WFQ at four\n\
     hops) is not an artifact of the headline seed — the seed-wise ranges\n\
     barely overlap."

(* ---- E11: failover under injected faults --------------------------------- *)

let faults () =
  let rows =
    X.run_failover
      ~duration:(Stdlib.min !duration 120.)
      ~seed ~j:!jobs
      ?series_interval:(series_interval ())
      ()
  in
  List.iter
    (fun (r : X.failover_row) ->
      Printf.printf
        "%-12s violations %5.2f%%  lost %6d  retries %3d (abandoned %d)  \
         reestablished %d in %4.1f ms  degraded %d\n"
        (X.failover_name r.X.fo_schedule)
        (100. *. r.X.fo_violation_rate)
        r.X.fo_lost r.X.fo_retries r.X.fo_abandoned r.X.fo_reestablished
        r.X.fo_reestablish_ms r.X.fo_degraded;
      List.iter
        (fun (f : X.failover_flow) ->
          Printf.printf "    flow %d: requested %s, ended %s\n" f.X.ff_flow
            f.X.ff_requested f.X.ff_final)
        r.X.fo_flows)
    rows;
  emit_series
    (List.filter_map
       (fun (r : X.failover_row) ->
         Option.map
           (fun e -> ("faults." ^ X.failover_name r.X.fo_schedule, e))
           r.X.fo_series)
       rows);
  print_endline
    "\nShape to check: the baseline row is clean (no retries, no\n\
     degradation); link outages and header corruption lose packets and\n\
     force setup retransmissions but every completed setup still rolls\n\
     back or establishes cleanly; the agent crash re-establishes every\n\
     flow through the dead switch within milliseconds, and the flows the\n\
     usurper squeezes out slide down the service ladder (guaranteed ->\n\
     predicted -> datagram) instead of dying — Section 2's tolerant,\n\
     adaptive clients surviving a changed network."

(* ---- E13: session churn under soft-state signaling ------------------------ *)

let churn () =
  let rows =
    X.run_churn ~duration:!duration ~seed ~j:!jobs ~check:!check_on
      ?series_interval:(series_interval ())
      ()
  in
  List.iter
    (fun (r : X.churn_row) ->
      Printf.printf
        "%-15s sessions %6d  blocking %5.2f%%  departed %6d (active %4d)  \
         signaling %6.1f pkt/s (refresh %4.1f%%)  retries %4d  expired %4d  \
         recycled %6d (hwm %4d)  leaked %d\n"
        (X.churn_name r.X.ch_scenario)
        r.X.ch_offered
        (100. *. r.X.ch_blocking)
        r.X.ch_departed r.X.ch_active_end r.X.ch_signaling_pps
        (100. *. r.X.ch_refresh_share)
        r.X.ch_retries r.X.ch_expired r.X.ch_recycled r.X.ch_slot_hwm
        r.X.ch_leaked)
    rows;
  Printf.printf "cumulative sessions across scenarios: %d\n"
    (List.fold_left (fun acc (r : X.churn_row) -> acc + r.X.ch_offered) 0 rows);
  emit_check
    (List.filter_map
       (fun (r : X.churn_row) ->
         Option.map
           (fun s -> ("churn." ^ X.churn_name r.X.ch_scenario, s))
           r.X.ch_check)
       rows);
  emit_series
    (List.filter_map
       (fun (r : X.churn_row) ->
         Option.map
           (fun e -> ("churn." ^ X.churn_name r.X.ch_scenario, e))
           r.X.ch_series)
       rows);
  print_endline
    "\nShape to check: leaked is 0 in every scenario — that is the soft-state\n\
     contract.  The clean run expires nothing (all teardowns arrive); the\n\
     lossy run strands reservations mid-path and the expired column shows\n\
     the refresh timeout reclaiming every one; the crashes and the flap\n\
     push blocking and retries up, never the leak count.  Recycled >> hwm:\n\
     the dense flow-id space stays bounded under a million sessions."

(* ---- E14: sharded parking-lot at scale ----------------------------------- *)

let scale () =
  let r =
    (* --shards parsing only guarantees positivity; the upper bound
       depends on the topology, so surface run_scale's own message
       instead of dying on an uncaught exception. *)
    try
      X.run_scale ~duration:!duration ~seed ~shards:!shards ~check:!check_on
        ~metrics:(obs_on ())
        ?series_interval:(series_interval ())
        ()
    with Invalid_argument msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  Printf.printf
    "%d switches, %d links, %d on/off flows over %.0f s (delays in packet \
     times)\n"
    r.X.sc_switches r.X.sc_links r.X.sc_flow_count !duration;
  List.iter
    (fun (row : X.scale_row) ->
      Printf.printf
        "regions crossed %d  flows %5d  delivered %9d  mean %8.1f  \
         max %8.1f  queueing %6.2f\n"
        row.X.sc_span row.X.sc_flows row.X.sc_delivered row.X.sc_mean_delay
        row.X.sc_max_delay row.X.sc_mean_qdelay)
    r.X.sc_rows;
  Printf.printf "total: delivered %d, sent %d link transmissions, dropped %d\n"
    r.X.sc_delivered_total r.X.sc_sent r.X.sc_dropped;
  (* Everything that varies with the shard count is diagnostic, not
     result, and goes to stderr with the host timing. *)
  Printf.eprintf
    "[scale: %d shard(s), %d cut link(s), lookahead %.2f ms, %d windows, \
     %d packets exchanged, %d events fired]\n%!"
    r.X.sc_shards r.X.sc_cut_links
    (1e3 *. r.X.sc_lookahead)
    r.X.sc_windows r.X.sc_exchanged r.X.sc_fired;
  (match r.X.sc_check with
  | None -> ()
  | Some s -> emit_check [ ("scale", s) ]);
  emit_obs
    (match r.X.sc_metrics with None -> [] | Some snap -> [ ("scale", snap) ]);
  emit_series
    (match r.X.sc_series with None -> [] | Some se -> [ ("scale", se) ]);
  print_endline
    "\nShape to check: mean delay grows with the regions crossed —\n\
     propagation dominates at ~10 ms per backbone hop — while the\n\
     queueing share stays small at this load and drops are rare.  The\n\
     table is byte-identical for every --shards width; only the stderr\n\
     diagnostics and wall time change."

(* ---- Microbenchmarks ---------------------------------------------------- *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let make_qdisc = function
    | "FIFO" ->
        Ispn_sched.Fifo.create ~pool:(Ispn_sim.Qdisc.unbounded_pool ()) ()
    | "FIFO+" ->
        snd
          (Ispn_sched.Fifo_plus.create
             ~pool:(Ispn_sim.Qdisc.unbounded_pool ())
             ())
    | "WFQ" ->
        Ispn_sched.Wfq.create_equal
          ~pool:(Ispn_sim.Qdisc.unbounded_pool ())
          ~link_rate_bps:1e6 ()
    | "VirtualClock" ->
        Ispn_sched.Virtual_clock.create
          ~pool:(Ispn_sim.Qdisc.unbounded_pool ())
          ~rate_of:(fun _ -> 1e5)
          ()
    | "DRR" ->
        Ispn_sched.Drr.create
          ~pool:(Ispn_sim.Qdisc.unbounded_pool ())
          ~quantum_bits:1000 ()
    | "EDF" ->
        Ispn_sched.Edf.create
          ~pool:(Ispn_sim.Qdisc.unbounded_pool ())
          ~deadline_of:(fun _ -> 0.01)
          ()
    | "Jitter-EDD" ->
        (* Bench packets carry no upstream earliness (offset 0), so every
           packet is immediately eligible and the engine stays idle — the
           measured cost is the two-heap ranked path. *)
        Ispn_sched.Jitter_edd.create ~engine:(Ispn_sim.Engine.create ())
          ~budget_of:(fun _ -> 0.02)
          ~pool:(Ispn_sim.Qdisc.unbounded_pool ())
          ()
    | "HRR" ->
        (* Slots far beyond the iteration count: the first frame's credit
           never runs out, so the round-robin scan path is what's timed. *)
        Ispn_sched.Hrr.create ~engine:(Ispn_sim.Engine.create ()) ~frame:0.02
          ~slots_of:(fun _ -> 1 lsl 30)
          ~pool:(Ispn_sim.Qdisc.unbounded_pool ())
          ()
    | "WRR" ->
        Ispn_sched.Wrr.create ~pool:(Ispn_sim.Qdisc.unbounded_pool ()) ()
    | "CBS" ->
        (* An idle slope far above the drain rate keeps every class's
           credit non-negative, so the timed path is the touch-and-pick
           scan, never the waker. *)
        Ispn_sched.Cbs.create ~engine:(Ispn_sim.Engine.create ())
          ~pool:(Ispn_sim.Qdisc.unbounded_pool ())
          ~idle_slopes_bps:[| 1e12; 1e12 |]
          ~class_of:(fun f -> f mod 2)
          ()
    | "ATS" ->
        (* A token rate and depth far above the offered load keep every
           head packet conformant: the measured cost is the per-flow
           regulator lookup plus the class scan. *)
        Ispn_sched.Ats.create ~engine:(Ispn_sim.Engine.create ())
          ~pool:(Ispn_sim.Qdisc.unbounded_pool ())
          ~n_classes:2
          ~class_of:(fun f -> f mod 2)
          ~shaper_of:(fun _ -> (1e12, 1e9))
          ()
    | "Stop-and-Go" ->
        (* One frame per bench tick: the 32-deep standing queue keeps the
           head a full frame old, so dequeues always find it eligible. *)
        Ispn_sched.Stop_and_go.create ~engine:(Ispn_sim.Engine.create ())
          ~frame:1e-4
          ~pool:(Ispn_sim.Qdisc.unbounded_pool ())
          ()
    | "CSZ" ->
        let st, q =
          Csz.Csz_sched.create ~pool:(Ispn_sim.Qdisc.unbounded_pool ()) ()
        in
        for f = 0 to 4 do
          Csz.Csz_sched.add_guaranteed st ~flow:(100 + f)
            ~clock_rate_bps:50_000.
        done;
        for f = 0 to 9 do
          Csz.Csz_sched.set_predicted st ~flow:f ~cls:(f mod 2)
        done;
        q
    | name -> invalid_arg name
  in
  (* Per-packet cost: enqueue + dequeue through a 32-deep standing queue of
     16 flows, the regime a loaded switch sits in.  The paper's constraint:
     "since it must be executed for every packet it must not be so complex
     as to effect overall network performance". *)
  let test name =
    let q = make_qdisc name in
    let clock = ref 0. in
    let seq = ref 0 in
    for i = 0 to 31 do
      ignore
        (q.Ispn_sim.Qdisc.enqueue ~now:0.
           (Ispn_sim.Packet.make ~flow:(i mod 16) ~seq:i ~created:0. ()))
    done;
    Test.make ~name
      (Staged.stage (fun () ->
           clock := !clock +. 1e-4;
           incr seq;
           ignore
             (q.Ispn_sim.Qdisc.enqueue ~now:!clock
                (Ispn_sim.Packet.make ~flow:(!seq mod 16) ~seq:!seq
                   ~created:!clock ()));
           (* Recycle the served packet as a sink would; without the free
              the arena grows by one slot per iteration and the bench
              times arena growth instead of the scheduler. *)
           match q.Ispn_sim.Qdisc.dequeue ~now:!clock with
           | Some p -> Ispn_sim.Packet.free p
           | None -> ()))
  in
  let tests =
    Test.make_grouped ~name:"sched"
      [
        test "FIFO"; test "FIFO+"; test "WFQ"; test "VirtualClock";
        test "DRR"; test "WRR"; test "EDF"; test "Jitter-EDD"; test "HRR";
        test "CBS"; test "ATS"; test "Stop-and-Go"; test "CSZ";
      ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let entries =
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) results []
    |> List.sort compare
    |> List.filter_map (fun (name, v) ->
           match Analyze.OLS.estimates v with
           | Some [ ns ] ->
               Printf.printf "%-22s %8.1f ns per enqueue+dequeue\n" name ns;
               Some (name, ns)
           | Some _ | None ->
               Printf.printf "%-22s (no estimate)\n" name;
               None)
  in
  (* Engine event-loop cost, via the Engine.stats counters, in two
     regimes.  [engine/drain] is a two-deep self-rescheduling chain whose
     events also schedule-then-cancel a decoy, pricing the lazy-deletion
     skip path with almost no standing queue — a comparison heap's best
     case.  [engine/dense] interleaves 256 chains at mixed 1–64 us
     periods, holding a standing population like a loaded simulation;
     this row is where a pending-set structure earns (or loses) its keep,
     and is the one [info.engine_events_per_s] reports. *)
  let run_engine name setup =
    let e = Ispn_sim.Engine.create () in
    let until = setup e in
    let t0 = Unix.gettimeofday () in
    Ispn_sim.Engine.run e ~until;
    let dt = Unix.gettimeofday () -. t0 in
    let st = Ispn_sim.Engine.stats e in
    let total =
      st.Ispn_sim.Engine.events_fired + st.Ispn_sim.Engine.cancels_skipped
    in
    let ns = 1e9 *. dt /. float_of_int total in
    Printf.printf "%-22s %8.1f ns per event (%d fired, %d cancels skipped)\n"
      name ns st.Ispn_sim.Engine.events_fired
      st.Ispn_sim.Engine.cancels_skipped;
    ((name, ns), (1e9 /. ns, Ispn_sim.Engine.heap_depth_hwm e))
  in
  let drain_entry =
    run_engine "engine/drain" (fun e ->
        let n = 200_000 in
        let count = ref 0 in
        let rec act () =
          incr count;
          if !count < n then begin
            ignore (Ispn_sim.Engine.schedule_after e ~delay:1e-6 act);
            let h =
              Ispn_sim.Engine.schedule_after e ~delay:2e-6 (fun () -> ())
            in
            Ispn_sim.Engine.cancel e h
          end
        in
        ignore (Ispn_sim.Engine.schedule_after e ~delay:1e-6 act);
        1.0)
  in
  let dense_entry =
    run_engine "engine/dense" (fun e ->
        let n = 1_600_000 in
        let chains = 256 in
        let count = ref 0 in
        let mk i =
          let delay = float_of_int (1 + ((i * 7) land 63)) *. 1e-6 in
          let rec act () =
            incr count;
            if !count < n then
              ignore (Ispn_sim.Engine.schedule_after e ~delay act)
          in
          act
        in
        for i = 0 to chains - 1 do
          ignore
            (Ispn_sim.Engine.schedule_after e
               ~delay:(float_of_int i *. 1e-6)
               (mk i))
        done;
        10.0)
  in
  (* The sharded engine's per-event price: a 4-switch chain split over 2
     domains, CBR crossing the cut both ways, 1 ms lookahead windows.
     Includes the marshal/re-make exchange and the window barriers, so it
     prices exactly what [scale --shards N] pays over a plain engine. *)
  let sharded_entry =
    let mk_qdisc () =
      Ispn_sched.Fifo.create ~pool:(Ispn_sim.Qdisc.unbounded_pool ()) ()
    in
    let link src dst prop =
      {
        Ispn_sim.Shardnet.l_src = src;
        l_dst = dst;
        l_rate_bps = 1e7;
        l_prop_delay = prop;
        l_qdisc = mk_qdisc;
      }
    in
    let flow f src dst =
      {
        Ispn_sim.Shardnet.f_src = src;
        f_dst = dst;
        f_driver =
          (fun engine emit ->
            let s =
              Ispn_traffic.Cbr.create ~engine ~flow:f ~rate_pps:5000. ~emit ()
            in
            s.Ispn_traffic.Source.start ());
      }
    in
    let spec =
      {
        Ispn_sim.Shardnet.n_switches = 4;
        n_shards = 2;
        shard_of = [| 0; 0; 1; 1 |];
        links =
          [|
            link 0 1 1.0e-4; link 1 0 1.1e-4; link 1 2 1.0e-3;
            link 2 1 1.1e-3; link 2 3 1.2e-4; link 3 2 1.3e-4;
          |];
        flows = [| flow 0 0 3; flow 1 3 0 |];
      }
    in
    let t0 = Unix.gettimeofday () in
    let res = Ispn_sim.Shardnet.run ~until:2.0 spec in
    let dt = Unix.gettimeofday () -. t0 in
    let ns = 1e9 *. dt /. float_of_int res.Ispn_sim.Shardnet.r_fired in
    Printf.printf
      "%-22s %8.1f ns per event (%d fired over %d shards, %d exchanged)\n"
      "engine/sharded" ns res.Ispn_sim.Shardnet.r_fired
      res.Ispn_sim.Shardnet.r_shards res.Ispn_sim.Shardnet.r_drained;
    ("engine/sharded", ns)
  in
  let drain_name_ns, _ = drain_entry in
  let dense_name_ns, (events_per_s, pending_hwm) = dense_entry in
  Printf.printf "%-22s %8.0f events/s dense, pending hwm %d\n" "engine/info"
    events_per_s pending_hwm;
  (* The info.* entries are informational throughput/shape numbers; the CI
     perf gate (ci/check_bench.sh) skips them when looking for ns/packet
     regressions. *)
  (* Control-plane cost, engine time included: one full session lifecycle
     (datagram setup across one link, confirmation, teardown, id recycle)
     and one soft-state refresh pass over a two-hop path — the per-session
     and per-epoch signaling price the churn workload pays ~1M times. *)
  let run_signaling name what iters f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do f () done;
    let ns = 1e9 *. (Unix.gettimeofday () -. t0) /. float_of_int iters in
    Printf.printf "%-22s %8.1f ns per %s\n" name ns what;
    (name, ns)
  in
  let setup_entry =
    let e = Ispn_sim.Engine.create () in
    let fab = Csz.Fabric.chain ~engine:e ~n_switches:2 () in
    let sg = Csz.Signaling.deploy ~fabric:fab () in
    let spool = Ispn_util.Idpool.create () in
    let horizon = ref 0. in
    run_signaling "signaling/setup" "session open+close" 20_000 (fun () ->
        let flow = Ispn_util.Idpool.take spool in
        Csz.Signaling.setup sg ~flow ~ingress:0 ~egress:1
          Ispn_admission.Spec.Datagram ~sink:Ispn_sim.Packet.free
          ~on_result:(fun _ -> ());
        horizon := !horizon +. 0.01;
        Ispn_sim.Engine.run e ~until:!horizon;
        Csz.Signaling.teardown sg ~flow;
        Ispn_util.Idpool.release spool ~id:flow)
  in
  let refresh_entry =
    let e = Ispn_sim.Engine.create () in
    let fab = Csz.Fabric.chain ~engine:e ~n_switches:3 () in
    (* A huge interval turns stamping on but keeps the periodic pump and
       sweep out of the measured window. *)
    let sg = Csz.Signaling.deploy ~fabric:fab ~refresh_interval:1e9 () in
    Csz.Signaling.setup sg ~flow:0 ~ingress:0 ~egress:2
      Ispn_admission.Spec.Datagram ~sink:Ispn_sim.Packet.free
      ~on_result:(fun _ -> ());
    Ispn_sim.Engine.run e ~until:0.05;
    let horizon = ref 0.05 in
    run_signaling "signaling/refresh" "refresh pass" 20_000 (fun () ->
        Csz.Signaling.refresh_now sg ~flow:0;
        horizon := !horizon +. 0.01;
        Ispn_sim.Engine.run e ~until:!horizon)
  in
  let entries =
    entries
    @ [
        drain_name_ns;
        dense_name_ns;
        sharded_entry;
        setup_entry;
        refresh_entry;
        ("info.engine_events_per_s", events_per_s);
        ("info.engine_pending_hwm", float_of_int pending_hwm);
      ]
  in
  if !json then begin
    let oc = open_out "BENCH_micro.json" in
    output_string oc "{\n";
    let last = List.length entries - 1 in
    List.iteri
      (fun i (name, ns) ->
        Printf.fprintf oc "  %S: %.1f%s\n" name ns (if i = last then "" else ","))
      entries;
    output_string oc "}\n";
    close_out oc;
    Printf.eprintf "wrote BENCH_micro.json\n%!"
  end;
  print_endline
    "\nShape to check: every scheduler's per-packet cost is far below a\n\
     1 ms packet transmission time — cheap enough to run at every switch\n\
     for every packet (the Section 1 constraint); the time-stamp schedulers\n\
     cost a small multiple of FIFO."

(* ---- E12: flight-recorder trace ------------------------------------------ *)

let trace () =
  List.iter
    (fun experiment ->
      let res =
        X.run_trace ~experiment ?capacity:!trace_cap
          ~duration:(Stdlib.min !duration 120.)
          ~seed ()
      in
      print_endline (Csz.Report.trace res))
    [ X.T_table2; X.T_table3 ];
  print_endline
    "\nShape to check: each packet's per-hop queueing sums to the\n\
     end-to-end delay its egress probe reported; under FIFO+ the worst\n\
     packets' delay is spread across the path rather than concentrated at\n\
     one hop, and under CSZ the predicted classes dominate the tail."

(* ---- main ---------------------------------------------------------------- *)

let sections =
  [
    ("topology", topology);
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("bakeoff", bakeoff);
    ("admission", admission);
    ("playback", playback);
    ("cascade", cascade);
    ("isolation", isolation);
    ("discard", discard);
    ("service", service);
    ("sweep", sweep);
    ("signaling", signaling);
    ("faults", faults);
    ("churn", churn);
    ("scale", scale);
    ("importance", importance);
    ("ablation", ablation);
    ("seeds", seeds);
    ("trace", trace);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse args acc =
    match args with
    | [] -> List.rev acc
    | "--fast" :: rest ->
        duration := 60.;
        parse rest acc
    | "--json" :: rest ->
        json := true;
        parse rest acc
    | "--metrics" :: file :: rest ->
        metrics_file := Some file;
        parse rest acc
    | [ "--metrics" ] ->
        Printf.eprintf "--metrics expects a file argument\n";
        exit 2
    | "--series" :: file :: rest ->
        series_file := Some file;
        parse rest acc
    | [ "--series" ] ->
        Printf.eprintf "--series expects a file argument\n";
        exit 2
    | "--trace-cap" :: n :: rest when int_of_string_opt n <> None ->
        let n = Option.get (int_of_string_opt n) in
        if n < 1 then begin
          Printf.eprintf "--trace-cap expects a positive integer\n";
          exit 2
        end;
        trace_cap := Some n;
        parse rest acc
    | [ "--trace-cap" ] | "--trace-cap" :: _ ->
        Printf.eprintf "--trace-cap expects a positive integer argument\n";
        exit 2
    | "--debug" :: rest ->
        debug := true;
        parse rest acc
    | "--check" :: rest ->
        check_on := true;
        parse rest acc
    | ("-j" | "--jobs") :: n :: rest when int_of_string_opt n <> None ->
        let n = Option.get (int_of_string_opt n) in
        if n < 1 then begin
          Printf.eprintf "-j expects a positive integer\n";
          exit 2
        end;
        jobs := n;
        parse rest acc
    | ("-j" | "--jobs") :: _ ->
        Printf.eprintf "-j expects a positive integer argument\n";
        exit 2
    | "--shards" :: n :: rest when int_of_string_opt n <> None ->
        let n = Option.get (int_of_string_opt n) in
        if n < 1 then begin
          Printf.eprintf "--shards expects a positive integer\n";
          exit 2
        end;
        shards := n;
        parse rest acc
    | "--shards" :: _ ->
        Printf.eprintf "--shards expects a positive integer argument\n";
        exit 2
    | name :: rest -> parse rest (name :: acc)
  in
  let wanted = parse args [] in
  let to_run =
    if wanted = [] then sections
    else
      List.map
        (fun name ->
          match List.assoc_opt name sections with
          | Some f -> (name, f)
          | None ->
              Printf.eprintf "unknown section %S; available: %s\n" name
                (String.concat ", " (List.map fst sections));
              exit 2)
        wanted
  in
  if !debug then Ispn_util.Log.setup ~level:Logs.Debug ();
  Printf.printf
    "CSZ SIGCOMM'92 reproduction benches — %.0f s simulated per run, seed \
     %Ld\n"
    !duration seed;
  List.iter (fun (name, f) -> section name f) to_run;
  (match !metrics_file with
  | None -> ()
  | Some path ->
      Ispn_obs.Metrics.write_file path !collected;
      Printf.eprintf "wrote %s\n%!" path);
  (match !series_file with
  | None -> ()
  | Some path ->
      Ispn_obs.Series.write_file path !collected_series;
      Printf.eprintf "wrote %s\n%!" path);
  if !check_violations > 0 then begin
    Printf.eprintf "--check found %d invariant violation(s)\n%!"
      !check_violations;
    exit 1
  end
