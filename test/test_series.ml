(* Time-series sampler and log-bucketed delay histograms: percentile
   accuracy against the exact Quantile oracle, export shape, and the
   -j independence of merged series exports. *)

module Metrics = Ispn_obs.Metrics
module Series = Ispn_obs.Series
module Hist = Ispn_obs.Hist
module Loghist = Ispn_util.Loghist

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- Loghist --- *)

let test_loghist_layout () =
  let h = Loghist.create ~lo:1e-3 ~hi:1e3 ~per_decade:10 () in
  Loghist.add h 1e-4;
  (* underflow *)
  Loghist.add h 1e4;
  (* overflow *)
  Loghist.add h (-1.);
  (* negative counts as underflow *)
  Loghist.add h 0.5;
  Alcotest.(check int) "count" 4 (Loghist.count h);
  Alcotest.(check int) "underflow" 2 (Loghist.underflow h);
  Alcotest.(check int) "overflow" 1 (Loghist.overflow h);
  (match Loghist.buckets h with
  | [ (lower, upper, 1) ] ->
      Alcotest.(check bool) "0.5 in its bucket" true
        (lower <= 0.5 && 0.5 < upper)
  | _ -> Alcotest.fail "expected exactly one regular bucket");
  (* p25 falls on the underflow bucket (represented as 0), p100 on
     overflow (represented as hi). *)
  Alcotest.(check (float 0.)) "underflow reads 0" 0. (Loghist.percentile h 25.);
  Alcotest.(check (float 0.)) "overflow reads hi" 1e3
    (Loghist.percentile h 100.)

let test_loghist_empty_raises () =
  let h = Loghist.create () in
  (try
     ignore (Loghist.percentile h 50.);
     Alcotest.fail "expected Invalid_argument on empty"
   with Invalid_argument _ -> ());
  try
    ignore (Loghist.create ~lo:2. ~hi:1. ());
    Alcotest.fail "expected Invalid_argument on lo >= hi"
  with Invalid_argument _ -> ()

let test_loghist_merge () =
  let a = Loghist.create () and b = Loghist.create () in
  Loghist.add a 0.001;
  Loghist.add b 0.001;
  Loghist.add b 0.1;
  Loghist.merge_into ~dst:a b;
  Alcotest.(check int) "merged count" 3 (Loghist.count a);
  let incompatible = Loghist.create ~per_decade:5 () in
  try
    Loghist.merge_into ~dst:a incompatible;
    Alcotest.fail "expected Invalid_argument on layout mismatch"
  with Invalid_argument _ -> ()

(* The satellite contract: a histogram percentile must agree with the
   exact nearest-rank value over the full sample set to within one
   bucket's relative error.  The reported value is a bucket's geometric
   midpoint, so each side is off by at most sqrt(r); r^2 leaves margin
   for the sample sitting on a bucket edge. *)
let qcheck_percentile_oracle =
  QCheck.Test.make ~name:"loghist percentile tracks exact nearest-rank"
    ~count:300
    QCheck.(list_of_size (Gen.int_range 1 400) (float_range 1e-5 99.))
    (fun samples ->
      let h = Loghist.create () in
      List.iter (Loghist.add h) samples;
      let sorted = Array.of_list (List.sort Float.compare samples) in
      let tol = Loghist.ratio h ** 2. in
      List.for_all
        (fun p ->
          let exact = Ispn_util.Quantile.of_sorted sorted (p /. 100.) in
          let approx = Loghist.percentile h p in
          approx <= exact *. tol && approx >= exact /. tol)
        [ 50.; 90.; 99.; 99.9 ])

(* --- Hist channels over a Metrics registry --- *)

let test_hist_channel_metrics () =
  let m = Metrics.create () in
  let h = Hist.create ~metrics:m () in
  let ch = Hist.channel h "link.0.wait" in
  Alcotest.(check bool) "same channel on re-get" true
    (ch == Hist.channel h "link.0.wait");
  (* Empty channel: count reads 0, percentile instruments are omitted
     (same rule as an empty distribution's min/max). *)
  Alcotest.(check (list string))
    "empty channel exports count only"
    [ "hist.link.0.wait.count" ]
    (List.map fst (Metrics.snapshot m));
  Loghist.add ch 0.004;
  let snap = Metrics.snapshot m in
  Alcotest.(check (list string))
    "percentiles appear with the first sample"
    [
      "hist.link.0.wait.count"; "hist.link.0.wait.p50"; "hist.link.0.wait.p90";
      "hist.link.0.wait.p99"; "hist.link.0.wait.p999";
    ]
    (List.map fst snap);
  match List.assoc "hist.link.0.wait.p50" snap with
  | Metrics.Float v ->
      let r = Loghist.ratio ch in
      Alcotest.(check bool) "p50 within one bucket of the only sample" true
        (v <= 0.004 *. r && v >= 0.004 /. r)
  | _ -> Alcotest.fail "expected a float percentile"

(* --- Series sampling and export --- *)

let test_series_invalid_interval () =
  let m = Metrics.create () in
  try
    ignore (Series.create ~interval:0. ~metrics:m ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_series_export_shape () =
  let m = Metrics.create () in
  let c = ref 0 in
  Metrics.register_int m "a.count" (fun () -> !c);
  let late = ref None in
  Metrics.register_opt m "b.late" (fun () -> !late);
  let s = Series.create ~interval:0.5 ~metrics:m () in
  Series.sample s ~now:0.;
  c := 3;
  late := Some (Metrics.Float 2.5);
  Series.sample s ~now:0.5;
  Alcotest.(check int) "two rows" 2 (Series.length s);
  let e = Series.export s in
  Alcotest.(check (float 0.)) "interval" 0.5 e.Series.ex_interval;
  Alcotest.(check (array (float 0.))) "times" [| 0.; 0.5 |] e.Series.ex_times;
  Alcotest.(check (list string)) "columns name-sorted"
    [ "a.count"; "b.late" ]
    (List.map fst e.Series.ex_columns);
  Alcotest.(check (array (float 0.))) "sampled column" [| 0.; 3. |]
    (List.assoc "a.count" e.Series.ex_columns);
  (* An instrument absent at some tick reads 0 there. *)
  Alcotest.(check (array (float 0.))) "absent cell reads 0" [| 0.; 2.5 |]
    (List.assoc "b.late" e.Series.ex_columns)

let test_series_render () =
  let m = Metrics.create () in
  Metrics.register_int m "a" (fun () -> 1);
  let s = Series.create ~interval:1. ~metrics:m () in
  Series.sample s ~now:0.;
  Series.sample s ~now:1.;
  let h = Hist.create ~metrics:m () in
  Loghist.add (Hist.channel h "x") 0.01;
  let labeled = [ ("run", Series.export ~hist:h s) ] in
  let js = Series.render_json labeled in
  Alcotest.(check bool) "json has times, series and hist" true
    (contains js "\"times\": [0, 1]"
    && contains js "\"a\": [1, 1]"
    && contains js "\"x\"" && contains js "\"p999\"");
  let csv = Series.render_csv labeled in
  Alcotest.(check bool) "csv long rows" true
    (contains csv "label,time,name,value"
    && contains csv "run,0,a,1" && contains csv "run,1,a,1");
  Alcotest.(check bool) "csv hist summary rows have an empty time" true
    (contains csv "run,,hist.x.count,1" && contains csv "run,,hist.x.p50,");
  (* Channels with zero samples are skipped entirely. *)
  let h2 = Hist.create () in
  ignore (Hist.channel h2 "empty");
  let e2 = Series.export ~hist:h2 s in
  Alcotest.(check int) "empty channel skipped" 0
    (List.length e2.Series.ex_hists)

let test_attach_series_ticks () =
  let e = Ispn_sim.Engine.create () in
  let m = Metrics.create () in
  let n = ref 0 in
  Metrics.register_int m "n" (fun () -> !n);
  let s = Series.create ~metrics:m () in
  Ispn_sim.Engine.attach_series e s;
  ignore (Ispn_sim.Engine.schedule_after e ~delay:2.5 (fun () -> n := 7));
  Ispn_sim.Engine.run e ~until:5.;
  let ex = Series.export s in
  Alcotest.(check bool) "at least five ticks" true
    (Array.length ex.Series.ex_times >= 5);
  Array.iteri
    (fun i t ->
      Alcotest.(check (float 0.)) "ticks at the sim-time interval"
        (float_of_int i) t)
    ex.Series.ex_times;
  let col = List.assoc "n" ex.Series.ex_columns in
  Alcotest.(check (float 0.)) "before the bump" 0. col.(2);
  Alcotest.(check (float 0.)) "after the bump" 7. col.(3)

(* --- Merge determinism across the pool --- *)

(* Job 0 simulates longer than job 1, so under -j 2 the jobs complete in
   the opposite of submission order; the merged export must not care. *)
let series_runs ~j =
  Ispn_exec.Pool.map ~j
    (fun (name, sched, dur) ->
      let m = Metrics.create () in
      let s = Series.create ~metrics:m () in
      let h = Hist.create ~metrics:m () in
      let _ =
        Csz.Experiment.run_single_link ~sched ~duration:dur ~metrics:m
          ~series:s ~hist:h ()
      in
      (name, Series.export ~hist:h s))
    [
      ("slow", Csz.Experiment.Wfq, 8.); ("fast", Csz.Experiment.Fifo, 2.);
    ]

let test_series_merge_jobs_independent () =
  let a = Series.render_json (series_runs ~j:1) in
  let b = Series.render_json (series_runs ~j:2) in
  Alcotest.(check bool) "non-trivial" true (String.length a > 200);
  Alcotest.(check string) "byte-identical across -j" a b

let suite =
  [
    Alcotest.test_case "loghist bucket layout" `Quick test_loghist_layout;
    Alcotest.test_case "loghist raises on empty and bad bounds" `Quick
      test_loghist_empty_raises;
    Alcotest.test_case "loghist merge" `Quick test_loghist_merge;
    QCheck_alcotest.to_alcotest qcheck_percentile_oracle;
    Alcotest.test_case "hist channels register instruments" `Quick
      test_hist_channel_metrics;
    Alcotest.test_case "series rejects interval 0" `Quick
      test_series_invalid_interval;
    Alcotest.test_case "series export shape" `Quick test_series_export_shape;
    Alcotest.test_case "series render json and csv" `Quick test_series_render;
    Alcotest.test_case "engine ticks at the sim-time interval" `Quick
      test_attach_series_ticks;
    Alcotest.test_case "series merge independent of -j" `Quick
      test_series_merge_jobs_independent;
  ]
