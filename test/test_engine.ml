open Ispn_sim

let test_time_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Engine.schedule e ~at:3. (note "c"));
  ignore (Engine.schedule e ~at:1. (note "a"));
  ignore (Engine.schedule e ~at:2. (note "b"));
  Engine.run e ~until:10.;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log)

let test_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Engine.schedule e ~at:1. (fun () -> log := i :: !log))
  done;
  Engine.run e ~until:2.;
  Alcotest.(check (list int)) "scheduling order on ties"
    (List.init 10 Fun.id) (List.rev !log)

let test_clock_advances_to_until () =
  let e = Engine.create () in
  Engine.run e ~until:5.;
  Alcotest.(check (float 1e-9)) "clock" 5. (Engine.now e)

let test_events_after_until_stay () =
  let e = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule e ~at:7. (fun () -> fired := true));
  Engine.run e ~until:5.;
  Alcotest.(check bool) "not yet" false !fired;
  Engine.run e ~until:10.;
  Alcotest.(check bool) "eventually" true !fired

let test_schedule_during_run () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~at:1. (fun () ->
         log := "outer" :: !log;
         ignore (Engine.schedule e ~at:2. (fun () -> log := "inner" :: !log))));
  Engine.run e ~until:3.;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log)

let test_stats_counters () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~at:1. (fun () -> ()));
  let h = Engine.schedule e ~at:2. (fun () -> ()) in
  Engine.cancel e h;
  ignore (Engine.schedule e ~at:3. (fun () -> ()));
  Engine.run e ~until:10.;
  let st = Engine.stats e in
  Alcotest.(check int) "events fired" 2 st.Engine.events_fired;
  Alcotest.(check int) "cancels skipped" 1 st.Engine.cancels_skipped

(* The hot-path regression guard: draining the engine must cost a small
   constant number of minor words per event (the event record itself plus
   heap bookkeeping), not grow with an option box per pop/peek.  This also
   pins the observability contract: the unconditional [heap_depth_hwm]
   tracking (and the disabled-metrics path generally) must stay a bare
   compare, never an allocation.  A chain of 1e6 self-rescheduling events,
   half with a cancelled decoy, stays under 64 words/event with room to
   spare. *)
let test_run_alloc_per_event () =
  let e = Engine.create () in
  let n = 1_000_000 in
  let count = ref 0 in
  let rec act () =
    incr count;
    if !count < n then begin
      ignore (Engine.schedule_after e ~delay:1e-6 act);
      if !count land 1 = 0 then
        Engine.cancel e (Engine.schedule_after e ~delay:2e-6 (fun () -> ()))
    end
  in
  ignore (Engine.schedule_after e ~delay:1e-6 act);
  let before = Gc.minor_words () in
  Engine.run e ~until:10.;
  let words = Gc.minor_words () -. before in
  let st = Engine.stats e in
  Alcotest.(check int) "all fired" n st.Engine.events_fired;
  let per_event =
    words /. float_of_int (st.Engine.events_fired + st.Engine.cancels_skipped)
  in
  if per_event > 64. then
    Alcotest.failf "%.1f minor words per event (expected O(1), <= 64)"
      per_event;
  let hwm = Engine.heap_depth_hwm e in
  if hwm < 1 || hwm > 4 then
    Alcotest.failf "heap hwm %d (expected the 1-2 live events of the chain)"
      hwm

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~at:1. (fun () -> fired := true) in
  Alcotest.(check int) "pending" 1 (Engine.pending e);
  Engine.cancel e h;
  Alcotest.(check int) "pending after cancel" 0 (Engine.pending e);
  Engine.cancel e h;
  (* idempotent *)
  Engine.run e ~until:2.;
  Alcotest.(check bool) "cancelled event silent" false !fired

let test_schedule_in_past_rejected () =
  let e = Engine.create () in
  Engine.run e ~until:5.;
  try
    ignore (Engine.schedule e ~at:1. (fun () -> ()));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_schedule_after () =
  let e = Engine.create () in
  let seen = ref 0. in
  ignore (Engine.schedule e ~at:2. (fun () ->
      ignore (Engine.schedule_after e ~delay:3. (fun () -> seen := Engine.now e))));
  Engine.run e ~until:10.;
  Alcotest.(check (float 1e-9)) "fires at 5" 5. !seen

let test_run_until_idle_budget () =
  let e = Engine.create () in
  (* A self-perpetuating event chain must trip the budget guard. *)
  let rec forever () = ignore (Engine.schedule_after e ~delay:1. forever) in
  forever ();
  try
    Engine.run_until_idle e ~max_events:100;
    Alcotest.fail "expected Failure"
  with Failure _ -> ()

let test_run_until_idle_drains () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~at:(float_of_int i) (fun () -> incr count))
  done;
  Engine.run_until_idle e ~max_events:100;
  Alcotest.(check int) "all fired" 5 !count

let qcheck_ordering =
  QCheck.Test.make ~name:"arbitrary schedules fire in nondecreasing time"
    ~count:200
    QCheck.(list_of_size (Gen.int_range 0 50) (float_range 0. 100.))
    (fun times ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iter
        (fun t -> ignore (Engine.schedule e ~at:t (fun () ->
             fired := Engine.now e :: !fired)))
        times;
      Engine.run e ~until:200.;
      let seq = List.rev !fired in
      List.length seq = List.length times
      && List.sort compare seq = seq)

let suite =
  [
    Alcotest.test_case "time ordering" `Quick test_time_ordering;
    Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
    Alcotest.test_case "clock advances to until" `Quick
      test_clock_advances_to_until;
    Alcotest.test_case "events after until stay queued" `Quick
      test_events_after_until_stay;
    Alcotest.test_case "schedule during run" `Quick test_schedule_during_run;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "stats counters" `Quick test_stats_counters;
    Alcotest.test_case "O(1) minor words per event" `Quick
      test_run_alloc_per_event;
    Alcotest.test_case "schedule in past rejected" `Quick
      test_schedule_in_past_rejected;
    Alcotest.test_case "schedule_after" `Quick test_schedule_after;
    Alcotest.test_case "run_until_idle budget" `Quick
      test_run_until_idle_budget;
    Alcotest.test_case "run_until_idle drains" `Quick
      test_run_until_idle_drains;
    QCheck_alcotest.to_alcotest qcheck_ordering;
  ]
