open Ispn_sim
module Signaling = Csz.Signaling
module Fabric = Csz.Fabric
module Spec = Ispn_admission.Spec

let make ?(n_switches = 3) () =
  let engine = Engine.create () in
  let fab = Fabric.chain ~engine ~n_switches () in
  let sig_net = Signaling.deploy ~fabric:fab () in
  (engine, fab, sig_net)

let guaranteed r = Spec.Guaranteed { clock_rate_bps = r }

let test_setup_takes_network_time () =
  let engine, _, s = make () in
  let result = ref None in
  Signaling.setup s ~flow:1 ~ingress:0 ~egress:2
    ~own_bucket:(Spec.bucket ~rate_pps:100. ~depth_packets:10. ())
    (guaranteed 100_000.)
    ~sink:(fun _ -> ())
    ~on_result:(fun r -> result := Some r);
  (* Nothing resolves synchronously: the setup message is on the wire. *)
  Alcotest.(check bool) "asynchronous" true (!result = None);
  Engine.run engine ~until:1.;
  match !result with
  | Some (Ok est) ->
      (* Two 0.5 ms control transmissions forward + 2 ms of reverse-path
         confirmation. *)
      Alcotest.(check bool)
        (Printf.sprintf "setup took %.4fs" est.Signaling.setup_time)
        true
        (est.Signaling.setup_time >= 0.0025 && est.Signaling.setup_time < 0.006);
      (match est.Signaling.advertised_bound with
      | Some b -> Alcotest.(check (float 1e-6)) "P-G bound" 0.11 b
      | None -> Alcotest.fail "expected bound");
      Alcotest.(check int) "established" 1 (Signaling.established_count s);
      Alcotest.(check int) "two control packets" 2
        (Signaling.control_packets_sent s)
  | Some (Error e) -> Alcotest.failf "refused: %s" e
  | None -> Alcotest.fail "no result"

let test_data_flows_after_establishment () =
  let engine, _, s = make () in
  let got = ref 0 in
  let emit = ref None in
  Signaling.setup s ~flow:1 ~ingress:0 ~egress:2 (guaranteed 100_000.)
    ~sink:(fun _ -> incr got)
    ~on_result:(fun r ->
      match r with Ok est -> emit := Some est.Signaling.emit | Error _ -> ());
  Engine.run engine ~until:0.1;
  (Option.get !emit) (Packet.make ~flow:1 ~seq:0 ~created:0.1 ());
  Engine.run engine ~until:0.2;
  Alcotest.(check int) "delivered end to end" 1 !got

let test_midpath_refusal_rolls_back () =
  let engine, fab, s = make () in
  (* Book most of link 1 (the second hop) with a one-hop flow. *)
  let ok = ref false in
  Signaling.setup s ~flow:1 ~ingress:1 ~egress:2 (guaranteed 500_000.)
    ~sink:(fun _ -> ())
    ~on_result:(fun r -> ok := Result.is_ok r);
  Engine.run engine ~until:0.1;
  Alcotest.(check bool) "pre-booking succeeded" true !ok;
  (* Now a two-hop flow that fits link 0 but not link 1. *)
  let refused = ref None in
  Signaling.setup s ~flow:2 ~ingress:0 ~egress:2 (guaranteed 500_000.)
    ~sink:(fun _ -> ())
    ~on_result:(fun r ->
      match r with Error e -> refused := Some e | Ok _ -> ());
  Engine.run engine ~until:0.2;
  (match !refused with
  | Some msg ->
      Alcotest.(check bool) "refused at the second hop" true
        (String.length msg >= 16 && String.sub msg 0 16 = "refused at hop 2")
  | None -> Alcotest.fail "expected refusal");
  (* The first hop's reservation was rolled back... *)
  Alcotest.(check (float 1e-6)) "link 0 clean" 0.
    (Csz.Csz_sched.guaranteed_reserved_bps (Fabric.sched fab ~link:0));
  Alcotest.(check int) "refusal counted" 1 (Signaling.refused_count s);
  (* ...so an equally big flow can still take link 0. *)
  let ok2 = ref false in
  Signaling.setup s ~flow:3 ~ingress:0 ~egress:1 (guaranteed 500_000.)
    ~sink:(fun _ -> ())
    ~on_result:(fun r -> ok2 := Result.is_ok r);
  Engine.run engine ~until:0.3;
  Alcotest.(check bool) "link 0 reusable" true !ok2

let test_concurrent_setups_race () =
  let engine, _, s = make () in
  let results = ref [] in
  List.iter
    (fun flow ->
      Signaling.setup s ~flow ~ingress:0 ~egress:2 (guaranteed 500_000.)
        ~sink:(fun _ -> ())
        ~on_result:(fun r -> results := (flow, Result.is_ok r) :: !results))
    [ 1; 2 ];
  Engine.run engine ~until:0.5;
  let winners = List.filter snd !results in
  Alcotest.(check int) "exactly one winner" 1 (List.length winners);
  Alcotest.(check int) "both resolved" 2 (List.length !results)

let test_predicted_setup_assigns_classes () =
  let engine, _, s = make () in
  let est = ref None in
  Signaling.setup s ~flow:1 ~ingress:0 ~egress:2
    (Spec.Predicted
       {
         bucket = Spec.bucket ~rate_pps:85. ~depth_packets:3. ();
         target_delay = 0.128;
         target_loss = 0.01;
       })
    ~sink:(fun _ -> ())
    ~on_result:(fun r ->
      match r with Ok e -> est := Some e | Error _ -> ());
  Engine.run engine ~until:0.5;
  match !est with
  | Some e ->
      (* 0.128 over two hops = 64 ms per hop: the loose class. *)
      Alcotest.(check (option int)) "class" (Some 1) e.Signaling.cls;
      Alcotest.(check (option (float 1e-9))) "summed targets"
        (Some 0.128) e.Signaling.advertised_bound
  | None -> Alcotest.fail "not established"

let test_teardown_releases_all_hops () =
  let engine, fab, s = make () in
  Signaling.setup s ~flow:1 ~ingress:0 ~egress:2 (guaranteed 300_000.)
    ~sink:(fun _ -> ())
    ~on_result:(fun _ -> ());
  Engine.run engine ~until:0.1;
  Signaling.teardown s ~flow:1;
  Alcotest.(check (float 1e-6)) "link 0 released" 0.
    (Csz.Csz_sched.guaranteed_reserved_bps (Fabric.sched fab ~link:0));
  Alcotest.(check (float 1e-6)) "link 1 released" 0.
    (Csz.Csz_sched.guaranteed_reserved_bps (Fabric.sched fab ~link:1));
  Alcotest.(check int) "count" 0 (Signaling.established_count s)

let test_duplicate_setup_rejected () =
  let _, _, s = make () in
  Signaling.setup s ~flow:1 ~ingress:0 ~egress:2 (guaranteed 1000.)
    ~sink:(fun _ -> ())
    ~on_result:(fun _ -> ());
  try
    Signaling.setup s ~flow:1 ~ingress:0 ~egress:2 (guaranteed 1000.)
      ~sink:(fun _ -> ())
      ~on_result:(fun _ -> ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_no_route () =
  let _, _, s = make () in
  let got = ref None in
  Signaling.setup s ~flow:1 ~ingress:2 ~egress:0 (guaranteed 1000.)
    ~sink:(fun _ -> ())
    ~on_result:(fun r -> got := Some r);
  match !got with
  | Some (Error "no route") -> ()
  | Some _ | None -> Alcotest.fail "expected immediate no-route error"

let test_setup_queues_behind_data () =
  (* With the datagram class saturated, the control packet itself waits:
     establishment latency grows — signaling is genuinely in-band. *)
  let engine, fab, s = make () in
  for link = 0 to 1 do
    Fabric.install_flow fab ~flow:(500 + link) ~ingress:link
      ~egress:(link + 1)
      ~sink:(fun _ -> ());
    let src =
      Ispn_traffic.Greedy.create ~engine ~flow:(500 + link) ~rate_pps:950.
        ~burst_packets:50
        ~emit:(fun p -> Fabric.inject fab ~at_switch:link p)
        ()
    in
    src.Ispn_traffic.Source.start ()
  done;
  Engine.run engine ~until:0.05;
  let est_time = ref None in
  Signaling.setup s ~flow:1 ~ingress:0 ~egress:2 (guaranteed 50_000.)
    ~sink:(fun _ -> ())
    ~on_result:(fun r ->
      match r with
      | Ok e -> est_time := Some e.Signaling.setup_time
      | Error _ -> ());
  Engine.run engine ~until:2.;
  match !est_time with
  | Some time ->
      Alcotest.(check bool)
        (Printf.sprintf "setup slowed by load (%.4fs)" time)
        true (time > 0.006)
  | None -> Alcotest.fail "setup did not complete"

(* --- Robustness: timeouts, retries, crashes, degradation --- *)

let make_robust ?(n_switches = 3) ?(setup_timeout = 0.02) ?(max_retries = 6) ()
    =
  let engine = Engine.create () in
  let fab = Fabric.chain ~engine ~n_switches () in
  let s = Signaling.deploy ~fabric:fab ~setup_timeout ~max_retries () in
  (engine, fab, s)

let test_dark_link_retries_until_repair () =
  (* The acceptance scenario: a mid-path link is dark when the setup
     launches; the message times out, is retransmitted with backoff, and
     the attempt in flight when the link is repaired establishes the
     flow. *)
  let engine, fab, s = make_robust () in
  Link.set_up (Fabric.link fab 1) false;
  let result = ref None in
  Signaling.setup s ~flow:1 ~ingress:0 ~egress:2 (guaranteed 100_000.)
    ~sink:(fun _ -> ())
    ~on_result:(fun r -> result := Some r);
  ignore
    (Engine.schedule engine ~at:0.1 (fun () ->
         Link.set_up (Fabric.link fab 1) true));
  Engine.run engine ~until:2.;
  (match !result with
  | Some (Ok _) -> ()
  | Some (Error e) -> Alcotest.failf "refused: %s" e
  | None -> Alcotest.fail "no result");
  Alcotest.(check bool) "retried while dark" true (Signaling.retries s > 0);
  Alcotest.(check int) "established" 1 (Signaling.established_count s);
  Alcotest.(check int) "nothing abandoned" 0 (Signaling.abandoned_count s)

let test_abandoned_setup_leaves_no_residue () =
  let engine, fab, s = make_robust ~setup_timeout:0.01 ~max_retries:2 () in
  Link.set_up (Fabric.link fab 1) false;
  let result = ref None in
  Signaling.setup s ~flow:7 ~ingress:0 ~egress:2 (guaranteed 200_000.)
    ~sink:(fun _ -> ())
    ~on_result:(fun r -> result := Some r);
  Engine.run engine ~until:5.;
  (match !result with
  | Some (Error msg) ->
      Alcotest.(check bool)
        (Printf.sprintf "timeout error (%s)" msg)
        true
        (String.length msg >= 15 && String.sub msg 0 15 = "setup timed out")
  | Some (Ok _) -> Alcotest.fail "should not establish over a dead link"
  | None -> Alcotest.fail "no result");
  Alcotest.(check int) "abandoned" 1 (Signaling.abandoned_count s);
  Alcotest.(check int) "counted as a refusal" 1 (Signaling.refused_count s);
  Alcotest.(check int) "used the whole retry budget" 2 (Signaling.retries s);
  (* Links 0 and 1 were reserved before the setup went dark at hop 2; the
     rollback must leave no residue at either. *)
  for link = 0 to 1 do
    Alcotest.(check bool)
      (Printf.sprintf "controller %d clean" link)
      false
      (Ispn_admission.Controller.mem (Signaling.controller s ~link) ~flow:7);
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "sched %d clean" link)
      0.
      (Csz.Csz_sched.guaranteed_reserved_bps (Fabric.sched fab ~link))
  done

let test_deploy_validates_parameters () =
  let engine = Engine.create () in
  let fab = Fabric.chain ~engine ~n_switches:3 () in
  let expect msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  expect "Signaling.deploy: class_targets must be non-empty" (fun () ->
      ignore (Signaling.deploy ~fabric:fab ~class_targets:[||] ()));
  expect "Signaling.deploy: class_targets must be positive" (fun () ->
      ignore (Signaling.deploy ~fabric:fab ~class_targets:[| 0.; 0.01 |] ()));
  expect "Signaling.deploy: class_targets must be strictly increasing"
    (fun () ->
      ignore
        (Signaling.deploy ~fabric:fab ~class_targets:[| 0.064; 0.008 |] ()));
  expect "Signaling.deploy: setup_timeout must be positive" (fun () ->
      ignore (Signaling.deploy ~fabric:fab ~setup_timeout:0. ()));
  expect "Signaling.deploy: max_retries must be non-negative" (fun () ->
      ignore (Signaling.deploy ~fabric:fab ~max_retries:(-1) ()))

let test_crash_reestablishes_same_level () =
  let engine, fab, s = make_robust () in
  let ok = ref false in
  Signaling.setup s ~flow:1 ~ingress:0 ~egress:2
    ~own_bucket:(Spec.bucket ~rate_pps:100. ~depth_packets:10. ())
    (guaranteed 300_000.)
    ~sink:(fun _ -> ())
    ~on_result:(fun r -> ok := Result.is_ok r);
  Engine.run engine ~until:0.1;
  Alcotest.(check bool) "established" true !ok;
  Signaling.crash_agent s ~switch:1;
  Alcotest.(check (float 1e-6)) "crash wiped link 1" 0.
    (Csz.Csz_sched.guaranteed_reserved_bps (Fabric.sched fab ~link:1));
  Engine.run engine ~until:0.2;
  Alcotest.(check int) "crash counted" 1 (Signaling.crash_count s);
  Alcotest.(check int) "reestablished" 1 (Signaling.reestablished_count s);
  Alcotest.(check int) "no degradation needed" 0 (Signaling.degraded_count s);
  (match Signaling.service_level s ~flow:1 with
  | Some Signaling.Guaranteed -> ()
  | Some l -> Alcotest.failf "degraded to %s" (Signaling.level_name l)
  | None -> Alcotest.fail "flow gone");
  (* The forgotten hop was re-reserved; the surviving hop kept its grant. *)
  Alcotest.(check (float 1e-6)) "link 1 re-reserved" 300_000.
    (Csz.Csz_sched.guaranteed_reserved_bps (Fabric.sched fab ~link:1));
  Alcotest.(check (float 1e-6)) "link 0 undisturbed" 300_000.
    (Csz.Csz_sched.guaranteed_reserved_bps (Fabric.sched fab ~link:0));
  Alcotest.(check bool) "recovery latency recorded" true
    (Signaling.mean_reestablish_latency s > 0.)

let test_crash_degrades_when_capacity_usurped () =
  let engine, fab, s = make_robust () in
  let ok = ref false in
  Signaling.setup s ~flow:1 ~ingress:0 ~egress:2
    ~own_bucket:(Spec.bucket ~rate_pps:100. ~depth_packets:5. ())
    (guaranteed 300_000.)
    ~sink:(fun _ -> ())
    ~on_result:(fun r -> ok := Result.is_ok r);
  Engine.run engine ~until:0.1;
  Alcotest.(check bool) "established" true !ok;
  Signaling.crash_agent s ~switch:1;
  (* A newcomer grabs the freed capacity before the victim's re-assertion
     fires: re-admission at the guaranteed rung must now fail. *)
  let usurper_ok = ref false in
  Signaling.setup s ~flow:2 ~ingress:1 ~egress:2 (guaranteed 650_000.)
    ~sink:(fun _ -> ())
    ~on_result:(fun r -> usurper_ok := Result.is_ok r);
  Engine.run engine ~until:0.5;
  Alcotest.(check bool) "usurper admitted" true !usurper_ok;
  (match Signaling.service_level s ~flow:1 with
  | Some Signaling.Predicted -> ()
  | Some l ->
      Alcotest.failf "expected predicted, got %s" (Signaling.level_name l)
  | None -> Alcotest.fail "victim lost entirely");
  Alcotest.(check bool) "degradation counted" true
    (Signaling.degraded_count s >= 1);
  Alcotest.(check int) "reestablished one rung down" 1
    (Signaling.reestablished_count s);
  (* The victim's guaranteed reservation is gone; only the usurper's
     remains on the contested link. *)
  Alcotest.(check (float 1e-6)) "link 1 guaranteed = usurper only" 650_000.
    (Csz.Csz_sched.guaranteed_reserved_bps (Fabric.sched fab ~link:1))

(* --- Soft state: refresh, timeout expiry, lossy teardown --- *)

let make_soft ?(n_switches = 3) ?(refresh_interval = 0.1)
    ?(lifetime_epochs = 3) ?(setup_timeout = 0.02) ?(max_retries = 6) () =
  let engine = Engine.create () in
  let fab = Fabric.chain ~engine ~n_switches () in
  let s =
    Signaling.deploy ~fabric:fab ~setup_timeout ~max_retries ~refresh_interval
      ~lifetime_epochs ()
  in
  (engine, fab, s)

let establish ?(flow = 1) ?(ingress = 0) ?(egress = 2) ?(rate = 300_000.)
    engine s =
  let ok = ref false in
  Signaling.setup s ~flow ~ingress ~egress (guaranteed rate)
    ~sink:(fun p -> Packet.free p)
    ~on_result:(fun r -> ok := Result.is_ok r);
  Engine.run engine ~until:(Engine.now engine +. 0.05);
  Alcotest.(check bool) "established" true !ok

let test_refresh_keeps_state_alive () =
  (* An established flow outlives many lifetimes: the periodic refresh
     re-stamps every agent, so the expiry sweep never fires. *)
  let engine, fab, s = make_soft () in
  establish engine s;
  Engine.run engine ~until:2.;
  Alcotest.(check int) "still established" 1 (Signaling.established_count s);
  Alcotest.(check bool) "refreshed many times" true
    (Signaling.refresh_epochs s > 10);
  Alcotest.(check bool) "refresh legs on the wire" true
    (Signaling.refresh_packets_sent s > 10);
  Alcotest.(check int) "nothing expired" 0 (Signaling.expired_count s);
  for link = 0 to 1 do
    Alcotest.(check int)
      (Printf.sprintf "stamped at agent %d" link)
      1
      (Signaling.soft_state_count s ~link)
  done;
  Alcotest.(check (float 1e-6)) "reservation held" 300_000.
    (Csz.Csz_sched.guaranteed_reserved_bps (Fabric.sched fab ~link:1))

let test_lost_teardown_reclaimed_by_expiry () =
  (* The acceptance scenario: the teardown message is lost on the wire, so
     the downstream agent still holds the reservation — until the refresh
     timeout expires it.  No reliable teardown protocol is involved. *)
  let engine, fab, s = make_soft () in
  establish engine s;
  (* Eat everything on link 0's wire while the teardown leg crosses it. *)
  Link.set_wire_filter (Fabric.link fab 0) (fun p ->
      Packet.free p;
      None);
  Signaling.depart s ~flow:1;
  Engine.run engine ~until:(Engine.now engine +. 0.02);
  Link.set_wire_filter (Fabric.link fab 0) (fun p -> Some p);
  (* The ingress hop released locally; hop 1 is stranded. *)
  Alcotest.(check bool) "hop 0 released" false
    (Ispn_admission.Controller.mem (Signaling.controller s ~link:0) ~flow:1);
  Alcotest.(check bool) "hop 1 stranded" true
    (Ispn_admission.Controller.mem (Signaling.controller s ~link:1) ~flow:1);
  Alcotest.(check int) "session gone" 0 (Signaling.established_count s);
  (* No refresh pump runs for a departed flow, so the stamp goes stale and
     the sweep reclaims the reservation within one lifetime + one sweep. *)
  Engine.run engine ~until:(Engine.now engine +. 0.5);
  Alcotest.(check bool) "hop 1 reclaimed" false
    (Ispn_admission.Controller.mem (Signaling.controller s ~link:1) ~flow:1);
  Alcotest.(check bool) "expiry counted" true (Signaling.expired_count s >= 1);
  Alcotest.(check (float 1e-6)) "capacity freed" 0.
    (Csz.Csz_sched.guaranteed_reserved_bps (Fabric.sched fab ~link:1));
  Alcotest.(check int) "no stamps left" 0 (Signaling.soft_state_count s ~link:1);
  (* The reclaimed capacity is genuinely reusable. *)
  let ok = ref false in
  Signaling.setup s ~flow:2 ~ingress:1 ~egress:2 (guaranteed 700_000.)
    ~sink:(fun p -> Packet.free p)
    ~on_result:(fun r -> ok := Result.is_ok r);
  Engine.run engine ~until:(Engine.now engine +. 0.1);
  Alcotest.(check bool) "capacity reusable" true !ok

let test_refresh_reasserts_after_silent_wipe () =
  (* A remote agent loses its book with no crash notification (partition,
     expiry on its side).  Nothing tells the ingress — the next refresh
     pass discovers the missing hop and re-asserts it.  Pure soft-state
     self-healing, driven by timers alone. *)
  let engine, _, s = make_soft () in
  establish engine s;
  Ispn_admission.Controller.reset (Signaling.controller s ~link:1);
  Alcotest.(check bool) "hop 1 forgotten" false
    (Ispn_admission.Controller.mem (Signaling.controller s ~link:1) ~flow:1);
  Engine.run engine ~until:(Engine.now engine +. 0.3);
  Alcotest.(check bool) "hop 1 re-asserted" true
    (Ispn_admission.Controller.mem (Signaling.controller s ~link:1) ~flow:1);
  Alcotest.(check bool) "re-assert pass completed" true
    (Signaling.reestablished_count s >= 1);
  (match Signaling.service_level s ~flow:1 with
  | Some Signaling.Guaranteed -> ()
  | Some l -> Alcotest.failf "degraded to %s" (Signaling.level_name l)
  | None -> Alcotest.fail "flow gone")

let test_depart_clean_counts () =
  (* With a healthy wire, depart is just a slower teardown: every hop
     releases on the message's arrival, nothing is left to expire. *)
  let engine, fab, s = make_soft () in
  establish engine s;
  Signaling.depart s ~flow:1;
  Engine.run engine ~until:(Engine.now engine +. 0.05);
  Alcotest.(check int) "gone" 0 (Signaling.established_count s);
  Alcotest.(check int) "teardown counted" 1 (Signaling.teardown_count s);
  Alcotest.(check bool) "teardown leg on the wire" true
    (Signaling.teardown_packets_sent s >= 1);
  for link = 0 to 1 do
    Alcotest.(check bool)
      (Printf.sprintf "hop %d released" link)
      false
      (Ispn_admission.Controller.mem (Signaling.controller s ~link) ~flow:1);
    Alcotest.(check int)
      (Printf.sprintf "no stamp at %d" link)
      0
      (Signaling.soft_state_count s ~link)
  done;
  Alcotest.(check (float 1e-6)) "capacity freed" 0.
    (Csz.Csz_sched.guaranteed_reserved_bps (Fabric.sched fab ~link:1));
  Engine.run engine ~until:(Engine.now engine +. 1.);
  Alcotest.(check int) "nothing ever expires" 0 (Signaling.expired_count s)

let test_abandoned_setup_during_refresh_epochs () =
  (* Satellite regression: flow A refreshes steadily while flow B's setup
     goes dark mid-path and is abandoned after max_retries.  The rollback
     must be complete, the dark link's queued setup copies must be ignored
     as stale when the link heals (typed tokens: they can never be taken
     for refreshes), and A must be entirely undisturbed. *)
  let engine, fab, s =
    make_soft ~setup_timeout:0.01 ~max_retries:2 ()
  in
  establish engine s;
  (* A has refreshed at least once with its state intact. *)
  Engine.run engine ~until:(Engine.now engine +. 0.25);
  Alcotest.(check bool) "A refreshing" true (Signaling.refresh_epochs s >= 2);
  Link.set_up (Fabric.link fab 1) false;
  let result = ref None in
  Signaling.setup s ~flow:7 ~ingress:0 ~egress:2 (guaranteed 200_000.)
    ~sink:(fun p -> Packet.free p)
    ~on_result:(fun r -> result := Some r);
  Engine.run engine ~until:(Engine.now engine +. 1.);
  (match !result with
  | Some (Error _) -> ()
  | Some (Ok _) -> Alcotest.fail "B established over a dead link"
  | None -> Alcotest.fail "B never resolved");
  Alcotest.(check int) "B abandoned" 1 (Signaling.abandoned_count s);
  (* Heal the link: B's queued setup copies arrive at the egress agent with
     invalidated tokens and must do nothing. *)
  Link.set_up (Fabric.link fab 1) true;
  Engine.run engine ~until:(Engine.now engine +. 1.);
  for link = 0 to 1 do
    Alcotest.(check bool)
      (Printf.sprintf "no B residue at hop %d" link)
      false
      (Ispn_admission.Controller.mem (Signaling.controller s ~link) ~flow:7)
  done;
  Alcotest.(check int) "only A is established" 1
    (Signaling.established_count s);
  Alcotest.(check int) "no stale establishment" 1
    (Signaling.total_established s);
  Alcotest.(check int) "A alone is stamped at hop 1" 1
    (Signaling.soft_state_count s ~link:1);
  (match Signaling.service_level s ~flow:1 with
  | Some Signaling.Guaranteed -> ()
  | _ -> Alcotest.fail "A disturbed");
  Alcotest.(check (float 1e-6)) "A's reservation alone on link 1" 300_000.
    (Csz.Csz_sched.guaranteed_reserved_bps (Fabric.sched fab ~link:1));
  Alcotest.(check int) "A never expired" 0 (Signaling.expired_count s)

let test_deploy_validates_soft_state_parameters () =
  let engine = Engine.create () in
  let fab = Fabric.chain ~engine ~n_switches:3 () in
  let expect msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  expect "Signaling.deploy: refresh_interval must be positive" (fun () ->
      ignore (Signaling.deploy ~fabric:fab ~refresh_interval:0. ()));
  expect "Signaling.deploy: lifetime_epochs must be at least 1" (fun () ->
      ignore
        (Signaling.deploy ~fabric:fab ~refresh_interval:1. ~lifetime_epochs:0
           ()))

let suite =
  [
    Alcotest.test_case "setup takes network time" `Quick
      test_setup_takes_network_time;
    Alcotest.test_case "data flows after establishment" `Quick
      test_data_flows_after_establishment;
    Alcotest.test_case "mid-path refusal rolls back" `Quick
      test_midpath_refusal_rolls_back;
    Alcotest.test_case "concurrent setups race" `Quick
      test_concurrent_setups_race;
    Alcotest.test_case "predicted setup assigns classes" `Quick
      test_predicted_setup_assigns_classes;
    Alcotest.test_case "teardown releases all hops" `Quick
      test_teardown_releases_all_hops;
    Alcotest.test_case "duplicate setup rejected" `Quick
      test_duplicate_setup_rejected;
    Alcotest.test_case "no route" `Quick test_no_route;
    Alcotest.test_case "setup queues behind data" `Quick
      test_setup_queues_behind_data;
    Alcotest.test_case "dark link: retries until repair" `Quick
      test_dark_link_retries_until_repair;
    Alcotest.test_case "abandoned setup leaves no residue" `Quick
      test_abandoned_setup_leaves_no_residue;
    Alcotest.test_case "deploy validates parameters" `Quick
      test_deploy_validates_parameters;
    Alcotest.test_case "crash re-establishes same level" `Quick
      test_crash_reestablishes_same_level;
    Alcotest.test_case "crash degrades when capacity usurped" `Quick
      test_crash_degrades_when_capacity_usurped;
    Alcotest.test_case "refresh keeps state alive" `Quick
      test_refresh_keeps_state_alive;
    Alcotest.test_case "lost teardown reclaimed by expiry" `Quick
      test_lost_teardown_reclaimed_by_expiry;
    Alcotest.test_case "refresh re-asserts after silent wipe" `Quick
      test_refresh_reasserts_after_silent_wipe;
    Alcotest.test_case "depart: clean teardown counts" `Quick
      test_depart_clean_counts;
    Alcotest.test_case "abandoned setup during refresh epochs" `Quick
      test_abandoned_setup_during_refresh_epochs;
    Alcotest.test_case "deploy validates soft-state parameters" `Quick
      test_deploy_validates_soft_state_parameters;
  ]
