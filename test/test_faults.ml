(* Fault plans and the injector: link outages, wire corruption, crash
   reporting — and the Link failure model they drive. *)
open Ispn_sim
module Plan = Ispn_faults.Plan
module Inject = Ispn_faults.Inject

let mk_packet ?(flow = 0) ?(seq = 0) ?(created = 0.) () =
  Packet.make ~flow ~seq ~created ()

let make_link engine ?(capacity = 10) () =
  let pool = Qdisc.pool ~capacity in
  let qdisc = Ispn_sched.Fifo.create ~pool () in
  Link.create ~engine ~rate_bps:1e6 ~qdisc ~name:"faulty" ()

(* --- Link failure model --- *)

let test_down_loses_in_flight_repair_restarts () =
  let engine = Engine.create () in
  let link = make_link engine () in
  let arrivals = ref [] in
  Link.set_receiver link (fun p ->
      arrivals := ((Packet.seq p), Engine.now engine) :: !arrivals);
  let lost = ref [] in
  Link.set_drop_hook link (fun p -> lost := (Packet.seq p) :: !lost);
  for seq = 0 to 2 do
    Link.send link (mk_packet ~seq ())
  done;
  (* Packet 1 is on the wire at 1.5 ms: the outage loses exactly it. *)
  ignore
    (Engine.schedule engine ~at:0.0015 (fun () -> Link.set_up link false));
  ignore (Engine.schedule engine ~at:0.01 (fun () -> Link.set_up link true));
  Engine.run engine ~until:0.1;
  Alcotest.(check bool) "up again" true (Link.is_up link);
  Alcotest.(check (list int)) "in-flight frame lost" [ 1 ] !lost;
  Alcotest.(check int) "dropped counted" 1 (Link.dropped link);
  (match List.rev !arrivals with
  | [ (0, t0); (2, t2) ] ->
      Alcotest.(check (float 1e-9)) "pre-outage delivery" 0.001 t0;
      (* Repair restarts the transmitter from the backlog immediately. *)
      Alcotest.(check (float 1e-9)) "post-repair delivery" 0.011 t2
  | _ -> Alcotest.fail "expected packets 0 and 2 only");
  Alcotest.(check int) "sent counts deliveries only" 2 (Link.sent link)

let test_down_queues_and_overflows () =
  let engine = Engine.create () in
  let link = make_link engine ~capacity:10 () in
  let got = ref 0 in
  Link.set_receiver link (fun _ -> incr got);
  Link.set_up link false;
  (* 15 sends against a 10-packet buffer: 10 queue behind the dead
     transmitter, 5 overflow. *)
  for seq = 0 to 14 do
    Link.send link (mk_packet ~seq ())
  done;
  Engine.run engine ~until:0.005;
  Alcotest.(check int) "nothing delivered while down" 0 !got;
  Alcotest.(check int) "overflow drops while down" 5 (Link.dropped link);
  Link.set_up link true;
  Engine.run engine ~until:0.1;
  Alcotest.(check int) "backlog drains after repair" 10 !got

let test_redundant_transitions_are_noops () =
  let engine = Engine.create () in
  let link = make_link engine () in
  let got = ref 0 in
  Link.set_receiver link (fun _ -> incr got);
  Link.set_up link true;
  (* Already up: must not double-start the transmitter. *)
  Link.send link (mk_packet ());
  Link.set_up link true;
  Engine.run engine ~until:0.01;
  Alcotest.(check int) "delivered once" 1 !got;
  Link.set_up link false;
  Link.set_up link false;
  Alcotest.(check bool) "down" false (Link.is_up link)

(* --- Injector: link events from a plan --- *)

let test_inject_link_down_event () =
  let engine = Engine.create () in
  let link = make_link engine () in
  let got = ref 0 in
  Link.set_receiver link (fun _ -> incr got);
  let stats =
    Inject.apply ~engine ~links:[| link |]
      [ Plan.Link_down { link = 0; at = 0.0015; duration = 0.004 } ]
  in
  for seq = 0 to 4 do
    Link.send link (mk_packet ~seq ())
  done;
  Engine.run engine ~until:0.1;
  Alcotest.(check int) "downs" 1 stats.Inject.downs;
  Alcotest.(check int) "repairs" 1 stats.Inject.repairs;
  Alcotest.(check int) "in-flight frame lost" 1 (Link.dropped link);
  Alcotest.(check int) "rest delivered" 4 !got

let test_inject_rejects_unknown_link () =
  let engine = Engine.create () in
  let link = make_link engine () in
  Alcotest.check_raises "out-of-range link"
    (Invalid_argument "Inject.apply: link 3 out of range")
    (fun () ->
      ignore
        (Inject.apply ~engine ~links:[| link |]
           [ Plan.Link_down { link = 3; at = 0.; duration = 1. } ]))

let test_agent_crash_reported () =
  let engine = Engine.create () in
  let link = make_link engine () in
  let crashed = ref [] in
  let stats =
    Inject.apply ~engine ~links:[| link |]
      ~on_agent_crash:(fun ~switch ->
        crashed := (switch, Engine.now engine) :: !crashed)
      [ Plan.Agent_crash { switch = 2; at = 0.5 } ]
  in
  Engine.run engine ~until:1.;
  Alcotest.(check int) "crashes counted" 1 stats.Inject.crashes;
  match !crashed with
  | [ (2, t) ] -> Alcotest.(check (float 1e-9)) "at plan time" 0.5 t
  | _ -> Alcotest.fail "expected one crash at switch 2"

(* --- Injector: wire corruption --- *)

let test_corruption_stats_account_for_every_packet () =
  let engine = Engine.create () in
  let link = make_link engine ~capacity:300 () in
  let got = ref 0 in
  Link.set_receiver link (fun _ -> incr got);
  let n = 200 in
  let stats =
    Inject.apply ~engine ~links:[| link |]
      [ Plan.Corrupt { link = 0; from_ = 0.; until = 10.; per_packet = 1.0 } ]
  in
  for seq = 0 to n - 1 do
    Link.send link (mk_packet ~flow:3 ~seq ())
  done;
  Engine.run engine ~until:10.;
  Alcotest.(check int) "every packet hit" n stats.Inject.corrupted;
  (* One flipped header bit either malforms the header, mangles an
     identifying field, or only perturbs the offset: the three outcomes
     partition the corrupted packets. *)
  Alcotest.(check int) "drops = malformed + mangled"
    (stats.Inject.malformed + stats.Inject.mangled)
    (Link.dropped link);
  Alcotest.(check int) "delivered the rest" (n - Link.dropped link) !got;
  Alcotest.(check bool) "some malformed" true (stats.Inject.malformed > 0);
  Alcotest.(check bool) "some mangled" true (stats.Inject.mangled > 0);
  Alcotest.(check bool) "some survive with a bent offset" true (!got > 0)

let test_corruption_window_closes () =
  let engine = Engine.create () in
  let link = make_link engine ~capacity:300 () in
  let got = ref 0 in
  Link.set_receiver link (fun _ -> incr got);
  let stats =
    Inject.apply ~engine ~links:[| link |]
      [
        Plan.Corrupt { link = 0; from_ = 1.; until = 2.; per_packet = 1.0 };
      ]
  in
  (* All traffic before the window opens: nothing may be touched. *)
  for seq = 0 to 49 do
    Link.send link (mk_packet ~seq ())
  done;
  Engine.run engine ~until:0.5;
  Alcotest.(check int) "untouched outside window" 0 stats.Inject.corrupted;
  Alcotest.(check int) "all delivered" 50 !got

(* --- Plans --- *)

let test_random_plan_deterministic () =
  let draw seed =
    Plan.random ~seed ~n_links:4 ~duration:100. ~mtbf:80. ~mttr:2.
      ~corrupt_windows:2 ~crashes:2 ()
  in
  Alcotest.(check bool) "same seed, same plan" true (draw 7L = draw 7L);
  Alcotest.(check bool) "different seed, different plan" true
    (draw 7L <> draw 8L);
  let plan = draw 7L in
  Alcotest.(check bool) "has events" true (List.length plan >= 4);
  let sorted = List.sort (fun a b -> compare (Plan.time_of a) (Plan.time_of b)) in
  Alcotest.(check bool) "sorted by start time" true (sorted plan = plan);
  List.iter
    (fun ev ->
      match ev with
      | Plan.Link_down { link; at; duration } ->
          Alcotest.(check bool) "link in range" true (link >= 0 && link < 4);
          Alcotest.(check bool) "down inside run" true
            (at >= 0. && at <= 100. && duration > 0.)
      | Plan.Corrupt { link; from_; until; per_packet } ->
          Alcotest.(check bool) "corrupt in range" true
            (link >= 0 && link < 4 && from_ >= 0. && until > from_
           && per_packet = 0.1)
      | Plan.Agent_crash { switch; at } ->
          Alcotest.(check bool) "crash in range" true
            (switch >= 0 && switch < 4 && at >= 0. && at <= 100.))
    plan

(* --- Interleaving fuzz: the soft-state lifecycle under random schedules ---

   Random interleavings of session setup, departure, reliable teardown,
   off-schedule refresh and agent crashes on a 4-switch chain, with the
   refresh/timeout machinery live throughout.  Whatever the schedule, once
   the dust settles the control plane must be exactly clean: no
   double-reserve survives (admissions = releases at every agent), no
   residue (no live book entries, no soft-state stamps, zero reserved
   bandwidth), and every flow id supports an idempotent re-setup. *)

module Fabric = Csz.Fabric
module Signaling = Csz.Signaling
module Spec = Ispn_admission.Spec
module Controller = Ispn_admission.Controller

type slot_state = Free | Pending | Active | Draining of float

let prop_lifecycle_interleavings =
  let ri = 0.05 in
  let lifetime = 3. *. ri in
  (* Drained slots stay quarantined until any soft-state residue of the
     previous incarnation has provably expired (DESIGN.md, session
     lifecycle): a fresh setup under the same flow id before that could
     meet its predecessor's reservation at a downstream agent. *)
  let quarantine = lifetime +. (2.1 *. ri) in
  QCheck.Test.make ~count:40 ~name:"soft-state lifecycle interleavings"
    QCheck.(list_of_size Gen.(int_range 10 60) (int_bound 1000))
    (fun ops ->
      let engine = Engine.create () in
      let fab = Fabric.chain ~engine ~n_switches:4 () in
      let s =
        Signaling.deploy ~fabric:fab ~setup_timeout:0.01 ~max_retries:3
          ~refresh_interval:ri ()
      in
      let n_slots = 4 in
      let st = Array.make n_slots Free in
      let flow_of slot = 1 + slot in
      let spec_of k =
        match k mod 3 with
        | 0 ->
            Spec.Guaranteed
              {
                clock_rate_bps = 60_000. +. (30_000. *. float_of_int (k mod 5));
              }
        | 1 ->
            Spec.Predicted
              {
                bucket = Spec.bucket ~rate_pps:50. ~depth_packets:4. ();
                target_delay = 0.128;
                target_loss = 0.01;
              }
        | _ -> Spec.Datagram
      in
      let advance dt = Engine.run engine ~until:(Engine.now engine +. dt) in
      let do_setup slot k =
        st.(slot) <- Pending;
        Signaling.setup s ~flow:(flow_of slot) ~ingress:0 ~egress:3 (spec_of k)
          ~sink:Packet.free ~on_result:(fun r ->
            st.(slot) <-
              (match r with
              | Ok _ -> Active
              | Error _ -> Draining (Engine.now engine)))
      in
      List.iter
        (fun op ->
          let slot = op mod n_slots in
          (match (op / n_slots) mod 6 with
          | 0 | 1 -> (
              match st.(slot) with
              | Free -> do_setup slot op
              | Draining t when Engine.now engine -. t > quarantine ->
                  do_setup slot op
              | _ -> ())
          | 2 -> (
              match st.(slot) with
              | Active ->
                  Signaling.depart s ~flow:(flow_of slot);
                  st.(slot) <- Draining (Engine.now engine)
              | _ -> ())
          | 3 -> (
              match st.(slot) with
              | Active ->
                  Signaling.teardown s ~flow:(flow_of slot);
                  st.(slot) <- Draining (Engine.now engine)
              | _ -> ())
          | 4 -> (
              match st.(slot) with
              | Active -> Signaling.refresh_now s ~flow:(flow_of slot)
              | _ -> ())
          | _ -> Signaling.crash_agent s ~switch:(op mod Fabric.n_links fab));
          advance (0.002 *. float_of_int (1 + (op mod 10))))
        ops;
      (* Let retry budgets, crash re-assertions and refresh epochs settle,
         then depart everything still up and wait out the lifetime. *)
      advance 1.;
      for slot = 0 to n_slots - 1 do
        match st.(slot) with
        | Active -> Signaling.depart s ~flow:(flow_of slot)
        | _ -> ()
      done;
      advance (quarantine +. 1.);
      let clean = ref true in
      let dirty fmt =
        Printf.ksprintf
          (fun m ->
            clean := false;
            print_endline ("lifecycle fuzz: " ^ m))
          fmt
      in
      if Signaling.established_count s <> 0 then
        dirty "%d sessions survive quiescence" (Signaling.established_count s);
      for link = 0 to Fabric.n_links fab - 1 do
        let c = Signaling.controller s ~link in
        if Controller.live c <> 0 then
          dirty "agent %d books %d live flows" link (Controller.live c);
        if Controller.admissions c <> Controller.releases c then
          dirty "agent %d: %d admissions vs %d releases" link
            (Controller.admissions c) (Controller.releases c);
        if Signaling.soft_state_count s ~link <> 0 then
          dirty "agent %d holds %d stamps" link
            (Signaling.soft_state_count s ~link);
        let g = Csz.Csz_sched.guaranteed_reserved_bps (Fabric.sched fab ~link) in
        if g <> 0. then dirty "link %d still reserves %.0f bps" link g
      done;
      (* Idempotent re-setup: every id must come straight back at full
         service, whatever its history. *)
      let back = ref 0 in
      for slot = 0 to n_slots - 1 do
        Signaling.setup s ~flow:(flow_of slot) ~ingress:0 ~egress:3
          (Spec.Guaranteed { clock_rate_bps = 100_000. })
          ~sink:Packet.free ~on_result:(fun r ->
            if Result.is_ok r then incr back)
      done;
      advance 0.5;
      if !back <> n_slots then dirty "only %d/%d ids re-setup cleanly" !back n_slots;
      !clean)

let suite =
  [
    Alcotest.test_case "down loses in-flight, repair restarts" `Quick
      test_down_loses_in_flight_repair_restarts;
    Alcotest.test_case "down queues and overflows" `Quick
      test_down_queues_and_overflows;
    Alcotest.test_case "redundant transitions are no-ops" `Quick
      test_redundant_transitions_are_noops;
    Alcotest.test_case "inject link-down event" `Quick
      test_inject_link_down_event;
    Alcotest.test_case "inject rejects unknown link" `Quick
      test_inject_rejects_unknown_link;
    Alcotest.test_case "agent crash reported" `Quick test_agent_crash_reported;
    Alcotest.test_case "corruption stats account for every packet" `Quick
      test_corruption_stats_account_for_every_packet;
    Alcotest.test_case "corruption window closes" `Quick
      test_corruption_window_closes;
    Alcotest.test_case "random plan deterministic" `Quick
      test_random_plan_deterministic;
    QCheck_alcotest.to_alcotest prop_lifecycle_interleavings;
  ]
