(* Non-work-conserving schedulers: Stop-and-Go, HRR, Jitter-EDD. *)
open Ispn_sim
open Helpers

(* A link driven by the engine so the waker machinery is exercised. *)
let run_on_link ~qdisc_of ~arrivals ~until =
  let engine = Engine.create () in
  let qdisc = qdisc_of engine in
  let link = Link.create ~engine ~rate_bps:1e6 ~qdisc ~name:"nwc" () in
  let out = ref [] in
  Link.set_receiver link (fun p ->
      out := (Engine.now engine, p) :: !out);
  List.iter
    (fun (time, p) ->
      ignore (Engine.schedule engine ~at:time (fun () -> Link.send link p)))
    arrivals;
  Engine.run engine ~until;
  List.rev !out

(* --- Stop-and-Go --- *)

let sg engine =
  Ispn_sched.Stop_and_go.create ~engine ~frame:0.010
    ~pool:(Qdisc.pool ~capacity:100)
    ()

let test_sg_holds_until_frame_boundary () =
  (* A packet arriving at 3 ms (mid-frame) departs at the 10 ms boundary. *)
  let out =
    run_on_link ~qdisc_of:sg
      ~arrivals:[ (0.003, pkt ~seq:0 ~created:0.003 ()) ]
      ~until:1.
  in
  match out with
  | [ (t, _) ] -> Alcotest.(check (float 1e-9)) "boundary + tx" 0.011 t
  | _ -> Alcotest.fail "expected one delivery"

let test_sg_frame_batching () =
  (* Five packets arriving in one frame all become eligible together at the
     boundary and then serialize back-to-back. *)
  let arrivals =
    List.init 5 (fun i ->
        let t = 0.001 +. (0.0005 *. float_of_int i) in
        (t, pkt ~seq:i ~created:t ()))
  in
  let out = run_on_link ~qdisc_of:sg ~arrivals ~until:1. in
  Alcotest.(check int) "all delivered" 5 (List.length out);
  List.iteri
    (fun i (t, _) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "packet %d" i)
        (0.011 +. (0.001 *. float_of_int i))
        t)
    out

let test_sg_not_work_conserving () =
  (* With one packet queued, the link stays idle until the boundary — unlike
     every work-conserving scheduler in this library. *)
  let engine = Engine.create () in
  let q = sg engine in
  ignore (q.Qdisc.enqueue ~now:0.002 (pkt ~seq:0 ()));
  Alcotest.(check int) "queued" 1 (q.Qdisc.length ());
  Alcotest.(check bool) "held" true (q.Qdisc.dequeue ~now:0.005 = None);
  Alcotest.(check bool) "released at boundary" true
    (q.Qdisc.dequeue ~now:0.010 <> None)

let test_sg_single_pending_wakeup () =
  (* Regression: polling an ineligible head used to schedule a fresh engine
     event per poll (a waker storm); the latch keeps exactly one pending. *)
  let engine = Engine.create () in
  let q = sg engine in
  ignore (q.Qdisc.enqueue ~now:0.002 (pkt ~seq:0 ()));
  for _ = 1 to 5 do
    Alcotest.(check bool) "held" true (q.Qdisc.dequeue ~now:0.005 = None)
  done;
  Alcotest.(check int) "one pending wakeup" 1 (Engine.pending engine);
  (* The latch re-opens when the boundary event fires, so a later cycle can
     arm again — and still only once. *)
  Engine.run engine ~until:0.010;
  Alcotest.(check bool) "eligible at boundary" true
    (q.Qdisc.dequeue ~now:0.010 <> None);
  ignore (q.Qdisc.enqueue ~now:0.012 (pkt ~seq:1 ()));
  for _ = 1 to 3 do
    Alcotest.(check bool) "held again" true (q.Qdisc.dequeue ~now:0.013 = None)
  done;
  Alcotest.(check int) "re-armed once" 1 (Engine.pending engine)

(* --- HRR --- *)

let hrr ?(slots = 2) engine =
  Ispn_sched.Hrr.create ~engine ~frame:0.020
    ~slots_of:(fun _ -> slots)
    ~pool:(Qdisc.pool ~capacity:100)
    ()

let test_hrr_rate_limits_a_burst () =
  (* Ten packets, two slots per 20 ms frame: the burst drains over five
     frames — about 100 ms — instead of 10 ms. *)
  let arrivals = burst ~flow:0 ~at:0. ~n:10 in
  let out = run_on_link ~qdisc_of:hrr ~arrivals ~until:1. in
  Alcotest.(check int) "all delivered" 10 (List.length out);
  let last, _ = List.nth out 9 in
  Alcotest.(check bool)
    (Printf.sprintf "spread across frames (last at %.3f)" last)
    true
    (last > 0.080 && last < 0.120)

let test_hrr_unused_slots_not_reallocated () =
  (* Even with the link otherwise idle, a single flow cannot exceed its own
     allocation — the defining non-work-conserving property. *)
  let arrivals = burst ~flow:0 ~at:0. ~n:4 in
  let out = run_on_link ~qdisc_of:(hrr ~slots:1) ~arrivals ~until:1. in
  let times = List.map fst out in
  (* One packet per 20 ms frame. *)
  List.iteri
    (fun i t ->
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "gap %d >= frame" i)
          true
          (t -. List.nth times (i - 1) > 0.019))
    times

let test_hrr_two_flows_share_frame () =
  let arrivals = burst ~flow:0 ~at:0. ~n:2 @ burst ~flow:1 ~at:0. ~n:2 in
  let out = run_on_link ~qdisc_of:hrr ~arrivals ~until:1. in
  (* Both flows fit in the first frame's slots: everything inside 20 ms. *)
  Alcotest.(check int) "all delivered" 4 (List.length out);
  List.iter
    (fun (t, _) -> Alcotest.(check bool) "first frame" true (t < 0.020))
    out

let test_hrr_grid_alignment_after_idle () =
  (* Regression: after an idle gap the next credit refill must land on the
     fixed frame grid (here multiples of 20 ms), not at arrival + frame.
     Two packets arrive at 131 ms into a long-idle scheduler with one slot
     per frame: the first spends the banked credit immediately, the second
     must wait for the 140 ms grid boundary — not 151 ms. *)
  let arrivals =
    [
      (0.001, pkt ~seq:0 ~created:0.001 ());
      (0.001, pkt ~seq:1 ~created:0.001 ());
      (0.131, pkt ~seq:2 ~created:0.131 ());
      (0.131, pkt ~seq:3 ~created:0.131 ());
    ]
  in
  let out = run_on_link ~qdisc_of:(hrr ~slots:1) ~arrivals ~until:1. in
  Alcotest.(check int) "all delivered" 4 (List.length out);
  List.iteri
    (fun i expected ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "delivery %d" i)
        expected
        (fst (List.nth out i)))
    [ 0.002; 0.021; 0.132; 0.141 ]

(* --- Jitter-EDD --- *)

let jedd ?(budget = 0.020) engine =
  Ispn_sched.Jitter_edd.create ~engine
    ~budget_of:(fun _ -> budget)
    ~pool:(Qdisc.pool ~capacity:200)
    ()

let test_jedd_single_hop_is_edd () =
  (* No earliness on entry: packets leave in deadline (= arrival, equal
     budgets) order with no holding. *)
  let arrivals = paced ~flow:0 ~at:0. ~gap:0.002 ~n:5 in
  let out = run_on_link ~qdisc_of:jedd ~arrivals ~until:1. in
  Alcotest.(check int) "all delivered" 5 (List.length out);
  List.iteri
    (fun i (t, _) ->
      Alcotest.(check (float 1e-9))
        "no holding at first hop"
        ((0.002 *. float_of_int i) +. 0.001)
        t)
    out

let test_jedd_exports_earliness () =
  let engine = Engine.create () in
  let q = jedd engine in
  let p = pkt ~seq:0 () in
  ignore (q.Qdisc.enqueue ~now:0. p);
  (* Departing immediately, 20 ms ahead of its deadline. *)
  ignore (q.Qdisc.dequeue ~now:0.);
  Alcotest.(check (float 1e-9)) "earliness in header" 0.020 (Packet.offset p)

let test_jedd_holds_early_packet () =
  let engine = Engine.create () in
  let q = jedd engine in
  let p = pkt ~seq:0 () in
  Packet.set_offset p (0.015);
  (* 15 ms early at the previous hop. *)
  ignore (q.Qdisc.enqueue ~now:1.000 p);
  Alcotest.(check bool) "held while early" true (q.Qdisc.dequeue ~now:1.010 = None);
  Alcotest.(check bool) "eligible after hold" true
    (q.Qdisc.dequeue ~now:1.015 <> None)

let test_jedd_reconstructs_schedule_across_hops () =
  (* Over a two-link chain, an unloaded Jitter-EDD path delivers every
     packet at a *fixed* latency: one budget (the hold at hop 2 restores
     hop 1's full deadline) plus two transmissions. *)
  let engine = Engine.create () in
  let net =
    Network.chain ~engine ~n_switches:3 ~rate_bps:1e6
      ~qdisc_of:(fun _ -> jedd engine)
      ()
  in
  let latencies = ref [] in
  Network.install_flow net ~flow:0 ~ingress:0 ~egress:2 ~sink:(fun p ->
      latencies := (Engine.now engine -. (Packet.created p)) :: !latencies);
  for i = 0 to 9 do
    let at = 0.005 *. float_of_int i in
    ignore
      (Engine.schedule engine ~at (fun () ->
           Network.inject net ~at_switch:0
             (Packet.make ~flow:0 ~seq:i ~created:at ())))
  done;
  Engine.run engine ~until:2.;
  Alcotest.(check int) "all delivered" 10 (List.length !latencies);
  List.iter
    (fun l -> Alcotest.(check (float 1e-6)) "constant latency" 0.022 l)
    !latencies

let suite =
  [
    Alcotest.test_case "S&G holds until frame boundary" `Quick
      test_sg_holds_until_frame_boundary;
    Alcotest.test_case "S&G frame batching" `Quick test_sg_frame_batching;
    Alcotest.test_case "S&G not work conserving" `Quick
      test_sg_not_work_conserving;
    Alcotest.test_case "S&G single pending wakeup (regression)" `Quick
      test_sg_single_pending_wakeup;
    Alcotest.test_case "HRR rate limits a burst" `Quick
      test_hrr_rate_limits_a_burst;
    Alcotest.test_case "HRR unused slots not reallocated" `Quick
      test_hrr_unused_slots_not_reallocated;
    Alcotest.test_case "HRR two flows share frame" `Quick
      test_hrr_two_flows_share_frame;
    Alcotest.test_case "HRR grid alignment after idle (regression)" `Quick
      test_hrr_grid_alignment_after_idle;
    Alcotest.test_case "Jitter-EDD single hop is EDD" `Quick
      test_jedd_single_hop_is_edd;
    Alcotest.test_case "Jitter-EDD exports earliness" `Quick
      test_jedd_exports_earliness;
    Alcotest.test_case "Jitter-EDD holds early packet" `Quick
      test_jedd_holds_early_packet;
    Alcotest.test_case "Jitter-EDD reconstructs schedule" `Quick
      test_jedd_reconstructs_schedule_across_hops;
  ]
