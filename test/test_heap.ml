open Ispn_util

let int_heap () = Heap.create ~cmp:compare ()

let test_empty () =
  let h = int_heap () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty")
    (fun () -> ignore (Heap.pop_exn h));
  Alcotest.check_raises "peek_exn" (Invalid_argument "Heap.peek_exn: empty")
    (fun () -> ignore (Heap.peek_exn h))

let test_exn_fast_paths_agree () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 4; 2; 7; 1 ];
  Alcotest.(check int) "peek_exn" 1 (Heap.peek_exn h);
  Alcotest.(check int) "length after peek_exn" 4 (Heap.length h);
  Alcotest.(check int) "pop_exn" 1 (Heap.pop_exn h);
  Alcotest.(check (option int)) "pop agrees" (Some 2) (Heap.pop h)

let test_ordering () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 5; 9; 2; 6 ];
  let drained = List.init 8 (fun _ -> Heap.pop_exn h) in
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 2; 4; 5; 5; 6; 9 ] drained

let test_peek_does_not_remove () =
  let h = int_heap () in
  Heap.push h 3;
  Alcotest.(check (option int)) "peek" (Some 3) (Heap.peek h);
  Alcotest.(check int) "length unchanged" 1 (Heap.length h)

let test_clear () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  Alcotest.(check bool) "empty after clear" true (Heap.is_empty h)

let test_iter_visits_all () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 4; 1; 3 ];
  let sum = ref 0 in
  Heap.iter (fun x -> sum := !sum + x) h;
  Alcotest.(check int) "sum over heap order" 8 !sum

let test_to_sorted_list_nondestructive () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Heap.to_sorted_list h);
  Alcotest.(check int) "heap intact" 3 (Heap.length h)

let test_interleaved_push_pop () =
  let h = int_heap () in
  Heap.push h 5;
  Heap.push h 3;
  Alcotest.(check (option int)) "pop min" (Some 3) (Heap.pop h);
  Heap.push h 1;
  Heap.push h 4;
  Alcotest.(check (option int)) "pop new min" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "then" (Some 4) (Heap.pop h);
  Alcotest.(check (option int)) "then" (Some 5) (Heap.pop h)

let test_stability_with_seq () =
  (* Equal keys break ties on a sequence number — the pattern every
     scheduler in this library uses.  Drain order must be insertion order. *)
  let h = Heap.create ~cmp:(fun (k1, s1, _) (k2, s2, _) ->
      match compare (k1 : int) k2 with 0 -> compare (s1 : int) s2 | c -> c) ()
  in
  List.iteri (fun i v -> Heap.push h (0, i, v)) [ "a"; "b"; "c"; "d" ];
  let order = List.init 4 (fun _ -> let _, _, v = Heap.pop_exn h in v) in
  Alcotest.(check (list string)) "fifo on ties" [ "a"; "b"; "c"; "d" ] order

let test_capacity_preallocates () =
  (* [~capacity] is honored: the first push sizes the backing array to it,
     so pushes within capacity never reallocate.  Int payloads allocate
     nothing themselves, so any minor words here would be growth. *)
  let h = Heap.create ~cmp:(fun (a : int) b -> compare a b) ~capacity:512 () in
  Heap.push h 0;
  let before = Gc.minor_words () in
  for i = 1 to 511 do
    Heap.push h i
  done;
  let words = Gc.minor_words () -. before in
  if words > 16. then
    Alcotest.failf "%.0f minor words growing within capacity (expected 0)"
      words

let qcheck_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:500
    QCheck.(list int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

let qcheck_heap_length =
  QCheck.Test.make ~name:"length tracks pushes and pops" ~count:300
    QCheck.(pair (list int) small_nat)
    (fun (xs, npops) ->
      let h = int_heap () in
      List.iter (Heap.push h) xs;
      let pops = min npops (List.length xs) in
      for _ = 1 to pops do
        ignore (Heap.pop h)
      done;
      Heap.length h = List.length xs - pops)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "exn fast paths agree" `Quick test_exn_fast_paths_agree;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "peek does not remove" `Quick test_peek_does_not_remove;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "iter visits all" `Quick test_iter_visits_all;
    Alcotest.test_case "to_sorted_list nondestructive" `Quick
      test_to_sorted_list_nondestructive;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved_push_pop;
    Alcotest.test_case "tie-break stability" `Quick test_stability_with_seq;
    Alcotest.test_case "capacity preallocates" `Quick
      test_capacity_preallocates;
    QCheck_alcotest.to_alcotest qcheck_heap_sorts;
    QCheck_alcotest.to_alcotest qcheck_heap_length;
  ]
