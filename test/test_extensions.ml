(* Fast (short-duration) versions of the extension experiments, asserting
   their qualitative shapes. *)
module X = Csz.Extensions
module E = Csz.Experiment

let find_result results flow =
  List.find (fun (r : E.flow_result) -> r.E.flow = flow) results

let test_cascade_monotone () =
  let rows = X.run_cascade ~duration:90. () in
  Alcotest.(check int) "classes + datagram" 5 (List.length rows);
  let tails = List.map (fun r -> r.X.c_p999) rows in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && non_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool)
    (Printf.sprintf "tails grow down the ladder: %s"
       (String.concat ", " (List.map (Printf.sprintf "%.2f") tails)))
    true (non_decreasing tails)

let test_isolation_ordering () =
  let rows = X.run_isolation ~duration:60. () in
  match rows with
  | [ fifo; wfq; policed ] ->
      (* FIFO: cheater and honest suffer alike. *)
      Alcotest.(check bool) "fifo hurts honest" true
        (fifo.X.honest_p999 > 3. *. policed.X.honest_p999);
      (* WFQ: honest protected, cheater punished. *)
      Alcotest.(check bool) "wfq punishes cheater" true
        (wfq.X.cheat_p999 > 5. *. wfq.X.honest_p999);
      (* Edge policing keeps everyone low. *)
      Alcotest.(check bool) "policing restores" true
        (policed.X.honest_p999 < fifo.X.honest_p999)
  | _ -> Alcotest.fail "expected three rows"

let test_playback_ordering () =
  let rows = X.run_playback ~duration:120. () in
  let get name = List.find (fun r -> r.X.client = name) rows in
  let rigid = get "rigid" and adaptive = get "adaptive" and vat = get "vat" in
  Alcotest.(check (float 1e-6)) "rigid holds the advertised bound" 0.
    rigid.X.app_loss_rate;
  Alcotest.(check bool) "adaptive point below rigid" true
    (adaptive.X.mean_point < 0.7 *. rigid.X.mean_point);
  Alcotest.(check bool) "vat point below rigid" true
    (vat.X.mean_point < 0.7 *. rigid.X.mean_point);
  Alcotest.(check bool) "adaptive loss bounded" true
    (adaptive.X.app_loss_rate < 0.06);
  Alcotest.(check bool) "vat loss bounded" true (vat.X.app_loss_rate < 0.06)

let test_admission_ordering () =
  let rows = X.run_admission ~duration:150. () in
  let get p = List.find (fun r -> r.X.policy = p) rows in
  let measured = get X.Measured in
  let worst = get X.Worst_case in
  let open_door = get X.Open_door in
  Alcotest.(check bool) "same offered load" true
    (measured.X.requests = worst.X.requests
    && worst.X.requests = open_door.X.requests);
  Alcotest.(check bool) "measured admits at least as many" true
    (measured.X.accepted >= worst.X.accepted);
  Alcotest.(check bool) "open door admits everything" true
    (open_door.X.accepted = open_door.X.requests);
  Alcotest.(check (float 1e-9)) "measured keeps targets" 0.
    measured.X.violation_rate;
  Alcotest.(check (float 1e-9)) "worst-case keeps targets" 0.
    worst.X.violation_rate;
  Alcotest.(check bool) "open door violates heavily" true
    (open_door.X.violation_rate > 0.1)

let test_discard_tradeoff () =
  let rows = X.run_discard ~duration:60. () in
  match rows with
  | [ off; loose; tight ] ->
      Alcotest.(check bool) "off discards nothing" true
        (off.X.discarded_fraction = 0.);
      Alcotest.(check bool) "tighter threshold discards more" true
        (tight.X.discarded_fraction > loose.X.discarded_fraction);
      Alcotest.(check bool) "discard trims the tail" true
        (loose.X.p999_4hop <= off.X.p999_4hop)
  | _ -> Alcotest.fail "expected three rows"

let test_gain_ablation_direction () =
  let rows = X.run_gain_ablation ~duration:120. () in
  match rows with
  | [ (_, fast); _; (_, slow) ] ->
      Alcotest.(check bool) "slow gain beats fast gain at 4 hops" true
        (slow.E.p999 < fast.E.p999)
  | _ -> Alcotest.fail "expected three gains"

let bakeoff_results runs s =
  (List.find (fun (row : X.bakeoff_row) -> row.X.bk_sched = s) runs)
    .X.bk_results

let test_bakeoff_edf_equals_fifo () =
  (* EDF with equal budgets must reproduce FIFO *exactly* (same packets,
     same order, same delays) — the strongest version of Section 5's
     observation.  MC-FIFO is FIFO by construction, so it must too. *)
  let runs = X.run_bakeoff ~duration:30. () in
  let get s = bakeoff_results runs s in
  Alcotest.(check bool) "identical results" true
    (get X.B_edf = get X.B_fifo);
  Alcotest.(check bool) "MC-FIFO identical to FIFO" true
    (get X.B_mc_fifo = get X.B_fifo)

let test_bakeoff_nwc_higher_means () =
  let runs = X.run_bakeoff ~duration:30. () in
  let mean4 s = (find_result (bakeoff_results runs s) 0).E.mean in
  Alcotest.(check bool) "Jitter-EDD mean far above FIFO" true
    (mean4 X.B_jitter_edd > 3. *. mean4 X.B_fifo);
  Alcotest.(check bool) "Stop-and-Go mean above FIFO" true
    (mean4 X.B_stop_and_go > 2. *. mean4 X.B_fifo)

let test_bakeoff_bounds_check_clean () =
  (* The shaper rows carry analytic bounds, the audit checks every
     delivered packet against them, and nothing violates. *)
  let runs = X.run_bakeoff ~duration:30. ~check:true () in
  List.iter
    (fun (row : X.bakeoff_row) ->
      let name = X.bakeoff_name row.X.bk_sched in
      (match (X.bakeoff_bound_kind row.X.bk_sched, row.X.bk_bounds) with
      | Some _, Some bs ->
          Alcotest.(check int) (name ^ " bound per flow") 22 (List.length bs);
          List.iter
            (fun (_, b) ->
              Alcotest.(check bool) (name ^ " bound positive") true (b > 0.))
            bs
      | None, None -> ()
      | _ -> Alcotest.fail (name ^ ": bounds iff shaper"));
      match row.X.bk_check with
      | None -> Alcotest.fail (name ^ ": expected a check summary")
      | Some s ->
          Alcotest.(check int) (name ^ " clean") 0 s.Ispn_check.Audit.violations;
          if X.bakeoff_bound_kind row.X.bk_sched <> None then
            let bound_checks =
              List.fold_left
                (fun acc (c : Ispn_check.Audit.inv_summary) ->
                  if
                    List.mem c.Ispn_check.Audit.inv_name
                      [ "cbs-bound"; "ats-bound"; "wrr-bound"; "mcfifo-bound" ]
                  then acc + c.Ispn_check.Audit.inv_checks
                  else acc)
                0 s.Ispn_check.Audit.invariants
            in
            Alcotest.(check bool) (name ^ " bound checks ran") true
              (bound_checks > 0))
    runs

let test_table3_service_shape () =
  let r = X.run_table3_service ~duration:120. () in
  (* All five guaranteed flows get in immediately. *)
  let guaranteed =
    List.filter (fun row -> row.X.e2e_outcome = "guaranteed") r.X.e2e_rows
  in
  Alcotest.(check int) "guaranteed admitted" 5 (List.length guaranteed);
  (* Some predicted flows are admitted, some only after retries. *)
  let admitted_predicted =
    List.filter
      (fun row ->
        String.length row.X.e2e_outcome >= 5
        && String.sub row.X.e2e_outcome 0 5 = "class")
      r.X.e2e_rows
  in
  Alcotest.(check bool) "some predicted admitted" true
    (List.length admitted_predicted >= 3);
  Alcotest.(check bool) "late admissions happen" true
    (List.exists
       (fun row ->
         String.length row.X.e2e_outcome > 0
         && admitted_predicted <> []
         &&
         match String.index_opt row.X.e2e_outcome '=' with
         | Some i ->
             let t =
               String.sub row.X.e2e_outcome (i + 1)
                 (String.length row.X.e2e_outcome - i - 2)
             in
             (try float_of_string t > 0. with Failure _ -> false)
         | None -> false)
       r.X.e2e_rows);
  (* Whatever got in respects its targets, and TCP refills the link. *)
  Alcotest.(check (float 1e-9)) "no violations" 0. r.X.e2e_violations;
  Alcotest.(check bool) "link refilled" true (r.X.e2e_utilization > 0.9)

let test_load_sweep_crossover () =
  let rows = X.run_load_sweep ~duration:150. ~points:[ 0.5; 0.9 ] () in
  match rows with
  | [ light; heavy ] ->
      let ratio r = r.X.wfq_p999 /. r.X.fifo_p999 in
      Alcotest.(check bool) "no gap at half load" true (ratio light < 1.1);
      Alcotest.(check bool) "clear gap near saturation" true
        (ratio heavy > 1.2);
      Alcotest.(check bool) "delays grow with load" true
        (heavy.X.fifo_p999 > light.X.fifo_p999)
  | _ -> Alcotest.fail "expected two points"

let test_signaling_latency_grows_with_load () =
  let rows = X.run_signaling ~duration:60. ~loads:[ 0.; 0.9 ] () in
  match rows with
  | [ idle; loaded ] ->
      Alcotest.(check bool) "setups completed" true
        (idle.X.sig_setups > 30 && loaded.X.sig_setups > 30);
      (* Idle chain: ~6 ms deterministic. *)
      Alcotest.(check bool) "idle baseline" true
        (idle.X.sig_mean_ms > 5. && idle.X.sig_mean_ms < 7.);
      Alcotest.(check bool) "load slows establishment" true
        (loaded.X.sig_mean_ms > 2. *. idle.X.sig_mean_ms)
  | _ -> Alcotest.fail "expected two loads"

let test_importance_differentiation () =
  let rows = X.run_importance ~duration:120. () in
  match rows with
  | [ important; less ] ->
      Alcotest.(check bool) "both delivered" true
        (important.X.imp_received > 3000 && less.X.imp_received > 3000);
      Alcotest.(check bool) "important protected" true
        (important.X.imp_p999 < 0.2 *. less.X.imp_p999)
  | _ -> Alcotest.fail "expected two rows"

let test_failover_deterministic_and_shaped () =
  (* The rows are plain data, so structural equality across [-j] is the
     determinism contract verbatim. *)
  let r1 = X.run_failover ~duration:30. ~seed:42L ~j:1 () in
  let r2 = X.run_failover ~duration:30. ~seed:42L ~j:2 () in
  Alcotest.(check bool) "rows identical at every -j" true (r1 = r2);
  match r1 with
  | [ base; flap; loss; crash ] ->
      let final flow r =
        (List.find (fun f -> f.X.ff_flow = flow) r.X.fo_flows).X.ff_final
      in
      (* Fault-free reference: nothing lost, retried or degraded. *)
      Alcotest.(check int) "baseline: no retries" 0 base.X.fo_retries;
      Alcotest.(check int) "baseline: no loss" 0 base.X.fo_lost;
      Alcotest.(check int) "baseline: no degradation" 0 base.X.fo_degraded;
      Alcotest.(check string) "baseline keeps guaranteed" "guaranteed"
        (final 0 base);
      (* Outages and corruption lose data and force setup retries. *)
      Alcotest.(check bool) "flap loses packets" true
        (flap.X.fo_lost > base.X.fo_lost);
      Alcotest.(check bool) "flap forces retries" true (flap.X.fo_retries > 0);
      Alcotest.(check bool) "corruption loses packets" true
        (loss.X.fo_lost > 0);
      Alcotest.(check bool) "corruption forces retries" true
        (loss.X.fo_retries > 0);
      (* The crash recovers every flow through the dead switch, and the
         usurper pushes the watched flows down the ladder. *)
      Alcotest.(check int) "one crash" 1 crash.X.fo_crashes;
      Alcotest.(check bool) "crash re-establishes" true
        (crash.X.fo_reestablished >= 1);
      Alcotest.(check bool) "crash degrades" true (crash.X.fo_degraded >= 1);
      Alcotest.(check string) "guaranteed victim lands on predicted"
        "predicted" (final 0 crash);
      Alcotest.(check string) "predicted victim lands on datagram" "datagram"
        (final 1 crash)
  | _ -> Alcotest.fail "expected four schedules"

(* E12: the flight-recorder trace runner returns complete worst-case rows
   whose per-hop decomposition reproduces the probe's end-to-end delay
   (both sides already converted to packet-transmission times). *)
let test_trace_rows_shape () =
  List.iter
    (fun experiment ->
      let res = X.run_trace ~experiment ~worst:3 ~duration:20. () in
      Alcotest.(check string) "experiment echoed"
        (X.trace_experiment_name experiment)
        (X.trace_experiment_name res.X.tre_experiment);
      Alcotest.(check bool) "delivered some packets" true
        (res.X.tre_delivered > 0);
      Alcotest.(check bool) "complete reconstructions" true
        (res.X.tre_complete > 0);
      Alcotest.(check int) "asked for three rows" 3
        (List.length res.X.tre_rows);
      List.iter
        (fun row ->
          Alcotest.(check bool) "has hops" true (row.X.tr_hops <> []);
          let sum =
            List.fold_left
              (fun acc h -> acc +. h.X.th_queueing)
              0. row.X.tr_hops
          in
          Alcotest.(check (float 1e-6)) "hop queueing sums to probe delay"
            row.X.tr_reported sum;
          Alcotest.(check (float 1e-6)) "tr_queueing consistent"
            row.X.tr_queueing sum)
        res.X.tre_rows)
    [ X.T_table1; X.T_table2; X.T_table3 ]

(* E13: session churn through the soft-state lifecycle.  A short run must
   already show the shape: sessions turn over with zero leaked slots and a
   clean audit in every scenario, and the lossy-teardown scenario recovers
   stranded reservations by refresh timeout (expiries observed). *)
let test_churn_shape () =
  let r1 = X.run_churn ~duration:25. ~seed:42L ~j:1 ~check:true () in
  let r2 = X.run_churn ~duration:25. ~seed:42L ~j:2 ~check:true () in
  Alcotest.(check bool) "rows identical at every -j" true (r1 = r2);
  Alcotest.(check int) "four scenarios" 4 (List.length r1);
  List.iter
    (fun r ->
      let name = X.churn_name r.X.ch_scenario in
      Alcotest.(check bool) (name ^ ": sessions established") true
        (r.X.ch_established > 100);
      Alcotest.(check bool) (name ^ ": sessions departed") true
        (r.X.ch_departed > 0);
      (* Slot releases only start one quarantine horizon (~15 s) in, so a
         short run sees the onset of recycling, not the steady state. *)
      Alcotest.(check bool) (name ^ ": slots recycled") true
        (r.X.ch_recycled > 0);
      Alcotest.(check int) (name ^ ": no leaked slots") 0 r.X.ch_leaked;
      Alcotest.(check bool) (name ^ ": signaling flowed") true
        (r.X.ch_signaling_pps > 0.);
      match r.X.ch_check with
      | None -> Alcotest.fail (name ^ ": audit summary missing under ~check")
      | Some s ->
          Alcotest.(check int)
            (name ^ ": audit clean")
            0 s.Ispn_check.Audit.violations)
    r1;
  let find sc = List.find (fun r -> r.X.ch_scenario = sc) r1 in
  Alcotest.(check int) "clean scenario never expires state" 0
    (find X.C_clean).X.ch_expired;
  Alcotest.(check bool) "lost teardowns reclaimed by refresh timeout" true
    ((find X.C_lossy_teardown).X.ch_expired > 0)

let test_scale_shape () =
  let run shards =
    X.run_scale ~duration:4. ~seed:42L ~shards ~flows:200 ~check:true ()
  in
  let r1 = run 1 in
  let r2 = run 2 in
  let r4 = run 4 in
  (* The whole result table is shard-count-independent; only the shard
     diagnostics (and the audit's event partitioning) may differ. *)
  let table (r : X.scale_report) =
    (r.X.sc_rows, r.X.sc_delivered_total, r.X.sc_sent, r.X.sc_dropped)
  in
  Alcotest.(check bool) "table identical at 1 and 2 shards" true
    (table r1 = table r2);
  Alcotest.(check bool) "table identical at 1 and 4 shards" true
    (table r1 = table r4);
  Alcotest.(check int) "one row per span" 4 (List.length r1.X.sc_rows);
  Alcotest.(check int) "all flows bucketed" r1.X.sc_flow_count
    (List.fold_left (fun acc (row : X.scale_row) -> acc + row.X.sc_flows) 0
       r1.X.sc_rows);
  Alcotest.(check bool) "packets delivered" true
    (r1.X.sc_delivered_total > 1000);
  Alcotest.(check int) "unsharded run has no cut links" 0 r1.X.sc_cut_links;
  Alcotest.(check bool) "sharded run exchanges packets" true
    (r4.X.sc_cut_links > 0 && r4.X.sc_exchanged > 0);
  (* Mean delay must grow with the regions crossed (propagation adds up). *)
  let means = List.map (fun (r : X.scale_row) -> r.X.sc_mean_delay) r1.X.sc_rows in
  Alcotest.(check bool) "delay grows with span" true
    (List.sort compare means = means);
  List.iter
    (fun (r : X.scale_report) ->
      match r.X.sc_check with
      | None -> Alcotest.fail "audit summary missing under ~check"
      | Some s ->
          Alcotest.(check int) "audit clean" 0 s.Ispn_check.Audit.violations)
    [ r1; r2; r4 ]

let test_scale_obs_shard_invariant () =
  let run shards =
    X.run_scale ~duration:4. ~seed:42L ~shards ~flows:200 ~metrics:true
      ~series_interval:1.0 ()
  in
  let r1 = run 1 in
  let r4 = run 4 in
  (* Per-link snapshots and timelines merge in canonical link order, so
     the exports — like stdout — are byte-identical at every width.
     [compare] rather than [=]: idle links report NaN percentiles. *)
  (match (r1.X.sc_metrics, r4.X.sc_metrics) with
  | Some a, Some b ->
      Alcotest.(check bool) "snapshot non-empty" true (a <> []);
      Alcotest.(check bool) "metrics shard-invariant" true (compare a b = 0)
  | _ -> Alcotest.fail "metrics snapshot missing under ~metrics");
  match (r1.X.sc_series, r4.X.sc_series) with
  | Some a, Some b ->
      Alcotest.(check bool) "series sampled" true
        (Array.length a.Ispn_obs.Series.ex_times > 1);
      Alcotest.(check bool) "series has columns" true
        (a.Ispn_obs.Series.ex_columns <> []);
      Alcotest.(check bool) "series shard-invariant" true (compare a b = 0)
  | _ -> Alcotest.fail "series export missing under ~series_interval"

let suite =
  [
    Alcotest.test_case "churn shape" `Slow test_churn_shape;
    Alcotest.test_case "scale observability shard-invariant" `Slow
      test_scale_obs_shard_invariant;
    Alcotest.test_case "scale shards-invariant and shaped" `Slow
      test_scale_shape;
    Alcotest.test_case "trace rows shape" `Slow test_trace_rows_shape;
    Alcotest.test_case "failover deterministic and shaped" `Slow
      test_failover_deterministic_and_shaped;
    Alcotest.test_case "importance differentiation" `Slow
      test_importance_differentiation;
    Alcotest.test_case "signaling latency grows with load" `Slow
      test_signaling_latency_grows_with_load;
    Alcotest.test_case "load sweep crossover" `Slow
      test_load_sweep_crossover;
    Alcotest.test_case "table3 via service stack" `Slow
      test_table3_service_shape;
    Alcotest.test_case "cascade monotone" `Slow test_cascade_monotone;
    Alcotest.test_case "isolation ordering" `Slow test_isolation_ordering;
    Alcotest.test_case "playback ordering" `Slow test_playback_ordering;
    Alcotest.test_case "admission ordering" `Slow test_admission_ordering;
    Alcotest.test_case "discard tradeoff" `Slow test_discard_tradeoff;
    Alcotest.test_case "gain ablation direction" `Slow
      test_gain_ablation_direction;
    Alcotest.test_case "bakeoff: EDF equals FIFO" `Slow
      test_bakeoff_edf_equals_fifo;
    Alcotest.test_case "bakeoff: non-work-conserving means" `Slow
      test_bakeoff_nwc_higher_means;
    Alcotest.test_case "bakeoff: analytic bounds audit clean" `Slow
      test_bakeoff_bounds_check_clean;
  ]
