open Ispn_sim
module Replay = Ispn_traffic.Replay
module Profile = Ispn_traffic.Profile

let collect ~schedule ?loop ~until () =
  let engine = Engine.create () in
  let out = ref [] in
  let src =
    Replay.create ~engine ~flow:0 ~schedule ?loop
      ~emit:(fun p -> out := (Engine.now engine, (Packet.size_bits p)) :: !out)
      ()
  in
  src.Ispn_traffic.Source.start ();
  Engine.run engine ~until;
  (src, List.rev !out)

let test_exact_times () =
  let schedule = [ (0., 1000); (0.005, 2000); (0.007, 500) ] in
  let _, out = collect ~schedule ~until:1. () in
  Alcotest.(check (list (pair (float 1e-9) int)))
    "replayed verbatim"
    [ (0., 1000); (0.005, 2000); (0.007, 500) ]
    out

let test_offset_base_is_start_time () =
  (* Starting at t=2 shifts the whole schedule by 2. *)
  let engine = Engine.create () in
  let out = ref [] in
  let src =
    Replay.create ~engine ~flow:0
      ~schedule:[ (0., 1000); (0.01, 1000) ]
      ~emit:(fun _ -> out := Engine.now engine :: !out)
      ()
  in
  ignore (Engine.schedule engine ~at:2. (fun () -> src.Ispn_traffic.Source.start ()));
  Engine.run engine ~until:3.;
  Alcotest.(check (list (float 1e-9))) "rebased" [ 2.; 2.01 ] (List.rev !out)

let test_loop_repeats () =
  let schedule = [ (0., 1000); (0.01, 1000) ] in
  (* Cycle length = 0.01 + mean gap (0.01) = 0.02: 50 cycles/second. *)
  let src, out = collect ~schedule ~loop:true ~until:0.1 () in
  Alcotest.(check bool)
    (Printf.sprintf "looped (%d packets)" (List.length out))
    true
    (List.length out >= 8);
  Alcotest.(check int) "counter agrees" (List.length out)
    (src.Ispn_traffic.Source.generated ())

let test_empty_schedule () =
  let _, out = collect ~schedule:[] ~until:1. () in
  Alcotest.(check int) "silent" 0 (List.length out)

let test_validation () =
  let engine = Engine.create () in
  (try
     ignore
       (Replay.create ~engine ~flow:0
          ~schedule:[ (0.5, 1000); (0.1, 1000) ]
          ~emit:(fun _ -> ())
          ());
     Alcotest.fail "expected Invalid_argument (decreasing)"
   with Invalid_argument _ -> ());
  try
    ignore
      (Replay.create ~engine ~flow:0
         ~schedule:[ (0., 0) ]
         ~emit:(fun _ -> ())
         ());
    Alcotest.fail "expected Invalid_argument (size)"
  with Invalid_argument _ -> ()

let test_profile_roundtrip () =
  (* Record a source with Profile, replay it, re-record: identical. *)
  let p = Profile.create () in
  List.iter
    (fun (t, bits) -> Profile.record p ~time:t ~bits)
    [ (1.0, 1000); (1.002, 2000); (1.01, 1500) ];
  let schedule = Replay.of_profile p in
  Alcotest.(check (list (pair (float 1e-9) int)))
    "rebased schedule"
    [ (0., 1000); (0.002, 2000); (0.01, 1500) ]
    schedule;
  let _, out = collect ~schedule ~until:1. () in
  Alcotest.(check int) "all replayed" 3 (List.length out)

let suite =
  [
    Alcotest.test_case "exact times" `Quick test_exact_times;
    Alcotest.test_case "offset base is start time" `Quick
      test_offset_base_is_start_time;
    Alcotest.test_case "loop repeats" `Quick test_loop_repeats;
    Alcotest.test_case "empty schedule" `Quick test_empty_schedule;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "profile roundtrip" `Quick test_profile_roundtrip;
  ]
