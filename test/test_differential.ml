(* Differential harness: each production scheduler is driven op-for-op
   against a small transparent reference model (association lists and
   sorted insertion instead of Kheap / Ring / dense arrays) under
   randomized arrival scripts.  The models replay the schedulers' float
   arithmetic operation-for-operation, so accept decisions, dequeue order
   and backlog must match exactly — any divergence is a bug in the
   optimized structures (heap ordering, ring rotation, credit refills,
   busy-period resets) or in the model's reading of the contract.

   Scripts mix simultaneous arrivals (dt = 0), sub-frame steps, idle gaps
   spanning many frames, flow ids past the initial array sizes, mixed
   packet sizes and a pool small enough to exhaust. *)
open Ispn_sim

(* Step choices are off the 10/20 ms frame grids so that model and real
   boundary arithmetic are compared on the same side of every boundary. *)
let dts = [| 0.; 0.; 1e-4; 7e-4; 1.3e-3; 0.0203; 0.0611; 0.2047 |]
let flows_tbl = [| 0; 1; 2; 3; 4; 70; 129 |]
let sizes_tbl = [| 1000; 400; 1600; 100 |]
let cap = 8

(* The same shape as [Qdisc.t], minus the parts a model doesn't need.
   [m_advance] stands in for the engine: it fires the model's frame
   boundaries up to [now]. *)
type model = {
  m_enqueue : now:float -> Packet.t -> bool;
  m_dequeue : now:float -> (int * int) option;
  m_length : unit -> int;
  m_advance : now:float -> unit;
}

let id_of (p : Packet.t) = ((Packet.flow p), (Packet.seq p))

(* --- reference models --- *)

let fifo_model ~capacity () =
  let q = ref [] in
  {
    m_advance = (fun ~now:_ -> ());
    m_enqueue =
      (fun ~now:_ p ->
        if List.length !q >= capacity then false
        else begin
          q := !q @ [ p ];
          true
        end);
    m_dequeue =
      (fun ~now:_ ->
        match !q with
        | [] -> None
        | p :: rest ->
            q := rest;
            Some (id_of p));
    m_length = (fun () -> List.length !q);
  }

(* Sorted-list priority queue: stable insertion after equal keys gives the
   FIFO-within-equal-keys order the Kheap guarantees. *)
let sorted_insert queue ~key p =
  let rec ins = function
    | ((k, _) as e) :: rest when k <= key -> e :: ins rest
    | rest -> (key, p) :: rest
  in
  queue := ins !queue

let wfq_model ~capacity ~link_rate_bps ~weight_of () =
  let queue = ref [] in
  let count = ref 0 in
  let v = ref 0. and last_update = ref 0. in
  let aw = ref 0. and ac = ref 0 in
  let last_finish = ref [] and qlen = ref [] in
  let get assoc f d = match List.assoc_opt f !assoc with Some x -> x | None -> d in
  let set assoc f x = assoc := (f, x) :: List.remove_assoc f !assoc in
  let advance ~now =
    if now > !last_update then begin
      if !aw > 0. then
        v := !v +. ((now -. !last_update) *. link_rate_bps /. !aw);
      last_update := now
    end
  in
  let fmax (a : float) b = if a >= b then a else b in
  {
    m_advance = (fun ~now:_ -> ());
    m_enqueue =
      (fun ~now p ->
        if !count >= capacity then false
        else begin
          incr count;
          advance ~now;
          let flow = (Packet.flow p) in
          let w = weight_of flow in
          if get qlen flow 0 = 0 then begin
            aw := !aw +. w;
            incr ac
          end;
          let tag =
            fmax !v (get last_finish flow 0.)
            +. (float_of_int (Packet.size_bits p) /. w)
          in
          set last_finish flow tag;
          set qlen flow (get qlen flow 0 + 1);
          sorted_insert queue ~key:tag p;
          true
        end);
    m_dequeue =
      (fun ~now ->
        match !queue with
        | [] -> None
        | (_, p) :: rest ->
            queue := rest;
            decr count;
            let flow = (Packet.flow p) in
            let q = get qlen flow 0 - 1 in
            set qlen flow q;
            if q = 0 then begin
              advance ~now;
              aw := !aw -. weight_of flow;
              decr ac;
              if !ac = 0 then begin
                (* Busy period over: virtual clock and finish tags restart. *)
                v := 0.;
                aw := 0.;
                last_finish := []
              end
            end;
            Some (id_of p));
    m_length = (fun () -> !count);
  }

let edf_model ~capacity ~deadline_of () =
  let queue = ref [] in
  {
    m_advance = (fun ~now:_ -> ());
    m_enqueue =
      (fun ~now p ->
        if List.length !queue >= capacity then false
        else begin
          sorted_insert queue ~key:(now +. deadline_of (Packet.flow p)) p;
          true
        end);
    m_dequeue =
      (fun ~now:_ ->
        match !queue with
        | [] -> None
        | (_, p) :: rest ->
            queue := rest;
            Some (id_of p));
    m_length = (fun () -> List.length !queue);
  }

let sg_model ~capacity ~frame () =
  let q = ref [] in
  let next_boundary t =
    (Float.of_int (int_of_float (t /. frame)) +. 1.) *. frame
  in
  {
    m_advance = (fun ~now:_ -> ());
    m_enqueue =
      (fun ~now p ->
        if List.length !q >= capacity then false
        else begin
          q := !q @ [ (now, p) ];
          true
        end);
    m_dequeue =
      (fun ~now ->
        match !q with
        | [] -> None
        | (arrived, p) :: rest ->
            if next_boundary arrived <= now +. 1e-12 then begin
              q := rest;
              Some (id_of p)
            end
            else None);
    m_length = (fun () -> List.length !q);
  }

let hrr_model ~capacity ~frame ~slots_of () =
  (* flow -> (fifo, slots, credit); [order] mirrors the round-robin ring
     including its rotate-on-every-visit behaviour; [armed] mirrors the
     single pending engine boundary event. *)
  let flows = ref [] in
  let order = ref [] in
  let total = ref 0 in
  let frame_start = ref 0. in
  let armed = ref None in
  let get flow =
    match List.assoc_opt flow !flows with
    | Some st -> st
    | None ->
        let s = slots_of flow in
        let st = (ref [], s, ref s) in
        flows := (flow, st) :: !flows;
        order := !order @ [ flow ];
        st
  in
  let arm ~now =
    if !armed = None then begin
      let next = !frame_start +. frame in
      let next =
        if next <= now then
          (Float.of_int (int_of_float (now /. frame)) +. 1.) *. frame
        else next
      in
      armed := Some next
    end
  in
  let rec process ~now =
    match !armed with
    | Some b when b <= now ->
        armed := None;
        frame_start := b;
        List.iter (fun (_, (_, slots, credit)) -> credit := slots) !flows;
        if !total > 0 then arm ~now:b;
        process ~now
    | _ -> ()
  in
  {
    m_advance = (fun ~now -> process ~now);
    m_enqueue =
      (fun ~now p ->
        if !total >= capacity then false
        else begin
          let fifo, _, _ = get (Packet.flow p) in
          fifo := !fifo @ [ p ];
          incr total;
          arm ~now;
          true
        end);
    m_dequeue =
      (fun ~now:_ ->
        if !total = 0 then None
        else begin
          let n = List.length !order in
          let rec visit k =
            if k >= n then None
            else
              match !order with
              | [] -> None
              | flow :: rest -> (
                  order := rest @ [ flow ];
                  let fifo, _, credit = List.assoc flow !flows in
                  match !fifo with
                  | p :: tail when !credit > 0 ->
                      decr credit;
                      decr total;
                      fifo := tail;
                      Some (id_of p)
                  | _ -> visit (k + 1))
          in
          visit 0
        end);
    m_length = (fun () -> !total);
  }

(* --- the driver --- *)

let script_arb =
  QCheck.(
    list_of_size
      (QCheck.Gen.int_range 1 120)
      (quad
         (int_bound (Array.length dts - 1))
         (int_bound 2)
         (int_bound (Array.length flows_tbl - 1))
         (int_bound (Array.length sizes_tbl - 1))))

let differential ~name ~make_qdisc ~make_model =
  QCheck.Test.make ~name ~count:1000 script_arb (fun script ->
      let engine = Engine.create () in
      let q : Qdisc.t = make_qdisc engine in
      let m = make_model () in
      let now = ref 0. in
      let seq = ref 0 in
      let compare_deq label =
        let r = Option.map id_of (q.Qdisc.dequeue ~now:!now) in
        let mr = m.m_dequeue ~now:!now in
        if r <> mr then
          QCheck.Test.fail_reportf
            "%s dequeue mismatch at t=%.6f: real %s, model %s" label !now
            (match r with
            | None -> "None"
            | Some (f, s) -> Printf.sprintf "(%d,%d)" f s)
            (match mr with
            | None -> "None"
            | Some (f, s) -> Printf.sprintf "(%d,%d)" f s);
        r
      in
      let check_length label =
        if q.Qdisc.length () <> m.m_length () then
          QCheck.Test.fail_reportf
            "%s length mismatch at t=%.6f: real %d, model %d" label !now
            (q.Qdisc.length ()) (m.m_length ())
      in
      let step (dt_i, kind, flow_i, size_i) =
        now := !now +. dts.(dt_i);
        Engine.run engine ~until:!now;
        m.m_advance ~now:!now;
        if kind <= 1 then begin
          let flow = flows_tbl.(flow_i) and size_bits = sizes_tbl.(size_i) in
          let p = Packet.make ~flow ~seq:!seq ~size_bits ~created:!now () in
          let p' = Packet.make ~flow ~seq:!seq ~size_bits ~created:!now () in
          incr seq;
          let ra = q.Qdisc.enqueue ~now:!now p in
          let ma = m.m_enqueue ~now:!now p' in
          if ra <> ma then
            QCheck.Test.fail_reportf
              "enqueue accept mismatch at t=%.6f flow %d: real %b, model %b"
              !now flow ra ma
        end
        else ignore (compare_deq "script");
        check_length "script"
      in
      List.iter step script;
      (* Drain: whatever is still queued must come out of both in the same
         order; the off-grid step crosses every frame boundary. *)
      let guard = ref 0 in
      while q.Qdisc.length () > 0 && !guard < 1000 do
        incr guard;
        now := !now +. 0.0501;
        Engine.run engine ~until:!now;
        m.m_advance ~now:!now;
        let rec pump () = if compare_deq "drain" <> None then pump () in
        pump ();
        check_length "drain"
      done;
      if q.Qdisc.length () <> 0 || m.m_length () <> 0 then
        QCheck.Test.fail_reportf "failed to drain: real %d, model %d"
          (q.Qdisc.length ()) (m.m_length ());
      true)

(* Per-flow parameters are pure functions of the flow id, so consulting
   them once (real schedulers) or repeatedly (models) is equivalent. *)
let weight_of f = float_of_int ((f mod 3) + 1) *. 250.
let deadline_of f = float_of_int (f mod 4) *. 0.005
let slots_of f = (f mod 2) + 1

let fifo_diff =
  differential ~name:"FIFO matches list model"
    ~make_qdisc:(fun _ ->
      Ispn_sched.Fifo.create ~pool:(Qdisc.pool ~capacity:cap) ())
    ~make_model:(fifo_model ~capacity:cap)

let wfq_diff =
  differential ~name:"WFQ matches sorted-list model"
    ~make_qdisc:(fun _ ->
      Ispn_sched.Wfq.create
        ~pool:(Qdisc.pool ~capacity:cap)
        ~link_rate_bps:1e6 ~weight_of ())
    ~make_model:(wfq_model ~capacity:cap ~link_rate_bps:1e6 ~weight_of)

let edf_diff =
  differential ~name:"EDF matches sorted-list model"
    ~make_qdisc:(fun _ ->
      Ispn_sched.Edf.create ~pool:(Qdisc.pool ~capacity:cap) ~deadline_of ())
    ~make_model:(edf_model ~capacity:cap ~deadline_of)

let sg_diff =
  differential ~name:"Stop-and-Go matches frame-grid model"
    ~make_qdisc:(fun engine ->
      Ispn_sched.Stop_and_go.create ~engine ~frame:0.010
        ~pool:(Qdisc.pool ~capacity:cap)
        ())
    ~make_model:(sg_model ~capacity:cap ~frame:0.010)

let hrr_diff =
  differential ~name:"HRR matches frame-grid model"
    ~make_qdisc:(fun engine ->
      Ispn_sched.Hrr.create ~engine ~frame:0.020 ~slots_of
        ~pool:(Qdisc.pool ~capacity:cap)
        ())
    ~make_model:(hrr_model ~capacity:cap ~frame:0.020 ~slots_of)

(* --- modern-shaper models (PR: machine-checked bake-off) ---

   WRR is integer arithmetic throughout, so its model is exact by
   construction.  CBS and ATS replay the schedulers' float credit/token
   updates at the same touch points with the same operation order
   (enqueue touches the packet's class only; dequeue touches every class
   — CBS — or refills each scanned head's bucket — ATS — in priority
   order), so both sides compute bit-identical floats and the eligibility
   comparisons can be mirrored verbatim.  The real schedulers also arm
   engine waker events; with no link attached the waker hook is a no-op
   and firing it changes no scheduler state, so the models ignore it. *)

let wrr_model ~capacity ~weight_of () =
  (* flow -> (fifo, weight, credit, in_round); [current] is the open
     service opportunity, exactly as in the scheduler. *)
  let flows = ref [] in
  let active = ref [] in
  let current = ref (-1) in
  let total = ref 0 in
  let get flow =
    match List.assoc_opt flow !flows with
    | Some st -> st
    | None ->
        let st = (ref [], weight_of flow, ref 0, ref false) in
        flows := (flow, st) :: !flows;
        st
  in
  let serve flow =
    let fifo, _, credit, in_round = List.assoc flow !flows in
    match !fifo with
    | [] -> assert false
    | p :: rest ->
        fifo := rest;
        credit := !credit - 1;
        decr total;
        if rest = [] then begin
          credit := 0;
          in_round := false;
          current := -1
        end
        else if !credit < 1 then begin
          in_round := true;
          active := !active @ [ flow ];
          current := -1
        end;
        Some (id_of p)
  in
  let rec deq () =
    if !current >= 0 then serve !current
    else
      match !active with
      | [] -> None
      | flow :: rest -> (
          active := rest;
          let fifo, weight, credit, in_round = List.assoc flow !flows in
          if !fifo = [] then begin
            in_round := false;
            deq ()
          end
          else begin
            credit := !credit + weight;
            in_round := false;
            current := flow;
            deq ()
          end)
  in
  {
    m_advance = (fun ~now:_ -> ());
    m_enqueue =
      (fun ~now:_ p ->
        if !total >= capacity then false
        else begin
          let flow = Packet.flow p in
          let fifo, _, credit, in_round = get flow in
          fifo := !fifo @ [ p ];
          incr total;
          if (not !in_round) && !current <> flow then begin
            in_round := true;
            credit := 0;
            active := !active @ [ flow ]
          end;
          true
        end);
    m_dequeue = (fun ~now:_ -> deq ());
    m_length = (fun () -> !total);
  }

let cbs_model ~capacity ~slopes ~class_of () =
  let n = Array.length slopes in
  let q = Array.make n [] in
  let credit = Array.make n 0. in
  let last = Array.make n 0. in
  let total = ref 0 in
  let touch i ~now =
    if now > last.(i) then begin
      if q.(i) <> [] then credit.(i) <- credit.(i) +. (slopes.(i) *. (now -. last.(i)))
      else if credit.(i) < 0. then
        credit.(i) <- Float.min 0. (credit.(i) +. (slopes.(i) *. (now -. last.(i))));
      last.(i) <- now
    end
  in
  {
    m_advance = (fun ~now:_ -> ());
    m_enqueue =
      (fun ~now p ->
        if !total >= capacity then false
        else begin
          let c = class_of (Packet.flow p) in
          touch c ~now;
          q.(c) <- q.(c) @ [ p ];
          incr total;
          true
        end);
    m_dequeue =
      (fun ~now ->
        for i = 0 to n - 1 do
          touch i ~now
        done;
        let rec pick i =
          if i >= n then None
          else
            match q.(i) with
            | p :: rest when credit.(i) >= -1e-6 ->
                q.(i) <- rest;
                credit.(i) <- credit.(i) -. float (Packet.size_bits p);
                if rest = [] && credit.(i) > 0. then credit.(i) <- 0.;
                decr total;
                Some (id_of p)
            | _ -> pick (i + 1)
        in
        pick 0);
    m_length = (fun () -> !total);
  }

let ats_model ~capacity ~n_classes ~class_of ~shaper_of () =
  let q = Array.make n_classes [] in
  (* flow -> (tokens, last); buckets start full with last = 0, as in the
     scheduler's [ensure]. *)
  let buckets = ref [] in
  let total = ref 0 in
  let ensure flow =
    if not (List.mem_assoc flow !buckets) then begin
      let _, b = shaper_of flow in
      buckets := (flow, (ref b, ref 0.)) :: !buckets
    end
  in
  let refill flow ~now =
    let tokens, last = List.assoc flow !buckets in
    let r, b = shaper_of flow in
    if now > !last then begin
      tokens := Float.min b (!tokens +. ((now -. !last) *. r));
      last := now
    end
  in
  {
    m_advance = (fun ~now:_ -> ());
    m_enqueue =
      (fun ~now:_ p ->
        if !total >= capacity then false
        else begin
          let flow = Packet.flow p in
          ensure flow;
          q.(class_of flow) <- q.(class_of flow) @ [ p ];
          incr total;
          true
        end);
    m_dequeue =
      (fun ~now ->
        let rec pick i =
          if i >= n_classes then None
          else
            match q.(i) with
            | [] -> pick (i + 1)
            | p :: rest ->
                let flow = Packet.flow p in
                refill flow ~now;
                let tokens, _ = List.assoc flow !buckets in
                let need = float (Packet.size_bits p) in
                if !tokens >= need -. 1e-9 then begin
                  q.(i) <- rest;
                  tokens := !tokens -. need;
                  decr total;
                  Some (id_of p)
                end
                else pick (i + 1)
        in
        pick 0);
    m_length = (fun () -> !total);
  }

(* Per-flow parameters as pure functions of the flow id, like
   [weight_of] above; the ATS depths cover the largest script packet. *)
let wrr_weight_of f = (f mod 3) + 1
let cbs_class_of f = f mod 2
let cbs_slopes = [| 3e5; 2e5 |]
let ats_class_of f = f mod 3

let ats_shaper_of f =
  (float_of_int ((f mod 3) + 1) *. 1e5, 2000. +. (float_of_int (f mod 4) *. 800.))

let wrr_diff =
  differential ~name:"WRR matches round-robin model"
    ~make_qdisc:(fun _ ->
      Ispn_sched.Wrr.create
        ~pool:(Qdisc.pool ~capacity:cap)
        ~weight_of:wrr_weight_of ())
    ~make_model:(wrr_model ~capacity:cap ~weight_of:wrr_weight_of)

let cbs_diff =
  differential ~name:"CBS matches credit model"
    ~make_qdisc:(fun engine ->
      Ispn_sched.Cbs.create ~engine
        ~pool:(Qdisc.pool ~capacity:cap)
        ~idle_slopes_bps:cbs_slopes ~class_of:cbs_class_of ())
    ~make_model:(cbs_model ~capacity:cap ~slopes:cbs_slopes ~class_of:cbs_class_of)

let ats_diff =
  differential ~name:"ATS matches token-bucket model"
    ~make_qdisc:(fun engine ->
      Ispn_sched.Ats.create ~engine
        ~pool:(Qdisc.pool ~capacity:cap)
        ~n_classes:3 ~class_of:ats_class_of ~shaper_of:ats_shaper_of ())
    ~make_model:
      (ats_model ~capacity:cap ~n_classes:3 ~class_of:ats_class_of
         ~shaper_of:ats_shaper_of)

(* Every delivered packet in a randomized bake-off run satisfies the
   scheduler's registered analytic bound: run one bounded scheduler on
   the Figure-1 workload under a random seed with the audit attached —
   the bound invariants must have fired and found nothing. *)
let bound_audit_prop =
  QCheck.Test.make ~name:"bake-off delivery obeys registered analytic bounds"
    ~count:8
    QCheck.(pair (int_bound 3) (int_bound 1000))
    (fun (si, seed) ->
      let module X = Csz.Extensions in
      let sched =
        List.nth [ X.B_mc_fifo; X.B_wrr; X.B_cbs; X.B_ats ] si
      in
      match
        X.run_bakeoff ~duration:2. ~seed:(Int64.of_int (seed + 1))
          ~scheds:[ sched ] ~check:true ()
      with
      | [ row ] -> (
          match row.X.bk_check with
          | None -> QCheck.Test.fail_report "no audit summary under ~check"
          | Some s ->
              if s.Ispn_check.Audit.violations <> 0 then
                QCheck.Test.fail_reportf "%s: %d bound/invariant violations"
                  (X.bakeoff_name sched) s.Ispn_check.Audit.violations;
              let bound_checks =
                List.fold_left
                  (fun acc (c : Ispn_check.Audit.inv_summary) ->
                    if
                      List.mem c.Ispn_check.Audit.inv_name
                        [ "cbs-bound"; "ats-bound"; "wrr-bound"; "mcfifo-bound" ]
                    then acc + c.Ispn_check.Audit.inv_checks
                    else acc)
                  0 s.Ispn_check.Audit.invariants
              in
              if bound_checks = 0 then
                QCheck.Test.fail_reportf "%s: bound invariant never checked"
                  (X.bakeoff_name sched);
              true)
      | _ -> QCheck.Test.fail_report "expected exactly one row")

(* --- Recycled flow ids: the slot carries nothing across incarnations ---

   Two CSZ schedulers live through the same history, except that the first
   hosts a full prior session (guaranteed with traffic, retired, then
   predicted, then cleared) under flow id 5 where the second hosts it
   under flow id 99.  Global state (virtual time, class estimators) ends
   identical; only the id-5 slot's history differs: used-and-recycled vs
   virgin.  An identical post-recycle script on flow 5 must then produce
   identical accept decisions and dequeue order — any inherited weight,
   finish tag, class or retiring flag would diverge. *)

let test_recycled_flow_slot_is_pristine () =
  let make_sched () =
    Csz.Csz_sched.create ~pool:(Qdisc.pool ~capacity:32) ()
  in
  let sa, qa = make_sched () in
  let sb, qb = make_sched () in
  let enq q ~now ~flow ~seq ~size =
    let p = Packet.make ~flow ~seq ~size_bits:size ~created:now () in
    let ok = q.Qdisc.enqueue ~now p in
    if not ok then Packet.free p;
    ok
  in
  let drain q now0 =
    let now = ref now0 in
    let out = ref [] in
    let rec go () =
      match q.Qdisc.dequeue ~now:!now with
      | Some p ->
          out := id_of p :: !out;
          Packet.free p;
          now := !now +. 0.0007;
          go ()
      | None -> ()
    in
    go ();
    List.rev !out
  in
  let prior s q ~guest =
    Csz.Csz_sched.add_guaranteed s ~flow:guest ~clock_rate_bps:300_000.;
    for i = 0 to 4 do
      ignore (enq q ~now:0. ~flow:guest ~seq:i ~size:1000)
    done;
    for i = 5 to 7 do
      ignore (enq q ~now:0. ~flow:8 ~seq:i ~size:1000)
    done;
    ignore (drain q 0.);
    Csz.Csz_sched.remove_guaranteed s ~flow:guest;
    Csz.Csz_sched.set_predicted s ~flow:guest ~cls:0;
    ignore (enq q ~now:0.01 ~flow:guest ~seq:20 ~size:1000);
    ignore (enq q ~now:0.01 ~flow:9 ~seq:21 ~size:1000);
    ignore (drain q 0.0105);
    Csz.Csz_sched.clear_predicted s ~flow:guest
  in
  let replay s q =
    (* Flow 5's second life: datagram first, then guaranteed again, racing
       another guaranteed flow and background datagrams. *)
    ignore (enq q ~now:0.019 ~flow:5 ~seq:90 ~size:400);
    let pre = drain q 0.019 in
    Csz.Csz_sched.add_guaranteed s ~flow:5 ~clock_rate_bps:200_000.;
    Csz.Csz_sched.add_guaranteed s ~flow:2 ~clock_rate_bps:400_000.;
    let accepts = ref [] in
    let now = ref 0.02 in
    List.iter
      (fun (flow, seq, size) ->
        accepts := enq q ~now:!now ~flow ~seq ~size :: !accepts;
        now := !now +. 0.0003)
      [
        (5, 100, 1000); (2, 101, 400); (3, 102, 1600); (5, 103, 1000);
        (2, 104, 1000); (5, 105, 400); (3, 106, 1000); (5, 107, 1600);
        (2, 108, 1000); (5, 109, 1000);
      ];
    (pre, List.rev !accepts, drain q !now)
  in
  prior sa qa ~guest:5;
  prior sb qb ~guest:99;
  let pre_a, acc_a, out_a = replay sa qa in
  let pre_b, acc_b, out_b = replay sb qb in
  Alcotest.(check (list (pair int int))) "datagram phase identical" pre_b pre_a;
  Alcotest.(check (list bool)) "accept decisions identical" acc_b acc_a;
  Alcotest.(check (list (pair int int))) "dequeue order identical" out_b out_a;
  Alcotest.(check (float 0.)) "no residual reservation differs"
    (Csz.Csz_sched.guaranteed_reserved_bps sb)
    (Csz.Csz_sched.guaranteed_reserved_bps sa)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      fifo_diff; wfq_diff; edf_diff; sg_diff; hrr_diff; wrr_diff; cbs_diff;
      ats_diff; bound_audit_prop;
    ]
  @ [
      Alcotest.test_case "recycled flow slot is pristine" `Quick
        test_recycled_flow_slot_is_pristine;
    ]
