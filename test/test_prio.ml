open Ispn_sim
open Helpers

(* Two FIFO classes over one shared pool; classify by flow id. *)
let make ?(capacity = 100) ?(n = 2) () =
  let pool = Qdisc.pool ~capacity in
  let classes = Array.init n (fun _ -> Ispn_sched.Fifo.create ~pool ()) in
  Ispn_sched.Prio.create ~classes
    ~classify:(fun p -> (Packet.flow p))
    ()

let test_high_class_first () =
  let q = make () in
  ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:1 ~seq:0 ()));
  ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:1 ~seq:1 ()));
  ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:0 ~seq:0 ()));
  let order =
    List.init 3 (fun _ -> (Packet.flow (Option.get (q.Qdisc.dequeue ~now:0.))))
  in
  Alcotest.(check (list int)) "priority order" [ 0; 1; 1 ] order

let test_low_class_served_when_high_empty () =
  let q = make () in
  ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:1 ()));
  Alcotest.(check int) "low served" 1
    (Packet.flow (Option.get (q.Qdisc.dequeue ~now:0.)))

let test_preemption_between_dequeues () =
  (* A high-priority arrival after low-priority packets are queued still
     goes out first at the next service opportunity. *)
  let qdisc = make () in
  let arrivals =
    burst ~flow:1 ~at:0. ~n:5
    @ [ (0.0015, pkt ~flow:0 ~seq:0 ~created:0.0015 ()) ]
  in
  let records = run_schedule ~qdisc ~arrivals ~until:1. () in
  let order = List.map (fun r -> r.r_flow) records in
  (* Two low packets are already gone (one in flight at 0-1ms, one at
     1-2ms); the high packet arriving at 1.5ms beats the remaining three. *)
  Alcotest.(check (list int)) "preemption" [ 1; 1; 0; 1; 1; 1 ] order

let test_shared_pool_across_classes () =
  let q = make ~capacity:3 () in
  ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:0 ~seq:0 ()));
  ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:1 ~seq:0 ()));
  ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:1 ~seq:1 ()));
  Alcotest.(check bool) "pool exhausted across classes" false
    (q.Qdisc.enqueue ~now:0. (pkt ~flow:0 ~seq:1 ()));
  Alcotest.(check int) "length sums classes" 3 (q.Qdisc.length ())

let test_classify_out_of_range () =
  let q = make () in
  try
    ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:7 ()));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let qcheck_priority_invariant =
  QCheck.Test.make
    ~name:"a class-0 packet never waits behind a class-1 packet" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 30) (int_bound 1))
    (fun flows ->
      let q = make () in
      List.iteri
        (fun i f -> ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:f ~seq:i ())))
        flows;
      let rec drain acc =
        match q.Qdisc.dequeue ~now:0. with
        | None -> List.rev acc
        | Some p -> drain ((Packet.flow p) :: acc)
      in
      let out = drain [] in
      (* All zeros must precede all ones. *)
      let rec check seen_one = function
        | [] -> true
        | 0 :: _ when seen_one -> false
        | 0 :: rest -> check seen_one rest
        | _ :: rest -> check true rest
      in
      check false out)

let suite =
  [
    Alcotest.test_case "high class first" `Quick test_high_class_first;
    Alcotest.test_case "low class when high empty" `Quick
      test_low_class_served_when_high_empty;
    Alcotest.test_case "preemption between dequeues" `Quick
      test_preemption_between_dequeues;
    Alcotest.test_case "shared pool across classes" `Quick
      test_shared_pool_across_classes;
    Alcotest.test_case "classify out of range" `Quick
      test_classify_out_of_range;
    QCheck_alcotest.to_alcotest qcheck_priority_invariant;
  ]
