open Ispn_sim

(* Strict Gc.minor_words budgets for the two structures the wheel/arena
   rewrite made allocation-free: the engine's drain loop and the packet
   arena's take/release cycle.  Unlike the steady-state ceilings in
   test_hotpath.ml (which tolerate qdisc-interface boxing), these assert
   ZERO words — any regression to per-event or per-packet boxing fails.

   Measurement discipline: a float crossing a function boundary is boxed
   (2 minor words) on a non-flambda compiler, so the loops below pass only
   float literals (statically allocated) or keep computed floats out of
   call arguments.  The engine chain uses a constant [~delay] for the same
   reason: the cost of boxing a *computed* delay belongs to the caller,
   not to the engine. *)

let per_n f n =
  (* One throwaway run to trigger any lazy growth, then measure. *)
  f ();
  let before = Gc.minor_words () in
  for _ = 1 to n do
    f ()
  done;
  (Gc.minor_words () -. before) /. float_of_int n

let test_engine_drain_zero_alloc () =
  let e = Engine.create () in
  let n = 50_000 in
  let count = ref 0 in
  let rec act () =
    incr count;
    if !count < n then ignore (Engine.schedule_after e ~delay:1e-5 act)
  in
  ignore (Engine.schedule_after e ~delay:1e-5 act);
  (* Warm the wheel's slot and due arrays. *)
  Engine.run e ~until:0.05;
  let before = Gc.minor_words () in
  Engine.run e ~until:10.;
  let words = Gc.minor_words () -. before in
  Alcotest.(check int) "all fired" n !count;
  let per_event = words /. float_of_int (n - !count + n) in
  if per_event > 0.01 then
    Alcotest.failf
      "engine drain: %.3f minor words per event (expected 0 — the \
       schedule/fire/pop path must not box)"
      per_event

let test_arena_take_release_zero_alloc () =
  (* Warm-up grows the arena past the high-water mark of the loop, so the
     measured cycles recycle the free list only. *)
  let warm = Array.init 64 (fun i -> Packet.make ~flow:i ~seq:i ~created:0. ()) in
  Array.iter Packet.free warm;
  let per =
    per_n
      (fun () ->
        let p = Packet.make ~flow:3 ~seq:7 ~created:0. () in
        Packet.free p)
      20_000
  in
  if per > 0.01 then
    Alcotest.failf
      "arena make+free: %.3f minor words per packet (expected 0 — handles \
       recycle through the free list without boxing)"
      per

let test_arena_field_stores_zero_alloc () =
  (* The point of the struct-of-arrays layout: hot-path float stores into
     a bound arena are unboxed.  (The old mixed record boxed every store.) *)
  let p = Packet.make ~flow:0 ~seq:0 ~created:0. () in
  let pa = Packet.arena () in
  let per =
    per_n
      (fun () ->
        pa.Packet.enqueued_at.(p) <- pa.Packet.enqueued_at.(p) +. 1e-6;
        pa.Packet.qdelay_total.(p) <- pa.Packet.qdelay_total.(p) +. 1e-6;
        pa.Packet.offset.(p) <- pa.Packet.offset.(p) +. 1e-6)
      20_000
  in
  Packet.free p;
  if per > 0.01 then
    Alcotest.failf
      "arena float stores: %.3f minor words per 3 stores (expected 0 — \
       float-array writes are unboxed)"
      per

let test_fifo_cycle_interface_budget () =
  (* Full enqueue+dequeue through the qdisc closures: the only remaining
     allocation is the interface itself — the boxed [~now] argument of
     each closure call and dequeue's [Some pkt] — so ~6 words/cycle.
     8 catches any return of per-packet structures while documenting that
     the option and the two boxed floats are the irreducible residue. *)
  let qdisc = Ispn_sched.Fifo.create ~pool:(Qdisc.pool ~capacity:128) () in
  let p = Packet.make ~flow:0 ~seq:0 ~created:0. () in
  assert (qdisc.Qdisc.enqueue ~now:0. p);
  let clock = ref 0. in
  let per =
    per_n
      (fun () ->
        clock := !clock +. 1e-6;
        let q = Packet.make ~flow:1 ~seq:1 ~created:0. () in
        ignore (qdisc.Qdisc.enqueue ~now:!clock q);
        match qdisc.Qdisc.dequeue ~now:!clock with
        | Some served -> Packet.free served
        | None -> Alcotest.fail "standing queue ran dry")
      20_000
  in
  if per > 8. then
    Alcotest.failf
      "FIFO cycle: %.1f minor words (expected <= 8: two boxed ~now floats \
       and dequeue's Some)"
      per

let test_idpool_cycle_zero_alloc () =
  (* The flow-slot free list under churn: once warm, a session open/close
     is three dense-array stores and an int push/pop — no boxing. *)
  let p = Ispn_util.Idpool.create ~capacity:64 () in
  let n = 100_000 in
  let per =
    per_n
      (fun () ->
        let id = Ispn_util.Idpool.take p in
        Ispn_util.Idpool.release p ~id)
      n
  in
  Alcotest.(check bool)
    (Printf.sprintf
       "idpool take+release: %.3f minor words per cycle (expected 0 — slots \
        are dense int arrays)"
       per)
    true (per < 0.01)

let test_sched_session_open_close_budget () =
  (* A churn session's footprint on one link's scheduler: reserve +
     classify on open, the reverse on close.  All four entry points write
     dense flow-indexed arrays; the only tolerated words are the boxed
     float rate crossing add_guaranteed's boundary. *)
  let pool = Qdisc.pool ~capacity:16 in
  let sched, _qdisc = Csz.Csz_sched.create ~pool () in
  let n = 50_000 in
  let per =
    per_n
      (fun () ->
        Csz.Csz_sched.add_guaranteed sched ~flow:7 ~clock_rate_bps:10_000.;
        Csz.Csz_sched.set_predicted sched ~flow:8 ~cls:1;
        Csz.Csz_sched.clear_predicted sched ~flow:8;
        Csz.Csz_sched.remove_guaranteed sched ~flow:7)
      n
  in
  (* Steady state measures 12: the mutable [g_weight_sum] float field and
     the weights returned/negated across [g_weight_of]/[resize_flow0]
     boundaries.  Any per-session record, closure or Hashtbl would blow
     well past this. *)
  Alcotest.(check bool)
    (Printf.sprintf
       "sched open+close: %.1f minor words per session (expected <= 14: \
        boxed weights at function boundaries only)"
       per)
    true (per <= 14.)

let test_loghist_add_zero_alloc () =
  (* The histogram feed --series attaches to every dequeue: a branch, a
     log10 and an int store, on all three paths (regular, underflow,
     overflow).  Float literals only — a computed sample's boxing belongs
     to the caller. *)
  let h = Ispn_util.Loghist.create () in
  let per =
    per_n
      (fun () ->
        Ispn_util.Loghist.add h 0.004;
        Ispn_util.Loghist.add h 1e-9;
        Ispn_util.Loghist.add h 1e9)
      50_000
  in
  if per > 0.01 then
    Alcotest.failf
      "loghist add: %.3f minor words per 3 adds (expected 0 — bucket \
       counts are a dense int array)"
      per

let test_series_dequeue_tap_budget () =
  (* Everything --series hangs off a link's per-packet dequeue, composed
     the way the runners compose it: a Tap.seq dispatching into the wait
     histogram and the flight recorder's ring store.  The histogram add is
     an int bump and the ring writes scalar arrays in place, so with
     literal arguments the whole chain must not allocate. *)
  let ch = Ispn_util.Loghist.create () in
  let r = Ispn_obs.Recorder.create ~capacity:1024 () in
  let tap =
    Tap.seq
      (Tap.make
         ~on_dequeue:(fun ~link:_ ~now:_ ~wait _ ->
           Ispn_util.Loghist.add ch wait)
         ())
      (Tap.make
         ~on_dequeue:(fun ~link ~now ~wait:_ p ->
           ignore p;
           Ispn_obs.Recorder.record r ~time:now
             ~kind:Ispn_obs.Recorder.Dequeue ~link ~flow:0 ~seq:0 ~cls:(-1)
             ~offset:0. ~value:0. ~cause:Ispn_obs.Recorder.No_cause)
         ())
  in
  let p = Packet.make ~flow:0 ~seq:0 ~created:0. () in
  let per =
    per_n (fun () -> tap.Tap.on_dequeue ~link:0 ~now:1.0 ~wait:0.002 p) 50_000
  in
  Packet.free p;
  if per > 0.01 then
    Alcotest.failf
      "series dequeue tap: %.3f minor words per dispatch (expected 0 — \
       hist add and ring store are in-place)"
      per

let suite =
  [
    Alcotest.test_case "engine drain allocates nothing" `Quick
      test_engine_drain_zero_alloc;
    Alcotest.test_case "arena make+free allocates nothing" `Quick
      test_arena_take_release_zero_alloc;
    Alcotest.test_case "arena float stores are unboxed" `Quick
      test_arena_field_stores_zero_alloc;
    Alcotest.test_case "fifo cycle within interface budget" `Quick
      test_fifo_cycle_interface_budget;
    Alcotest.test_case "idpool cycle allocates nothing" `Quick
      test_idpool_cycle_zero_alloc;
    Alcotest.test_case "sched session open/close within budget" `Quick
      test_sched_session_open_close_budget;
    Alcotest.test_case "loghist add allocates nothing" `Quick
      test_loghist_add_zero_alloc;
    Alcotest.test_case "series dequeue tap allocates nothing" `Quick
      test_series_dequeue_tap_budget;
  ]
