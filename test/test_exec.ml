(* The domain pool's contract: fan-out must be invisible.  Results are
   bit-identical for every [-j], including across real simulation jobs, and
   a crashing job takes down its own slot only. *)

module Pool = Ispn_exec.Pool

(* A deterministic, allocation-heavy job keyed on its input: chews through
   its own PRNG stream, as every real simulation job does. *)
let job x =
  let prng = Ispn_util.Prng.create ~seed:(Int64.of_int ((x * 2654435761) + 1)) in
  let acc = ref 0 in
  for _ = 1 to 200 + (abs x mod 57) do
    acc := !acc lxor (Int64.to_int (Ispn_util.Prng.int64 prng) land 0xffffff)
  done;
  (x, !acc)

let qcheck_pool_determinism =
  QCheck.Test.make ~name:"pool results identical for -j 1/2/4" ~count:50
    QCheck.(list_of_size (Gen.int_range 0 40) small_int)
    (fun xs ->
      let r1 = Pool.map ~j:1 job xs in
      let r2 = Pool.map ~j:2 job xs in
      let r4 = Pool.map ~j:4 job xs in
      r1 = r2 && r2 = r4)

let test_order_preserved () =
  let xs = List.init 23 (fun i -> i) in
  Alcotest.(check (list int))
    "canonical order" xs
    (Pool.map ~j:4 (fun x -> x) xs)

let test_engine_jobs_deterministic () =
  (* Each job owns an engine and a PRNG; the pool must not perturb them. *)
  let sim seed =
    let engine = Ispn_sim.Engine.create () in
    let prng = Ispn_util.Prng.create ~seed in
    let sum = ref 0. in
    let rec tick () =
      sum := !sum +. Ispn_util.Prng.float prng;
      if Ispn_sim.Engine.now engine < 10. then
        ignore (Ispn_sim.Engine.schedule_after engine ~delay:0.1 tick)
    in
    ignore (Ispn_sim.Engine.schedule_after engine ~delay:0.1 tick);
    Ispn_sim.Engine.run engine ~until:20.;
    !sum
  in
  let seeds = [ 1L; 2L; 3L; 4L; 5L; 6L; 7L ] in
  let serial = List.map sim seeds in
  Alcotest.(check (list (float 0.)))
    "simulations unchanged under -j 3" serial
    (Pool.map ~j:3 sim seeds)

let test_crash_containment () =
  Printexc.record_backtrace true;
  let f x = if x = 3 then failwith "boom" else x * 10 in
  (match Pool.try_map ~j:2 f [ 1; 2; 3; 4; 5 ] with
  | [ Ok 10; Ok 20; Error e; Ok 40; Ok 50 ] when e.Pool.exn = Failure "boom" ->
      (* The error names the job that crashed and carries the raise's
         backtrace, so a fanned-out crash is diagnosable. *)
      Alcotest.(check int) "job index" 2 e.Pool.job;
      Alcotest.(check bool)
        "backtrace captured" true
        (String.length e.Pool.backtrace > 0)
  | _ -> Alcotest.fail "expected Ok/Ok/Error(boom)/Ok/Ok");
  (* map re-raises the first failure in canonical order, after the rest of
     the pool has completed. *)
  Alcotest.check_raises "map re-raises" (Failure "boom") (fun () ->
      ignore (Pool.map ~j:2 f [ 1; 2; 3; 4; 5 ]))

let test_first_error_in_job_order () =
  (* Job 5 may *finish* first under parallelism, but job 1's error must be
     the one re-raised. *)
  let f x = if x >= 1 then failwith (string_of_int x) else x in
  Alcotest.check_raises "deterministic raise" (Failure "1") (fun () ->
      ignore (Pool.map ~j:4 f [ 0; 1; 2; 3; 4; 5 ]))

let test_empty_and_degenerate () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~j:4 (fun x -> x) []);
  Alcotest.(check (list int))
    "more domains than jobs" [ 7 ]
    (Pool.map ~j:16 (fun x -> x) [ 7 ])

let suite =
  [
    Alcotest.test_case "order preserved" `Quick test_order_preserved;
    Alcotest.test_case "engine jobs deterministic" `Quick
      test_engine_jobs_deterministic;
    Alcotest.test_case "crash containment" `Quick test_crash_containment;
    Alcotest.test_case "first error in job order" `Quick
      test_first_error_in_job_order;
    Alcotest.test_case "empty and degenerate" `Quick test_empty_and_degenerate;
    QCheck_alcotest.to_alcotest qcheck_pool_determinism;
  ]
