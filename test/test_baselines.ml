(* VirtualClock, EDF, DRR and RR-groups baselines. *)
open Ispn_sim
open Helpers

(* --- VirtualClock --- *)

let make_vc ?(capacity = 1000) ?(rate_of = fun _ -> 5e5) () =
  Ispn_sched.Virtual_clock.create ~pool:(Qdisc.pool ~capacity) ~rate_of ()

let test_vc_interleaves_equal_rates () =
  let qdisc = make_vc () in
  let arrivals = burst ~flow:0 ~at:0. ~n:50 @ burst ~flow:1 ~at:0. ~n:50 in
  let records = run_schedule ~qdisc ~arrivals ~until:0.05 () in
  let f0 = List.length (flows_served records 0) in
  let f1 = List.length (flows_served records 1) in
  if abs (f0 - f1) > 1 then Alcotest.failf "unfair: %d vs %d" f0 f1

let test_vc_punishes_overdriving_flow () =
  (* Flow 0 sends at twice its reserved rate; flow 1 is conforming.  The
     conforming flow's packets must not queue behind the cheater's excess. *)
  let rate_of = fun _ -> 2.5e5 (* 250 pkt/s reserved each *) in
  let qdisc = make_vc ~rate_of () in
  let cheat = paced ~flow:0 ~at:0. ~gap:0.002 ~n:100 (* 500 pkt/s *) in
  let fair = paced ~flow:1 ~at:0.0001 ~gap:0.004 ~n:50 (* 250 pkt/s *) in
  let records = run_schedule ~qdisc ~arrivals:(cheat @ fair) ~until:1. () in
  let fair_max = max_wait (flows_served records 1) in
  if fair_max > 0.003 then
    Alcotest.failf "conforming flow penalized: %.6f" fair_max

let test_vc_no_banked_credit () =
  (* After a long idle period a flow's virtual clock snaps to now: it cannot
     dump an arbitrarily large burst at the head of the queue. *)
  let qdisc = make_vc () in
  let arrivals =
    burst ~flow:1 ~at:0.5 ~n:20 @ burst ~flow:0 ~at:0.5 ~n:20
  in
  let records = run_schedule ~qdisc ~arrivals ~until:1. () in
  let f0_first10 =
    records |> List.filteri (fun i _ -> i < 10) |> fun l ->
    List.length (flows_served l 0)
  in
  (* Interleaved, so flow 0 gets about half of the first ten slots. *)
  if f0_first10 < 3 || f0_first10 > 7 then
    Alcotest.failf "no interleave: %d of first 10" f0_first10

(* --- EDF --- *)

let make_edf ?(capacity = 1000) ~deadline_of () =
  Ispn_sched.Edf.create ~pool:(Qdisc.pool ~capacity) ~deadline_of ()

let test_edf_equal_budgets_is_fifo () =
  (* Section 5's observation: deadline scheduling in a homogeneous class is
     FIFO. *)
  let qdisc = make_edf ~deadline_of:(fun _ -> 0.01) () in
  let arrivals =
    List.concat_map
      (fun i -> [ (float_of_int i *. 1e-4, pkt ~flow:(i mod 3) ~seq:i ()) ])
      (List.init 20 Fun.id)
  in
  let records = run_schedule ~qdisc ~arrivals ~until:1. () in
  let seqs = List.map (fun r -> r.r_seq) records in
  Alcotest.(check (list int)) "fifo" (List.init 20 Fun.id) seqs

let test_edf_tight_budget_first () =
  let deadline_of = function 0 -> 0.001 | _ -> 0.1 in
  let q = make_edf ~deadline_of () in
  ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:1 ~seq:0 ()));
  ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:0 ~seq:0 ()));
  Alcotest.(check int) "tight deadline first" 0
    (Packet.flow (Option.get (q.Qdisc.dequeue ~now:0.)))

let test_edf_rejects_negative_budget () =
  let q = make_edf ~deadline_of:(fun _ -> -1.) () in
  try
    ignore (q.Qdisc.enqueue ~now:0. (pkt ()));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* --- DRR --- *)

let make_drr ?(capacity = 1000) ?(quantum_bits = 1000) () =
  Ispn_sched.Drr.create ~pool:(Qdisc.pool ~capacity) ~quantum_bits ()

let test_drr_fair_split () =
  let qdisc = make_drr () in
  let arrivals = burst ~flow:0 ~at:0. ~n:100 @ burst ~flow:1 ~at:0. ~n:100 in
  let records = run_schedule ~qdisc ~arrivals ~until:0.1 () in
  let f0 = List.length (flows_served records 0) in
  let f1 = List.length (flows_served records 1) in
  if abs (f0 - f1) > 1 then Alcotest.failf "unfair: %d vs %d" f0 f1

let test_drr_small_quantum_still_serves () =
  (* Quantum below packet size: deficits accumulate over rounds and packets
     still flow. *)
  let qdisc = make_drr ~quantum_bits:100 () in
  let records =
    run_schedule ~qdisc ~arrivals:(burst ~flow:0 ~at:0. ~n:5) ~until:1. ()
  in
  Alcotest.(check int) "all served" 5 (List.length records)

let test_drr_rejects_bad_quantum () =
  try
    ignore (make_drr ~quantum_bits:0 ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let qcheck_drr_conservation =
  QCheck.Test.make ~name:"DRR conserves accepted packets" ~count:150
    QCheck.(list_of_size (Gen.int_range 0 30) (int_bound 4))
    (fun flows ->
      let q = make_drr () in
      let n = ref 0 in
      List.iteri
        (fun i f ->
          if q.Qdisc.enqueue ~now:0. (pkt ~flow:f ~seq:i ()) then incr n)
        flows;
      let rec drain k =
        match q.Qdisc.dequeue ~now:0. with None -> k | Some _ -> drain (k + 1)
      in
      drain 0 = !n)

(* --- RR-groups --- *)

let make_rr ?(capacity = 1000) ?(n_groups = 3) () =
  Ispn_sched.Rr_groups.create ~pool:(Qdisc.pool ~capacity) ~n_groups
    ~group_of:(fun p -> (Packet.flow p) mod n_groups)
    ()

let test_rr_alternates_groups () =
  let q = make_rr ~n_groups:2 () in
  for i = 0 to 3 do
    ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:0 ~seq:i ()))
  done;
  for i = 0 to 3 do
    ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:1 ~seq:i ()))
  done;
  let order =
    List.init 8 (fun _ -> (Packet.flow (Option.get (q.Qdisc.dequeue ~now:0.))))
  in
  Alcotest.(check (list int)) "alternation" [ 0; 1; 0; 1; 0; 1; 0; 1 ] order

let test_rr_fifo_within_group () =
  let q = make_rr ~n_groups:2 () in
  for i = 0 to 5 do
    ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:0 ~seq:i ()))
  done;
  let seqs =
    List.init 6 (fun _ -> (Packet.seq (Option.get (q.Qdisc.dequeue ~now:0.))))
  in
  Alcotest.(check (list int)) "fifo in group" [ 0; 1; 2; 3; 4; 5 ] seqs

let test_rr_skips_empty_groups () =
  let q = make_rr ~n_groups:3 () in
  ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:2 ()));
  Alcotest.(check int) "only backlogged group" 2
    (Packet.flow (Option.get (q.Qdisc.dequeue ~now:0.)));
  Alcotest.(check bool) "then empty" true (q.Qdisc.dequeue ~now:0. = None)

let suite =
  [
    Alcotest.test_case "vc interleaves equal rates" `Quick
      test_vc_interleaves_equal_rates;
    Alcotest.test_case "vc punishes overdriving flow" `Quick
      test_vc_punishes_overdriving_flow;
    Alcotest.test_case "vc no banked credit" `Quick test_vc_no_banked_credit;
    Alcotest.test_case "edf equal budgets is fifo" `Quick
      test_edf_equal_budgets_is_fifo;
    Alcotest.test_case "edf tight budget first" `Quick
      test_edf_tight_budget_first;
    Alcotest.test_case "edf rejects negative budget" `Quick
      test_edf_rejects_negative_budget;
    Alcotest.test_case "drr fair split" `Quick test_drr_fair_split;
    Alcotest.test_case "drr small quantum still serves" `Quick
      test_drr_small_quantum_still_serves;
    Alcotest.test_case "drr rejects bad quantum" `Quick
      test_drr_rejects_bad_quantum;
    QCheck_alcotest.to_alcotest qcheck_drr_conservation;
    Alcotest.test_case "rr alternates groups" `Quick test_rr_alternates_groups;
    Alcotest.test_case "rr fifo within group" `Quick
      test_rr_fifo_within_group;
    Alcotest.test_case "rr skips empty groups" `Quick
      test_rr_skips_empty_groups;
  ]
