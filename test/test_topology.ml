open Ispn_sim

let fifo () = Ispn_sched.Fifo.create ~pool:(Qdisc.pool ~capacity:100) ()

(* A diamond:  0 -> 1 -> 3  and  0 -> 2 -> 3, plus a long way 1 -> 2. *)
let diamond engine =
  let t = Topology.create ~engine () in
  let ids = List.init 4 (fun i -> Topology.add_switch t ~name:(Printf.sprintf "N%d" i)) in
  (match ids with [ 0; 1; 2; 3 ] -> () | _ -> Alcotest.fail "ids not dense");
  let conn a b = Topology.connect t ~src:a ~dst:b ~rate_bps:1e6 ~qdisc:(fifo ()) () in
  conn 0 1;
  conn 1 3;
  conn 0 2;
  conn 2 3;
  conn 1 2;
  t

let test_shortest_path_picks_fewest_hops () =
  let engine = Engine.create () in
  let t = diamond engine in
  Alcotest.(check (option (list int))) "0->3 via lowest-id tie-break"
    (Some [ 0; 1; 3 ])
    (Topology.shortest_path t ~src:0 ~dst:3);
  Alcotest.(check (option (list int))) "1->2 direct" (Some [ 1; 2 ])
    (Topology.shortest_path t ~src:1 ~dst:2);
  Alcotest.(check (option (list int))) "self" (Some [ 0 ])
    (Topology.shortest_path t ~src:0 ~dst:0)

let test_unreachable () =
  let engine = Engine.create () in
  let t = diamond engine in
  (* Links are directed: nothing reaches 0. *)
  Alcotest.(check (option (list int))) "3->0 unreachable" None
    (Topology.shortest_path t ~src:3 ~dst:0);
  try
    ignore (Topology.install_flow t ~flow:1 ~src:3 ~dst:0 ~sink:(fun _ -> ()));
    Alcotest.fail "expected Failure"
  with Failure _ -> ()

let test_end_to_end_delivery () =
  let engine = Engine.create () in
  let t = diamond engine in
  let got = ref [] in
  let path =
    Topology.install_flow t ~flow:7 ~src:0 ~dst:3 ~sink:(fun p ->
        got := (Engine.now engine, (Packet.seq p)) :: !got)
  in
  Alcotest.(check (list int)) "installed along shortest path" [ 0; 1; 3 ] path;
  for i = 0 to 2 do
    Topology.inject t ~at_switch:0 (Packet.make ~flow:7 ~seq:i ~created:0. ())
  done;
  Engine.run engine ~until:1.;
  let got = List.rev !got in
  Alcotest.(check int) "all delivered" 3 (List.length got);
  (* Two hops: first packet needs 2 transmission times. *)
  (match got with
  | (t0, seq0) :: _ ->
      Alcotest.(check int) "in order" 0 seq0;
      Alcotest.(check (float 1e-9)) "2 hops" 0.002 t0
  | [] -> Alcotest.fail "no delivery")

let test_duplex_and_reverse_traffic () =
  let engine = Engine.create () in
  let t = Topology.create ~engine () in
  let a = Topology.add_switch t ~name:"A" in
  let b = Topology.add_switch t ~name:"B" in
  Topology.connect_duplex t ~a ~b ~rate_bps:1e6 ~qdisc_of:fifo ();
  let fwd = ref 0 and rev = ref 0 in
  ignore (Topology.install_flow t ~flow:1 ~src:a ~dst:b ~sink:(fun _ -> incr fwd));
  ignore (Topology.install_flow t ~flow:2 ~src:b ~dst:a ~sink:(fun _ -> incr rev));
  Topology.inject t ~at_switch:a (Packet.make ~flow:1 ~seq:0 ~created:0. ());
  Topology.inject t ~at_switch:b (Packet.make ~flow:2 ~seq:0 ~created:0. ());
  Engine.run engine ~until:1.;
  Alcotest.(check int) "forward" 1 !fwd;
  Alcotest.(check int) "reverse" 1 !rev

let test_duplicate_link_rejected () =
  let engine = Engine.create () in
  let t = diamond engine in
  try
    Topology.connect t ~src:0 ~dst:1 ~rate_bps:1e6 ~qdisc:(fifo ()) ();
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_self_loop_rejected () =
  let engine = Engine.create () in
  let t = diamond engine in
  try
    Topology.connect t ~src:1 ~dst:1 ~rate_bps:1e6 ~qdisc:(fifo ()) ();
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_iter_links_and_drops () =
  let engine = Engine.create () in
  let t = diamond engine in
  let count = ref 0 in
  Topology.iter_links t (fun ~src:_ ~dst:_ _ -> incr count);
  Alcotest.(check int) "five links" 5 !count;
  Alcotest.(check int) "no drops yet" 0 (Topology.total_dropped t)

let qcheck_random_graphs_route_or_fail_cleanly =
  QCheck.Test.make ~name:"random graphs: BFS path is valid when present"
    ~count:100
    QCheck.(
      pair (int_range 2 8)
        (list_of_size (Gen.int_range 0 20) (pair (int_bound 7) (int_bound 7))))
    (fun (n, edges) ->
      let engine = Engine.create () in
      let t = Topology.create ~engine () in
      for i = 0 to n - 1 do
        ignore (Topology.add_switch t ~name:(string_of_int i))
      done;
      List.iter
        (fun (a, b) ->
          let a = a mod n and b = b mod n in
          if a <> b && Topology.link t ~src:a ~dst:b = None then
            Topology.connect t ~src:a ~dst:b ~rate_bps:1e6 ~qdisc:(fifo ()) ())
        edges;
      (* Every reported path must start at src, end at dst, and use only
         existing links. *)
      let ok = ref true in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          match Topology.shortest_path t ~src ~dst with
          | None -> ()
          | Some [] -> ok := false
          | Some (first :: _ as path) ->
              if first <> src then ok := false;
              let rec check = function
                | [ last ] -> if last <> dst then ok := false
                | a :: (b :: _ as rest) ->
                    if a <> b && Topology.link t ~src:a ~dst:b = None then
                      ok := false;
                    check rest
                | [] -> ()
              in
              check path
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "shortest path fewest hops" `Quick
      test_shortest_path_picks_fewest_hops;
    Alcotest.test_case "unreachable" `Quick test_unreachable;
    Alcotest.test_case "end-to-end delivery" `Quick test_end_to_end_delivery;
    Alcotest.test_case "duplex and reverse traffic" `Quick
      test_duplex_and_reverse_traffic;
    Alcotest.test_case "duplicate link rejected" `Quick
      test_duplicate_link_rejected;
    Alcotest.test_case "self loop rejected" `Quick test_self_loop_rejected;
    Alcotest.test_case "iter links and drops" `Quick test_iter_links_and_drops;
    QCheck_alcotest.to_alcotest qcheck_random_graphs_route_or_fail_cleanly;
  ]
