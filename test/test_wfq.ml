open Ispn_sim
open Helpers

let make ?(capacity = 2000) ?(weight_of = fun _ -> 1.) () =
  Ispn_sched.Wfq.create ~pool:(Qdisc.pool ~capacity) ~link_rate_bps:1e6
    ~weight_of ()

let count_flow records flow = List.length (flows_served records flow)

let test_equal_weights_split_bandwidth () =
  (* Two permanently backlogged flows with equal weights: service should
     alternate within one packet. *)
  let qdisc = make () in
  let arrivals = burst ~flow:0 ~at:0. ~n:100 @ burst ~flow:1 ~at:0. ~n:100 in
  let records = run_schedule ~qdisc ~arrivals ~until:0.1 () in
  (* 0.1s at 1ms per packet = 100 served; each flow should get 50 +- 1. *)
  let f0 = count_flow records 0 and f1 = count_flow records 1 in
  if abs (f0 - f1) > 1 then Alcotest.failf "unfair split: %d vs %d" f0 f1

let test_weighted_split () =
  (* Weights 3:1 — the heavy flow gets three quarters of the link. *)
  let weight_of = function 0 -> 3. | _ -> 1. in
  let qdisc = make ~weight_of () in
  let arrivals = burst ~flow:0 ~at:0. ~n:200 @ burst ~flow:1 ~at:0. ~n:200 in
  let records = run_schedule ~qdisc ~arrivals ~until:0.1 () in
  let f0 = count_flow records 0 and f1 = count_flow records 1 in
  let share = float_of_int f0 /. float_of_int (f0 + f1) in
  if Float.abs (share -. 0.75) > 0.03 then
    Alcotest.failf "expected 75%% share, got %.1f%%" (100. *. share)

let test_isolation_from_burst () =
  (* The paper's Section 5 observation: under WFQ a burst hurts mostly the
     burster.  A smooth flow sharing with a 100-packet burst must keep its
     own waits to roughly the GPS share (about one extra packet time), while
     the burster's tail is large. *)
  let qdisc = make () in
  let smooth = paced ~flow:0 ~at:0.0001 ~gap:0.002 ~n:40 in
  let bursty = burst ~flow:1 ~at:0. ~n:100 in
  let records = run_schedule ~qdisc ~arrivals:(smooth @ bursty) ~until:1. () in
  let smooth_max = max_wait (flows_served records 0) in
  let bursty_max = max_wait (flows_served records 1) in
  if smooth_max > 0.003 then
    Alcotest.failf "smooth flow dragged into the burst: %.6fs" smooth_max;
  if bursty_max < 0.050 then
    Alcotest.failf "burster unexpectedly unpunished: %.6fs" bursty_max

let test_idle_flow_gains_no_credit () =
  (* A flow that idles cannot bank service: after both flows go idle and
     return, arbitration starts fresh. *)
  let qdisc = make () in
  let first = burst ~flow:0 ~at:0. ~n:5 in
  let later = burst ~flow:1 ~at:0.5 ~n:5 @ burst ~flow:0 ~at:0.5 ~n:5 in
  let records = run_schedule ~qdisc ~arrivals:(first @ later) ~until:1. () in
  (* In the second busy period flows 0 and 1 must interleave evenly even
     though flow 1 never sent before. *)
  let second_period = List.filter (fun r -> r.r_done > 0.5) records in
  let f1_waits = mean_wait (flows_served second_period 1) in
  let f0_waits = mean_wait (flows_served second_period 0) in
  (* Packet-granularity active tracking gives the first packet of the busy
     period a one-packet head start, so allow a few transmission times of
     asymmetry; banked credit would show up as several tens of ms. *)
  if Float.abs (f1_waits -. f0_waits) > 0.0035 then
    Alcotest.failf "stale credit: f0 %.6f vs f1 %.6f" f0_waits f1_waits

let test_work_conserving () =
  let qdisc = make () in
  let arrivals = burst ~flow:0 ~at:0. ~n:10 in
  let records = run_schedule ~qdisc ~arrivals ~until:1. () in
  (* All ten go out in exactly ten transmission times. *)
  let last = List.nth records 9 in
  Alcotest.(check (float 1e-9)) "link never idles" 0.010 last.r_done

let test_rejects_bad_weight () =
  let q = make ~weight_of:(fun _ -> 0.) () in
  try
    ignore (q.Qdisc.enqueue ~now:0. (pkt ()));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let qcheck_conservation =
  QCheck.Test.make ~name:"WFQ conserves packets across random bursts"
    ~count:100
    QCheck.(list_of_size (Gen.int_range 0 30) (pair (int_bound 3) (int_range 1 5)))
    (fun plan ->
      let q = make () in
      let n_in = ref 0 in
      List.iteri
        (fun i (flow, n) ->
          for j = 0 to n - 1 do
            if
              q.Qdisc.enqueue ~now:(float_of_int i *. 0.001)
                (pkt ~flow ~seq:((i * 10) + j) ())
            then incr n_in
          done)
        plan;
      let rec drain k =
        match q.Qdisc.dequeue ~now:1. with
        | None -> k
        | Some _ -> drain (k + 1)
      in
      drain 0 = !n_in)

let qcheck_within_flow_order =
  QCheck.Test.make ~name:"WFQ preserves per-flow packet order" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 40) (int_bound 2))
    (fun flows ->
      let q = make () in
      let seqs = Hashtbl.create 4 in
      List.iter
        (fun f ->
          let s = try Hashtbl.find seqs f with Not_found -> 0 in
          Hashtbl.replace seqs f (s + 1);
          ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:f ~seq:s ())))
        flows;
      let last_seen = Hashtbl.create 4 in
      let ok = ref true in
      let rec drain () =
        match q.Qdisc.dequeue ~now:0. with
        | None -> ()
        | Some p ->
            let prev =
              try Hashtbl.find last_seen (Packet.flow p) with Not_found -> -1
            in
            if (Packet.seq p) <= prev then ok := false;
            Hashtbl.replace last_seen (Packet.flow p) (Packet.seq p);
            drain ()
      in
      drain ();
      !ok)

let suite =
  [
    Alcotest.test_case "equal weights split bandwidth" `Quick
      test_equal_weights_split_bandwidth;
    Alcotest.test_case "weighted split" `Quick test_weighted_split;
    Alcotest.test_case "isolation from burst" `Quick test_isolation_from_burst;
    Alcotest.test_case "idle flow gains no credit" `Quick
      test_idle_flow_gains_no_credit;
    Alcotest.test_case "work conserving" `Quick test_work_conserving;
    Alcotest.test_case "rejects bad weight" `Quick test_rejects_bad_weight;
    QCheck_alcotest.to_alcotest qcheck_conservation;
    QCheck_alcotest.to_alcotest qcheck_within_flow_order;
  ]
