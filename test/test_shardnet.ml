open Ispn_sim

(* The sharded engine's contract (Shardnet doc): for workloads without
   exact-float cross-path arrival ties, the per-flow and per-link results
   are identical at every shard count, including 1.  The qcheck property
   drives one randomly drawn chain topology and traffic mix through a
   1-shard and a 4-shard run built from the same description and demands
   equal delivery histories (order-sensitive digests included), equal
   drop accounting, and a fully drained exchange.  The budget test pins
   the marshal/re-make handoff's per-packet allocation. *)

let spec_of ~n ~nflows ~seed ~shards =
  let prng = Ispn_util.Prng.create ~seed:(Int64.of_int (0x5eed + seed)) in
  (* Distinct propagation delays (random floats never collide) keep the
     workload inside the no-exact-ties contract; 2-4 ms floors the
     lookahead so the window count stays test-sized. *)
  let links =
    Array.init
      (2 * (n - 1))
      (fun li ->
        let i = li / 2 in
        let src, dst = if li land 1 = 0 then (i, i + 1) else (i + 1, i) in
        let prop = 2e-3 +. (2e-3 *. Ispn_util.Prng.float prng) in
        let capacity = 4 + Ispn_util.Prng.int prng ~bound:60 in
        {
          Shardnet.l_src = src;
          l_dst = dst;
          l_rate_bps = 1e6;
          l_prop_delay = prop;
          l_qdisc =
            (fun () ->
              Ispn_sched.Fifo.create ~pool:(Qdisc.pool ~capacity) ());
        })
  in
  let flows =
    Array.init nflows (fun f ->
        let src = Ispn_util.Prng.int prng ~bound:n in
        let d = Ispn_util.Prng.int prng ~bound:(n - 1) in
        let dst = if d >= src then d + 1 else d in
        let fseed = Ispn_util.Prng.int64 prng in
        {
          Shardnet.f_src = src;
          f_dst = dst;
          f_driver =
            (fun engine emit ->
              let fp = Ispn_util.Prng.create ~seed:fseed in
              let s =
                Ispn_traffic.Onoff.create ~engine ~prng:fp ~flow:f
                  ~avg_rate_pps:150. ~emit ()
              in
              s.Ispn_traffic.Source.start ());
        })
  in
  {
    Shardnet.n_switches = n;
    n_shards = shards;
    shard_of = Array.init n (fun s -> s * shards / n);
    links;
    flows;
  }

let case_arb =
  QCheck.make
    ~print:(fun (n, nflows, seed) ->
      Printf.sprintf "%d switches, %d flows, seed %d" n nflows seed)
    QCheck.Gen.(triple (int_range 4 10) (int_range 1 6) (int_range 0 9999))

let prop_shard_invariant =
  QCheck.Test.make ~count:30
    ~name:"1-shard and 4-shard runs agree packet for packet" case_arb
    (fun (n, nflows, seed) ->
      let run shards =
        Shardnet.run ~until:1.5 (spec_of ~n ~nflows ~seed ~shards)
      in
      let a = run 1 and b = run 4 in
      if a.Shardnet.r_flows <> b.Shardnet.r_flows then
        QCheck.Test.fail_report "per-flow stats diverge across widths";
      if a.Shardnet.r_links <> b.Shardnet.r_links then
        QCheck.Test.fail_report "per-link stats diverge across widths";
      if b.Shardnet.r_pushed <> b.Shardnet.r_drained then
        QCheck.Test.fail_reportf "exchange not drained: pushed %d drained %d"
          b.Shardnet.r_pushed b.Shardnet.r_drained;
      if a.Shardnet.r_cut_links <> 0 then
        QCheck.Test.fail_report "1-shard run must have no cut links";
      a.Shardnet.r_fired = b.Shardnet.r_fired)

(* A fixed bottlenecked case — tiny buffers force drops — as a fast
   always-on check that drop accounting survives the exchange. *)
let test_drops_agree () =
  let spec shards =
    let links =
      Array.init 6 (fun li ->
          let i = li / 2 in
          let src, dst = if li land 1 = 0 then (i, i + 1) else (i + 1, i) in
          {
            Shardnet.l_src = src;
            l_dst = dst;
            l_rate_bps = 1e6;
            l_prop_delay = 1e-3 *. (1. +. (0.1 *. float_of_int li));
            l_qdisc =
              (fun () -> Ispn_sched.Fifo.create ~pool:(Qdisc.pool ~capacity:4) ());
          })
    in
    let flow f src dst =
      {
        Shardnet.f_src = src;
        f_dst = dst;
        f_driver =
          (fun engine emit ->
            let s =
              Ispn_traffic.Cbr.create ~engine ~flow:f ~rate_pps:700. ~emit ()
            in
            s.Ispn_traffic.Source.start ());
      }
    in
    {
      Shardnet.n_switches = 4;
      n_shards = shards;
      shard_of = (if shards = 1 then [| 0; 0; 0; 0 |] else [| 0; 0; 1; 1 |]);
      links;
      flows = [| flow 0 0 3; flow 1 0 3; flow 2 3 0 |];
    }
  in
  let a = Shardnet.run ~until:2.0 (spec 1) in
  let b = Shardnet.run ~until:2.0 (spec 2) in
  let dropped r =
    Array.fold_left
      (fun acc (k : Shardnet.link_stat) -> acc + k.Shardnet.k_dropped)
      0 r.Shardnet.r_links
  in
  Alcotest.(check bool) "drops happened" true (dropped a > 0);
  Alcotest.(check int) "drops agree" (dropped a) (dropped b);
  Alcotest.(check bool) "flows agree" true
    (a.Shardnet.r_flows = b.Shardnet.r_flows);
  Alcotest.(check int) "exchange drained" b.Shardnet.r_pushed
    b.Shardnet.r_drained

(* The cross-shard handoff's per-packet price, in minor words: the
   marshal side (push) must allocate nothing — it reads arena fields into
   the buffer's plain arrays and frees the handle — and the re-make side
   is allowed only [Packet.make]'s call-boundary boxing (the labelled
   float argument plus optional-argument wrapping on a non-flambda
   compiler).  12 words is well below one boxed record and far from the
   per-packet record regression this test exists to catch. *)
let test_exchange_budget () =
  let b = Shardnet.For_tests.buf () in
  let pa = Packet.arena () in
  (* Warm the buffer and arena past growth. *)
  for i = 0 to 63 do
    let p = Packet.make ~flow:1 ~seq:i ~created:0.5 () in
    Shardnet.For_tests.push b pa p ~arrival:1.0
  done;
  Shardnet.For_tests.reset b;
  let n = 20_000 in
  let before = Gc.minor_words () in
  for i = 1 to n do
    let p = Packet.make ~flow:1 ~seq:i ~created:0.5 () in
    Shardnet.For_tests.push b pa p ~arrival:1.0;
    let q = Shardnet.For_tests.remake b pa 0 in
    Shardnet.For_tests.reset b;
    Packet.free q
  done;
  let per = (Gc.minor_words () -. before) /. float_of_int n in
  (* Subtract nothing: the make/free cycle itself is pinned to zero by
     test_budget.ml, so the whole figure belongs to the exchange. *)
  if per > 12. then
    Alcotest.failf
      "cross-shard exchange: %.1f minor words per packet (expected <= 12 — \
       push must stay allocation-free, remake only Packet.make's boundary \
       boxing)"
      per

let suite =
  [
    QCheck_alcotest.to_alcotest prop_shard_invariant;
    Alcotest.test_case "drop accounting across widths" `Quick test_drops_agree;
    Alcotest.test_case "exchange allocation budget" `Quick test_exchange_budget;
  ]
