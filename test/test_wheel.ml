open Ispn_util

(* Differential tests for the hierarchical timing wheel behind the engine:
   the wheel is pitted against a transparent sorted-list model under
   randomized interleavings of monotone pushes and pops.  The delay
   distribution deliberately covers every routing regime — same-tick,
   level-0, the mid wheels, and the far-future overflow heap whose
   elements must be promoted back into the wheels as the cursor
   approaches — and dt = 0 pushes make FIFO tie-breaking within a tick
   load-bearing.  The model orders by (key, push rank), exactly the
   (key, seq) contract {!Wheel} shares with {!Kheap}. *)

let tick = 1e-6

(* One operation: [Push frac] inserts at the current clock plus a delay
   chosen by [frac] from a mixed-scale distribution; [Pop] extracts the
   minimum and advances the model clock to its key.  The delay classes in
   ticks: 0 (ties), up to ~1e3 (levels 0-1), up to ~5e5 (levels 2-3), and
   up to ~1e7 (overflow, beyond the 32^4-tick wheel span). *)
type op = Push of float | Pop

let delay_of_frac u =
  if u < 0.2 then 0.
  else if u < 0.4 then 1e-3 *. (u -. 0.2) *. 5.
  else if u < 0.7 then 0.5 *. (u -. 0.4) /. 0.3
  else 10.0 *. (u -. 0.7) /. 0.3

let op_gen =
  QCheck.Gen.(
    frequency
      [ (3, map (fun u -> Push u) (float_bound_exclusive 1.)); (2, return Pop) ])

let print_op = function
  | Push u -> Printf.sprintf "Push %.17g (=%.17gs)" u (delay_of_frac u)
  | Pop -> "Pop"

let ops_arb =
  QCheck.make
    ~print:QCheck.Print.(list print_op)
    ~shrink:QCheck.Shrink.list
    QCheck.Gen.(list_size (int_range 0 400) op_gen)

(* The model: a list of (key, rank, id) kept sorted by (key, rank). *)
let model_insert model ~key ~rank id =
  let rec ins = function
    | [] -> [ (key, rank, id) ]
    | ((k, r, _) as hd) :: tl ->
        if k < key || (k = key && r < rank) then hd :: ins tl
        else (key, rank, id) :: hd :: tl
  in
  ins model

let run_script ops =
  let w = Wheel.create ~tick ~dummy:(-1) () in
  let model = ref [] in
  let rank = ref 0 in
  let next_id = ref 0 in
  let clock = ref 0. in
  let step op =
    match op with
    | Push u ->
        let key = !clock +. delay_of_frac u in
        let id = !next_id in
        incr next_id;
        Wheel.push w ~key id;
        model := model_insert !model ~key ~rank:!rank id;
        incr rank;
        true
    | Pop -> (
        match !model with
        | [] ->
            (* Both empty: the wheel must agree. *)
            Wheel.is_empty w
        | (k, _, id) :: rest ->
            let mk = Wheel.min_key_exn w in
            let got = Wheel.pop_exn w in
            model := rest;
            (* Keys are stored verbatim on every level, so the minimum is
               exact, not quantized. *)
            clock := Stdlib.max !clock k;
            mk = k && got = id)
  in
  List.for_all step ops
  && (* Drain whatever remains and check the full residual order. *)
  List.for_all
    (fun (k, _, id) ->
      let ok = Wheel.min_key_exn w = k && Wheel.pop_exn w = id in
      clock := Stdlib.max !clock k;
      ok)
    !model
  && Wheel.is_empty w
  && Wheel.length w = 0

let prop_matches_model =
  QCheck.Test.make ~count:300 ~name:"wheel matches sorted-list model"
    ops_arb run_script

(* pop_due must release exactly the elements at or before [until] and
   refuse the rest, however the boundary falls relative to slot and wheel
   spans. *)
let prop_pop_due =
  QCheck.Test.make ~count:300 ~name:"pop_due honors the until boundary"
    QCheck.(
      make
        ~print:Print.(pair (list print_op) float)
        Gen.(pair (list_size (int_range 0 200) op_gen)
               (float_bound_exclusive 20.)))
    (fun (ops, until) ->
      let w = Wheel.create ~tick ~dummy:(-1) () in
      let model = ref [] in
      let rank = ref 0 in
      let next_id = ref 0 in
      let clock = ref 0. in
      List.iter
        (function
          | Push u ->
              let key = !clock +. delay_of_frac u in
              let id = !next_id in
              incr next_id;
              Wheel.push w ~key id;
              model := model_insert !model ~key ~rank:!rank id;
              incr rank
          | Pop -> (
              match !model with
              | [] -> ()
              | (k, _, _) :: rest ->
                  ignore (Wheel.pop_exn w);
                  model := rest;
                  clock := Stdlib.max !clock k))
        ops;
      let due, late = List.partition (fun (k, _, _) -> k <= until) !model in
      let rec drain acc =
        let got = Wheel.pop_due w ~until ~none:(-1) in
        if got = -1 then List.rev acc else drain (got :: acc)
      in
      let got = drain [] in
      got = List.map (fun (_, _, id) -> id) due
      && Wheel.length w = List.length late)

(* pop_batch must be a pure reshaping of the pop_due stream: draining via
   batches of a capricious capacity yields the same ids, in the same
   order, as one-at-a-time pops, and never crosses [until]. *)
let prop_pop_batch =
  QCheck.Test.make ~count:300 ~name:"pop_batch equals repeated pop_due"
    QCheck.(
      make
        ~print:Print.(pair (list print_op) float)
        Gen.(pair (list_size (int_range 0 200) op_gen)
               (float_bound_exclusive 20.)))
    (fun (ops, until) ->
      let w = Wheel.create ~tick ~dummy:(-1) () in
      let model = ref [] in
      let rank = ref 0 in
      let next_id = ref 0 in
      let clock = ref 0. in
      List.iter
        (function
          | Push u ->
              let key = !clock +. delay_of_frac u in
              let id = !next_id in
              incr next_id;
              Wheel.push w ~key id;
              model := model_insert !model ~key ~rank:!rank id;
              incr rank
          | Pop -> (
              match !model with
              | [] -> ()
              | (k, _, _) :: rest ->
                  ignore (Wheel.pop_exn w);
                  model := rest;
                  clock := Stdlib.max !clock k))
        ops;
      let due, late = List.partition (fun (k, _, _) -> k <= until) !model in
      let cap = 3 in
      let keys = Array.make cap 0. in
      let seqs = Array.make cap 0 in
      let data = Array.make cap (-1) in
      let rec drain acc =
        let n = Wheel.pop_batch w ~until ~keys ~seqs data in
        if n = 0 then List.rev acc
        else begin
          (* Batches come out ascending in (key, seq). *)
          for i = 1 to n - 1 do
            assert (
              keys.(i - 1) < keys.(i)
              || (keys.(i - 1) = keys.(i) && seqs.(i - 1) < seqs.(i)))
          done;
          drain (List.rev_append (Array.to_list (Array.sub data 0 n)) acc)
        end
      in
      let got = drain [] in
      got = List.map (fun (_, _, id) -> id) due
      && Wheel.length w = List.length late)

let test_pop_batch_guard () =
  (* The engine's splice-back protocol: batch a tick's cross-section, arm
     the guard with the last key, let an interleaving push undercut it,
     reinsert the unfired tail under its original seqs, and demand the
     merged drain order. *)
  let w = Wheel.create ~tick ~dummy:(-1) () in
  (* Three FIFO-tied elements under one key (equal keys share a tick by
     construction, however the float-to-tick rounding falls), staged into
     one due run by a popped earlier sentinel — a lone first push is
     staged straight into the head, making a 1-element batch. *)
  let base = 100. *. tick in
  Wheel.push w ~key:(50. *. tick) 99;
  Wheel.push w ~key:base 0;
  Wheel.push w ~key:base 1;
  Wheel.push w ~key:base 2;
  Alcotest.(check int) "sentinel" 99 (Wheel.pop_exn w);
  let keys = Array.make 8 0. in
  let seqs = Array.make 8 0 in
  let data = Array.make 8 (-1) in
  let n = Wheel.pop_batch w ~until:1.0 ~keys ~seqs data in
  Alcotest.(check int) "one tick's cross-section" 3 n;
  (Wheel.guard w).(0) <- keys.(2);
  (* An equal-key push belongs after the tail by seq — no hit. *)
  Wheel.push w ~key:base 4;
  Alcotest.(check bool) "push at the guard does not trip it" false
    (Wheel.guard_hit w);
  (* A strictly smaller key would fire out of order — hit.  It is later
     than everything popped so far, so monotonicity holds. *)
  Wheel.push w ~key:(base -. (0.5 *. tick)) 3;
  Alcotest.(check bool) "undercutting push trips the guard" true
    (Wheel.guard_hit w);
  Wheel.guard_clear w;
  Alcotest.(check bool) "cleared" false (Wheel.guard_hit w);
  (* Element 0 fired; elements 1 and 2 are the unfired tail.  Original
     seqs keep them ahead of the equal-key interloper pushed since. *)
  Wheel.reinsert w ~key:keys.(1) ~seq:seqs.(1) data.(1);
  Wheel.reinsert w ~key:keys.(2) ~seq:seqs.(2) data.(2);
  Alcotest.(check (list int))
    "merged order after the splice" [ 3; 1; 2; 4 ]
    (List.init 4 (fun _ -> Wheel.pop_exn w));
  Alcotest.(check bool) "empty" true (Wheel.is_empty w)

let test_pop_batch_capacity () =
  (* More due elements than buffer: the batch truncates at capacity and
     the remainder — including same-key FIFO ties — drains in order. *)
  let w = Wheel.create ~tick ~dummy:(-1) () in
  let k = 7. *. tick in
  Wheel.push w ~key:(3. *. tick) 99;
  for i = 0 to 9 do
    Wheel.push w ~key:k i
  done;
  Alcotest.(check int) "sentinel" 99 (Wheel.pop_exn w);
  let keys = Array.make 4 0. in
  let seqs = Array.make 4 0 in
  let data = Array.make 4 (-1) in
  let n = Wheel.pop_batch w ~until:1.0 ~keys ~seqs data in
  Alcotest.(check int) "capacity-bounded" 4 n;
  Alcotest.(check (list int)) "first four in push order" [ 0; 1; 2; 3 ]
    (Array.to_list (Array.sub data 0 n));
  let n2 = Wheel.pop_batch w ~until:1.0 ~keys ~seqs data in
  Alcotest.(check int) "next batch" 4 n2;
  Alcotest.(check (list int)) "continues in push order" [ 4; 5; 6; 7 ]
    (Array.to_list (Array.sub data 0 n2));
  Alcotest.(check (list int)) "tail via pop_exn" [ 8; 9 ]
    (List.init 2 (fun _ -> Wheel.pop_exn w))

let test_fifo_within_tick () =
  (* Many pushes inside one level-0 tick, mixed with earlier and later
     keys: the same-key run must drain in push order. *)
  let w = Wheel.create ~tick ~dummy:(-1) () in
  let k = 42. *. tick in
  Wheel.push w ~key:(k +. tick) 100;
  for i = 0 to 9 do
    Wheel.push w ~key:k i
  done;
  Wheel.push w ~key:(k -. tick) 200;
  let order = List.init 12 (fun _ -> Wheel.pop_exn w) in
  Alcotest.(check (list int))
    "fifo within the tick" ([ 200 ] @ List.init 10 Fun.id @ [ 100 ]) order

let test_overflow_promotion () =
  (* A key beyond the 32^4-tick span waits in the overflow heap and must
     surface in order once the cursor gets there, including ties against
     keys pushed later directly into the wheels. *)
  let w = Wheel.create ~tick ~dummy:(-1) () in
  let far = 5.0 (* 5e6 ticks: past the ~1.05e6-tick wheel span *) in
  Wheel.push w ~key:far 0;
  Wheel.push w ~key:1e-3 1;
  Wheel.push w ~key:far 2;
  Alcotest.(check int) "near first" 1 (Wheel.pop_exn w);
  Wheel.push w ~key:far 3;
  Alcotest.(check (list int))
    "overflow drains in push order" [ 0; 2; 3 ]
    (List.init 3 (fun _ -> Wheel.pop_exn w));
  Alcotest.(check bool) "empty" true (Wheel.is_empty w)

let test_clear_keeps_monotonicity () =
  let w = Wheel.create ~tick ~dummy:(-1) () in
  Wheel.push w ~key:0.5 0;
  ignore (Wheel.pop_exn w);
  Wheel.clear w;
  Alcotest.(check bool) "empty after clear" true (Wheel.is_empty w);
  (* Keys at the cursor remain legal after clear. *)
  Wheel.push w ~key:0.5 7;
  Wheel.push w ~key:0.7 8;
  Alcotest.(check (list int)) "usable after clear" [ 7; 8 ]
    (List.init 2 (fun _ -> Wheel.pop_exn w))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_matches_model;
    QCheck_alcotest.to_alcotest prop_pop_due;
    QCheck_alcotest.to_alcotest prop_pop_batch;
    Alcotest.test_case "pop_batch guard and splice" `Quick
      test_pop_batch_guard;
    Alcotest.test_case "pop_batch capacity" `Quick test_pop_batch_capacity;
    Alcotest.test_case "FIFO within a tick" `Quick test_fifo_within_tick;
    Alcotest.test_case "overflow promotion" `Quick test_overflow_promotion;
    Alcotest.test_case "clear" `Quick test_clear_keeps_monotonicity;
  ]
