(* Packet, Qdisc pools, Link, Node, Network, Probe and the link's
   flight-recorder event stream. *)
open Ispn_sim

let mk_packet ?(flow = 0) ?(seq = 0) ?(created = 0.) () =
  Packet.make ~flow ~seq ~created ()

(* --- Packet --- *)

let test_packet_defaults () =
  let p = mk_packet () in
  Alcotest.(check int) "size" Ispn_util.Units.packet_bits (Packet.size_bits p);
  Alcotest.(check (float 0.)) "offset" 0. (Packet.offset p);
  Alcotest.(check (float 0.)) "qdelay" 0. (Packet.qdelay_total p);
  Alcotest.(check int) "hops" 0 (Packet.hops p)

let test_packet_expected_arrival () =
  let p = mk_packet () in
  Packet.set_enqueued_at p (10.);
  Packet.set_offset p (3.);
  Alcotest.(check (float 1e-9)) "expected arrival" 7. (Packet.expected_arrival p)

(* --- Qdisc pool --- *)

let test_pool_capacity () =
  let pool = Qdisc.pool ~capacity:2 in
  Alcotest.(check bool) "take 1" true (Qdisc.pool_take pool);
  Alcotest.(check bool) "take 2" true (Qdisc.pool_take pool);
  Alcotest.(check bool) "take 3 fails" false (Qdisc.pool_take pool);
  Qdisc.pool_release pool;
  Alcotest.(check bool) "take after release" true (Qdisc.pool_take pool);
  Alcotest.(check int) "in use" 2 (Qdisc.pool_in_use pool);
  Alcotest.(check int) "capacity" 2 (Qdisc.pool_capacity pool)

let test_unbounded_pool () =
  let pool = Qdisc.unbounded_pool () in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "take" true (Qdisc.pool_take pool)
  done

(* --- Link --- *)

let make_link engine ?(rate_bps = 1e6) ?(prop_delay = 0.) () =
  let pool = Qdisc.pool ~capacity:10 in
  let qdisc = Ispn_sched.Fifo.create ~pool () in
  Link.create ~engine ~rate_bps ~prop_delay ~qdisc ~name:"test" ()

let test_link_serializes_at_rate () =
  let engine = Engine.create () in
  let link = make_link engine () in
  let arrivals = ref [] in
  Link.set_receiver link (fun _ -> arrivals := Engine.now engine :: !arrivals);
  (* Three 1000-bit packets at 1 Mbit/s: finish at 1, 2, 3 ms. *)
  for i = 0 to 2 do
    Link.send link (mk_packet ~seq:i ())
  done;
  Engine.run engine ~until:1.;
  let times = List.rev !arrivals in
  Alcotest.(check int) "delivered" 3 (List.length times);
  List.iteri
    (fun i t ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "packet %d" i)
        (0.001 *. float_of_int (i + 1))
        t)
    times

let test_link_propagation_delay () =
  let engine = Engine.create () in
  let link = make_link engine ~prop_delay:0.5 () in
  let arrival = ref nan in
  Link.set_receiver link (fun _ -> arrival := Engine.now engine);
  Link.send link (mk_packet ());
  Engine.run engine ~until:1.;
  Alcotest.(check (float 1e-9)) "tx + prop" 0.501 !arrival

let test_link_accumulates_qdelay () =
  let engine = Engine.create () in
  let link = make_link engine () in
  let delays = ref [] in
  Link.set_receiver link (fun p ->
      delays := (Packet.qdelay_total p) :: !delays);
  for i = 0 to 2 do
    Link.send link (mk_packet ~seq:i ())
  done;
  Engine.run engine ~until:1.;
  (* Packet 0 waits 0; packet 1 waits one transmission; packet 2 two. *)
  Alcotest.(check (list (float 1e-9)))
    "waits" [ 0.; 0.001; 0.002 ] (List.rev !delays)

let test_link_drops_on_full_buffer () =
  let engine = Engine.create () in
  let pool = Qdisc.pool ~capacity:2 in
  let qdisc = Ispn_sched.Fifo.create ~pool () in
  let link =
    Link.create ~engine ~rate_bps:1e6 ~qdisc ~name:"small" ()
  in
  let dropped_pkts = ref 0 in
  Link.set_drop_hook link (fun _ -> incr dropped_pkts);
  Link.set_receiver link (fun _ -> ());
  (* First packet goes straight to the transmitter, freeing its buffer slot;
     2 more fit in the queue; the rest drop. *)
  for i = 0 to 5 do
    Link.send link (mk_packet ~seq:i ())
  done;
  Alcotest.(check int) "dropped count" 3 (Link.dropped link);
  Alcotest.(check int) "drop hook fired" 3 !dropped_pkts;
  Engine.run engine ~until:1.;
  Alcotest.(check int) "sent" 3 (Link.sent link)

let test_link_utilization () =
  let engine = Engine.create () in
  let link = make_link engine () in
  Link.set_receiver link (fun _ -> ());
  for i = 0 to 4 do
    Link.send link (mk_packet ~seq:i ())
  done;
  Engine.run engine ~until:0.010;
  (* 5 ms busy of 10 ms elapsed. *)
  Alcotest.(check (float 1e-9)) "utilization" 0.5
    (Link.utilization link ~elapsed:0.010)

let test_link_requires_receiver () =
  let engine = Engine.create () in
  let link = make_link engine () in
  Link.send link (mk_packet ());
  try
    Engine.run engine ~until:1.;
    Alcotest.fail "expected Failure"
  with Failure _ -> ()

(* --- Node --- *)

let test_node_routes_and_counts () =
  let node = Node.create ~name:"S" in
  let got = ref [] in
  Node.add_route node ~flow:1 (Node.Deliver (fun p -> got := (Packet.flow p) :: !got));
  let p = mk_packet ~flow:1 () in
  Node.receive node p;
  Alcotest.(check (list int)) "delivered" [ 1 ] !got;
  Alcotest.(check int) "hop counted" 1 (Packet.hops p);
  Alcotest.(check int) "received" 1 (Node.received node)

let test_node_unknown_flow () =
  let node = Node.create ~name:"S" in
  try
    Node.receive node (mk_packet ~flow:9 ());
    Alcotest.fail "expected Failure"
  with Failure _ -> ()

(* --- Network + Probe --- *)

let test_network_chain_end_to_end () =
  let engine = Engine.create () in
  let net =
    Network.chain ~engine ~n_switches:3 ~rate_bps:1e6
      ~qdisc_of:(fun _ ->
        Ispn_sched.Fifo.create ~pool:(Qdisc.pool ~capacity:10) ())
      ()
  in
  let probe = Probe.create () in
  Network.install_flow net ~flow:5 ~ingress:0 ~egress:2
    ~sink:(fun p -> Probe.sink probe ~engine p);
  Network.inject net ~at_switch:0 (mk_packet ~flow:5 ());
  Engine.run engine ~until:1.;
  Alcotest.(check int) "received" 1 (Probe.received probe);
  (* Two links traversed, no queueing: latency = 2 transmission times. *)
  Alcotest.(check (float 1e-9)) "latency" 0.002
    (Ispn_util.Fvec.get (Probe.latencies probe) 0);
  Alcotest.(check (float 1e-9)) "no queueing" 0.
    (Ispn_util.Fvec.get (Probe.qdelays probe) 0)

let test_network_zero_length_path () =
  let engine = Engine.create () in
  let net =
    Network.chain ~engine ~n_switches:2 ~rate_bps:1e6
      ~qdisc_of:(fun _ ->
        Ispn_sched.Fifo.create ~pool:(Qdisc.pool ~capacity:10) ())
      ()
  in
  let got = ref 0 in
  Network.install_flow net ~flow:1 ~ingress:0 ~egress:0
    ~sink:(fun _ -> incr got);
  Network.inject net ~at_switch:0 (mk_packet ~flow:1 ());
  Alcotest.(check int) "delivered locally" 1 !got

let test_network_bad_path_rejected () =
  let engine = Engine.create () in
  let net =
    Network.chain ~engine ~n_switches:2 ~rate_bps:1e6
      ~qdisc_of:(fun _ ->
        Ispn_sched.Fifo.create ~pool:(Qdisc.pool ~capacity:10) ())
      ()
  in
  try
    Network.install_flow net ~flow:1 ~ingress:0 ~egress:5 ~sink:(fun _ -> ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_probe_units () =
  let engine = Engine.create () in
  let probe = Probe.create () in
  let p = mk_packet () in
  Packet.set_qdelay_total p (0.004);
  Probe.sink probe ~engine p;
  (* 4 ms = 4 packet transmission times at the default configuration. *)
  Alcotest.(check (float 1e-9)) "mean in units" 4. (Probe.mean_qdelay probe);
  Alcotest.(check (float 1e-9)) "max in units" 4. (Probe.max_qdelay probe)

(* --- Flight recorder events from the link --- *)

module Recorder = Ispn_obs.Recorder

let make_recorded_link engine recorder ~pool_capacity =
  let pool = Qdisc.pool ~capacity:pool_capacity in
  let qdisc = Ispn_sched.Fifo.create ~pool () in
  Link.create ~engine ~rate_bps:1e6 ~id:3 ~recorder ~qdisc ~name:"rec" ()

let test_recorder_link_events () =
  let engine = Engine.create () in
  let r = Recorder.create ~capacity:16 () in
  let link = make_recorded_link engine r ~pool_capacity:10 in
  Link.set_receiver link (fun _ -> ());
  let p = mk_packet ~flow:7 ~seq:9 () in
  (* Pretend an upstream hop already queued it for 2 ms. *)
  Packet.set_qdelay_total p (0.002);
  Link.send link p;
  Engine.run engine ~until:1.;
  let evs = Recorder.events r in
  Alcotest.(check (list string)) "lifecycle"
    [ "enqueue"; "dequeue"; "tx-start"; "deliver" ]
    (List.map (fun (e : Recorder.event) -> Recorder.kind_name e.kind) evs);
  List.iter
    (fun (e : Recorder.event) ->
      Alcotest.(check int) "hop id" 3 e.link;
      Alcotest.(check int) "flow" 7 e.flow;
      Alcotest.(check int) "seq" 9 e.seq)
    evs;
  match evs with
  | [ enq; deq; tx; dlv ] ->
      Alcotest.(check (float 1e-12)) "enqueue carries upstream qdelay" 0.002
        enq.Recorder.value;
      Alcotest.(check (float 1e-12)) "idle link: zero wait" 0.
        deq.Recorder.value;
      Alcotest.(check (float 1e-12)) "tx time" 0.001 tx.Recorder.value;
      Alcotest.(check (float 1e-12)) "deliver carries cumulative qdelay"
        0.002 dlv.Recorder.value
  | _ -> Alcotest.fail "expected exactly four events"

let test_recorder_drop_causes () =
  let engine = Engine.create () in
  let r = Recorder.create ~capacity:32 () in
  let link = make_recorded_link engine r ~pool_capacity:2 in
  Link.set_receiver link (fun _ -> ());
  (* seq 0 starts transmitting (releasing its buffer), 1 and 2 queue,
     3 overflows the 2-packet pool. *)
  for i = 0 to 3 do
    Link.send link (mk_packet ~seq:i ())
  done;
  Engine.run engine ~until:0.0005;
  (* seq 0 is mid-flight: taking the link down loses it. *)
  Link.set_up link false;
  Engine.run engine ~until:0.01;
  let drops =
    List.filter (fun (e : Recorder.event) -> e.kind = Recorder.Drop)
      (Recorder.events r)
  in
  Alcotest.(check (list string)) "drop causes in time order"
    [ "buffer"; "down" ]
    (List.map (fun (e : Recorder.event) -> Recorder.cause_name e.cause) drops);
  Alcotest.(check (list int)) "dropped seqs" [ 3; 0 ]
    (List.map (fun (e : Recorder.event) -> e.seq) drops);
  Alcotest.(check int) "buffer counter" 1 (Link.drops_buffer link);
  Alcotest.(check int) "down counter" 1 (Link.drops_down link);
  Alcotest.(check int) "total" 2 (Link.dropped link)

let test_link_wait_stats () =
  let engine = Engine.create () in
  let link = make_link engine () in
  Link.set_receiver link (fun _ -> ());
  for i = 0 to 2 do
    Link.send link (mk_packet ~seq:i ())
  done;
  Engine.run engine ~until:1.;
  let stats = Link.wait_stats link in
  Alcotest.(check int) "three waits recorded" 3
    (Ispn_util.Stats.count stats);
  (* Waits 0, 1 ms, 2 ms: mean 1 ms. *)
  Alcotest.(check (float 1e-9)) "mean wait" 0.001
    (Ispn_util.Stats.mean stats)

let test_recorder_clear () =
  let engine = Engine.create () in
  let r = Recorder.create ~capacity:16 () in
  let link = make_recorded_link engine r ~pool_capacity:10 in
  Link.set_receiver link (fun _ -> ());
  Link.send link (mk_packet ());
  Engine.run engine ~until:1.;
  Alcotest.(check bool) "recorded something" true (Recorder.length r > 0);
  Recorder.clear r;
  Alcotest.(check int) "cleared" 0 (Recorder.length r);
  Alcotest.(check int) "capacity unchanged" 16 (Recorder.capacity r)

let suite =
  [
    Alcotest.test_case "packet defaults" `Quick test_packet_defaults;
    Alcotest.test_case "packet expected arrival" `Quick
      test_packet_expected_arrival;
    Alcotest.test_case "pool capacity" `Quick test_pool_capacity;
    Alcotest.test_case "unbounded pool" `Quick test_unbounded_pool;
    Alcotest.test_case "link serializes at rate" `Quick
      test_link_serializes_at_rate;
    Alcotest.test_case "link propagation delay" `Quick
      test_link_propagation_delay;
    Alcotest.test_case "link accumulates qdelay" `Quick
      test_link_accumulates_qdelay;
    Alcotest.test_case "link drops on full buffer" `Quick
      test_link_drops_on_full_buffer;
    Alcotest.test_case "link utilization" `Quick test_link_utilization;
    Alcotest.test_case "link requires receiver" `Quick
      test_link_requires_receiver;
    Alcotest.test_case "node routes and counts" `Quick
      test_node_routes_and_counts;
    Alcotest.test_case "node unknown flow" `Quick test_node_unknown_flow;
    Alcotest.test_case "network chain end to end" `Quick
      test_network_chain_end_to_end;
    Alcotest.test_case "network zero-length path" `Quick
      test_network_zero_length_path;
    Alcotest.test_case "network bad path rejected" `Quick
      test_network_bad_path_rejected;
    Alcotest.test_case "probe units" `Quick test_probe_units;
    Alcotest.test_case "recorder link events" `Quick
      test_recorder_link_events;
    Alcotest.test_case "recorder drop causes" `Quick
      test_recorder_drop_causes;
    Alcotest.test_case "link wait stats" `Quick test_link_wait_stats;
    Alcotest.test_case "recorder clear" `Quick test_recorder_clear;
  ]
