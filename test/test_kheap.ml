open Ispn_util

(* The keyed heap behind every ranked scheduler: float keys, FIFO within
   equal keys.  The model tests pit it against a sorted association list;
   small integer keys make ties frequent. *)

let kh () = Kheap.create ~dummy:(-1) ()

let test_empty () =
  let h = kh () in
  Alcotest.(check bool) "is_empty" true (Kheap.is_empty h);
  Alcotest.(check int) "length" 0 (Kheap.length h);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Kheap.pop_exn: empty")
    (fun () -> ignore (Kheap.pop_exn h));
  Alcotest.check_raises "peek_exn" (Invalid_argument "Kheap.peek_exn: empty")
    (fun () -> ignore (Kheap.peek_exn h));
  Alcotest.check_raises "min_key_exn"
    (Invalid_argument "Kheap.min_key_exn: empty") (fun () ->
      ignore (Kheap.min_key_exn h))

let test_ordering () =
  let h = kh () in
  List.iteri (fun i k -> Kheap.push h ~key:k i) [ 5.; 1.; 4.; 9.; 2. ];
  let keys = List.init 5 (fun _ ->
      let k = Kheap.min_key_exn h in
      ignore (Kheap.pop_exn h);
      k)
  in
  Alcotest.(check (list (float 0.))) "sorted drain" [ 1.; 2.; 4.; 5.; 9. ] keys

let test_fifo_on_ties () =
  let h = kh () in
  List.iter (fun v -> Kheap.push h ~key:7. v) [ 0; 1; 2; 3 ];
  Kheap.push h ~key:3. 99;
  Alcotest.(check int) "smaller key first" 99 (Kheap.pop_exn h);
  let order = List.init 4 (fun _ -> Kheap.pop_exn h) in
  Alcotest.(check (list int)) "fifo within key" [ 0; 1; 2; 3 ] order

let test_pinned_reinsert_keeps_rank () =
  (* A scheduler un-committing a packet re-inserts it with its original
     sequence number; it must come back out ahead of later arrivals with
     the same key. *)
  let h = kh () in
  List.iter (fun v -> Kheap.push h ~key:1. v) [ 10; 11 ];
  let seq = Kheap.min_seq_exn h in
  let first = Kheap.pop_exn h in
  Alcotest.(check int) "committed head" 10 first;
  Kheap.push h ~key:1. 12;
  (* new arrival, same key *)
  Kheap.push_pinned h ~key:1. ~seq first;
  (* demote the commitment *)
  let order = List.init 3 (fun _ -> Kheap.pop_exn h) in
  Alcotest.(check (list int)) "original rank restored" [ 10; 11; 12 ] order

let test_peek_accessors_agree () =
  let h = kh () in
  Kheap.push h ~key:2. 5;
  Kheap.push h ~key:1. 6;
  Alcotest.(check (float 0.)) "min_key" 1. (Kheap.min_key_exn h);
  Alcotest.(check int) "min_seq is second push" 1 (Kheap.min_seq_exn h);
  Alcotest.(check int) "peek payload" 6 (Kheap.peek_exn h);
  Alcotest.(check int) "peek removes nothing" 2 (Kheap.length h)

let test_clear () =
  let h = kh () in
  List.iter (fun v -> Kheap.push h ~key:0. v) [ 1; 2; 3 ];
  Kheap.clear h;
  Alcotest.(check bool) "empty after clear" true (Kheap.is_empty h);
  Kheap.push h ~key:0. 7;
  Alcotest.(check int) "usable after clear" 7 (Kheap.pop_exn h)

let test_capacity_preallocates () =
  (* Honored ~capacity: pushes within it must not reallocate the arrays.
     Each cross-module [push] call boxes its float [~key] argument (2
     words); beyond that, any minor words here would be growth — doubling
     to 1024 slots would cost ~3000 words at once, well over the budget. *)
  let h = Kheap.create ~capacity:512 ~dummy:0 () in
  Kheap.push h ~key:0. 0;
  let before = Gc.minor_words () in
  let pushes = 511 in
  for i = 1 to pushes do
    Kheap.push h ~key:(float_of_int (i land 15)) i
  done;
  let words = Gc.minor_words () -. before in
  let budget = (2. *. float_of_int pushes) +. 64. in
  if words > budget then
    Alcotest.failf
      "%.0f minor words growing within capacity (boxed key args alone are \
       %.0f)"
      words
      (2. *. float_of_int pushes)

(* Model: a sorted association list of (key, seq, payload), kept stable by
   inserting strictly after every entry with an equal key. *)
let model_insert model key seq v =
  let rec go = function
    | [] -> [ (key, seq, v) ]
    | ((k, s, _) as hd) :: tl ->
        if k < key || (k = key && s < seq) then hd :: go tl
        else (key, seq, v) :: hd :: tl
  in
  go model

let qcheck_model =
  (* true → push with the given small key (ties frequent); false → pop. *)
  QCheck.Test.make ~name:"kheap agrees with sorted-list model" ~count:500
    QCheck.(list (pair bool (int_bound 7)))
    (fun ops ->
      let h = kh () in
      let model = ref [] in
      let next = ref 0 in
      List.for_all
        (fun (is_push, k) ->
          if is_push then begin
            let v = !next in
            incr next;
            Kheap.push h ~key:(float_of_int k) v;
            model := model_insert !model (float_of_int k) v v;
            true
          end
          else
            match !model with
            | [] -> Kheap.is_empty h
            | (k, _, v) :: tl ->
                model := tl;
                k = Kheap.min_key_exn h && v = Kheap.pop_exn h)
        ops
      && Kheap.length h = List.length !model)

let qcheck_drain_sorted_stable =
  QCheck.Test.make ~name:"kheap drains sorted, FIFO within keys" ~count:300
    QCheck.(list (int_bound 7))
    (fun keys ->
      let h = kh () in
      List.iteri (fun i k -> Kheap.push h ~key:(float_of_int k) i) keys;
      let expected =
        List.mapi (fun i k -> (k, i)) keys
        |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
        |> List.map snd
      in
      let drained =
        List.init (List.length keys) (fun _ -> Kheap.pop_exn h)
      in
      drained = expected)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "fifo on ties" `Quick test_fifo_on_ties;
    Alcotest.test_case "pinned reinsert keeps rank" `Quick
      test_pinned_reinsert_keeps_rank;
    Alcotest.test_case "peek accessors agree" `Quick test_peek_accessors_agree;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "capacity preallocates" `Quick
      test_capacity_preallocates;
    QCheck_alcotest.to_alcotest qcheck_model;
    QCheck_alcotest.to_alcotest qcheck_drain_sorted_stable;
  ]
