(* Traffic sources: Onoff, Cbr, Poisson, Greedy. *)
open Ispn_sim
module Prng = Ispn_util.Prng

let collect_source build ~duration =
  let engine = Engine.create () in
  let times = ref [] in
  let src = build engine (fun (p : Packet.t) -> times := (Engine.now engine, p) :: !times) in
  src.Ispn_traffic.Source.start ();
  Engine.run engine ~until:duration;
  (src, List.rev !times)

(* --- Onoff --- *)

let test_onoff_idle_mean_relation () =
  (* The Appendix relation: with B = 5 and P = 2A, I = B / (2A). *)
  let i = Ispn_traffic.Onoff.idle_mean ~avg_rate_pps:85. ~peak_rate_pps:170. ~burst_mean:5. in
  Alcotest.(check (float 1e-9)) "I = B/(2A)" (5. /. 170.) i

let test_onoff_average_rate () =
  let build engine emit =
    Ispn_traffic.Onoff.create ~engine ~prng:(Prng.create ~seed:11L) ~flow:0
      ~avg_rate_pps:85. ~emit ()
  in
  let src, times = collect_source build ~duration:200. in
  let rate = float_of_int (List.length times) /. 200. in
  if Float.abs (rate -. 85.) > 4. then
    Alcotest.failf "average rate %.1f, expected ~85" rate;
  Alcotest.(check int) "generated counter" (List.length times)
    (src.Ispn_traffic.Source.generated ())

let test_onoff_peak_spacing () =
  (* Within a burst, consecutive packets are exactly 1/P apart. *)
  let build engine emit =
    Ispn_traffic.Onoff.create ~engine ~prng:(Prng.create ~seed:12L) ~flow:0
      ~avg_rate_pps:85. ~emit ()
  in
  let _, times = collect_source build ~duration:20. in
  let min_gap = 1. /. 170. in
  let rec check = function
    | (t1, _) :: ((t2, _) :: _ as rest) ->
        if t2 -. t1 < min_gap -. 1e-9 then
          Alcotest.failf "gap %.6f below peak spacing" (t2 -. t1);
        check rest
    | _ -> ()
  in
  check times

let test_onoff_seq_numbers () =
  let build engine emit =
    Ispn_traffic.Onoff.create ~engine ~prng:(Prng.create ~seed:13L) ~flow:7
      ~avg_rate_pps:85. ~emit ()
  in
  let _, times = collect_source build ~duration:5. in
  List.iteri
    (fun i (_, p) ->
      Alcotest.(check int) "seq" i (Packet.seq p);
      Alcotest.(check int) "flow" 7 (Packet.flow p))
    times

let test_onoff_stop () =
  let engine = Engine.create () in
  let count = ref 0 in
  let src =
    Ispn_traffic.Onoff.create ~engine ~prng:(Prng.create ~seed:14L) ~flow:0
      ~avg_rate_pps:85. ~emit:(fun _ -> incr count) ()
  in
  src.Ispn_traffic.Source.start ();
  Engine.run engine ~until:10.;
  src.Ispn_traffic.Source.stop ();
  let at_stop = !count in
  Engine.run engine ~until:20.;
  Alcotest.(check int) "no packets after stop" at_stop !count

let test_onoff_determinism () =
  let run () =
    let build engine emit =
      Ispn_traffic.Onoff.create ~engine ~prng:(Prng.create ~seed:15L) ~flow:0
        ~avg_rate_pps:85. ~emit ()
    in
    let _, times = collect_source build ~duration:10. in
    List.map fst times
  in
  Alcotest.(check bool) "same seed, same schedule" true (run () = run ())

(* --- Cbr --- *)

let test_cbr_exact_spacing () =
  let build engine emit =
    Ispn_traffic.Cbr.create ~engine ~flow:0 ~rate_pps:100. ~emit ()
  in
  let _, times = collect_source build ~duration:0.1 in
  (* Starts immediately: packets at 0, 10ms, ..., 90ms, plus the one at 100ms. *)
  Alcotest.(check int) "count" 11 (List.length times);
  List.iteri
    (fun i (t, _) ->
      Alcotest.(check (float 1e-9)) "spacing" (0.01 *. float_of_int i) t)
    times

(* --- Poisson --- *)

let test_poisson_rate () =
  let build engine emit =
    Ispn_traffic.Poisson.create ~engine ~prng:(Prng.create ~seed:16L) ~flow:0
      ~rate_pps:200. ~emit ()
  in
  let _, times = collect_source build ~duration:100. in
  let rate = float_of_int (List.length times) /. 100. in
  if Float.abs (rate -. 200.) > 10. then
    Alcotest.failf "poisson rate %.1f, expected ~200" rate

(* --- Greedy --- *)

let test_greedy_initial_burst_then_rate () =
  let build engine emit =
    Ispn_traffic.Greedy.create ~engine ~flow:0 ~rate_pps:100. ~burst_packets:10
      ~emit ()
  in
  let _, times = collect_source build ~duration:0.1 in
  let at_zero = List.filter (fun (t, _) -> t = 0.) times in
  Alcotest.(check int) "opening burst" 10 (List.length at_zero);
  (* Steady packets every 10 ms afterwards. *)
  Alcotest.(check int) "burst + steady" 20 (List.length times)

let test_greedy_keeps_bucket_empty () =
  (* A greedy source sized to its token bucket is entirely conforming but
     leaves the bucket empty at all times — the paper's worst case. *)
  let engine = Engine.create () in
  let bucket =
    Ispn_traffic.Token_bucket.create ~rate_bps:100_000. ~depth_bits:10_000. ()
  in
  let p =
    Ispn_traffic.Token_bucket.policer ~engine ~bucket
      ~mode:Ispn_traffic.Token_bucket.Drop ~next:(fun _ -> ())
  in
  let src =
    Ispn_traffic.Greedy.create ~engine ~flow:0 ~rate_pps:100. ~burst_packets:10
      ~emit:(Ispn_traffic.Token_bucket.admit_fn p) ()
  in
  src.Ispn_traffic.Source.start ();
  Engine.run engine ~until:2.;
  Alcotest.(check int) "fully conforming" 0
    (Ispn_traffic.Token_bucket.dropped p);
  let level = Ispn_traffic.Token_bucket.level_bits bucket ~now:(Engine.now engine) in
  (* Between emissions the bucket refills by at most one packet. *)
  if level > 1100. then Alcotest.failf "bucket not kept empty: %.0f bits" level

let test_greedy_overdrive_violates () =
  let engine = Engine.create () in
  let bucket =
    Ispn_traffic.Token_bucket.create ~rate_bps:100_000. ~depth_bits:10_000. ()
  in
  let p =
    Ispn_traffic.Token_bucket.policer ~engine ~bucket
      ~mode:Ispn_traffic.Token_bucket.Drop ~next:(fun _ -> ())
  in
  let src =
    Ispn_traffic.Greedy.create ~engine ~flow:0 ~rate_pps:100. ~burst_packets:0
      ~overdrive:2. ~emit:(Ispn_traffic.Token_bucket.admit_fn p) ()
  in
  src.Ispn_traffic.Source.start ();
  Engine.run engine ~until:2.;
  Alcotest.(check bool) "misbehaviour detected" true
    (Ispn_traffic.Token_bucket.dropped p > 0)

let suite =
  [
    Alcotest.test_case "onoff idle-mean relation" `Quick
      test_onoff_idle_mean_relation;
    Alcotest.test_case "onoff average rate" `Quick test_onoff_average_rate;
    Alcotest.test_case "onoff peak spacing" `Quick test_onoff_peak_spacing;
    Alcotest.test_case "onoff seq numbers" `Quick test_onoff_seq_numbers;
    Alcotest.test_case "onoff stop" `Quick test_onoff_stop;
    Alcotest.test_case "onoff determinism" `Quick test_onoff_determinism;
    Alcotest.test_case "cbr exact spacing" `Quick test_cbr_exact_spacing;
    Alcotest.test_case "poisson rate" `Quick test_poisson_rate;
    Alcotest.test_case "greedy burst then rate" `Quick
      test_greedy_initial_burst_then_rate;
    Alcotest.test_case "greedy keeps bucket empty" `Quick
      test_greedy_keeps_bucket_empty;
    Alcotest.test_case "greedy overdrive violates" `Quick
      test_greedy_overdrive_violates;
  ]
