open Ispn_sim

let test_roundtrip_basics () =
  let p = Packet.make ~flow:42 ~seq:1234 ~size_bits:1000 ~created:5. () in
  Packet.set_offset p (0.003125);
  let q = Wire.decode ~created:5. (Wire.encode p) in
  Alcotest.(check int) "flow" 42 (Packet.flow q);
  Alcotest.(check int) "seq" 1234 (Packet.seq q);
  Alcotest.(check int) "size" 1000 (Packet.size_bits q);
  Alcotest.(check (float 1e-6)) "offset" 0.003125 (Packet.offset q);
  Alcotest.(check (float 0.)) "created" 5. (Packet.created q)

let test_kind_roundtrip () =
  let ack = Packet.make ~flow:1 ~seq:0 ~kind:Packet.Ack ~created:0. () in
  let q = Wire.decode (Wire.encode ack) in
  Alcotest.(check bool) "ack survives" true ((Packet.kind q) = Packet.Ack)

let test_negative_offset () =
  let p = Packet.make ~flow:1 ~seq:0 ~created:0. () in
  Packet.set_offset p (-0.012);
  let q = Wire.decode (Wire.encode p) in
  Alcotest.(check (float 1e-6)) "negative offset" (-0.012) (Packet.offset q)

let test_offset_saturates () =
  let p = Packet.make ~flow:1 ~seq:0 ~created:0. () in
  Packet.set_offset p (1e9);
  let q = Wire.decode (Wire.encode p) in
  Alcotest.(check (float 1.)) "clamped to int32 max microseconds" 2147.483647
    (Packet.offset q)

let test_malformed () =
  Alcotest.check_raises "short" (Wire.Malformed "short header") (fun () ->
      ignore (Wire.decode (Bytes.create 3)));
  let b = Wire.encode (Packet.make ~flow:1 ~seq:0 ~created:0. ()) in
  Bytes.set_uint8 b 0 9;
  Alcotest.check_raises "version" (Wire.Malformed "version 9") (fun () ->
      ignore (Wire.decode b));
  Bytes.set_uint8 b 0 Wire.version;
  Bytes.set_uint8 b 1 7;
  Alcotest.check_raises "kind" (Wire.Malformed "kind 7") (fun () ->
      ignore (Wire.decode b))

let test_field_range_checks () =
  let p = Packet.make ~flow:1 ~seq:0 ~size_bits:70_000 ~created:0. () in
  try
    ignore (Wire.encode p);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_zero_size_rejected () =
  (* Regression: a zero size field used to decode into a packet that
     transmits in zero time.  Decode must reject it as malformed, and
     encode must refuse to produce one in the first place. *)
  let b = Wire.encode (Packet.make ~flow:1 ~seq:0 ~created:0. ()) in
  Bytes.set_uint16_be b 2 0;
  Alcotest.check_raises "decode rejects" (Wire.Malformed "zero size")
    (fun () -> ignore (Wire.decode b));
  let z = Packet.make ~flow:1 ~seq:0 ~size_bits:0 ~created:0. () in
  (try
     ignore (Wire.encode z);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let qcheck_roundtrip =
  QCheck.Test.make ~name:"wire roundtrip preserves all header fields"
    ~count:500
    QCheck.(
      quad (int_bound 1_000_000) (int_bound 1_000_000) (int_bound 0xFFFF)
        (float_range (-100.) 100.))
    (fun (flow, seq, size_bits, offset) ->
      QCheck.assume (size_bits > 0);
      let p = Packet.make ~flow ~seq ~size_bits ~created:0. () in
      Packet.set_offset p (offset);
      let q = Wire.decode (Wire.encode p) in
      (Packet.flow q) = flow && (Packet.seq q) = seq
      && (Packet.size_bits q) = size_bits
      && Float.abs ((Packet.offset q) -. offset) <= Wire.offset_quantum)

(* Fuzz satellite: a decoded header is either rejected with [Malformed] or
   every field is back inside [encode]'s accepted range — a corrupted wire
   must never crash a switch or smuggle an out-of-range packet past it. *)
let decode_rejects_or_in_range b =
  match Wire.decode b with
  | exception Wire.Malformed _ -> true
  | q ->
      (Packet.flow q) >= 0
      && (Packet.flow q) <= 0x7FFFFFFF
      && (Packet.seq q) >= 0
      && (Packet.seq q) <= 0x7FFFFFFF
      && (Packet.size_bits q) >= 1
      && (Packet.size_bits q) <= 0xFFFF
      && ((Packet.kind q) = Packet.Data || (Packet.kind q) = Packet.Ack)

let qcheck_truncated =
  QCheck.Test.make ~name:"wire decode rejects truncated headers" ~count:200
    QCheck.(int_bound (Wire.header_bytes - 1))
    (fun len ->
      match Wire.decode (Bytes.create len) with
      | exception Wire.Malformed _ -> true
      | _ -> false)

let qcheck_bit_flips =
  (* Start from a valid header, flip 1-4 random bits: decode must raise
     [Malformed] or produce an in-range packet, never crash. *)
  QCheck.Test.make ~name:"wire decode survives bit-flipped headers"
    ~count:1000
    QCheck.(
      pair
        (quad (int_bound 1_000_000) (int_bound 1_000_000)
           (int_range 1 0xFFFF)
           (float_range (-100.) 100.))
        (list_of_size (QCheck.Gen.int_range 1 4)
           (int_bound ((8 * Wire.header_bytes) - 1))))
    (fun ((flow, seq, size_bits, offset), bits) ->
      let p = Packet.make ~flow ~seq ~size_bits ~created:0. () in
      Packet.set_offset p (offset);
      let b = Wire.encode p in
      List.iter
        (fun bit ->
          let byte = bit / 8 and mask = 1 lsl (bit mod 8) in
          Bytes.set_uint8 b byte (Bytes.get_uint8 b byte lxor mask))
        bits;
      decode_rejects_or_in_range b)

let qcheck_random_bytes =
  QCheck.Test.make ~name:"wire decode survives random 16-byte headers"
    ~count:1000
    QCheck.(list_of_size (QCheck.Gen.return Wire.header_bytes) (int_bound 255))
    (fun bytes ->
      let b = Bytes.create Wire.header_bytes in
      List.iteri (fun i v -> Bytes.set_uint8 b i v) bytes;
      decode_rejects_or_in_range b)

let suite =
  [
    Alcotest.test_case "roundtrip basics" `Quick test_roundtrip_basics;
    Alcotest.test_case "kind roundtrip" `Quick test_kind_roundtrip;
    Alcotest.test_case "negative offset" `Quick test_negative_offset;
    Alcotest.test_case "offset saturates" `Quick test_offset_saturates;
    Alcotest.test_case "malformed" `Quick test_malformed;
    Alcotest.test_case "field range checks" `Quick test_field_range_checks;
    Alcotest.test_case "zero size rejected (regression)" `Quick
      test_zero_size_rejected;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_truncated;
    QCheck_alcotest.to_alcotest qcheck_bit_flips;
    QCheck_alcotest.to_alcotest qcheck_random_bytes;
  ]
