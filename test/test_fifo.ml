open Ispn_sim
open Helpers

let make ?(capacity = 100) () =
  Ispn_sched.Fifo.create ~pool:(Qdisc.pool ~capacity) ()

let test_order_preserved () =
  let qdisc = make () in
  let arrivals =
    burst ~flow:0 ~at:0. ~n:5 @ [ (0.0005, pkt ~flow:1 ~seq:0 ()) ]
  in
  let records = run_schedule ~qdisc ~arrivals ~until:1. () in
  let order = List.map (fun r -> (r.r_flow, r.r_seq)) records in
  Alcotest.(check (list (pair int int)))
    "arrival order"
    [ (0, 0); (0, 1); (0, 2); (0, 3); (0, 4); (1, 0) ]
    order

let test_work_conserving () =
  let qdisc = make () in
  (* Packets spread out; the link must finish each exactly one transmission
     time after it arrives (no idling with work queued). *)
  let records =
    run_schedule ~qdisc ~arrivals:(paced ~flow:0 ~at:0. ~gap:0.005 ~n:10)
      ~until:1. ()
  in
  List.iter
    (fun r -> Alcotest.(check (float 1e-9)) "no added wait" 0. r.r_wait)
    records

let test_tail_drop () =
  let qdisc = make ~capacity:3 () in
  let records =
    run_schedule ~qdisc ~arrivals:(burst ~flow:0 ~at:0. ~n:10) ~until:1. ()
  in
  (* One in flight immediately + 3 buffered = 4 delivered. *)
  Alcotest.(check int) "survivors" 4 (List.length records)

let test_length_interface () =
  let pool = Qdisc.pool ~capacity:10 in
  let q = Ispn_sched.Fifo.create ~pool () in
  Alcotest.(check int) "empty" 0 (q.Qdisc.length ());
  ignore (q.Qdisc.enqueue ~now:0. (pkt ()));
  ignore (q.Qdisc.enqueue ~now:0. (pkt ~seq:1 ()));
  Alcotest.(check int) "two queued" 2 (q.Qdisc.length ());
  ignore (q.Qdisc.dequeue ~now:0.);
  Alcotest.(check int) "one left" 1 (q.Qdisc.length ());
  Alcotest.(check int) "pool tracks" 1 (Qdisc.pool_in_use pool)

let test_dequeue_empty () =
  let q = make () in
  Alcotest.(check bool) "none" true (q.Qdisc.dequeue ~now:0. = None)

let qcheck_fifo_order =
  QCheck.Test.make ~name:"FIFO never reorders" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 40) (int_bound 4))
    (fun flows ->
      let q = make ~capacity:1000 () in
      List.iteri
        (fun i f -> ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:f ~seq:i ())))
        flows;
      let rec drain acc =
        match q.Qdisc.dequeue ~now:0. with
        | None -> List.rev acc
        | Some p -> drain ((Packet.seq p) :: acc)
      in
      let seqs = drain [] in
      seqs = List.sort compare seqs)

let qcheck_conservation =
  QCheck.Test.make ~name:"FIFO conserves accepted packets" ~count:200
    QCheck.(int_range 0 50)
    (fun n ->
      let q = make ~capacity:20 () in
      let accepted = ref 0 in
      for i = 0 to n - 1 do
        if q.Qdisc.enqueue ~now:0. (pkt ~seq:i ()) then incr accepted
      done;
      let rec drain k =
        match q.Qdisc.dequeue ~now:0. with None -> k | Some _ -> drain (k + 1)
      in
      drain 0 = !accepted)

let suite =
  [
    Alcotest.test_case "order preserved" `Quick test_order_preserved;
    Alcotest.test_case "work conserving" `Quick test_work_conserving;
    Alcotest.test_case "tail drop" `Quick test_tail_drop;
    Alcotest.test_case "length interface" `Quick test_length_interface;
    Alcotest.test_case "dequeue empty" `Quick test_dequeue_empty;
    QCheck_alcotest.to_alcotest qcheck_fifo_order;
    QCheck_alcotest.to_alcotest qcheck_conservation;
  ]
