(* Metrics registry, flight-recorder ring, per-hop delay attribution, and
   the -j independence of metrics snapshots. *)

module Metrics = Ispn_obs.Metrics
module Recorder = Ispn_obs.Recorder
module Attrib = Ispn_obs.Attrib

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- Metrics registry --- *)

let test_registry_snapshot_sorted () =
  let m = Metrics.create () in
  Metrics.register_int m "b.two" (fun () -> 2);
  Metrics.register_float m "a.one" (fun () -> 1.5);
  Metrics.register_int m "c.three" (fun () -> 3);
  let snap = Metrics.snapshot m in
  Alcotest.(check (list string)) "sorted names"
    [ "a.one"; "b.two"; "c.three" ]
    (List.map fst snap);
  (match List.assoc "a.one" snap with
  | Metrics.Float f -> Alcotest.(check (float 0.)) "float sampled" 1.5 f
  | Metrics.Int _ -> Alcotest.fail "expected a float");
  Alcotest.(check int) "size" 3 (Metrics.size m)

let test_registry_pull_based () =
  let m = Metrics.create () in
  let cell = ref 0 in
  Metrics.register_int m "cell" (fun () -> !cell);
  cell := 41;
  incr cell;
  match Metrics.snapshot m with
  | [ ("cell", Metrics.Int 42) ] -> ()
  | _ -> Alcotest.fail "snapshot must sample at snapshot time"

let test_registry_duplicate_rejected () =
  let m = Metrics.create () in
  Metrics.register_int m "x" (fun () -> 0);
  try
    Metrics.register_float m "x" (fun () -> 1.);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_registry_stats_export () =
  let m = Metrics.create () in
  let st = Ispn_util.Stats.create () in
  Metrics.register_stats m "w" st;
  Ispn_util.Stats.add st 1.;
  Ispn_util.Stats.add st 3.;
  let snap = Metrics.snapshot m in
  (match List.assoc "w.count" snap with
  | Metrics.Int 2 -> ()
  | _ -> Alcotest.fail "count");
  match (List.assoc "w.mean" snap, List.assoc "w.min" snap,
         List.assoc "w.max" snap)
  with
  | Metrics.Float mean, Metrics.Float mn, Metrics.Float mx ->
      Alcotest.(check (float 1e-12)) "mean" 2. mean;
      Alcotest.(check (float 1e-12)) "min" 1. mn;
      Alcotest.(check (float 1e-12)) "max" 3. mx
  | _ -> Alcotest.fail "stats values must be floats"

let test_registry_empty_stats_omit_extrema () =
  (* While count = 0 min/max have no defined value: exporting 0 would be
     indistinguishable from a real zero observation, so they are omitted
     from the snapshot — and appear once the first sample lands. *)
  let m = Metrics.create () in
  let st = Ispn_util.Stats.create () in
  Metrics.register_stats m "w" st;
  let snap = Metrics.snapshot m in
  Alcotest.(check (list string))
    "empty distribution exports count and mean only" [ "w.count"; "w.mean" ]
    (List.map fst snap);
  (match List.assoc "w.count" snap with
  | Metrics.Int 0 -> ()
  | _ -> Alcotest.fail "count must read 0");
  Ispn_util.Stats.add st 2.5;
  Alcotest.(check (list string))
    "extrema appear with the first sample"
    [ "w.count"; "w.max"; "w.mean"; "w.min" ]
    (List.map fst (Metrics.snapshot m))

let test_render_formats () =
  let m = Metrics.create () in
  Metrics.register_int m "a" (fun () -> 1);
  Metrics.register_float m "b" (fun () -> 0.25);
  let labeled = [ ("run", Metrics.snapshot m) ] in
  let js = Metrics.render_json labeled in
  Alcotest.(check bool) "json labels keys" true
    (contains js "\"run.a\": 1" && contains js "\"run.b\": 0.25");
  let csv = Metrics.render_csv labeled in
  Alcotest.(check bool) "csv has both rows" true
    (contains csv "run.a,1" && contains csv "run.b,0.25")

(* --- Flight-recorder ring --- *)

let record_n r n =
  for i = 0 to n - 1 do
    Recorder.record r ~time:(float_of_int i) ~kind:Recorder.Enqueue ~link:0
      ~flow:0 ~seq:i ~cls:(-1) ~offset:0. ~value:0. ~cause:Recorder.No_cause
  done

let test_ring_keeps_newest () =
  let r = Recorder.create ~capacity:3 () in
  record_n r 5;
  Alcotest.(check int) "length capped" 3 (Recorder.length r);
  Alcotest.(check (list int)) "evicts oldest first" [ 2; 3; 4 ]
    (List.map (fun (e : Recorder.event) -> e.seq) (Recorder.events r))

let test_ring_invalid_capacity () =
  try
    ignore (Recorder.create ~capacity:0 ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_recorder_pp () =
  let r = Recorder.create ~capacity:4 () in
  Recorder.record r ~time:1.5 ~kind:Recorder.Drop ~link:2 ~flow:7 ~seq:11
    ~cls:(-1) ~offset:0. ~value:0. ~cause:Recorder.Buffer;
  let out = Format.asprintf "%a" Recorder.pp r in
  Alcotest.(check bool) "pp names the kind and cause" true
    (contains out "drop" && contains out "buffer")

let test_recorder_csv () =
  let r = Recorder.create ~capacity:4 () in
  Recorder.record r ~time:0.5 ~kind:Recorder.Dequeue ~link:1 ~flow:3 ~seq:9
    ~cls:0 ~offset:0.125 ~value:0.25 ~cause:Recorder.No_cause;
  Recorder.record r ~time:1.5 ~kind:Recorder.Drop ~link:2 ~flow:7 ~seq:11
    ~cls:(-1) ~offset:0. ~value:0. ~cause:Recorder.Buffer;
  let csv = Recorder.to_csv r in
  (match String.split_on_char '\n' csv with
  | header :: first :: second :: _ ->
      Alcotest.(check string) "typed header"
        "time,kind,link,flow,seq,cls,offset,value,cause" header;
      Alcotest.(check string) "dequeue row" "0.5,dequeue,1,3,9,0,0.125,0.25,-"
        first;
      Alcotest.(check string) "drop row with cause"
        "1.5,drop,2,7,11,-1,0,0,buffer" second
  | _ -> Alcotest.fail "expected header plus two rows");
  Alcotest.(check int) "one line per event plus header and trailing newline"
    4
    (List.length (String.split_on_char '\n' csv))

(* --- Per-hop attribution --- *)

(* The tentpole invariant: on a real multi-hop run, summing a packet's
   per-hop queueing delays out of the recorder must reproduce the
   end-to-end queueing delay the probes report (carried by Deliver). *)
let check_decomposition ~sched () =
  let r = Recorder.create ~capacity:(1 lsl 20) () in
  let _ = Csz.Experiment.run_figure1 ~sched ~duration:20. ~recorder:r () in
  let bds = Attrib.breakdowns r in
  Alcotest.(check bool) "reconstructed many packets" true
    (List.length bds > 1000);
  let complete = List.filter (fun b -> b.Attrib.bd_complete) bds in
  Alcotest.(check bool) "most packets complete" true
    (List.length complete * 2 > List.length bds);
  List.iter
    (fun b ->
      let sum =
        List.fold_left
          (fun acc h -> acc +. h.Attrib.queueing)
          0. b.Attrib.bd_hops
      in
      Alcotest.(check (float 1e-9)) "hop sum = bd_queueing" b.Attrib.bd_queueing
        sum;
      Alcotest.(check (float 1e-9)) "bd_queueing = reported e2e delay"
        b.Attrib.bd_reported b.Attrib.bd_queueing)
    complete

let test_attrib_worst () =
  let r = Recorder.create ~capacity:(1 lsl 20) () in
  let _ =
    Csz.Experiment.run_figure1 ~sched:Csz.Experiment.Fifo_plus ~duration:10.
      ~recorder:r ()
  in
  let worst = Attrib.worst ~n:5 r in
  Alcotest.(check int) "asked for five" 5 (List.length worst);
  List.iter
    (fun b -> Alcotest.(check bool) "complete only" true b.Attrib.bd_complete)
    worst;
  let rec descending = function
    | a :: (b :: _ as rest) ->
        a.Attrib.bd_reported >= b.Attrib.bd_reported && descending rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted worst-first" true (descending worst)

(* --- Snapshot determinism across the pool --- *)

let labeled_snapshots ~j =
  Ispn_exec.Pool.map ~j
    (fun sched ->
      let m = Metrics.create () in
      let _ =
        Csz.Experiment.run_single_link ~sched ~duration:5. ~metrics:m ()
      in
      (Csz.Experiment.sched_name sched, Metrics.snapshot m))
    [ Csz.Experiment.Fifo; Csz.Experiment.Wfq; Csz.Experiment.Fifo_plus ]

let test_snapshots_jobs_independent () =
  let a = Metrics.render_json (labeled_snapshots ~j:1) in
  let b = Metrics.render_json (labeled_snapshots ~j:4) in
  Alcotest.(check bool) "non-trivial" true (String.length a > 100);
  Alcotest.(check string) "byte-identical across -j" a b

let suite =
  [
    Alcotest.test_case "registry snapshot sorted" `Quick
      test_registry_snapshot_sorted;
    Alcotest.test_case "registry pull-based" `Quick test_registry_pull_based;
    Alcotest.test_case "registry duplicate rejected" `Quick
      test_registry_duplicate_rejected;
    Alcotest.test_case "registry stats export" `Quick
      test_registry_stats_export;
    Alcotest.test_case "registry empty stats omit extrema" `Quick
      test_registry_empty_stats_omit_extrema;
    Alcotest.test_case "render json and csv" `Quick test_render_formats;
    Alcotest.test_case "ring keeps newest" `Quick test_ring_keeps_newest;
    Alcotest.test_case "ring rejects capacity 0" `Quick
      test_ring_invalid_capacity;
    Alcotest.test_case "recorder pp" `Quick test_recorder_pp;
    Alcotest.test_case "recorder csv dump" `Quick test_recorder_csv;
    Alcotest.test_case "hop decomposition (FIFO+)" `Slow
      (check_decomposition ~sched:Csz.Experiment.Fifo_plus);
    Alcotest.test_case "hop decomposition (WFQ)" `Slow
      (check_decomposition ~sched:Csz.Experiment.Wfq);
    Alcotest.test_case "attrib worst" `Quick test_attrib_worst;
    Alcotest.test_case "snapshots independent of -j" `Quick
      test_snapshots_jobs_independent;
  ]
