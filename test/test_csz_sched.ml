open Ispn_sim
open Helpers
module Csz_sched = Csz.Csz_sched

let make ?(capacity = 500) ?(n_classes = 2) ?discard_late_above () =
  let pool = Qdisc.pool ~capacity in
  let config =
    {
      Csz_sched.default_config with
      n_predicted_classes = n_classes;
      discard_late_above;
    }
  in
  Csz_sched.create ~config ~pool ()

let test_unknown_flows_are_datagram () =
  let st, q = make () in
  Alcotest.(check int) "datagram class index" 2 (Csz_sched.datagram_class st);
  ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:99 ()));
  Alcotest.(check int) "queued" 1 (q.Qdisc.length ());
  let served = ref (-1) in
  Csz_sched.set_delay_hook st (fun ~cls _ -> served := cls);
  ignore (q.Qdisc.dequeue ~now:0.);
  Alcotest.(check int) "served as datagram" 2 !served

let test_priority_between_predicted_classes () =
  let st, q = make () in
  Csz_sched.set_predicted st ~flow:0 ~cls:0;
  Csz_sched.set_predicted st ~flow:1 ~cls:1;
  ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:1 ~seq:0 ()));
  ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:1 ~seq:1 ()));
  ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:0 ~seq:0 ()));
  let order =
    List.init 3 (fun _ -> (Packet.flow (Option.get (q.Qdisc.dequeue ~now:0.))))
  in
  Alcotest.(check (list int)) "high class first" [ 0; 1; 1 ] order

let test_datagram_below_predicted () =
  let st, q = make () in
  Csz_sched.set_predicted st ~flow:0 ~cls:1;
  ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:50 ~seq:0 ()));
  (* datagram *)
  ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:0 ~seq:0 ()));
  (* predicted low *)
  Alcotest.(check int) "predicted beats datagram" 0
    (Packet.flow (Option.get (q.Qdisc.dequeue ~now:0.)))

let test_guaranteed_isolated_from_flood () =
  (* A datagram flood shares the link with one guaranteed flow at half the
     link rate.  The guaranteed flow's packets, paced at their clock rate,
     must each see at most about one packet time of queueing. *)
  let st, q = make () in
  Csz_sched.add_guaranteed st ~flow:1 ~clock_rate_bps:5e5;
  let flood = burst ~flow:99 ~at:0. ~n:300 in
  let paced_g = paced ~flow:1 ~at:0.0005 ~gap:0.002 ~n:100 in
  let records = run_schedule ~qdisc:q ~arrivals:(flood @ paced_g) ~until:1. () in
  let g_max = max_wait (flows_served records 1) in
  if g_max > 0.0025 then
    Alcotest.failf "guaranteed flow dragged into flood: %.6fs" g_max

let test_flow0_gets_leftover_share () =
  (* Guaranteed reserved at 80% and continuously backlogged; flow 0 still
     gets roughly its 20% when backlogged too. *)
  (* The pool must hold both bursts or the later-arriving datagram burst is
     tail-dropped and the share measurement is meaningless. *)
  let st, q = make ~capacity:2000 () in
  Csz_sched.add_guaranteed st ~flow:1 ~clock_rate_bps:8e5;
  Alcotest.(check (float 1e-6)) "flow0 rate" 2e5 (Csz_sched.flow0_rate_bps st);
  let g = burst ~flow:1 ~at:0. ~n:500 in
  let d = burst ~flow:99 ~at:0. ~n:500 in
  let records = run_schedule ~qdisc:q ~arrivals:(g @ d) ~until:0.2 () in
  (* 200 served in 0.2 s; datagram should have close to 40 of them. *)
  let n_d = List.length (flows_served records 99) in
  if n_d < 30 || n_d > 50 then
    Alcotest.failf "flow 0 share off: %d of 200" n_d

let test_guaranteed_not_penalized_when_idle_resumes () =
  (* After idling, a guaranteed flow must immediately receive service at its
     clock rate (no banked debt). *)
  let st, q = make () in
  Csz_sched.add_guaranteed st ~flow:1 ~clock_rate_bps:5e5;
  let flood = burst ~flow:99 ~at:0. ~n:800 in
  let late_g = paced ~flow:1 ~at:0.5 ~gap:0.002 ~n:50 in
  let records = run_schedule ~qdisc:q ~arrivals:(flood @ late_g) ~until:1. () in
  let g_max = max_wait (flows_served records 1) in
  if g_max > 0.0025 then Alcotest.failf "late guaranteed flow starved: %.6fs" g_max

let test_fifo_plus_offsets_updated () =
  let st, q = make () in
  Csz_sched.set_predicted st ~flow:0 ~cls:0;
  let a = pkt ~flow:0 ~seq:0 () in
  ignore (q.Qdisc.enqueue ~now:0. a);
  ignore (q.Qdisc.dequeue ~now:0.004);
  Alcotest.(check bool) "offset exported" true ((Packet.offset a) > 0.003);
  Alcotest.(check bool) "class average moved" true
    (Csz_sched.class_avg_delay st ~cls:0 > 0.)

let test_datagram_offsets_untouched () =
  let _, q = make () in
  let a = pkt ~flow:99 ~seq:0 () in
  ignore (q.Qdisc.enqueue ~now:0. a);
  ignore (q.Qdisc.dequeue ~now:0.004);
  Alcotest.(check (float 0.)) "no offset for datagram" 0. (Packet.offset a)

let test_late_discard () =
  let st, q = make ~discard_late_above:0.05 () in
  Csz_sched.set_predicted st ~flow:0 ~cls:0;
  let late = pkt ~flow:0 () in
  Packet.set_offset late (0.1);
  Alcotest.(check bool) "discarded" false (q.Qdisc.enqueue ~now:0. late);
  Alcotest.(check int) "counted" 1 (Csz_sched.late_discards st);
  (* Datagram packets are exempt (they carry no offsets). *)
  let d = pkt ~flow:99 () in
  Packet.set_offset d (0.1);
  Alcotest.(check bool) "datagram exempt" true (q.Qdisc.enqueue ~now:0. d)

let test_reservation_bookkeeping () =
  let st, _ = make () in
  Csz_sched.add_guaranteed st ~flow:1 ~clock_rate_bps:2e5;
  Csz_sched.add_guaranteed st ~flow:2 ~clock_rate_bps:3e5;
  Alcotest.(check (float 1e-6)) "reserved" 5e5
    (Csz_sched.guaranteed_reserved_bps st);
  Csz_sched.remove_guaranteed st ~flow:1;
  Alcotest.(check (float 1e-6)) "after remove" 3e5
    (Csz_sched.guaranteed_reserved_bps st);
  Alcotest.check_raises "unknown flow"
    (Invalid_argument "Csz_sched.remove_guaranteed: unknown flow") (fun () ->
      Csz_sched.remove_guaranteed st ~flow:1)

let test_overbooking_rejected () =
  let st, _ = make () in
  Csz_sched.add_guaranteed st ~flow:1 ~clock_rate_bps:9e5;
  try
    Csz_sched.add_guaranteed st ~flow:2 ~clock_rate_bps:2e5;
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_guaranteed_and_predicted_exclusive () =
  let st, _ = make () in
  Csz_sched.add_guaranteed st ~flow:1 ~clock_rate_bps:1e5;
  try
    Csz_sched.set_predicted st ~flow:1 ~cls:0;
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_retiring_flow_drains_first () =
  let st, q = make () in
  Csz_sched.add_guaranteed st ~flow:1 ~clock_rate_bps:1e5;
  ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:1 ~seq:0 ()));
  Csz_sched.remove_guaranteed st ~flow:1;
  (* Still reserved while backlogged... *)
  Alcotest.(check (float 1e-6)) "still reserved" 1e5
    (Csz_sched.guaranteed_reserved_bps st);
  ignore (q.Qdisc.dequeue ~now:0.001);
  (* ...and released once drained. *)
  Alcotest.(check (float 1e-6)) "released after drain" 0.
    (Csz_sched.guaranteed_reserved_bps st)

let test_bit_accounting () =
  let st, q = make () in
  Csz_sched.set_predicted st ~flow:0 ~cls:0;
  ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:0 ()));
  ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:99 ()));
  ignore (q.Qdisc.dequeue ~now:0.);
  ignore (q.Qdisc.dequeue ~now:0.);
  Alcotest.(check int) "realtime bits" 1000 (Csz_sched.realtime_bits_sent st);
  Alcotest.(check int) "datagram bits" 1000 (Csz_sched.datagram_bits_sent st)

let qcheck_conservation =
  QCheck.Test.make ~name:"CSZ conserves packets across all three services"
    ~count:100
    QCheck.(list_of_size (Gen.int_range 0 60) (int_bound 5))
    (fun flows ->
      let st, q = make () in
      Csz_sched.add_guaranteed st ~flow:0 ~clock_rate_bps:1e5;
      Csz_sched.set_predicted st ~flow:1 ~cls:0;
      Csz_sched.set_predicted st ~flow:2 ~cls:1;
      (* Flows 3-5 are datagram. *)
      let accepted = ref 0 in
      List.iteri
        (fun i f ->
          if q.Qdisc.enqueue ~now:(float_of_int i *. 1e-4) (pkt ~flow:f ~seq:i ())
          then incr accepted)
        flows;
      let rec drain k =
        match q.Qdisc.dequeue ~now:1. with None -> k | Some _ -> drain (k + 1)
      in
      drain 0 = !accepted && q.Qdisc.length () = 0)

let suite =
  [
    Alcotest.test_case "unknown flows are datagram" `Quick
      test_unknown_flows_are_datagram;
    Alcotest.test_case "priority between predicted classes" `Quick
      test_priority_between_predicted_classes;
    Alcotest.test_case "datagram below predicted" `Quick
      test_datagram_below_predicted;
    Alcotest.test_case "guaranteed isolated from flood" `Quick
      test_guaranteed_isolated_from_flood;
    Alcotest.test_case "flow0 gets leftover share" `Quick
      test_flow0_gets_leftover_share;
    Alcotest.test_case "guaranteed fresh after idle" `Quick
      test_guaranteed_not_penalized_when_idle_resumes;
    Alcotest.test_case "fifo+ offsets updated" `Quick
      test_fifo_plus_offsets_updated;
    Alcotest.test_case "datagram offsets untouched" `Quick
      test_datagram_offsets_untouched;
    Alcotest.test_case "late discard" `Quick test_late_discard;
    Alcotest.test_case "reservation bookkeeping" `Quick
      test_reservation_bookkeeping;
    Alcotest.test_case "overbooking rejected" `Quick test_overbooking_rejected;
    Alcotest.test_case "guaranteed/predicted exclusive" `Quick
      test_guaranteed_and_predicted_exclusive;
    Alcotest.test_case "retiring flow drains first" `Quick
      test_retiring_flow_drains_first;
    Alcotest.test_case "bit accounting" `Quick test_bit_accounting;
    QCheck_alcotest.to_alcotest qcheck_conservation;
  ]
