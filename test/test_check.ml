(* The Ispn_check.Audit conformance auditor: a clean run reports zero
   violations, and deliberately broken schedulers / traces trip exactly the
   invariant they break (and no other). *)
open Ispn_sim
module Audit = Ispn_check.Audit

let inv name (s : Audit.summary) =
  match
    List.find_opt (fun i -> i.Audit.inv_name = name) s.Audit.invariants
  with
  | Some i -> i
  | None -> Alcotest.failf "no invariant named %s" name

let violations name s = (inv name s).Audit.inv_violations

(* --- the real thing: a paper workload must be violation-free --- *)

let test_clean_run_no_violations () =
  let a = Audit.create () in
  let _ =
    Csz.Experiment.run_single_link ~sched:Csz.Experiment.Wfq ~duration:2.
      ~audit:a ()
  in
  let s = Audit.finalize a in
  Alcotest.(check int) "violations" 0 s.Audit.violations;
  Alcotest.(check bool) "saw events" true (s.Audit.events > 0);
  Alcotest.(check bool) "ran checks" true (s.Audit.checks > 0);
  (* The single-link run exercises the whole catalogue except pg-bound
     (Table 3 only): policed arrivals, pools, delays, idle transitions. *)
  Alcotest.(check bool) "bucket checked" true
    ((inv "token-bucket" s).Audit.inv_checks > 0);
  Alcotest.(check bool) "pool checked" true
    ((inv "pool" s).Audit.inv_checks > 0);
  Alcotest.(check bool) "idle checked" true
    ((inv "work-conservation" s).Audit.inv_checks > 0)

(* --- broken schedulers, driven through a real link --- *)

(* Claims the work-conserving name "FIFO" but refuses to dequeue. *)
let lazy_fifo () =
  let q = Queue.create () in
  Qdisc.make
    ~enqueue:(fun ~now p ->
      Packet.set_enqueued_at p (now);
      Queue.push p q;
      true)
    ~dequeue:(fun ~now:_ -> None)
    ~length:(fun () -> Queue.length q)
    ~name:"FIFO" ()

let test_work_conservation_violation () =
  let engine = Engine.create () in
  let link =
    Link.create ~engine ~rate_bps:1e6 ~qdisc:(lazy_fifo ()) ~name:"lazy" ()
  in
  Link.set_receiver link (fun _ -> ());
  let a = Audit.create () in
  Audit.attach_link a link;
  ignore
    (Engine.schedule engine ~at:0.001 (fun () ->
         Link.send link (Helpers.pkt ())));
  Engine.run engine ~until:0.010;
  let s = Audit.finalize a in
  Alcotest.(check bool) "idle-with-backlog flagged" true
    (violations "work-conservation" s >= 1);
  (* The packet is still queued, so conservation itself holds. *)
  Alcotest.(check int) "conservation clean" 0 (violations "conservation" s)

let test_non_work_conserving_exempt () =
  (* The same refusal under a frame-based scheduler's name is by design. *)
  let engine = Engine.create () in
  let q = lazy_fifo () in
  let q = Qdisc.make ~enqueue:q.Qdisc.enqueue ~dequeue:q.Qdisc.dequeue
      ~length:q.Qdisc.length ~name:"Stop-and-Go" () in
  let link = Link.create ~engine ~rate_bps:1e6 ~qdisc:q ~name:"sg" () in
  Link.set_receiver link (fun _ -> ());
  let a = Audit.create () in
  Audit.attach_link a link;
  ignore
    (Engine.schedule engine ~at:0.001 (fun () ->
         Link.send link (Helpers.pkt ())));
  Engine.run engine ~until:0.010;
  let s = Audit.finalize a in
  Alcotest.(check int) "exempt" 0 (violations "work-conservation" s);
  Alcotest.(check bool) "classifier" false
    (Audit.work_conserving_name "Stop-and-Go");
  Alcotest.(check bool) "classifier default" true
    (Audit.work_conserving_name "WFQ")

let test_conservation_violation () =
  (* Accepts packets and silently discards them. *)
  let black_hole =
    Qdisc.make
      ~enqueue:(fun ~now:_ _ -> true)
      ~dequeue:(fun ~now:_ -> None)
      ~length:(fun () -> 0)
      ~name:"FIFO" ()
  in
  let engine = Engine.create () in
  let link =
    Link.create ~engine ~rate_bps:1e6 ~qdisc:black_hole ~name:"hole" ()
  in
  Link.set_receiver link (fun _ -> ());
  ignore
    (Engine.schedule engine ~at:0.001 (fun () ->
         Link.send link (Helpers.pkt ())));
  let a = Audit.create () in
  Audit.attach_link a link;
  Engine.run engine ~until:0.010;
  let s = Audit.finalize a in
  Alcotest.(check bool) "lost packet flagged" true
    (violations "conservation" s >= 1)

let test_pool_leak_violation () =
  (* Takes a buffer per packet but never releases: after the packet leaves,
     the pool still holds a buffer the qdisc no longer reports. *)
  let pool = Qdisc.pool ~capacity:4 in
  let q = Queue.create () in
  let leaky =
    Qdisc.make
      ~enqueue:(fun ~now p ->
        if Qdisc.pool_take pool then begin
          Packet.set_enqueued_at p (now);
          Queue.push p q;
          true
        end
        else false)
      ~dequeue:(fun ~now:_ ->
        if Queue.is_empty q then None else Some (Queue.pop q))
      ~length:(fun () -> Queue.length q)
      ~name:"FIFO" ()
  in
  let engine = Engine.create () in
  (* A high link id also exercises the auditor's slot growth. *)
  let link =
    Link.create ~engine ~rate_bps:1e6 ~id:20 ~qdisc:leaky ~name:"leaky" ()
  in
  Link.set_receiver link (fun _ -> ());
  let a = Audit.create () in
  Audit.register_pool a ~link:20 pool;
  Audit.attach_link a link;
  ignore
    (Engine.schedule engine ~at:0.001 (fun () ->
         Link.send link (Helpers.pkt ())));
  Engine.run engine ~until:0.100;
  let s = Audit.finalize a in
  Alcotest.(check bool) "leak flagged" true (violations "pool" s >= 1);
  Alcotest.(check int) "conservation clean" 0 (violations "conservation" s)

(* --- invariants driven through the raw tap --- *)

let test_negative_delay_flagged () =
  let a = Audit.create () in
  let tap = Audit.tap a in
  tap.Tap.on_dequeue ~link:0 ~now:1.0 ~wait:(-0.001) (Helpers.pkt ());
  let p = Helpers.pkt ~seq:1 () in
  Packet.set_qdelay_total p (-0.5);
  tap.Tap.on_deliver ~link:0 ~now:2.0 p;
  let s = Audit.finalize a in
  Alcotest.(check int) "both flagged" 2 (violations "delay" s)

let test_token_bucket_conformance () =
  let a = Audit.create () in
  Audit.register_policed_flow a ~flow:3 ~link:0 ~rate_bps:1000.
    ~depth_bits:1000.;
  let tap = Audit.tap a in
  (* Paced exactly at the refill rate: conforming. *)
  tap.Tap.on_enqueue ~link:0 ~now:0.5 (Helpers.pkt ~flow:3 ());
  tap.Tap.on_enqueue ~link:0 ~now:1.5 (Helpers.pkt ~flow:3 ~seq:1 ());
  (* Unpoliced flows and other links are not checked at all. *)
  tap.Tap.on_enqueue ~link:0 ~now:1.5 (Helpers.pkt ~flow:4 ());
  tap.Tap.on_enqueue ~link:1 ~now:1.5 (Helpers.pkt ~flow:3 ~seq:2 ());
  let s = Audit.finalize a in
  Alcotest.(check int) "conforming" 0 (violations "token-bucket" s);
  Alcotest.(check int) "only policed arrivals checked" 2
    (inv "token-bucket" s).Audit.inv_checks

let test_token_bucket_violation () =
  let a = Audit.create () in
  Audit.register_policed_flow a ~flow:0 ~link:0 ~rate_bps:1000.
    ~depth_bits:2000.;
  let tap = Audit.tap a in
  tap.Tap.on_enqueue ~link:0 ~now:0. (Helpers.pkt ());
  (* A buffer drop still passed the policer, so it debits the model too. *)
  tap.Tap.on_drop ~link:0 ~now:0. ~cause:Ispn_obs.Recorder.Buffer
    (Helpers.pkt ~seq:1 ());
  (* Bucket now empty: a third back-to-back packet breaks the envelope. *)
  tap.Tap.on_enqueue ~link:0 ~now:0. (Helpers.pkt ~seq:2 ());
  let s = Audit.finalize a in
  Alcotest.(check int) "burst beyond depth flagged" 1
    (violations "token-bucket" s)

let test_pg_bound () =
  let a = Audit.create () in
  Audit.register_pg_bound a ~flow:7 ~link:2 ~bound_s:0.010;
  let tap = Audit.tap a in
  let ok = Helpers.pkt ~flow:7 () in
  Packet.set_qdelay_total ok (0.005);
  tap.Tap.on_deliver ~link:2 ~now:1. ok;
  let bad = Helpers.pkt ~flow:7 ~seq:1 () in
  Packet.set_qdelay_total bad (0.020);
  tap.Tap.on_deliver ~link:2 ~now:2. bad;
  (* Delivery at a non-egress hop carries partial delay: not checked. *)
  let upstream = Helpers.pkt ~flow:7 ~seq:2 () in
  Packet.set_qdelay_total upstream (0.020);
  tap.Tap.on_deliver ~link:1 ~now:3. upstream;
  let s = Audit.finalize a in
  Alcotest.(check int) "egress deliveries checked" 2
    (inv "pg-bound" s).Audit.inv_checks;
  Alcotest.(check int) "bound breach flagged" 1 (violations "pg-bound" s)

let test_registration_growth () =
  (* Flow ids far beyond the initial arrays must grow the slots, not crash
     or silently skip the check. *)
  let a = Audit.create () in
  Audit.register_policed_flow a ~flow:500 ~link:0 ~rate_bps:1e6
    ~depth_bits:1e6;
  Audit.register_pg_bound a ~flow:901 ~link:3 ~bound_s:1.;
  let tap = Audit.tap a in
  tap.Tap.on_enqueue ~link:0 ~now:0.1 (Helpers.pkt ~flow:500 ());
  tap.Tap.on_deliver ~link:3 ~now:0.2 (Helpers.pkt ~flow:901 ());
  let s = Audit.finalize a in
  Alcotest.(check int) "no violations" 0 s.Audit.violations;
  Alcotest.(check int) "bucket checked" 1
    (inv "token-bucket" s).Audit.inv_checks;
  Alcotest.(check int) "bound checked" 1 (inv "pg-bound" s).Audit.inv_checks

let test_footer_lines () =
  let clean = Audit.finalize (Audit.create ()) in
  (match Audit.footer_lines ~label:"t" clean with
  | [ line ] ->
      Alcotest.(check bool) "prefixed" true
        (String.length line > 7 && String.sub line 0 7 = "[check]")
  | lines ->
      Alcotest.failf "clean summary should be one line, got %d"
        (List.length lines));
  let a = Audit.create () in
  let tap = Audit.tap a in
  tap.Tap.on_dequeue ~link:0 ~now:1.0 ~wait:(-1.) (Helpers.pkt ());
  let lines = Audit.footer_lines ~label:"t" (Audit.finalize a) in
  Alcotest.(check bool) "per-invariant + sample lines" true
    (List.length lines >= 3);
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "includes a sample" true
    (List.exists (contains ~sub:"!!") lines)

let suite =
  [
    Alcotest.test_case "clean run has zero violations" `Quick
      test_clean_run_no_violations;
    Alcotest.test_case "work-conservation violation" `Quick
      test_work_conservation_violation;
    Alcotest.test_case "non-work-conserving exempt" `Quick
      test_non_work_conserving_exempt;
    Alcotest.test_case "conservation violation" `Quick
      test_conservation_violation;
    Alcotest.test_case "pool leak violation" `Quick test_pool_leak_violation;
    Alcotest.test_case "negative delay flagged" `Quick
      test_negative_delay_flagged;
    Alcotest.test_case "token bucket conformance" `Quick
      test_token_bucket_conformance;
    Alcotest.test_case "token bucket violation" `Quick
      test_token_bucket_violation;
    Alcotest.test_case "PG bound check" `Quick test_pg_bound;
    Alcotest.test_case "registration growth" `Quick test_registration_growth;
    Alcotest.test_case "footer lines" `Quick test_footer_lines;
  ]
