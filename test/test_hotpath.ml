open Ispn_sim

(* Steady-state allocation guards for the ranked-scheduler hot path (the
   style of the engine guard in test_engine.ml).  With the Kheap/dense-array
   rewrite, an enqueue→dequeue cycle allocates nothing in the scheduler's
   own data structures; what remains is the qdisc closure interface — the
   boxed [~now] float argument on each call, the [Some pkt] of dequeue, and
   (for FIFO+) the boxed store into the packet's float offset header.  That
   residue is ~10-14 words per cycle; the pre-rewrite schedulers sat at
   ~20 (a boxed heap entry record plus Hashtbl probing per packet), so the
   16-word ceiling both documents the interface cost and fails on any
   return of per-packet boxing. *)

let budget = 16.

let measure_cycles qdisc =
  let packets =
    Array.init 64 (fun i ->
        Packet.make ~flow:(i land 7) ~seq:i ~created:0. ())
  in
  (* Keep a standing queue so dequeue never hits the empty path. *)
  for i = 0 to 31 do
    let now = float_of_int i *. 1e-4 in
    assert (qdisc.Qdisc.enqueue ~now packets.(i land 63))
  done;
  let cycle i =
    let now = float_of_int (i + 32) *. 1e-4 in
    ignore (qdisc.Qdisc.enqueue ~now packets.(i land 63));
    match qdisc.Qdisc.dequeue ~now with
    | Some _ -> ()
    | None -> Alcotest.fail "standing queue ran dry"
  in
  (* Warm up past flow registration and any container growth. *)
  for i = 0 to 255 do
    cycle i
  done;
  let n = 10_000 in
  let before = Gc.minor_words () in
  for i = 256 to 255 + n do
    cycle i
  done;
  (Gc.minor_words () -. before) /. float_of_int n

let check_budget name per_cycle =
  if per_cycle > budget then
    Alcotest.failf
      "%s: %.1f minor words per enqueue+dequeue cycle (expected <= %.0f — \
       only qdisc-interface boxing, no per-packet structures)"
      name per_cycle budget

let test_wfq_alloc_free () =
  let qdisc =
    Ispn_sched.Wfq.create
      ~pool:(Qdisc.pool ~capacity:4096)
      ~link_rate_bps:1e6
      ~weight_of:(fun _ -> 1.)
      ()
  in
  check_budget "WFQ" (measure_cycles qdisc)

let test_fifo_plus_alloc_free () =
  let _, qdisc =
    Ispn_sched.Fifo_plus.create ~pool:(Qdisc.pool ~capacity:4096) ()
  in
  check_budget "FIFO+" (measure_cycles qdisc)

let suite =
  [
    Alcotest.test_case "wfq steady state allocation-free" `Quick
      test_wfq_alloc_free;
    Alcotest.test_case "fifo+ steady state allocation-free" `Quick
      test_fifo_plus_alloc_free;
  ]
