open Ispn_sim
open Helpers

let make ?ewma_gain ?discard_late_above ?(capacity = 1000) () =
  Ispn_sched.Fifo_plus.create ?ewma_gain ?discard_late_above
    ~pool:(Qdisc.pool ~capacity) ()

let test_first_hop_is_fifo () =
  (* With zero offsets (first hop), FIFO+ must order exactly like FIFO. *)
  let _, qdisc = make () in
  let arrivals = burst ~flow:0 ~at:0. ~n:5 @ burst ~flow:1 ~at:0.0001 ~n:3 in
  let records = run_schedule ~qdisc ~arrivals ~until:1. () in
  let order = List.map (fun r -> r.r_flow) records in
  Alcotest.(check (list int)) "fifo order" [ 0; 0; 0; 0; 0; 1; 1; 1 ] order

let test_positive_offset_jumps_queue () =
  (* A packet that was unlucky upstream (offset > 0) must overtake packets
     that arrived slightly earlier. *)
  let _, q = make () in
  let a = pkt ~flow:0 ~seq:0 () in
  let b = pkt ~flow:1 ~seq:0 () in
  Packet.set_offset b (0.010);
  (* b "should have" arrived 10 ms ago. *)
  ignore (q.Qdisc.enqueue ~now:1.000 a);
  ignore (q.Qdisc.enqueue ~now:1.001 b);
  let first = Option.get (q.Qdisc.dequeue ~now:1.002) in
  Alcotest.(check int) "late packet served first" 1 (Packet.flow first)

let test_negative_offset_yields () =
  (* A packet that was lucky upstream steps back behind one that arrived
     just after it. *)
  let _, q = make () in
  let a = pkt ~flow:0 ~seq:0 () in
  Packet.set_offset a (-0.010);
  let b = pkt ~flow:1 ~seq:0 () in
  ignore (q.Qdisc.enqueue ~now:1.000 a);
  ignore (q.Qdisc.enqueue ~now:1.001 b);
  let first = Option.get (q.Qdisc.dequeue ~now:1.002) in
  Alcotest.(check int) "lucky packet yields" 1 (Packet.flow first)

let test_offset_accumulates_delay_minus_average () =
  let st, q = make ~ewma_gain:1.0 () in
  (* First packet waits 5 ms against average 0: exports offset 5 ms and the
     average becomes 5 ms. *)
  let a = pkt ~seq:0 () in
  ignore (q.Qdisc.enqueue ~now:0. a);
  ignore (q.Qdisc.dequeue ~now:0.005);
  Alcotest.(check (float 1e-9)) "offset = delay - 0" 0.005 (Packet.offset a);
  Alcotest.(check (float 1e-9)) "avg updated" 0.005
    (Ispn_sched.Fifo_plus.avg_delay st);
  (* Second packet waits 1 ms against average 5 ms: offset -4 ms. *)
  let b = pkt ~seq:1 () in
  ignore (q.Qdisc.enqueue ~now:0.010 b);
  ignore (q.Qdisc.dequeue ~now:0.011);
  Alcotest.(check (float 1e-9)) "negative deviation" (-0.004) (Packet.offset b)

let test_late_discard () =
  let st, q = make ~discard_late_above:0.1 () in
  let late = pkt () in
  Packet.set_offset late (0.2);
  Alcotest.(check bool) "rejected" false (q.Qdisc.enqueue ~now:0. late);
  Alcotest.(check int) "counted" 1 (Ispn_sched.Fifo_plus.discarded st);
  let fine = pkt ~seq:1 () in
  Packet.set_offset fine (0.05);
  Alcotest.(check bool) "accepted" true (q.Qdisc.enqueue ~now:0. fine)

let test_buffer_limit () =
  let _, q = make ~capacity:2 () in
  Alcotest.(check bool) "1" true (q.Qdisc.enqueue ~now:0. (pkt ~seq:0 ()));
  Alcotest.(check bool) "2" true (q.Qdisc.enqueue ~now:0. (pkt ~seq:1 ()));
  Alcotest.(check bool) "3 drops" false (q.Qdisc.enqueue ~now:0. (pkt ~seq:2 ()))

let qcheck_zero_offsets_fifo =
  QCheck.Test.make ~name:"FIFO+ with zero offsets == FIFO" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 30) (int_bound 3))
    (fun flows ->
      let _, q = make () in
      List.iteri
        (fun i f ->
          ignore
            (q.Qdisc.enqueue ~now:(float_of_int i *. 1e-4) (pkt ~flow:f ~seq:i ())))
        flows;
      let rec drain acc =
        match q.Qdisc.dequeue ~now:1. with
        | None -> List.rev acc
        | Some p -> drain ((Packet.seq p) :: acc)
      in
      let seqs = drain [] in
      seqs = List.sort compare seqs)

let qcheck_conservation =
  QCheck.Test.make ~name:"FIFO+ conserves accepted packets" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 40) (float_range (-0.01) 0.01))
    (fun offsets ->
      let _, q = make () in
      let accepted = ref 0 in
      List.iteri
        (fun i off ->
          let p = pkt ~seq:i () in
          Packet.set_offset p (off);
          if q.Qdisc.enqueue ~now:0.5 p then incr accepted)
        offsets;
      let rec drain k =
        match q.Qdisc.dequeue ~now:1. with None -> k | Some _ -> drain (k + 1)
      in
      drain 0 = !accepted)

let suite =
  [
    Alcotest.test_case "first hop is FIFO" `Quick test_first_hop_is_fifo;
    Alcotest.test_case "positive offset jumps queue" `Quick
      test_positive_offset_jumps_queue;
    Alcotest.test_case "negative offset yields" `Quick
      test_negative_offset_yields;
    Alcotest.test_case "offset accumulates delay minus average" `Quick
      test_offset_accumulates_delay_minus_average;
    Alcotest.test_case "late discard" `Quick test_late_discard;
    Alcotest.test_case "buffer limit" `Quick test_buffer_limit;
    QCheck_alcotest.to_alcotest qcheck_zero_offsets_fifo;
    QCheck_alcotest.to_alcotest qcheck_conservation;
  ]
