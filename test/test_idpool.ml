(* Idpool — the flow-slot free list under churn (DESIGN.md session
   lifecycle).  LIFO recycling, generation ABA guard, accounting that
   feeds the flow-state audit invariant. *)

open Ispn_util

let test_take_is_dense_from_base () =
  let p = Idpool.create ~base:100 ~capacity:4 () in
  let ids = List.init 3 (fun _ -> Idpool.take p) in
  Alcotest.(check (list int)) "first takes are base.." [ 100; 101; 102 ] ids;
  Alcotest.(check int) "in_use" 3 (Idpool.in_use p);
  Alcotest.(check int) "hwm" 3 (Idpool.hwm p);
  Alcotest.(check bool) "taken" true (Idpool.is_taken p ~id:101);
  Alcotest.(check bool) "not taken" false (Idpool.is_taken p ~id:103)

let test_lifo_recycling () =
  let p = Idpool.create ~capacity:8 () in
  let a = Idpool.take p in
  let b = Idpool.take p in
  Idpool.release p ~id:a;
  Idpool.release p ~id:b;
  (* Most recently released comes back first: maximum reuse stress. *)
  Alcotest.(check int) "b first" b (Idpool.take p);
  Alcotest.(check int) "then a" a (Idpool.take p);
  Alcotest.(check int) "takes" 4 (Idpool.takes p);
  Alcotest.(check int) "releases" 2 (Idpool.releases p);
  Alcotest.(check int) "in_use = takes - releases" 2 (Idpool.in_use p);
  Alcotest.(check int) "hwm never saw more than 2" 2 (Idpool.hwm p)

let test_growth_when_exhausted () =
  let p = Idpool.create ~base:10 ~capacity:2 () in
  let ids = List.init 5 (fun _ -> Idpool.take p) in
  Alcotest.(check (list int)) "grows contiguously" [ 10; 11; 12; 13; 14 ] ids;
  Alcotest.(check bool) "capacity doubled past demand" true
    (Idpool.capacity p >= 5);
  Alcotest.(check int) "hwm" 5 (Idpool.hwm p);
  List.iter (fun id -> Idpool.release p ~id) ids;
  Alcotest.(check int) "all back" 0 (Idpool.in_use p);
  Alcotest.(check int) "no bad releases" 0 (Idpool.bad_releases p)

let test_generation_bumps_on_release () =
  let p = Idpool.create ~capacity:4 () in
  let id = Idpool.take p in
  Alcotest.(check int) "fresh slot" 0 (Idpool.generation p ~id);
  Idpool.release p ~id;
  Alcotest.(check int) "bumped" 1 (Idpool.generation p ~id);
  let id' = Idpool.take p in
  Alcotest.(check int) "same slot recycled" id id';
  Alcotest.(check int) "generation survives re-take" 1
    (Idpool.generation p ~id);
  Idpool.release p ~id;
  Alcotest.(check int) "bumped again" 2 (Idpool.generation p ~id)

let test_try_release_aba_guard () =
  let p = Idpool.create ~capacity:4 () in
  let id = Idpool.take p in
  let gen = Idpool.generation p ~id in
  (* The departure and the timeout race to release the same incarnation:
     exactly one wins. *)
  Alcotest.(check bool) "first release wins" true
    (Idpool.try_release p ~id ~gen);
  Alcotest.(check bool) "second is stale" false
    (Idpool.try_release p ~id ~gen);
  Alcotest.(check int) "one stale counted" 1 (Idpool.stale_releases p);
  Alcotest.(check int) "no bad release" 0 (Idpool.bad_releases p);
  (* The slot moves on to a new incarnation; the old gen stays dead. *)
  let id' = Idpool.take p in
  Alcotest.(check int) "recycled" id id';
  Alcotest.(check bool) "old gen cannot free the new incarnation" false
    (Idpool.try_release p ~id ~gen);
  Alcotest.(check bool) "still taken" true (Idpool.is_taken p ~id);
  Alcotest.(check bool) "current gen can" true
    (Idpool.try_release p ~id ~gen:(Idpool.generation p ~id))

let test_bad_releases_counted_not_fatal () =
  let p = Idpool.create ~base:5 ~capacity:2 () in
  let id = Idpool.take p in
  Idpool.release p ~id;
  Idpool.release p ~id (* double free *);
  Idpool.release p ~id:4 (* below range *);
  Idpool.release p ~id:999 (* above range *);
  Alcotest.(check int) "three bad releases" 3 (Idpool.bad_releases p);
  Alcotest.(check int) "releases counts only the good one" 1
    (Idpool.releases p);
  Alcotest.(check int) "in_use undisturbed" 0 (Idpool.in_use p)

let test_create_validates () =
  Alcotest.check_raises "negative base"
    (Invalid_argument "Idpool.create: negative base") (fun () ->
      ignore (Idpool.create ~base:(-1) ()));
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Idpool.create: non-positive capacity") (fun () ->
      ignore (Idpool.create ~capacity:0 ()));
  Alcotest.check_raises "generation range"
    (Invalid_argument "Idpool.generation: id 64") (fun () ->
      ignore (Idpool.generation (Idpool.create ()) ~id:64))

(* Property: under any interleaving of takes and (sometimes stale, sometimes
   bad) releases, the accounting identity takes = releases + in_use holds,
   ids are never handed out twice while live, and hwm tracks the peak. *)
let prop_accounting_identity =
  QCheck.Test.make ~count:300 ~name:"idpool accounting identity"
    QCheck.(list (pair bool small_nat))
    (fun ops ->
      let p = Idpool.create ~capacity:2 () in
      let live = Hashtbl.create 16 in
      let peak = ref 0 in
      List.iter
        (fun (is_take, k) ->
          if is_take then (
            let id = Idpool.take p in
            if Hashtbl.mem live id then
              QCheck.Test.fail_report "live id handed out twice";
            Hashtbl.replace live id ();
            peak := max !peak (Hashtbl.length live))
          else
            let ids = Hashtbl.fold (fun id () acc -> id :: acc) live [] in
            match List.sort compare ids with
            | [] -> Idpool.release p ~id:(Idpool.base p + k) (* maybe bad *)
            | sorted ->
                let id = List.nth sorted (k mod List.length sorted) in
                Idpool.release p ~id;
                Hashtbl.remove live id)
        ops;
      Idpool.takes p = Idpool.releases p + Idpool.in_use p
      && Idpool.in_use p = Hashtbl.length live
      && Idpool.hwm p = !peak)

let suite =
  [
    Alcotest.test_case "take is dense from base" `Quick
      test_take_is_dense_from_base;
    Alcotest.test_case "LIFO recycling" `Quick test_lifo_recycling;
    Alcotest.test_case "growth when exhausted" `Quick
      test_growth_when_exhausted;
    Alcotest.test_case "generation bumps on release" `Quick
      test_generation_bumps_on_release;
    Alcotest.test_case "try_release ABA guard" `Quick
      test_try_release_aba_guard;
    Alcotest.test_case "bad releases counted, not fatal" `Quick
      test_bad_releases_counted_not_fatal;
    Alcotest.test_case "create validates" `Quick test_create_validates;
    QCheck_alcotest.to_alcotest prop_accounting_identity;
  ]
