(* The paper's simulations use uniform 1000-bit packets, but the library
   must be correct for arbitrary sizes: conservation, per-flow ordering and
   bit-level (not packet-level) fairness. *)
open Ispn_sim
open Helpers

let schedulers =
  [
    ( "FIFO",
      fun () -> Ispn_sched.Fifo.create ~pool:(Qdisc.unbounded_pool ()) () );
    ( "WFQ",
      fun () ->
        Ispn_sched.Wfq.create_equal ~pool:(Qdisc.unbounded_pool ())
          ~link_rate_bps:1e6 () );
    ( "FIFO+",
      fun () ->
        snd (Ispn_sched.Fifo_plus.create ~pool:(Qdisc.unbounded_pool ()) ()) );
    ( "VirtualClock",
      fun () ->
        Ispn_sched.Virtual_clock.create ~pool:(Qdisc.unbounded_pool ())
          ~rate_of:(fun _ -> 2e5)
          () );
    ( "DRR",
      fun () ->
        Ispn_sched.Drr.create ~pool:(Qdisc.unbounded_pool ())
          ~quantum_bits:1500 () );
    ( "EDF",
      fun () ->
        Ispn_sched.Edf.create ~pool:(Qdisc.unbounded_pool ())
          ~deadline_of:(fun _ -> 0.01)
          () );
    ( "CSZ",
      fun () ->
        let st, q = Csz.Csz_sched.create ~pool:(Qdisc.unbounded_pool ()) () in
        Csz.Csz_sched.add_guaranteed st ~flow:0 ~clock_rate_bps:2e5;
        Csz.Csz_sched.set_predicted st ~flow:1 ~cls:0;
        q );
  ]

let qcheck_conservation_mixed_sizes =
  let gen =
    QCheck.(
      list_of_size (Gen.int_range 0 60)
        (pair (int_bound 3) (int_range 100 60_000)))
  in
  List.map
    (fun (name, make) ->
      QCheck.Test.make
        ~name:(name ^ " conserves mixed-size packets and total bits")
        ~count:100 gen
        (fun plan ->
          let q = make () in
          let in_bits = ref 0 and in_count = ref 0 in
          List.iteri
            (fun i (flow, size_bits) ->
              if
                q.Qdisc.enqueue
                  ~now:(float_of_int i *. 1e-4)
                  (pkt ~flow ~seq:i ~size_bits ())
              then begin
                incr in_count;
                in_bits := !in_bits + size_bits
              end)
            plan;
          let out_bits = ref 0 and out_count = ref 0 in
          let rec drain () =
            match q.Qdisc.dequeue ~now:1. with
            | None -> ()
            | Some p ->
                incr out_count;
                out_bits := !out_bits + (Packet.size_bits p);
                drain ()
          in
          drain ();
          !out_count = !in_count && !out_bits = !in_bits))
    schedulers

let test_wfq_bit_level_fairness () =
  (* Flow 0 sends 2000-bit packets, flow 1 sends 1000-bit ones, equal
     weights, both saturated: WFQ must equalize *bits*, so flow 1 gets
     twice the packets. *)
  let q =
    Ispn_sched.Wfq.create_equal ~pool:(Qdisc.unbounded_pool ())
      ~link_rate_bps:1e6 ()
  in
  for i = 0 to 199 do
    ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:0 ~seq:i ~size_bits:2000 ()));
    ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:1 ~seq:i ~size_bits:1000 ()))
  done;
  (* Serve the first 150 packets and count bits per flow. *)
  let bits = [| 0; 0 |] in
  for _ = 1 to 150 do
    match q.Qdisc.dequeue ~now:0. with
    | Some p -> bits.((Packet.flow p)) <- bits.((Packet.flow p)) + (Packet.size_bits p)
    | None -> Alcotest.fail "queue ran dry"
  done;
  let ratio = float_of_int bits.(0) /. float_of_int bits.(1) in
  if Float.abs (ratio -. 1.) > 0.05 then
    Alcotest.failf "bit shares uneven: %d vs %d" bits.(0) bits.(1)

let test_drr_bit_level_fairness () =
  let q =
    Ispn_sched.Drr.create ~pool:(Qdisc.unbounded_pool ()) ~quantum_bits:2000 ()
  in
  for i = 0 to 199 do
    ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:0 ~seq:i ~size_bits:2000 ()));
    ignore (q.Qdisc.enqueue ~now:0. (pkt ~flow:1 ~seq:i ~size_bits:1000 ()))
  done;
  let bits = [| 0; 0 |] in
  for _ = 1 to 150 do
    match q.Qdisc.dequeue ~now:0. with
    | Some p -> bits.((Packet.flow p)) <- bits.((Packet.flow p)) + (Packet.size_bits p)
    | None -> Alcotest.fail "queue ran dry"
  done;
  let ratio = float_of_int bits.(0) /. float_of_int bits.(1) in
  if Float.abs (ratio -. 1.) > 0.1 then
    Alcotest.failf "bit shares uneven: %d vs %d" bits.(0) bits.(1)

let test_link_serializes_by_size () =
  (* A 5000-bit packet takes five times as long on the wire as a 1000-bit
     one. *)
  let engine = Engine.create () in
  let q = Ispn_sched.Fifo.create ~pool:(Qdisc.pool ~capacity:10) () in
  let link = Link.create ~engine ~rate_bps:1e6 ~qdisc:q ~name:"l" () in
  let times = ref [] in
  Link.set_receiver link (fun p ->
      times := ((Packet.seq p), Engine.now engine) :: !times);
  Link.send link (pkt ~seq:0 ~size_bits:5000 ());
  Link.send link (pkt ~seq:1 ~size_bits:1000 ());
  Engine.run engine ~until:1.;
  Alcotest.(check (list (pair int (float 1e-9))))
    "serialization times"
    [ (0, 0.005); (1, 0.006) ]
    (List.rev !times)

let suite =
  List.map QCheck_alcotest.to_alcotest qcheck_conservation_mixed_sizes
  @ [
      Alcotest.test_case "WFQ bit-level fairness" `Quick
        test_wfq_bit_level_fairness;
      Alcotest.test_case "DRR bit-level fairness" `Quick
        test_drr_bit_level_fairness;
      Alcotest.test_case "link serializes by size" `Quick
        test_link_serializes_by_size;
    ]
