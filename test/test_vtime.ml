module Vtime = Ispn_sched.Vtime

let make ?(on_reset = fun () -> ()) () =
  Vtime.create ~link_rate_bps:1e6 ~on_reset

let close = Alcotest.check (Alcotest.float 1e-9)

let test_idle_clock_frozen () =
  let vt = make () in
  Vtime.advance vt ~now:5.;
  close "V stays 0 while idle" 0. (Vtime.v vt)

let test_single_flow_full_rate () =
  (* One active flow with weight = link rate: V advances at real time. *)
  let vt = make () in
  Vtime.flow_activated vt ~weight:1e6;
  Vtime.advance vt ~now:2.;
  close "V = t" 2. (Vtime.v vt)

let test_partial_weight_speeds_v () =
  (* Active weight at half the link: V runs at twice real time (the active
     flow receives service at twice its weight's worth). *)
  let vt = make () in
  Vtime.flow_activated vt ~weight:5e5;
  Vtime.advance vt ~now:1.;
  close "V = 2t" 2. (Vtime.v vt)

let test_weight_changes_integrate_piecewise () =
  let vt = make () in
  Vtime.flow_activated vt ~weight:1e6;
  Vtime.advance vt ~now:1.;
  (* Second flow joins: dV/dt halves. *)
  Vtime.flow_activated vt ~weight:1e6;
  Vtime.advance vt ~now:3.;
  close "1 + 2 * 0.5" 2. (Vtime.v vt)

let test_busy_period_reset () =
  let fired = ref 0 in
  let vt = make ~on_reset:(fun () -> incr fired) () in
  Vtime.flow_activated vt ~weight:1e6;
  Vtime.advance vt ~now:1.;
  Vtime.flow_deactivated vt ~now:1. ~weight:1e6;
  Alcotest.(check int) "reset fired" 1 !fired;
  close "V back to zero" 0. (Vtime.v vt);
  (* A later busy period starts fresh. *)
  Vtime.flow_activated vt ~weight:1e6;
  Vtime.advance vt ~now:10.;
  close "fresh integration" 9. (Vtime.v vt)

let test_no_reset_while_others_active () =
  let fired = ref 0 in
  let vt = make ~on_reset:(fun () -> incr fired) () in
  Vtime.flow_activated vt ~weight:4e5;
  Vtime.flow_activated vt ~weight:6e5;
  Vtime.flow_deactivated vt ~now:1. ~weight:4e5;
  Alcotest.(check int) "no reset" 0 !fired;
  close "weight shrank" 6e5 (Vtime.active_weight vt)

let test_adjust_active () =
  let vt = make () in
  Vtime.flow_activated vt ~weight:1e6;
  Vtime.advance vt ~now:1.;
  Vtime.adjust_active vt ~now:1. ~delta:(-5e5);
  Vtime.advance vt ~now:2.;
  (* First second at rate 1, second second at rate 2. *)
  close "piecewise with adjustment" 3. (Vtime.v vt)

let test_renegotiate_to_zero () =
  (* Regression: renegotiating the last active flow's weight down to zero
     used to leave [active_weight = 0.] with the busy period still "open",
     so the next [advance] divided by zero.  It must end the busy period
     exactly like [flow_deactivated] does. *)
  let fired = ref 0 in
  let vt = make ~on_reset:(fun () -> incr fired) () in
  Vtime.flow_activated vt ~weight:1e6;
  Vtime.advance vt ~now:1.;
  Vtime.adjust_active vt ~now:1. ~delta:(-1e6);
  Alcotest.(check int) "reset fired" 1 !fired;
  close "V back to zero" 0. (Vtime.v vt);
  close "weight cleared" 0. (Vtime.active_weight vt);
  (* The clock is idle and a later busy period starts fresh. *)
  Vtime.advance vt ~now:3.;
  close "idle after renegotiation" 0. (Vtime.v vt);
  Vtime.flow_activated vt ~weight:1e6;
  Vtime.advance vt ~now:4.;
  close "fresh busy period" 1. (Vtime.v vt)

let test_adjust_epsilon_residue () =
  (* Float renegotiation arithmetic can leave a sub-epsilon residue instead
     of an exact zero; that residue must also end the busy period rather
     than surviving as a near-zero weight that sends dV/dt to infinity. *)
  let fired = ref 0 in
  let vt = make ~on_reset:(fun () -> incr fired) () in
  Vtime.flow_activated vt ~weight:1e6;
  Vtime.adjust_active vt ~now:0.5 ~delta:(-1e6 +. 1e-9);
  Alcotest.(check int) "residue treated as zero" 1 !fired;
  close "weight cleared" 0. (Vtime.active_weight vt);
  Vtime.advance vt ~now:5.;
  close "idle after clamp" 0. (Vtime.v vt)

let test_advance_monotone_guard () =
  let vt = make () in
  Vtime.flow_activated vt ~weight:1e6;
  Vtime.advance vt ~now:2.;
  (* A stale timestamp must not rewind the integration. *)
  Vtime.advance vt ~now:1.;
  close "no rewind" 2. (Vtime.v vt)

let suite =
  [
    Alcotest.test_case "idle clock frozen" `Quick test_idle_clock_frozen;
    Alcotest.test_case "single flow full rate" `Quick
      test_single_flow_full_rate;
    Alcotest.test_case "partial weight speeds V" `Quick
      test_partial_weight_speeds_v;
    Alcotest.test_case "piecewise integration" `Quick
      test_weight_changes_integrate_piecewise;
    Alcotest.test_case "busy period reset" `Quick test_busy_period_reset;
    Alcotest.test_case "no reset while others active" `Quick
      test_no_reset_while_others_active;
    Alcotest.test_case "adjust active" `Quick test_adjust_active;
    Alcotest.test_case "renegotiate to zero (regression)" `Quick
      test_renegotiate_to_zero;
    Alcotest.test_case "epsilon residue ends busy period" `Quick
      test_adjust_epsilon_residue;
    Alcotest.test_case "advance monotone guard" `Quick
      test_advance_monotone_guard;
  ]
