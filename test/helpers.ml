(* Shared scaffolding for scheduler tests: drive a qdisc through a real link
   on a real engine and collect per-packet service records. *)
open Ispn_sim

type record = {
  r_flow : int;
  r_seq : int;
  r_wait : float;  (* queueing delay at the hop, seconds *)
  r_done : float;  (* delivery time *)
}

let pkt ?(flow = 0) ?(seq = 0) ?(created = 0.) ?(size_bits = 1000) () =
  Packet.make ~flow ~seq ~size_bits ~created ()

(* Run [arrivals = (time, packet) list] through [qdisc] on a [rate_bps] link;
   returns delivery records in completion order. *)
let run_schedule ?(rate_bps = 1e6) ~qdisc ~arrivals ~until () =
  let engine = Engine.create () in
  let link = Link.create ~engine ~rate_bps ~qdisc ~name:"hop" () in
  let out = ref [] in
  Link.set_receiver link (fun p ->
      out :=
        {
          r_flow = (Packet.flow p);
          r_seq = (Packet.seq p);
          r_wait = (Packet.qdelay_total p);
          r_done = Engine.now engine;
        }
        :: !out);
  List.iter
    (fun (time, p) ->
      ignore (Engine.schedule engine ~at:time (fun () -> Link.send link p)))
    arrivals;
  Engine.run engine ~until;
  List.rev !out

(* [n] packets of [flow] arriving back-to-back at [at]. *)
let burst ~flow ~at ~n =
  List.init n (fun i -> (at, pkt ~flow ~seq:i ~created:at ()))

(* One packet of [flow] every [gap] seconds starting at [at]. *)
let paced ~flow ~at ~gap ~n =
  List.init n (fun i ->
      let t = at +. (gap *. float_of_int i) in
      (t, pkt ~flow ~seq:i ~created:t ()))

let flows_served records flow = List.filter (fun r -> r.r_flow = flow) records

let mean_wait records =
  match records with
  | [] -> 0.
  | _ ->
      List.fold_left (fun acc r -> acc +. r.r_wait) 0. records
      /. float_of_int (List.length records)

let max_wait records = List.fold_left (fun acc r -> Stdlib.max acc r.r_wait) 0. records
