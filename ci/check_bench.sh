#!/usr/bin/env bash
# Blocking perf gate for the per-packet scheduler hot path (the paper's
# "must not be so complex" constraint): rerun the micro section three
# times in --json mode and compare each row's MEDIAN ns figure against
# the committed baseline.  Fails on a >25% median-of-3 regression — wide
# enough for host noise, narrow enough to catch a real hot-path slip —
# and fails LOUDLY when a row is missing on either side: a renamed or
# dropped row must force a baseline refresh, not silently stop gating.
#
# The baseline (ci/bench_baseline.json) is host-dependent.  Refresh it
# after an intentional hot-path change with:
#   bash ci/check_bench.sh --refresh
# which writes the same median-of-3 the gate compares against (a
# single-run baseline would race the host's speed-of-the-moment).
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=ci/bench_baseline.json
CURRENT=BENCH_micro.json
TOLERANCE=1.25
RUNS=3
REFRESH=${1:-}

if [ -z "$REFRESH" ] && [ ! -f "$BASELINE" ]; then
    echo "ERROR: no baseline at $BASELINE — commit one with:" >&2
    echo "  bash ci/check_bench.sh --refresh" >&2
    exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
for i in $(seq "$RUNS"); do
    dune exec bench/main.exe -- micro --fast --json >/dev/null
    cp "$CURRENT" "$tmp/run$i.json"
done

if [ "$REFRESH" = "--refresh" ]; then
    # Median-of-RUNS per row, emitted in run 1's key order.
    awk -v runs="$RUNS" '
    BEGIN { FS = "\"" }
    {
        if (NF < 3) next
        name = $2
        val = $3
        gsub(/[:, \t]/, "", val)
        if (val == "") next
        cnt[name]++
        v[name "." cnt[name]] = val + 0
        if (FILENAME == ARGV[1]) order[n++] = name
    }
    END {
        print "{"
        for (i = 0; i < n; i++) {
            name = order[i]
            a = v[name ".1"]; b = v[name ".2"]; c = v[name ".3"]
            lo = a < b ? (a < c ? a : c) : (b < c ? b : c)
            hi = a > b ? (a > c ? a : c) : (b > c ? b : c)
            printf "  \"%s\": %.1f%s\n", name, a + b + c - lo - hi, i == n - 1 ? "" : ","
        }
        print "}"
    }
    ' "$tmp"/run*.json > "$BASELINE"
    echo "refreshed $BASELINE (median-of-$RUNS):"
    cat "$BASELINE"
    exit 0
fi

# All files are one `"name": ns,` entry per line; mawk-compatible parsing.
# First file is the baseline, the rest are the $RUNS fresh runs.
awk -v tol="$TOLERANCE" -v runs="$RUNS" '
BEGIN { FS = "\""; bad = 0 }
{
    if (NF < 3) next
    name = $2
    val = $3
    gsub(/[:, \t]/, "", val)
    if (val == "") next
    if (FILENAME == ARGV[1]) {
        if (!(name in base)) order[nb++] = name
        base[name] = val + 0
        next
    }
    cnt[name]++
    v[name "." cnt[name]] = val + 0
    if (!(name in cnt_seen)) { cnt_seen[name] = 1; cur_order[nc++] = name }
}
END {
    for (i = 0; i < nb; i++) {
        name = order[i]
        if (!(name in cnt_seen)) {
            printf "ERROR       %-26s in baseline but absent from the current run — stale baseline row, refresh ci/bench_baseline.json\n", name
            bad = 1
            continue
        }
        if (cnt[name] != runs) {
            printf "ERROR       %-26s appeared in %d of %d runs\n", name, cnt[name], runs
            bad = 1
            continue
        }
        a = v[name ".1"]; b = v[name ".2"]; c = v[name ".3"]
        lo = a < b ? (a < c ? a : c) : (b < c ? b : c)
        hi = a > b ? (a > c ? a : c) : (b > c ? b : c)
        med = a + b + c - lo - hi
        # info.* rows (events/s, pending hwm) are context, not ns figures:
        # report them but never gate on their values.
        if (name ~ /^info\./) {
            printf "info        %-26s %14.1f (baseline %14.1f)\n", name, med, base[name]
            continue
        }
        if (med > base[name] * tol) {
            printf "REGRESSION  %-26s %8.1f ns median-of-%d vs baseline %8.1f ns (+%.0f%%)\n", name, med, runs, base[name], 100 * (med / base[name] - 1)
            bad = 1
        } else
            printf "ok          %-26s %8.1f ns median-of-%d vs baseline %8.1f ns (%+.0f%%)\n", name, med, runs, base[name], 100 * (med / base[name] - 1)
    }
    for (i = 0; i < nc; i++) {
        name = cur_order[i]
        if (!(name in base)) {
            printf "ERROR       %-26s has no baseline entry — new row, refresh ci/bench_baseline.json\n", name
            bad = 1
        }
    }
    exit bad
}
' "$BASELINE" "$tmp"/run*.json
