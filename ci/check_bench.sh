#!/usr/bin/env bash
# Advisory perf gate for the per-packet scheduler hot path (the paper's
# "must not be so complex" constraint): rerun the micro section in --json
# mode and compare each per-scheduler ns/packet figure against the
# committed baseline.  Exits 1 if any entry regressed by more than 25%.
#
# The baseline (ci/bench_baseline.json) is host-dependent, which is why the
# workflow runs this step as advisory (non-blocking).  Refresh it after an
# intentional hot-path change with:
#   dune exec bench/main.exe -- micro --fast --json && cp BENCH_micro.json ci/bench_baseline.json
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=ci/bench_baseline.json
CURRENT=BENCH_micro.json
TOLERANCE=1.25

dune exec bench/main.exe -- micro --fast --json >/dev/null

if [ ! -f "$BASELINE" ]; then
    echo "no baseline at $BASELINE; nothing to compare" >&2
    exit 0
fi

# Both files are one `"name": ns,` entry per line; mawk-compatible parsing.
awk -v tol="$TOLERANCE" '
BEGIN { FS = "\""; bad = 0 }
{
    if (NF < 3) next
    name = $2
    val = $3
    gsub(/[:, \t]/, "", val)
    if (val == "") next
    if (FNR == NR) { base[name] = val; next }
    # info.* lines (events/s, heap depth hwm) are context, not ns/packet
    # figures: report them but never gate on them.
    if (name ~ /^info\./) { printf "info        %-22s %14.1f\n", name, val; next }
    if (name in base) {
        if (val + 0 > base[name] * tol)
            { printf "REGRESSION  %-22s %8.1f ns vs baseline %8.1f ns (+%.0f%%)\n", name, val, base[name], 100 * (val / base[name] - 1); bad = 1 }
        else
            printf "ok          %-22s %8.1f ns vs baseline %8.1f ns (%+.0f%%)\n", name, val, base[name], 100 * (val / base[name] - 1)
    } else
        printf "new         %-22s %8.1f ns (no baseline entry)\n", name, val
}
END { exit bad }
' "$BASELINE" "$CURRENT"
