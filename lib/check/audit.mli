(** Runtime conformance auditor for the invariants the paper relies on.

    An audit context consumes the {!Ispn_sim.Tap} event stream of one run
    and checks, continuously and at report time:

    - {b conservation} — per link and network-wide, every accepted packet
      is either still queued, in flight, delivered, or accounted to a
      drop cause; nothing is created or silently lost.
    - {b pool} — buffer-pool accounting: takes = releases + in-use, never
      negative, high-water never above capacity, and the pool's in-use
      count equals the qdisc's reported backlog (no leaked buffers).
    - {b work-conservation} — a work-conserving scheduler may not leave
      the transmitter idle while packets are queued (Stop-and-Go, HRR,
      Jitter-EDD, CBS and ATS are exempt by design).
    - {b delay} — per-hop waits and accumulated queueing delays are
      monotone non-negative.
    - {b token-bucket} — traffic observed at a policed flow's ingress
      link conforms to its [(r, b)] envelope; the model replays the edge
      policer's exact arithmetic.
    - {b pg-bound} — a guaranteed WFQ flow's end-to-end queueing delay
      never exceeds its Parekh–Gallager bound (checked per delivered
      packet at the flow's egress link).
    - {b cbs-bound} / {b ats-bound} / {b wrr-bound} / {b mcfifo-bound} —
      the same per-delivered-packet end-to-end check against the
      bake-off shapers' network-calculus bounds (Mohammadpour et al. for
      CBS/ATS, Constantin et al. for WRR, Jiang–Misra for multiclass
      FIFO; formulas in [Ispn_util.Analytic], catalogue in DESIGN.md
      §9), registered via {!register_delay_bound}.
    - {b flow-state} — soft-state leak accounting for every registered
      reservation book and flow-slot pool: live = admitted − released,
      never negative, with zero bad releases (see
      {!register_flow_state}).

    Like [Ispn_obs], auditing is opt-in and free when off: without an
    attached context the packet path pays one [match] per event, and
    stdout is untouched.  Each parallel experiment job owns its private
    context ({!summary} values are plain data merged in job order), so
    [--check] output is [-j]-independent. *)

type t

val create : unit -> t

(** {2 Attachment} *)

val attach_link : t -> ?work_conserving:bool -> Ispn_sim.Link.t -> unit
(** Install this context's tap on the link and register its qdisc for the
    report-time checks.  [work_conserving] overrides the classification
    by scheduler name (see {!work_conserving_name}). *)

val attach_network : t -> Ispn_sim.Network.t -> unit
(** {!attach_link} on every link of the chain. *)

val register_pool : t -> link:int -> Ispn_sim.Qdisc.pool -> unit
(** Enable the buffer-accounting checks for a link's pool; may be called
    before {!attach_link} (pools are built inside qdisc factories).  The
    in-use-equals-backlog cross-check needs the link attached too. *)

val register_policed_flow :
  t -> flow:int -> link:int -> rate_bps:float -> depth_bits:float -> unit
(** Check every packet of [flow] arriving at [link] (its first hop)
    against a token bucket [(rate_bps, depth_bits)] that starts full. *)

type bound_kind = Pg | Cbs | Ats | Wrr | Mc_fifo
(** Which invariant counter (and report label) a registered delay bound
    feeds: the Parekh–Gallager WFQ check or one of the bake-off shaper
    bounds. *)

val register_delay_bound :
  t -> kind:bound_kind -> flow:int -> link:int -> bound_s:float -> unit
(** Check every packet of [flow] delivered by [link] (its egress hop)
    against the end-to-end queueing-delay bound [bound_s] (seconds),
    accounted to [kind]'s invariant.  A flow holds at most one bound;
    re-registering replaces it. *)

val register_pg_bound : t -> flow:int -> link:int -> bound_s:float -> unit
(** [register_delay_bound ~kind:Pg]. *)

val register_flow_state :
  t ->
  label:string ->
  admitted:(unit -> int) ->
  released:(unit -> int) ->
  live:(unit -> int) ->
  ?bad:(unit -> int) ->
  unit ->
  unit
(** Register one soft-state book for the report-time [flow-state] leak
    check: [admitted () = released () + live ()] and [live () >= 0] must
    hold when {!finalize} runs, and [bad ()] (when given — double or
    out-of-range releases) must be zero.  Used by
    [Csz.Signaling.register_audit] for every agent's admission book and
    by the churn workload for its [Ispn_util.Idpool] flow-slot pool;
    the closures are read only at {!finalize}. *)

val work_conserving_name : string -> bool
(** Classification used by {!attach_link}: every scheduler name except
    Stop-and-Go, HRR, Jitter-EDD, CBS and ATS is treated as
    work-conserving. *)

val tap : t -> Ispn_sim.Tap.t
(** The raw tap, for driving the auditor without a link (tests). *)

(** {2 Results} *)

type inv_summary = { inv_name : string; inv_checks : int; inv_violations : int }

type summary = {
  events : int;  (** Tap events consumed. *)
  checks : int;  (** Individual invariant evaluations, incl. report-time. *)
  violations : int;
  invariants : inv_summary list;  (** Fixed catalogue order. *)
  samples : string list;  (** First few violation messages, oldest first. *)
}

val finalize : t -> summary
(** Run the report-time checks (conservation totals, pool accounting
    against current backlogs) and snapshot the counters.  Call once, when
    the run's engine has drained. *)

val footer_lines : label:string -> summary -> string list
(** Render as [\[check\]]-prefixed report lines: one summary line, plus
    per-invariant counts and violation samples when anything failed. *)
