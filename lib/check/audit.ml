module Qdisc = Ispn_sim.Qdisc
module Packet = Ispn_sim.Packet
module Tap = Ispn_sim.Tap
module Recorder = Ispn_obs.Recorder

let delay_eps = 1e-9
let bucket_eps = 1e-6
let bound_eps = 1e-9
let max_samples = 8

let non_work_conserving_names =
  [ "Stop-and-Go"; "HRR"; "Jitter-EDD"; "CBS"; "ATS" ]
let work_conserving_name n = not (List.mem n non_work_conserving_names)

type counter = { inv : string; mutable checks : int; mutable violations : int }

type lstate = {
  l_id : int;
  l_name : string;
  l_qdisc : Qdisc.t;
  wc : bool;
  mutable accepted : int;
  mutable dequeued : int;
  mutable delivered : int;
  mutable drops_buffer : int;
  mutable drops_down : int;
  mutable drops_wire : int;
}

(* Replays the policer's exact refill/debit arithmetic (same float
   operations in the same order as [Ispn_traffic.Token_bucket]), so a
   conforming trace matches to the last bit. *)
type bucket = {
  b_link : int;
  rate_bps : float;
  depth_bits : float;
  mutable tokens : float;
  mutable last_refill : float;
}

type bound_kind = Pg | Cbs | Ats | Wrr | Mc_fifo

let bound_label = function
  | Pg -> "PG"
  | Cbs -> "CBS"
  | Ats -> "ATS"
  | Wrr -> "WRR"
  | Mc_fifo -> "MC-FIFO"

type gbound = { g_link : int; bound_s : float; g_kind : bound_kind }

(* One soft-state book (a signaling agent's admission records, a flow-slot
   pool) whose cumulative counters must balance at report time. *)
type fstate = {
  f_label : string;
  f_admitted : unit -> int;
  f_released : unit -> int;
  f_live : unit -> int;
  f_bad : (unit -> int) option;
}

type t = {
  mutable links : lstate option array;
  mutable pools : (int * Qdisc.pool) list;  (* newest first *)
  mutable buckets : bucket option array;
  mutable bounds : gbound option array;
  mutable fstates : fstate list;  (* newest first *)
  conservation : counter;
  pool : counter;
  arena : counter;
  work_conservation : counter;
  delay : counter;
  token_bucket : counter;
  pg_bound : counter;
  cbs_bound : counter;
  ats_bound : counter;
  wrr_bound : counter;
  mcfifo_bound : counter;
  flow_state : counter;
  arena_base : Packet.pool_stats;
      (* Arena counters are cumulative across the simulations a domain has
         run, so the invariant is checked on deltas from this baseline
         (captured at [create], before the run allocates anything) — that
         keeps the audit [-j]-independent. *)
  mutable events : int;
  mutable samples : string list;  (* newest first *)
  mutable n_samples : int;
}

let counters t =
  [
    t.conservation;
    t.pool;
    t.arena;
    t.work_conservation;
    t.delay;
    t.token_bucket;
    t.pg_bound;
    t.cbs_bound;
    t.ats_bound;
    t.wrr_bound;
    t.mcfifo_bound;
    t.flow_state;
  ]

let create () =
  {
    links = Array.make 8 None;
    pools = [];
    buckets = Array.make 32 None;
    bounds = Array.make 32 None;
    fstates = [];
    conservation = { inv = "conservation"; checks = 0; violations = 0 };
    pool = { inv = "pool"; checks = 0; violations = 0 };
    arena = { inv = "packet-arena"; checks = 0; violations = 0 };
    arena_base = Packet.pool_stats ();
    work_conservation =
      { inv = "work-conservation"; checks = 0; violations = 0 };
    delay = { inv = "delay"; checks = 0; violations = 0 };
    token_bucket = { inv = "token-bucket"; checks = 0; violations = 0 };
    pg_bound = { inv = "pg-bound"; checks = 0; violations = 0 };
    cbs_bound = { inv = "cbs-bound"; checks = 0; violations = 0 };
    ats_bound = { inv = "ats-bound"; checks = 0; violations = 0 };
    wrr_bound = { inv = "wrr-bound"; checks = 0; violations = 0 };
    mcfifo_bound = { inv = "mcfifo-bound"; checks = 0; violations = 0 };
    flow_state = { inv = "flow-state"; checks = 0; violations = 0 };
    events = 0;
    samples = [];
    n_samples = 0;
  }

let violate t c msg =
  c.violations <- c.violations + 1;
  if t.n_samples < max_samples then begin
    t.samples <- Printf.sprintf "%s: %s" c.inv msg :: t.samples;
    t.n_samples <- t.n_samples + 1
  end

let check t c cond msg =
  c.checks <- c.checks + 1;
  if not cond then violate t c (msg ())

let grow (type a) (arr : a option array ref) i =
  if i >= Array.length !arr then begin
    let n = Stdlib.max (i + 1) (2 * Array.length !arr) in
    let bigger = Array.make n None in
    Array.blit !arr 0 bigger 0 (Array.length !arr);
    arr := bigger
  end

let set_slot t get set i v =
  let arr = ref (get t) in
  grow arr i;
  set t !arr;
  !arr.(i) <- Some v

let link_state t i =
  if i < Array.length t.links then t.links.(i) else None

let register_qdisc t ~link ?work_conserving (q : Qdisc.t) =
  let wc =
    match work_conserving with
    | Some wc -> wc
    | None -> work_conserving_name q.Qdisc.name
  in
  set_slot t (fun t -> t.links) (fun t a -> t.links <- a) link
    {
      l_id = link;
      l_name = q.Qdisc.name;
      l_qdisc = q;
      wc;
      accepted = 0;
      dequeued = 0;
      delivered = 0;
      drops_buffer = 0;
      drops_down = 0;
      drops_wire = 0;
    }

let register_pool t ~link pool = t.pools <- (link, pool) :: t.pools

let register_policed_flow t ~flow ~link ~rate_bps ~depth_bits =
  set_slot t (fun t -> t.buckets) (fun t a -> t.buckets <- a) flow
    { b_link = link; rate_bps; depth_bits; tokens = depth_bits;
      last_refill = 0. }

let register_flow_state t ~label ~admitted ~released ~live ?bad () =
  t.fstates <-
    {
      f_label = label;
      f_admitted = admitted;
      f_released = released;
      f_live = live;
      f_bad = bad;
    }
    :: t.fstates

let register_delay_bound t ~kind ~flow ~link ~bound_s =
  set_slot t (fun t -> t.bounds) (fun t a -> t.bounds <- a) flow
    { g_link = link; bound_s; g_kind = kind }

let register_pg_bound t ~flow ~link ~bound_s =
  register_delay_bound t ~kind:Pg ~flow ~link ~bound_s

let bound_counter t = function
  | Pg -> t.pg_bound
  | Cbs -> t.cbs_bound
  | Ats -> t.ats_bound
  | Wrr -> t.wrr_bound
  | Mc_fifo -> t.mcfifo_bound

let debit_bucket t b ~now ~flow (pkt : Packet.t) =
  (* Mirror of [Token_bucket.refill] + the conforming debit. *)
  if now > b.last_refill then begin
    b.tokens <-
      Stdlib.min b.depth_bits
        (b.tokens +. ((now -. b.last_refill) *. b.rate_bps));
    b.last_refill <- now
  end;
  let need = float_of_int (Packet.size_bits pkt) in
  check t t.token_bucket
    (b.tokens >= need -. bucket_eps)
    (fun () ->
      Printf.sprintf
        "flow %d seq %d at t=%.6f: %d bits offered with only %.3f tokens \
         (rate %.0f bps, depth %.0f bits)"
        flow (Packet.seq pkt) now (Packet.size_bits pkt) b.tokens b.rate_bps
        b.depth_bits);
  b.tokens <- b.tokens -. need

let bucket_for t ~flow ~link =
  if flow < Array.length t.buckets then
    match t.buckets.(flow) with
    | Some b when b.b_link = link -> Some b
    | _ -> None
  else None

let on_arrival t ~link ~now (pkt : Packet.t) =
  let flow = Packet.flow pkt in
  match bucket_for t ~flow ~link with
  | None -> ()
  | Some b -> debit_bucket t b ~now ~flow pkt

let tap t =
  let pa = Packet.arena () in
  let on_enqueue ~link ~now (pkt : Packet.t) =
    t.events <- t.events + 1;
    (match link_state t link with
    | None -> ()
    | Some ls -> ls.accepted <- ls.accepted + 1);
    check t t.delay
      (pa.Packet.qdelay_total.(pkt) >= -.delay_eps)
      (fun () ->
        Printf.sprintf
          "flow %d seq %d at t=%.6f: negative accumulated delay %.9f on \
           enqueue at link %d"
          pa.Packet.flow.(pkt) pa.Packet.seq.(pkt) now
          pa.Packet.qdelay_total.(pkt) link);
    on_arrival t ~link ~now pkt
  in
  let on_dequeue ~link ~now ~wait (pkt : Packet.t) =
    t.events <- t.events + 1;
    (match link_state t link with
    | None -> ()
    | Some ls -> ls.dequeued <- ls.dequeued + 1);
    check t t.delay
      (wait >= -.delay_eps)
      (fun () ->
        Printf.sprintf
          "flow %d seq %d at t=%.6f: dequeued %.9fs before it arrived at \
           link %d"
          pa.Packet.flow.(pkt) pa.Packet.seq.(pkt) now (-.wait) link)
  in
  let on_idle ~link ~now ~qlen =
    t.events <- t.events + 1;
    match link_state t link with
    | Some ls when ls.wc ->
        check t t.work_conservation (qlen = 0) (fun () ->
            Printf.sprintf
              "link %d (%s) went idle at t=%.6f with %d packets queued" link
              ls.l_name now qlen)
    | _ -> ()
  in
  let on_deliver ~link ~now (pkt : Packet.t) =
    t.events <- t.events + 1;
    (match link_state t link with
    | None -> ()
    | Some ls -> ls.delivered <- ls.delivered + 1);
    check t t.delay
      (pa.Packet.qdelay_total.(pkt) >= -.delay_eps)
      (fun () ->
        Printf.sprintf
          "flow %d seq %d at t=%.6f: delivered with negative accumulated \
           delay %.9f"
          pa.Packet.flow.(pkt) pa.Packet.seq.(pkt) now
          pa.Packet.qdelay_total.(pkt));
    let flow = pa.Packet.flow.(pkt) in
    if flow < Array.length t.bounds then
      match t.bounds.(flow) with
      | Some g when g.g_link = link ->
          check t (bound_counter t g.g_kind)
            (pa.Packet.qdelay_total.(pkt) <= g.bound_s +. bound_eps)
            (fun () ->
              Printf.sprintf
                "flow %d seq %d at t=%.6f: queueing delay %.6fs exceeds the \
                 %s bound %.6fs"
                flow pa.Packet.seq.(pkt) now pa.Packet.qdelay_total.(pkt)
                (bound_label g.g_kind) g.bound_s)
      | _ -> ()
  in
  let on_drop ~link ~now ~cause (pkt : Packet.t) =
    t.events <- t.events + 1;
    (match link_state t link with
    | None -> ()
    | Some ls -> (
        match (cause : Recorder.cause) with
        | Recorder.Buffer -> ls.drops_buffer <- ls.drops_buffer + 1
        | Recorder.Down -> ls.drops_down <- ls.drops_down + 1
        | Recorder.Wire -> ls.drops_wire <- ls.drops_wire + 1
        | Recorder.No_cause -> ()));
    (* A buffer rejection still passed the edge policer, so it consumed
       tokens; debit the model on this path too. *)
    if cause = Recorder.Buffer then on_arrival t ~link ~now pkt
  in
  Tap.make ~on_enqueue ~on_dequeue ~on_idle ~on_deliver ~on_drop ()

let attach_link t ?work_conserving link =
  register_qdisc t ~link:(Ispn_sim.Link.id link) ?work_conserving
    (Ispn_sim.Link.qdisc link);
  Ispn_sim.Link.add_tap link (tap t)

let attach_network t net =
  for i = 0 to Ispn_sim.Network.n_links net - 1 do
    attach_link t (Ispn_sim.Network.link net i)
  done

(* {2 Report-time checks and the summary} *)

type inv_summary = { inv_name : string; inv_checks : int; inv_violations : int }

type summary = {
  events : int;
  checks : int;
  violations : int;
  invariants : inv_summary list;
  samples : string list;  (* oldest first *)
}

let final_link_checks t ls =
  let backlog = ls.l_qdisc.Qdisc.length () in
  check t t.conservation
    (ls.accepted - ls.dequeued = backlog)
    (fun () ->
      Printf.sprintf
        "link %d (%s): accepted %d - dequeued %d <> %d still queued" ls.l_id
        ls.l_name ls.accepted ls.dequeued backlog);
  let in_flight = ls.dequeued - ls.delivered - ls.drops_down - ls.drops_wire in
  check t t.conservation (in_flight >= 0) (fun () ->
      Printf.sprintf
        "link %d (%s): dequeued %d < delivered %d + dropped %d after dequeue"
        ls.l_id ls.l_name ls.dequeued ls.delivered
        (ls.drops_down + ls.drops_wire))

let final_pool_checks t (link, p) =
  let in_use = Qdisc.pool_in_use p in
  check t t.pool
    (Qdisc.pool_takes p = Qdisc.pool_releases p + in_use)
    (fun () ->
      Printf.sprintf "link %d: %d takes <> %d releases + %d in use" link
        (Qdisc.pool_takes p) (Qdisc.pool_releases p) in_use);
  check t t.pool (in_use >= 0) (fun () ->
      Printf.sprintf "link %d: pool in_use %d negative" link in_use);
  check t t.pool
    (Qdisc.pool_hwm p <= Qdisc.pool_capacity p)
    (fun () ->
      Printf.sprintf "link %d: pool high-water %d above capacity %d" link
        (Qdisc.pool_hwm p) (Qdisc.pool_capacity p));
  match link_state t link with
  | None -> ()
  | Some ls ->
      check t t.pool
        (in_use = ls.l_qdisc.Qdisc.length ())
        (fun () ->
          Printf.sprintf
            "link %d (%s): pool holds %d buffers but the qdisc reports %d \
             packets (leak)"
            link ls.l_name in_use
            (ls.l_qdisc.Qdisc.length ()))

(* Soft-state leak accounting (DESIGN.md §9, "flow-state"): a book of
   reservations or slots must balance its cumulative counters — live =
   admitted - released, never negative — and report no bad releases.  A
   live count above the balance means a leaked record (a lost teardown
   nobody timed out); below it, a double release. *)
let final_flow_state_checks t f =
  let admitted = f.f_admitted () in
  let released = f.f_released () in
  let live = f.f_live () in
  check t t.flow_state (live >= 0) (fun () ->
      Printf.sprintf "%s: live count %d negative" f.f_label live);
  check t t.flow_state
    (admitted = released + live)
    (fun () ->
      Printf.sprintf "%s: %d admitted <> %d released + %d live (leak)"
        f.f_label admitted released live);
  match f.f_bad with
  | None -> ()
  | Some bad ->
      let n = bad () in
      check t t.flow_state (n = 0) (fun () ->
          Printf.sprintf "%s: %d bad releases" f.f_label n)

(* Packet-arena accounting since the baseline: every successful [make]
   must balance a [free] or a live handle, and no handle may be freed
   twice (DESIGN.md §9). *)
let final_arena_checks t =
  let b = t.arena_base in
  let c = Packet.pool_stats () in
  let d_takes = c.Packet.p_takes - b.Packet.p_takes in
  let d_releases = c.Packet.p_releases - b.Packet.p_releases in
  let d_bad = c.Packet.p_bad_frees - b.Packet.p_bad_frees in
  check t t.arena (d_bad = 0) (fun () ->
      Printf.sprintf "arena: %d frees of dead packet slots" d_bad);
  check t t.arena (d_releases <= d_takes) (fun () ->
      Printf.sprintf "arena: %d releases exceed %d takes" d_releases d_takes);
  check t t.arena
    (c.Packet.p_in_use = b.Packet.p_in_use + d_takes - d_releases)
    (fun () ->
      Printf.sprintf
        "arena: %d in use <> %d at baseline + %d takes - %d releases"
        c.Packet.p_in_use b.Packet.p_in_use d_takes d_releases);
  check t t.arena
    (c.Packet.p_hwm <= c.Packet.p_capacity)
    (fun () ->
      Printf.sprintf "arena: high-water %d above capacity %d" c.Packet.p_hwm
        c.Packet.p_capacity)

let finalize t =
  final_arena_checks t;
  let total_accepted = ref 0 and total_dequeued = ref 0 in
  let total_backlog = ref 0 and n_links = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some ls ->
          incr n_links;
          total_accepted := !total_accepted + ls.accepted;
          total_dequeued := !total_dequeued + ls.dequeued;
          total_backlog := !total_backlog + ls.l_qdisc.Qdisc.length ();
          final_link_checks t ls)
    t.links;
  List.iter (final_pool_checks t) (List.rev t.pools);
  List.iter (final_flow_state_checks t) (List.rev t.fstates);
  if !n_links > 0 then
    check t t.conservation
      (!total_accepted = !total_dequeued + !total_backlog)
      (fun () ->
        Printf.sprintf
          "network: %d accepted <> %d dequeued + %d queued across %d links"
          !total_accepted !total_dequeued !total_backlog !n_links);
  let invariants =
    List.map
      (fun c ->
        { inv_name = c.inv; inv_checks = c.checks; inv_violations = c.violations })
      (counters t)
  in
  let checks = List.fold_left (fun a i -> a + i.inv_checks) 0 invariants in
  let violations =
    List.fold_left (fun a i -> a + i.inv_violations) 0 invariants
  in
  {
    events = t.events;
    checks;
    violations;
    invariants;
    samples = List.rev t.samples;
  }

let footer_lines ~label s =
  let head =
    Printf.sprintf "[check] %s: %d events, %d checks, %d violations" label
      s.events s.checks s.violations
  in
  if s.violations = 0 then [ head ]
  else
    head
    :: List.filter_map
         (fun i ->
           if i.inv_violations = 0 then None
           else
             Some
               (Printf.sprintf "[check] %s:   %s: %d/%d checks violated" label
                  i.inv_name i.inv_violations i.inv_checks))
         s.invariants
    @ List.map (fun m -> Printf.sprintf "[check] %s:   !! %s" label m)
        s.samples
