(** Measurement-based admission control (Section 9).

    Two criteria gate every real-time admission, applied at each link of the
    requested path:

    + {b Datagram quota}: at most 90% of the link may be taken by real-time
      traffic — [r + nu_hat < 0.9 mu] — so datagram service always makes
      progress and a bandwidth pool exists for fluctuations.
    + {b Delay protection}: the new flow's worst-case burst must not push
      any equal-or-lower-priority class over its target —
      [b < (D_j - d_hat_j) (mu - nu_hat - r)] for every class [j] at or
      below the requested priority (a guaranteed commitment counts as higher
      priority than every class).

    [nu_hat] and [d_hat_j] come from each link's {!Meter} — measurements of
    the running traffic, not declared models.  Only the {e new} flow is
    accounted at its declared worst case, and only until the measurement
    window has had time to observe it (the paper's "once the new flow starts
    running ... base further admission decisions on the most recent
    measurement"). *)

type t

type decision = Admitted of { cls : int option } | Rejected of string
(** [cls] is the assigned priority class for predicted flows ([None] for
    guaranteed and datagram). *)

val create :
  n_links:int ->
  mu_bps:float ->
  class_targets:float array ->
  ?datagram_quota:float ->
  ?meter_epochs:int ->
  unit ->
  t
(** [class_targets] are the per-switch delay targets [D_i] in seconds,
    ordered from the highest-priority class ([D_0], smallest) downward;
    they must be strictly increasing.  [datagram_quota] defaults to 0.1. *)

val n_classes : t -> int
val meter : t -> link:int -> Meter.t
(** The per-link meter; the network feeds it and the controller reads it. *)

val epoch : t -> unit
(** Advance every link's measurement window one epoch (rotates meters and
    graduates recently admitted flows from declared-rate to measured
    accounting). *)

val request : t -> flow:int -> path:int list -> Spec.request -> decision
(** Ask to admit [flow] over the links in [path].  Datagram requests are
    always admitted.  A predicted flow is placed in the cheapest (lowest
    priority) class whose per-switch target still meets its end-to-end
    delay target over this path.  Raises [Invalid_argument] if [flow] is
    already admitted or [path] is empty for a real-time request. *)

val release : t -> flow:int -> unit
(** Tear down a flow's reservation; unknown flows are ignored. *)

val mem : t -> flow:int -> bool
(** Whether [flow] is currently admitted — lets a signaling agent re-assert
    reservations idempotently after a failure (skip hops that survived,
    re-request only at hops that forgot). *)

val reset : t -> unit
(** Release-on-failure: forget every admitted flow and zero the guaranteed
    reservations, as a crashed switch agent losing its soft state would.
    The meters are deliberately kept — they belong to the forwarding plane,
    which keeps running — so post-crash admission decisions immediately
    re-converge on measured load rather than restarting from an empty
    window. *)

val guaranteed_reserved_bps : t -> link:int -> float
val admitted : t -> int
(** Real-time flows currently admitted. *)

val rejected : t -> int
(** Real-time requests refused so far. *)

(** {2 Soft-state leak accounting}

    Cumulative counters for the [flow-state] audit invariant: at every
    instant [admissions t = releases t + live t].  Every successful
    {!request} (datagram records included) counts one admission; every
    effective {!release} counts one release; {!reset} counts its whole
    wiped book as releases. *)

val admissions : t -> int
val releases : t -> int

val live : t -> int
(** Flow records currently in the book (all service classes). *)

val live_flows : t -> int list
(** The admitted flow ids, sorted ascending (deterministic regardless of
    admission order) — for end-of-run leak sweeps. *)
