type link_state = {
  meter : Meter.t;
  mutable guaranteed_bps : float;
  (* Declared rates of flows too recently admitted for the meter to have
     seen them; keyed by flow, value (rate, admit_epoch). *)
  unmeasured : (int, float * int) Hashtbl.t;
}

type flow_record = {
  request : Spec.request;
  path : int list;
  cls : int option;
}

type t = {
  mu : float;
  class_targets : float array;
  datagram_quota : float;
  meter_epochs : int;
  links : link_state array;
  flows : (int, flow_record) Hashtbl.t;
  mutable epoch_now : int;
  mutable rejected : int;
  mutable admissions : int;  (* cumulative grants, incl. datagram records *)
  mutable releases : int;  (* cumulative releases, incl. reset wipes *)
}

type decision = Admitted of { cls : int option } | Rejected of string

let create ~n_links ~mu_bps ~class_targets ?(datagram_quota = 0.1)
    ?(meter_epochs = 8) () =
  assert (n_links > 0 && mu_bps > 0.);
  let k = Array.length class_targets in
  assert (k > 0);
  for i = 1 to k - 1 do
    if class_targets.(i) <= class_targets.(i - 1) then
      invalid_arg "Controller.create: class targets must be increasing"
  done;
  {
    mu = mu_bps;
    class_targets;
    datagram_quota;
    meter_epochs;
    links =
      Array.init n_links (fun _ ->
          {
            meter = Meter.create ~n_classes:k ~epochs:meter_epochs ();
            guaranteed_bps = 0.;
            unmeasured = Hashtbl.create 8;
          });
    flows = Hashtbl.create 32;
    epoch_now = 0;
    rejected = 0;
    admissions = 0;
    releases = 0;
  }

let n_classes t = Array.length t.class_targets
let meter t ~link = t.links.(link).meter

let epoch t =
  t.epoch_now <- t.epoch_now + 1;
  Array.iter
    (fun ls ->
      Meter.rotate ls.meter;
      (* Flows the window has now fully observed stop being double-counted
         at their declared rate. *)
      let stale =
        Hashtbl.fold
          (fun flow (_, admitted_at) acc ->
            if t.epoch_now - admitted_at >= t.meter_epochs then flow :: acc
            else acc)
          ls.unmeasured []
      in
      List.iter (Hashtbl.remove ls.unmeasured) stale)
    t.links

let nu_hat t ls =
  let unmeasured =
    Hashtbl.fold (fun _ (rate, _) acc -> acc +. rate) ls.unmeasured 0.
  in
  Meter.util_hat ls.meter +. (unmeasured /. t.mu)

(* Criterion (1): real-time load incl. the newcomer stays under the quota
   complement.  Guaranteed reservations are counted at their full clock rate
   even when idle, since the network has promised that rate. *)
let quota_ok t ls ~rate =
  let nu = Stdlib.max (nu_hat t ls) (ls.guaranteed_bps /. t.mu) in
  (rate /. t.mu) +. nu < 1. -. t.datagram_quota

(* Criterion (2) at one link for a flow of burst [b] entering at priority
   [cls] ([-1] = guaranteed, above every class). *)
let delay_ok t ls ~rate ~depth ~cls =
  let nu = nu_hat t ls in
  let headroom = t.mu -. (nu *. t.mu) -. rate in
  let k = Array.length t.class_targets in
  let rec check j =
    if j >= k then true
    else
      let slack = t.class_targets.(j) -. Meter.delay_hat ls.meter ~cls:j in
      if depth < slack *. headroom then check (j + 1) else false
  in
  headroom > 0. && check (Stdlib.max cls 0)

let choose_class t ~target_delay ~hops =
  (* Cheapest class whose summed per-switch targets still meet the flow's
     end-to-end delay target. *)
  let k = Array.length t.class_targets in
  let rec best j =
    if j < 0 then None
    else if float_of_int hops *. t.class_targets.(j) <= target_delay then
      Some j
    else best (j - 1)
  in
  best (k - 1)

let reject t ~flow reason =
  t.rejected <- t.rejected + 1;
  Logs.info ~src:Ispn_util.Log.admission (fun m ->
      m "flow %d rejected: %s" flow reason);
  Rejected reason

let log_admit ~flow ~what =
  Logs.info ~src:Ispn_util.Log.admission (fun m ->
      m "flow %d admitted (%s)" flow what)

let request t ~flow ~path request =
  if Hashtbl.mem t.flows flow then
    invalid_arg (Printf.sprintf "Controller.request: flow %d already admitted" flow);
  match request with
  | Spec.Datagram ->
      Hashtbl.replace t.flows flow { request; path; cls = None };
      t.admissions <- t.admissions + 1;
      Admitted { cls = None }
  | Spec.Guaranteed { clock_rate_bps = r } -> (
      if path = [] then invalid_arg "Controller.request: empty path";
      let links = List.map (fun i -> t.links.(i)) path in
      let depth = float_of_int Ispn_util.Units.packet_bits in
      match
        List.find_opt
          (fun ls ->
            not (quota_ok t ls ~rate:r && delay_ok t ls ~rate:r ~depth ~cls:(-1)))
          links
      with
      | Some _ -> reject t ~flow "guaranteed: insufficient capacity on path"
      | None ->
          List.iter
            (fun ls ->
              ls.guaranteed_bps <- ls.guaranteed_bps +. r;
              Hashtbl.replace ls.unmeasured flow (r, t.epoch_now))
            links;
          Hashtbl.replace t.flows flow { request; path; cls = None };
          t.admissions <- t.admissions + 1;
          log_admit ~flow ~what:(Printf.sprintf "guaranteed %.0f bps" r);
          Admitted { cls = None })
  | Spec.Predicted { bucket; target_delay; _ } -> (
      if path = [] then invalid_arg "Controller.request: empty path";
      let hops = List.length path in
      match choose_class t ~target_delay ~hops with
      | None -> reject t ~flow "predicted: delay target tighter than class 0"
      | Some cls ->
          let r = bucket.Spec.rate_bps and b = bucket.Spec.depth_bits in
          let links = List.map (fun i -> t.links.(i)) path in
          let ok ls = quota_ok t ls ~rate:r && delay_ok t ls ~rate:r ~depth:b ~cls in
          if List.for_all ok links then begin
            List.iter
              (fun ls -> Hashtbl.replace ls.unmeasured flow (r, t.epoch_now))
              links;
            Hashtbl.replace t.flows flow { request; path; cls = Some cls };
            t.admissions <- t.admissions + 1;
            log_admit ~flow ~what:(Printf.sprintf "predicted class %d" cls);
            Admitted { cls = Some cls }
          end
          else reject t ~flow "predicted: would violate a class delay target")

let release t ~flow =
  match Hashtbl.find_opt t.flows flow with
  | None -> ()
  | Some { request; path; _ } ->
      Hashtbl.remove t.flows flow;
      t.releases <- t.releases + 1;
      List.iter
        (fun i ->
          let ls = t.links.(i) in
          Hashtbl.remove ls.unmeasured flow;
          match request with
          | Spec.Guaranteed { clock_rate_bps = r } ->
              ls.guaranteed_bps <- ls.guaranteed_bps -. r
          | Spec.Predicted _ | Spec.Datagram -> ())
        path

let mem t ~flow = Hashtbl.mem t.flows flow

let reset t =
  (* A wiped book is so many releases as far as leak accounting goes: a
     crash must not leave admissions = releases + live violated. *)
  t.releases <- t.releases + Hashtbl.length t.flows;
  Hashtbl.reset t.flows;
  Array.iter
    (fun ls ->
      ls.guaranteed_bps <- 0.;
      Hashtbl.reset ls.unmeasured)
    t.links

let guaranteed_reserved_bps t ~link = t.links.(link).guaranteed_bps

let admitted t =
  Hashtbl.fold
    (fun _ fr acc -> if Spec.is_realtime fr.request then acc + 1 else acc)
    t.flows 0

let rejected t = t.rejected
let admissions t = t.admissions
let releases t = t.releases
let live t = Hashtbl.length t.flows

let live_flows t =
  List.sort compare (Hashtbl.fold (fun flow _ acc -> flow :: acc) t.flows [])
