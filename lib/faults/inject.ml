module Engine = Ispn_sim.Engine
module Link = Ispn_sim.Link
module Packet = Ispn_sim.Packet
module Wire = Ispn_sim.Wire

type stats = {
  mutable downs : int;
  mutable repairs : int;
  mutable corrupted : int;
  mutable malformed : int;
  mutable mangled : int;
  mutable crashes : int;
}

(* Flip one uniformly random bit of the packet's wire encoding and try to
   deliver what decodes.  Identity-changing corruption is undeliverable:
   routing is per-flow ([Node.receive] has no entry for a mangled flow id)
   and a wrong size or sequence would falsify the receiver's accounting, so
   those packets drop.  A survivor only had its jitter offset perturbed;
   we fold the decoded offset back into the in-transit packet so its
   bookkeeping fields (created, hop count, queueing total) stay intact. *)
let corrupt_packet stats prng (pkt : Packet.t) =
  match Wire.encode pkt with
  | exception Invalid_argument _ -> Some pkt
  | b ->
      stats.corrupted <- stats.corrupted + 1;
      let bit = Ispn_util.Prng.int prng ~bound:(8 * Bytes.length b) in
      let byte = bit / 8 and mask = 1 lsl (bit mod 8) in
      Bytes.set_uint8 b byte (Bytes.get_uint8 b byte lxor mask);
      (match Wire.decode ~created:(Packet.created pkt) b with
      | exception Wire.Malformed _ ->
          stats.malformed <- stats.malformed + 1;
          None
      | q ->
          (* [q] is a scratch decode; its fields are copied out below and
             the handle freed before returning. *)
          let mangled =
            Packet.flow q <> Packet.flow pkt
            || Packet.seq q <> Packet.seq pkt
            || Packet.size_bits q <> Packet.size_bits pkt
            || Packet.kind q <> Packet.kind pkt
          in
          let offset = Packet.offset q in
          Packet.free q;
          if mangled then begin
            stats.mangled <- stats.mangled + 1;
            None
          end
          else begin
            Packet.set_offset pkt offset;
            Some pkt
          end)

let apply ~engine ~links ?(on_agent_crash = fun ~switch:_ -> ())
    ?(corrupt_seed = 0x0FA17L) plan =
  let stats =
    { downs = 0; repairs = 0; corrupted = 0; malformed = 0; mangled = 0;
      crashes = 0 }
  in
  let n = Array.length links in
  let check_link link =
    if link < 0 || link >= n then
      invalid_arg (Printf.sprintf "Inject.apply: link %d out of range" link)
  in
  let at_or_now at = Float.max at (Engine.now engine) in
  (* One filter per corrupted link carrying all of that link's windows; the
     link's PRNG stream is split off in link order so plans stay
     deterministic however their events interleave. *)
  let windows = Hashtbl.create 7 in
  List.iter
    (function
      | Plan.Corrupt { link; from_; until; per_packet } ->
          check_link link;
          let prev = Option.value ~default:[] (Hashtbl.find_opt windows link) in
          Hashtbl.replace windows link ((from_, until, per_packet) :: prev)
      | _ -> ())
    plan;
  let corrupt_root = Ispn_util.Prng.create ~seed:corrupt_seed in
  Hashtbl.fold (fun link _ acc -> link :: acc) windows []
  |> List.sort compare
  |> List.iter (fun link ->
         let ws = List.rev (Hashtbl.find windows link) in
         let prng = Ispn_util.Prng.split corrupt_root in
         Link.set_wire_filter links.(link) (fun pkt ->
             let now = Engine.now engine in
             let hit =
               List.exists
                 (fun (from_, until, per_packet) ->
                   now >= from_ && now < until
                   && Ispn_util.Prng.float prng < per_packet)
                 ws
             in
             if hit then corrupt_packet stats prng pkt else Some pkt));
  List.iter
    (function
      | Plan.Link_down { link; at; duration } ->
          check_link link;
          ignore
            (Engine.schedule engine ~at:(at_or_now at) (fun () ->
                 stats.downs <- stats.downs + 1;
                 Link.set_up links.(link) false));
          ignore
            (Engine.schedule engine ~at:(at_or_now (at +. duration)) (fun () ->
                 stats.repairs <- stats.repairs + 1;
                 Link.set_up links.(link) true))
      | Plan.Corrupt _ -> ()
      | Plan.Agent_crash { switch; at } ->
          ignore
            (Engine.schedule engine ~at:(at_or_now at) (fun () ->
                 stats.crashes <- stats.crashes + 1;
                 on_agent_crash ~switch)))
    plan;
  stats
