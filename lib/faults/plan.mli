(** Deterministic fault plans.

    The paper argues (Section 2) for tolerant, adaptive real-time clients
    precisely because the network's condition changes under them; a fault
    plan is a replayable description of such condition changes.  A plan is
    plain data — a list of timed events against a topology's link indices —
    so experiments can log it, tests can hand-craft it, and the same seed
    always yields the same faults regardless of what the simulation itself
    does.  {!Inject.apply} turns a plan into scheduled engine events. *)

type event =
  | Link_down of { link : int; at : float; duration : float }
      (** Link [link] fails at time [at] and is repaired [duration] seconds
          later.  While down its transmitter is stopped and the in-flight
          frame is lost ({!Ispn_sim.Link.set_up}). *)
  | Corrupt of { link : int; from_ : float; until : float; per_packet : float }
      (** Between [from_] and [until], every packet delivered over [link]
          has its header corrupted with probability [per_packet]: one random
          bit of the {!Ispn_sim.Wire} encoding is flipped and the result
          re-decoded, exercising [Malformed] handling end to end. *)
  | Agent_crash of { switch : int; at : float }
      (** The reservation agent at [switch] crashes at [at], losing its soft
          state (admission book and scheduler registrations).  The injector
          only reports this to its [on_agent_crash] callback; the control
          plane (e.g. [Csz.Signaling.crash_agent]) does the forgetting. *)

type t = event list
(** Events in no particular order; {!Inject.apply} sorts them. *)

val none : t
(** The empty plan (a fault-free baseline run). *)

val time_of : event -> float
(** The event's start time. *)

val pp_event : Format.formatter -> event -> unit

val random :
  seed:int64 ->
  n_links:int ->
  duration:float ->
  ?mtbf:float ->
  ?mttr:float ->
  ?corrupt_windows:int ->
  ?corrupt_span:float ->
  ?per_packet:float ->
  ?crashes:int ->
  unit ->
  t
(** [random ~seed ~n_links ~duration ()] draws a plan from an
    {!Ispn_util.Prng} stream: per-link link-down events as an alternating
    renewal process with exponential time-between-failures (mean [mtbf],
    default [2. *. duration] — i.e. roughly half the links fail once) and
    exponential repair times (mean [mttr], default 2 s); [corrupt_windows]
    corruption windows (default 0) of [corrupt_span] seconds (default 5)
    at [per_packet] probability (default 0.1); and [crashes] agent crashes
    (default 0) at uniform times on uniform switches.  Equal arguments give
    equal plans. *)
