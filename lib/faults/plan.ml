type event =
  | Link_down of { link : int; at : float; duration : float }
  | Corrupt of { link : int; from_ : float; until : float; per_packet : float }
  | Agent_crash of { switch : int; at : float }

type t = event list

let none = []

let time_of = function
  | Link_down { at; _ } -> at
  | Corrupt { from_; _ } -> from_
  | Agent_crash { at; _ } -> at

let pp_event ppf = function
  | Link_down { link; at; duration } ->
      Format.fprintf ppf "link %d down %.3f..%.3f" link at (at +. duration)
  | Corrupt { link; from_; until; per_packet } ->
      Format.fprintf ppf "link %d corrupt %.3f..%.3f p=%.2f" link from_ until
        per_packet
  | Agent_crash { switch; at } ->
      Format.fprintf ppf "agent %d crash at %.3f" switch at

let random ~seed ~n_links ~duration ?mtbf ?(mttr = 2.) ?(corrupt_windows = 0)
    ?(corrupt_span = 5.) ?(per_packet = 0.1) ?(crashes = 0) () =
  if n_links <= 0 then invalid_arg "Plan.random: n_links must be positive";
  if duration <= 0. then invalid_arg "Plan.random: duration must be positive";
  let mtbf = match mtbf with Some m -> m | None -> 2. *. duration in
  let prng = Ispn_util.Prng.create ~seed in
  let events = ref [] in
  (* Per-link alternating renewal process, each link on its own split
     stream so adding links does not perturb the others' fault times. *)
  for link = 0 to n_links - 1 do
    let g = Ispn_util.Prng.split prng in
    let t = ref (Ispn_util.Dist.exponential g ~mean:mtbf) in
    while !t < duration do
      let repair = Ispn_util.Dist.exponential g ~mean:mttr in
      events := Link_down { link; at = !t; duration = repair } :: !events;
      t := !t +. repair +. Ispn_util.Dist.exponential g ~mean:mtbf
    done
  done;
  let g = Ispn_util.Prng.split prng in
  for _ = 1 to corrupt_windows do
    let link = Ispn_util.Prng.int g ~bound:n_links in
    let from_ = Ispn_util.Prng.float g *. Float.max 0. (duration -. corrupt_span) in
    events :=
      Corrupt { link; from_; until = from_ +. corrupt_span; per_packet }
      :: !events
  done;
  let g = Ispn_util.Prng.split prng in
  for _ = 1 to crashes do
    let switch = Ispn_util.Prng.int g ~bound:n_links in
    let at = Ispn_util.Prng.float g *. duration in
    events := Agent_crash { switch; at } :: !events
  done;
  (* Stable sort by start time: simultaneous events keep generation order. *)
  List.stable_sort (fun a b -> Float.compare (time_of a) (time_of b))
    (List.rev !events)
