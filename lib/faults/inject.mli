(** Fault injector: schedule a {!Plan.t} against a live topology.

    The injector owns the mechanics every fault shares — stopping and
    restarting link transmitters, corrupting headers on the wire — and
    reports agent crashes to a callback so the control plane above (which
    this library deliberately does not depend on) can wipe its own soft
    state.  All injection randomness (which bit a corruption flips, whether
    a given packet is hit) flows from [corrupt_seed] through per-link
    {!Ispn_util.Prng} streams, so runs are deterministic and independent of
    domain parallelism. *)

type stats = {
  mutable downs : int;  (** Link-down events fired. *)
  mutable repairs : int;  (** Links brought back up. *)
  mutable corrupted : int;  (** Packets whose header was bit-flipped. *)
  mutable malformed : int;
      (** Corrupted packets [Wire.decode] rejected ([Malformed]) — dropped. *)
  mutable mangled : int;
      (** Corrupted packets that decoded but with a changed flow, sequence,
          size or kind; undeliverable, so dropped. *)
  mutable crashes : int;  (** Agent crashes reported to the callback. *)
}

val apply :
  engine:Ispn_sim.Engine.t ->
  links:Ispn_sim.Link.t array ->
  ?on_agent_crash:(switch:int -> unit) ->
  ?corrupt_seed:int64 ->
  Plan.t ->
  stats
(** [apply ~engine ~links plan] schedules every event of [plan] on [engine]
    (events whose time already passed fire immediately) and returns the
    live counter record, updated as the simulation runs.

    Corruption runs each selected packet through {!Ispn_sim.Wire.encode},
    flips one uniformly random header bit, and re-decodes: a [Malformed]
    header or one whose identifying fields changed is dropped through the
    link's drop accounting; a survivor (only its jitter-offset field was
    perturbed) is delivered with the decoded offset, so FIFO+ sees the
    corrupted value.  Packets too large for the wire format pass through
    unharmed.  [apply] installs a wire filter on every link named by a
    [Corrupt] event — it must not already have one.

    [Agent_crash] events call [on_agent_crash ~switch] (default: count
    only).  Raises [Invalid_argument] if an event names a link outside
    [links] ([Agent_crash] switches are checked by the callback, since the
    injector does not know the topology's switch count). *)
