type t = {
  rate_bps : float;
  depth_bits : float;
  mutable tokens : float;
  mutable last_refill : float;
}

let create ~rate_bps ~depth_bits ?initial_bits () =
  assert (rate_bps > 0. && depth_bits > 0.);
  let initial = Option.value initial_bits ~default:depth_bits in
  { rate_bps; depth_bits; tokens = initial; last_refill = 0. }

let rate_bps t = t.rate_bps
let depth_bits t = t.depth_bits

let refill t ~now =
  assert (now >= t.last_refill -. 1e-9);
  if now > t.last_refill then begin
    t.tokens <-
      Stdlib.min t.depth_bits (t.tokens +. ((now -. t.last_refill) *. t.rate_bps));
    t.last_refill <- now
  end

let conforms t ~now ~bits =
  refill t ~now;
  let need = float_of_int bits in
  if t.tokens >= need -. 1e-9 then begin
    t.tokens <- t.tokens -. need;
    true
  end
  else false

let level_bits t ~now =
  refill t ~now;
  t.tokens

type mode = Drop | Pass

type policer = {
  engine : Ispn_sim.Engine.t;
  bucket : t;
  mode : mode;
  next : Ispn_sim.Packet.t -> unit;
  mutable offered : int;
  mutable dropped : int;
  mutable violations : int;
}

let policer ~engine ~bucket ~mode ~next =
  { engine; bucket; mode; next; offered = 0; dropped = 0; violations = 0 }

let police p pkt =
  p.offered <- p.offered + 1;
  let now = Ispn_sim.Engine.now p.engine in
  if conforms p.bucket ~now ~bits:(Ispn_sim.Packet.size_bits pkt) then
    p.next pkt
  else begin
    p.violations <- p.violations + 1;
    match p.mode with
    | Drop ->
        p.dropped <- p.dropped + 1;
        (* Policer drop is terminal: the handle dies here. *)
        Ispn_sim.Packet.free pkt
    | Pass -> p.next pkt
  end

let admit_fn p = police p
let offered p = p.offered
let dropped p = p.dropped
let violations p = p.violations
