open Ispn_sim

type t = {
  engine : Engine.t;
  bucket : Token_bucket.t;
  max_queue : int;
  next : Packet.t -> unit;
  queue : Packet.t Queue.t;
  mutable draining : bool;
  mutable dropped : int;
  mutable forwarded : int;
}

let create ~engine ~rate_bps ?depth_bits ?(max_queue = max_int) ~next () =
  let depth =
    Option.value depth_bits ~default:(float_of_int Ispn_util.Units.packet_bits)
  in
  {
    engine;
    bucket = Token_bucket.create ~rate_bps ~depth_bits:depth ();
    max_queue;
    next;
    queue = Queue.create ();
    draining = false;
    dropped = 0;
    forwarded = 0;
  }

(* Forward every queued packet whose tokens are available; when blocked,
   sleep exactly until the head packet's tokens will have accumulated. *)
let rec drain t =
  match Queue.peek_opt t.queue with
  | None -> t.draining <- false
  | Some head ->
      let now = Engine.now t.engine in
      let bits = Packet.size_bits head in
      if Token_bucket.conforms t.bucket ~now ~bits then begin
        ignore (Queue.pop t.queue);
        t.forwarded <- t.forwarded + 1;
        t.next head;
        drain t
      end
      else begin
        t.draining <- true;
        let missing =
          float_of_int bits -. Token_bucket.level_bits t.bucket ~now
        in
        let wait = missing /. Token_bucket.rate_bps t.bucket in
        ignore
          (Engine.schedule_after t.engine ~delay:(Stdlib.max wait 1e-9)
             (fun () -> drain t))
      end

let send t pkt =
  if Queue.length t.queue >= t.max_queue then begin
    t.dropped <- t.dropped + 1;
    Packet.free pkt
  end
  else begin
    Queue.push pkt t.queue;
    if not t.draining then drain t
  end

let queued t = Queue.length t.queue
let dropped t = t.dropped
let forwarded t = t.forwarded
