(** Random variate generation on top of {!Prng}.

    These are the distributions needed by the paper's Appendix: the two-state
    Markov sources draw geometrically distributed burst lengths and
    exponentially distributed idle periods. *)

val uniform : Prng.t -> lo:float -> hi:float -> float
(** Uniform on [\[lo, hi)].  Requires [lo <= hi]. *)

val exponential : Prng.t -> mean:float -> float
(** Exponential with the given mean (not rate).  Requires [mean > 0]. *)

val geometric : Prng.t -> mean:float -> int
(** Geometric on [{1, 2, ...}] with the given mean.  Requires [mean >= 1].
    This is the number of Bernoulli trials up to and including the first
    success with success probability [1 /. mean]. *)

val bernoulli : Prng.t -> p:float -> bool
(** True with probability [p]. *)

val pareto : Prng.t -> shape:float -> scale:float -> float
(** Pareto (type I) with minimum [scale] and tail index [shape], by
    inversion: heavy-tailed session holding times for the churn workload.
    The mean is [shape *. scale /. (shape -. 1.)] when [shape > 1] and
    infinite otherwise.  Requires both arguments positive. *)

val poisson : Prng.t -> mean:float -> int
(** Poisson-distributed count with the given mean, by inversion for small
    means and normal approximation above 500.  Requires [mean >= 0]. *)
