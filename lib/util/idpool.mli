(** Recyclable integer-id allocator: the flow-slot free list under churn.

    The dense per-flow arrays on the hot path (scheduler weights, class
    maps, meters) are indexed by flow id, so ids handed to short-lived
    sessions must be recycled or the arrays grow with *cumulative*
    sessions instead of *concurrent* ones.  An [Idpool.t] hands out ids
    from a contiguous range [\[base, base + capacity)], LIFO-recycling
    released slots (maximum reuse stress) and doubling the range only when
    every slot is busy.

    Each slot carries a generation counter, bumped on release: a stored
    [(id, generation)] pair names one *incarnation* of the slot, so a
    stale actor (a departure racing a timeout-teardown, a delayed control
    message) can detect with {!try_release} / {!generation} that the id it
    remembers has moved on — the classic ABA guard.

    Accounting mirrors [Qdisc.pool] / [Packet.pool_stats] and feeds the
    [flow-state] audit invariant: takes = releases + in-use at all times,
    and [bad_releases] (double free, out-of-range) must stay zero.
    {!take} and {!release} allocate nothing once the pool is warm. *)

type t

val create : ?base:int -> ?capacity:int -> unit -> t
(** [create ()] makes an empty pool.  [base] (default 0) offsets every id
    handed out, so session slots can live in a range disjoint from
    statically assigned flow ids.  [capacity] (default 64) is the initial
    slot count; the pool doubles itself when exhausted.  Raises
    [Invalid_argument] on negative [base] or non-positive [capacity]. *)

val take : t -> int
(** Pop a free id (most recently released first).  Grows the pool when no
    slot is free, so it never fails. *)

val release : t -> id:int -> unit
(** Return [id] to the free list and bump its generation.  Releasing an
    id that is out of range or not currently taken only increments
    {!bad_releases} — the audit turns that into a violation. *)

val try_release : t -> id:int -> gen:int -> bool
(** Generation-checked release: succeed only if [id] is taken and its
    current generation is [gen].  A mismatch means the slot was already
    released (and possibly re-taken) by someone else; the call returns
    [false], counts one {!stale_releases}, and touches nothing. *)

val generation : t -> id:int -> int
(** The current generation of [id]'s slot (0 before its first release).
    Raises [Invalid_argument] if [id] is outside the pool's range. *)

val is_taken : t -> id:int -> bool
(** Whether [id] is currently handed out.  Out-of-range ids are [false]. *)

(** {2 Accounting} *)

val base : t -> int
val capacity : t -> int

val in_use : t -> int
(** Ids currently taken; always [takes t - releases t]. *)

val takes : t -> int
val releases : t -> int

val hwm : t -> int
(** High-water mark of {!in_use} — peak concurrent sessions, the figure
    that bounds every dense per-flow array. *)

val bad_releases : t -> int
(** Double or out-of-range releases; any non-zero value is a bug. *)

val stale_releases : t -> int
(** {!try_release} calls that lost the generation race.  Expected under
    churn (a departure racing a soft-state timeout); not a bug. *)
