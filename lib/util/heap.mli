(** Binary min-heap with a user-supplied ordering.

    Backbone of both the discrete-event engine (events keyed by time and a
    sequence number for FIFO tie-breaking) and the deadline-ordered queues of
    FIFO+ and the EDF baselines. *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** Min-heap under [cmp]: {!pop} returns the smallest element.
    [capacity] (default 16) sizes the backing array on the first {!push}
    (allocation is deferred until then because there is no dummy ['a]);
    a heap that never exceeds it never reallocates.  For float-ranked,
    FIFO-tie-broken queues — every packet scheduler — use {!Kheap}
    instead. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val peek : 'a t -> 'a option

val peek_exn : 'a t -> 'a
(** Non-allocating {!peek}; raises [Invalid_argument] when empty.  Guard
    with {!is_empty} on hot paths. *)

val pop : 'a t -> 'a option

val pop_exn : 'a t -> 'a
(** Non-allocating {!pop}; raises [Invalid_argument] when empty.  Guard
    with {!is_empty} on hot paths. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
(** Iterates in unspecified (heap) order. *)

val to_sorted_list : 'a t -> 'a list
(** Non-destructive ascending listing (copies the heap). *)
