(* Hierarchical timing wheel: 4 levels x 32 slots, slot widths of 32^k
   ticks, occupancy bitmaps per level, a one-element staged head, an
   internal sorted "due" run for multi-element ticks, and an overflow
   Kheap for keys beyond the wheels' 32^4-tick horizon.  Inserts are
   index arithmetic (no comparisons); an element cascades toward level 0
   at most three times as the cursor enters its block, so cost per
   element is O(1) amortized.  A single monotone stamp orders equal keys
   FIFO across every path (direct insert, cascade, overflow promotion).

   Hot-path discipline (see DESIGN.md §5): without flambda every float
   that crosses a function boundary — argument or result — is boxed, so
   the drain path moves keys exclusively array-to-array: the due run is
   in-module SoA (not a Kheap, whose [min_key_exn] would box its result)
   with no per-level sift calls — pops take its front, loads are blits —
   cascades re-route elements by reading the source slot's arrays in
   place, [push_from] lets the caller hand over a key by naming a cell of
   its own float array, and the staged head's key lives in a one-element
   float array (a mutable float field of this mixed record would box on
   every write).  Only the cold overflow path pays boxing. *)

let bits = 5
let w = 1 lsl bits (* 32 slots per level *)
let mask = w - 1
let levels = 4
let span1 = w * w
let span2 = w * w * w
let span3 = w * w * w * w (* wheel horizon, ticks *)

type 'a slot = {
  mutable s_keys : float array;
  mutable s_seqs : int array;
  mutable s_data : 'a array;
  mutable s_len : int;
}

type 'a t = {
  dummy : 'a;
  inv_tick : float;
  slots : 'a slot array; (* levels * w, slot [level*32 + idx] *)
  occ : int array; (* per-level occupancy bitmap, bit s = slot s non-empty *)
  overflow : 'a Kheap.t; (* keys beyond the wheel horizon *)
  mutable cursor : int; (* next tick to examine; wheels hold ticks >= this *)
  mutable in_wheels : int; (* elements in the level slots only *)
  mutable len : int;
  mutable next_seq : int;
  (* Due run: elements at ticks the cursor has passed, kept as an
     ascending (key, seq)-sorted segment [d_lo, d_hi) of parallel arrays.
     Pops take the front in O(1) with no re-heapify; a level-0 flush
     bulk-loads at offset 0 (the refill guard has the run empty then) and
     insertion-sorts, which is O(n) for the common all-one-key slot; a
     straggler (a key at an already-passed tick) splices in from the
     tail, one blit. *)
  mutable d_keys : float array;
  mutable d_seqs : int array;
  mutable d_data : 'a array;
  mutable d_lo : int;
  mutable d_hi : int;
  (* Staged minimum: when [h_valid], (h_key, h_seq, h_data) is strictly
     the least pending element and the next pop returns it with three
     loads — no heap traffic.  Filled by [stage], displaced by a push
     with a smaller key. *)
  mutable h_valid : bool;
  h_key : float array; (* length 1 *)
  mutable h_seq : int;
  mutable h_data : 'a;
  (* Batch guard: while a caller fires a [pop_batch] run it arms
     [g_key.(0)] with the largest key still in its buffer; a push with a
     strictly smaller key would belong inside that run, so it sets
     [g_hit] and the caller splices its unfired tail back ([reinsert])
     and re-pops.  Disarmed = [neg_infinity], which no valid key is
     below, so the compare is free when batching is off. *)
  g_key : float array; (* length 1 *)
  mutable g_hit : bool;
}

let create ?(capacity = 16) ~tick ~dummy () =
  if not (tick > 0.) then invalid_arg "Wheel.create: tick must be positive";
  let capacity = Stdlib.max 4 capacity in
  {
    dummy;
    inv_tick = 1. /. tick;
    slots =
      Array.init (levels * w) (fun _ ->
          { s_keys = [||]; s_seqs = [||]; s_data = [||]; s_len = 0 });
    occ = Array.make levels 0;
    overflow = Kheap.create ~capacity ~dummy ();
    cursor = 0;
    in_wheels = 0;
    len = 0;
    next_seq = 0;
    d_keys = Array.make capacity 0.;
    d_seqs = Array.make capacity 0;
    d_data = Array.make capacity dummy;
    d_lo = 0;
    d_hi = 0;
    h_valid = false;
    h_key = Array.make 1 0.;
    h_seq = 0;
    h_data = dummy;
    g_key = Array.make 1 neg_infinity;
    g_hit = false;
  }

let length t = t.len
let is_empty t = t.len = 0

(* Keys whose tick would overflow the int range live in the overflow heap;
   comparing the scaled key against a ceiling below 2^62 keeps
   [int_of_float] in its defined domain. *)
let tick_of t key =
  let scaled = key *. t.inv_tick in
  if scaled >= 4.0e18 then max_int else int_of_float scaled

(* ---- due run (in-module so float keys never cross a call) ------------ *)

(* Make room for one more element at [d_hi]: slide the run back to offset
   0 when pops have opened space at the front, double otherwise. *)
let due_room t =
  let cap = Array.length t.d_keys in
  if t.d_hi = cap then begin
    let n = t.d_hi - t.d_lo in
    if t.d_lo > 0 then begin
      Array.blit t.d_keys t.d_lo t.d_keys 0 n;
      Array.blit t.d_seqs t.d_lo t.d_seqs 0 n;
      Array.blit t.d_data t.d_lo t.d_data 0 n;
      Array.fill t.d_data n t.d_lo t.dummy
    end
    else begin
      let keys = Array.make (2 * cap) 0. in
      let seqs = Array.make (2 * cap) 0 in
      let data = Array.make (2 * cap) t.dummy in
      Array.blit t.d_keys 0 keys 0 n;
      Array.blit t.d_seqs 0 seqs 0 n;
      Array.blit t.d_data 0 data 0 n;
      t.d_keys <- keys;
      t.d_seqs <- seqs;
      t.d_data <- data
    end;
    t.d_lo <- 0;
    t.d_hi <- n
  end

(* Splice the element whose key sits in [keys.(i)] into the sorted run.
   A straggler is the newest insert (largest seq), so it belongs at or
   near the tail — scan backward, shift the suffix up by one blit.  The
   key is loaded before [due_room] may compact or swap the arrays, which
   matters when [keys] is the due array itself (the scratch cell). *)
let due_insert_cell t (keys : float array) i seq x =
  let k = keys.(i) in
  due_room t;
  let lo = t.d_lo in
  let hi = t.d_hi in
  let j = ref hi in
  while
    !j > lo
    &&
    let pk = t.d_keys.(!j - 1) in
    k < pk || (k = pk && seq < t.d_seqs.(!j - 1))
  do
    decr j
  done;
  let j = !j in
  let m = hi - j in
  if m > 0 then begin
    Array.blit t.d_keys j t.d_keys (j + 1) m;
    Array.blit t.d_seqs j t.d_seqs (j + 1) m;
    Array.blit t.d_data j t.d_data (j + 1) m
  end;
  t.d_keys.(j) <- k;
  t.d_seqs.(j) <- seq;
  t.d_data.(j) <- x;
  t.d_hi <- hi + 1

(* Move the run's front into the staged head; reset offsets on empty so
   the next flush bulk-loads at 0 with the whole capacity ahead. *)
let due_pop_to_head t =
  let lo = t.d_lo in
  t.h_key.(0) <- t.d_keys.(lo);
  t.h_seq <- t.d_seqs.(lo);
  t.h_data <- t.d_data.(lo);
  t.d_data.(lo) <- t.dummy;
  t.h_valid <- true;
  if lo + 1 = t.d_hi then begin
    t.d_lo <- 0;
    t.d_hi <- 0
  end
  else t.d_lo <- lo + 1

(* ---- wheel slots ------------------------------------------------------ *)

let slot_grow (s : _ slot) dummy =
  let cap = Stdlib.max 4 (2 * Array.length s.s_keys) in
  let keys = Array.make cap 0. in
  let seqs = Array.make cap 0 in
  let data = Array.make cap dummy in
  Array.blit s.s_keys 0 keys 0 s.s_len;
  Array.blit s.s_seqs 0 seqs 0 s.s_len;
  Array.blit s.s_data 0 data 0 s.s_len;
  s.s_keys <- keys;
  s.s_seqs <- seqs;
  s.s_data <- data

(* Append to slot [li], key read from [keys.(i)] (array-to-array). *)
let add_slot_cell t level li (keys : float array) i seq x =
  let s = t.slots.(li) in
  if s.s_len = Array.length s.s_keys then slot_grow s t.dummy;
  let n = s.s_len in
  s.s_keys.(n) <- keys.(i);
  s.s_seqs.(n) <- seq;
  s.s_data.(n) <- x;
  s.s_len <- n + 1;
  t.occ.(level) <- t.occ.(level) lor (1 lsl (li land mask));
  t.in_wheels <- t.in_wheels + 1

(* Route the element whose key sits in [keys.(i)] to the finest level
   whose block index is within one rotation (32 blocks) of the cursor's.
   Comparing block indices — not raw tick distance — is what keeps every
   slot single-block: with a distance test, [d < span1] spans 33 distinct
   level-1 blocks when the cursor is mid-block, and the 33rd aliases onto
   the cursor's own slot one rotation early.  Ticks already passed go
   straight to [due]. *)
let route_cell t (keys : float array) i seq x =
  let key = keys.(i) in
  let scaled = key *. t.inv_tick in
  let tick = if scaled >= 4.0e18 then max_int else int_of_float scaled in
  let c = t.cursor in
  if tick < c then due_insert_cell t keys i seq x
  else if tick - c < w then add_slot_cell t 0 (tick land mask) keys i seq x
  else if (tick lsr bits) - (c lsr bits) < w then
    add_slot_cell t 1 (w lor ((tick lsr bits) land mask)) keys i seq x
  else if (tick lsr (2 * bits)) - (c lsr (2 * bits)) < w then
    add_slot_cell t 2 ((2 * w) lor ((tick lsr (2 * bits)) land mask)) keys i
      seq x
  else if (tick lsr (3 * bits)) - (c lsr (3 * bits)) < w then
    add_slot_cell t 3 ((3 * w) lor ((tick lsr (3 * bits)) land mask)) keys i
      seq x
  else Kheap.push_pinned t.overflow ~key ~seq x

(* Boxed-key entry ([push], overflow promotion): park the key in the head
   register's spare... no — in a scratch cell, then route array-to-array. *)
let insert t ~key ~seq x =
  due_room t;
  (* Use the due arrays' free tail cell as the scratch the router reads
     from; every router target loads the key before touching the due run,
     so the cell is dead again by the time a splice could slide over it. *)
  t.d_keys.(t.d_hi) <- key;
  route_cell t t.d_keys t.d_hi seq x

let push t ~key x =
  if not (key >= 0.) then invalid_arg "Wheel.push: key must be >= 0";
  if key < t.g_key.(0) then t.g_hit <- true;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if t.h_valid && key < t.h_key.(0) then begin
    (* Displace the staged head: its (key, seq) is larger, so it re-routes
       by the normal rules (ties keep the head — it has the older seq). *)
    let hs = t.h_seq and hx = t.h_data in
    t.h_seq <- seq;
    t.h_data <- x;
    let k = t.h_key.(0) in
    t.h_key.(0) <- key;
    insert t ~key:k ~seq:hs hx
  end
  else insert t ~key ~seq x;
  t.len <- t.len + 1

let push_from t (keys : float array) i x =
  if not (keys.(i) >= 0.) then invalid_arg "Wheel.push_from: key must be >= 0";
  if keys.(i) < t.g_key.(0) then t.g_hit <- true;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if t.h_valid && keys.(i) < t.h_key.(0) then begin
    let hs = t.h_seq and hx = t.h_data in
    t.h_seq <- seq;
    t.h_data <- x;
    (* Swap the smaller key into the head via the scratch cell, then
       route the displaced head. *)
    due_room t;
    t.d_keys.(t.d_hi) <- t.h_key.(0);
    t.h_key.(0) <- keys.(i);
    route_cell t t.d_keys t.d_hi hs hx
  end
  else route_cell t keys i seq x;
  t.len <- t.len + 1

(* Empty a slot back through the router: a level-0 slot's elements all
   share a cursor-passed tick and fall into [due]; a higher slot's
   redistribute at least one level down (the cursor has entered their
   block).  Payload cells are cleared so popped elements aren't kept
   live; key/seq cells are plain numbers and can stay. *)
let flush_slot t level idx =
  let s = t.slots.((level lsl bits) lor idx) in
  let n = s.s_len in
  t.occ.(level) <- t.occ.(level) land lnot (1 lsl idx);
  t.in_wheels <- t.in_wheels - n;
  s.s_len <- 0;
  for i = 0 to n - 1 do
    route_cell t s.s_keys i s.s_seqs.(i) s.s_data.(i);
    s.s_data.(i) <- t.dummy
  done

(* Bulk-load a level-0 slot into the due run — only legal when the run is
   empty (the refill guard ensures it).  One blit per array, then an
   insertion sort on (key, seq): slot order is push order, so seqs ascend
   and the sort is a no-op pass whenever the keys agree (the common case —
   one tick usually holds one instant), and near-linear otherwise. *)
let flush_to_due t si =
  let s = t.slots.(si) in
  let n = s.s_len in
  t.occ.(0) <- t.occ.(0) land lnot (1 lsl si);
  t.in_wheels <- t.in_wheels - n;
  s.s_len <- 0;
  if Array.length t.d_keys < n then begin
    let cap = ref (2 * Array.length t.d_keys) in
    while !cap < n do
      cap := 2 * !cap
    done;
    t.d_keys <- Array.make !cap 0.;
    t.d_seqs <- Array.make !cap 0;
    t.d_data <- Array.make !cap t.dummy
  end;
  Array.blit s.s_keys 0 t.d_keys 0 n;
  Array.blit s.s_seqs 0 t.d_seqs 0 n;
  Array.blit s.s_data 0 t.d_data 0 n;
  Array.fill s.s_data 0 n t.dummy;
  t.d_lo <- 0;
  t.d_hi <- n;
  for i = 1 to n - 1 do
    let k = t.d_keys.(i) in
    let sq = t.d_seqs.(i) in
    if
      let pk = t.d_keys.(i - 1) in
      k < pk || (k = pk && sq < t.d_seqs.(i - 1))
    then begin
      let x = t.d_data.(i) in
      let j = ref i in
      while
        !j > 0
        &&
        let pk = t.d_keys.(!j - 1) in
        k < pk || (k = pk && sq < t.d_seqs.(!j - 1))
      do
        t.d_keys.(!j) <- t.d_keys.(!j - 1);
        t.d_seqs.(!j) <- t.d_seqs.(!j - 1);
        t.d_data.(!j) <- t.d_data.(!j - 1);
        decr j
      done;
      t.d_keys.(!j) <- k;
      t.d_seqs.(!j) <- sq;
      t.d_data.(!j) <- x
    end
  done

(* Pull overflow elements that now fit under the wheel horizon — the end
   of the level-3 rotation the cursor is in, matching the router's block
   test so a promoted element never lands back in overflow. *)
let promote_overflow t =
  let horizon = ((t.cursor lsr (3 * bits)) + w) lsl (3 * bits) in
  while
    (not (Kheap.is_empty t.overflow))
    && tick_of t (Kheap.min_key_exn t.overflow) < horizon
  do
    let key = Kheap.min_key_exn t.overflow in
    let seq = Kheap.min_seq_exn t.overflow in
    let x = Kheap.pop_exn t.overflow in
    insert t ~key ~seq x
  done

(* Index of the lowest set bit (32-bit de Bruijn; [x] has a bit below 32). *)
let debruijn = 0x077CB531

let ctz_table =
  let tbl = Array.make 32 0 in
  for i = 0 to 31 do
    tbl.((((1 lsl i) * debruijn) land 0xFFFFFFFF) lsr 27) <- i
  done;
  tbl

let lowest_bit x = ctz_table.((((x land -x) * debruijn) land 0xFFFFFFFF) lsr 27)

(* Redistribute every coarser-level slot whose block the cursor has just
   entered at [nb] (a level-1 block start), finest last so a level-2
   flush can feed the level-1 slot about to be flushed.  Harmless to
   repeat for the same block: while the cursor is inside block [q], no
   insert targets a level-k slot at the cursor's own index (the block
   test routes same-block ticks at least one level down), so the slots
   stay empty once flushed. *)
let cascade t nb =
  if nb land (span3 - 1) = 0 then promote_overflow t;
  if nb land (span2 - 1) = 0 then flush_slot t 3 ((nb lsr (3 * bits)) land mask);
  if nb land (span1 - 1) = 0 then flush_slot t 2 ((nb lsr (2 * bits)) land mask);
  flush_slot t 1 ((nb lsr bits) land mask)

(* Walk the cursor to the next occupied tick and stage its least element —
   straight into the head register when the slot holds exactly one (the
   common case at simulation densities), through [due] otherwise.  The
   cascade runs whenever the cursor sits on a block boundary — crucially
   also when a level-0 flush carried it there (slot 31), not just the
   empty-block crossing, or the freshly entered block's un-cascaded
   elements would be invisible to the level-0 scan and drain late.  Stops
   without advancing past [limit_tick] when everything nearer is empty. *)
let refill t ~limit_tick =
  let continue = ref true in
  while !continue && (not t.h_valid) && t.d_lo = t.d_hi do
    if t.in_wheels = 0 then
      if Kheap.is_empty t.overflow then continue := false
      else begin
        (* Jump the cursor straight to the earliest far-future element. *)
        let target = tick_of t (Kheap.min_key_exn t.overflow) in
        if target > limit_tick then continue := false
        else begin
          t.cursor <- target;
          promote_overflow t
        end
      end
    else begin
      if t.cursor land mask = 0 then cascade t t.cursor;
      let base = t.cursor land lnot mask in
      let above = t.occ.(0) land ((-1) lsl (t.cursor land mask)) in
      if above <> 0 then begin
        let si = lowest_bit above in
        (* The slot holds exactly one tick's elements; level-0 bits at or
           above the cursor's index are this rotation, hence due next.
           Step the cursor past the tick BEFORE flushing so the elements
           route into [due] rather than back into this slot. *)
        t.cursor <- (base lor si) + 1;
        let s = t.slots.(si) in
        if s.s_len = 1 then begin
          (* Sole element of the next occupied tick: it is the global
             minimum (due is empty, wheels hold later ticks), so stage it
             directly and skip the due heap. *)
          t.occ.(0) <- t.occ.(0) land lnot (1 lsl si);
          t.in_wheels <- t.in_wheels - 1;
          s.s_len <- 0;
          t.h_key.(0) <- s.s_keys.(0);
          t.h_seq <- s.s_seqs.(0);
          t.h_data <- s.s_data.(0);
          s.s_data.(0) <- t.dummy;
          t.h_valid <- true
        end
        else flush_to_due t si
      end
      else begin
        (* Nothing due in this level-0 block: jump, don't step.  A tick
           within 32 of the cursor may sit wrapped in the NEXT block's
           level-0 slot (bits below the cursor's index) — then advance
           one block.  Otherwise the next element lives in the nearest
           occupied coarser slot AHEAD in its rotation (bits above the
           cursor's own index; cyclically-lower bits are a rotation away),
           and the cursor can land straight on that block's start: every
           skipped block entry would only have flushed slots the bitmaps
           just said are empty.  A level whose only occupants are wrapped
           hops one of its spans instead, so no boundary cascade that
           could matter is skipped. *)
        let nb =
          if t.occ.(0) land ((1 lsl (t.cursor land mask)) - 1) <> 0 then
            base + w
          else begin
            let o1 = t.occ.(1) in
            let above1 =
              o1 land ((-1) lsl (((t.cursor lsr bits) land mask) + 1))
            in
            if above1 <> 0 then
              t.cursor land lnot (span1 - 1) lor (lowest_bit above1 lsl bits)
            else if o1 <> 0 then
              (* Wrapped level-1 slots: exactly one rotation ahead, and
                 the boundary's cascade must run (its level-2 slot may
                 hold nearer elements) — hop one span1, don't aim. *)
              (t.cursor land lnot (span1 - 1)) + span1
            else begin
              let o2 = t.occ.(2) in
              let above2 =
                o2 land ((-1) lsl (((t.cursor lsr (2 * bits)) land mask) + 1))
              in
              if above2 <> 0 then
                t.cursor
                land lnot (span2 - 1)
                lor (lowest_bit above2 lsl (2 * bits))
              else if o2 <> 0 then (t.cursor land lnot (span2 - 1)) + span2
              else begin
                let o3 = t.occ.(3) in
                let above3 =
                  o3 land ((-1) lsl (((t.cursor lsr (3 * bits)) land mask) + 1))
                in
                if above3 <> 0 then
                  t.cursor
                  land lnot (span3 - 1)
                  lor (lowest_bit above3 lsl (3 * bits))
                else (t.cursor land lnot (span3 - 1)) + span3
              end
            end
          end
        in
        if nb > limit_tick then continue := false else t.cursor <- nb
      end
    end
  done

(* Ensure the head register holds the pending minimum, walking the cursor
   no further than [limit_tick]; [t.h_valid] stays false only when the
   limit cut the walk short (or the wheel is empty). *)
let stage t ~limit_tick =
  if not t.h_valid then begin
    if t.d_lo = t.d_hi then refill t ~limit_tick;
    if (not t.h_valid) && t.d_hi > t.d_lo then
      (* Multi-element tick (or same-tick stragglers): the due run's
         front is the global minimum — due ticks precede the cursor,
         wheel ticks follow it, and the head is empty. *)
      due_pop_to_head t
  end

let next_due t ~until =
  if t.h_valid then t.h_key.(0) <= until
  else if t.len = 0 then false
  else begin
    stage t ~limit_tick:(tick_of t until);
    t.h_valid && t.h_key.(0) <= until
  end

let min_key_exn t =
  if t.len = 0 then invalid_arg "Wheel.min_key_exn: empty";
  stage t ~limit_tick:max_int;
  t.h_key.(0)

let pop_exn t =
  if t.len = 0 then invalid_arg "Wheel.pop_exn: empty";
  stage t ~limit_tick:max_int;
  t.h_valid <- false;
  t.len <- t.len - 1;
  let x = t.h_data in
  t.h_data <- t.dummy;
  x

let take_head t =
  t.h_valid <- false;
  t.len <- t.len - 1;
  let x = t.h_data in
  t.h_data <- t.dummy;
  x

let pop_due t ~until ~none =
  if t.h_valid then
    if t.h_key.(0) <= until then take_head t else none
  else if t.len = 0 then none
  else begin
    stage t ~limit_tick:(tick_of t until);
    if t.h_valid && t.h_key.(0) <= until then take_head t else none
  end

(* Pop up to [Array.length data] due elements in one call: the staged
   head plus the due run's prefix with key <= until — a single tick's
   cross-section, copied with a straight loop (the run is already
   (key, seq)-sorted and holds only cursor-passed ticks).  No restaging
   inside the call: elements of later ticks wait for the next batch, so
   a batch never reaches past what one [stage] proved due, and the
   caller's firing loop re-enters here exactly once per tick instead of
   once per event. *)
let pop_batch t ~until ~(keys : float array) ~(seqs : int array)
    (data : 'a array) =
  if (not t.h_valid) && t.len > 0 then stage t ~limit_tick:(tick_of t until);
  if not (t.h_valid && t.h_key.(0) <= until) then 0
  else begin
    keys.(0) <- t.h_key.(0);
    seqs.(0) <- t.h_seq;
    data.(0) <- take_head t;
    (* [take_head] already decremented [len] for the head. *)
    let cap = Array.length data in
    let n = ref 1 in
    let lo = ref t.d_lo in
    let hi = t.d_hi in
    while !n < cap && !lo < hi && t.d_keys.(!lo) <= until do
      keys.(!n) <- t.d_keys.(!lo);
      seqs.(!n) <- t.d_seqs.(!lo);
      data.(!n) <- t.d_data.(!lo);
      t.d_data.(!lo) <- t.dummy;
      incr n;
      incr lo
    done;
    if !lo = hi then begin
      t.d_lo <- 0;
      t.d_hi <- 0
    end
    else t.d_lo <- !lo;
    t.len <- t.len - (!n - 1);
    !n
  end

let guard t = t.g_key
let guard_hit t = t.g_hit

let guard_clear t =
  t.g_key.(0) <- neg_infinity;
  t.g_hit <- false

(* Splice an element popped by [pop_batch] back in under its ORIGINAL
   sequence stamp — re-[push]ing would mint a newer one and lose the FIFO
   tie against the interloper that triggered the guard.  Cold path (guard
   hits only), so the boxed [~key] is acceptable. *)
let reinsert t ~key ~seq x =
  insert t ~key ~seq x;
  t.len <- t.len + 1

let clear t =
  Array.iter
    (fun s ->
      Array.fill s.s_data 0 s.s_len t.dummy;
      s.s_len <- 0)
    t.slots;
  Array.fill t.occ 0 levels 0;
  Array.fill t.d_data t.d_lo (t.d_hi - t.d_lo) t.dummy;
  t.d_lo <- 0;
  t.d_hi <- 0;
  Kheap.clear t.overflow;
  t.h_valid <- false;
  t.h_data <- t.dummy;
  t.in_wheels <- 0;
  t.len <- 0
