let check_stable ~lambda ~mu =
  if not (lambda > 0. && mu > lambda) then
    invalid_arg
      (Printf.sprintf "Analytic: need 0 < lambda < mu (lambda=%g, mu=%g)"
         lambda mu)

let mm1_mean_wait ~lambda ~mu =
  check_stable ~lambda ~mu;
  let rho = lambda /. mu in
  rho /. (mu -. lambda)

let mm1_mean_sojourn ~lambda ~mu =
  check_stable ~lambda ~mu;
  1. /. (mu -. lambda)

let mg1_mean_wait ~lambda ~mean_service ~var_service =
  let mu = 1. /. mean_service in
  check_stable ~lambda ~mu;
  let second_moment = var_service +. (mean_service *. mean_service) in
  lambda *. second_moment /. (2. *. (1. -. (lambda *. mean_service)))

let md1_mean_wait ~lambda ~service =
  mg1_mean_wait ~lambda ~mean_service:service ~var_service:0.

let utilization ~lambda ~service = lambda *. service

(* Deterministic (network-calculus) bounds for the bake-off shapers.  All
   take rates in bit/s, bursts and packet sizes in bits, and return
   seconds; every precondition failure raises with the offending values
   so a mis-configured experiment dies loudly instead of reporting a
   negative or infinite bound. *)

let rate_latency_delay ~burst_bits ~rate_bps ~service_rate_bps ~latency_s =
  if not (service_rate_bps > 0. && rate_bps >= 0.
          && rate_bps <= service_rate_bps && burst_bits >= 0.
          && latency_s >= 0.) then
    invalid_arg
      (Printf.sprintf
         "Analytic.rate_latency_delay: need 0 <= rate <= service, \
          service > 0, burst >= 0, latency >= 0 \
          (burst=%g, rate=%g, service=%g, latency=%g)"
         burst_bits rate_bps service_rate_bps latency_s);
  latency_s +. (burst_bits /. service_rate_bps)

let wrr_service ~link_rate_bps ~weight ~total_weight ~max_packet_bits =
  if not (link_rate_bps > 0. && weight > 0 && total_weight >= weight
          && max_packet_bits > 0) then
    invalid_arg
      (Printf.sprintf
         "Analytic.wrr_service: need 0 < weight <= total_weight, \
          link_rate > 0, max_packet > 0 \
          (link_rate=%g, weight=%d, total_weight=%d, max_packet=%d)"
         link_rate_bps weight total_weight max_packet_bits);
  let l = float max_packet_bits in
  let rate = float weight /. float total_weight *. link_rate_bps in
  let latency =
    float (total_weight - weight + 1) *. l /. link_rate_bps in
  (rate, latency)

let mc_fifo_delay ~link_rate_bps ~total_burst_bits ~total_rate_bps
    ~max_packet_bits =
  if not (link_rate_bps > 0. && total_burst_bits >= 0.
          && total_rate_bps >= 0. && total_rate_bps < link_rate_bps
          && max_packet_bits > 0) then
    invalid_arg
      (Printf.sprintf
         "Analytic.mc_fifo_delay: need 0 <= total_rate < link_rate, \
          total_burst >= 0, max_packet > 0 \
          (link_rate=%g, total_burst=%g, total_rate=%g, max_packet=%d)"
         link_rate_bps total_burst_bits total_rate_bps max_packet_bits);
  (total_burst_bits +. float max_packet_bits) /. link_rate_bps

let sp_service ~link_rate_bps ~higher_rate_bps ~higher_burst_bits
    ~max_packet_bits =
  if not (link_rate_bps > 0. && higher_rate_bps >= 0.
          && higher_rate_bps < link_rate_bps && higher_burst_bits >= 0.
          && max_packet_bits > 0) then
    invalid_arg
      (Printf.sprintf
         "Analytic.sp_service: need 0 <= higher_rate < link_rate, \
          higher_burst >= 0, max_packet > 0 \
          (link_rate=%g, higher_rate=%g, higher_burst=%g, max_packet=%d)"
         link_rate_bps higher_rate_bps higher_burst_bits max_packet_bits);
  let rate = link_rate_bps -. higher_rate_bps in
  let latency = (higher_burst_bits +. float max_packet_bits) /. rate in
  (rate, latency)

let cbs_latency ~link_rate_bps ~idle_slope_bps ~higher_slope_bps
    ~max_packet_bits =
  if not (link_rate_bps > 0. && idle_slope_bps > 0.
          && idle_slope_bps <= link_rate_bps && higher_slope_bps >= 0.
          && higher_slope_bps < link_rate_bps && max_packet_bits > 0) then
    invalid_arg
      (Printf.sprintf
         "Analytic.cbs_latency: need 0 < idle_slope <= link_rate, \
          0 <= higher_slope < link_rate, max_packet > 0 \
          (link_rate=%g, idle_slope=%g, higher_slope=%g, max_packet=%d)"
         link_rate_bps idle_slope_bps higher_slope_bps max_packet_bits);
  let l = float max_packet_bits in
  let base = (2. *. l /. idle_slope_bps) +. (2. *. l /. link_rate_bps) in
  if higher_slope_bps > 0. then
    base +. (3. *. l /. (link_rate_bps -. higher_slope_bps))
  else base
