(* Structure-of-arrays min-heap on (float key, int seq).  The sift loops
   are written as while-loops over local array bindings so every key
   comparison compiles to a bare float compare and the element being
   placed stays in registers; nothing on the push/pop path allocates
   (growth aside). *)

type 'a t = {
  dummy : 'a;
  mutable keys : float array;
  mutable seqs : int array;
  mutable data : 'a array;
  mutable len : int;
  mutable next_seq : int;
}

let create ?(capacity = 16) ~dummy () =
  let capacity = Stdlib.max capacity 1 in
  {
    dummy;
    keys = Array.make capacity 0.;
    seqs = Array.make capacity 0;
    data = Array.make capacity dummy;
    len = 0;
    next_seq = 0;
  }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = 2 * Array.length t.keys in
  let keys = Array.make cap 0. in
  let seqs = Array.make cap 0 in
  let data = Array.make cap t.dummy in
  Array.blit t.keys 0 keys 0 t.len;
  Array.blit t.seqs 0 seqs 0 t.len;
  Array.blit t.data 0 data 0 t.len;
  t.keys <- keys;
  t.seqs <- seqs;
  t.data <- data

let push_pinned t ~key ~seq x =
  if t.len = Array.length t.keys then grow t;
  let keys = t.keys and seqs = t.seqs and data = t.data in
  (* Hole insertion: walk the hole up past every strictly-greater parent,
     then write (key, seq, x) once. *)
  let i = ref t.len in
  t.len <- t.len + 1;
  let placing = ref true in
  while !placing && !i > 0 do
    let p = (!i - 1) / 2 in
    let pk = keys.(p) in
    if pk < key || (pk = key && seqs.(p) < seq) then placing := false
    else begin
      keys.(!i) <- pk;
      seqs.(!i) <- seqs.(p);
      data.(!i) <- data.(p);
      i := p
    end
  done;
  keys.(!i) <- key;
  seqs.(!i) <- seq;
  data.(!i) <- x

let push t ~key x =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  push_pinned t ~key ~seq x

let min_key_exn t =
  if t.len = 0 then invalid_arg "Kheap.min_key_exn: empty";
  t.keys.(0)

let min_seq_exn t =
  if t.len = 0 then invalid_arg "Kheap.min_seq_exn: empty";
  t.seqs.(0)

let peek_exn t =
  if t.len = 0 then invalid_arg "Kheap.peek_exn: empty";
  t.data.(0)

let pop_exn t =
  if t.len = 0 then invalid_arg "Kheap.pop_exn: empty";
  let keys = t.keys and seqs = t.seqs and data = t.data in
  let top = data.(0) in
  let n = t.len - 1 in
  t.len <- n;
  if n = 0 then data.(0) <- t.dummy
  else begin
    (* Sift the last element down from the root hole. *)
    let key = keys.(n) and seq = seqs.(n) and x = data.(n) in
    data.(n) <- t.dummy;
    let i = ref 0 in
    let placing = ref true in
    while !placing do
      let l = (2 * !i) + 1 in
      if l >= n then placing := false
      else begin
        let r = l + 1 in
        let c =
          if
            r < n
            && (keys.(r) < keys.(l)
               || (keys.(r) = keys.(l) && seqs.(r) < seqs.(l)))
          then r
          else l
        in
        let ck = keys.(c) in
        if ck < key || (ck = key && seqs.(c) < seq) then begin
          keys.(!i) <- ck;
          seqs.(!i) <- seqs.(c);
          data.(!i) <- data.(c);
          i := c
        end
        else placing := false
      end
    done;
    keys.(!i) <- key;
    seqs.(!i) <- seq;
    data.(!i) <- x
  end;
  top

let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0
