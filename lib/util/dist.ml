let uniform g ~lo ~hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. Prng.float g)

let exponential g ~mean =
  assert (mean > 0.);
  let u = Prng.float g in
  (* 1 - u is in (0, 1], so log is finite. *)
  -.mean *. log (1.0 -. u)

let geometric g ~mean =
  assert (mean >= 1.);
  if mean = 1. then 1
  else begin
    let p = 1. /. mean in
    let u = Prng.float g in
    (* Inversion: ceil(log(1-u) / log(1-p)) >= 1. *)
    let k = ceil (log (1.0 -. u) /. log (1.0 -. p)) in
    max 1 (int_of_float k)
  end

let bernoulli g ~p = Prng.float g < p

let pareto g ~shape ~scale =
  assert (shape > 0. && scale > 0.);
  let u = Prng.float g in
  (* 1 - u is in (0, 1], so the result is finite and >= scale. *)
  scale /. ((1.0 -. u) ** (1. /. shape))

let poisson g ~mean =
  assert (mean >= 0.);
  if mean = 0. then 0
  else if mean > 500. then begin
    (* Normal approximation with continuity correction: adequate for the
       load-generation uses in this library. *)
    let u1 = Prng.float g and u2 = Prng.float g in
    let z =
      sqrt (-2. *. log (1. -. u1)) *. cos (2. *. Float.pi *. u2)
    in
    max 0 (int_of_float (Float.round (mean +. (sqrt mean *. z))))
  end else begin
    let limit = exp (-.mean) in
    let rec loop k prod =
      if prod <= limit then k else loop (k + 1) (prod *. Prng.float g)
    in
    loop 0 (Prng.float g)
  end
