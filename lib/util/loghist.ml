(* Geometric buckets over a dense int array: [add] must stay allocation-free
   (it runs under the link dequeue tap on every packet), so the index is
   computed with [log10] and everything is stored into preallocated int
   slots.  counts.(0) is underflow, counts.(n + 1) overflow, regular bucket
   [i] lives at [i + 1]. *)

type t = {
  lo : float;
  hi : float;
  per_decade : int;
  scale : float; (* per_decade as float, cached for the index computation *)
  n : int; (* regular buckets *)
  counts : int array;
  mutable total : int;
}

let create ?(lo = 1e-6) ?(hi = 1e3) ?(per_decade = 20) () =
  if not (lo > 0. && hi > lo) then
    invalid_arg "Loghist.create: need 0 < lo < hi";
  if per_decade <= 0 then invalid_arg "Loghist.create: per_decade must be > 0";
  let n =
    int_of_float (Float.ceil (Float.log10 (hi /. lo) *. float_of_int per_decade))
  in
  {
    lo;
    hi;
    per_decade;
    scale = float_of_int per_decade;
    n;
    counts = Array.make (n + 2) 0;
    total = 0;
  }

let add t v =
  let i =
    if v < t.lo then 0
    else
      let k = int_of_float (Float.log10 (v /. t.lo) *. t.scale) in
      if k >= t.n then t.n + 1 else k + 1
  in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let count t = t.total
let underflow t = t.counts.(0)
let overflow t = t.counts.(t.n + 1)
let ratio t = Float.pow 10. (1. /. float_of_int t.per_decade)

let lower_edge t i = t.lo *. Float.pow 10. (float_of_int i /. t.scale)

let representative t i =
  (* Geometric midpoint of regular bucket [i - 1]; the under/overflow
     buckets have no finite midpoint, so report their bounding edge. *)
  if i = 0 then 0.
  else if i = t.n + 1 then t.hi
  else t.lo *. Float.pow 10. ((float_of_int (i - 1) +. 0.5) /. t.scale)

let percentile t p =
  if t.total = 0 then invalid_arg "Loghist.percentile: empty histogram";
  if not (p >= 0. && p <= 100.) then
    invalid_arg "Loghist.percentile: p outside [0, 100]";
  (* Nearest rank: the smallest index whose cumulative count reaches
     ceil(p/100 * total), i.e. the bucket holding the rank'th sample. *)
  let rank =
    Stdlib.max 1 (int_of_float (Float.ceil (p /. 100. *. float_of_int t.total)))
  in
  let i = ref 0 in
  let cum = ref t.counts.(0) in
  while !cum < rank do
    incr i;
    cum := !cum + t.counts.(!i)
  done;
  representative t !i

let buckets t =
  let acc = ref [] in
  for i = t.n downto 1 do
    if t.counts.(i) > 0 then
      acc := (lower_edge t (i - 1), lower_edge t i, t.counts.(i)) :: !acc
  done;
  !acc

let merge_into ~dst t =
  if dst.lo <> t.lo || dst.hi <> t.hi || dst.per_decade <> t.per_decade then
    invalid_arg "Loghist.merge_into: mismatched bucket layouts";
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) t.counts;
  dst.total <- dst.total + t.total
