type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable len : int;
  capacity : int;
}

(* The array is allocated lazily on first push because we have no dummy 'a
   value; that first allocation honors [capacity], so a correctly-sized
   heap never reallocates afterwards. *)
let create ?(capacity = 16) ~cmp () =
  { cmp; data = [||]; len = 0; capacity = Stdlib.max capacity 1 }

let length t = t.len
let is_empty t = t.len = 0

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < t.len && t.cmp t.data.(left) t.data.(!smallest) < 0 then
    smallest := left;
  if right < t.len && t.cmp t.data.(right) t.data.(!smallest) < 0 then
    smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t x =
  if t.len = Array.length t.data then begin
    let cap = if t.len = 0 then t.capacity else 2 * t.len in
    let bigger = Array.make cap x in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek t = if t.len = 0 then None else Some t.data.(0)

let peek_exn t =
  if t.len = 0 then invalid_arg "Heap.peek_exn: empty";
  t.data.(0)

(* The engine drains millions of events per run through this path, so it
   must not allocate: no [Some] per element, in contrast to [pop]. *)
let pop_exn t =
  if t.len = 0 then invalid_arg "Heap.pop_exn: empty";
  let top = t.data.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.data.(0) <- t.data.(t.len);
    sift_down t 0
  end;
  top

let pop t = if t.len = 0 then None else Some (pop_exn t)

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let to_sorted_list t =
  let copy =
    { cmp = t.cmp; data = Array.sub t.data 0 t.len; len = t.len;
      capacity = t.capacity }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
