type 'a t = {
  dummy : 'a;
  mutable data : 'a array;
  mutable head : int;
  mutable len : int;
}

let create ?(capacity = 16) ~dummy () =
  let capacity = Stdlib.max capacity 1 in
  { dummy; data = Array.make capacity dummy; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) t.dummy in
  (* Linearize: head moves to slot 0 of the doubled array. *)
  let first = Stdlib.min t.len (cap - t.head) in
  Array.blit t.data t.head data 0 first;
  Array.blit t.data 0 data first (t.len - first);
  t.data <- data;
  t.head <- 0

let push t x =
  if t.len = Array.length t.data then grow t;
  let cap = Array.length t.data in
  let tail = t.head + t.len in
  let tail = if tail >= cap then tail - cap else tail in
  t.data.(tail) <- x;
  t.len <- t.len + 1

let peek_exn t =
  if t.len = 0 then invalid_arg "Ring.peek_exn: empty";
  t.data.(t.head)

let pop_exn t =
  if t.len = 0 then invalid_arg "Ring.pop_exn: empty";
  let x = t.data.(t.head) in
  t.data.(t.head) <- t.dummy;
  let head = t.head + 1 in
  t.head <- (if head = Array.length t.data then 0 else head);
  t.len <- t.len - 1;
  x

let clear t =
  Array.fill t.data 0 (Array.length t.data) t.dummy;
  t.head <- 0;
  t.len <- 0
