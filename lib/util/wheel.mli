(** Hierarchical timing wheel — the engine's pending-event store.

    A calendar queue for monotone event-driven simulation: keys are
    absolute times (seconds), inserts are O(1) amortized at any event
    density, and extraction yields elements in exact [(key, seq)] order —
    equal keys drain FIFO in push order, the same contract as {!Kheap}.

    Layout: four wheel levels of 32 slots each, slot widths of 1, 32,
    32{^2} and 32{^3} ticks, so the wheels span 32{^4} (~10{^6}) ticks
    ahead of the cursor.  Keys beyond that horizon wait in an overflow
    {!Kheap} and are promoted into the wheels when the cursor approaches
    (far-future timers — retransmission backstops, end-of-run probes —
    cost two heap ops instead of stretching the wheel).  Each insert lands
    in a slot by pure index arithmetic (no comparisons); an element
    cascades down at most three times as the cursor reaches its block, and
    per-level occupancy bitmaps let the cursor skip runs of empty slots in
    O(1).  The current tick's elements sit in an internal sorted "due"
    run (struct-of-arrays, popped from the front) that restores exact
    sub-tick order, so quantization never reorders events.

    The structure is monotone: {!pop_exn} advances an internal cursor, and
    a key earlier than an already-popped key may not be inserted (the
    engine's no-scheduling-in-the-past rule).  Keys at or before the
    cursor are legal (events scheduled for "now") and drain in correct
    order.  Keys must be finite and non-negative; NaN is rejected by the
    float-to-tick conversion's domain. *)

type 'a t

val create : ?capacity:int -> tick:float -> dummy:'a -> unit -> 'a t
(** [create ~tick ~dummy ()] builds an empty wheel with level-0 slots
    [tick] seconds wide.  [tick] bounds quantization of the cursor walk,
    not of ordering (which is exact); pick it near the smallest common
    event spacing — the engine uses 1 µs.  [capacity] presizes the due
    and overflow heaps.  [dummy] fills vacated payload slots so popped
    elements are not kept live. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> key:float -> 'a -> unit
(** Insert under [key], tie-broken FIFO against every other insert
    (a single monotone stamp across all levels, cascades included). *)

val push_from : 'a t -> float array -> int -> 'a -> unit
(** [push_from t keys i x] is [push t ~key:keys.(i) x] with the key read
    in place from the caller's array — the allocation-free entry for hot
    paths, since a float argument is boxed at every call boundary without
    flambda.  The engine hands over a cell of its event-time arena. *)

val next_due : 'a t -> until:float -> bool
(** [next_due t ~until] is [true] when the minimum pending key is
    [<= until], advancing the cursor no further than [until]'s tick — the
    non-allocating guard for a drain loop ([run ~until] peeks with this,
    then {!pop_exn}s).  Pass [infinity] for an unbounded check. *)

val min_key_exn : 'a t -> float
(** Minimum pending key; raises [Invalid_argument] when empty.  May walk
    the cursor up to that key's tick. *)

val pop_exn : 'a t -> 'a
(** Remove and return the payload with the minimum [(key, seq)]; raises
    [Invalid_argument] when empty.  The drain path allocates nothing. *)

val pop_due : 'a t -> until:float -> none:'a -> 'a
(** [pop_due t ~until ~none] pops and returns the least-[(key, seq)]
    payload when its key is [<= until], advancing the cursor no further
    than [until]'s tick; returns [none] otherwise.  Fuses {!next_due} +
    {!pop_exn} into one call for the engine's drain loop (an option
    result would allocate). *)

val pop_batch :
  'a t -> until:float -> keys:float array -> seqs:int array -> 'a array -> int
(** [pop_batch t ~until ~keys ~seqs data] pops up to [Array.length data]
    elements with key [<= until] into the caller's parallel buffers —
    [(keys.(i), seqs.(i), data.(i))] for [i < n], ascending [(key, seq)]
    — and returns the count [n] (0 when nothing is due).  One call
    yields at most one tick's cross-section (the staged head plus the
    internal due run), so a drain loop calls it once per occupied tick
    instead of once per event; all three buffers must be at least
    [Array.length data] long.  Allocation-free.

    Popped elements leave the wheel immediately.  A caller that fires
    them one by one while new keys arrive must arm the {!guard} with the
    largest key still unfired; when {!guard_hit} reports an intervening
    smaller key, {!reinsert} the unfired tail (original seqs!) and
    re-pop, or events would fire out of order. *)

val guard : 'a t -> float array
(** The one-cell guard register for {!pop_batch} callers: store the
    largest key of the batch tail still to be fired into
    [(guard t).(0)] (an in-place float-array write, so arming never
    boxes), and [neg_infinity] to disarm.  While armed, any {!push} or
    {!push_from} whose key is strictly below the armed value sets the
    {!guard_hit} flag.  Initially disarmed. *)

val guard_hit : 'a t -> bool
(** Whether a push undercut the armed {!guard} since the last
    {!guard_clear}. *)

val guard_clear : 'a t -> unit
(** Disarm the {!guard} and reset {!guard_hit}. *)

val reinsert : 'a t -> key:float -> seq:int -> 'a -> unit
(** [reinsert t ~key ~seq x] returns an element popped by {!pop_batch}
    to the wheel under its original sequence stamp, preserving FIFO ties
    against elements pushed since.  Only sound for [(key, seq)] pairs
    obtained from {!pop_batch} and not yet fired; a fresh insert must
    use {!push}. *)

val clear : 'a t -> unit
(** Empty the wheel without rewinding the cursor (the monotone lower
    bound on keys survives, as after draining by hand). *)
