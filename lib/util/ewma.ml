(* All-float record: OCaml stores it flat, so [update] writes both fields
   in place without boxing — it runs once per packet on the FIFO+ and CSZ
   dequeue paths.  [n] counts observations; float precision is exact far
   beyond any simulation length. *)
type t = { gain : float; mutable avg : float; mutable n : float }

let create ?(init = 0.) ~gain () =
  assert (gain > 0. && gain <= 1.);
  { gain; avg = init; n = 0. }

let update t x =
  if t.n = 0. then t.avg <- x
  else t.avg <- t.avg +. (t.gain *. (x -. t.avg));
  t.n <- t.n +. 1.

let value t = t.avg
let count t = int_of_float t.n
