(** Growable circular FIFO buffer.

    A drop-in for [Stdlib.Queue] on packet hot paths: one flat payload
    array instead of a cons cell per element, so the steady-state
    push→pop cycle allocates nothing.  Used by the strictly-FIFO
    schedulers (FIFO, the per-flow queues of DRR and HRR, Stop-and-Go's
    frame queue); ranked queues use {!Kheap}. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [capacity] (default 16) is allocated up front.  [dummy] fills vacated
    slots so popped elements are not kept live by the buffer. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
(** Append at the tail. *)

val peek_exn : 'a t -> 'a
(** Head element without removing it; raises [Invalid_argument] when
    empty. *)

val pop_exn : 'a t -> 'a
(** Remove and return the head; raises when empty.  Guard with
    {!is_empty}: the drain path allocates nothing. *)

val clear : 'a t -> unit
