(** Float-keyed binary min-heap with FIFO tie-breaking — the ranked-queue
    hot path shared by every time-stamp and deadline scheduler.

    Every ranked scheduler in the library (WFQ, VirtualClock, EDF, FIFO+,
    Jitter-EDD, and the inner queues of the unified CSZ scheduler) orders
    packets by a float rank — a virtual finish time or a deadline — and
    breaks ties in arrival order.  This heap bakes that exact shape in:
    structure-of-arrays storage ([float array] keys, [int array] tie-break
    sequence numbers, payload array), monomorphic float comparison (no
    polymorphic-[compare] C call per sift step, no closure dispatch), and a
    non-allocating [is_empty]/[pop_exn] drain.  The steady-state
    push→pop cycle allocates nothing.

    Equal keys drain in ascending sequence order.  {!push} stamps each
    element from an internal monotone counter, so pushes drain FIFO within
    a key; {!push_pinned} re-inserts an element under a caller-kept
    sequence number (a scheduler un-committing a packet, Jitter-EDD
    promoting a held packet), preserving its original rank among its
    contemporaries.  Pinned sequence numbers must come from the same
    counter-space as the heap's own stamps (i.e. from entries previously
    popped off this heap, or a single external counter used for every push)
    or ties become ambiguous.

    Keys must not be NaN (every rank in the library is a finite time).
    For generic orderings — the event heap of the engine — use {!Heap}. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [capacity] (default 16) is honored immediately: all three arrays are
    allocated to it up front, so a correctly-sized heap never reallocates.
    [dummy] fills vacated payload slots so popped elements are not kept
    live by the heap. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> key:float -> 'a -> unit
(** Insert under [key], tie-broken FIFO against other {!push}es. *)

val push_pinned : 'a t -> key:float -> seq:int -> 'a -> unit
(** Insert under [key] with an explicit tie-break rank (see above). *)

val min_key_exn : 'a t -> float
(** Key of the minimum element; raises [Invalid_argument] when empty. *)

val min_seq_exn : 'a t -> int
(** Sequence number of the minimum element; raises when empty.  Read it
    before {!pop_exn} when re-inserting via {!push_pinned}. *)

val peek_exn : 'a t -> 'a
(** Minimum payload without removing it; raises when empty. *)

val pop_exn : 'a t -> 'a
(** Remove and return the minimum payload; raises when empty.  Guard with
    {!is_empty}: the drain path allocates nothing (no option box). *)

val clear : 'a t -> unit
