(** Closed-form queueing results used to validate the simulator.

    The discrete-event substrate is trusted because, fed textbook arrival
    processes, it reproduces textbook queueing delays: an M/D/1 queue for
    Poisson arrivals of fixed-size packets (the integration suite compares
    simulated FIFO waits against {!md1_mean_wait} to within a few
    percent), and M/M/1 for exponential service as a further reference.

    The second half is deterministic network calculus for the E1 bake-off
    shapers: each function encodes a published per-hop delay bound and is
    registered as an [Ispn_check.Audit] invariant, so [--check] proves
    measured delay <= analytic bound for every delivered packet.  All
    functions raise [Invalid_argument] naming the offending values when a
    precondition is violated (unstable load, zero rates) instead of
    returning a negative or infinite figure. *)

val mm1_mean_wait : lambda:float -> mu:float -> float
(** Mean waiting time (excluding service) in an M/M/1 queue,
    [rho / (mu - lambda)] with [rho = lambda / mu].  Requires
    [0 < lambda < mu]. *)

val mm1_mean_sojourn : lambda:float -> mu:float -> float
(** Mean time in system, [1 / (mu - lambda)]. *)

val md1_mean_wait : lambda:float -> service:float -> float
(** Mean waiting time in an M/D/1 queue (Pollaczek-Khinchine with zero
    service variance): [rho * s / (2 (1 - rho))] where [s] is the fixed
    service time and [rho = lambda * s < 1]. *)

val mg1_mean_wait : lambda:float -> mean_service:float -> var_service:float ->
  float
(** Full Pollaczek-Khinchine mean wait:
    [lambda * E(S^2) / (2 (1 - rho))]. *)

val utilization : lambda:float -> service:float -> float
(** Offered load [rho = lambda * service]. *)

(** {2 Deterministic bounds for the bake-off shapers}

    Rates are bit/s, bursts and packet sizes bits, results seconds. *)

val rate_latency_delay :
  burst_bits:float -> rate_bps:float -> service_rate_bps:float ->
  latency_s:float -> float
(** Worst-case queueing delay of a token-bucket flow (or aggregate)
    [(burst_bits, rate_bps)] through a rate-latency server
    [beta_{service_rate,latency}]: [latency + burst / service_rate]
    (Le Boudec-Thiran Thm 1.4.2 — the horizontal deviation between the
    arrival and service curves).  Requires [rate <= service_rate]. *)

val wrr_service :
  link_rate_bps:float -> weight:int -> total_weight:int ->
  max_packet_bits:int -> float * float
(** [(rate, latency)] of the rate-latency service curve a weighted
    round-robin scheduler guarantees a flow of [weight] among
    [total_weight] (packet-counted weights, one packet per credit): rate
    [w/W * C] and latency [(W - w + 1) * L / C] — the packet-WRR
    specialisation of Constantin et al.'s corrected WRR service curve
    (arXiv:2207.11952, PAPERS.md), which tightens the classical
    [(W - w)]-round latency by accounting for the flow's own first
    packet only once. *)

val mc_fifo_delay :
  link_rate_bps:float -> total_burst_bits:float -> total_rate_bps:float ->
  max_packet_bits:int -> float
(** Per-class = aggregate delay bound at a multiclass FIFO link carrying
    token-bucket classes with total burst [sigma = total_burst_bits] and
    total rate [rho = total_rate_bps < C]: [(sigma + L) / C] (Jiang-Misra,
    PAPERS.md: at a FIFO server every class sees the aggregate's delay, so
    the per-class bound needs no per-class stability slack).  [L] covers
    the packet whose transmission is in progress at arrival. *)

val sp_service :
  link_rate_bps:float -> higher_rate_bps:float -> higher_burst_bits:float ->
  max_packet_bits:int -> float * float
(** [(rate, latency)] of the rate-latency service curve a strict-priority
    class sees below token-bucket higher-priority interference
    [(higher_burst_bits, higher_rate_bps)]: leftover rate
    [C - higher_rate] and latency [(higher_burst + L) / (C - higher_rate)]
    ([L] again the non-preemptable packet in flight).  This is the
    strict-priority leftover-service curve Mohammadpour et al. build the
    ATS end-to-end bounds from (PAPERS.md). *)

val cbs_latency :
  link_rate_bps:float -> idle_slope_bps:float -> higher_slope_bps:float ->
  max_packet_bits:int -> float
(** Latency term of the Credit-Based Shaper rate-latency service curve
    [beta_{idleSlope, T}] for a class with [idle_slope_bps], below
    higher CBS classes of summed slope [higher_slope_bps] (0 for the
    highest class).  [T = 2L/I + 2L/C + 3L/(C - I_H)] (the last term only
    when [I_H > 0]): credit recovery after a max-size frame ([2L/I]
    covers credit as negative as [-L·(C-I)/C] plus the frame itself),
    one non-preemptable lower-priority frame on the wire ([2L/C] with
    the class's own store-and-forward step), and the higher classes'
    shaped burst clearing at the leftover rate ([3L/(C - I_H)], using
    the CBS property that a higher class's backlogged output is
    burst-limited to [I_H·L/C + L <= 2L] plus one frame in flight).
    Conservative per-hop form of Mohammadpour et al.'s CBS latency
    (PAPERS.md). *)
