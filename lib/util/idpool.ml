(* Slot state is three dense arrays plus a free stack, all ints and bools,
   so take/release are allocation-free once the pool is warm (pinned by
   test/test_budget.ml).  The free stack is LIFO: the most recently
   released slot is reused first, which keeps the active range dense and
   exercises recycling as hard as possible. *)

type t = {
  id_base : int;
  mutable gen : int array;  (* per slot, bumped on release *)
  mutable taken : bool array;
  mutable free : int array;  (* stack of free slot indices *)
  mutable free_top : int;  (* number of valid entries in [free] *)
  mutable n_takes : int;
  mutable n_releases : int;
  mutable n_bad : int;
  mutable n_stale : int;
  mutable peak : int;
}

let create ?(base = 0) ?(capacity = 64) () =
  if base < 0 then invalid_arg "Idpool.create: negative base";
  if capacity <= 0 then invalid_arg "Idpool.create: non-positive capacity";
  {
    id_base = base;
    gen = Array.make capacity 0;
    taken = Array.make capacity false;
    (* Push in descending order so slot 0 is on top and ids start low. *)
    free = Array.init capacity (fun i -> capacity - 1 - i);
    free_top = capacity;
    n_takes = 0;
    n_releases = 0;
    n_bad = 0;
    n_stale = 0;
    peak = 0;
  }

let base t = t.id_base
let capacity t = Array.length t.gen
let in_use t = t.n_takes - t.n_releases
let takes t = t.n_takes
let releases t = t.n_releases
let hwm t = t.peak
let bad_releases t = t.n_bad
let stale_releases t = t.n_stale

let grow t =
  let old = Array.length t.gen in
  let n = 2 * old in
  let gen = Array.make n 0 in
  let taken = Array.make n false in
  let free = Array.make n 0 in
  Array.blit t.gen 0 gen 0 old;
  Array.blit t.taken 0 taken 0 old;
  t.gen <- gen;
  t.taken <- taken;
  t.free <- free;
  (* Every old slot is busy (we only grow when the stack is empty), so the
     stack holds exactly the new slots, lowest on top. *)
  for i = 0 to old - 1 do
    free.(i) <- n - 1 - i
  done;
  t.free_top <- old

let take t =
  if t.free_top = 0 then grow t;
  t.free_top <- t.free_top - 1;
  let slot = t.free.(t.free_top) in
  t.taken.(slot) <- true;
  t.n_takes <- t.n_takes + 1;
  let live = t.n_takes - t.n_releases in
  if live > t.peak then t.peak <- live;
  t.id_base + slot

let slot_of t ~id =
  let s = id - t.id_base in
  if s < 0 || s >= Array.length t.gen then -1 else s

let release t ~id =
  let s = slot_of t ~id in
  if s < 0 || not t.taken.(s) then t.n_bad <- t.n_bad + 1
  else begin
    t.taken.(s) <- false;
    t.gen.(s) <- t.gen.(s) + 1;
    t.free.(t.free_top) <- s;
    t.free_top <- t.free_top + 1;
    t.n_releases <- t.n_releases + 1
  end

let try_release t ~id ~gen =
  let s = slot_of t ~id in
  if s >= 0 && t.taken.(s) && t.gen.(s) = gen then begin
    release t ~id;
    true
  end
  else begin
    t.n_stale <- t.n_stale + 1;
    false
  end

let generation t ~id =
  let s = slot_of t ~id in
  if s < 0 then invalid_arg (Printf.sprintf "Idpool.generation: id %d" id);
  t.gen.(s)

let is_taken t ~id =
  let s = slot_of t ~id in
  s >= 0 && t.taken.(s)
