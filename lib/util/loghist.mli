(** Log-bucketed (geometric) histogram for delay tails.

    The paper reads predicted service off the {e shape} of the delay
    distribution — 99.9th-percentile queueing delay, not the mean — so the
    observability layer needs tail quantiles that are cheap enough to feed
    from the link dequeue path on every packet.  [Quantile] keeps the full
    sample set (exact, but O(samples) memory and a sort per read); this
    histogram keeps a fixed array of geometric buckets instead: [add] is a
    branch, a [log10], and an int store — no allocation — and a percentile
    read is a cumulative walk over the bucket counts.

    Buckets: bucket [i] covers [lo * r^i, lo * r^(i+1)) with
    [r = 10^(1/per_decade)], so every bucket has the same {e relative}
    width.  Values below [lo] land in a dedicated underflow bucket
    (represented as 0 — a zero wait on an idle link is the common case),
    values at or above [hi] in an overflow bucket (represented as [hi]).
    A reported percentile is the geometric midpoint of the bucket holding
    the nearest-rank sample, so it is within a factor [sqrt r] of the exact
    nearest-rank value — one bucket's relative error
    (see [test/test_series.ml] for the qcheck harness against
    [Quantile.of_sorted]). *)

type t

val create : ?lo:float -> ?hi:float -> ?per_decade:int -> unit -> t
(** Defaults: [lo = 1e-6] (1 us), [hi = 1e3] s, [per_decade = 20]
    (relative bucket width [10^(1/20) ~ 12%]); 180 buckets at the
    defaults.  Raises [Invalid_argument] unless [0 < lo < hi] and
    [per_decade > 0]. *)

val add : t -> float -> unit
(** Record one sample.  Allocation-free (pinned by [test_budget.ml]);
    negative samples count as underflow. *)

val count : t -> int
(** Total samples recorded, including under/overflow. *)

val underflow : t -> int
val overflow : t -> int

val ratio : t -> float
(** The geometric bucket width [r] — the relative error bound on
    {!percentile}. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0, 100\]]: the representative value
    (geometric bucket midpoint; 0 for underflow, the upper bound for
    overflow) of the bucket holding the nearest-rank sample.  Raises
    [Invalid_argument] when empty or [p] is out of range. *)

val buckets : t -> (float * float * int) list
(** Non-empty regular buckets, ascending, as [(lower, upper, count)].
    Under/overflow are not included — read them via {!underflow} and
    {!overflow}. *)

val merge_into : dst:t -> t -> unit
(** Add [t]'s counts into [dst].  Raises [Invalid_argument] unless both
    were created with the same [lo]/[hi]/[per_decade]. *)
