open Ispn_sim

type flow_state = {
  weight : float;
  mutable last_finish : float;
  mutable qlen : int;
}

type entry = { tag : float; arrival_seq : int; pkt : Packet.t }

let compare_entry a b =
  match compare a.tag b.tag with
  | 0 -> compare a.arrival_seq b.arrival_seq
  | c -> c

let create ?metrics ?(label = "0") ~pool ~link_rate_bps ~weight_of () =
  let flows : (int, flow_state) Hashtbl.t = Hashtbl.create 32 in
  let heap = Ispn_util.Heap.create ~cmp:compare_entry () in
  let next_seq = ref 0 in
  let vt =
    Vtime.create ~link_rate_bps ~on_reset:(fun () ->
        Hashtbl.iter (fun _ fs -> fs.last_finish <- 0.) flows)
  in
  (match metrics with
  | None -> ()
  | Some m ->
      let p = "qdisc.wfq." ^ label in
      Ispn_obs.Metrics.register_float m (p ^ ".vtime") (fun () -> Vtime.v vt);
      Ispn_obs.Metrics.register_int m (p ^ ".flows") (fun () ->
          Hashtbl.length flows));
  let flow_state flow =
    match Hashtbl.find_opt flows flow with
    | Some fs -> fs
    | None ->
        let weight = weight_of flow in
        if weight <= 0. then
          invalid_arg (Printf.sprintf "Wfq: flow %d has weight %g" flow weight);
        let fs = { weight; last_finish = 0.; qlen = 0 } in
        Hashtbl.add flows flow fs;
        fs
  in
  let enqueue ~now pkt =
    pkt.Packet.enqueued_at <- now;
    if Qdisc.pool_take pool then begin
      Vtime.advance vt ~now;
      let fs = flow_state pkt.Packet.flow in
      if fs.qlen = 0 then Vtime.flow_activated vt ~weight:fs.weight;
      let tag =
        Stdlib.max (Vtime.v vt) fs.last_finish
        +. (float_of_int pkt.Packet.size_bits /. fs.weight)
      in
      fs.last_finish <- tag;
      fs.qlen <- fs.qlen + 1;
      Ispn_util.Heap.push heap { tag; arrival_seq = !next_seq; pkt };
      incr next_seq;
      true
    end
    else false
  in
  let dequeue ~now =
    match Ispn_util.Heap.pop heap with
    | None -> None
    | Some { pkt; _ } ->
        Qdisc.pool_release pool;
        let fs = Hashtbl.find flows pkt.Packet.flow in
        fs.qlen <- fs.qlen - 1;
        if fs.qlen = 0 then Vtime.flow_deactivated vt ~now ~weight:fs.weight;
        Some pkt
  in
  Qdisc.make ~enqueue ~dequeue
    ~length:(fun () -> Ispn_util.Heap.length heap)
    ~name:"WFQ" ()

let create_equal ?metrics ?label ~pool ~link_rate_bps () =
  create ?metrics ?label ~pool ~link_rate_bps ~weight_of:(fun _ -> 1.) ()
