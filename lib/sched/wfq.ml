open Ispn_sim
module Kheap = Ispn_util.Kheap

(* Hot-path discipline (DESIGN.md): per-flow state is structure-of-arrays
   indexed by the small-int flow id — [weight.(f)], [last_finish.(f)],
   [qlen.(f)] — so an enqueue touches flat float/int arrays (no Hashtbl
   hashing, no boxed stores), and the ranked queue is a [Kheap] keyed by
   the virtual finish tag (no boxed entry, no polymorphic compare). *)
type flows = {
  mutable weight : float array;  (* 0. marks a flow not yet seen *)
  mutable last_finish : float array;
  mutable qlen : int array;
  mutable seen : int;  (* flows ever registered, for the metric *)
}

let fmax (a : float) b = if a >= b then a else b

let grow fl n =
  let old = Array.length fl.weight in
  let n = Stdlib.max n (2 * old) in
  let weight = Array.make n 0. in
  let last_finish = Array.make n 0. in
  let qlen = Array.make n 0 in
  Array.blit fl.weight 0 weight 0 old;
  Array.blit fl.last_finish 0 last_finish 0 old;
  Array.blit fl.qlen 0 qlen 0 old;
  fl.weight <- weight;
  fl.last_finish <- last_finish;
  fl.qlen <- qlen

let create ?metrics ?(label = "0") ~pool ~link_rate_bps ~weight_of () =
  let fl =
    {
      weight = Array.make 64 0.;
      last_finish = Array.make 64 0.;
      qlen = Array.make 64 0;
      seen = 0;
    }
  in
  let pa = Packet.arena () in
  let heap = Kheap.create ~capacity:64 ~dummy:(Packet.dummy ()) () in
  let vt =
    Vtime.create ~link_rate_bps ~on_reset:(fun () ->
        Array.fill fl.last_finish 0 (Array.length fl.last_finish) 0.)
  in
  (match metrics with
  | None -> ()
  | Some m ->
      let p = "qdisc.wfq." ^ label in
      Ispn_obs.Metrics.register_float m (p ^ ".vtime") (fun () -> Vtime.v vt);
      Ispn_obs.Metrics.register_int m (p ^ ".flows") (fun () -> fl.seen));
  (* Cold path: consult [weight_of] the first time a flow appears. *)
  let register flow =
    let w = weight_of flow in
    if w <= 0. then
      invalid_arg (Printf.sprintf "Wfq: flow %d has weight %g" flow w);
    fl.weight.(flow) <- w;
    fl.seen <- fl.seen + 1;
    w
  in
  let enqueue ~now pkt =
    pa.Packet.enqueued_at.(pkt) <- now;
    if Qdisc.pool_take pool then begin
      Vtime.advance vt ~now;
      let flow = pa.Packet.flow.(pkt) in
      if flow >= Array.length fl.weight then grow fl (flow + 1);
      let w = fl.weight.(flow) in
      let w = if w > 0. then w else register flow in
      if fl.qlen.(flow) = 0 then Vtime.flow_activated vt ~weight:w;
      let tag =
        fmax (Vtime.v vt) fl.last_finish.(flow)
        +. (float_of_int pa.Packet.size_bits.(pkt) /. w)
      in
      fl.last_finish.(flow) <- tag;
      fl.qlen.(flow) <- fl.qlen.(flow) + 1;
      Kheap.push heap ~key:tag pkt;
      true
    end
    else false
  in
  let dequeue ~now =
    if Kheap.is_empty heap then None
    else begin
      let pkt = Kheap.pop_exn heap in
      Qdisc.pool_release pool;
      let flow = pa.Packet.flow.(pkt) in
      let q = fl.qlen.(flow) - 1 in
      fl.qlen.(flow) <- q;
      if q = 0 then Vtime.flow_deactivated vt ~now ~weight:fl.weight.(flow);
      Some pkt
    end
  in
  Qdisc.make ~enqueue ~dequeue
    ~length:(fun () -> Kheap.length heap)
    ~name:"WFQ" ()

let create_equal ?metrics ?label ~pool ~link_rate_bps () =
  create ?metrics ?label ~pool ~link_rate_bps ~weight_of:(fun _ -> 1.) ()
