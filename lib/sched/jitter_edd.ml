open Ispn_sim
module Kheap = Ispn_util.Kheap

let fmax (a : float) b = if a >= b then a else b

let create ~engine ~budget_of ~pool () =
  let pa = Packet.arena () in
  (* Per-flow budgets as a flat array (budgets are positive, so 0. marks a
     flow not yet seen). *)
  let budgets = ref (Array.make 64 0.) in
  (* Packets still being held back wait in [holding], keyed by eligibility
     time; eligible packets sit in [ready], keyed by deadline.  One shared
     arrival counter pins the tie-break rank across both heaps, so a
     packet promoted from [holding] keeps its arrival-order rank among
     equal deadlines in [ready]. *)
  let holding = Kheap.create ~capacity:64 ~dummy:(Packet.dummy ()) () in
  let ready = Kheap.create ~capacity:64 ~dummy:(Packet.dummy ()) () in
  let next_seq = ref 0 in
  let waker = ref (fun () -> ()) in
  let register flow =
    let d = budget_of flow in
    if d <= 0. then
      invalid_arg (Printf.sprintf "Jitter_edd: flow %d has budget %g" flow d);
    !budgets.(flow) <- d;
    d
  in
  let budget flow =
    let b = !budgets in
    if flow >= Array.length b then begin
      let n = Stdlib.max (flow + 1) (2 * Array.length b) in
      let bigger = Array.make n 0. in
      Array.blit b 0 bigger 0 (Array.length b);
      budgets := bigger
    end;
    let d = !budgets.(flow) in
    if d > 0. then d else register flow
  in
  (* Move everything whose holding time has expired into the ready heap.
     A held packet's deadline is recomputed from its (exact) eligibility
     key, [eligible + budget], the same expression used at enqueue. *)
  let promote ~now =
    let continue_ = ref true in
    while !continue_ do
      if Kheap.is_empty holding then continue_ := false
      else begin
        let eligible = Kheap.min_key_exn holding in
        if eligible <= now +. 1e-12 then begin
          let seq = Kheap.min_seq_exn holding in
          let pkt = Kheap.pop_exn holding in
          Kheap.push_pinned ready
            ~key:(eligible +. budget pa.Packet.flow.(pkt))
            ~seq pkt
        end
        else continue_ := false
      end
    done
  in
  let enqueue ~now pkt =
    pa.Packet.enqueued_at.(pkt) <- now;
    if Qdisc.pool_take pool then begin
      (* The header carries the earliness accumulated at the previous hop;
         the packet is held for exactly that long here. *)
      let hold = fmax 0. pa.Packet.offset.(pkt) in
      let eligible = now +. hold in
      let seq = !next_seq in
      incr next_seq;
      if hold > 0. then begin
        Kheap.push_pinned holding ~key:eligible ~seq pkt;
        ignore (Engine.schedule engine ~at:eligible (fun () -> !waker ()))
      end
      else
        Kheap.push_pinned ready
          ~key:(eligible +. budget pa.Packet.flow.(pkt))
          ~seq pkt;
      true
    end
    else false
  in
  let dequeue ~now =
    promote ~now;
    if Kheap.is_empty ready then None
    else begin
      let deadline = Kheap.min_key_exn ready in
      let pkt = Kheap.pop_exn ready in
      Qdisc.pool_release pool;
      (* Export this hop's earliness for the next hop to cancel. *)
      pa.Packet.offset.(pkt) <- fmax 0. (deadline -. now);
      Some pkt
    end
  in
  let length () = Kheap.length holding + Kheap.length ready in
  Qdisc.make
    ~attach_waker:(fun w -> waker := w)
    ~enqueue ~dequeue ~length ~name:"Jitter-EDD" ()
