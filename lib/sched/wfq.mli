(** Weighted Fair Queueing (packetized GPS).

    The isolation scheduler of Section 4.  Each flow has a clock rate
    (weight, in bits/s); packets are stamped with virtual finish times
    [F_i = max (V(a_i), F_{i-1}) + p_i / r] and transmitted in increasing
    stamp order.  Under the Parekh-Gallager conditions (same clock rate at
    every switch, sum of clock rates at most the link speed), a flow
    conforming to an [(r, b)] token bucket sees queueing delay at most about
    [b / r] regardless of how the *other* flows behave — the property
    Table 3 verifies for the guaranteed service class.

    With equal weights this is the plain Fair Queueing of Demers, Keshav &
    Shenker used in Tables 1 and 2. *)

val create :
  ?metrics:Ispn_obs.Metrics.t ->
  ?label:string ->
  pool:Ispn_sim.Qdisc.pool ->
  link_rate_bps:float ->
  weight_of:(int -> float) ->
  unit ->
  Ispn_sim.Qdisc.t
(** [weight_of flow] gives the clock rate (bits/s) of [flow]; it is consulted
    once, when the flow's first packet arrives, and must be positive.
    [metrics], when given, registers pull gauges under
    [qdisc.wfq.<label>] (label defaults to ["0"], conventionally the link
    index): [.vtime] — the current virtual time — and [.flows] — flows
    ever seen. *)

val create_equal :
  ?metrics:Ispn_obs.Metrics.t ->
  ?label:string ->
  pool:Ispn_sim.Qdisc.pool ->
  link_rate_bps:float ->
  unit ->
  Ispn_sim.Qdisc.t
(** Unweighted Fair Queueing: every flow gets the same share. *)
