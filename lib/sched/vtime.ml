(* The float state lives in its own all-float record so [advance] — run on
   every enqueue and dequeue of WFQ and CSZ — updates it in place without
   boxing (a mixed record would allocate a float box per store). *)
type state = {
  mutable v : float;
  mutable last_update : float;
  mutable active_weight : float;
}

type t = {
  link_rate_bps : float;
  on_reset : unit -> unit;
  s : state;
  mutable active_count : int;
}

let create ~link_rate_bps ~on_reset =
  assert (link_rate_bps > 0.);
  {
    link_rate_bps;
    on_reset;
    s = { v = 0.; last_update = 0.; active_weight = 0. };
    active_count = 0;
  }

let advance t ~now =
  let s = t.s in
  if now > s.last_update then begin
    if s.active_weight > 0. then
      s.v <- s.v +. ((now -. s.last_update) *. t.link_rate_bps /. s.active_weight);
    s.last_update <- now
  end

let v t = t.s.v

let flow_activated t ~weight =
  assert (weight > 0.);
  t.s.active_weight <- t.s.active_weight +. weight;
  t.active_count <- t.active_count + 1

let flow_deactivated t ~now ~weight =
  advance t ~now;
  t.s.active_weight <- t.s.active_weight -. weight;
  t.active_count <- t.active_count - 1;
  assert (t.active_count >= 0);
  if t.active_count = 0 then begin
    (* End of the busy period: restart the virtual clock. *)
    t.s.v <- 0.;
    t.s.active_weight <- 0.;
    t.on_reset ()
  end

(* Weights are clock rates in bits/s (>= 1 in every configuration), so
   anything this small is float drift, not a real remaining reservation. *)
let weight_epsilon = 1e-6

let adjust_active t ~now ~delta =
  advance t ~now;
  let w = t.s.active_weight +. delta in
  if w > weight_epsilon then t.s.active_weight <- w
  else begin
    (* Renegotiation removed the last active weight (or drift left a
       sub-epsilon residue): end the busy period exactly as
       [flow_deactivated] does, but keep [active_count] — the flows
       themselves are still queued and will deactivate normally. *)
    t.s.v <- 0.;
    t.s.active_weight <- 0.;
    t.on_reset ()
  end

let active_weight t = t.s.active_weight
