(* The float state lives in its own all-float record so [advance] — run on
   every enqueue and dequeue of WFQ and CSZ — updates it in place without
   boxing (a mixed record would allocate a float box per store). *)
type state = {
  mutable v : float;
  mutable last_update : float;
  mutable active_weight : float;
}

type t = {
  link_rate_bps : float;
  on_reset : unit -> unit;
  s : state;
  mutable active_count : int;
}

let create ~link_rate_bps ~on_reset =
  assert (link_rate_bps > 0.);
  {
    link_rate_bps;
    on_reset;
    s = { v = 0.; last_update = 0.; active_weight = 0. };
    active_count = 0;
  }

let advance t ~now =
  let s = t.s in
  if now > s.last_update then begin
    if s.active_weight > 0. then
      s.v <- s.v +. ((now -. s.last_update) *. t.link_rate_bps /. s.active_weight);
    s.last_update <- now
  end

let v t = t.s.v

let flow_activated t ~weight =
  assert (weight > 0.);
  t.s.active_weight <- t.s.active_weight +. weight;
  t.active_count <- t.active_count + 1

let flow_deactivated t ~now ~weight =
  advance t ~now;
  t.s.active_weight <- t.s.active_weight -. weight;
  t.active_count <- t.active_count - 1;
  assert (t.active_count >= 0);
  if t.active_count = 0 then begin
    (* End of the busy period: restart the virtual clock. *)
    t.s.v <- 0.;
    t.s.active_weight <- 0.;
    t.on_reset ()
  end

let adjust_active t ~now ~delta =
  advance t ~now;
  t.s.active_weight <- t.s.active_weight +. delta;
  assert (t.s.active_weight > 0.)

let active_weight t = t.s.active_weight
