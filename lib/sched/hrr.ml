open Ispn_sim
module Ring = Ispn_util.Ring

type flow_state = {
  queue : Packet.t Ring.t;
  slots : int;  (* allocation per frame *)
  mutable credit : int;  (* slots left in the current frame *)
}

let create ~engine ~frame ~slots_of ~pool () =
  assert (frame > 0.);
  let pa = Packet.arena () in
  let absent =
    { queue = Ring.create ~capacity:1 ~dummy:(Packet.dummy ()) ();
      slots = 0; credit = 0 }
  in
  (* Dense flow-indexed state ([absent] marks unseen flows); [order] is
     the round-robin visiting ring. *)
  let flows = ref (Array.make 64 absent) in
  let order : int Ring.t = Ring.create ~capacity:64 ~dummy:(-1) () in
  let total = ref 0 in
  let waker = ref (fun () -> ()) in
  let frame_start = ref 0. in
  let boundary_armed = ref false in
  let flow_state flow =
    let fs = !flows in
    if flow >= Array.length fs then begin
      let n = Stdlib.max (flow + 1) (2 * Array.length fs) in
      let bigger = Array.make n absent in
      Array.blit fs 0 bigger 0 (Array.length fs);
      flows := bigger
    end;
    let fs = !flows.(flow) in
    if fs != absent then fs
    else begin
      let slots = slots_of flow in
      if slots <= 0 then
        invalid_arg (Printf.sprintf "Hrr: flow %d has %d slots" flow slots);
      let fs =
        { queue = Ring.create ~capacity:64 ~dummy:(Packet.dummy ()) ();
          slots; credit = slots }
      in
      !flows.(flow) <- fs;
      Ring.push order flow;
      fs
    end
  in
  let rec arm_boundary ~now =
    if not !boundary_armed then begin
      boundary_armed := true;
      let next = !frame_start +. frame in
      (* After an idle gap [frame_start] is stale; re-anchor to the fixed
         frame grid (the boundary ceiling of [now]), not [now +. frame] —
         frame phase must not drift with arrival times. *)
      let next =
        if next <= now then
          (Float.of_int (int_of_float (now /. frame)) +. 1.) *. frame
        else next
      in
      ignore
        (Engine.schedule engine ~at:next (fun () ->
             boundary_armed := false;
             frame_start := next;
             Array.iter
               (fun fs -> if fs != absent then fs.credit <- fs.slots)
               !flows;
             if !total > 0 then begin
               (* More frames will be needed while backlog remains. *)
               arm_boundary ~now:next;
               !waker ()
             end))
    end
  in
  let enqueue ~now pkt =
    pa.Packet.enqueued_at.(pkt) <- now;
    if Qdisc.pool_take pool then begin
      let fs = flow_state pa.Packet.flow.(pkt) in
      Ring.push fs.queue pkt;
      incr total;
      arm_boundary ~now;
      true
    end
    else false
  in
  let dequeue ~now:_ =
    if !total = 0 then None
    else begin
      (* Visit each flow at most once looking for queued work + credit. *)
      let n = Ring.length order in
      let rec visit k =
        if k >= n then None
        else begin
          let flow = Ring.pop_exn order in
          Ring.push order flow;
          let fs = !flows.(flow) in
          if fs.credit > 0 && not (Ring.is_empty fs.queue) then begin
            fs.credit <- fs.credit - 1;
            decr total;
            Qdisc.pool_release pool;
            Some (Ring.pop_exn fs.queue)
          end
          else visit (k + 1)
        end
      in
      visit 0
      (* [None] with work queued means every backlogged flow exhausted its
         frame credit; the armed frame boundary will wake the link. *)
    end
  in
  Qdisc.make
    ~attach_waker:(fun w -> waker := w)
    ~enqueue ~dequeue
    ~length:(fun () -> !total)
    ~name:"HRR" ()
