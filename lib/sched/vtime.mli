(** GPS virtual time.

    Shared by {!Wfq} and the unified CSZ scheduler.  Virtual time [V(t)]
    advances at rate [C / Phi(t)] where [C] is the link rate and [Phi(t)] the
    summed clock rates of the currently backlogged flows (the fluid-flow
    dynamics of Section 4).  A flow's packet gets finish tag
    [max (V(arrival), previous finish tag of the flow) + size / clock_rate];
    serving packets in increasing tag order approximates GPS.

    The active set is tracked at packet granularity (a flow is active while
    it has packets queued), the standard packetized approximation of the
    fluid model.  When the system drains completely, the busy period ends
    and virtual time resets to zero; callers must reset their per-flow
    finish tags at the same time via the [on_reset] callback. *)

type t

val create : link_rate_bps:float -> on_reset:(unit -> unit) -> t

val advance : t -> now:float -> unit
(** Integrate [V] up to [now].  Call before reading {!v} or changing the
    active set. *)

val v : t -> float

val flow_activated : t -> weight:float -> unit
(** A flow with clock rate [weight] (bits/s) became backlogged. *)

val flow_deactivated : t -> now:float -> weight:float -> unit
(** A flow drained.  When the last flow deactivates the busy period ends:
    [V] resets to 0 and [on_reset] fires. *)

val adjust_active : t -> now:float -> delta:float -> unit
(** Change the weight of a currently-active flow in place (the unified
    scheduler re-sizes pseudo-flow 0 when guaranteed reservations change).
    Advances [V] first so past service is accounted at the old weight.

    If the adjustment leaves the summed active weight at (or, through
    float drift, within an epsilon of) zero, the busy period ends exactly
    as in {!flow_deactivated} — [V] resets to 0 and [on_reset] fires —
    but the active {e count} is kept: the flows are still backlogged and
    will deactivate through {!flow_deactivated} as they drain. *)

val active_weight : t -> float
