open Ispn_sim

let create ~pool ~n_groups ~group_of () =
  assert (n_groups > 0);
  let pa = Packet.arena () in
  let queues = Array.init n_groups (fun _ -> Queue.create ()) in
  let total = ref 0 in
  let cursor = ref 0 in
  let enqueue ~now pkt =
    let g = group_of pkt in
    if g < 0 || g >= n_groups then
      invalid_arg
        (Printf.sprintf "Rr_groups: group %d out of range for flow %d" g
           pa.Packet.flow.(pkt));
    if Qdisc.pool_take pool then begin
      pa.Packet.enqueued_at.(pkt) <- now;
      Queue.push pkt queues.(g);
      incr total;
      true
    end
    else false
  in
  let dequeue ~now:_ =
    if !total = 0 then None
    else begin
      (* Find the next backlogged group at or after the cursor. *)
      let rec find k =
        let g = (!cursor + k) mod n_groups in
        if Queue.is_empty queues.(g) then find (k + 1) else g
      in
      let g = find 0 in
      cursor := (g + 1) mod n_groups;
      let pkt = Queue.pop queues.(g) in
      decr total;
      Qdisc.pool_release pool;
      Some pkt
    end
  in
  Qdisc.make ~enqueue ~dequeue ~length:(fun () -> !total)
    ~name:"RR-groups" ()
