(** FIFO+ — FIFO sharing correlated across hops (Section 6).

    Each switch measures the average queueing delay of the sharing class; a
    departing packet adds [its delay - class average] to the jitter-offset
    field in its header; the next switch orders its queue as if the packet
    had arrived at its *expected* arrival time [actual arrival - offset].  A
    packet that was unlucky upstream (positive offset) is thus scheduled as
    if it had arrived earlier, and vice versa, inducing FIFO-style "equal
    jitter for everyone" across the whole path rather than per hop.  Table 2
    shows the payoff: the 99.9th-percentile delay grows much more slowly
    with path length than under FIFO or WFQ.

    The class-average delay is an EWMA.  The default gain is deliberately slow
    (1/4096, a time constant of several seconds at the paper's packet rates):
    the offset a packet exports must be measured against the class's
    {e long-run} average.  A fast-adapting average rises during a burst and
    mutes the offsets of exactly the packets FIFO+ exists to help, which
    collapses the mechanism back to plain FIFO (the ablation bench
    reproduces this).

    Section 10's late-packet discard is available as an option: a packet
    arriving with an offset already above a threshold is a target for
    immediate discard, since it has no chance of making its play-back
    point. *)

type state
(** Measurement side of one FIFO+ class at one switch. *)

val avg_delay : state -> float
(** Current EWMA of this class's queueing delay at this switch (seconds). *)

val discarded : state -> int
(** Packets dropped by the late-discard rule (0 unless enabled). *)

val create :
  ?ewma_gain:float ->
  ?discard_late_above:float ->
  ?metrics:Ispn_obs.Metrics.t ->
  ?label:string ->
  pool:Ispn_sim.Qdisc.pool ->
  unit ->
  state * Ispn_sim.Qdisc.t
(** [discard_late_above] is an offset threshold in seconds; omitted means
    never discard.  [metrics] registers, under [qdisc.fifo_plus.<label>]
    (label defaults to ["0"]): pull gauges [.avg_delay] and [.discarded],
    plus a push distribution [.offset.{count,mean,min,max}] of the
    jitter-offset each departing packet carries away.  The offset push is
    one [Stats.add] per dequeue, skipped by a single branch when metrics
    are off. *)
