open Ispn_sim
module Kheap = Ispn_util.Kheap

(* Per-flow budgets as a flat array indexed by flow id; budgets are
   non-negative, so -1. marks a flow not yet seen. *)
let absent = -1.

let create ~pool ~deadline_of () =
  let pa = Packet.arena () in
  let budgets = ref (Array.make 64 absent) in
  let heap = Kheap.create ~capacity:64 ~dummy:(Packet.dummy ()) () in
  let register flow =
    let d = deadline_of flow in
    if d < 0. then
      invalid_arg (Printf.sprintf "Edf: flow %d has budget %g" flow d);
    !budgets.(flow) <- d;
    d
  in
  let enqueue ~now pkt =
    pa.Packet.enqueued_at.(pkt) <- now;
    if Qdisc.pool_take pool then begin
      let flow = pa.Packet.flow.(pkt) in
      let b = !budgets in
      if flow >= Array.length b then begin
        let n = Stdlib.max (flow + 1) (2 * Array.length b) in
        let bigger = Array.make n absent in
        Array.blit b 0 bigger 0 (Array.length b);
        budgets := bigger
      end;
      let d = !budgets.(flow) in
      let d = if d >= 0. then d else register flow in
      Kheap.push heap ~key:(now +. d) pkt;
      true
    end
    else false
  in
  let dequeue ~now:_ =
    if Kheap.is_empty heap then None
    else begin
      let pkt = Kheap.pop_exn heap in
      Qdisc.pool_release pool;
      Some pkt
    end
  in
  Qdisc.make ~enqueue ~dequeue
    ~length:(fun () -> Kheap.length heap)
    ~name:"EDF" ()
