(** IEEE 802.1Q Credit-Based Shaper (TSN class A/B gating).

    Strict priority across classes with a per-class credit gate: credit
    accrues at the class's idleSlope while it is backlogged (or negative),
    is debited by the frame size on each send, resets to zero when the
    class drains, and the head is eligible only while credit >= 0.  The
    gate caps each class's long-run rate at its idleSlope, smoothing the
    class's output so downstream hops see a burst-limited aggregate —
    the property Mohammadpour et al.'s per-hop bounds (PAPERS.md, encoded
    as [Analytic.cbs_latency]) rest on.

    Non-work-conserving: when every backlogged class is in deficit the
    link idles until the earliest credit recovery, via the
    [attach_waker] hook (the work-conservation audit exempts "CBS"). *)

val create :
  engine:Ispn_sim.Engine.t ->
  pool:Ispn_sim.Qdisc.pool ->
  idle_slopes_bps:float array ->
  class_of:(int -> int) ->
  unit ->
  Ispn_sim.Qdisc.t
(** [idle_slopes_bps.(c)] is class [c]'s credit slope in bit/s (index 0 is
    the highest priority; all must be positive — [Invalid_argument]
    otherwise; slopes summing to at most the link rate keep every class
    schedulable).  [class_of] maps a flow id to its class index.  The
    engine is needed to schedule credit-recovery wakeups. *)
