open Ispn_sim

let create ~engine ~frame ~pool () =
  assert (frame > 0.);
  (* Eligibility is FIFO in arrival order, so a flat ring suffices; a
     packet's eligibility time is recomputed from its (exact) arrival
     stamp rather than stored alongside it. *)
  let pa = Packet.arena () in
  let q = Ispn_util.Ring.create ~capacity:64 ~dummy:(Packet.dummy ()) () in
  let waker = ref (fun () -> ()) in
  let wake_armed = ref false in
  let next_boundary t = (Float.of_int (int_of_float (t /. frame)) +. 1.) *. frame in
  let enqueue ~now pkt =
    pa.Packet.enqueued_at.(pkt) <- now;
    if Qdisc.pool_take pool then begin
      Ispn_util.Ring.push q pkt;
      true
    end
    else false
  in
  let dequeue ~now =
    if Ispn_util.Ring.is_empty q then None
    else begin
      let pkt = Ispn_util.Ring.peek_exn q in
      let eligible = next_boundary pa.Packet.enqueued_at.(pkt) in
      if eligible <= now +. 1e-12 then begin
        ignore (Ispn_util.Ring.pop_exn q);
        Qdisc.pool_release pool;
        Some pkt
      end
      else begin
        (* Head not yet eligible: hold the line idle and call the link
           back at the frame boundary.  The latch keeps at most one
           wakeup pending however often the link polls an ineligible
           head; the event re-opens it, so a still-ineligible head
           (e.g. the wakeup raced a fresher arrival) arms the next
           boundary on the following poll. *)
        if not !wake_armed then begin
          wake_armed := true;
          ignore
            (Engine.schedule engine ~at:eligible (fun () ->
                 wake_armed := false;
                 !waker ()))
        end;
        None
      end
    end
  in
  Qdisc.make
    ~attach_waker:(fun w -> waker := w)
    ~enqueue ~dequeue
    ~length:(fun () -> Ispn_util.Ring.length q)
    ~name:"Stop-and-Go" ()
