(** Strict priority over sub-schedulers.

    The sharing mechanism between predicted-service classes (Section 7): a
    burst in a high class momentarily steals bandwidth from the classes
    below, shifting its jitter downwards; a lower class never affects a
    higher one.  Class 0 is the highest priority.

    Used in the unified scheduler with one {!Fifo_plus} per predicted class
    and a plain {!Fifo} for datagram traffic at the bottom. *)

val create :
  ?metrics:Ispn_obs.Metrics.t ->
  ?label:string ->
  classes:Ispn_sim.Qdisc.t array ->
  classify:(Ispn_sim.Packet.t -> int) ->
  unit ->
  Ispn_sim.Qdisc.t
(** [classify pkt] must return an index into [classes].  Raises
    [Invalid_argument] on an out-of-range class at enqueue time.
    [metrics] registers a pull gauge [qdisc.prio.<label>.class.<c>.len]
    per sub-scheduler (label defaults to ["0"]). *)
