open Ispn_sim

let create ~pool () =
  let pa = Packet.arena () in
  let q = Ispn_util.Ring.create ~capacity:64 ~dummy:(Packet.dummy ()) () in
  let enqueue ~now pkt =
    pa.Packet.enqueued_at.(pkt) <- now;
    if Qdisc.pool_take pool then begin
      Ispn_util.Ring.push q pkt;
      true
    end
    else false
  in
  let dequeue ~now:_ =
    if Ispn_util.Ring.is_empty q then None
    else begin
      let pkt = Ispn_util.Ring.pop_exn q in
      Qdisc.pool_release pool;
      Some pkt
    end
  in
  Qdisc.make ~enqueue ~dequeue
    ~length:(fun () -> Ispn_util.Ring.length q)
    ~name:"FIFO" ()
