(** Weighted round robin over per-flow packet queues.

    The baseline TSN/DiffServ class scheduler the related work measures
    CBS and ATS against (Constantin et al., PAPERS.md): each flow with
    backlog is visited in round-robin order and may send up to
    [weight_of flow] {e packets} per round.  Packet-counted weights make
    the classical WRR unfairness to small-packet flows visible in the
    bake-off, and give the scheduler the rate-latency service curve
    [Analytic.wrr_service] that the [--check] bound audits.

    Work-conserving; hot path is [Drr]'s dense flow-array + ring
    machinery with unit packet cost. *)

val create :
  pool:Ispn_sim.Qdisc.pool ->
  ?weight_of:(int -> int) ->
  unit ->
  Ispn_sim.Qdisc.t
(** [weight_of] maps a flow id to its per-round packet quota (default 1,
    plain round robin); it is consulted once when the flow is first seen
    and must be positive — [Invalid_argument] otherwise. *)
