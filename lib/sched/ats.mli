(** Asynchronous Traffic Shaping (IEEE 802.1Qcr): interleaved per-flow
    regulators in front of a strict-priority core.

    Each class is one FIFO whose head packet is released only when its
    flow's token bucket conforms; behind the head the class waits
    (interleaved regulation).  Re-shaping every flow back to its original
    [(rate, burst)] envelope at each hop stops burst accumulation, so the
    per-hop strict-priority bound ([Analytic.sp_service]) applies with
    the {e original} bursts at every hop and — by the shaping-for-free
    theorem the ATS analysis rests on (Mohammadpour et al., PAPERS.md) —
    the regulator hold adds at most the delay bound already accumulated
    upstream.

    Non-work-conserving: when every backlogged class's head is still
    earning tokens the link idles until the earliest conformance time via
    [attach_waker] (the work-conservation audit exempts "ATS").  Bucket
    arithmetic is bit-identical to [Ispn_traffic.Token_bucket]. *)

val create :
  engine:Ispn_sim.Engine.t ->
  pool:Ispn_sim.Qdisc.pool ->
  n_classes:int ->
  class_of:(int -> int) ->
  shaper_of:(int -> float * float) ->
  unit ->
  Ispn_sim.Qdisc.t
(** [class_of] maps a flow id to its priority class in
    [0 .. n_classes - 1] (0 highest); [shaper_of] gives the flow's
    regulator [(rate_bps, burst_bits)], consulted once when the flow is
    first seen — both must be positive ([Invalid_argument] otherwise),
    and the burst must cover the flow's largest packet or its class
    blocks forever.  Buckets start full.  The engine schedules the
    head-conformance wakeups. *)
