open Ispn_sim
module Ring = Ispn_util.Ring

type flow_state = {
  queue : Packet.t Ring.t;
  weight : int;
  mutable credit : int;
  mutable in_round : bool;
}

(* Packet-counted weighted round robin: DRR's active-list machinery with a
   quantum of [weight_of flow] packets and every packet costing one
   credit.  A flow reaching the head of the active list earns its weight
   once per round ([current] holds the open service opportunity, exactly
   as in [Drr]), sends up to that many packets, then rotates to the tail;
   leftover credit is forfeited when the flow drains.  Per-flow state is
   the usual dense flow-indexed array with an [absent] sentinel. *)
let create ~pool ?(weight_of = fun (_ : int) -> 1) () =
  let pa = Packet.arena () in
  let absent =
    { queue = Ring.create ~capacity:1 ~dummy:(Packet.dummy ()) ();
      weight = 0; credit = 0; in_round = false }
  in
  let flows = ref (Array.make 64 absent) in
  let active : int Ring.t = Ring.create ~capacity:64 ~dummy:(-1) () in
  let current = ref (-1) in
  let total = ref 0 in
  let flow_state flow =
    let fs = !flows in
    if flow >= Array.length fs then begin
      let n = Stdlib.max (flow + 1) (2 * Array.length fs) in
      let bigger = Array.make n absent in
      Array.blit fs 0 bigger 0 (Array.length fs);
      flows := bigger
    end;
    let fs = !flows.(flow) in
    if fs != absent then fs
    else begin
      let w = weight_of flow in
      if w <= 0 then invalid_arg "Wrr: weights must be positive";
      let fs =
        { queue = Ring.create ~capacity:64 ~dummy:(Packet.dummy ()) ();
          weight = w; credit = 0; in_round = false }
      in
      !flows.(flow) <- fs;
      fs
    end
  in
  let enqueue ~now pkt =
    pa.Packet.enqueued_at.(pkt) <- now;
    if Qdisc.pool_take pool then begin
      let flow = pa.Packet.flow.(pkt) in
      let fs = flow_state flow in
      Ring.push fs.queue pkt;
      incr total;
      if (not fs.in_round) && !current <> flow then begin
        fs.in_round <- true;
        fs.credit <- 0;
        Ring.push active flow
      end;
      true
    end
    else false
  in
  let serve flow fs =
    let pkt = Ring.pop_exn fs.queue in
    fs.credit <- fs.credit - 1;
    decr total;
    Qdisc.pool_release pool;
    if Ring.is_empty fs.queue then begin
      fs.credit <- 0;
      fs.in_round <- false;
      current := -1
    end
    else if fs.credit < 1 then begin
      fs.in_round <- true;
      Ring.push active flow;
      current := -1
    end;
    Some pkt
  in
  let rec dequeue ~now =
    if !current >= 0 then serve !current !flows.(!current)
    else if Ring.is_empty active then None
    else begin
      let flow = Ring.pop_exn active in
      let fs = !flows.(flow) in
      if Ring.is_empty fs.queue then begin
        fs.in_round <- false;
        dequeue ~now
      end
      else begin
        (* Weights are >= 1 packet, so the opportunity always opens. *)
        fs.credit <- fs.credit + fs.weight;
        fs.in_round <- false;
        current := flow;
        dequeue ~now
      end
    end
  in
  Qdisc.make ~enqueue ~dequeue ~length:(fun () -> !total) ~name:"WRR" ()
