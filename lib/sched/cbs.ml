open Ispn_sim
module Ring = Ispn_util.Ring

type cls = {
  queue : Packet.t Ring.t;
  slope : float;  (* idleSlope, bit/s *)
  mutable credit : float;  (* bits *)
  mutable last : float;  (* sim time of the last credit update *)
}

(* IEEE 802.1Q Credit-Based Shaper: strict priority across classes (index
   0 highest), each class gated by a credit that accrues at idleSlope
   while the class is backlogged or in deficit, is debited by the frame
   size on each send, and is reset to zero when the class drains with
   credit left over (consume-or-lose).  A class's head is eligible only
   while credit >= 0, so the class's long-run output rate is capped at
   its idleSlope even when it alone is backlogged — the non-work-
   conserving property the bake-off's work-conservation audit exempts.

   Credit updates are lazy: [touch] folds the elapsed time into the
   credit at each enqueue (that class only) and at each dequeue (all
   classes, in priority order).  The differential reference model in
   [test/test_differential.ml] mirrors these touch points exactly so
   both sides compute identical floats. *)
let create ~engine ~pool ~idle_slopes_bps ~class_of () =
  let n_classes = Array.length idle_slopes_bps in
  if n_classes = 0 then invalid_arg "Cbs: need at least one class";
  Array.iter
    (fun s -> if not (s > 0.) then invalid_arg "Cbs: idle slopes must be positive")
    idle_slopes_bps;
  let pa = Packet.arena () in
  let classes =
    Array.map
      (fun slope ->
        { queue = Ring.create ~capacity:64 ~dummy:(Packet.dummy ()) ();
          slope; credit = 0.; last = 0. })
      idle_slopes_bps
  in
  let total = ref 0 in
  let waker = ref (fun () -> ()) in
  let wake_armed = ref false in
  let touch c ~now =
    if now > c.last then begin
      if not (Ring.is_empty c.queue) then
        c.credit <- c.credit +. (c.slope *. (now -. c.last))
      else if c.credit < 0. then
        (* Idle recovery stops at zero: an idle class banks no credit. *)
        c.credit <- Float.min 0. (c.credit +. (c.slope *. (now -. c.last)));
      c.last <- now
    end
  in
  let enqueue ~now pkt =
    pa.Packet.enqueued_at.(pkt) <- now;
    if Qdisc.pool_take pool then begin
      let c = classes.(class_of pa.Packet.flow.(pkt)) in
      touch c ~now;
      Ring.push c.queue pkt;
      incr total;
      true
    end
    else false
  in
  let dequeue ~now =
    for i = 0 to n_classes - 1 do
      touch classes.(i) ~now
    done;
    let rec pick i =
      if i >= n_classes then None
      else begin
        let c = classes.(i) in
        (* -1e-6 bits of slack: [now +. d] rounds on the waker path, so a
           recovered credit can land ~1e-8 bits shy of zero; without the
           slack the re-armed waker can stall on one timestamp forever. *)
        if (not (Ring.is_empty c.queue)) && c.credit >= -1e-6 then begin
          let pkt = Ring.pop_exn c.queue in
          c.credit <- c.credit -. float pa.Packet.size_bits.(pkt);
          if Ring.is_empty c.queue && c.credit > 0. then c.credit <- 0.;
          decr total;
          Qdisc.pool_release pool;
          Some pkt
        end
        else pick (i + 1)
      end
    in
    let r = pick 0 in
    if r = None && !total > 0 then begin
      (* Backlogged but every backlogged class is in credit deficit: call
         the link back when the first one recovers (same waker latch as
         Stop-and-Go). *)
      if not !wake_armed then begin
        let at = ref infinity in
        for i = 0 to n_classes - 1 do
          let c = classes.(i) in
          if not (Ring.is_empty c.queue) then
            (* The 1 ns floor keeps the wake time strictly after [now]
               even when the remaining deficit underflows the float grid. *)
            at :=
              Float.min !at
                (now +. Float.max (-.c.credit /. c.slope) 1e-9)
        done;
        wake_armed := true;
        ignore
          (Engine.schedule engine ~at:!at (fun () ->
               wake_armed := false;
               !waker ()))
      end
    end;
    r
  in
  Qdisc.make
    ~attach_waker:(fun w -> waker := w)
    ~enqueue ~dequeue
    ~length:(fun () -> !total)
    ~name:"CBS" ()
