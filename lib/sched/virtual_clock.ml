open Ispn_sim
module Kheap = Ispn_util.Kheap

(* Per-flow state as flat arrays indexed by flow id (hot-path discipline,
   DESIGN.md): [rate.(f)] is the reserved rate (0. = flow not yet seen)
   and [vc.(f)] the flow's virtual clock. *)
type flows = {
  mutable rate : float array;
  mutable vc : float array;
}

let fmax (a : float) b = if a >= b then a else b

let grow fl n =
  let old = Array.length fl.rate in
  let n = Stdlib.max n (2 * old) in
  let rate = Array.make n 0. in
  let vc = Array.make n 0. in
  Array.blit fl.rate 0 rate 0 old;
  Array.blit fl.vc 0 vc 0 old;
  fl.rate <- rate;
  fl.vc <- vc

let create ~pool ~rate_of () =
  let pa = Packet.arena () in
  let fl = { rate = Array.make 64 0.; vc = Array.make 64 0. } in
  let heap = Kheap.create ~capacity:64 ~dummy:(Packet.dummy ()) () in
  let register flow =
    let r = rate_of flow in
    if r <= 0. then
      invalid_arg (Printf.sprintf "Virtual_clock: flow %d has rate %g" flow r);
    fl.rate.(flow) <- r;
    r
  in
  let enqueue ~now pkt =
    pa.Packet.enqueued_at.(pkt) <- now;
    if Qdisc.pool_take pool then begin
      let flow = pa.Packet.flow.(pkt) in
      if flow >= Array.length fl.rate then grow fl (flow + 1);
      let r = fl.rate.(flow) in
      let r = if r > 0. then r else register flow in
      let tag =
        fmax now fl.vc.(flow) +. (float_of_int pa.Packet.size_bits.(pkt) /. r)
      in
      fl.vc.(flow) <- tag;
      Kheap.push heap ~key:tag pkt;
      true
    end
    else false
  in
  let dequeue ~now:_ =
    if Kheap.is_empty heap then None
    else begin
      let pkt = Kheap.pop_exn heap in
      Qdisc.pool_release pool;
      Some pkt
    end
  in
  Qdisc.make ~enqueue ~dequeue
    ~length:(fun () -> Kheap.length heap)
    ~name:"VirtualClock" ()
