open Ispn_sim

let create ?metrics ?(label = "0") ~classes ~classify () =
  assert (Array.length classes > 0);
  let n = Array.length classes in
  (match metrics with
  | None -> ()
  | Some m ->
      Array.iteri
        (fun c q ->
          Ispn_obs.Metrics.register_int m
            (Printf.sprintf "qdisc.prio.%s.class.%d.len" label c)
            (fun () -> q.Qdisc.length ()))
        classes);
  let enqueue ~now pkt =
    let c = classify pkt in
    if c < 0 || c >= n then
      invalid_arg
        (Printf.sprintf "Prio: classify returned %d for flow %d" c
           (Packet.flow pkt));
    classes.(c).Qdisc.enqueue ~now pkt
  in
  let rec dequeue_from i ~now =
    if i >= n then None
    else
      match classes.(i).Qdisc.dequeue ~now with
      | Some pkt -> Some pkt
      | None -> dequeue_from (i + 1) ~now
  in
  let dequeue ~now = dequeue_from 0 ~now in
  let length () =
    Array.fold_left (fun acc c -> acc + c.Qdisc.length ()) 0 classes
  in
  Qdisc.make ~enqueue ~dequeue ~length ~name:"PRIO" ()
