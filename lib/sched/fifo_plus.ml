open Ispn_sim
module Kheap = Ispn_util.Kheap

type state = {
  avg : Ispn_util.Ewma.t;
  mutable discarded : int;
}

let avg_delay st = Ispn_util.Ewma.value st.avg
let discarded st = st.discarded

let create ?(ewma_gain = 1. /. 4096.) ?discard_late_above ?metrics
    ?(label = "0") ~pool () =
  let st = { avg = Ispn_util.Ewma.create ~gain:ewma_gain (); discarded = 0 } in
  let offsets =
    match metrics with
    | None -> None
    | Some m ->
        let p = "qdisc.fifo_plus." ^ label in
        Ispn_obs.Metrics.register_float m (p ^ ".avg_delay") (fun () ->
            Ispn_util.Ewma.value st.avg);
        Ispn_obs.Metrics.register_int m (p ^ ".discarded") (fun () ->
            st.discarded);
        Some (Ispn_obs.Metrics.dist m (p ^ ".offset"))
  in
  let pa = Packet.arena () in
  (* Ranked by expected arrival time; FIFO on ties (Kheap's stamp). *)
  let heap = Kheap.create ~capacity:64 ~dummy:(Packet.dummy ()) () in
  let enqueue ~now pkt =
    pa.Packet.enqueued_at.(pkt) <- now;
    let late =
      match discard_late_above with
      | Some threshold -> pa.Packet.offset.(pkt) > threshold
      | None -> false
    in
    if late then begin
      st.discarded <- st.discarded + 1;
      false
    end
    else if Qdisc.pool_take pool then begin
      Kheap.push heap ~key:(pa.Packet.enqueued_at.(pkt) -. pa.Packet.offset.(pkt)) pkt;
      true
    end
    else false
  in
  let dequeue ~now =
    if Kheap.is_empty heap then None
    else begin
      let pkt = Kheap.pop_exn heap in
      Qdisc.pool_release pool;
      let delay = now -. pa.Packet.enqueued_at.(pkt) in
      (* Accumulate this hop's deviation from the class average into the
         header field, then fold the observation into the average. *)
      pa.Packet.offset.(pkt) <-
        pa.Packet.offset.(pkt) +. (delay -. Ispn_util.Ewma.value st.avg);
      Ispn_util.Ewma.update st.avg delay;
      (match offsets with
      | None -> ()
      | Some d -> Ispn_util.Stats.add d pa.Packet.offset.(pkt));
      Some pkt
    end
  in
  ( st,
    Qdisc.make ~enqueue ~dequeue
      ~length:(fun () -> Kheap.length heap)
      ~name:"FIFO+" () )
