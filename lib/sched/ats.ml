open Ispn_sim
module Ring = Ispn_util.Ring

(* Asynchronous Traffic Shaping (IEEE 802.1Qcr): per-flow token-bucket
   regulators interleaved in front of a strict-priority core.  Each class
   is one FIFO; only the head packet of a class consults its flow's
   bucket (interleaved regulation: a held head blocks the whole class,
   which is what keeps the regulator FIFO per class and — per the ATS
   "shaping-for-free" argument — adds no worst-case delay beyond the
   upstream bound already accumulated).  Dequeue scans classes in
   priority order and serves the first eligible head; when every
   backlogged class's head is still earning tokens the link idles until
   the earliest head becomes conformant (waker latch, non-work-
   conserving).

   The bucket arithmetic mirrors [Ispn_traffic.Token_bucket] exactly
   (refill capped at depth, conformance slack 1e-9 bits) so the
   differential reference model and the policer stay bit-identical. *)
let create ~engine ~pool ~n_classes ~class_of ~shaper_of () =
  if n_classes <= 0 then invalid_arg "Ats: need at least one class";
  let pa = Packet.arena () in
  let queues =
    Array.init n_classes (fun _ ->
        Ring.create ~capacity:64 ~dummy:(Packet.dummy ()) ())
  in
  let total = ref 0 in
  (* Per-flow regulator state: dense flow-indexed parallel arrays grown by
     doubling; [seen] marks initialised slots. *)
  let seen = ref (Array.make 64 false) in
  let tokens = ref (Array.make 64 0.) in
  let last = ref (Array.make 64 0.) in
  let rate = ref (Array.make 64 0.) in
  let depth = ref (Array.make 64 0.) in
  let ensure flow =
    if flow >= Array.length !seen then begin
      let n = Stdlib.max (flow + 1) (2 * Array.length !seen) in
      let grow a zero =
        let bigger = Array.make n zero in
        Array.blit !a 0 bigger 0 (Array.length !a);
        a := bigger
      in
      grow seen false; grow tokens 0.; grow last 0.; grow rate 0.;
      grow depth 0.
    end;
    if not !seen.(flow) then begin
      let r, b = shaper_of flow in
      if not (r > 0. && b > 0.) then
        invalid_arg "Ats: shaper rate and burst must be positive";
      !seen.(flow) <- true;
      !rate.(flow) <- r;
      !depth.(flow) <- b;
      !tokens.(flow) <- b;  (* buckets start full, as in Token_bucket *)
      !last.(flow) <- 0.
    end
  in
  let refill flow ~now =
    let tk = !tokens and ls = !last in
    if now > ls.(flow) then begin
      tk.(flow) <-
        Float.min !depth.(flow)
          (tk.(flow) +. ((now -. ls.(flow)) *. !rate.(flow)));
      ls.(flow) <- now
    end
  in
  let waker = ref (fun () -> ()) in
  let wake_armed = ref false in
  let enqueue ~now pkt =
    pa.Packet.enqueued_at.(pkt) <- now;
    if Qdisc.pool_take pool then begin
      let flow = pa.Packet.flow.(pkt) in
      ensure flow;
      Ring.push queues.(class_of flow) pkt;
      incr total;
      true
    end
    else false
  in
  let dequeue ~now =
    let rec pick i =
      if i >= n_classes then None
      else if Ring.is_empty queues.(i) then pick (i + 1)
      else begin
        let pkt = Ring.peek_exn queues.(i) in
        let flow = pa.Packet.flow.(pkt) in
        refill flow ~now;
        let need = float pa.Packet.size_bits.(pkt) in
        if !tokens.(flow) >= need -. 1e-9 then begin
          ignore (Ring.pop_exn queues.(i));
          !tokens.(flow) <- !tokens.(flow) -. need;
          decr total;
          Qdisc.pool_release pool;
          Some pkt
        end
        else pick (i + 1)
      end
    in
    let r = pick 0 in
    if r = None && !total > 0 then begin
      (* Every backlogged class's head is earning tokens (they were all
         refilled to [now] by the scan): wake the link at the earliest
         head conformance time. *)
      if not !wake_armed then begin
        let at = ref infinity in
        for i = 0 to n_classes - 1 do
          if not (Ring.is_empty queues.(i)) then begin
            let pkt = Ring.peek_exn queues.(i) in
            let flow = pa.Packet.flow.(pkt) in
            let need = float pa.Packet.size_bits.(pkt) in
            (* The 1 ns floor keeps the wake time strictly after [now]
               even when the remaining deficit underflows the float grid
               — otherwise the re-armed waker can stall on one timestamp
               forever. *)
            at :=
              Float.min !at
                (now
                +. Float.max ((need -. !tokens.(flow)) /. !rate.(flow)) 1e-9)
          end
        done;
        wake_armed := true;
        ignore
          (Engine.schedule engine ~at:!at (fun () ->
               wake_armed := false;
               !waker ()))
      end
    end;
    r
  in
  Qdisc.make
    ~attach_waker:(fun w -> waker := w)
    ~enqueue ~dequeue
    ~length:(fun () -> !total)
    ~name:"ATS" ()
