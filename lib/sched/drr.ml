open Ispn_sim
module Ring = Ispn_util.Ring

type flow_state = {
  queue : Packet.t Ring.t;
  mutable deficit : int;
  mutable in_round : bool;
}

(* Standard DRR: when a flow reaches the head of the active list it earns
   one quantum and may send as long as its deficit covers the head packet;
   it then goes to the tail keeping any leftover deficit (reset only when
   it drains).  Because the qdisc interface serves one packet per dequeue,
   [current] remembers the flow whose service opportunity is still open, so
   the quantum is granted once per round — not once per packet.  (An
   earlier version re-credited on every visit, which over-served
   large-packet flows; the mixed-size fairness test pinned this down.)

   Per-flow state is a dense flow-indexed array ([absent] marks unseen
   flows) and the queues are rings, so the per-packet path does no
   hashing and no cons-cell allocation. *)
let create ~pool ~quantum_bits () =
  if quantum_bits <= 0 then invalid_arg "Drr: quantum must be positive";
  let pa = Packet.arena () in
  let absent =
    { queue = Ring.create ~capacity:1 ~dummy:(Packet.dummy ()) ();
      deficit = 0; in_round = false }
  in
  let flows = ref (Array.make 64 absent) in
  let active : int Ring.t = Ring.create ~capacity:64 ~dummy:(-1) () in
  let current = ref (-1) in
  (* -1: no open opportunity *)
  let total = ref 0 in
  let flow_state flow =
    let fs = !flows in
    if flow >= Array.length fs then begin
      let n = Stdlib.max (flow + 1) (2 * Array.length fs) in
      let bigger = Array.make n absent in
      Array.blit fs 0 bigger 0 (Array.length fs);
      flows := bigger
    end;
    let fs = !flows.(flow) in
    if fs != absent then fs
    else begin
      let fs =
        { queue = Ring.create ~capacity:64 ~dummy:(Packet.dummy ()) ();
          deficit = 0; in_round = false }
      in
      !flows.(flow) <- fs;
      fs
    end
  in
  let enqueue ~now pkt =
    pa.Packet.enqueued_at.(pkt) <- now;
    if Qdisc.pool_take pool then begin
      let flow = pa.Packet.flow.(pkt) in
      let fs = flow_state flow in
      Ring.push fs.queue pkt;
      incr total;
      if (not fs.in_round) && !current <> flow then begin
        fs.in_round <- true;
        fs.deficit <- 0;
        Ring.push active flow
      end;
      true
    end
    else false
  in
  (* Serve one packet from [flow] and update its service-opportunity
     state. *)
  let serve flow fs =
    let pkt = Ring.pop_exn fs.queue in
    fs.deficit <- fs.deficit - pa.Packet.size_bits.(pkt);
    decr total;
    Qdisc.pool_release pool;
    if Ring.is_empty fs.queue then begin
      (* Drained: leave the round entirely and forfeit leftover credit. *)
      fs.deficit <- 0;
      fs.in_round <- false;
      current := -1
    end
    else if fs.deficit < pa.Packet.size_bits.(Ring.peek_exn fs.queue) then begin
      (* Opportunity exhausted: back to the tail, keep the remainder. *)
      fs.in_round <- true;
      Ring.push active flow;
      current := -1
    end;
    Some pkt
  in
  let rec dequeue ~now =
    if !current >= 0 then
      (* The open opportunity always covers the head packet (checked when
         it was opened or after the previous send). *)
      serve !current !flows.(!current)
    else if Ring.is_empty active then None
    else begin
      let flow = Ring.pop_exn active in
      let fs = !flows.(flow) in
      if Ring.is_empty fs.queue then begin
        (* Flow drained while waiting its turn. *)
        fs.in_round <- false;
        dequeue ~now
      end
      else begin
        fs.deficit <- fs.deficit + quantum_bits;
        if fs.deficit >= pa.Packet.size_bits.(Ring.peek_exn fs.queue) then begin
          fs.in_round <- false;
          current := flow;
          dequeue ~now
        end
        else begin
          (* Not yet affordable: keep saving, go to the tail. *)
          Ring.push active flow;
          dequeue ~now
        end
      end
    end
  in
  Qdisc.make ~enqueue ~dequeue ~length:(fun () -> !total) ~name:"DRR" ()
