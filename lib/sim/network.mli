(** Topology assembly.

    The paper's multi-hop experiments all run on the Figure-1 chain: hosts
    attached to a line of switches joined by equal-rate links, with every
    flow travelling in the same direction.  [chain] builds that shape for an
    arbitrary switch count and per-link qdisc choice; flows are installed as
    source-routed paths over consecutive switches. *)

type t

val chain :
  engine:Engine.t ->
  n_switches:int ->
  rate_bps:float ->
  ?prop_delay:float ->
  ?recorder:Ispn_obs.Recorder.t ->
  qdisc_of:(int -> Qdisc.t) ->
  unit ->
  t
(** [chain ~n_switches ~qdisc_of ()] creates switches [0 .. n-1] and links
    [0 .. n-2], where link [i] carries traffic from switch [i] to switch
    [i+1] through [qdisc_of i].  [recorder], when given, is shared by every
    link, which stamps events with its index [i] — the per-hop attribution
    in [Ispn_obs.Attrib] relies on this numbering. *)

val engine : t -> Engine.t
val n_switches : t -> int
val n_links : t -> int
val switch : t -> int -> Node.t
val link : t -> int -> Link.t

val install_flow :
  t -> flow:int -> ingress:int -> egress:int -> sink:(Packet.t -> unit) -> unit
(** Route [flow] from switch [ingress] over links [ingress .. egress-1] and
    deliver to [sink] at switch [egress].  [ingress <= egress]; a flow with
    [ingress = egress] is delivered locally without queueing (used by probes
    colocated with the source).  The path length in the paper's sense is
    [egress - ingress] inter-switch links. *)

val inject : t -> at_switch:int -> Packet.t -> unit
(** Host-to-switch links are infinitely fast (Appendix), so injection is a
    direct call into the switch. *)

val total_dropped : t -> int
(** Sum of buffer drops over all links. *)

val utilization : t -> link:int -> elapsed:float -> float

val register_metrics : t -> Ispn_obs.Metrics.t -> unit
(** Register every link's counters under [link.<i>] (0-based link index);
    see {!Link.register_metrics}. *)
