open Ispn_util

type t = {
  qdelays : Fvec.t;
  latencies : Fvec.t;
  mutable received : int;
}

let create () =
  { qdelays = Fvec.create (); latencies = Fvec.create (); received = 0 }

let sink t ~engine pkt =
  let now = Engine.now engine in
  t.received <- t.received + 1;
  let pa = Packet.arena () in
  Fvec.push t.qdelays pa.Packet.qdelay_total.(pkt);
  Fvec.push t.latencies (now -. pa.Packet.created.(pkt));
  (* The probe is a terminal sink: the packet dies here. *)
  Packet.free pkt

let port t ~engine = Node.Deliver (fun pkt -> sink t ~engine pkt)
let received t = t.received
let qdelays t = t.qdelays
let latencies t = t.latencies

let to_units ~link_rate_bps ~packet_bits s =
  Units.packet_times ~link_rate_bps ~packet_bits s

let mean_qdelay ?(link_rate_bps = Units.link_rate_bps)
    ?(packet_bits = Units.packet_bits) t =
  let sum = Fvec.fold ( +. ) 0. t.qdelays in
  let n = Fvec.length t.qdelays in
  if n = 0 then 0.
  else to_units ~link_rate_bps ~packet_bits (sum /. float_of_int n)

let percentile_qdelay ?(link_rate_bps = Units.link_rate_bps)
    ?(packet_bits = Units.packet_bits) t p =
  to_units ~link_rate_bps ~packet_bits (Quantile.percentile t.qdelays p)

let max_qdelay ?(link_rate_bps = Units.link_rate_bps)
    ?(packet_bits = Units.packet_bits) t =
  let m = Fvec.fold Stdlib.max neg_infinity t.qdelays in
  if Fvec.length t.qdelays = 0 then 0.
  else to_units ~link_rate_bps ~packet_bits m
