type t = {
  engine : Engine.t;
  rate_bps : float;
  prop_delay : float;
  qdisc : Qdisc.t;
  link_name : string;
  mutable receiver : (Packet.t -> unit) option;
  mutable drop_hook : (Packet.t -> unit) option;
  mutable wire_filter : (Packet.t -> Packet.t option) option;
  mutable up : bool;
  mutable busy : bool;
  mutable sent : int;
  mutable dropped : int;
  mutable busy_time : float;
  waits : Ispn_util.Stats.t;
}

let set_receiver t f = t.receiver <- Some f
let name t = t.link_name
let qdisc t = t.qdisc
let set_drop_hook t f = t.drop_hook <- Some f
let set_wire_filter t f = t.wire_filter <- Some f
let is_up t = t.up

let drop t pkt =
  t.dropped <- t.dropped + 1;
  match t.drop_hook with Some f -> f pkt | None -> ()

let deliver t pkt =
  let filtered =
    match t.wire_filter with None -> Some pkt | Some f -> f pkt
  in
  match filtered with
  | None -> drop t pkt
  | Some pkt -> (
      match t.receiver with
      | Some f -> f pkt
      | None -> failwith ("Link " ^ t.link_name ^ ": no receiver attached"))

let rec start_transmission t =
  if not t.up then t.busy <- false
  else
    let now = Engine.now t.engine in
    match t.qdisc.Qdisc.dequeue ~now with
    | None -> t.busy <- false
    | Some pkt ->
        t.busy <- true;
        let wait = now -. pkt.Packet.enqueued_at in
        (* A scheduler may not dequeue a packet before it arrived. *)
        assert (wait >= -1e-9);
        let wait = Stdlib.max 0. wait in
        pkt.Packet.qdelay_total <- pkt.Packet.qdelay_total +. wait;
        Ispn_util.Stats.add t.waits wait;
        let tx_time = float_of_int pkt.Packet.size_bits /. t.rate_bps in
        t.busy_time <- t.busy_time +. tx_time;
        let finish () =
          if t.up then begin
            t.sent <- t.sent + 1;
            if t.prop_delay = 0. then deliver t pkt
            else
              ignore
                (Engine.schedule_after t.engine ~delay:t.prop_delay (fun () ->
                     deliver t pkt))
          end
          else
            (* The link failed mid-transmission: the frame is lost. *)
            drop t pkt;
          start_transmission t
        in
        ignore (Engine.schedule_after t.engine ~delay:tx_time finish)

let set_up t up =
  if up && not t.up then begin
    t.up <- true;
    if not t.busy then start_transmission t
  end
  else if (not up) && t.up then t.up <- false

let create ~engine ~rate_bps ?(prop_delay = 0.) ~qdisc ~name () =
  assert (rate_bps > 0. && prop_delay >= 0.);
  let t =
    {
      engine;
      rate_bps;
      prop_delay;
      qdisc;
      link_name = name;
      receiver = None;
      drop_hook = None;
      wire_filter = None;
      up = true;
      busy = false;
      sent = 0;
      dropped = 0;
      busy_time = 0.;
      waits = Ispn_util.Stats.create ();
    }
  in
  (* Non-work-conserving schedulers call this back when a held packet
     becomes eligible while the transmitter is idle. *)
  qdisc.Qdisc.attach_waker (fun () -> if not t.busy then start_transmission t);
  t

let send t pkt =
  let now = Engine.now t.engine in
  pkt.Packet.enqueued_at <- now;
  if t.qdisc.Qdisc.enqueue ~now pkt then begin
    if not t.busy then start_transmission t
  end
  else begin
    Logs.debug ~src:Ispn_util.Log.link (fun m ->
        m "%s: buffer full, dropping flow %d seq %d at t=%.6f" t.link_name
          pkt.Packet.flow pkt.Packet.seq now);
    drop t pkt
  end

let sent t = t.sent
let dropped t = t.dropped
let busy_time t = t.busy_time
let utilization t ~elapsed = if elapsed <= 0. then 0. else t.busy_time /. elapsed
let wait_stats t = t.waits
