module Recorder = Ispn_obs.Recorder

type t = {
  engine : Engine.t;
  pa : Packet.arena;  (* this domain's packet arena, bound at create *)
  rate_bps : float;
  prop_delay : float;
  qdisc : Qdisc.t;
  link_name : string;
  id : int;
  recorder : Recorder.t option;
  mutable tap : Tap.t option;
  mutable receiver : (Packet.t -> unit) option;
  mutable drop_hook : (Packet.t -> unit) option;
  mutable wire_filter : (Packet.t -> Packet.t option) option;
  mutable up : bool;
  mutable busy : bool;
  mutable sent : int;
  mutable dropped : int;
  mutable drops_buffer : int;
  mutable drops_down : int;
  mutable drops_wire : int;
  mutable busy_time : float;
  waits : Ispn_util.Stats.t;
}

let set_receiver t f = t.receiver <- Some f
let name t = t.link_name
let id t = t.id
let qdisc t = t.qdisc
let set_drop_hook t f = t.drop_hook <- Some f
let set_tap t tap = t.tap <- Some tap

let add_tap t tap =
  t.tap <-
    (match t.tap with
    | None -> Some tap
    | Some existing -> Some (Tap.seq existing tap))
let set_wire_filter t f = t.wire_filter <- Some f
let is_up t = t.up

let record t pkt ~kind ~value ~cause =
  match t.recorder with
  | None -> ()
  | Some r ->
      Recorder.record r ~time:(Engine.now t.engine) ~kind ~link:t.id
        ~flow:t.pa.Packet.flow.(pkt) ~seq:t.pa.Packet.seq.(pkt) ~cls:(-1)
        ~offset:t.pa.Packet.offset.(pkt) ~value ~cause

let drop t pkt ~cause =
  t.dropped <- t.dropped + 1;
  (match cause with
  | Recorder.Buffer -> t.drops_buffer <- t.drops_buffer + 1
  | Recorder.Down -> t.drops_down <- t.drops_down + 1
  | Recorder.Wire -> t.drops_wire <- t.drops_wire + 1
  | Recorder.No_cause -> ());
  record t pkt ~kind:Recorder.Drop ~value:0. ~cause;
  (match t.tap with
  | None -> ()
  | Some tp -> tp.Tap.on_drop ~link:t.id ~now:(Engine.now t.engine) ~cause pkt);
  (match t.drop_hook with Some f -> f pkt | None -> ());
  (* A drop is terminal: nothing downstream will see the handle again. *)
  Packet.free pkt

let deliver t pkt =
  let filtered =
    match t.wire_filter with None -> Some pkt | Some f -> f pkt
  in
  match filtered with
  | None -> drop t pkt ~cause:Recorder.Wire
  | Some pkt -> (
      record t pkt ~kind:Recorder.Deliver ~value:t.pa.Packet.qdelay_total.(pkt)
        ~cause:Recorder.No_cause;
      (match t.tap with
      | None -> ()
      | Some tp ->
          tp.Tap.on_deliver ~link:t.id ~now:(Engine.now t.engine) pkt);
      match t.receiver with
      | Some f -> f pkt
      | None -> failwith ("Link " ^ t.link_name ^ ": no receiver attached"))

let rec start_transmission t =
  if not t.up then t.busy <- false
  else
    let now = Engine.now t.engine in
    match t.qdisc.Qdisc.dequeue ~now with
    | None ->
        t.busy <- false;
        (match t.tap with
        | None -> ()
        | Some tp ->
            tp.Tap.on_idle ~link:t.id ~now ~qlen:(t.qdisc.Qdisc.length ()))
    | Some pkt ->
        t.busy <- true;
        let wait = now -. t.pa.Packet.enqueued_at.(pkt) in
        (* A scheduler may not dequeue a packet before it arrived. *)
        assert (wait >= -1e-9);
        let wait = Stdlib.max 0. wait in
        t.pa.Packet.qdelay_total.(pkt) <-
          t.pa.Packet.qdelay_total.(pkt) +. wait;
        Ispn_util.Stats.add t.waits wait;
        let tx_time =
          float_of_int t.pa.Packet.size_bits.(pkt) /. t.rate_bps
        in
        t.busy_time <- t.busy_time +. tx_time;
        record t pkt ~kind:Recorder.Dequeue ~value:wait
          ~cause:Recorder.No_cause;
        record t pkt ~kind:Recorder.Tx_start ~value:tx_time
          ~cause:Recorder.No_cause;
        (match t.tap with
        | None -> ()
        | Some tp -> tp.Tap.on_dequeue ~link:t.id ~now ~wait pkt);
        let finish () =
          if t.up then begin
            t.sent <- t.sent + 1;
            if t.prop_delay = 0. then deliver t pkt
            else
              ignore
                (Engine.schedule_after t.engine ~delay:t.prop_delay (fun () ->
                     deliver t pkt))
          end
          else
            (* The link failed mid-transmission: the frame is lost. *)
            drop t pkt ~cause:Recorder.Down;
          start_transmission t
        in
        ignore (Engine.schedule_after t.engine ~delay:tx_time finish)

let set_up t up =
  if up && not t.up then begin
    t.up <- true;
    if not t.busy then start_transmission t
  end
  else if (not up) && t.up then t.up <- false

let create ~engine ~rate_bps ?(prop_delay = 0.) ?(id = 0) ?recorder ~qdisc
    ~name () =
  assert (rate_bps > 0. && prop_delay >= 0.);
  let t =
    {
      engine;
      pa = Packet.arena ();
      rate_bps;
      prop_delay;
      qdisc;
      link_name = name;
      id;
      recorder;
      tap = None;
      receiver = None;
      drop_hook = None;
      wire_filter = None;
      up = true;
      busy = false;
      sent = 0;
      dropped = 0;
      drops_buffer = 0;
      drops_down = 0;
      drops_wire = 0;
      busy_time = 0.;
      waits = Ispn_util.Stats.create ();
    }
  in
  (* Non-work-conserving schedulers call this back when a held packet
     becomes eligible while the transmitter is idle. *)
  qdisc.Qdisc.attach_waker (fun () -> if not t.busy then start_transmission t);
  t

let send t pkt =
  let now = Engine.now t.engine in
  let qdelay_before = t.pa.Packet.qdelay_total.(pkt) in
  t.pa.Packet.enqueued_at.(pkt) <- now;
  if t.qdisc.Qdisc.enqueue ~now pkt then begin
    record t pkt ~kind:Recorder.Enqueue ~value:qdelay_before
      ~cause:Recorder.No_cause;
    (match t.tap with
    | None -> ()
    | Some tp -> tp.Tap.on_enqueue ~link:t.id ~now pkt);
    if not t.busy then start_transmission t
  end
  else begin
    Logs.debug ~src:Ispn_util.Log.link (fun m ->
        m "%s: buffer full, dropping flow %d seq %d at t=%.6f" t.link_name
          t.pa.Packet.flow.(pkt) t.pa.Packet.seq.(pkt) now);
    drop t pkt ~cause:Recorder.Buffer
  end

let sent t = t.sent
let dropped t = t.dropped
let drops_buffer t = t.drops_buffer
let drops_down t = t.drops_down
let drops_wire t = t.drops_wire
let busy_time t = t.busy_time
let utilization t ~elapsed = if elapsed <= 0. then 0. else t.busy_time /. elapsed
let wait_stats t = t.waits

let register_metrics t m ~prefix =
  let module M = Ispn_obs.Metrics in
  M.register_int m (prefix ^ ".sent") (fun () -> t.sent);
  M.register_int m (prefix ^ ".drops.buffer") (fun () -> t.drops_buffer);
  M.register_int m (prefix ^ ".drops.down") (fun () -> t.drops_down);
  M.register_int m (prefix ^ ".drops.wire") (fun () -> t.drops_wire);
  M.register_float m (prefix ^ ".busy_time") (fun () -> t.busy_time);
  M.register_int m (prefix ^ ".qdisc.len") (fun () -> t.qdisc.Qdisc.length ());
  M.register_stats m (prefix ^ ".wait") t.waits
