(* Packets are int handles into a per-domain struct-of-arrays arena.
   Field reads and writes are plain array indexing, so the hot per-hop
   stores (enqueued_at, qdelay_total, offset) are unboxed float array
   writes — a mutable float field of the old mixed record boxed a fresh
   float on every store.  Slots recycle through a free list with
   take/release accounting (audited like the link buffer pools); handle 0
   is a permanent dummy for preallocated container payloads.

   The arena is domain-local (Domain.DLS): every simulation runs wholly
   inside one domain ([Ispn_exec.Pool] jobs), so its packets live and die
   in that domain's arena and no cross-domain handle exists.  Handle
   VALUES depend on the domain's allocation history and are therefore not
   [-j]-deterministic — never order, hash, or print by handle; use the
   [flow]/[seq] fields. *)

type kind = Data | Ack

type arena = {
  mutable flow : int array;
  mutable seq : int array;
  mutable size_bits : int array;
  mutable kind : kind array;
  mutable created : float array;
  mutable offset : float array;
  mutable qdelay_total : float array;
  mutable enqueued_at : float array;
  mutable hops : int array;
  mutable alive : bool array;
  mutable free_list : int array;
  mutable free_len : int;
  mutable used : int; (* slots handed out at least once, incl. the dummy *)
  mutable takes : int;
  mutable releases : int;
  mutable in_use : int;
  mutable hwm : int;
  mutable bad_frees : int;
}

type t = int

let initial_capacity = 256

let new_arena () =
  let a =
    {
      flow = Array.make initial_capacity (-1);
      seq = Array.make initial_capacity (-1);
      size_bits = Array.make initial_capacity 0;
      kind = Array.make initial_capacity Data;
      created = Array.make initial_capacity 0.;
      offset = Array.make initial_capacity 0.;
      qdelay_total = Array.make initial_capacity 0.;
      enqueued_at = Array.make initial_capacity 0.;
      hops = Array.make initial_capacity 0;
      alive = Array.make initial_capacity false;
      free_list = Array.make initial_capacity 0;
      free_len = 0;
      used = 1;
      takes = 0;
      releases = 0;
      in_use = 0;
      hwm = 0;
      bad_frees = 0;
    }
  in
  (* Slot 0: the permanent dummy (never allocated, never freed). *)
  a.alive.(0) <- true;
  a

let key = Domain.DLS.new_key new_arena
let arena () = Domain.DLS.get key

let grow a =
  let old = Array.length a.flow in
  let extend_i src = Array.append src (Array.make old 0) in
  a.flow <- extend_i a.flow;
  a.seq <- extend_i a.seq;
  a.size_bits <- extend_i a.size_bits;
  a.kind <- Array.append a.kind (Array.make old Data);
  let extend_f src = Array.append src (Array.make old 0.) in
  a.created <- extend_f a.created;
  a.offset <- extend_f a.offset;
  a.qdelay_total <- extend_f a.qdelay_total;
  a.enqueued_at <- extend_f a.enqueued_at;
  a.hops <- extend_i a.hops;
  a.alive <- Array.append a.alive (Array.make old false);
  a.free_list <- extend_i a.free_list

let make ~flow ~seq ?(size_bits = Ispn_util.Units.packet_bits) ?(kind = Data)
    ~created () =
  let a = arena () in
  let i =
    if a.free_len > 0 then begin
      a.free_len <- a.free_len - 1;
      a.free_list.(a.free_len)
    end
    else begin
      if a.used = Array.length a.flow then grow a;
      let i = a.used in
      a.used <- i + 1;
      i
    end
  in
  a.flow.(i) <- flow;
  a.seq.(i) <- seq;
  a.size_bits.(i) <- size_bits;
  a.kind.(i) <- kind;
  a.created.(i) <- created;
  a.offset.(i) <- 0.;
  a.qdelay_total.(i) <- 0.;
  a.enqueued_at.(i) <- created;
  a.hops.(i) <- 0;
  a.alive.(i) <- true;
  a.takes <- a.takes + 1;
  a.in_use <- a.in_use + 1;
  if a.in_use > a.hwm then a.hwm <- a.in_use;
  i

let free p =
  if p > 0 then begin
    let a = arena () in
    if a.alive.(p) then begin
      a.alive.(p) <- false;
      a.free_list.(a.free_len) <- p;
      a.free_len <- a.free_len + 1;
      a.releases <- a.releases + 1;
      a.in_use <- a.in_use - 1
    end
    else a.bad_frees <- a.bad_frees + 1
  end

let dummy () = 0
let flow p = (arena ()).flow.(p)
let seq p = (arena ()).seq.(p)
let size_bits p = (arena ()).size_bits.(p)
let kind p = (arena ()).kind.(p)
let created p = (arena ()).created.(p)
let offset p = (arena ()).offset.(p)
let qdelay_total p = (arena ()).qdelay_total.(p)
let enqueued_at p = (arena ()).enqueued_at.(p)
let hops p = (arena ()).hops.(p)
let alive p = (arena ()).alive.(p)
let set_offset p v = (arena ()).offset.(p) <- v
let set_qdelay_total p v = (arena ()).qdelay_total.(p) <- v
let set_enqueued_at p v = (arena ()).enqueued_at.(p) <- v
let set_hops p v = (arena ()).hops.(p) <- v

let expected_arrival p =
  let a = arena () in
  a.enqueued_at.(p) -. a.offset.(p)

type pool_stats = {
  p_takes : int;
  p_releases : int;
  p_in_use : int;
  p_hwm : int;
  p_capacity : int;
  p_bad_frees : int;
}

let pool_stats () =
  let a = arena () in
  {
    p_takes = a.takes;
    p_releases = a.releases;
    p_in_use = a.in_use;
    p_hwm = a.hwm;
    p_capacity = Array.length a.flow;
    p_bad_frees = a.bad_frees;
  }

let pp ppf p =
  let a = arena () in
  Format.fprintf ppf "pkt(flow=%d seq=%d %s created=%.6f off=%.6f)" a.flow.(p)
    a.seq.(p)
    (match a.kind.(p) with Data -> "data" | Ack -> "ack")
    a.created.(p) a.offset.(p)
