type kind = Data | Ack

type t = {
  flow : int;
  seq : int;
  size_bits : int;
  kind : kind;
  created : float;
  mutable offset : float;
  mutable qdelay_total : float;
  mutable enqueued_at : float;
  mutable hops : int;
}

let make ~flow ~seq ?(size_bits = Ispn_util.Units.packet_bits) ?(kind = Data)
    ~created () =
  {
    flow;
    seq;
    size_bits;
    kind;
    created;
    offset = 0.;
    qdelay_total = 0.;
    enqueued_at = created;
    hops = 0;
  }

let expected_arrival p = p.enqueued_at -. p.offset

let pp ppf p =
  Format.fprintf ppf "pkt(flow=%d seq=%d %s created=%.6f off=%.6f)" p.flow
    p.seq
    (match p.kind with Data -> "data" | Ack -> "ack")
    p.created p.offset

let dummy () = make ~flow:(-1) ~seq:(-1) ~created:0. ()
