type pool = {
  capacity : int;
  mutable in_use : int;
  mutable hwm : int;
  mutable takes : int;
  mutable releases : int;
}

let pool ~capacity =
  assert (capacity > 0);
  { capacity; in_use = 0; hwm = 0; takes = 0; releases = 0 }

let pool_take p =
  if p.in_use >= p.capacity then false
  else begin
    p.in_use <- p.in_use + 1;
    p.takes <- p.takes + 1;
    if p.in_use > p.hwm then p.hwm <- p.in_use;
    true
  end

let pool_release p =
  assert (p.in_use > 0);
  p.in_use <- p.in_use - 1;
  p.releases <- p.releases + 1

let pool_in_use p = p.in_use
let pool_hwm p = p.hwm
let pool_capacity p = p.capacity
let pool_takes p = p.takes
let pool_releases p = p.releases

let unbounded_pool () =
  { capacity = max_int; in_use = 0; hwm = 0; takes = 0; releases = 0 }

type t = {
  enqueue : now:float -> Packet.t -> bool;
  dequeue : now:float -> Packet.t option;
  length : unit -> int;
  name : string;
  attach_waker : (unit -> unit) -> unit;
}

let make ?(attach_waker = fun _ -> ()) ~enqueue ~dequeue ~length ~name () =
  { enqueue; dequeue; length; name; attach_waker }
