(** Neutral per-link monitor hooks.

    A tap is a record of callbacks a {!Link} invokes at its packet-path
    decision points: qdisc accept ([on_enqueue]), start of transmission
    ([on_dequeue], with this hop's measured wait), the transmitter going
    idle because the qdisc returned no packet ([on_idle], with the qdisc's
    reported backlog at that instant), hand-off to the receiver
    ([on_deliver]) and every loss path ([on_drop], with the recorder
    cause).

    Like the flight recorder, taps are opt-in and free when absent: a link
    without one pays a single [match] per event.  [Ispn_check.Audit] is
    the canonical consumer; the type lives here so that [ispn_sim] never
    depends on the checker. *)

type t = {
  on_enqueue : link:int -> now:float -> Packet.t -> unit;
  on_dequeue : link:int -> now:float -> wait:float -> Packet.t -> unit;
  on_idle : link:int -> now:float -> qlen:int -> unit;
  on_deliver : link:int -> now:float -> Packet.t -> unit;
  on_drop :
    link:int -> now:float -> cause:Ispn_obs.Recorder.cause -> Packet.t -> unit;
}

val nop : t

val seq : t -> t -> t
(** [seq a b] invokes [a]'s callback then [b]'s at every decision point, so
    independent consumers (the invariant auditor, delay histograms) can
    share one link — see [Link.add_tap]. *)

val make :
  ?on_enqueue:(link:int -> now:float -> Packet.t -> unit) ->
  ?on_dequeue:(link:int -> now:float -> wait:float -> Packet.t -> unit) ->
  ?on_idle:(link:int -> now:float -> qlen:int -> unit) ->
  ?on_deliver:(link:int -> now:float -> Packet.t -> unit) ->
  ?on_drop:
    (link:int -> now:float -> cause:Ispn_obs.Recorder.cause -> Packet.t -> unit) ->
  unit ->
  t
(** Unspecified callbacks default to no-ops. *)
