type event = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

type stats = { events_fired : int; cancels_skipped : int }

type t = {
  mutable clock : float;
  mutable next_seq : int;
  mutable live : int;
  mutable live_hwm : int;
  mutable fired : int;
  mutable skipped : int;
  heap : event Ispn_util.Heap.t;
}

let compare_event a b =
  match compare a.time b.time with 0 -> compare a.seq b.seq | c -> c

let create () =
  {
    clock = 0.;
    next_seq = 0;
    live = 0;
    live_hwm = 0;
    fired = 0;
    skipped = 0;
    heap = Ispn_util.Heap.create ~cmp:compare_event ();
  }

let stats t = { events_fired = t.fired; cancels_skipped = t.skipped }

let now t = t.clock

let schedule t ~at action =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%g is before now=%g" at t.clock);
  let ev = { time = at; seq = t.next_seq; action; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  if t.live > t.live_hwm then t.live_hwm <- t.live;
  Ispn_util.Heap.push t.heap ev;
  ev

let schedule_after t ~delay action =
  if delay < 0. then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(t.clock +. delay) action

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1
  end

let pending t = t.live
let heap_depth_hwm t = t.live_hwm

let register_metrics t m =
  let module M = Ispn_obs.Metrics in
  M.register_int m "engine.events_fired" (fun () -> t.fired);
  M.register_int m "engine.cancels_skipped" (fun () -> t.skipped);
  M.register_int m "engine.heap_depth_hwm" (fun () -> t.live_hwm);
  M.register_int m "engine.pending" (fun () -> t.live)

let fire t ev =
  if ev.cancelled then t.skipped <- t.skipped + 1
  else begin
    t.live <- t.live - 1;
    t.clock <- ev.time;
    t.fired <- t.fired + 1;
    ev.action ()
  end

let step t =
  if Ispn_util.Heap.is_empty t.heap then false
  else begin
    fire t (Ispn_util.Heap.pop_exn t.heap);
    true
  end

(* The per-event hot path: drain via the exception-free-on-success
   [peek_exn]/[pop_exn] pair so the loop allocates nothing per event
   (the option-returning [peek]/[pop] box every element in a [Some]). *)
let run t ~until =
  let heap = t.heap in
  let rec loop () =
    if not (Ispn_util.Heap.is_empty heap) then begin
      let ev = Ispn_util.Heap.peek_exn heap in
      if ev.time <= until then begin
        ignore (Ispn_util.Heap.pop_exn heap : event);
        fire t ev;
        loop ()
      end
    end
  in
  loop ();
  t.clock <- Stdlib.max t.clock until

let run_until_idle t ~max_events =
  let rec loop n =
    if n > max_events then failwith "Engine.run_until_idle: event budget blown"
    else if step t then loop (n + 1)
  in
  loop 0
