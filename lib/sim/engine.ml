(* Events live in a struct-of-arrays arena (time, action, generation) and
   are named by int handles — index in the low bits, the slot's generation
   above — so scheduling allocates nothing and a stale handle can never
   touch a recycled slot.  The pending set is an [Ispn_util.Wheel] of
   handles keyed by firing time: O(1) insert, exact (time, seq) drain
   order.  Cancellation is lazy, as before: it bumps the slot's
   generation, and the wheel entry is discarded (and the slot recycled)
   when it surfaces. *)

type handle = int

let idx_bits = 24
let idx_mask = (1 lsl idx_bits) - 1

type stats = { events_fired : int; cancels_skipped : int }

let nop () = ()

(* Engine times are seconds; 1 us level-0 slots put the common event
   spacings (packet transmissions, propagation delays) within one or two
   cascades of the cursor.  Ordering is exact regardless (Wheel contract). *)
let wheel_tick = 1e-6

(* The clock sits in its own all-float record so updating it stores an
   unboxed float; as a mutable float field of the mixed record below every
   [fire] would box a fresh float. *)
type fclock = { mutable v : float }

type t = {
  clock : fclock;
  mutable live : int;
  mutable live_hwm : int;
  mutable fired : int;
  mutable skipped : int;
  wheel : handle Ispn_util.Wheel.t;
  (* Event arena. *)
  mutable times : float array;
  mutable actions : (unit -> unit) array;
  mutable gens : int array;
  mutable free : int array; (* stack of recycled slots *)
  mutable free_len : int;
  mutable used : int; (* slots handed out at least once *)
  (* Batch-fire buffers for [run]: one [Wheel.pop_batch] per occupied
     tick lands here, then the firing loop walks them without re-entering
     the wheel between events. *)
  bkeys : float array;
  bseqs : int array;
  bhs : int array;
}

let batch_cap = 128

let create () =
  {
    clock = { v = 0. };
    live = 0;
    live_hwm = 0;
    fired = 0;
    skipped = 0;
    wheel = Ispn_util.Wheel.create ~capacity:64 ~tick:wheel_tick ~dummy:(-1) ();
    times = Array.make 64 0.;
    actions = Array.make 64 nop;
    gens = Array.make 64 0;
    free = Array.make 64 0;
    free_len = 0;
    used = 0;
    bkeys = Array.make batch_cap 0.;
    bseqs = Array.make batch_cap 0;
    bhs = Array.make batch_cap (-1);
  }

let stats t = { events_fired = t.fired; cancels_skipped = t.skipped }

let now t = t.clock.v

let grow_arena t =
  let old = Array.length t.times in
  let cap = 2 * old in
  if cap > idx_mask then failwith "Engine: event arena exceeds handle range";
  let times = Array.make cap 0. in
  let actions = Array.make cap nop in
  let gens = Array.make cap 0 in
  let free = Array.make cap 0 in
  Array.blit t.times 0 times 0 old;
  Array.blit t.actions 0 actions 0 old;
  Array.blit t.gens 0 gens 0 old;
  Array.blit t.free 0 free 0 t.free_len;
  t.times <- times;
  t.actions <- actions;
  t.gens <- gens;
  t.free <- free

let alloc_slot t =
  if t.free_len > 0 then begin
    t.free_len <- t.free_len - 1;
    t.free.(t.free_len)
  end
  else begin
    if t.used = Array.length t.times then grow_arena t;
    let i = t.used in
    t.used <- i + 1;
    i
  end

(* The arena write goes through [t.times] and the wheel reads the key
   back out of that same array ([push_from]), so the event time never
   crosses a call boundary as a bare float — which would box it. *)
let finish_schedule t idx action =
  t.actions.(idx) <- action;
  t.live <- t.live + 1;
  if t.live > t.live_hwm then t.live_hwm <- t.live;
  let h = (t.gens.(idx) lsl idx_bits) lor idx in
  Ispn_util.Wheel.push_from t.wheel t.times idx h;
  h

let schedule t ~at action =
  if at < t.clock.v then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%g is before now=%g" at t.clock.v);
  let idx = alloc_slot t in
  t.times.(idx) <- at;
  finish_schedule t idx action

let schedule_after t ~delay action =
  if delay < 0. then invalid_arg "Engine.schedule_after: negative delay";
  (* Not [schedule ~at:(now +. delay)]: the sum is stored straight into
     the arena so it stays unboxed, and [delay >= 0] already implies the
     time is not in the past. *)
  let idx = alloc_slot t in
  t.times.(idx) <- t.clock.v +. delay;
  finish_schedule t idx action

(* A live slot's generation matches its outstanding handle; firing or
   cancelling bumps it, so the second of the two (and any later cancel)
   sees a mismatch and does nothing. *)
let cancel t h =
  let idx = h land idx_mask in
  if t.gens.(idx) lsl idx_bits lor idx = h then begin
    t.gens.(idx) <- t.gens.(idx) + 1;
    t.actions.(idx) <- nop;
    t.live <- t.live - 1
  end

let pending t = t.live
let heap_depth_hwm t = t.live_hwm

let register_metrics t m =
  let module M = Ispn_obs.Metrics in
  M.register_int m "engine.events_fired" (fun () -> t.fired);
  M.register_int m "engine.cancels_skipped" (fun () -> t.skipped);
  M.register_int m "engine.heap_depth_hwm" (fun () -> t.live_hwm);
  M.register_int m "engine.pending" (fun () -> t.live)

let attach_series t s =
  let interval = Ispn_obs.Series.interval s in
  let rec tick () =
    Ispn_obs.Series.sample s ~now:t.clock.v;
    ignore (schedule_after t ~delay:interval tick)
  in
  tick ()

let release t idx =
  t.free.(t.free_len) <- idx;
  t.free_len <- t.free_len + 1

let fire t h =
  let idx = h land idx_mask in
  if t.gens.(idx) lsl idx_bits lor idx = h then begin
    let action = t.actions.(idx) in
    t.clock.v <- t.times.(idx);
    t.gens.(idx) <- t.gens.(idx) + 1;
    t.actions.(idx) <- nop;
    release t idx;
    t.live <- t.live - 1;
    t.fired <- t.fired + 1;
    action ()
  end
  else begin
    (* Cancelled while queued; reclaim the slot now that it surfaced. *)
    release t idx;
    t.skipped <- t.skipped + 1
  end

let step t =
  if Ispn_util.Wheel.is_empty t.wheel then false
  else begin
    fire t (Ispn_util.Wheel.pop_exn t.wheel);
    true
  end

(* The drain hot path: one [pop_batch] per occupied tick pulls that
   tick's whole cross-section into the engine's buffers, then the firing
   loop walks them without re-entering the wheel between events.  An
   action may schedule into the span the buffered tail still covers; the
   wheel's push guard is armed with the batch's last key, and on a hit
   the unfired tail is spliced back (original seqs, so FIFO ties against
   the interloper survive) and re-popped in merged order.  Sub-tick
   delays are the only way to trigger this, so the splice path stays
   cold.  All buffer traffic is array-to-array — nothing boxes. *)
let run t ~until =
  let wheel = t.wheel in
  let g = Ispn_util.Wheel.guard wheel in
  let bkeys = t.bkeys and bseqs = t.bseqs and bhs = t.bhs in
  let n =
    ref (Ispn_util.Wheel.pop_batch wheel ~until ~keys:bkeys ~seqs:bseqs bhs)
  in
  while !n > 0 do
    let last = !n - 1 in
    g.(0) <- bkeys.(last);
    let j = ref 0 in
    while !j < last do
      fire t bhs.(!j);
      incr j;
      if Ispn_util.Wheel.guard_hit wheel then begin
        (* An action scheduled under a still-buffered key: return the
           unfired tail and let the next pop re-merge. *)
        Ispn_util.Wheel.guard_clear wheel;
        for k = !j to last do
          Ispn_util.Wheel.reinsert wheel ~key:bkeys.(k) ~seq:bseqs.(k)
            bhs.(k)
        done;
        j := !n (* tail returned; leave the firing loop *)
      end
    done;
    if !j = last then begin
      (* Last element: nothing buffered behind it, disarm before firing
         so its action's pushes can't trip the guard. *)
      g.(0) <- neg_infinity;
      fire t bhs.(last)
    end;
    n := Ispn_util.Wheel.pop_batch wheel ~until ~keys:bkeys ~seqs:bseqs bhs
  done;
  g.(0) <- neg_infinity;
  if until > t.clock.v then t.clock.v <- until

let run_until_idle t ~max_events =
  let rec loop n =
    if n > max_events then failwith "Engine.run_until_idle: event budget blown"
    else if step t then loop (n + 1)
  in
  loop 0
