(** Queueing-discipline interface.

    A link owns exactly one qdisc; composite schedulers (strict priority over
    FIFO+ classes, the unified CSZ scheduler) are themselves qdiscs built
    from inner ones.  The interface is a record of closures rather than a
    functor so that heterogeneous schedulers can be swapped per link at
    runtime — the benchmark harness runs identical workloads over FIFO, WFQ
    and FIFO+ by substituting this value.

    Buffer accounting uses a shared {!pool} so that a composite scheduler's
    sub-queues jointly respect the paper's 200-packet-per-link budget. *)

type pool
(** Shared packet-buffer budget for one output link. *)

val pool : capacity:int -> pool
val pool_take : pool -> bool
(** Reserve one buffer; [false] when the pool is exhausted (drop). *)

val pool_release : pool -> unit
val pool_in_use : pool -> int

val pool_hwm : pool -> int
(** High-water mark of {!pool_in_use} since creation — how close the link's
    buffer budget came to exhaustion.  Tracked unconditionally (one compare
    per take); exported as the [link.<i>.pool.in_use_hwm] metric. *)

val pool_capacity : pool -> int

val pool_takes : pool -> int
(** Successful {!pool_take}s since creation (rejected takes don't count). *)

val pool_releases : pool -> int
(** {!pool_release}s since creation.  The accounting invariant checked by
    [Ispn_check.Audit] is [takes = releases + in_use] at all times. *)

val unbounded_pool : unit -> pool
(** A pool that never rejects; for analytic tests. *)

type t = {
  enqueue : now:float -> Packet.t -> bool;
      (** [false] means the packet was dropped (buffer full); the caller owns
          drop accounting.  Schedulers stamp [Packet.enqueued_at] with [now]
          themselves, so a qdisc can be driven directly in tests. *)
  dequeue : now:float -> Packet.t option;
      (** Called by the link at the instant transmission could begin.
          Schedulers measure a packet's queueing delay here as
          [now - enqueued_at].  A non-work-conserving scheduler may return
          [None] while holding packets; it must then use its waker to call
          the link back when the head packet becomes eligible. *)
  length : unit -> int;  (** Packets currently queued. *)
  name : string;  (** For reports and traces. *)
  attach_waker : (unit -> unit) -> unit;
      (** The link passes in a thunk that restarts its transmitter; only
          non-work-conserving schedulers (Stop-and-Go, HRR, Jitter-EDD)
          keep it. *)
}

val make :
  ?attach_waker:((unit -> unit) -> unit) ->
  enqueue:(now:float -> Packet.t -> bool) ->
  dequeue:(now:float -> Packet.t option) ->
  length:(unit -> int) ->
  name:string ->
  unit ->
  t
(** Smart constructor; [attach_waker] defaults to dropping the thunk, which
    is correct for every work-conserving scheduler. *)

