(** Wire encoding of the packet header.

    Section 12 proposes "that the control field (the jitter offset) be
    defined as part of the packet header"; this module pins down a concrete
    16-byte layout so that the field's precision and range are explicit,
    and so switches that "naturally produce very low jitters ... could just
    ignore the field":

    {v
      offset  size  field
      0       1     version (currently 1)
      1       1     kind (0 = data, 1 = ack)
      2       2     payload size in bits, big-endian (0..65535)
      4       4     flow id, big-endian
      8       4     sequence number, big-endian
      12      4     jitter offset, signed microseconds, big-endian
    v}

    The jitter offset is saturated to the representable +-2147 s; at the
    paper's delay scales (milliseconds) the microsecond quantization error
    is three orders of magnitude below the measured quantities. *)

val header_bytes : int
(** 16. *)

val version : int

exception Malformed of string

val encode : Packet.t -> bytes
(** Serialize the header fields of a packet.  Raises [Invalid_argument] if
    the packet's size, flow or sequence number exceed the field ranges. *)

val decode : ?created:float -> bytes -> Packet.t
(** Parse a header back into a packet ([created] defaults to 0; transit
    bookkeeping fields start fresh).  Raises {!Malformed} on short input,
    bad version, unknown kind, or a negative flow/sequence field (a flipped
    sign bit on the wire); every field of a successfully decoded packet is
    back in {!encode}'s accepted range. *)

val offset_quantum : float
(** 1e-6 s: the precision the offset field survives a round trip with. *)
