type t = {
  on_enqueue : link:int -> now:float -> Packet.t -> unit;
  on_dequeue : link:int -> now:float -> wait:float -> Packet.t -> unit;
  on_idle : link:int -> now:float -> qlen:int -> unit;
  on_deliver : link:int -> now:float -> Packet.t -> unit;
  on_drop :
    link:int -> now:float -> cause:Ispn_obs.Recorder.cause -> Packet.t -> unit;
}

let nop =
  {
    on_enqueue = (fun ~link:_ ~now:_ _ -> ());
    on_dequeue = (fun ~link:_ ~now:_ ~wait:_ _ -> ());
    on_idle = (fun ~link:_ ~now:_ ~qlen:_ -> ());
    on_deliver = (fun ~link:_ ~now:_ _ -> ());
    on_drop = (fun ~link:_ ~now:_ ~cause:_ _ -> ());
  }

let seq a b =
  {
    on_enqueue =
      (fun ~link ~now pkt ->
        a.on_enqueue ~link ~now pkt;
        b.on_enqueue ~link ~now pkt);
    on_dequeue =
      (fun ~link ~now ~wait pkt ->
        a.on_dequeue ~link ~now ~wait pkt;
        b.on_dequeue ~link ~now ~wait pkt);
    on_idle =
      (fun ~link ~now ~qlen ->
        a.on_idle ~link ~now ~qlen;
        b.on_idle ~link ~now ~qlen);
    on_deliver =
      (fun ~link ~now pkt ->
        a.on_deliver ~link ~now pkt;
        b.on_deliver ~link ~now pkt);
    on_drop =
      (fun ~link ~now ~cause pkt ->
        a.on_drop ~link ~now ~cause pkt;
        b.on_drop ~link ~now ~cause pkt);
  }

let make ?(on_enqueue = nop.on_enqueue) ?(on_dequeue = nop.on_dequeue)
    ?(on_idle = nop.on_idle) ?(on_deliver = nop.on_deliver)
    ?(on_drop = nop.on_drop) () =
  { on_enqueue; on_dequeue; on_idle; on_deliver; on_drop }
