(** One simulation sharded across OCaml 5 domains (conservative PDES).

    The paper's experiments run one topology on one engine; this module
    partitions a single simulation over several domains so a large
    topology (ROADMAP item 1: city-scale scenarios) uses every core.
    Synchronization is conservative, Chandy–Misra–Bryant style: the
    switches are split into shards, each shard owns an {!Engine}, the
    links it transmits on, and — via the per-domain arena — every packet
    currently inside it, and all shards advance in lock-step windows no
    wider than the minimum cross-shard propagation delay (the lookahead).
    A packet leaving shard A in window [k] therefore arrives at shard B
    in window [k+1] or later and is handed over at the barrier.

    Handles never cross domains: a cross-shard link marshals the
    packet's arena fields into a fixed-layout exchange buffer (freeing
    the handle in the source arena) and the destination shard re-makes
    the packet in its own arena when it drains its inboxes.  Inboxes
    drain in canonical order — ascending global link id, entries in
    production time order — so simultaneous handoffs schedule
    identically at every shard count.

    {b Determinism contract} (same as [-j]): for a workload whose
    cross-path arrivals never tie on the exact same float instant — the
    [Csz.Extensions] generators ensure this with distinct per-link
    propagation delays and randomized sources — stdout, metrics and
    check output derived from {!result} are byte-identical for every
    [n_shards], including 1.  CI gates [scale --shards 1] vs
    [--shards 4] with [cmp]. *)

type link_spec = {
  l_src : int;
  l_dst : int;
  l_rate_bps : float;
  l_prop_delay : float;  (** Must be [> 0] when the link crosses shards. *)
  l_qdisc : unit -> Qdisc.t;
      (** Invoked inside the owning shard's domain — safe to allocate
          pools or read the arena in the factory. *)
}

type flow_spec = {
  f_src : int;
  f_dst : int;
  f_driver : Engine.t -> (Packet.t -> unit) -> unit;
      (** Called once, inside the ingress shard's domain, with that
          shard's engine and an emit function that injects at [f_src];
          it must build and start the flow's traffic source.  Packets
          made by the driver live in the ingress domain's arena. *)
}

type spec = {
  n_switches : int;
  n_shards : int;
  shard_of : int array;  (** Switch id to shard, length [n_switches]. *)
  links : link_spec array;
      (** Global link ids are indices into this array; keep the order
          canonical (it fixes the exchange drain order). *)
  flows : flow_spec array;  (** Flow ids are indices into this array. *)
}

type flow_stat = {
  f_delivered : int;
  f_delay_sum : float;  (** End-to-end, seconds, over delivered packets. *)
  f_delay_max : float;
  f_qdelay_sum : float;
  f_digest : int;
      (** Order-sensitive fold over the [(seq, delay)] delivery stream —
          lets tests compare full per-flow histories across widths. *)
}

type link_stat = { k_sent : int; k_dropped : int; k_drops_buffer : int }

type result = {
  r_flows : flow_stat array;  (** By flow id; shard-count-independent. *)
  r_links : link_stat array;  (** By link id; shard-count-independent. *)
  r_shards : int;
  r_windows : int;  (** Lock-step windows executed ([1] when unsharded). *)
  r_lookahead : float;  (** Window width: min cross-shard prop delay. *)
  r_cut_links : int;
  r_pushed : int;  (** Packets marshalled out across all cut links. *)
  r_drained : int;  (** Packets re-made at destinations; equals
                        [r_pushed] when the run ends quiescent. *)
  r_fired : int;  (** Engine events fired, summed over shards. *)
  r_in_use : int;  (** Packets still alive across all arenas at the end
                       (in-flight deliveries scheduled past [until]). *)
}

val run :
  ?on_link:(shard:int -> Link.t -> unit) ->
  ?on_shard:(shard:int -> Engine.t -> unit) ->
  ?until:float ->
  spec ->
  result
(** [run spec] builds each shard inside a fresh domain (own engine, own
    packet arena), runs the windowed lock-step to [until] (default 60 s)
    and merges per-flow and per-link results in canonical index order.
    [on_link] is called in the owning shard's domain for every link as
    it is built — the hook for [--check] audit contexts and [--metrics]
    registration (one context per shard; their summaries and snapshots
    are plain data, mergeable after the run).  [on_shard] is called once
    per shard, in its domain, after the shard's links and flows are
    wired but before the first window — the hook for per-shard engine
    attachments such as [--series] samplers.  Raises [Invalid_argument]
    for inconsistent specs, including a cross-shard link with zero
    propagation delay (no lookahead, no conservative window). *)

(**/**)

(** Exposed for the budget tests only: the marshal / re-make exchange
    primitives, drivable on one domain. *)
module For_tests : sig
  type buf

  val buf : unit -> buf
  val push : buf -> Packet.arena -> Packet.t -> arrival:float -> unit
  val remake : buf -> Packet.arena -> int -> Packet.t
  val len : buf -> int
  val reset : buf -> unit
end
