(** Packets.

    One record per packet in flight.  Besides addressing, a packet carries
    the two header fields the CSZ mechanism needs:

    - [offset] — the FIFO+ jitter-offset field (Section 6): the accumulated
      difference between this packet's per-hop queueing delays and the
      average delay of its sharing class at each hop.  The paper proposes
      this field become part of the packet header; here it is a float field.
    - [qdelay_total] — bookkeeping (not a real header field): the summed
      queueing (waiting) delay across hops, which is exactly the quantity
      Tables 1-3 report per flow. *)

type kind =
  | Data
  | Ack  (** Transport acknowledgment (used by the TCP substrate). *)

type t = {
  flow : int;  (** Flow identifier; switches route on it. *)
  seq : int;  (** Per-flow sequence number. *)
  size_bits : int;
  kind : kind;
  created : float;  (** Generation time at the source. *)
  mutable offset : float;  (** FIFO+ jitter-offset header field. *)
  mutable qdelay_total : float;  (** Accumulated queueing delay (seconds). *)
  mutable enqueued_at : float;  (** Arrival time at the current hop. *)
  mutable hops : int;  (** Switches traversed so far. *)
}

val make :
  flow:int -> seq:int -> ?size_bits:int -> ?kind:kind -> created:float ->
  unit -> t
(** [size_bits] defaults to {!Ispn_util.Units.packet_bits}. *)

val dummy : unit -> t
(** A fresh throwaway packet for filling the payload slots of a
    preallocated container ([Ispn_util.Kheap] / [Ispn_util.Ring]); it is
    never enqueued or transmitted. *)

val expected_arrival : t -> float
(** [enqueued_at - offset]: when the packet would have arrived at the current
    hop had it received average service upstream.  FIFO+ orders its queue by
    this value. *)

val pp : Format.formatter -> t -> unit
