(** Packets — int handles into a per-domain struct-of-arrays arena.

    A packet is a dense index into parallel arrays (one per field) held in
    domain-local storage, recycled through a free list: {!make} takes a
    slot, {!free} releases it when the packet dies (delivered to a sink,
    dropped, or consumed by a transport).  Field access is plain array
    indexing, so the per-hop float stores are unboxed (a mutable float
    field of the old mixed record boxed on every store).  Take/release
    counters mirror the link buffer pools and are audited by
    [Ispn_check.Audit] ({!pool_stats}).

    Besides addressing, a packet carries the two header fields the CSZ
    mechanism needs:

    - [offset] — the FIFO+ jitter-offset field (Section 6): the accumulated
      difference between this packet's per-hop queueing delays and the
      average delay of its sharing class at each hop.  The paper proposes
      this field become part of the packet header; here it is a float cell.
    - [qdelay_total] — bookkeeping (not a real header field): the summed
      queueing (waiting) delay across hops, which is exactly the quantity
      Tables 1-3 report per flow.

    Handles are ordinary ints so the arena arrays can be indexed directly,
    but their VALUES are allocation-history-dependent and differ across
    [-j] widths: never order, hash, or print by handle — use [flow]/[seq].
    Each simulation runs inside one [Ispn_exec.Pool] domain, so handles
    never cross domains. *)

type kind =
  | Data
  | Ack  (** Transport acknowledgment (used by the TCP substrate). *)

type t = int
(** A packet handle.  Handle [0] is the permanent dummy ({!dummy}). *)

(** The domain-local arena, exposed so hot paths (schedulers, links) can
    bind it once at construction and touch fields as raw array accesses —
    [a.Packet.enqueued_at.(p) <- now] is an unboxed store, whereas a
    float-returning accessor would box at every call (see "Hot-path
    discipline", DESIGN.md §5).  The array fields are replaced wholesale
    on growth, so always index through the arena record, never through a
    saved array. *)
type arena = {
  mutable flow : int array;  (** Flow identifier; switches route on it. *)
  mutable seq : int array;  (** Per-flow sequence number. *)
  mutable size_bits : int array;
  mutable kind : kind array;
  mutable created : float array;  (** Generation time at the source. *)
  mutable offset : float array;  (** FIFO+ jitter-offset header field. *)
  mutable qdelay_total : float array;
      (** Accumulated queueing delay (seconds). *)
  mutable enqueued_at : float array;
      (** Arrival time at the current hop. *)
  mutable hops : int array;  (** Switches traversed so far. *)
  mutable alive : bool array;  (** Slot allocated and not yet freed. *)
  mutable free_list : int array;
  mutable free_len : int;
  mutable used : int;
  mutable takes : int;
  mutable releases : int;
  mutable in_use : int;
  mutable hwm : int;
  mutable bad_frees : int;
}

val arena : unit -> arena
(** This domain's arena.  Bind once per scheduler/link instance (they are
    created in the domain that uses them); cold paths can just call the
    per-field accessors below. *)

val make :
  flow:int -> seq:int -> ?size_bits:int -> ?kind:kind -> created:float ->
  unit -> t
(** Allocate a packet (free-list pop or arena growth).  [size_bits]
    defaults to {!Ispn_util.Units.packet_bits}; [offset], [qdelay_total]
    and [hops] start at zero, [enqueued_at] at [created]. *)

val free : t -> unit
(** Release the slot for reuse.  Freeing the dummy is a no-op; freeing an
    already-free slot is counted in [bad_frees] (audited to zero) rather
    than corrupting the free list.  The packet's fields must not be
    touched afterwards. *)

val dummy : unit -> t
(** The permanent dummy handle (0), for filling the payload slots of a
    preallocated container ([Ispn_util.Kheap] / [Ispn_util.Ring]); it is
    never enqueued, transmitted, or freed. *)

(** {2 Field accessors}

    Convenient for cold paths; float getters box their result, so code
    running per packet per hop should go through {!arena} instead. *)

val flow : t -> int
val seq : t -> int
val size_bits : t -> int
val kind : t -> kind
val created : t -> float
val offset : t -> float
val qdelay_total : t -> float
val enqueued_at : t -> float
val hops : t -> int
val alive : t -> bool
val set_offset : t -> float -> unit
val set_qdelay_total : t -> float -> unit
val set_enqueued_at : t -> float -> unit
val set_hops : t -> int -> unit

val expected_arrival : t -> float
(** [enqueued_at - offset]: when the packet would have arrived at the current
    hop had it received average service upstream.  FIFO+ orders its queue by
    this value. *)

(** {2 Pool accounting} *)

type pool_stats = {
  p_takes : int;  (** Successful {!make}s since domain start. *)
  p_releases : int;  (** {!free}s of live slots. *)
  p_in_use : int;  (** Live handles now; [takes - releases] always. *)
  p_hwm : int;  (** High-water mark of [in_use]. *)
  p_capacity : int;  (** Current arena capacity (slots). *)
  p_bad_frees : int;  (** Frees of dead slots — must stay zero. *)
}

val pool_stats : unit -> pool_stats
(** Snapshot of this domain's arena counters.  Counters are cumulative
    across the simulations a domain has run, so consumers (audit,
    metrics) must compare against a baseline captured at run start to
    stay [-j]-independent. *)

val pp : Format.formatter -> t -> unit
