(** Discrete-event simulation engine.

    A single mutable clock plus a pending-event store — a hierarchical
    timing wheel ({!Ispn_util.Wheel}) over a struct-of-arrays event arena,
    so scheduling and draining allocate nothing per event.  Events
    scheduled for the same instant fire in scheduling order (a strictly
    increasing sequence number breaks ties), which makes runs
    deterministic.  Cancellation is by lazy deletion: a cancelled event
    stays queued but is skipped (and its arena slot recycled) when it
    surfaces. *)

type t

type handle
(** Names a scheduled event so it can be cancelled (e.g. a TCP
    retransmission timer disarmed by an ack). *)

val create : unit -> t

val now : t -> float
(** Current simulation time in seconds. *)

val schedule : t -> at:float -> (unit -> unit) -> handle
(** [schedule t ~at f] runs [f] when the clock reaches [at].  Raises
    [Invalid_argument] if [at] is in the past. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> handle
(** [schedule_after t ~delay f] is [schedule t ~at:(now t +. delay) f];
    [delay] must be non-negative. *)

val cancel : t -> handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val pending : t -> int
(** Number of live (non-cancelled) events still queued. *)

val heap_depth_hwm : t -> int
(** High-water mark of {!pending} since {!create} — how deep the pending
    set ever got.  Tracked unconditionally (one compare per schedule, no
    allocation); exported as the [engine.heap_depth_hwm] metric. *)

type stats = {
  events_fired : int;  (** Actions executed since {!create}. *)
  cancels_skipped : int;
      (** Cancelled events lazily discarded when they surfaced. *)
}

val stats : t -> stats
(** Cumulative event-loop counters, for the [micro] bench and CI to watch
    cost-per-event (a high skip share means cancellation churn is eating
    heap bandwidth). *)

val register_metrics : t -> Ispn_obs.Metrics.t -> unit
(** Register the event-loop counters as pull gauges: [engine.events_fired],
    [engine.cancels_skipped], [engine.heap_depth_hwm], [engine.pending]. *)

val attach_series : t -> Ispn_obs.Series.t -> unit
(** Arm a time-series sampler on this engine: sample immediately (at the
    current clock), then re-schedule every [Series.interval] simulation
    seconds for as long as the engine runs.  Ticks are ordinary events —
    deterministic (time, seq) order, so they never perturb the relative
    order of other events — but they do count toward the [engine.*]
    instruments.  Attach after registering every instrument the series
    should see, so the first row is already complete. *)

val run : t -> until:float -> unit
(** Execute events in time order until the clock would pass [until], then set
    the clock to [until].  Events scheduled during the run are honoured. *)

val run_until_idle : t -> max_events:int -> unit
(** Drain the queue completely, stopping early (with [Failure]) after
    [max_events] events as a runaway guard for tests. *)
