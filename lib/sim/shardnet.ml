(* One simulation partitioned across OCaml 5 domains with conservative
   (Chandy-Misra-Bryant) synchronization.  The topology is described as
   plain data so every shard can build its own switches, links and
   sources *inside its worker domain* — [Link.create] binds the creating
   domain's packet arena, and handles never cross domains.  Shards
   advance in lock-step windows no wider than the minimum cross-shard
   propagation delay (the lookahead), so every packet that leaves a
   shard in window [k] arrives in window [k+1] or later and can be
   handed over at the barrier.

   Cross-shard handoff marshals the handle's arena fields into a
   fixed-layout struct-of-arrays exchange buffer (the packet is freed in
   the source arena at the boundary and re-made in the destination's),
   double-buffered by window parity so the producer of window [k+1]
   never races the consumer of window [k].  Inboxes drain in canonical
   order — ascending global link id, entries in production (= time)
   order — before each window, so simultaneous cross-shard arrivals
   schedule identically at every shard count.  Determinism contract: for
   workloads with no exact-float-time arrival ties across *different*
   paths (the generators in [Csz.Extensions] guarantee this with
   distinct per-link propagation delays and randomized sources), stdout
   and all derived reports are byte-identical for every [n_shards]. *)

type link_spec = {
  l_src : int;
  l_dst : int;
  l_rate_bps : float;
  l_prop_delay : float;
  l_qdisc : unit -> Qdisc.t;
}

type flow_spec = {
  f_src : int;
  f_dst : int;
  f_driver : Engine.t -> (Packet.t -> unit) -> unit;
}

type spec = {
  n_switches : int;
  n_shards : int;
  shard_of : int array;
  links : link_spec array;
  flows : flow_spec array;
}

type flow_stat = {
  f_delivered : int;
  f_delay_sum : float;
  f_delay_max : float;
  f_qdelay_sum : float;
  f_digest : int;
}

type link_stat = { k_sent : int; k_dropped : int; k_drops_buffer : int }

type result = {
  r_flows : flow_stat array;
  r_links : link_stat array;
  r_shards : int;
  r_windows : int;
  r_lookahead : float;
  r_cut_links : int;
  r_pushed : int;
  r_drained : int;
  r_fired : int;
  r_in_use : int;  (** Packets still alive across all arenas at the end. *)
}

(* ---- exchange buffers ------------------------------------------------- *)

(* Marshalled packet fields, one fixed-layout SoA per (cut link, window
   parity).  Written by the source shard during window [k] into parity
   [k land 1], drained by the destination at the start of window [k+1];
   the barrier between windows publishes the writes, and the producer is
   a full window ahead before it touches that parity again. *)
type xbuf = {
  mutable x_arrival : float array;
  mutable x_flow : int array;
  mutable x_seq : int array;
  mutable x_size : int array;
  mutable x_kind : int array; (* Data = 0, Ack = 1 *)
  mutable x_created : float array;
  mutable x_offset : float array;
  mutable x_qdelay : float array;
  mutable x_hops : int array;
  mutable x_len : int;
}

let xbuf_create cap =
  {
    x_arrival = Array.make cap 0.;
    x_flow = Array.make cap 0;
    x_seq = Array.make cap 0;
    x_size = Array.make cap 0;
    x_kind = Array.make cap 0;
    x_created = Array.make cap 0.;
    x_offset = Array.make cap 0.;
    x_qdelay = Array.make cap 0.;
    x_hops = Array.make cap 0;
    x_len = 0;
  }

let xbuf_grow b =
  let ext_f a = Array.append a (Array.make (Array.length a) 0.) in
  let ext_i a = Array.append a (Array.make (Array.length a) 0) in
  b.x_arrival <- ext_f b.x_arrival;
  b.x_flow <- ext_i b.x_flow;
  b.x_seq <- ext_i b.x_seq;
  b.x_size <- ext_i b.x_size;
  b.x_kind <- ext_i b.x_kind;
  b.x_created <- ext_f b.x_created;
  b.x_offset <- ext_f b.x_offset;
  b.x_qdelay <- ext_f b.x_qdelay;
  b.x_hops <- ext_i b.x_hops

(* Marshal [p]'s fields at [arrival] and free it in this domain's arena:
   past this point the packet exists only as scalars in the buffer.
   Direct array stores throughout — the only boxing on the path is the
   clock read in the caller. *)
let xbuf_push b (pa : Packet.arena) p ~arrival =
  if b.x_len = Array.length b.x_arrival then xbuf_grow b;
  let n = b.x_len in
  b.x_arrival.(n) <- arrival;
  b.x_flow.(n) <- pa.Packet.flow.(p);
  b.x_seq.(n) <- pa.Packet.seq.(p);
  b.x_size.(n) <- pa.Packet.size_bits.(p);
  b.x_kind.(n) <- (match pa.Packet.kind.(p) with Packet.Data -> 0 | Ack -> 1);
  b.x_created.(n) <- pa.Packet.created.(p);
  b.x_offset.(n) <- pa.Packet.offset.(p);
  b.x_qdelay.(n) <- pa.Packet.qdelay_total.(p);
  b.x_hops.(n) <- pa.Packet.hops.(p);
  b.x_len <- n + 1;
  Packet.free p

(* Re-make entry [i] in the calling domain's arena and restore the
   fields [Packet.make] resets.  [enqueued_at] needs no restoring: the
   next [Link.send] stamps it, exactly as after an intra-shard hop. *)
let xbuf_remake b (pa : Packet.arena) i =
  let p =
    Packet.make ~flow:b.x_flow.(i) ~seq:b.x_seq.(i) ~size_bits:b.x_size.(i)
      ~kind:(if b.x_kind.(i) = 0 then Packet.Data else Packet.Ack)
      ~created:b.x_created.(i) ()
  in
  pa.Packet.offset.(p) <- b.x_offset.(i);
  pa.Packet.qdelay_total.(p) <- b.x_qdelay.(i);
  pa.Packet.hops.(p) <- b.x_hops.(i);
  p

(* One cross-shard link's handoff state.  [c_pushed] is written by the
   source shard's worker, [c_drained] by the destination's, in disjoint
   barrier-separated phases. *)
type cut = {
  c_link : int; (* global link id; drain order is ascending *)
  c_dst_shard : int;
  c_dst_switch : int;
  c_prop : float;
  c_bufs : xbuf array; (* length 2, indexed by window parity *)
  mutable c_pushed : int;
  mutable c_drained : int;
}

(* ---- barrier ---------------------------------------------------------- *)

module Barrier = struct
  type t = {
    m : Mutex.t;
    c : Condition.t;
    parties : int;
    mutable count : int;
    mutable gen : int;
  }

  let create parties =
    { m = Mutex.create (); c = Condition.create (); parties; count = 0; gen = 0 }

  (* Classic generation-counting barrier; the mutex hand-off doubles as
     the happens-before edge that publishes each window's exchange
     buffers to their consumers. *)
  let wait b =
    Mutex.lock b.m;
    let g = b.gen in
    b.count <- b.count + 1;
    if b.count = b.parties then begin
      b.count <- 0;
      b.gen <- g + 1;
      Condition.broadcast b.c
    end
    else
      while b.gen = g do
        Condition.wait b.c b.m
      done;
    Mutex.unlock b.m
end

(* ---- routing (global, on the spawning domain) ------------------------- *)

(* Same algorithm and tie-break as [Topology.shortest_path]: unit-weight
   BFS visiting neighbours in ascending id, so routes are deterministic
   and shard-independent. *)
let shortest_path ~n ~adj ~src ~dst =
  if src = dst then [ src ]
  else begin
    let prev = Array.make n (-1) in
    let seen = Array.make n false in
    seen.(src) <- true;
    let frontier = Queue.create () in
    Queue.push src frontier;
    let found = ref false in
    while (not !found) && not (Queue.is_empty frontier) do
      let u = Queue.pop frontier in
      List.iter
        (fun v ->
          if not seen.(v) then begin
            seen.(v) <- true;
            prev.(v) <- u;
            if v = dst then found := true;
            Queue.push v frontier
          end)
        (List.sort compare adj.(u))
    done;
    if not seen.(dst) then
      failwith
        (Printf.sprintf "Shardnet: switch %d unreachable from %d" dst src);
    let rec walk v acc = if v = src then v :: acc else walk prev.(v) (v :: acc) in
    walk dst []
  end

let validate spec =
  if spec.n_shards < 1 then invalid_arg "Shardnet: n_shards must be >= 1";
  if Array.length spec.shard_of <> spec.n_switches then
    invalid_arg "Shardnet: shard_of length mismatch";
  Array.iter
    (fun s ->
      if s < 0 || s >= spec.n_shards then
        invalid_arg "Shardnet: shard_of out of range")
    spec.shard_of;
  Array.iter
    (fun l ->
      if l.l_src < 0 || l.l_src >= spec.n_switches || l.l_dst < 0
         || l.l_dst >= spec.n_switches || l.l_src = l.l_dst
      then invalid_arg "Shardnet: bad link endpoints";
      if spec.shard_of.(l.l_src) <> spec.shard_of.(l.l_dst)
         && not (l.l_prop_delay > 0.)
      then
        invalid_arg
          "Shardnet: cross-shard links need a positive prop_delay \
           (conservative lookahead)")
    spec.links

(* What one worker hands back; plain data read after [Domain.join]. *)
type shard_out = {
  o_flows : flow_stat array; (* full length; only owned egresses filled *)
  o_links : link_stat array; (* full length; only owned links filled *)
  o_fired : int;
  o_in_use : int;
}

let no_link_stat = { k_sent = 0; k_dropped = 0; k_drops_buffer = 0 }

(* Deterministic digest of a delivery stream: folds (seq, delay) in
   arrival order, so the differential tests can compare full per-flow
   delivery histories across shard widths without storing them. *)
let fnv_prime = 0x100000001b3

let digest_mix h ~seq ~delay =
  let h = (h * fnv_prime) lxor seq in
  (h * fnv_prime) lxor Int64.to_int (Int64.bits_of_float delay)

let run ?on_link ?on_shard ?(until = 60.) spec =
  validate spec;
  let n_links = Array.length spec.links in
  let n_flows = Array.length spec.flows in
  (* Global routes and the (src, dst) -> link index, computed once here
     and only read by the workers. *)
  let adj = Array.make spec.n_switches [] in
  let link_at = Hashtbl.create (2 * n_links) in
  Array.iteri
    (fun li l ->
      if Hashtbl.mem link_at (l.l_src, l.l_dst) then
        invalid_arg "Shardnet: duplicate link";
      Hashtbl.replace link_at (l.l_src, l.l_dst) li;
      adj.(l.l_src) <- l.l_dst :: adj.(l.l_src))
    spec.links;
  let paths =
    Array.map
      (fun f -> shortest_path ~n:spec.n_switches ~adj ~src:f.f_src ~dst:f.f_dst)
      spec.flows
  in
  (* Cut links, in ascending global id — the canonical drain order. *)
  let cuts =
    Array.of_list
      (List.concat_map
         (fun li ->
           let l = spec.links.(li) in
           let ss = spec.shard_of.(l.l_src)
           and ds = spec.shard_of.(l.l_dst) in
           if ss = ds then []
           else
             [
               {
                 c_link = li;
                 c_dst_shard = ds;
                 c_dst_switch = l.l_dst;
                 c_prop = l.l_prop_delay;
                 c_bufs = [| xbuf_create 64; xbuf_create 64 |];
                 c_pushed = 0;
                 c_drained = 0;
               };
             ])
         (List.init n_links (fun i -> i)))
  in
  let lookahead =
    Array.fold_left (fun w c -> Stdlib.min w c.c_prop) infinity cuts
  in
  let windows =
    if Array.length cuts = 0 then 1
    else Stdlib.max 1 (int_of_float (ceil (until /. lookahead)))
  in
  let t_end k =
    if k = windows - 1 then until
    else Stdlib.min until (lookahead *. float_of_int (k + 1))
  in
  let barrier = Barrier.create spec.n_shards in
  let worker shard () =
    let engine = Engine.create () in
    let pa = Packet.arena () in
    (* Switches owned by this shard; the rest stay un-built. *)
    let nodes = Array.make spec.n_switches None in
    for i = 0 to spec.n_switches - 1 do
      if spec.shard_of.(i) = shard then
        nodes.(i) <- Some (Node.create ~name:(Printf.sprintf "s%d" i))
    done;
    let node i =
      match nodes.(i) with
      | Some n -> n
      | None -> failwith "Shardnet: switch not owned by this shard"
    in
    (* The parity cell the cut-link receivers read: updated by the window
       loop, so a handoff always lands in the current window's buffer. *)
    let parity = ref 0 in
    let local_links = Array.make n_links None in
    Array.iteri
      (fun li l ->
        if spec.shard_of.(l.l_src) = shard then begin
          let qdisc = l.l_qdisc () in
          let internal = spec.shard_of.(l.l_dst) = shard in
          let lk =
            Link.create ~engine ~rate_bps:l.l_rate_bps
              ~prop_delay:(if internal then l.l_prop_delay else 0.)
              ~id:li ~qdisc
              ~name:(Printf.sprintf "s%d->s%d" l.l_src l.l_dst)
              ()
          in
          (if internal then
             let dst = node l.l_dst in
             Link.set_receiver lk (fun p -> Node.receive dst p)
           else begin
             (* Cut link: zero engine-side propagation, so the receiver
                fires synchronously at transmission finish; it marshals
                the packet (arrival = finish + the real prop delay) into
                the current window's outbox and frees the handle. *)
             let cut =
               let rec find i =
                 if cuts.(i).c_link = li then cuts.(i) else find (i + 1)
               in
               find 0
             in
             Link.set_receiver lk (fun p ->
                 let b = cut.c_bufs.(!parity) in
                 xbuf_push b pa p ~arrival:(Engine.now engine +. cut.c_prop);
                 cut.c_pushed <- cut.c_pushed + 1)
           end);
          (match on_link with None -> () | Some f -> f ~shard lk);
          local_links.(li) <- Some lk
        end)
      spec.links;
    (* Per-flow delivery accounting at owned egresses. *)
    let delivered = Array.make (Stdlib.max 1 n_flows) 0 in
    let delay_sum = Array.make (Stdlib.max 1 n_flows) 0. in
    let delay_max = Array.make (Stdlib.max 1 n_flows) 0. in
    let qdelay_sum = Array.make (Stdlib.max 1 n_flows) 0. in
    let digest = Array.make (Stdlib.max 1 n_flows) 0 in
    Array.iteri
      (fun fi f ->
        let path = paths.(fi) in
        let rec wire = function
          | [ last ] ->
              if spec.shard_of.(last) = shard then
                Node.add_route (node last) ~flow:fi
                  (Node.Deliver
                     (fun p ->
                       let now = Engine.now engine in
                       let d = now -. pa.Packet.created.(p) in
                       delivered.(fi) <- delivered.(fi) + 1;
                       delay_sum.(fi) <- delay_sum.(fi) +. d;
                       if d > delay_max.(fi) then delay_max.(fi) <- d;
                       qdelay_sum.(fi) <-
                         qdelay_sum.(fi) +. pa.Packet.qdelay_total.(p);
                       digest.(fi) <-
                         digest_mix digest.(fi) ~seq:pa.Packet.seq.(p)
                           ~delay:d;
                       Packet.free p))
          | hop :: (next :: _ as rest) ->
              (if spec.shard_of.(hop) = shard then
                 let li = Hashtbl.find link_at (hop, next) in
                 match local_links.(li) with
                 | Some lk -> Node.add_route (node hop) ~flow:fi (Node.Forward lk)
                 | None -> assert false);
              wire rest
          | [] -> assert false
        in
        wire path;
        if spec.shard_of.(f.f_src) = shard then begin
          let ingress = node f.f_src in
          f.f_driver engine (fun p -> Node.receive ingress p)
        end)
      spec.flows;
    (match on_shard with None -> () | Some f -> f ~shard engine);
    (* Drain this shard's inboxes for one window parity: canonical order
       is ascending global link id, entries in production (time) order;
       the engine's FIFO tie-break then fixes simultaneous arrivals
       identically at every shard count. *)
    let drain par =
      Array.iter
        (fun c ->
          if c.c_dst_shard = shard then begin
            let b = c.c_bufs.(par) in
            let dst = node c.c_dst_switch in
            for i = 0 to b.x_len - 1 do
              let p = xbuf_remake b pa i in
              ignore
                (Engine.schedule engine ~at:b.x_arrival.(i) (fun () ->
                     Node.receive dst p))
            done;
            c.c_drained <- c.c_drained + b.x_len;
            b.x_len <- 0
          end)
        cuts
    in
    for k = 0 to windows - 1 do
      if k > 0 then drain ((k - 1) land 1);
      parity := k land 1;
      Engine.run engine ~until:(t_end k);
      Barrier.wait barrier
    done;
    (* Handoffs from the last window whose arrival falls exactly on
       [until] must still fire — an unsharded run delivers them. *)
    if Array.length cuts > 0 then begin
      drain ((windows - 1) land 1);
      Engine.run engine ~until
    end;
    let links_out = Array.make (Stdlib.max 1 n_links) no_link_stat in
    Array.iteri
      (fun li lk ->
        match lk with
        | None -> ()
        | Some lk ->
            links_out.(li) <-
              {
                k_sent = Link.sent lk;
                k_dropped = Link.dropped lk;
                k_drops_buffer = Link.drops_buffer lk;
              })
      local_links;
    let flows_out =
      Array.init (Stdlib.max 1 n_flows) (fun fi ->
          {
            f_delivered = delivered.(fi);
            f_delay_sum = delay_sum.(fi);
            f_delay_max = delay_max.(fi);
            f_qdelay_sum = qdelay_sum.(fi);
            f_digest = digest.(fi);
          })
    in
    let st = Engine.stats engine in
    {
      o_flows = flows_out;
      o_links = links_out;
      o_fired = st.Engine.events_fired;
      o_in_use = (Packet.pool_stats ()).Packet.p_in_use;
    }
  in
  (* Every shard gets a fresh domain (fresh packet arena, fresh engine);
     the spawning domain only coordinates. *)
  let domains =
    Array.init spec.n_shards (fun d -> Domain.spawn (worker d))
  in
  let outs = Array.map Domain.join domains in
  (* Merge: each flow's egress and each link live in exactly one shard,
     so the merge picks, in canonical index order, the owning shard's
     entry. *)
  let r_flows =
    Array.init n_flows (fun fi ->
        let f = spec.flows.(fi) in
        outs.(spec.shard_of.(f.f_dst)).o_flows.(fi))
  in
  let r_links =
    Array.init n_links (fun li ->
        outs.(spec.shard_of.(spec.links.(li).l_src)).o_links.(li))
  in
  {
    r_flows;
    r_links;
    r_shards = spec.n_shards;
    r_windows = windows;
    r_lookahead = (if Array.length cuts = 0 then until else lookahead);
    r_cut_links = Array.length cuts;
    r_pushed = Array.fold_left (fun a c -> a + c.c_pushed) 0 cuts;
    r_drained = Array.fold_left (fun a c -> a + c.c_drained) 0 cuts;
    r_fired = Array.fold_left (fun a o -> a + o.o_fired) 0 outs;
    r_in_use = Array.fold_left (fun a o -> a + o.o_in_use) 0 outs;
  }

module For_tests = struct
  type buf = xbuf

  let buf () = xbuf_create 4
  let push = xbuf_push
  let remake = xbuf_remake
  let len b = b.x_len
  let reset b = b.x_len <- 0
end
