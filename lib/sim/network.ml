type t = {
  engine : Engine.t;
  switches : Node.t array;
  links : Link.t array;
}

let chain ~engine ~n_switches ~rate_bps ?(prop_delay = 0.) ?recorder ~qdisc_of
    () =
  assert (n_switches >= 1);
  let switches =
    Array.init n_switches (fun i ->
        Node.create ~name:(Printf.sprintf "S-%d" (i + 1)))
  in
  let links =
    Array.init (n_switches - 1) (fun i ->
        Link.create ~engine ~rate_bps ~prop_delay ~id:i ?recorder
          ~qdisc:(qdisc_of i)
          ~name:(Printf.sprintf "L-%d" (i + 1))
          ())
  in
  Array.iteri
    (fun i link ->
      let next = switches.(i + 1) in
      Link.set_receiver link (fun pkt -> Node.receive next pkt))
    links;
  { engine; switches; links }

let engine t = t.engine
let n_switches t = Array.length t.switches
let n_links t = Array.length t.links
let switch t i = t.switches.(i)
let link t i = t.links.(i)

let install_flow t ~flow ~ingress ~egress ~sink =
  if ingress > egress || egress >= Array.length t.switches then
    invalid_arg "Network.install_flow: bad path";
  for i = ingress to egress - 1 do
    Node.add_route t.switches.(i) ~flow (Node.Forward t.links.(i))
  done;
  Node.add_route t.switches.(egress) ~flow (Node.Deliver sink)

let inject t ~at_switch pkt = Node.receive t.switches.(at_switch) pkt

let total_dropped t =
  Array.fold_left (fun acc l -> acc + Link.dropped l) 0 t.links

let utilization t ~link ~elapsed = Link.utilization t.links.(link) ~elapsed

let register_metrics t m =
  Array.iteri
    (fun i l -> Link.register_metrics l m ~prefix:(Printf.sprintf "link.%d" i))
    t.links
