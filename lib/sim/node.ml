type port = Forward of Link.t | Deliver of (Packet.t -> unit)

type t = {
  node_name : string;
  routes : (int, port) Hashtbl.t;
  mutable received : int;
}

let create ~name = { node_name = name; routes = Hashtbl.create 32; received = 0 }
let name t = t.node_name
let add_route t ~flow port = Hashtbl.replace t.routes flow port

let receive t pkt =
  t.received <- t.received + 1;
  let pa = Packet.arena () in
  pa.Packet.hops.(pkt) <- pa.Packet.hops.(pkt) + 1;
  let flow = pa.Packet.flow.(pkt) in
  match Hashtbl.find_opt t.routes flow with
  | Some (Forward link) -> Link.send link pkt
  | Some (Deliver f) -> f pkt
  | None ->
      failwith
        (Printf.sprintf "Node %s: no route for flow %d" t.node_name flow)

let received t = t.received
