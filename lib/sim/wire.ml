let header_bytes = 16
let version = 1
let offset_quantum = 1e-6

exception Malformed of string

let encode (p : Packet.t) =
  let size_bits = Packet.size_bits p in
  let flow = Packet.flow p in
  let seq = Packet.seq p in
  if size_bits <= 0 || size_bits > 0xFFFF then
    invalid_arg "Wire.encode: size_bits out of range";
  if flow < 0 || flow > 0x7FFFFFFF then
    invalid_arg "Wire.encode: flow out of range";
  if seq < 0 || seq > 0x7FFFFFFF then
    invalid_arg "Wire.encode: seq out of range";
  let b = Bytes.create header_bytes in
  Bytes.set_uint8 b 0 version;
  Bytes.set_uint8 b 1 (match Packet.kind p with Packet.Data -> 0 | Packet.Ack -> 1);
  Bytes.set_uint16_be b 2 size_bits;
  Bytes.set_int32_be b 4 (Int32.of_int flow);
  Bytes.set_int32_be b 8 (Int32.of_int seq);
  let micros = Packet.offset p *. 1e6 in
  let clamped =
    if micros > Int32.to_float Int32.max_int then Int32.max_int
    else if micros < Int32.to_float Int32.min_int then Int32.min_int
    else Int32.of_float (Float.round micros)
  in
  Bytes.set_int32_be b 12 clamped;
  b

let decode ?(created = 0.) b =
  if Bytes.length b < header_bytes then raise (Malformed "short header");
  let v = Bytes.get_uint8 b 0 in
  if v <> version then raise (Malformed (Printf.sprintf "version %d" v));
  let kind =
    match Bytes.get_uint8 b 1 with
    | 0 -> Packet.Data
    | 1 -> Packet.Ack
    | k -> raise (Malformed (Printf.sprintf "kind %d" k))
  in
  let size_bits = Bytes.get_uint16_be b 2 in
  (* A zero-size packet would transmit in zero time downstream; a
     corrupted size field must not smuggle one in. *)
  if size_bits = 0 then raise (Malformed "zero size");
  let flow = Int32.to_int (Bytes.get_int32_be b 4) in
  if flow < 0 then raise (Malformed (Printf.sprintf "negative flow %d" flow));
  let seq = Int32.to_int (Bytes.get_int32_be b 8) in
  if seq < 0 then raise (Malformed (Printf.sprintf "negative seq %d" seq));
  let offset = Int32.to_float (Bytes.get_int32_be b 12) *. offset_quantum in
  let p = Packet.make ~flow ~seq ~size_bits ~kind ~created () in
  Packet.set_offset p offset;
  p
