(** Store-and-forward output link.

    A link serializes packets at a fixed bit rate from its qdisc, then hands
    them to the downstream receiver after a propagation delay.  The paper's
    switches are output-queued: each inter-switch link has one qdisc and a
    200-packet buffer.

    Per-hop queueing delay is defined as the time from arrival at the qdisc
    to the start of transmission (the scheduling-dependent part of the
    delay); the link accumulates it into [Packet.qdelay_total], which is the
    quantity the paper's tables report summed over a path.

    When a flight recorder is attached the link emits the structured event
    stream documented in {!Ispn_obs.Recorder}: [Enqueue] on qdisc accept
    (value = accumulated queueing delay before this hop), [Drop] with a
    cause on every loss path, [Dequeue] (value = this hop's wait) and
    [Tx_start] (value = transmission time) when serialization begins, and
    [Deliver] (value = cumulative queueing delay) at the receiver. *)

type t

val create :
  engine:Engine.t ->
  rate_bps:float ->
  ?prop_delay:float ->
  ?id:int ->
  ?recorder:Ispn_obs.Recorder.t ->
  qdisc:Qdisc.t ->
  name:string ->
  unit ->
  t
(** The receiver is attached afterwards with {!set_receiver} so that
    topologies with cycles of references can be wired up.  [id] (default 0)
    is the hop index stamped on recorder events and used in metric names;
    {!Network.chain} numbers its links 0..n-1.  Without [recorder] the link
    records nothing and the event paths stay allocation-free. *)

val set_receiver : t -> (Packet.t -> unit) -> unit
val name : t -> string

val id : t -> int
(** The hop index given at {!create}. *)

val qdisc : t -> Qdisc.t

val send : t -> Packet.t -> unit
(** Enqueue a packet for transmission; starts the transmitter if idle.
    Raises [Failure] if no receiver has been attached. *)

val set_tap : t -> Tap.t -> unit
(** Attach a {!Tap} monitor; its callbacks fire on qdisc accept, dequeue
    (with this hop's wait), transmitter-idle (with the qdisc's backlog),
    delivery and every drop.  Like the recorder this never changes the
    simulation — links without a tap pay one [match] per event.
    Replaces any tap already attached; independent consumers should use
    {!add_tap}. *)

val add_tap : t -> Tap.t -> unit
(** Like {!set_tap}, but composes with any tap already attached (via
    {!Tap.seq}, earlier attachments firing first) instead of replacing it —
    so the invariant auditor and the delay histograms can observe the same
    link in one run. *)

val set_drop_hook : t -> (Packet.t -> unit) -> unit
(** Called for every packet the link loses: qdisc rejection (buffer
    overflow), a frame in flight when the link goes down, or a packet
    discarded by the wire filter.  All three paths also count in
    {!dropped}. *)

(** {2 Failure model} *)

val set_up : t -> bool -> unit
(** Take the link down or bring it back up.  While down the transmitter is
    stopped: packets still enqueue (and overflow drops still fire), the
    frame being serialized when the failure hits is lost through the drop
    hook, and nothing is delivered.  On repair the transmitter restarts
    immediately from the backlog (and the qdisc waker keeps working for
    non-work-conserving schedulers).  Links start up; redundant transitions
    are no-ops. *)

val is_up : t -> bool

val set_wire_filter : t -> (Packet.t -> Packet.t option) -> unit
(** Install a transformation applied to every packet at delivery time
    (after serialization and propagation), modelling the physical wire.
    Returning [None] discards the packet as a drop ({!dropped} plus drop
    hook); [Some p] delivers [p] — filters may mutate the packet in place.
    Used by [Ispn_faults] to corrupt headers via [Wire.encode]/[decode]. *)

(** {2 Accounting} *)

val sent : t -> int

val dropped : t -> int
(** Total losses; {!drops_buffer} + {!drops_down} + {!drops_wire}. *)

val drops_buffer : t -> int
(** Qdisc rejections (buffer pool exhausted or late-discard policy). *)

val drops_down : t -> int
(** Frames in flight when the link went down. *)

val drops_wire : t -> int
(** Packets discarded by the wire filter at delivery time. *)

val busy_time : t -> float
(** Total seconds spent transmitting. *)

val utilization : t -> elapsed:float -> float
(** [busy_time /. elapsed]. *)

val wait_stats : t -> Ispn_util.Stats.t
(** Per-hop queueing (waiting) delays of all packets sent on this link. *)

val register_metrics : t -> Ispn_obs.Metrics.t -> prefix:string -> unit
(** Register this link's counters under [prefix]: [.sent],
    [.drops.buffer|down|wire], [.busy_time], [.qdisc.len] and the
    [.wait.*] summary of {!wait_stats}.  Pull-based: nothing is touched on
    the packet path. *)
