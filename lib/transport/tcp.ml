open Ispn_sim

type flavor = Tahoe | Reno

type config = {
  flavor : flavor;
  packet_bits : int;
  max_window : int;
  init_ssthresh : int;
  min_rto : float;
  max_rto : float;
  ack_delay : float;
}

let default_config =
  {
    flavor = Tahoe;
    packet_bits = Ispn_util.Units.packet_bits;
    max_window = 64;
    init_ssthresh = 32;
    min_rto = 0.1;
    max_rto = 60.0;
    ack_delay = 1e-3;
  }

type t = {
  engine : Engine.t;
  flow : int;
  cfg : config;
  send : Packet.t -> unit;
  (* Sender state. *)
  mutable running : bool;
  mutable una : int;  (* lowest unacknowledged sequence number *)
  mutable next : int;  (* next sequence number to transmit *)
  mutable cwnd : float;  (* congestion window, segments *)
  mutable ssthresh : float;
  mutable dupacks : int;
  mutable timer : Engine.handle option;
  mutable rto : float;
  mutable srtt : float option;
  mutable rttvar : float;
  mutable timed_seq : int option;  (* Karn: time only fresh transmissions *)
  mutable timed_at : float;
  mutable in_recovery : bool;  (* Reno fast recovery in progress *)
  mutable segments_sent : int;
  mutable retransmissions : int;
  mutable timeouts : int;
  mutable fast_recoveries : int;
  (* Receiver state. *)
  mutable rcv_next : int;  (* all seq < rcv_next delivered in order *)
  ooo : (int, unit) Hashtbl.t;  (* out-of-order segments held back *)
  mutable delivered : int;
}

let create ~engine ~flow ?(config = default_config) ~send () =
  {
    engine;
    flow;
    cfg = config;
    send;
    running = false;
    una = 0;
    next = 0;
    cwnd = 1.;
    ssthresh = float_of_int config.init_ssthresh;
    dupacks = 0;
    timer = None;
    rto = 1.0;
    srtt = None;
    rttvar = 0.;
    timed_seq = None;
    timed_at = 0.;
    in_recovery = false;
    segments_sent = 0;
    retransmissions = 0;
    timeouts = 0;
    fast_recoveries = 0;
    rcv_next = 0;
    ooo = Hashtbl.create 64;
    delivered = 0;
  }

let disarm_timer t =
  match t.timer with
  | Some h ->
      Engine.cancel t.engine h;
      t.timer <- None
  | None -> ()

let effective_window t =
  Stdlib.min (int_of_float t.cwnd) t.cfg.max_window |> Stdlib.max 1

let transmit t seq ~fresh =
  let now = Engine.now t.engine in
  let pkt =
    Packet.make ~flow:t.flow ~seq ~size_bits:t.cfg.packet_bits ~created:now ()
  in
  t.segments_sent <- t.segments_sent + 1;
  if not fresh then t.retransmissions <- t.retransmissions + 1;
  (* RTT-sample one segment at a time; retransmitted sequence numbers are
     never timed (Karn's rule). *)
  if fresh && t.timed_seq = None then begin
    t.timed_seq <- Some seq;
    t.timed_at <- now
  end;
  t.send pkt

let rec arm_timer t =
  disarm_timer t;
  if t.una < t.next && t.running then
    t.timer <-
      Some (Engine.schedule_after t.engine ~delay:t.rto (fun () -> on_timeout t))

and on_timeout t =
  t.timer <- None;
  if t.running && t.una < t.next then begin
    t.timeouts <- t.timeouts + 1;
    t.ssthresh <- Stdlib.max (t.cwnd /. 2.) 2.;
    t.cwnd <- 1.;
    t.dupacks <- 0;
    t.in_recovery <- false;
    t.rto <- Stdlib.min (2. *. t.rto) t.cfg.max_rto;
    t.timed_seq <- None;
    (* Go-back-N: rewind and let the window re-send from the hole. *)
    t.next <- t.una;
    transmit t t.next ~fresh:false;
    t.next <- t.next + 1;
    arm_timer t
  end

let try_send t =
  if t.running then begin
    let window = effective_window t in
    while t.next < t.una + window do
      transmit t t.next ~fresh:true;
      t.next <- t.next + 1
    done;
    if t.timer = None then arm_timer t
  end

let update_rtt t ~sample =
  (match t.srtt with
  | None ->
      t.srtt <- Some sample;
      t.rttvar <- sample /. 2.
  | Some srtt ->
      let err = sample -. srtt in
      t.srtt <- Some (srtt +. (0.125 *. err));
      t.rttvar <- t.rttvar +. (0.25 *. (Float.abs err -. t.rttvar)));
  let srtt = Option.get t.srtt in
  t.rto <-
    Stdlib.min t.cfg.max_rto
      (Stdlib.max t.cfg.min_rto (srtt +. (4. *. t.rttvar)))

let fast_retransmit t =
  t.fast_recoveries <- t.fast_recoveries + 1;
  t.ssthresh <- Stdlib.max (t.cwnd /. 2.) 2.;
  t.timed_seq <- None;
  (match t.cfg.flavor with
  | Tahoe ->
      (* Collapse and go-back-N from the hole. *)
      t.cwnd <- 1.;
      t.dupacks <- 0;
      t.next <- t.una;
      transmit t t.next ~fresh:false;
      t.next <- t.next + 1
  | Reno ->
      (* Retransmit only the hole, halve the window and inflate it by the
         three segments the dupacks say have left the network. *)
      transmit t t.una ~fresh:false;
      t.cwnd <- t.ssthresh +. 3.;
      t.in_recovery <- true);
  arm_timer t;
  try_send t

let on_ack t ack =
  if not t.running then ()
  else if ack > t.una then begin
    let n_acked = ack - t.una in
    t.una <- ack;
    t.dupacks <- 0;
    if t.in_recovery then begin
      (* Classic Reno: first new ack deflates the window and ends
         recovery. *)
      t.in_recovery <- false;
      t.cwnd <- t.ssthresh
    end;
    (match t.timed_seq with
    | Some seq when ack > seq ->
        update_rtt t ~sample:(Engine.now t.engine -. t.timed_at);
        t.timed_seq <- None
    | Some _ | None -> ());
    (* Slow start: one segment per ack; congestion avoidance: one segment
       per window's worth of acks. *)
    for _ = 1 to n_acked do
      if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. 1.
      else t.cwnd <- t.cwnd +. (1. /. t.cwnd)
    done;
    if t.una = t.next then disarm_timer t else arm_timer t;
    try_send t
  end
  else begin
    t.dupacks <- t.dupacks + 1;
    if t.dupacks = 3 then fast_retransmit t
    else if t.in_recovery && t.dupacks > 3 then begin
      (* Each further dupack signals another departure: inflate. *)
      t.cwnd <- t.cwnd +. 1.;
      try_send t
    end
  end

let receive t pkt =
  let seq = Packet.seq pkt in
  (* The data segment dies at the receiver; the ack is modelled as a pure
     event (no packet travels back). *)
  Packet.free pkt;
  if seq >= t.rcv_next then Hashtbl.replace t.ooo seq ();
  while Hashtbl.mem t.ooo t.rcv_next do
    Hashtbl.remove t.ooo t.rcv_next;
    t.rcv_next <- t.rcv_next + 1;
    t.delivered <- t.delivered + 1
  done;
  let ack = t.rcv_next in
  ignore
    (Engine.schedule_after t.engine ~delay:t.cfg.ack_delay (fun () ->
         on_ack t ack))

let start t =
  if not t.running then begin
    t.running <- true;
    try_send t
  end

let stop t =
  t.running <- false;
  disarm_timer t

let segments_sent t = t.segments_sent
let retransmissions t = t.retransmissions
let delivered t = t.delivered
let timeouts t = t.timeouts
let fast_recoveries t = t.fast_recoveries
let cwnd t = t.cwnd

let goodput_bps t ~elapsed =
  if elapsed <= 0. then 0.
  else float_of_int (t.delivered * t.cfg.packet_bits) /. elapsed

let loss_rate t =
  if t.segments_sent = 0 then 0.
  else float_of_int t.retransmissions /. float_of_int t.segments_sent
