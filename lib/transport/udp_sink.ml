type t = {
  on_packet : (Ispn_sim.Packet.t -> unit) option;
  mutable received : int;
  mutable bits : int;
}

let create ?on_packet () = { on_packet; received = 0; bits = 0 }

let receive t pkt =
  t.received <- t.received + 1;
  t.bits <- t.bits + Ispn_sim.Packet.size_bits pkt;
  (match t.on_packet with Some f -> f pkt | None -> ());
  (* Terminal sink: the handle dies here (the callback may inspect the
     packet but must not retain it). *)
  Ispn_sim.Packet.free pkt

let received t = t.received
let bits_received t = t.bits
