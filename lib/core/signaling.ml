open Ispn_sim
module Spec = Ispn_admission.Spec
module Bounds = Ispn_admission.Bounds
module Controller = Ispn_admission.Controller
module Meter = Ispn_admission.Meter
module Units = Ispn_util.Units

let control_packet_bits = 500
let ctrl_flow_base = 900_000

type established = {
  flow : int;
  cls : int option;
  advertised_bound : float option;
  setup_time : float;
  emit : Packet.t -> unit;
}

type level = Guaranteed | Predicted | Datagram

let level_name = function
  | Guaranteed -> "guaranteed"
  | Predicted -> "predicted"
  | Datagram -> "datagram"

let level_of = function
  | Spec.Guaranteed _ -> Guaranteed
  | Spec.Predicted _ -> Predicted
  | Spec.Datagram -> Datagram

(* A setup in flight.  [granted] records, per completed hop, the link index
   and the class granted there (None = guaranteed), newest first — exactly
   what a rollback must undo.  [attempts] counts retransmissions of the
   message currently on the wire (reset when a hop answers). *)
type setup_ctx = {
  ctx_flow : int;
  ingress : int;
  egress : int;
  spec : Spec.request;
  own_bucket : Spec.bucket option;
  sink : Packet.t -> unit;
  on_result : (established, string) result -> unit;
  started_at : float;
  path : int list;
  mutable granted : (int * int option) list;
  mutable bound_acc : float;  (* summed class targets along the path *)
  mutable attempts : int;
  mutable timeout_h : Engine.handle option;
}

(* A refresh epoch walking the path, stamping each agent's soft state; if
   any hop has forgotten the flow, the pass ends in a full re-assert. *)
type refresh_ctx = {
  rf_flow : int;
  rf_ingress : int;
  rf_path : int list;
  rf_started : float;
  mutable rf_needs_reassert : bool;
}

(* An in-band teardown walking the path.  Deliberately fire-and-forget: a
   lost leg leaves the downstream state to the refresh timeout. *)
type teardown_ctx = { td_flow : int; td_ingress : int; td_path : int list }

(* Every control packet resolves its token to a typed pending message, so
   a stale or duplicated packet can never be replayed as the wrong message
   kind — a setup retransmission cannot masquerade as a refresh and
   re-stamp state a rollback just cleared. *)
type pending =
  | P_setup of setup_ctx * int  (* resume the setup at this hop *)
  | P_refresh of refresh_ctx * int  (* stamp this hop, forward *)
  | P_teardown of teardown_ctx * int  (* release this hop, forward *)

(* Established flows keep everything a post-crash re-setup needs: the path,
   the original request and the rung of the degradation ladder currently in
   force; plus the soft-state machinery — the periodic refresh timer and
   the token of the refresh leg currently on the wire (-1 = none), which a
   teardown must invalidate so a delayed refresh cannot resurrect state
   for a dead flow. *)
type flow_record = {
  mutable fr_granted : (int * int option) list;
  fr_ingress : int;
  fr_path : int list;
  fr_own_bucket : Spec.bucket option;
  fr_requested : Spec.request;
  mutable fr_current : Spec.request;
  mutable fr_refresh_h : Engine.handle option;
  mutable fr_refresh_token : int;
}

type t = {
  fab : Fabric.t;
  class_targets : float array;
  reverse_hop_delay : float;
  setup_timeout : float;
  max_retries : int;
  refresh_interval : float option;
  lifetime : float;  (* refresh_interval * lifetime_epochs; 0 when off *)
  (* One single-link controller per link, owned by that link's upstream
     agent. *)
  ctrls : Controller.t array;
  (* Per agent: flow -> time its reservation was last asserted here.  Only
     populated when soft state is on; the sweep expires stale entries. *)
  soft : (int, float) Hashtbl.t array;
  pending_msgs : (int, pending) Hashtbl.t;  (* token -> message *)
  mutable next_token : int;
  in_flight : (int, unit) Hashtbl.t;  (* flows with a setup travelling *)
  flows : (int, flow_record) Hashtbl.t;  (* established *)
  mutable established_count : int;
  mutable total_established : int;
  mutable refused_count : int;
  mutable teardowns : int;
  mutable control_packets : int;
  mutable retries : int;
  mutable abandoned : int;
  mutable crashes : int;
  mutable degraded : int;
  mutable reestablished : int;
  mutable reestablish_total : float;
  mutable refreshes : int;
  mutable refresh_packets : int;
  mutable teardown_packets : int;
  mutable expired : int;
}

let fabric t = t.fab
let established_count t = t.established_count
let total_established t = t.total_established
let refused_count t = t.refused_count
let teardown_count t = t.teardowns
let control_packets_sent t = t.control_packets
let retries t = t.retries
let abandoned_count t = t.abandoned
let crash_count t = t.crashes
let degraded_count t = t.degraded
let reestablished_count t = t.reestablished
let refresh_epochs t = t.refreshes
let refresh_packets_sent t = t.refresh_packets
let teardown_packets_sent t = t.teardown_packets
let expired_count t = t.expired
let soft_state_count t ~link = Hashtbl.length t.soft.(link)

let mean_reestablish_latency t =
  if t.reestablished = 0 then 0.
  else t.reestablish_total /. float_of_int t.reestablished

let controller t ~link = t.ctrls.(link)

let register_metrics t m ?(prefix = "signaling") () =
  let module M = Ispn_obs.Metrics in
  M.register_int m (prefix ^ ".established") (fun () -> t.established_count);
  M.register_int m (prefix ^ ".total_established") (fun () ->
      t.total_established);
  M.register_int m (prefix ^ ".refused") (fun () -> t.refused_count);
  M.register_int m (prefix ^ ".teardowns") (fun () -> t.teardowns);
  M.register_int m (prefix ^ ".control_packets") (fun () -> t.control_packets);
  M.register_int m (prefix ^ ".retries") (fun () -> t.retries);
  M.register_int m (prefix ^ ".abandoned") (fun () -> t.abandoned);
  M.register_int m (prefix ^ ".crashes") (fun () -> t.crashes);
  M.register_int m (prefix ^ ".degraded") (fun () -> t.degraded);
  M.register_int m (prefix ^ ".reestablished") (fun () -> t.reestablished);
  M.register_int m (prefix ^ ".refreshes") (fun () -> t.refreshes);
  M.register_int m (prefix ^ ".refresh_packets") (fun () -> t.refresh_packets);
  M.register_int m (prefix ^ ".teardown_packets") (fun () ->
      t.teardown_packets);
  M.register_int m (prefix ^ ".expired") (fun () -> t.expired);
  M.register_float m (prefix ^ ".reestablish_latency_mean") (fun () ->
      mean_reestablish_latency t)

let register_audit t audit =
  Array.iteri
    (fun link ctrl ->
      Ispn_check.Audit.register_flow_state audit
        ~label:(Printf.sprintf "agent %d" link)
        ~admitted:(fun () -> Controller.admissions ctrl)
        ~released:(fun () -> Controller.releases ctrl)
        ~live:(fun () -> Controller.live ctrl)
        ())
    t.ctrls;
  Ispn_check.Audit.register_flow_state audit ~label:"sessions"
    ~admitted:(fun () -> t.total_established)
    ~released:(fun () -> t.teardowns)
    ~live:(fun () -> t.established_count)
    ()

let service_level t ~flow =
  Option.map (fun fr -> level_of fr.fr_current) (Hashtbl.find_opt t.flows flow)

let engine t = Fabric.engine t.fab

let soft_state_on t = t.refresh_interval <> None

(* The agent at [link] (re-)asserts [flow]'s reservation in its soft-state
   book; the sweep tears it down [lifetime] later unless re-stamped. *)
let stamp t ~link ~flow =
  if soft_state_on t then
    Hashtbl.replace t.soft.(link) flow (Engine.now (engine t))

let unstamp t ~link ~flow =
  if soft_state_on t then Hashtbl.remove t.soft.(link) flow

let new_token t =
  let token = t.next_token in
  t.next_token <- t.next_token + 1;
  token

let set_refresh_token t ~flow token =
  match Hashtbl.find_opt t.flows flow with
  | None -> ()
  | Some fr -> fr.fr_refresh_token <- token

let clear_refresh_token t ~flow token =
  match Hashtbl.find_opt t.flows flow with
  | Some fr when fr.fr_refresh_token = token -> fr.fr_refresh_token <- -1
  | Some _ | None -> ()

(* Drop every trace of [flow] at one hop: admission record, scheduler
   registration, soft-state stamp.  Unconditional and idempotent. *)
let wipe_hop t ~link ~flow =
  Controller.release t.ctrls.(link) ~flow;
  let sched = Fabric.sched t.fab ~link in
  Csz_sched.clear_predicted sched ~flow;
  (try Csz_sched.remove_guaranteed sched ~flow
   with Invalid_argument _ -> ());
  unstamp t ~link ~flow

(* Put one control packet on the wire over [over_link], injected at its
   upstream switch; the pre-installed control route carries it across
   exactly one hop, through the datagram class. *)
let send_ctrl t ~at_switch ~over_link token =
  t.control_packets <- t.control_packets + 1;
  let pkt =
    Packet.make
      ~flow:(ctrl_flow_base + over_link)
      ~seq:token ~size_bits:control_packet_bits
      ~created:(Engine.now (engine t))
      ()
  in
  Fabric.inject t.fab ~at_switch pkt

(* The per-hop admission request: the end-to-end delay target is split
   evenly over the hops so each local controller can pick a class for its
   own switch (the paper allows different levels per switch). *)
let local_of spec ~hops =
  match spec with
  | Spec.Predicted { bucket; target_delay; target_loss } ->
      Spec.Predicted
        {
          bucket;
          target_delay = target_delay /. float_of_int hops;
          target_loss;
        }
  | (Spec.Guaranteed _ | Spec.Datagram) as s -> s

(* Forward declaration dance: agents need [process] which needs [t]. *)
let rec process t token =
  match Hashtbl.find_opt t.pending_msgs token with
  | None -> ()  (* stale, duplicated or retransmitted-over control packet *)
  | Some (P_setup (ctx, hop)) ->
      Hashtbl.remove t.pending_msgs token;
      (match ctx.timeout_h with
      | Some h ->
          Engine.cancel (engine t) h;
          ctx.timeout_h <- None
      | None -> ());
      ctx.attempts <- 0;
      advance t ctx hop
  | Some (P_refresh (rctx, hop)) ->
      Hashtbl.remove t.pending_msgs token;
      (* Only a still-established flow may be refreshed: a teardown racing
         this packet has already invalidated the token, but be safe. *)
      if Hashtbl.mem t.flows rctx.rf_flow then begin
        clear_refresh_token t ~flow:rctx.rf_flow token;
        refresh_hop t rctx hop
      end
  | Some (P_teardown (tctx, hop)) ->
      Hashtbl.remove t.pending_msgs token;
      teardown_hop t tctx hop

(* Try to reserve at [hop] (an index into ctx.path); on success forward the
   setup message over that hop's link, or confirm if past the last hop. *)
and advance t ctx hop =
  if hop >= List.length ctx.path then confirm t ctx
  else begin
    let link = List.nth ctx.path hop in
    let ctrl = t.ctrls.(link) in
    match
      Controller.request ctrl ~flow:ctx.ctx_flow ~path:[ 0 ]
        (local_of ctx.spec ~hops:(List.length ctx.path))
    with
    | Controller.Rejected reason -> refuse t ctx hop reason
    | Controller.Admitted { cls } ->
        let sched = Fabric.sched t.fab ~link in
        (match (ctx.spec, cls) with
        | Spec.Guaranteed { clock_rate_bps }, _ ->
            Csz_sched.add_guaranteed sched ~flow:ctx.ctx_flow ~clock_rate_bps
        | Spec.Predicted _, Some c ->
            Csz_sched.set_predicted sched ~flow:ctx.ctx_flow ~cls:c;
            ctx.bound_acc <- ctx.bound_acc +. t.class_targets.(c)
        | Spec.Predicted _, None | Spec.Datagram, _ -> ());
        stamp t ~link ~flow:ctx.ctx_flow;
        ctx.granted <- (link, cls) :: ctx.granted;
        forward t ctx (hop + 1)
  end

(* Put the setup message on the wire toward the next agent and arm its
   retransmission timer.  [hop] is the next hop to reserve; the message
   travels the link just reserved (the last element of ctx.granted). *)
and forward t ctx hop =
  let sent_over =
    match ctx.granted with
    | (link, _) :: _ -> link
    | [] -> assert false
  in
  let token = new_token t in
  Hashtbl.replace t.pending_msgs token (P_setup (ctx, hop));
  send_ctrl t
    ~at_switch:(ctx.ingress + List.length ctx.granted - 1)
    ~over_link:sent_over token;
  let delay = t.setup_timeout *. (2. ** float_of_int ctx.attempts) in
  ctx.timeout_h <-
    Some
      (Engine.schedule_after (engine t) ~delay (fun () ->
           on_timeout t ctx ~token ~hop))

(* The message (or the wire under it) was lost: retransmit with exponential
   backoff, invalidating the old token first so a copy that was merely
   delayed cannot double-reserve when it finally lands. *)
and on_timeout t ctx ~token ~hop =
  if Hashtbl.mem t.pending_msgs token then begin
    Hashtbl.remove t.pending_msgs token;
    ctx.timeout_h <- None;
    if ctx.attempts >= t.max_retries then begin
      t.abandoned <- t.abandoned + 1;
      fail t ctx ~failed_hop:(hop - 1)
        (Printf.sprintf "setup timed out at hop %d after %d attempts" hop
           (ctx.attempts + 1))
    end
    else begin
      ctx.attempts <- ctx.attempts + 1;
      t.retries <- t.retries + 1;
      forward t ctx hop
    end
  end

and confirm t ctx =
  let hops = List.length ctx.path in
  let delay = t.reverse_hop_delay *. float_of_int hops in
  ignore
    (Engine.schedule_after (engine t) ~delay (fun () ->
         Hashtbl.remove t.in_flight ctx.ctx_flow;
         Hashtbl.replace t.flows ctx.ctx_flow
           {
             fr_granted = ctx.granted;
             fr_ingress = ctx.ingress;
             fr_path = ctx.path;
             fr_own_bucket = ctx.own_bucket;
             fr_requested = ctx.spec;
             fr_current = ctx.spec;
             fr_refresh_h = None;
             fr_refresh_token = -1;
           };
         t.established_count <- t.established_count + 1;
         t.total_established <- t.total_established + 1;
         arm_refresh t ~flow:ctx.ctx_flow;
         Fabric.install_flow t.fab ~flow:ctx.ctx_flow ~ingress:ctx.ingress
           ~egress:ctx.egress ~sink:ctx.sink;
         let inject pkt = Fabric.inject t.fab ~at_switch:ctx.ingress pkt in
         let emit, cls, bound =
           match ctx.spec with
           | Spec.Guaranteed { clock_rate_bps } ->
               let bound =
                 Option.map
                   (fun bucket ->
                     Bounds.pg_bound ~bucket ~clock_rate_bps ~hops ())
                   ctx.own_bucket
               in
               (inject, None, bound)
           | Spec.Predicted { bucket; _ } ->
               let tb =
                 Ispn_traffic.Token_bucket.create ~rate_bps:bucket.Spec.rate_bps
                   ~depth_bits:bucket.Spec.depth_bits ()
               in
               let policer =
                 Ispn_traffic.Token_bucket.policer ~engine:(engine t)
                   ~bucket:tb ~mode:Ispn_traffic.Token_bucket.Drop ~next:inject
               in
               let ingress_cls =
                 match List.rev ctx.granted with
                 | (_, c) :: _ -> c
                 | [] -> None
               in
               ( Ispn_traffic.Token_bucket.admit_fn policer,
                 ingress_cls,
                 Some ctx.bound_acc )
           | Spec.Datagram -> (inject, None, None)
         in
         ctx.on_result
           (Ok
              {
                flow = ctx.ctx_flow;
                cls;
                advertised_bound = bound;
                setup_time = Engine.now (engine t) -. ctx.started_at;
                emit;
              })))

and refuse t ctx failed_hop reason =
  fail t ctx ~failed_hop
    (Printf.sprintf "refused at hop %d: %s" (failed_hop + 1) reason)

(* Roll back every reservation made so far, then report after the reverse
   trip. *)
and fail t ctx ~failed_hop msg =
  release_granted t ~flow:ctx.ctx_flow ctx.granted;
  ctx.granted <- [];
  let delay = t.reverse_hop_delay *. float_of_int (failed_hop + 1) in
  ignore
    (Engine.schedule_after (engine t) ~delay (fun () ->
         Hashtbl.remove t.in_flight ctx.ctx_flow;
         t.refused_count <- t.refused_count + 1;
         ctx.on_result (Error msg)))

and release_granted t ~flow granted =
  List.iter
    (fun (link, cls) ->
      Controller.release t.ctrls.(link) ~flow;
      let sched = Fabric.sched t.fab ~link in
      (match cls with
      | Some _ -> Csz_sched.clear_predicted sched ~flow
      | None -> (
          (* Guaranteed or datagram; removing an unknown guaranteed flow is
             the datagram case. *)
          try Csz_sched.remove_guaranteed sched ~flow
          with Invalid_argument _ -> ()));
      unstamp t ~link ~flow)
    granted

(* {2 Soft state: refresh, expiry, in-band teardown} *)

(* Each established flow runs a PATH/RESV-style refresh pump: every
   [refresh_interval] the ingress agent re-stamps its own hop and sends a
   refresh message down the path, each agent re-stamping as it passes.  A
   hop that has forgotten the flow (crash, expiry during a partition)
   flips [rf_needs_reassert]; the pass then ends in the same idempotent
   re-assert used after a crash, restoring — or degrading — the
   reservation.  Refresh messages are fire-and-forget: retransmitting them
   is pointless because the next epoch repeats them anyway. *)
and arm_refresh t ~flow =
  match t.refresh_interval with
  | None -> ()
  | Some ri -> (
      match Hashtbl.find_opt t.flows flow with
      | None -> ()
      | Some fr ->
          fr.fr_refresh_h <-
            Some
              (Engine.schedule_after (engine t) ~delay:ri (fun () ->
                   if Hashtbl.mem t.flows flow then begin
                     refresh_now t ~flow;
                     arm_refresh t ~flow
                   end)))

and refresh_now t ~flow =
  match Hashtbl.find_opt t.flows flow with
  | None -> ()
  | Some fr ->
      t.refreshes <- t.refreshes + 1;
      (* Supersede any leg of the previous epoch still on the wire. *)
      if fr.fr_refresh_token >= 0 then begin
        Hashtbl.remove t.pending_msgs fr.fr_refresh_token;
        fr.fr_refresh_token <- -1
      end;
      let rctx =
        {
          rf_flow = flow;
          rf_ingress = fr.fr_ingress;
          rf_path = fr.fr_path;
          rf_started = Engine.now (engine t);
          rf_needs_reassert = false;
        }
      in
      refresh_hop t rctx 0

and refresh_hop t rctx hop =
  let link = List.nth rctx.rf_path hop in
  (if Controller.mem t.ctrls.(link) ~flow:rctx.rf_flow then
     stamp t ~link ~flow:rctx.rf_flow
   else rctx.rf_needs_reassert <- true);
  if hop + 1 < List.length rctx.rf_path then begin
    let token = new_token t in
    Hashtbl.replace t.pending_msgs token (P_refresh (rctx, hop + 1));
    set_refresh_token t ~flow:rctx.rf_flow token;
    t.refresh_packets <- t.refresh_packets + 1;
    send_ctrl t ~at_switch:(rctx.rf_ingress + hop) ~over_link:link token;
    (* Reap a token whose packet died on the wire, so pending_msgs stays
       bounded under churn; by then the next epoch has superseded it. *)
    ignore
      (Engine.schedule_after (engine t) ~delay:t.lifetime (fun () ->
           if Hashtbl.mem t.pending_msgs token then begin
             Hashtbl.remove t.pending_msgs token;
             clear_refresh_token t ~flow:rctx.rf_flow token
           end))
  end
  else if rctx.rf_needs_reassert then
    resetup t ~flow:rctx.rf_flow ~crashed_at:rctx.rf_started

and teardown_hop t tctx hop =
  let link = List.nth tctx.td_path hop in
  wipe_hop t ~link ~flow:tctx.td_flow;
  if hop + 1 < List.length tctx.td_path then begin
    let token = new_token t in
    Hashtbl.replace t.pending_msgs token (P_teardown (tctx, hop + 1));
    t.teardown_packets <- t.teardown_packets + 1;
    send_ctrl t ~at_switch:(tctx.td_ingress + hop) ~over_link:link token;
    let reap =
      if soft_state_on t then t.lifetime else 20. *. t.setup_timeout
    in
    ignore
      (Engine.schedule_after (engine t) ~delay:reap (fun () ->
           Hashtbl.remove t.pending_msgs token))
  end

(* {2 Crash recovery} *)

(* Drop every trace of [flow] along its whole path — admission records and
   scheduler registrations alike.  Unconditional and idempotent, so it is
   safe whatever mix of surviving and freshly re-acquired state the flow
   has when a re-assertion pass fails halfway. *)
and release_everywhere t ~flow fr =
  List.iter (fun link -> wipe_hop t ~link ~flow) fr.fr_path

and note_reestablished t ~crashed_at =
  t.reestablished <- t.reestablished + 1;
  t.reestablish_total <-
    t.reestablish_total +. (Engine.now (engine t) -. crashed_at)

(* Re-assert [spec] for an established flow hop by hop.  Idempotent: a hop
   whose controller still knows the flow keeps its existing grant; only
   hops that forgot are re-requested.  If any hop refuses, the flow slides
   one rung down the degradation ladder (guaranteed -> predicted ->
   datagram, Section 2's adaptive client accepting a looser commitment) and
   the pass restarts with the weaker spec. *)
and reassert t ~flow ~crashed_at fr spec =
  let hops = List.length fr.fr_path in
  match spec with
  | Spec.Datagram ->
      (* Bottom rung: datagram needs no per-hop state, it always succeeds. *)
      release_everywhere t ~flow fr;
      fr.fr_granted <- [];
      fr.fr_current <- Spec.Datagram;
      note_reestablished t ~crashed_at
  | _ -> (
      let local = local_of spec ~hops in
      let rec go path acc =
        match path with
        | [] -> Some (List.rev acc)
        | link :: rest ->
            let ctrl = t.ctrls.(link) in
            if Controller.mem ctrl ~flow then begin
              stamp t ~link ~flow;
              let prev =
                Option.value ~default:None (List.assoc_opt link fr.fr_granted)
              in
              go rest ((link, prev) :: acc)
            end
            else (
              match Controller.request ctrl ~flow ~path:[ 0 ] local with
              | Controller.Rejected _ -> None
              | Controller.Admitted { cls } ->
                  let sched = Fabric.sched t.fab ~link in
                  (match (spec, cls) with
                  | Spec.Guaranteed { clock_rate_bps }, _ -> (
                      try Csz_sched.add_guaranteed sched ~flow ~clock_rate_bps
                      with Invalid_argument _ -> ())
                  | Spec.Predicted _, Some c ->
                      Csz_sched.set_predicted sched ~flow ~cls:c
                  | Spec.Predicted _, None | Spec.Datagram, _ -> ());
                  stamp t ~link ~flow;
                  go rest ((link, cls) :: acc))
      in
      match go fr.fr_path [] with
      | Some granted ->
          fr.fr_granted <- granted;
          fr.fr_current <- spec;
          note_reestablished t ~crashed_at
      | None ->
          t.degraded <- t.degraded + 1;
          release_everywhere t ~flow fr;
          fr.fr_granted <- [];
          reassert t ~flow ~crashed_at fr (degrade t fr spec ~hops))

and degrade t fr spec ~hops =
  match spec with
  | Spec.Guaranteed { clock_rate_bps } ->
      (* Ask for predicted service shaped like the old commitment: the
         flow's declared bucket if it gave one, else a bucket at the old
         clock rate; the delay target is the loosest class end to end. *)
      let bucket =
        match fr.fr_own_bucket with
        | Some b -> b
        | None ->
            {
              Spec.rate_bps = clock_rate_bps;
              depth_bits = 5. *. float_of_int Units.packet_bits;
            }
      in
      let loosest = t.class_targets.(Array.length t.class_targets - 1) in
      Spec.Predicted
        {
          bucket;
          target_delay = loosest *. float_of_int hops;
          target_loss = 0.01;
        }
  | Spec.Predicted _ | Spec.Datagram -> Spec.Datagram

and resetup t ~flow ~crashed_at =
  match Hashtbl.find_opt t.flows flow with
  | None -> ()  (* torn down while the refresh was in flight *)
  | Some fr -> reassert t ~flow ~crashed_at fr fr.fr_current

(* The agent at [link] expires one un-refreshed reservation: releases the
   admission record and scheduler registration, and — when the flow is
   still nominally established — drops the hop from its grant list so a
   later teardown does not double-release.  The next refresh pass notices
   the missing hop and re-asserts; state of a departed flow whose teardown
   was lost simply dies here. *)
let expire t ~link ~flow =
  t.expired <- t.expired + 1;
  wipe_hop t ~link ~flow;
  match Hashtbl.find_opt t.flows flow with
  | None -> ()
  | Some fr ->
      fr.fr_granted <- List.filter (fun (l, _) -> l <> link) fr.fr_granted

let deploy ~fabric:fab ?(class_targets = [| 0.008; 0.064 |])
    ?(epoch_interval = 1.0) ?(reverse_hop_delay = 1e-3)
    ?(setup_timeout = 0.05) ?(max_retries = 4) ?refresh_interval
    ?(lifetime_epochs = 3) () =
  let k = Array.length class_targets in
  if k = 0 then invalid_arg "Signaling.deploy: class_targets must be non-empty";
  if class_targets.(0) <= 0. then
    invalid_arg "Signaling.deploy: class_targets must be positive";
  for i = 1 to k - 1 do
    if class_targets.(i) <= class_targets.(i - 1) then
      invalid_arg "Signaling.deploy: class_targets must be strictly increasing"
  done;
  if setup_timeout <= 0. then
    invalid_arg "Signaling.deploy: setup_timeout must be positive";
  if max_retries < 0 then
    invalid_arg "Signaling.deploy: max_retries must be non-negative";
  (match refresh_interval with
  | Some ri when ri <= 0. ->
      invalid_arg "Signaling.deploy: refresh_interval must be positive"
  | Some _ | None -> ());
  if lifetime_epochs < 1 then
    invalid_arg "Signaling.deploy: lifetime_epochs must be at least 1";
  let n_links = Fabric.n_links fab in
  (* Chain check: link i must be the one-hop path from switch i to i+1. *)
  for i = 0 to n_links - 1 do
    if Fabric.path fab ~ingress:i ~egress:(i + 1) <> Some [ i ] then
      invalid_arg "Signaling.deploy: chain fabrics only"
  done;
  let ctrls =
    Array.init n_links (fun _ ->
        Controller.create ~n_links:1 ~mu_bps:Units.link_rate_bps ~class_targets
          ())
  in
  let lifetime =
    match refresh_interval with
    | None -> 0.
    | Some ri -> ri *. float_of_int lifetime_epochs
  in
  let t =
    {
      fab;
      class_targets;
      reverse_hop_delay;
      setup_timeout;
      max_retries;
      refresh_interval;
      lifetime;
      ctrls;
      soft = Array.init n_links (fun _ -> Hashtbl.create 16);
      pending_msgs = Hashtbl.create 64;
      next_token = 0;
      in_flight = Hashtbl.create 16;
      flows = Hashtbl.create 32;
      established_count = 0;
      total_established = 0;
      refused_count = 0;
      teardowns = 0;
      control_packets = 0;
      retries = 0;
      abandoned = 0;
      crashes = 0;
      degraded = 0;
      reestablished = 0;
      reestablish_total = 0.;
      refreshes = 0;
      refresh_packets = 0;
      teardown_packets = 0;
      expired = 0;
    }
  in
  (* Control channels: one flow per link, delivered to the downstream
     agent, which resumes the setup from there. *)
  for link = 0 to n_links - 1 do
    Fabric.install_flow fab ~flow:(ctrl_flow_base + link) ~ingress:link
      ~egress:(link + 1)
      ~sink:(fun pkt ->
        let seq = Packet.seq pkt in
        Packet.free pkt;
        process t seq)
  done;
  (* Measurement pumps, one per link's controller. *)
  let last_bits = Array.make n_links 0 in
  let rec pump () =
    for i = 0 to n_links - 1 do
      let bits = Csz_sched.realtime_bits_sent (Fabric.sched fab ~link:i) in
      Meter.note_util
        (Controller.meter ctrls.(i) ~link:0)
        (float_of_int (bits - last_bits.(i))
        /. (Units.link_rate_bps *. epoch_interval));
      last_bits.(i) <- bits;
      Controller.epoch ctrls.(i)
    done;
    ignore (Engine.schedule_after (engine t) ~delay:epoch_interval pump)
  in
  ignore (Engine.schedule_after (engine t) ~delay:epoch_interval pump);
  (* Per-class delay measurements feed each link's own controller. *)
  for i = 0 to n_links - 1 do
    let meter = Controller.meter ctrls.(i) ~link:0 in
    Csz_sched.set_delay_hook (Fabric.sched fab ~link:i) (fun ~cls delay ->
        if cls >= 0 && cls < k then Meter.note_delay meter ~cls delay)
  done;
  (* The soft-state sweep: every refresh interval, each agent expires the
     reservations that have not been stamped within the lifetime.  Expired
     flows are collected and sorted first so the order is deterministic
     regardless of hash-table layout. *)
  (match refresh_interval with
  | None -> ()
  | Some ri ->
      let rec sweep () =
        let now = Engine.now (engine t) in
        for link = 0 to n_links - 1 do
          let dead =
            Hashtbl.fold
              (fun flow at acc ->
                if now -. at > t.lifetime then flow :: acc else acc)
              t.soft.(link) []
          in
          List.iter (fun flow -> expire t ~link ~flow) (List.sort compare dead)
        done;
        ignore (Engine.schedule_after (engine t) ~delay:ri sweep)
      in
      ignore (Engine.schedule_after (engine t) ~delay:ri sweep));
  t

let setup t ~flow ~ingress ~egress ?own_bucket spec ~sink ~on_result =
  if Hashtbl.mem t.in_flight flow || Hashtbl.mem t.flows flow then
    invalid_arg
      (Printf.sprintf "Signaling.setup: flow %d already in flight" flow);
  match Fabric.path t.fab ~ingress ~egress with
  | None | Some [] -> on_result (Error "no route")
  | Some path ->
      Hashtbl.replace t.in_flight flow ();
      let ctx =
        {
          ctx_flow = flow;
          ingress;
          egress;
          spec;
          own_bucket;
          sink;
          on_result;
          started_at = Engine.now (engine t);
          path;
          granted = [];
          bound_acc = 0.;
          attempts = 0;
          timeout_h = None;
        }
      in
      (* The ingress agent processes hop 0 locally, with no wire delay. *)
      advance t ctx 0

(* Cancel the refresh pump and invalidate any refresh leg on the wire, so
   a delayed refresh cannot re-assert state for a flow being removed. *)
let cancel_refresh t fr =
  (match fr.fr_refresh_h with
  | Some h ->
      Engine.cancel (engine t) h;
      fr.fr_refresh_h <- None
  | None -> ());
  if fr.fr_refresh_token >= 0 then begin
    Hashtbl.remove t.pending_msgs fr.fr_refresh_token;
    fr.fr_refresh_token <- -1
  end

let remove_record t ~flow fr =
  cancel_refresh t fr;
  Hashtbl.remove t.flows flow;
  t.established_count <- t.established_count - 1;
  t.teardowns <- t.teardowns + 1

let teardown t ~flow =
  match Hashtbl.find_opt t.flows flow with
  | None -> ()
  | Some fr ->
      remove_record t ~flow fr;
      release_granted t ~flow fr.fr_granted

let depart t ~flow =
  match Hashtbl.find_opt t.flows flow with
  | None -> ()
  | Some fr ->
      remove_record t ~flow fr;
      (* The ingress hop is released locally; the rest of the path learns
         by in-band teardown message, each hop releasing and forwarding.
         A lost leg strands the downstream state — which is exactly what
         the refresh timeout exists to reclaim. *)
      teardown_hop t
        { td_flow = flow; td_ingress = fr.fr_ingress; td_path = fr.fr_path }
        0

let crash_agent t ~switch =
  let n_links = Array.length t.ctrls in
  if switch < 0 || switch >= n_links then
    invalid_arg
      (Printf.sprintf "Signaling.crash_agent: switch %d owns no outgoing link"
         switch);
  let link = switch in
  t.crashes <- t.crashes + 1;
  (* The agent's soft state dies with it: scheduler registrations on its
     outgoing link, its admission book and its refresh stamps.  The
     forwarding plane — qdisc, buffered packets, meters — keeps running,
     so admission decisions after the crash still see measured load. *)
  let sched = Fabric.sched t.fab ~link in
  let affected = ref [] in
  Hashtbl.iter
    (fun flow fr ->
      List.iter
        (fun (l, cls) ->
          if l = link then
            match cls with
            | Some _ -> Csz_sched.clear_predicted sched ~flow
            | None -> (
                try Csz_sched.remove_guaranteed sched ~flow
                with Invalid_argument _ -> ()))
        fr.fr_granted;
      if List.mem link fr.fr_path && fr.fr_current <> Spec.Datagram then
        affected := flow :: !affected)
    t.flows;
  Controller.reset t.ctrls.(link);
  Hashtbl.reset t.soft.(link);
  (* Soft-state recovery: every established flow through the dead agent
     re-asserts its reservation after one refresh round trip over its path
     (flows in a fixed order, for determinism). *)
  let crashed_at = Engine.now (engine t) in
  List.iter
    (fun flow ->
      let fr = Hashtbl.find t.flows flow in
      let delay =
        t.reverse_hop_delay *. float_of_int (List.length fr.fr_path)
      in
      ignore
        (Engine.schedule_after (engine t) ~delay (fun () ->
             resetup t ~flow ~crashed_at)))
    (List.sort compare !affected)
