module Table = Ispn_util.Table

let f2 = Table.fmt_float ~decimals:2

let table1 runs ~sample_flow =
  let rows =
    List.map
      (fun (sched, results, _info) ->
        let r =
          List.find
            (fun (fr : Experiment.flow_result) -> fr.flow = sample_flow)
            results
        in
        [ Experiment.sched_name sched; f2 r.mean; f2 r.p999 ])
      runs
  in
  let util =
    match runs with
    | (_, _, info) :: _ ->
        Printf.sprintf "\nLink utilization: %.1f%%"
          (100. *. info.Experiment.utilization.(0))
    | [] -> ""
  in
  Table.render ~header:[ "scheduling"; "mean"; "99.9 %ile" ] ~rows () ^ util

let table2 runs ~sample_flows =
  let header =
    "scheduling"
    :: List.concat_map
         (fun flow ->
           ignore flow;
           [ "mean"; "99.9 %ile" ])
         sample_flows
  in
  let path_header =
    "path len"
    :: List.concat_map
         (fun flow ->
           let spec =
             List.find
               (fun s -> s.Scenario.flow = flow)
               Scenario.figure1_flows
           in
           let h = string_of_int (Scenario.hops spec) in
           [ h; h ])
         sample_flows
  in
  let rows =
    List.map
      (fun (sched, results) ->
        Experiment.sched_name sched
        :: List.concat_map
             (fun flow ->
               let r =
                 List.find
                   (fun (fr : Experiment.flow_result) -> fr.flow = flow)
                   results
               in
               [ f2 r.mean; f2 r.p999 ])
             sample_flows)
      runs
  in
  Table.render ~header ~rows:(path_header :: rows) ()

let table3 (res : Experiment.t3_result) =
  let open Experiment in
  let guaranteed, predicted =
    List.partition (fun row -> row.pg_bound <> None) res.rows
  in
  let g_rows =
    List.map
      (fun row ->
        [
          row.label;
          string_of_int row.t3_hops;
          f2 row.t3_mean;
          f2 row.t3_p999;
          f2 row.t3_max;
          (match row.pg_bound with Some b -> f2 b | None -> "-");
        ])
      guaranteed
  in
  let p_rows =
    List.map
      (fun row ->
        [
          row.label;
          string_of_int row.t3_hops;
          f2 row.t3_mean;
          f2 row.t3_p999;
          f2 row.t3_max;
        ])
      predicted
  in
  let g_table =
    Table.render
      ~header:[ "type"; "path len"; "mean"; "99.9 %ile"; "max"; "P-G bound" ]
      ~rows:g_rows ()
  in
  let p_table =
    Table.render
      ~header:[ "type"; "path len"; "mean"; "99.9 %ile"; "max" ]
      ~rows:p_rows ()
  in
  let util_line =
    let total =
      Array.fold_left ( +. ) 0. res.info.utilization
      /. float_of_int (Array.length res.info.utilization)
    in
    let rt =
      Array.fold_left ( +. ) 0. res.realtime_utilization
      /. float_of_int (Array.length res.realtime_utilization)
    in
    Printf.sprintf
      "Mean link utilization: %.1f%% (real-time %.1f%%); datagram drop rate \
       %.2f%%; buffer drops %d"
      (100. *. total) (100. *. rt)
      (100. *. res.datagram_drop_rate)
      res.info.net_dropped
  in
  let tcp_lines =
    List.map
      (fun t ->
        Printf.sprintf
          "TCP flow %d: goodput %.0f bps, delivered %d, sent %d, loss %.2f%%"
          t.tcp_flow t.goodput_bps t.delivered t.segments_sent
          (100. *. t.loss_rate))
      res.tcp
  in
  String.concat "\n"
    ([ "Guaranteed Service"; g_table; ""; "Predicted Service"; p_table; "" ]
    @ tcp_lines @ [ util_line ])

let figure1 () =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "Host-1   Host-2   Host-3   Host-4   Host-5\n\
    \  |        |        |        |        |\n\
    \ S-1 ---- S-2 ---- S-3 ---- S-4 ---- S-5\n\
    \      L-1      L-2      L-3      L-4   (1 Mbit/s each)\n\n";
  Buffer.add_string b "Flow layout (22 flows, 10 per link):\n";
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "  flow %2d: S-%d -> S-%d (length %d)\n"
           s.Scenario.flow (s.Scenario.ingress + 1) (s.Scenario.egress + 1)
           (Scenario.hops s)))
    Scenario.figure1_flows;
  Buffer.contents b

let flow_results results =
  let rows =
    List.map
      (fun (r : Experiment.flow_result) ->
        [
          string_of_int r.flow;
          string_of_int r.hops;
          string_of_int r.received;
          f2 r.mean;
          f2 r.p999;
          f2 r.max;
        ])
      results
  in
  Table.render
    ~header:[ "flow"; "hops"; "received"; "mean"; "99.9 %ile"; "max" ]
    ~rows ()

(* --- Observability ------------------------------------------------------- *)

let obs_footer labeled =
  let buf = Buffer.create 256 in
  List.iter
    (fun (label, snap) ->
      let get name = List.assoc_opt name snap in
      let str = function
        | Some (Ispn_obs.Metrics.Int i) -> string_of_int i
        | Some (Ispn_obs.Metrics.Float f) -> Printf.sprintf "%.9g" f
        | None -> "-"
      in
      Buffer.add_string buf
        (Printf.sprintf "[obs] %s: events=%s cancels_skipped=%s heap_hwm=%s\n"
           label
           (str (get "engine.events_fired"))
           (str (get "engine.cancels_skipped"))
           (str (get "engine.heap_depth_hwm")));
      let ms name =
        match get name with
        | Some (Ispn_obs.Metrics.Float f) -> Printf.sprintf "%.3f" (1000. *. f)
        | _ -> "-"
      in
      let link = ref 0 in
      let continue = ref true in
      while !continue do
        let p = Printf.sprintf "link.%d" !link in
        match get (p ^ ".sent") with
        | None -> continue := false
        | Some _ ->
            Buffer.add_string buf
              (Printf.sprintf
                 "[obs] %s: %s sent=%s drops(buf/down/wire)=%s/%s/%s \
                  pool_hwm=%s wait(mean/max)=%s/%s ms\n"
                 label p
                 (str (get (p ^ ".sent")))
                 (str (get (p ^ ".drops.buffer")))
                 (str (get (p ^ ".drops.down")))
                 (str (get (p ^ ".drops.wire")))
                 (str (get (p ^ ".pool.in_use_hwm")))
                 (ms (p ^ ".wait.mean"))
                 (ms (p ^ ".wait.max")));
            incr link
      done;
      (* One tail line per histogram channel ([Ispn_obs.Hist] registers
         hist.<ch>.{count,p50,...} when a --series run shares the metrics
         registry); the snapshot is name-sorted, so channels print in a
         stable order. *)
      let dot_count = ".count" in
      List.iter
        (fun (name, v) ->
          let n = String.length name in
          match v with
          | Ispn_obs.Metrics.Int count
            when n > 5 + String.length dot_count
                 && String.sub name 0 5 = "hist."
                 && String.sub name (n - String.length dot_count)
                      (String.length dot_count)
                    = dot_count ->
              let ch = String.sub name 5 (n - 5 - String.length dot_count) in
              let q s = ms ("hist." ^ ch ^ s) in
              Buffer.add_string buf
                (Printf.sprintf
                   "[obs] %s: hist %s n=%d p50/p90/p99/p999=%s/%s/%s/%s ms\n"
                   label ch count (q ".p50") (q ".p90") (q ".p99") (q ".p999"))
          | _ -> ())
        snap)
    labeled;
  Buffer.contents buf

let trace (res : Extensions.trace_result) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "Flight recorder over %s: %d events retained (capacity %d), %d \
        packets reconstructed, %d complete.\n\
        Worst packets by end-to-end queueing delay (packet times):\n"
       (Extensions.trace_experiment_name res.Extensions.tre_experiment)
       res.Extensions.tre_events res.Extensions.tre_capacity
       res.Extensions.tre_delivered res.Extensions.tre_complete);
  List.iter
    (fun (r : Extensions.trace_row) ->
      Buffer.add_string buf
        (Printf.sprintf "flow %d seq %d: e2e %s (probe %s)\n" r.tr_flow
           r.tr_seq (f2 r.tr_queueing) (f2 r.tr_reported));
      List.iter
        (fun (h : Extensions.trace_hop) ->
          Buffer.add_string buf
            (Printf.sprintf "  hop L-%d: queue %s + tx %s\n" (h.th_link + 1)
               (f2 h.th_queueing) (f2 h.th_transmission)))
        r.tr_hops)
    res.Extensions.tre_rows;
  Buffer.contents buf
