(** Hop-by-hop service establishment — the paper's fourth architectural
    component, realized.

    Section 1 names "the means by which the traffic and service commitments
    get established" as the final part of the architecture and Section 9
    explicitly leaves "the negotiation process" unspecified.  This module
    supplies an example mechanism in the spirit the authors' line of work
    later took (RSVP): a {e setup} message carrying the service request
    travels the flow's path as a real control packet through each link's
    datagram class, each switch's agent runs the Section 9 admission test
    for its own outgoing link and installs the reservation before
    forwarding; the egress agent returns a confirmation, and a mid-path
    refusal sends a teardown back along the hops already reserved, rolling
    them back.

    Consequences the instant central {!Service} cannot exhibit, and tests
    do: setup takes real network time (it queues behind data traffic);
    concurrent setups race and serialize in arrival order at each hop; a
    refusal at hop [k] leaves no residue at hops [< k].

    Control packets are 500 bits and travel in-band; confirmations and
    teardowns return on the uncongested reverse path (fixed per-hop delay),
    consistent with the paper's one-directional data plane.

    {b Robustness.}  The control plane assumes nothing about the wire.
    Every setup message carries a retransmission timer: if neither grant
    nor refusal comes back before [setup_timeout], the message is resent
    over the hops already reserved with exponential backoff (the old
    message's token is invalidated first, so a copy that was merely delayed
    cannot double-reserve), and after [max_retries] retransmissions the
    setup is abandoned with a full rollback.  Agents themselves can crash
    ({!crash_agent}): the crash wipes the agent's soft reservation state,
    and every established flow through it re-asserts its reservation
    idempotently — hops that survived keep their grant, hops that forgot
    are re-requested.  If re-admission fails (the capacity went to someone
    else meanwhile), the flow degrades one service rung at a time,
    guaranteed -> predicted -> datagram, per Section 2's tolerant adaptive
    clients, rather than being cut off.  A degraded flow keeps its original
    ingress policer; only its scheduling class and reservations weaken.

    {b Soft state.}  With [?refresh_interval] given to {!deploy}, every
    reservation is {e soft} in the RSVP sense: each agent stamps a flow's
    reservation whenever it grants or re-asserts it, the ingress agent
    sends a periodic refresh message down the path re-stamping every hop,
    and a sweep at each agent expires any reservation not stamped within
    [refresh_interval * lifetime_epochs].  Teardown on session departure
    ({!depart}) is itself an in-band, fire-and-forget message: a lost leg
    strands reservations downstream, and the refresh timeout — not any
    reliable protocol — reclaims them.  The same mechanism heals agent
    crashes and partitions: a refresh pass that finds a hop has forgotten
    the flow ends in the idempotent re-assert (degrading if capacity is
    gone), so the system converges on the correct reservation state from
    {e any} combination of lost teardowns, lost refreshes, and wiped
    agents, purely by timers. *)

type t
(** A fabric with a signaling agent deployed at every switch. *)

val deploy :
  fabric:Fabric.t ->
  ?class_targets:float array ->
  ?epoch_interval:float ->
  ?reverse_hop_delay:float ->
  ?setup_timeout:float ->
  ?max_retries:int ->
  ?refresh_interval:float ->
  ?lifetime_epochs:int ->
  unit ->
  t
(** Attach agents to every switch of [fabric] (each owns the admission
    state of its outgoing links) and start their measurement pumps.
    [class_targets] defaults to [| 0.008; 0.064 |]; [reverse_hop_delay] to
    1 ms; [setup_timeout] (the base retransmission timeout, doubled per
    attempt) to 50 ms; [max_retries] to 4.  Passing [refresh_interval]
    turns soft state on: every established flow refreshes its path that
    often, and each agent expires reservations not re-stamped within
    [refresh_interval * lifetime_epochs] ([lifetime_epochs] defaults to 3,
    RSVP's K).  Raises [Invalid_argument] immediately if [class_targets]
    is empty, non-positive or not strictly increasing — rather than
    failing deep inside [Controller.create] on the first setup — or if
    [refresh_interval] or [lifetime_epochs] is non-positive. *)

val fabric : t -> Fabric.t

type established = {
  flow : int;
  cls : int option;  (** Predicted class, as granted hop-by-hop. *)
  advertised_bound : float option;
      (** Guaranteed: Parekh-Gallager (if [own_bucket] given); predicted:
          summed class targets. *)
  setup_time : float;  (** Seconds the three-way establishment took. *)
  emit : Ispn_sim.Packet.t -> unit;  (** Edge-policed injection. *)
}

val setup :
  t ->
  flow:int ->
  ingress:int ->
  egress:int ->
  ?own_bucket:Ispn_admission.Spec.bucket ->
  Ispn_admission.Spec.request ->
  sink:(Ispn_sim.Packet.t -> unit) ->
  on_result:((established, string) result -> unit) ->
  unit
(** Launch the setup message; [on_result] fires when the confirmation (or
    the refusal) arrives back at the ingress, which takes at least one
    control-packet transmission per hop.  A lost or corrupted setup message
    is retransmitted with backoff; if the path stays dark past the retry
    budget, [on_result] gets [Error "setup timed out at hop ..."] and every
    reservation made so far is rolled back.  Raises [Invalid_argument] when
    a setup for [flow] is already in flight. *)

val teardown : t -> flow:int -> unit
(** Release an established flow's reservations at every hop (immediate;
    teardown signaling latency is not modelled on the release side).  The
    reliable variant — use {!depart} for the realistic one. *)

val depart : t -> flow:int -> unit
(** The session leaves: release the ingress hop locally and send a
    fire-and-forget teardown message down the path, each agent releasing
    its hop and forwarding.  If a leg is lost to corruption or an outage,
    the downstream reservations stay until the refresh timeout expires
    them (requires soft state for that reclaim; without [refresh_interval]
    a lost leg leaks until {!crash_agent} or explicit release).  Unknown
    flows are ignored. *)

val refresh_now : t -> flow:int -> unit
(** Start one refresh pass for an established flow immediately, off its
    periodic schedule — stamps every hop that still holds the reservation
    and ends in an idempotent re-assert if any hop forgot.  Supersedes any
    refresh leg of the previous epoch still on the wire.  Unknown flows
    are ignored. *)

(** {2 Failures and recovery} *)

val crash_agent : t -> switch:int -> unit
(** Crash the reservation agent at [switch] (which owns outgoing link
    [switch] on a chain): its admission book is {!Ispn_admission.Controller.reset}
    and its link's scheduler registrations are wiped — the forwarding plane
    and its meters keep running.  Every established flow routed through the
    dead agent schedules an idempotent re-setup one refresh round trip
    later; flows that no longer pass re-admission degrade (guaranteed ->
    predicted -> datagram) instead of dying.  Raises [Invalid_argument] if
    [switch] owns no outgoing link. *)

type level = Guaranteed | Predicted | Datagram
(** A rung of the degradation ladder. *)

val level_name : level -> string
(** ["guaranteed"], ["predicted"], ["datagram"]. *)

val service_level : t -> flow:int -> level option
(** The rung an established flow currently occupies ([None] if the flow is
    not established); starts at the rung of its original request and only
    moves down, via failed re-admission after a crash. *)

(** {2 Introspection} *)

val established_count : t -> int
(** Flows established right now. *)

val total_established : t -> int
(** Cumulative establishments; with {!teardown_count} and
    {!established_count} this forms the session-level flow-state invariant
    [total = teardowns + established]. *)

val teardown_count : t -> int
(** Sessions removed by {!teardown} or {!depart}. *)

val refused_count : t -> int
(** Setups that came back negative — admission refusals and abandoned
    (timed-out) setups alike. *)

val control_packets_sent : t -> int
(** Setup messages put on the wire (per hop, including retransmissions). *)

val retries : t -> int
(** Setup messages retransmitted after a timeout. *)

val abandoned_count : t -> int
(** Setups given up after exhausting [max_retries]. *)

val crash_count : t -> int
val degraded_count : t -> int
(** Rungs descended across all flows (a guaranteed flow falling to datagram
    counts twice). *)

val reestablished_count : t -> int
(** Post-crash re-assertion passes completed (at any rung). *)

val mean_reestablish_latency : t -> float
(** Mean seconds from crash to completed re-assertion; 0 if none yet. *)

val refresh_epochs : t -> int
(** Refresh passes started (periodic and {!refresh_now}). *)

val refresh_packets_sent : t -> int
(** Refresh messages put on the wire (per hop; also counted in
    {!control_packets_sent}). *)

val teardown_packets_sent : t -> int
(** Teardown messages put on the wire (per hop; also counted in
    {!control_packets_sent}). *)

val expired_count : t -> int
(** Reservations expired by the soft-state sweep, summed over agents. *)

val soft_state_count : t -> link:int -> int
(** Reservations currently stamped at [link]'s agent (0 when soft state is
    off). *)

val controller : t -> link:int -> Ispn_admission.Controller.t
(** The admission controller owned by [link]'s upstream agent, for tests
    and experiments to inspect (e.g. to verify rollback left no residue). *)

val register_metrics :
  t -> Ispn_obs.Metrics.t -> ?prefix:string -> unit -> unit
(** Register every introspection counter above as a pull gauge under
    [<prefix>.] (default ["signaling"]): [.established],
    [.total_established], [.refused], [.teardowns], [.control_packets],
    [.retries], [.abandoned], [.crashes], [.degraded], [.reestablished],
    [.refreshes], [.refresh_packets], [.teardown_packets], [.expired],
    [.reestablish_latency_mean]. *)

val register_audit : t -> Ispn_check.Audit.t -> unit
(** Register every agent's admission book, plus the session-level
    total/teardown/established triple, for the audit's [flow-state] leak
    invariant — after this, a reservation stranded by a lost teardown and
    never reclaimed shows up as a [--check] violation. *)
