(** Render experiment results in the layout of the paper's tables. *)

val table1 :
  (Experiment.sched * Experiment.flow_result list * Experiment.run_info) list ->
  sample_flow:int ->
  string
(** One row per scheduler: mean and 99.9th-percentile queueing delay of the
    sample flow, as in Table 1. *)

val table2 :
  (Experiment.sched * Experiment.flow_result list) list ->
  sample_flows:int list ->
  string
(** Rows per scheduler, columns (mean, 99.9 %ile) per path length, as in
    Table 2.  [sample_flows] picks one flow per path length, shortest
    first. *)

val table3 : Experiment.t3_result -> string
(** The eight sample rows with measured mean / 99.9 %ile / max and the
    computed Parekh-Gallager bound for guaranteed flows, plus the
    utilization and datagram summary lines the paper quotes in the text. *)

val figure1 : unit -> string
(** ASCII rendering of the Figure-1 topology and flow layout. *)

val flow_results : Experiment.flow_result list -> string
(** Generic per-flow dump used by the CLI. *)

val obs_footer : (string * Ispn_obs.Metrics.snapshot) list -> string
(** Deterministic per-run summary lines (prefixed ["[obs] "]) from labeled
    metrics snapshots: engine counters, then per-link sent / cause-split
    drops / buffer-pool high-water / wait mean+max (ms) for every
    consecutive [link.<i>] present in the snapshot, then one tail line
    (count, p50/p90/p99/p999 in ms) per [hist.*] channel found — present
    when a [--series] run registered its histograms on the same registry.
    Printed by the bench sections only when [--metrics] or [--debug] is
    given, so default stdout is unchanged. *)

val trace : Extensions.trace_result -> string
(** Render {!Extensions.run_trace}'s worst-packet hop breakdowns — one
    block per packet, one line per hop, delays in packet-transmission
    times. *)
