open Ispn_sim
module Heap = Ispn_util.Heap
module Ewma = Ispn_util.Ewma
module Vtime = Ispn_sched.Vtime

type config = {
  link_rate_bps : float;
  n_predicted_classes : int;
  ewma_gain : float;
  discard_late_above : float option;
}

let default_config =
  {
    link_rate_bps = Ispn_util.Units.link_rate_bps;
    n_predicted_classes = 2;
    ewma_gain = 1. /. 4096.;
    discard_late_above = None;
  }

type g_state = {
  weight : float;
  mutable last_finish : float;
  mutable qlen : int;
  mutable retiring : bool;  (* reservation released; unregister when drained *)
}

type g_entry = { tag : float; g_seq : int; g_pkt : Packet.t }

type c_entry = { deadline : float; c_seq : int; c_pkt : Packet.t; cls : int }

type class_state = { heap : c_entry Heap.t; avg : Ewma.t }

type t = {
  cfg : config;
  pool : Qdisc.pool;
  g_flows : (int, g_state) Hashtbl.t;
  g_heap : g_entry Heap.t;
  mutable g_count : int;  (* guaranteed packets queued *)
  mutable g_weight_sum : float;
  classes : class_state array;  (* K predicted + 1 datagram *)
  flow_cls : (int, int) Hashtbl.t;
  mutable head : c_entry option;  (* flow 0's committed next packet *)
  mutable head_start : float;  (* virtual start of flow 0's service slot *)
  mutable f0_last : float;
  mutable f0_backlog : int;  (* flow-0 packets queued, head included *)
  vt : Vtime.t;
  mutable seq : int;
  mutable late_discards : int;
  mutable realtime_bits : int;
  mutable datagram_bits : int;
  mutable delay_hook : (cls:int -> float -> unit) option;
  mutable last_now : float;  (* latest clock seen; for weight adjustments *)
  offset_dists : Ispn_util.Stats.t option array;
      (* per predicted class; Some only when metrics are attached *)
}

let compare_g a b =
  match compare a.tag b.tag with 0 -> compare a.g_seq b.g_seq | c -> c

let compare_c a b =
  match compare a.deadline b.deadline with
  | 0 -> compare a.c_seq b.c_seq
  | c -> c

let datagram_class t = t.cfg.n_predicted_classes
let flow0_rate_bps t = t.cfg.link_rate_bps -. t.g_weight_sum
let guaranteed_reserved_bps t = t.g_weight_sum
let late_discards t = t.late_discards
let realtime_bits_sent t = t.realtime_bits
let datagram_bits_sent t = t.datagram_bits
let set_delay_hook t f = t.delay_hook <- Some f

let class_avg_delay t ~cls =
  if cls < 0 || cls > t.cfg.n_predicted_classes then
    invalid_arg "Csz_sched.class_avg_delay";
  Ewma.value t.classes.(cls).avg

let next_seq t =
  let s = t.seq in
  t.seq <- t.seq + 1;
  s

let f0_active t = t.f0_backlog > 0

(* Flow 0's committed packet: the earliest-deadline packet of the highest-
   priority backlogged class.  The commitment is re-examined on every
   dequeue because a higher-priority packet may have arrived since the last
   promotion; the virtual service slot (head_start) survives such a swap —
   it belongs to flow 0, not to the particular packet. *)
let refresh_head t ~now =
  let best =
    let rec find c =
      if c > t.cfg.n_predicted_classes then None
      else if Heap.length t.classes.(c).heap > 0 then Some c
      else find (c + 1)
    in
    find 0
  in
  match (t.head, best) with
  | None, None -> ()
  | Some _, None -> ()
  | None, Some c ->
      let entry = Heap.pop_exn t.classes.(c).heap in
      t.head <- Some entry;
      Vtime.advance t.vt ~now;
      t.head_start <- Stdlib.max (Vtime.v t.vt) t.f0_last
  | Some h, Some c ->
      if c < h.cls then begin
        (* Demote the committed packet; promote the higher-priority one. *)
        Heap.push t.classes.(h.cls).heap h;
        let entry = Heap.pop_exn t.classes.(c).heap in
        t.head <- Some entry
      end

let head_tag t entry =
  t.head_start
  +. (float_of_int entry.c_pkt.Packet.size_bits /. flow0_rate_bps t)

let serve_flow0 t ~now entry =
  t.head <- None;
  t.f0_last <- head_tag t entry;
  t.f0_backlog <- t.f0_backlog - 1;
  if t.f0_backlog = 0 then
    Vtime.flow_deactivated t.vt ~now ~weight:(flow0_rate_bps t);
  Qdisc.pool_release t.pool;
  let pkt = entry.c_pkt in
  let delay = now -. pkt.Packet.enqueued_at in
  let cls = entry.cls in
  if cls < t.cfg.n_predicted_classes then begin
    (* FIFO+ bookkeeping: export this hop's deviation from the class
       average in the packet header, then update the average. *)
    let st = t.classes.(cls) in
    pkt.Packet.offset <- pkt.Packet.offset +. (delay -. Ewma.value st.avg);
    Ewma.update st.avg delay;
    (match t.offset_dists.(cls) with
    | None -> ()
    | Some d -> Ispn_util.Stats.add d pkt.Packet.offset);
    t.realtime_bits <- t.realtime_bits + pkt.Packet.size_bits
  end
  else t.datagram_bits <- t.datagram_bits + pkt.Packet.size_bits;
  (match t.delay_hook with Some f -> f ~cls delay | None -> ());
  Some pkt

let serve_guaranteed t ~now =
  let entry = Heap.pop_exn t.g_heap in
  let pkt = entry.g_pkt in
  let gs = Hashtbl.find t.g_flows pkt.Packet.flow in
  gs.qlen <- gs.qlen - 1;
  t.g_count <- t.g_count - 1;
  if gs.qlen = 0 then begin
    Vtime.flow_deactivated t.vt ~now ~weight:gs.weight;
    if gs.retiring then begin
      Hashtbl.remove t.g_flows pkt.Packet.flow;
      t.g_weight_sum <- t.g_weight_sum -. gs.weight;
      if f0_active t then
        Vtime.adjust_active t.vt ~now ~delta:gs.weight
    end
  end;
  Qdisc.pool_release t.pool;
  t.realtime_bits <- t.realtime_bits + pkt.Packet.size_bits;
  (match t.delay_hook with
  | Some f -> f ~cls:(-1) (now -. pkt.Packet.enqueued_at)
  | None -> ());
  Some pkt

let enqueue t ~now pkt =
  t.last_now <- Stdlib.max t.last_now now;
  pkt.Packet.enqueued_at <- now;
  match Hashtbl.find_opt t.g_flows pkt.Packet.flow with
  | Some gs ->
      if Qdisc.pool_take t.pool then begin
        Vtime.advance t.vt ~now;
        if gs.qlen = 0 then Vtime.flow_activated t.vt ~weight:gs.weight;
        let tag =
          Stdlib.max (Vtime.v t.vt) gs.last_finish
          +. (float_of_int pkt.Packet.size_bits /. gs.weight)
        in
        gs.last_finish <- tag;
        gs.qlen <- gs.qlen + 1;
        t.g_count <- t.g_count + 1;
        Heap.push t.g_heap { tag; g_seq = next_seq t; g_pkt = pkt };
        true
      end
      else false
  | None ->
      let cls =
        match Hashtbl.find_opt t.flow_cls pkt.Packet.flow with
        | Some c -> c
        | None -> datagram_class t
      in
      let late =
        cls < t.cfg.n_predicted_classes
        &&
        match t.cfg.discard_late_above with
        | Some threshold -> pkt.Packet.offset > threshold
        | None -> false
      in
      if late then begin
        t.late_discards <- t.late_discards + 1;
        false
      end
      else if Qdisc.pool_take t.pool then begin
        Vtime.advance t.vt ~now;
        if not (f0_active t) then
          Vtime.flow_activated t.vt ~weight:(flow0_rate_bps t);
        let deadline = Packet.expected_arrival pkt in
        Heap.push t.classes.(cls).heap
          { deadline; c_seq = next_seq t; c_pkt = pkt; cls };
        t.f0_backlog <- t.f0_backlog + 1;
        true
      end
      else false

let dequeue t ~now =
  t.last_now <- Stdlib.max t.last_now now;
  Vtime.advance t.vt ~now;
  refresh_head t ~now;
  match (t.head, Heap.peek t.g_heap) with
  | None, None -> None
  | Some h, None -> serve_flow0 t ~now h
  | None, Some _ -> serve_guaranteed t ~now
  | Some h, Some g ->
      if g.tag <= head_tag t h then serve_guaranteed t ~now
      else serve_flow0 t ~now h

let length t = t.g_count + t.f0_backlog

let create ?(config = default_config) ?metrics ?(label = "0") ~pool () =
  assert (config.link_rate_bps > 0. && config.n_predicted_classes >= 1);
  let n = config.n_predicted_classes + 1 in
  let t_ref = ref None in
  let on_reset () =
    match !t_ref with
    | None -> ()
    | Some t ->
        Hashtbl.iter (fun _ gs -> gs.last_finish <- 0.) t.g_flows;
        t.f0_last <- 0.
  in
  let t =
    {
      cfg = config;
      pool;
      g_flows = Hashtbl.create 16;
      g_heap = Heap.create ~cmp:compare_g ();
      g_count = 0;
      g_weight_sum = 0.;
      classes =
        Array.init n (fun _ ->
            {
              heap = Heap.create ~cmp:compare_c ();
              avg = Ewma.create ~gain:config.ewma_gain ();
            });
      flow_cls = Hashtbl.create 32;
      head = None;
      head_start = 0.;
      f0_last = 0.;
      f0_backlog = 0;
      vt = Vtime.create ~link_rate_bps:config.link_rate_bps ~on_reset;
      seq = 0;
      late_discards = 0;
      realtime_bits = 0;
      datagram_bits = 0;
      delay_hook = None;
      last_now = 0.;
      offset_dists =
        Array.init config.n_predicted_classes (fun c ->
            match metrics with
            | None -> None
            | Some m ->
                Some
                  (Ispn_obs.Metrics.dist m
                     (Printf.sprintf "csz.%s.class.%d.offset" label c)));
    }
  in
  t_ref := Some t;
  (match metrics with
  | None -> ()
  | Some m ->
      let module M = Ispn_obs.Metrics in
      let p = "csz." ^ label in
      M.register_float m (p ^ ".vtime") (fun () -> Vtime.v t.vt);
      M.register_float m (p ^ ".reserved_bps") (fun () -> t.g_weight_sum);
      M.register_float m (p ^ ".flow0_rate_bps") (fun () -> flow0_rate_bps t);
      M.register_int m (p ^ ".late_discards") (fun () -> t.late_discards);
      M.register_int m (p ^ ".realtime_bits") (fun () -> t.realtime_bits);
      M.register_int m (p ^ ".datagram_bits") (fun () -> t.datagram_bits);
      M.register_int m (p ^ ".g_backlog") (fun () -> t.g_count);
      M.register_int m (p ^ ".f0_backlog") (fun () -> t.f0_backlog);
      Array.iteri
        (fun c st ->
          let cp = Printf.sprintf "%s.class.%d" p c in
          M.register_float m (cp ^ ".avg_delay") (fun () -> Ewma.value st.avg);
          M.register_int m (cp ^ ".len") (fun () -> Heap.length st.heap))
        t.classes);
  let qdisc =
    Qdisc.make
      ~enqueue:(fun ~now pkt -> enqueue t ~now pkt)
      ~dequeue:(fun ~now -> dequeue t ~now)
      ~length:(fun () -> length t)
      ~name:"CSZ" ()
  in
  (t, qdisc)

(* Changing a reservation re-sizes flow 0; when flow 0 is live its weight in
   the GPS active sum must change too, with virtual time integrated up to the
   latest clock the scheduler has seen first. *)
let resize_flow0 t ~delta_reserved =
  if f0_active t then begin
    (* Flow 0's weight moves opposite to the reserved sum. *)
    Vtime.adjust_active t.vt ~now:t.last_now ~delta:(-.delta_reserved)
  end;
  t.g_weight_sum <- t.g_weight_sum +. delta_reserved

let add_guaranteed t ~flow ~clock_rate_bps =
  if clock_rate_bps <= 0. then
    invalid_arg "Csz_sched.add_guaranteed: non-positive clock rate";
  if Hashtbl.mem t.g_flows flow then
    invalid_arg
      (Printf.sprintf "Csz_sched.add_guaranteed: flow %d already guaranteed"
         flow);
  if t.g_weight_sum +. clock_rate_bps >= t.cfg.link_rate_bps then
    invalid_arg "Csz_sched.add_guaranteed: flow 0 would have no bandwidth";
  Hashtbl.remove t.flow_cls flow;
  resize_flow0 t ~delta_reserved:clock_rate_bps;
  Hashtbl.replace t.g_flows flow
    { weight = clock_rate_bps; last_finish = 0.; qlen = 0; retiring = false }

let remove_guaranteed t ~flow =
  match Hashtbl.find_opt t.g_flows flow with
  | None -> invalid_arg "Csz_sched.remove_guaranteed: unknown flow"
  | Some gs ->
      if gs.qlen > 0 then
        (* Queued packets keep their reservation until they drain; the flow
           is unregistered by the dequeue path at that point. *)
        gs.retiring <- true
      else begin
        Hashtbl.remove t.g_flows flow;
        resize_flow0 t ~delta_reserved:(-.gs.weight)
      end

let set_predicted t ~flow ~cls =
  if cls < 0 || cls >= t.cfg.n_predicted_classes then
    invalid_arg "Csz_sched.set_predicted: class out of range";
  if Hashtbl.mem t.g_flows flow then
    invalid_arg "Csz_sched.set_predicted: flow is guaranteed";
  Hashtbl.replace t.flow_cls flow cls

let clear_predicted t ~flow = Hashtbl.remove t.flow_cls flow
