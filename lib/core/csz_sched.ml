open Ispn_sim
module Kheap = Ispn_util.Kheap
module Ewma = Ispn_util.Ewma
module Vtime = Ispn_sched.Vtime

let fmax (a : float) b = if a >= b then a else b

type config = {
  link_rate_bps : float;
  n_predicted_classes : int;
  ewma_gain : float;
  discard_late_above : float option;
}

let default_config =
  {
    link_rate_bps = Ispn_util.Units.link_rate_bps;
    n_predicted_classes = 2;
    ewma_gain = 1. /. 4096.;
    discard_late_above = None;
  }

(* Guaranteed-flow state is structure-of-arrays indexed by the flow id
   (hot-path discipline, DESIGN.md): every packet consults
   [g_weight.(flow)] to classify itself, so that lookup must be a bare
   array load, not a Hashtbl probe.  [g_weight.(f) = 0.] marks a flow with
   no reservation; a retiring flow (reservation released, packets still
   queued) keeps its weight until it drains. *)
type g_flows = {
  mutable g_weight : float array;
  mutable g_fin : float array;  (* last virtual finish tag *)
  mutable g_qlen : int array;
  mutable g_retiring : bool array;
}

type class_state = { heap : Packet.t Kheap.t; avg : Ewma.t }

type t = {
  cfg : config;
  pa : Packet.arena;  (* this domain's packet arena, bound at create *)
  pool : Qdisc.pool;
  gf : g_flows;
  g_heap : Packet.t Kheap.t;
  mutable g_count : int;  (* guaranteed packets queued *)
  mutable g_weight_sum : float;
  classes : class_state array;  (* K predicted + 1 datagram *)
  mutable flow_cls : int array;  (* predicted class per flow; -1 = none *)
  dummy : Packet.t;  (* fills vacated slots; never transmitted *)
  (* Flow 0's committed next packet, unpacked into flat fields so
     re-examining the commitment on every dequeue allocates nothing. *)
  mutable head_valid : bool;
  mutable head_pkt : Packet.t;  (* dummy when not valid *)
  mutable head_deadline : float;
  mutable head_seq : int;  (* tie-break rank in its class heap *)
  mutable head_cls : int;
  mutable head_start : float;  (* virtual start of flow 0's service slot *)
  mutable f0_last : float;
  mutable f0_backlog : int;  (* flow-0 packets queued, head included *)
  vt : Vtime.t;
  mutable late_discards : int;
  mutable realtime_bits : int;
  mutable datagram_bits : int;
  mutable delay_hook : (cls:int -> float -> unit) option;
  mutable last_now : float;  (* latest clock seen; for weight adjustments *)
  offset_dists : Ispn_util.Stats.t option array;
      (* per predicted class; Some only when metrics are attached *)
}

let datagram_class t = t.cfg.n_predicted_classes
let flow0_rate_bps t = t.cfg.link_rate_bps -. t.g_weight_sum
let guaranteed_reserved_bps t = t.g_weight_sum
let late_discards t = t.late_discards
let realtime_bits_sent t = t.realtime_bits
let datagram_bits_sent t = t.datagram_bits
let set_delay_hook t f = t.delay_hook <- Some f

let class_avg_delay t ~cls =
  if cls < 0 || cls > t.cfg.n_predicted_classes then
    invalid_arg "Csz_sched.class_avg_delay";
  Ewma.value t.classes.(cls).avg

(* Guaranteed lookup: a flow beyond the array has never held a
   reservation. *)
let g_weight_of t flow =
  if flow < Array.length t.gf.g_weight then t.gf.g_weight.(flow) else 0.

let grow_g t n =
  let gf = t.gf in
  let old = Array.length gf.g_weight in
  if n > old then begin
    let n = Stdlib.max n (2 * old) in
    let weight = Array.make n 0. in
    let fin = Array.make n 0. in
    let qlen = Array.make n 0 in
    let retiring = Array.make n false in
    Array.blit gf.g_weight 0 weight 0 old;
    Array.blit gf.g_fin 0 fin 0 old;
    Array.blit gf.g_qlen 0 qlen 0 old;
    Array.blit gf.g_retiring 0 retiring 0 old;
    gf.g_weight <- weight;
    gf.g_fin <- fin;
    gf.g_qlen <- qlen;
    gf.g_retiring <- retiring
  end

let cls_of t flow =
  if flow < Array.length t.flow_cls then t.flow_cls.(flow) else -1

let grow_cls t n =
  let old = Array.length t.flow_cls in
  if n > old then begin
    let n = Stdlib.max n (2 * old) in
    let bigger = Array.make n (-1) in
    Array.blit t.flow_cls 0 bigger 0 old;
    t.flow_cls <- bigger
  end

let f0_active t = t.f0_backlog > 0

(* Flow 0's committed packet: the earliest-deadline packet of the highest-
   priority backlogged class.  The commitment is re-examined on every
   dequeue because a higher-priority packet may have arrived since the last
   promotion; the virtual service slot (head_start) survives such a swap —
   it belongs to flow 0, not to the particular packet. *)
let commit_head t c =
  let heap = t.classes.(c).heap in
  t.head_deadline <- Kheap.min_key_exn heap;
  t.head_seq <- Kheap.min_seq_exn heap;
  t.head_pkt <- Kheap.pop_exn heap;
  t.head_cls <- c;
  t.head_valid <- true

let refresh_head t ~now =
  let best =
    let rec find c =
      if c > t.cfg.n_predicted_classes then -1
      else if Kheap.length t.classes.(c).heap > 0 then c
      else find (c + 1)
    in
    find 0
  in
  if best >= 0 then
    if not t.head_valid then begin
      commit_head t best;
      Vtime.advance t.vt ~now;
      t.head_start <- fmax (Vtime.v t.vt) t.f0_last
    end
    else if best < t.head_cls then begin
      (* Demote the committed packet; promote the higher-priority one. *)
      Kheap.push_pinned t.classes.(t.head_cls).heap ~key:t.head_deadline
        ~seq:t.head_seq t.head_pkt;
      commit_head t best
    end

let head_tag t =
  t.head_start
  +. (float_of_int t.pa.Packet.size_bits.(t.head_pkt) /. flow0_rate_bps t)

let serve_flow0 t ~now =
  let pkt = t.head_pkt in
  let cls = t.head_cls in
  t.f0_last <- head_tag t;
  t.head_valid <- false;
  t.head_pkt <- t.dummy;
  t.f0_backlog <- t.f0_backlog - 1;
  if t.f0_backlog = 0 then
    Vtime.flow_deactivated t.vt ~now ~weight:(flow0_rate_bps t);
  Qdisc.pool_release t.pool;
  let pa = t.pa in
  let delay = now -. pa.Packet.enqueued_at.(pkt) in
  if cls < t.cfg.n_predicted_classes then begin
    (* FIFO+ bookkeeping: export this hop's deviation from the class
       average in the packet header, then update the average. *)
    let st = t.classes.(cls) in
    pa.Packet.offset.(pkt) <-
      pa.Packet.offset.(pkt) +. (delay -. Ewma.value st.avg);
    Ewma.update st.avg delay;
    (match t.offset_dists.(cls) with
    | None -> ()
    | Some d -> Ispn_util.Stats.add d pa.Packet.offset.(pkt));
    t.realtime_bits <- t.realtime_bits + pa.Packet.size_bits.(pkt)
  end
  else t.datagram_bits <- t.datagram_bits + pa.Packet.size_bits.(pkt);
  (match t.delay_hook with Some f -> f ~cls delay | None -> ());
  Some pkt

let serve_guaranteed t ~now =
  let pkt = Kheap.pop_exn t.g_heap in
  let flow = t.pa.Packet.flow.(pkt) in
  let gf = t.gf in
  let q = gf.g_qlen.(flow) - 1 in
  gf.g_qlen.(flow) <- q;
  t.g_count <- t.g_count - 1;
  if q = 0 then begin
    let weight = gf.g_weight.(flow) in
    Vtime.flow_deactivated t.vt ~now ~weight;
    if gf.g_retiring.(flow) then begin
      gf.g_weight.(flow) <- 0.;
      gf.g_retiring.(flow) <- false;
      gf.g_fin.(flow) <- 0.;
      t.g_weight_sum <- t.g_weight_sum -. weight;
      if f0_active t then Vtime.adjust_active t.vt ~now ~delta:weight
    end
  end;
  Qdisc.pool_release t.pool;
  t.realtime_bits <- t.realtime_bits + t.pa.Packet.size_bits.(pkt);
  (match t.delay_hook with
  | Some f -> f ~cls:(-1) (now -. t.pa.Packet.enqueued_at.(pkt))
  | None -> ());
  Some pkt

let enqueue t ~now pkt =
  t.last_now <- fmax t.last_now now;
  t.pa.Packet.enqueued_at.(pkt) <- now;
  let flow = t.pa.Packet.flow.(pkt) in
  let gw = g_weight_of t flow in
  if gw > 0. then begin
    if Qdisc.pool_take t.pool then begin
      Vtime.advance t.vt ~now;
      let gf = t.gf in
      if gf.g_qlen.(flow) = 0 then Vtime.flow_activated t.vt ~weight:gw;
      let tag =
        fmax (Vtime.v t.vt) gf.g_fin.(flow)
        +. (float_of_int t.pa.Packet.size_bits.(pkt) /. gw)
      in
      gf.g_fin.(flow) <- tag;
      gf.g_qlen.(flow) <- gf.g_qlen.(flow) + 1;
      t.g_count <- t.g_count + 1;
      Kheap.push t.g_heap ~key:tag pkt;
      true
    end
    else false
  end
  else begin
    let cls =
      let c = cls_of t flow in
      if c >= 0 then c else datagram_class t
    in
    let late =
      cls < t.cfg.n_predicted_classes
      &&
      match t.cfg.discard_late_above with
      | Some threshold -> t.pa.Packet.offset.(pkt) > threshold
      | None -> false
    in
    if late then begin
      t.late_discards <- t.late_discards + 1;
      false
    end
    else if Qdisc.pool_take t.pool then begin
      Vtime.advance t.vt ~now;
      if not (f0_active t) then
        Vtime.flow_activated t.vt ~weight:(flow0_rate_bps t);
      Kheap.push t.classes.(cls).heap
        ~key:(t.pa.Packet.enqueued_at.(pkt) -. t.pa.Packet.offset.(pkt))
        pkt;
      t.f0_backlog <- t.f0_backlog + 1;
      true
    end
    else false
  end

let dequeue t ~now =
  t.last_now <- fmax t.last_now now;
  Vtime.advance t.vt ~now;
  refresh_head t ~now;
  if not t.head_valid then
    if Kheap.is_empty t.g_heap then None else serve_guaranteed t ~now
  else if Kheap.is_empty t.g_heap then serve_flow0 t ~now
  else if Kheap.min_key_exn t.g_heap <= head_tag t then
    serve_guaranteed t ~now
  else serve_flow0 t ~now

let length t = t.g_count + t.f0_backlog

let create ?(config = default_config) ?metrics ?(label = "0") ~pool () =
  assert (config.link_rate_bps > 0. && config.n_predicted_classes >= 1);
  let n = config.n_predicted_classes + 1 in
  let dummy = Packet.dummy () in
  let t_ref = ref None in
  let on_reset () =
    match !t_ref with
    | None -> ()
    | Some t ->
        Array.fill t.gf.g_fin 0 (Array.length t.gf.g_fin) 0.;
        t.f0_last <- 0.
  in
  let t =
    {
      cfg = config;
      pa = Packet.arena ();
      pool;
      gf =
        {
          g_weight = Array.make 64 0.;
          g_fin = Array.make 64 0.;
          g_qlen = Array.make 64 0;
          g_retiring = Array.make 64 false;
        };
      g_heap = Kheap.create ~capacity:64 ~dummy ();
      g_count = 0;
      g_weight_sum = 0.;
      classes =
        Array.init n (fun _ ->
            {
              heap = Kheap.create ~capacity:64 ~dummy ();
              avg = Ewma.create ~gain:config.ewma_gain ();
            });
      flow_cls = Array.make 64 (-1);
      dummy;
      head_valid = false;
      head_pkt = dummy;
      head_deadline = 0.;
      head_seq = 0;
      head_cls = 0;
      head_start = 0.;
      f0_last = 0.;
      f0_backlog = 0;
      vt = Vtime.create ~link_rate_bps:config.link_rate_bps ~on_reset;
      late_discards = 0;
      realtime_bits = 0;
      datagram_bits = 0;
      delay_hook = None;
      last_now = 0.;
      offset_dists =
        Array.init config.n_predicted_classes (fun c ->
            match metrics with
            | None -> None
            | Some m ->
                Some
                  (Ispn_obs.Metrics.dist m
                     (Printf.sprintf "csz.%s.class.%d.offset" label c)));
    }
  in
  t_ref := Some t;
  (match metrics with
  | None -> ()
  | Some m ->
      let module M = Ispn_obs.Metrics in
      let p = "csz." ^ label in
      M.register_float m (p ^ ".vtime") (fun () -> Vtime.v t.vt);
      M.register_float m (p ^ ".reserved_bps") (fun () -> t.g_weight_sum);
      M.register_float m (p ^ ".flow0_rate_bps") (fun () -> flow0_rate_bps t);
      M.register_int m (p ^ ".late_discards") (fun () -> t.late_discards);
      M.register_int m (p ^ ".realtime_bits") (fun () -> t.realtime_bits);
      M.register_int m (p ^ ".datagram_bits") (fun () -> t.datagram_bits);
      M.register_int m (p ^ ".g_backlog") (fun () -> t.g_count);
      M.register_int m (p ^ ".f0_backlog") (fun () -> t.f0_backlog);
      Array.iteri
        (fun c st ->
          let cp = Printf.sprintf "%s.class.%d" p c in
          M.register_float m (cp ^ ".avg_delay") (fun () -> Ewma.value st.avg);
          M.register_int m (cp ^ ".len") (fun () -> Kheap.length st.heap))
        t.classes);
  let qdisc =
    Qdisc.make
      ~enqueue:(fun ~now pkt -> enqueue t ~now pkt)
      ~dequeue:(fun ~now -> dequeue t ~now)
      ~length:(fun () -> length t)
      ~name:"CSZ" ()
  in
  (t, qdisc)

(* Changing a reservation re-sizes flow 0; when flow 0 is live its weight in
   the GPS active sum must change too, with virtual time integrated up to the
   latest clock the scheduler has seen first. *)
let resize_flow0 t ~delta_reserved =
  if f0_active t then begin
    (* Flow 0's weight moves opposite to the reserved sum. *)
    Vtime.adjust_active t.vt ~now:t.last_now ~delta:(-.delta_reserved)
  end;
  t.g_weight_sum <- t.g_weight_sum +. delta_reserved

let add_guaranteed t ~flow ~clock_rate_bps =
  if clock_rate_bps <= 0. then
    invalid_arg "Csz_sched.add_guaranteed: non-positive clock rate";
  if g_weight_of t flow > 0. then
    invalid_arg
      (Printf.sprintf "Csz_sched.add_guaranteed: flow %d already guaranteed"
         flow);
  if t.g_weight_sum +. clock_rate_bps >= t.cfg.link_rate_bps then
    invalid_arg "Csz_sched.add_guaranteed: flow 0 would have no bandwidth";
  if flow < Array.length t.flow_cls then t.flow_cls.(flow) <- -1;
  resize_flow0 t ~delta_reserved:clock_rate_bps;
  grow_g t (flow + 1);
  let gf = t.gf in
  gf.g_weight.(flow) <- clock_rate_bps;
  gf.g_fin.(flow) <- 0.;
  gf.g_qlen.(flow) <- 0;
  gf.g_retiring.(flow) <- false

let remove_guaranteed t ~flow =
  let w = g_weight_of t flow in
  if w <= 0. then invalid_arg "Csz_sched.remove_guaranteed: unknown flow"
  else if t.gf.g_qlen.(flow) > 0 then
    (* Queued packets keep their reservation until they drain; the flow
       is unregistered by the dequeue path at that point. *)
    t.gf.g_retiring.(flow) <- true
  else begin
    t.gf.g_weight.(flow) <- 0.;
    t.gf.g_fin.(flow) <- 0.;
    resize_flow0 t ~delta_reserved:(-.w)
  end

let set_predicted t ~flow ~cls =
  if cls < 0 || cls >= t.cfg.n_predicted_classes then
    invalid_arg "Csz_sched.set_predicted: class out of range";
  if g_weight_of t flow > 0. then
    invalid_arg "Csz_sched.set_predicted: flow is guaranteed";
  grow_cls t (flow + 1);
  t.flow_cls.(flow) <- cls

let clear_predicted t ~flow =
  if flow < Array.length t.flow_cls then t.flow_cls.(flow) <- -1
