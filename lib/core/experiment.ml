open Ispn_sim
module Units = Ispn_util.Units
module Prng = Ispn_util.Prng

type sched = Fifo | Wfq | Fifo_plus

let sched_name = function
  | Fifo -> "FIFO"
  | Wfq -> "WFQ"
  | Fifo_plus -> "FIFO+"

type flow_result = {
  flow : int;
  hops : int;
  received : int;
  mean : float;
  p999 : float;
  max : float;
}

type run_info = {
  duration : float;
  utilization : float array;
  offered : int;
  source_dropped : int;
  net_dropped : int;
}

let qdisc_for ?metrics ?label sched ~pool ~link_rate_bps =
  match sched with
  | Fifo -> Ispn_sched.Fifo.create ~pool ()
  | Wfq -> Ispn_sched.Wfq.create_equal ?metrics ?label ~pool ~link_rate_bps ()
  | Fifo_plus -> snd (Ispn_sched.Fifo_plus.create ?metrics ?label ~pool ())

let register_pool_metrics m ~link pool =
  let module M = Ispn_obs.Metrics in
  let p = Printf.sprintf "link.%d.pool" link in
  M.register_int m (p ^ ".in_use") (fun () -> Qdisc.pool_in_use pool);
  M.register_int m (p ^ ".in_use_hwm") (fun () -> Qdisc.pool_hwm pool);
  M.register_int m (p ^ ".capacity") (fun () -> Qdisc.pool_capacity pool)

let register_arena_metrics m =
  (* The arena counters are cumulative per domain, and pool jobs reuse
     domains — so the gauge reads as a delta from registration (= run
     start), keeping sampled series independent of which jobs ran earlier
     on this domain (the -j contract). *)
  let base = (Packet.pool_stats ()).Packet.p_in_use in
  Ispn_obs.Metrics.register_int m "arena.in_use" (fun () ->
      (Packet.pool_stats ()).Packet.p_in_use - base)

let attach_wait_hists net h =
  (* One delay histogram per hop, fed from the dequeue tap: the same
     [wait] the link folds into its [.wait] summary stats, but keeping the
     tail shape.  [add_tap] composes with the auditor's tap. *)
  for i = 0 to Network.n_links net - 1 do
    let ch = Ispn_obs.Hist.channel h (Printf.sprintf "link.%d.wait" i) in
    Link.add_tap (Network.link net i)
      (Tap.make
         ~on_dequeue:(fun ~link:_ ~now:_ ~wait _ ->
           Ispn_util.Loghist.add ch wait)
         ())
  done

(* One real-time flow: on/off source -> (A, 50) policer -> ingress switch,
   probe at the egress switch. *)
type rt_flow = {
  spec : Scenario.flow_spec;
  source : Ispn_traffic.Source.t;
  policer : Ispn_traffic.Token_bucket.policer;
  probe : Probe.t;
}

let attach_rt_flow ?audit net prng ~spec ~avg_rate_pps =
  let open Scenario in
  let engine = Network.engine net in
  let probe = Probe.create () in
  Network.install_flow net ~flow:spec.flow ~ingress:spec.ingress
    ~egress:spec.egress
    ~sink:(fun pkt -> Probe.sink probe ~engine pkt);
  let rate_bps = avg_rate_pps *. float_of_int Units.packet_bits in
  let depth_bits =
    Scenario.token_bucket_depth_packets *. float_of_int Units.packet_bits
  in
  (match audit with
  | Some a when spec.ingress < spec.egress ->
      (* The policed stream first queues on link [ingress]; audit its
         conformance there. *)
      Ispn_check.Audit.register_policed_flow a ~flow:spec.flow
        ~link:spec.ingress ~rate_bps ~depth_bits
  | _ -> ());
  let bucket = Ispn_traffic.Token_bucket.create ~rate_bps ~depth_bits () in
  let policer =
    Ispn_traffic.Token_bucket.policer ~engine ~bucket
      ~mode:Ispn_traffic.Token_bucket.Drop
      ~next:(fun pkt -> Network.inject net ~at_switch:spec.ingress pkt)
  in
  let source =
    Ispn_traffic.Onoff.create ~engine ~prng:(Prng.split prng) ~flow:spec.flow
      ~avg_rate_pps
      ~emit:(Ispn_traffic.Token_bucket.admit_fn policer)
      ()
  in
  { spec; source; policer; probe }

let result_of_rt_flow rt =
  let p = rt.probe in
  {
    flow = rt.spec.Scenario.flow;
    hops = Scenario.hops rt.spec;
    received = Probe.received p;
    mean = Probe.mean_qdelay p;
    p999 =
      (if Probe.received p = 0 then 0. else Probe.percentile_qdelay p 99.9);
    max = Probe.max_qdelay p;
  }

let info_of_run net rt_flows ~duration =
  let n_links = Network.n_links net in
  {
    duration;
    utilization =
      Array.init n_links (fun i ->
          Network.utilization net ~link:i ~elapsed:duration);
    offered =
      List.fold_left
        (fun acc rt -> acc + Ispn_traffic.Token_bucket.offered rt.policer)
        0 rt_flows;
    source_dropped =
      List.fold_left
        (fun acc rt -> acc + Ispn_traffic.Token_bucket.dropped rt.policer)
        0 rt_flows;
    net_dropped = Network.total_dropped net;
  }

let run_chain_custom ?metrics ?recorder ?audit ?series ?hist ~qdisc_of
    ~n_switches ~specs ~avg_rate_pps ~duration ~seed () =
  let engine = Engine.create () in
  let prng = Prng.create ~seed in
  let net =
    Network.chain ~engine ~n_switches ~rate_bps:Units.link_rate_bps ?recorder
      ~qdisc_of:(qdisc_of engine) ()
  in
  (match metrics with
  | None -> ()
  | Some m ->
      Engine.register_metrics engine m;
      Network.register_metrics net m;
      register_arena_metrics m);
  (match audit with
  | None -> ()
  | Some a -> Ispn_check.Audit.attach_network a net);
  (match hist with None -> () | Some h -> attach_wait_hists net h);
  let rt_flows =
    List.map
      (fun spec -> attach_rt_flow ?audit net prng ~spec ~avg_rate_pps)
      specs
  in
  (* Armed last, once every instrument is registered, so the t=0 row
     already has the full column set. *)
  (match series with None -> () | Some s -> Engine.attach_series engine s);
  List.iter (fun rt -> rt.source.Ispn_traffic.Source.start ()) rt_flows;
  Engine.run engine ~until:duration;
  (List.map result_of_rt_flow rt_flows, info_of_run net rt_flows ~duration)

let run_chain ?metrics ?recorder ?audit ?series ?hist ~sched ~n_switches
    ~specs ~avg_rate_pps ~duration ~seed () =
  let link_rate_bps = Units.link_rate_bps in
  let qdisc_of _engine link =
    let pool = Qdisc.pool ~capacity:Units.buffer_packets in
    (match metrics with
    | None -> ()
    | Some m -> register_pool_metrics m ~link pool);
    (match audit with
    | None -> ()
    | Some a -> Ispn_check.Audit.register_pool a ~link pool);
    qdisc_for ?metrics ~label:(string_of_int link) sched ~pool ~link_rate_bps
  in
  run_chain_custom ?metrics ?recorder ?audit ?series ?hist ~qdisc_of
    ~n_switches ~specs ~avg_rate_pps ~duration ~seed ()

let run_figure1_custom ~qdisc_of ?(avg_rate_pps = Scenario.default_avg_rate_pps)
    ?(duration = Units.sim_duration_s) ?(seed = 42L) ?metrics ?recorder ?audit
    ?series ?hist () =
  run_chain_custom ?metrics ?recorder ?audit ?series ?hist ~qdisc_of
    ~n_switches:Scenario.figure1_n_switches ~specs:Scenario.figure1_flows
    ~avg_rate_pps ~duration ~seed ()

let run_single_link ~sched ?(n_flows = 10)
    ?(avg_rate_pps = Scenario.default_avg_rate_pps)
    ?(duration = Units.sim_duration_s) ?(seed = 42L) ?metrics ?recorder ?audit
    ?series ?hist () =
  let specs =
    List.init n_flows (fun i -> { Scenario.flow = i; ingress = 0; egress = 1 })
  in
  run_chain ?metrics ?recorder ?audit ?series ?hist ~sched ~n_switches:2
    ~specs ~avg_rate_pps ~duration ~seed ()

let run_figure1 ~sched ?(avg_rate_pps = Scenario.default_avg_rate_pps)
    ?(duration = Units.sim_duration_s) ?(seed = 42L) ?metrics ?recorder ?audit
    ?series ?hist () =
  run_chain ?metrics ?recorder ?audit ?series ?hist ~sched
    ~n_switches:Scenario.figure1_n_switches ~specs:Scenario.figure1_flows
    ~avg_rate_pps ~duration ~seed ()

(* --- Table 3 ------------------------------------------------------------ *)

type t3_row = {
  label : string;
  t3_flow : int;
  t3_hops : int;
  t3_mean : float;
  t3_p999 : float;
  t3_max : float;
  pg_bound : float option;
}

type tcp_result = {
  tcp_flow : int;
  goodput_bps : float;
  loss_rate : float;
  delivered : int;
  segments_sent : int;
}

type t3_result = {
  rows : t3_row list;
  all_flows : flow_result list;
  tcp : tcp_result list;
  info : run_info;
  realtime_utilization : float array;
  datagram_drop_rate : float;
}

let run_table3 ?(avg_rate_pps = Scenario.default_avg_rate_pps)
    ?(duration = Units.sim_duration_s) ?(seed = 42L) ?discard_late_above
    ?metrics ?recorder ?audit ?series ?hist () =
  let open Scenario in
  let engine = Engine.create () in
  let prng = Prng.create ~seed in
  let link_rate_bps = Units.link_rate_bps in
  let packet_bits_f = float_of_int Units.packet_bits in
  let peak_rate_bps = 2. *. avg_rate_pps *. packet_bits_f in
  let avg_rate_bps = avg_rate_pps *. packet_bits_f in
  (* One CSZ scheduler per link; keep the states for registration and
     accounting. *)
  let states = Array.make (figure1_n_switches - 1) None in
  let net =
    Network.chain ~engine ~n_switches:figure1_n_switches ~rate_bps:link_rate_bps
      ?recorder
      ~qdisc_of:(fun i ->
        let pool = Qdisc.pool ~capacity:Units.buffer_packets in
        (match metrics with
        | None -> ()
        | Some m -> register_pool_metrics m ~link:i pool);
        (match audit with
        | None -> ()
        | Some a -> Ispn_check.Audit.register_pool a ~link:i pool);
        let config =
          { Csz_sched.default_config with link_rate_bps; discard_late_above }
        in
        let st, qdisc =
          Csz_sched.create ~config ?metrics ~label:(string_of_int i) ~pool ()
        in
        states.(i) <- Some st;
        qdisc)
      ()
  in
  (match metrics with
  | None -> ()
  | Some m ->
      Engine.register_metrics engine m;
      Network.register_metrics net m;
      register_arena_metrics m);
  (match audit with
  | None -> ()
  | Some a ->
      Ispn_check.Audit.attach_network a net;
      (* Per-packet PG-bound detection for every guaranteed flow, checked
         on delivery at its egress link (bound in seconds, as measured). *)
      List.iter
        (fun spec ->
          let hops = Scenario.hops spec in
          let register ~clock_rate_bps ~depth_bits =
            let bucket =
              { Ispn_admission.Spec.rate_bps = clock_rate_bps; depth_bits }
            in
            Ispn_check.Audit.register_pg_bound a ~flow:spec.flow
              ~link:(spec.egress - 1)
              ~bound_s:
                (Ispn_admission.Bounds.pg_bound ~bucket ~clock_rate_bps ~hops
                   ())
          in
          match table3_class_of spec.flow with
          | Guaranteed_peak ->
              register ~clock_rate_bps:peak_rate_bps ~depth_bits:packet_bits_f
          | Guaranteed_avg ->
              register ~clock_rate_bps:avg_rate_bps
                ~depth_bits:
                  (Scenario.token_bucket_depth_packets *. packet_bits_f)
          | Predicted_high | Predicted_low -> ())
        figure1_flows);
  let state i = Option.get states.(i) in
  (match hist with
  | None -> ()
  | Some h ->
      attach_wait_hists net h;
      (* Per-class delay tails, aggregated across links: one channel per
         predicted class plus the datagram class, fed by every link's
         scheduler delay hook.  (Guaranteed flows never hit the hook —
         their tail is the per-flow WFQ story, covered by the PG bound.) *)
      let n_cls = Csz_sched.datagram_class (state 0) + 1 in
      let chans =
        Array.init n_cls (fun c ->
            Ispn_obs.Hist.channel h (Printf.sprintf "csz.class.%d.delay" c))
      in
      for i = 0 to Network.n_links net - 1 do
        Csz_sched.set_delay_hook (state i) (fun ~cls delay ->
            Ispn_util.Loghist.add chans.(cls) delay)
      done);
  (* Register every real-time flow at each link on its path. *)
  List.iter
    (fun spec ->
      for i = spec.ingress to spec.egress - 1 do
        match table3_class_of spec.flow with
        | Guaranteed_peak ->
            Csz_sched.add_guaranteed (state i) ~flow:spec.flow
              ~clock_rate_bps:peak_rate_bps
        | Guaranteed_avg ->
            Csz_sched.add_guaranteed (state i) ~flow:spec.flow
              ~clock_rate_bps:avg_rate_bps
        | Predicted_high -> Csz_sched.set_predicted (state i) ~flow:spec.flow ~cls:0
        | Predicted_low -> Csz_sched.set_predicted (state i) ~flow:spec.flow ~cls:1
      done)
    figure1_flows;
  let rt_flows =
    List.map
      (fun spec -> attach_rt_flow ?audit net prng ~spec ~avg_rate_pps)
      figure1_flows
  in
  (* The two TCP connections, one per half of the chain; unregistered flows
     land in the datagram class. *)
  let tcps =
    List.mapi
      (fun i (ingress, egress) ->
        let flow = 100 + i in
        let tcp =
          Ispn_transport.Tcp.create ~engine ~flow
            ~send:(fun pkt -> Network.inject net ~at_switch:ingress pkt)
            ()
        in
        Network.install_flow net ~flow ~ingress ~egress
          ~sink:(fun pkt -> Ispn_transport.Tcp.receive tcp pkt);
        (flow, tcp))
      table3_tcp_paths
  in
  (match series with None -> () | Some s -> Engine.attach_series engine s);
  List.iter (fun rt -> rt.source.Ispn_traffic.Source.start ()) rt_flows;
  List.iter (fun (_, tcp) -> Ispn_transport.Tcp.start tcp) tcps;
  Engine.run engine ~until:duration;
  let all_flows = List.map result_of_rt_flow rt_flows in
  let info = info_of_run net rt_flows ~duration in
  let find_flow f =
    List.find (fun (r : flow_result) -> r.flow = f) all_flows
  in
  let rows =
    List.map
      (fun (label, f) ->
        let r = find_flow f in
        let pg_bound =
          match table3_class_of f with
          | Guaranteed_peak ->
              (* At clock rate = peak, the effective bucket depth is one
                 packet (the source can never get ahead of its clock). *)
              let bucket =
                { Ispn_admission.Spec.rate_bps = peak_rate_bps;
                  depth_bits = packet_bits_f }
              in
              Some
                (Units.packet_times ~link_rate_bps
                   ~packet_bits:Units.packet_bits
                   (Ispn_admission.Bounds.pg_bound ~bucket
                      ~clock_rate_bps:peak_rate_bps ~hops:r.hops ()))
          | Guaranteed_avg ->
              let bucket =
                {
                  Ispn_admission.Spec.rate_bps = avg_rate_bps;
                  depth_bits =
                    Scenario.token_bucket_depth_packets *. packet_bits_f;
                }
              in
              Some
                (Units.packet_times ~link_rate_bps
                   ~packet_bits:Units.packet_bits
                   (Ispn_admission.Bounds.pg_bound ~bucket
                      ~clock_rate_bps:avg_rate_bps ~hops:r.hops ()))
          | Predicted_high | Predicted_low -> None
        in
        {
          label;
          t3_flow = f;
          t3_hops = r.hops;
          t3_mean = r.mean;
          t3_p999 = r.p999;
          t3_max = r.max;
          pg_bound;
        })
      table3_sample_flows
  in
  let tcp_results =
    List.map
      (fun (flow, tcp) ->
        {
          tcp_flow = flow;
          goodput_bps = Ispn_transport.Tcp.goodput_bps tcp ~elapsed:duration;
          loss_rate = Ispn_transport.Tcp.loss_rate tcp;
          delivered = Ispn_transport.Tcp.delivered tcp;
          segments_sent = Ispn_transport.Tcp.segments_sent tcp;
        })
      tcps
  in
  let realtime_utilization =
    Array.init (Network.n_links net) (fun i ->
        float_of_int (Csz_sched.realtime_bits_sent (state i))
        /. (link_rate_bps *. duration))
  in
  let datagram_sent =
    List.fold_left (fun acc r -> acc + r.segments_sent) 0 tcp_results
  in
  let datagram_drop_rate =
    if datagram_sent = 0 then 0.
    else
      let retx =
        List.fold_left
          (fun acc (_, tcp) -> acc + Ispn_transport.Tcp.retransmissions tcp)
          0 tcps
      in
      float_of_int retx /. float_of_int datagram_sent
  in
  {
    rows;
    all_flows;
    tcp = tcp_results;
    info;
    realtime_utilization;
    datagram_drop_rate;
  }
