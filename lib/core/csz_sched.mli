(** The unified CSZ scheduling algorithm (Section 7).

    One qdisc that serves all three service commitments at a switch's
    output link:

    - Every {e guaranteed} flow is its own WFQ flow with clock rate
      [r_alpha] — the isolation layer.  Finish tags follow the GPS virtual
      time shared with pseudo-flow 0.
    - All {e predicted} and {e datagram} traffic forms pseudo-flow 0, whose
      clock rate is the leftover [r_0 = mu - sum r_alpha].  Inside flow 0
      sit [K] strict-priority classes each running FIFO+ (the sharing
      layer), with datagram traffic as an extra class below them all
      (served plain FIFO: its packets never carry jitter offsets).

    Because FIFO+ reorders within flow 0, flow 0's packets cannot be
    tag-stamped at arrival like guaranteed packets; instead the current
    flow-0 head (highest-priority earliest-deadline packet) is stamped
    lazily when it first contends for the link, with
    [max (V, F_0) + size / r_0] — a self-clocked approximation that keeps
    the isolation property exact in the direction that matters: guaranteed
    flows can never be displaced by more than one flow-0 packet beyond
    their GPS schedule, and flow 0 as an aggregate can never exceed its
    [r_0] share while guaranteed flows are backlogged.

    The number of packet buffers is shared across everything at the link
    (the paper's 200-packet switch buffer). *)

type config = {
  link_rate_bps : float;
  n_predicted_classes : int;  (** [K]; datagram sits below class [K-1]. *)
  ewma_gain : float;  (** FIFO+ class-average gain (default 1/4096; see {!Ispn_sched.Fifo_plus}). *)
  discard_late_above : float option;
      (** Section 10 late-discard threshold on the jitter offset, seconds. *)
}

val default_config : config
(** 1 Mbit/s, [K = 2], gain 1/4096, no late discard. *)

type t
(** Scheduler state, kept alongside the qdisc for inspection and dynamic
    flow management. *)

val create :
  ?config:config ->
  ?metrics:Ispn_obs.Metrics.t ->
  ?label:string ->
  pool:Ispn_sim.Qdisc.pool ->
  unit ->
  t * Ispn_sim.Qdisc.t
(** [metrics], when given, registers this scheduler's instruments under
    [csz.<label>] (label defaults to ["0"], conventionally the link index):
    pull gauges [.vtime], [.reserved_bps], [.flow0_rate_bps],
    [.late_discards], [.realtime_bits], [.datagram_bits], [.g_backlog],
    [.f0_backlog], per-class [.class.<c>.avg_delay] and [.class.<c>.len],
    plus a push distribution [.class.<c>.offset.*] of the jitter offset
    each departing predicted-class packet carries (one [Stats.add] per
    dequeue; a single [option] branch when metrics are off). *)

(** {2 Flow management}

    Flows unknown to the scheduler are treated as datagram traffic. *)

val add_guaranteed : t -> flow:int -> clock_rate_bps:float -> unit
(** Reserve [clock_rate_bps] for [flow].  Raises [Invalid_argument] if the
    flow is already registered or if the reservation would exhaust the link
    (flow 0 must keep a positive rate). *)

val remove_guaranteed : t -> flow:int -> unit
(** Release a reservation.  If the flow still has packets queued they are
    served under the old reservation and the flow is unregistered once it
    drains.  Raises [Invalid_argument] for an unknown flow. *)

val set_predicted : t -> flow:int -> cls:int -> unit
(** Put [flow] in predicted class [cls] (0 = highest priority). *)

val clear_predicted : t -> flow:int -> unit
(** Back to datagram treatment. *)

(** {2 Inspection} *)

val guaranteed_reserved_bps : t -> float
val flow0_rate_bps : t -> float
val class_avg_delay : t -> cls:int -> float
(** FIFO+ average queueing delay of predicted class [cls] at this switch. *)

val late_discards : t -> int
val datagram_class : t -> int
(** Index [K] — useful with {!set_delay_hook}. *)

val realtime_bits_sent : t -> int
(** Bits transmitted for guaranteed + predicted traffic (admission meters
    sample deltas of this). *)

val datagram_bits_sent : t -> int

val set_delay_hook : t -> (cls:int -> float -> unit) -> unit
(** Called with every flow-0 packet's queueing delay at dequeue; [cls] is
    the predicted class or {!datagram_class}.  Guaranteed packets are
    reported with [cls = -1]. *)
