open Ispn_sim
module Units = Ispn_util.Units
module Prng = Ispn_util.Prng
module Dist = Ispn_util.Dist
module Spec = Ispn_admission.Spec
module Controller = Ispn_admission.Controller
module Meter = Ispn_admission.Meter

(* --- E1: scheduler bake-off ---------------------------------------------- *)

type bakeoff_sched =
  | B_wfq
  | B_fifo
  | B_mc_fifo
  | B_fifo_plus
  | B_virtual_clock
  | B_edf
  | B_drr
  | B_wrr
  | B_rr_groups
  | B_cbs
  | B_ats
  | B_stop_and_go
  | B_hrr
  | B_jitter_edd

let bakeoff_name = function
  | B_wfq -> "WFQ"
  | B_fifo -> "FIFO"
  | B_mc_fifo -> "MC-FIFO"
  | B_fifo_plus -> "FIFO+"
  | B_virtual_clock -> "VirtualClock"
  | B_edf -> "EDF"
  | B_drr -> "DRR"
  | B_wrr -> "WRR"
  | B_rr_groups -> "RR-groups"
  | B_cbs -> "CBS"
  | B_ats -> "ATS"
  | B_stop_and_go -> "Stop-and-Go"
  | B_hrr -> "HRR"
  | B_jitter_edd -> "Jitter-EDD"

(* Figure-1 shaper parameters shared by the modern-shaper rows and their
   analytic bounds: every flow is policed to (85 pkt/s, 50 pkt), i.e.
   (85 000 bit/s, 50 000 bits) at 1000-bit packets. *)
let bakeoff_rate_bps = Scenario.default_avg_rate_pps *. float Units.packet_bits

let bakeoff_burst_bits =
  Scenario.token_bucket_depth_packets *. float Units.packet_bits

let fig1_hops =
  let a = Array.make 22 0 in
  List.iter
    (fun (fs : Scenario.flow_spec) -> a.(fs.Scenario.flow) <- Scenario.hops fs)
    Scenario.figure1_flows;
  a

(* CBS runs two TSN-style classes: A (index 0, the 1-hop flows) and B
   (everything longer); ATS runs one strict-priority class per path
   length, shortest paths highest.  Both maps are per flow, so class
   membership is consistent along a path. *)
let cbs_class_of flow = if fig1_hops.(flow) = 1 then 0 else 1
let ats_class_of flow = fig1_hops.(flow) - 1

(* Per-link idle slopes: each class gets its reserved rate plus an equal
   share of the link's headroom, so the slopes sum to the link rate and
   every class's slope strictly covers its load. *)
let cbs_idle_slopes link =
  let r = Array.make 2 0. in
  List.iter
    (fun (fs : Scenario.flow_spec) ->
      let c = cbs_class_of fs.Scenario.flow in
      r.(c) <- r.(c) +. bakeoff_rate_bps)
    (Scenario.flows_on_link link);
  let headroom = Units.link_rate_bps -. (r.(0) +. r.(1)) in
  [| r.(0) +. (headroom /. 2.); r.(1) +. (headroom /. 2.) |]

let bakeoff_qdisc sched engine ~pool link =
  let link_rate_bps = Units.link_rate_bps in
  match sched with
  | B_wfq -> Ispn_sched.Wfq.create_equal ~pool ~link_rate_bps ()
  | B_fifo -> Ispn_sched.Fifo.create ~pool ()
  | B_mc_fifo ->
      (* The multiclass-FIFO configuration is the plain FIFO: classes
         share the queue, and the Jiang-Misra per-class bound (computed
         in [bakeoff_bounds]) is what distinguishes the row. *)
      Ispn_sched.Fifo.create ~pool ()
  | B_fifo_plus -> snd (Ispn_sched.Fifo_plus.create ~pool ())
  | B_virtual_clock ->
      (* Ten flows per link: each is entitled to a tenth of the link. *)
      Ispn_sched.Virtual_clock.create ~pool
        ~rate_of:(fun _ -> link_rate_bps /. 10.)
        ()
  | B_edf ->
      (* Equal per-hop budgets: Section 5 predicts this degenerates to
         FIFO, which the bake-off table lets the reader confirm. *)
      Ispn_sched.Edf.create ~pool ~deadline_of:(fun _ -> 0.01) ()
  | B_drr -> Ispn_sched.Drr.create ~pool ~quantum_bits:Units.packet_bits ()
  | B_wrr ->
      (* Equal unit weights over the ten flows of each link: plain
         packet-counted round robin, the Constantin et al. baseline. *)
      Ispn_sched.Wrr.create ~pool ()
  | B_cbs ->
      Ispn_sched.Cbs.create ~engine ~pool
        ~idle_slopes_bps:(cbs_idle_slopes link) ~class_of:cbs_class_of ()
  | B_ats ->
      (* Interleaved regulators re-shape every flow to its original
         policing envelope at each hop. *)
      Ispn_sched.Ats.create ~engine ~pool ~n_classes:4 ~class_of:ats_class_of
        ~shaper_of:(fun _ -> (bakeoff_rate_bps, bakeoff_burst_bits))
        ()
  | B_rr_groups ->
      (* One group per flow: per-flow round robin, the Jacobson-Floyd
         within-priority scheme. *)
      Ispn_sched.Rr_groups.create ~pool ~n_groups:22
        ~group_of:(fun p -> Packet.flow p)
        ()
  | B_stop_and_go ->
      (* Frame sized so that every flow's per-frame allocation holds its
         average rate: 10 flows at 85 pkt/s on a 1000 pkt/s link gives
         about 10 packets per 10 ms frame. *)
      Ispn_sched.Stop_and_go.create ~engine ~frame:0.010 ~pool ()
  | B_hrr ->
      (* 20 ms frames with 2 slots per flow: each flow is rate-limited to
         100 pkt/s, just above its 85 pkt/s average. *)
      Ispn_sched.Hrr.create ~engine ~frame:0.020 ~slots_of:(fun _ -> 2) ~pool
        ()
  | B_jitter_edd ->
      (* Per-hop budget of 20 packet times: enough for the observed
         per-hop 99.9%ile, so deadline misses are rare. *)
      Ispn_sched.Jitter_edd.create ~engine ~budget_of:(fun _ -> 0.020) ~pool
        ()

let bakeoff_bound_kind = function
  | B_cbs -> Some Ispn_check.Audit.Cbs
  | B_ats -> Some Ispn_check.Audit.Ats
  | B_wrr -> Some Ispn_check.Audit.Wrr
  | B_mc_fifo -> Some Ispn_check.Audit.Mc_fifo
  | _ -> None

(* End-to-end analytic queueing-delay bounds for the modern-shaper rows
   (None for the classic schedulers): iterate the four links in path
   order, give every flow crossing link [li] its per-hop bound from the
   scheduler's service curve ([Ispn_util.Analytic]), and grow the flow's
   burst by [rate * hop_bound] for the next hop (a system with delay
   bound [d] outputs at most [(burst + rate*d, rate)]).  ATS is the
   exception: its per-hop regulators re-shape every flow to the original
   envelope, so bursts never grow and — by the interleaved-regulator
   shaping-for-free theorem — the regulator holds add nothing beyond the
   per-hop strict-priority bounds being summed.  Deterministic (pure
   arithmetic on the Figure-1 constants), so rows can print the bounds
   whether or not [--check] is on. *)
let bakeoff_bounds sched =
  match bakeoff_bound_kind sched with
  | None -> None
  | Some _ ->
      let module A = Ispn_util.Analytic in
      let lr = Units.link_rate_bps in
      let l = Units.packet_bits in
      let burst = Array.make 22 bakeoff_burst_bits in
      let cum = Array.make 22 0. in
      let add_hop f d =
        cum.(f) <- cum.(f) +. d;
        burst.(f) <- burst.(f) +. (bakeoff_rate_bps *. d)
      in
      for li = 0 to 3 do
        let flows = Scenario.flows_on_link li in
        let each g =
          List.iter (fun (fs : Scenario.flow_spec) -> g fs.Scenario.flow) flows
        in
        match sched with
        | B_wrr ->
            let total_weight = List.length flows in
            let rate, lat =
              A.wrr_service ~link_rate_bps:lr ~weight:1 ~total_weight
                ~max_packet_bits:l
            in
            each (fun f ->
                add_hop f
                  (A.rate_latency_delay ~burst_bits:burst.(f)
                     ~rate_bps:bakeoff_rate_bps ~service_rate_bps:rate
                     ~latency_s:lat))
        | B_mc_fifo ->
            let total_burst = ref 0. and total_rate = ref 0. in
            each (fun f ->
                total_burst := !total_burst +. burst.(f);
                total_rate := !total_rate +. bakeoff_rate_bps);
            let d =
              A.mc_fifo_delay ~link_rate_bps:lr ~total_burst_bits:!total_burst
                ~total_rate_bps:!total_rate ~max_packet_bits:l
            in
            each (fun f -> add_hop f d)
        | B_cbs ->
            let slopes = cbs_idle_slopes li in
            let bc = Array.make 2 0. and rc = Array.make 2 0. in
            each (fun f ->
                let c = cbs_class_of f in
                bc.(c) <- bc.(c) +. burst.(f);
                rc.(c) <- rc.(c) +. bakeoff_rate_bps);
            let d_class c =
              let lat =
                A.cbs_latency ~link_rate_bps:lr ~idle_slope_bps:slopes.(c)
                  ~higher_slope_bps:(if c = 0 then 0. else slopes.(0))
                  ~max_packet_bits:l
              in
              A.rate_latency_delay ~burst_bits:bc.(c) ~rate_bps:rc.(c)
                ~service_rate_bps:slopes.(c) ~latency_s:lat
            in
            let d = [| d_class 0; d_class 1 |] in
            each (fun f -> add_hop f d.(cbs_class_of f))
        | B_ats ->
            (* Shaped (original) per-flow envelopes at every hop. *)
            let bc = Array.make 4 0. and rc = Array.make 4 0. in
            each (fun f ->
                let c = ats_class_of f in
                bc.(c) <- bc.(c) +. bakeoff_burst_bits;
                rc.(c) <- rc.(c) +. bakeoff_rate_bps);
            each (fun f ->
                let c = ats_class_of f in
                let hr = ref 0. and hb = ref 0. in
                for q = 0 to c - 1 do
                  hr := !hr +. rc.(q);
                  hb := !hb +. bc.(q)
                done;
                let rate, lat =
                  A.sp_service ~link_rate_bps:lr ~higher_rate_bps:!hr
                    ~higher_burst_bits:!hb ~max_packet_bits:l
                in
                (* Bursts stay shaped: no growth, just the hop bound. *)
                cum.(f) <-
                  cum.(f)
                  +. A.rate_latency_delay ~burst_bits:bc.(c) ~rate_bps:rc.(c)
                       ~service_rate_bps:rate ~latency_s:lat)
        | _ -> assert false
      done;
      Some
        (List.map
           (fun (fs : Scenario.flow_spec) ->
             (fs.Scenario.flow, cum.(fs.Scenario.flow)))
           Scenario.figure1_flows)

type bakeoff_row = {
  bk_sched : bakeoff_sched;
  bk_results : Experiment.flow_result list;
  bk_bounds : (int * float) list option;
  bk_check : Ispn_check.Audit.summary option;
}

let bakeoff_scheds =
  [
    B_wfq; B_fifo; B_mc_fifo; B_fifo_plus; B_virtual_clock; B_edf; B_drr;
    B_wrr; B_rr_groups; B_cbs; B_ats; B_stop_and_go; B_hrr; B_jitter_edd;
  ]

let run_bakeoff ?(duration = Units.sim_duration_s) ?(seed = 42L) ?(j = 1)
    ?(check = false) ?(scheds = bakeoff_scheds) () =
  Ispn_exec.Pool.map ~j
    (fun sched ->
      let audit = if check then Some (Ispn_check.Audit.create ()) else None in
      let bounds = bakeoff_bounds sched in
      (match (audit, bounds, bakeoff_bound_kind sched) with
      | Some a, Some bs, Some kind ->
          List.iter
            (fun (flow, bound_s) ->
              let spec =
                List.find
                  (fun (fs : Scenario.flow_spec) -> fs.Scenario.flow = flow)
                  Scenario.figure1_flows
              in
              Ispn_check.Audit.register_delay_bound a ~kind ~flow
                ~link:(spec.Scenario.egress - 1) ~bound_s)
            bs
      | _ -> ());
      let qdisc_of engine link =
        let pool = Qdisc.pool ~capacity:Units.buffer_packets in
        (match audit with
        | Some a -> Ispn_check.Audit.register_pool a ~link pool
        | None -> ());
        bakeoff_qdisc sched engine ~pool link
      in
      let results, _ =
        Experiment.run_figure1_custom ~qdisc_of ~duration ~seed ?audit ()
      in
      {
        bk_sched = sched;
        bk_results = results;
        bk_bounds = bounds;
        bk_check = Option.map Ispn_check.Audit.finalize audit;
      })
    scheds

(* --- E2: admission policies ---------------------------------------------- *)

type admission_policy = Measured | Worst_case | Open_door

let policy_name = function
  | Measured -> "measured (Section 9)"
  | Worst_case -> "worst-case declared"
  | Open_door -> "no admission control"

type admission_result = {
  policy : admission_policy;
  requests : int;
  accepted : int;
  mean_utilization : float;
  violation_rate : float;
  net_drop_rate : float;
}

(* A pre-drawn flow request: arrival instant, holding time, and whether it
   asks for the tight or the loose delay class. *)
type offered_flow = {
  of_id : int;
  at : float;
  holding : float;
  tight : bool;
  src_seed : int64;
}

let draw_offered_load ~seed ~duration ~arrival_rate ~mean_holding =
  let prng = Prng.create ~seed in
  let rec go t acc id =
    let t = t +. Dist.exponential prng ~mean:(1. /. arrival_rate) in
    if t >= duration then List.rev acc
    else
      let f =
        {
          of_id = id;
          at = t;
          holding = Dist.exponential prng ~mean:mean_holding;
          tight = Prng.bool prng;
          src_seed = Prng.int64 prng;
        }
      in
      go t (f :: acc) (id + 1)
  in
  go 0. [] 0

let class_targets = [| 0.008; 0.064 |]

let run_admission_policy ~policy ~offered ~duration =
  let engine = Engine.create () in
  let sched_ref = ref None in
  let net =
    Network.chain ~engine ~n_switches:2 ~rate_bps:Units.link_rate_bps
      ~qdisc_of:(fun _ ->
        let pool = Qdisc.pool ~capacity:Units.buffer_packets in
        let st, q = Csz_sched.create ~pool () in
        sched_ref := Some st;
        q)
      ()
  in
  let sched = Option.get !sched_ref in
  let ctrl =
    Controller.create ~n_links:1 ~mu_bps:Units.link_rate_bps ~class_targets ()
  in
  (* Violation accounting and meter feeding share the scheduler's hook. *)
  let rt_packets = ref 0 and violations = ref 0 in
  Csz_sched.set_delay_hook sched (fun ~cls delay ->
      if cls >= 0 && cls < Array.length class_targets then begin
        incr rt_packets;
        if delay > class_targets.(cls) then incr violations;
        Meter.note_delay (Controller.meter ctrl ~link:0) ~cls delay
      end);
  (* Worst-case bookkeeping: declared rates of live flows. *)
  let declared = ref 0. in
  let offered_pkts = ref 0 in
  let decide flow (bucket : Spec.bucket) target =
    match policy with
    | Measured -> (
        match
          Controller.request ctrl ~flow ~path:[ 0 ]
            (Spec.Predicted
               { bucket; target_delay = target; target_loss = 0.01 })
        with
        | Controller.Admitted { cls = Some cls } -> Some cls
        | Controller.Admitted { cls = None } -> None
        | Controller.Rejected _ -> None)
    | Worst_case ->
        let cls = if target <= class_targets.(0) then 0 else 1 in
        let mu = Units.link_rate_bps in
        let r = bucket.Spec.rate_bps and b = bucket.Spec.depth_bits in
        let fits =
          r +. !declared < 0.9 *. mu
          && b < class_targets.(cls) *. (mu -. !declared -. r)
        in
        if fits then Some cls else None
    | Open_door ->
        Some (if target <= class_targets.(0) then 0 else 1)
  in
  (* Clients declare their bucket at the source's *peak* rate — the safe
     declaration a real client makes — while their actual average is half
     that.  This overstatement is exactly where measurement-based admission
     wins: a worst-case controller books the declared 170 kbit/s per flow
     and saturates its books at ~5 flows, while the measured controller
     sees the true ~83 kbit/s usage. *)
  let bucket = Spec.bucket ~rate_pps:170. ~depth_packets:5. () in
  let accepted = ref 0 in
  List.iter
    (fun f ->
      ignore
        (Engine.schedule engine ~at:f.at (fun () ->
             let target = if f.tight then 0.008 else 0.064 in
             match decide f.of_id bucket target with
             | None ->
                 if policy <> Measured then ()
                 (* Measured-policy rejections are already counted by the
                    controller; nothing else to do either way. *)
             | Some cls ->
                 incr accepted;
                 declared := !declared +. bucket.Spec.rate_bps;
                 Csz_sched.set_predicted sched ~flow:f.of_id ~cls;
                 let probe_sink _ = () in
                 Network.install_flow net ~flow:f.of_id ~ingress:0 ~egress:1
                   ~sink:probe_sink;
                 let tb =
                   Ispn_traffic.Token_bucket.create
                     ~rate_bps:bucket.Spec.rate_bps
                     ~depth_bits:bucket.Spec.depth_bits ()
                 in
                 let policer =
                   Ispn_traffic.Token_bucket.policer ~engine ~bucket:tb
                     ~mode:Ispn_traffic.Token_bucket.Drop ~next:(fun pkt ->
                       incr offered_pkts;
                       Network.inject net ~at_switch:0 pkt)
                 in
                 let source =
                   Ispn_traffic.Onoff.create ~engine
                     ~prng:(Prng.create ~seed:f.src_seed) ~flow:f.of_id
                     ~avg_rate_pps:85.
                     ~emit:(Ispn_traffic.Token_bucket.admit_fn policer)
                     ()
                 in
                 source.Ispn_traffic.Source.start ();
                 ignore
                   (Engine.schedule_after engine ~delay:f.holding (fun () ->
                        source.Ispn_traffic.Source.stop ();
                        declared := !declared -. bucket.Spec.rate_bps;
                        Csz_sched.clear_predicted sched ~flow:f.of_id;
                        if policy = Measured then
                          Controller.release ctrl ~flow:f.of_id)))))
    offered;
  (* Measurement pump for the controller (1 s epochs). *)
  let last_bits = ref 0 in
  let rec pump () =
    let bits = Csz_sched.realtime_bits_sent sched in
    Meter.note_util
      (Controller.meter ctrl ~link:0)
      (float_of_int (bits - !last_bits) /. Units.link_rate_bps);
    last_bits := bits;
    Controller.epoch ctrl;
    ignore (Engine.schedule_after engine ~delay:1.0 pump)
  in
  ignore (Engine.schedule_after engine ~delay:1.0 pump);
  Engine.run engine ~until:duration;
  {
    policy;
    requests = List.length offered;
    accepted = !accepted;
    mean_utilization =
      Link.utilization (Network.link net 0) ~elapsed:duration;
    violation_rate =
      (if !rt_packets = 0 then 0.
       else float_of_int !violations /. float_of_int !rt_packets);
    net_drop_rate =
      (if !offered_pkts = 0 then 0.
       else
         float_of_int (Network.total_dropped net)
         /. float_of_int !offered_pkts);
  }

let run_admission ?(duration = 300.) ?(seed = 42L) ?(arrival_rate = 0.5)
    ?(mean_holding = 60.) ?(j = 1) () =
  (* Drawn once and shared read-only: the three policies face an identical
     offered load. *)
  let offered =
    draw_offered_load ~seed ~duration ~arrival_rate ~mean_holding
  in
  Ispn_exec.Pool.map ~j
    (fun policy -> run_admission_policy ~policy ~offered ~duration)
    [ Measured; Worst_case; Open_door ]

(* --- E3: adaptive vs rigid play-back ------------------------------------- *)

type playback_result = {
  client : string;
  mean_point : float;
  app_loss_rate : float;
}

let run_playback ?(duration = Units.sim_duration_s) ?(seed = 42L) () =
  let engine = Engine.create () in
  let prng = Prng.create ~seed in
  let net =
    Network.chain ~engine ~n_switches:Scenario.figure1_n_switches
      ~rate_bps:Units.link_rate_bps
      ~qdisc_of:(fun _ ->
        snd
          (Ispn_sched.Fifo_plus.create
             ~pool:(Qdisc.pool ~capacity:Units.buffer_packets)
             ()))
      ()
  in
  (* The advertised a-priori bound for the watched 4-hop flow: the sum of
     per-switch class targets, as Section 7 prescribes (4 x 16 ms). *)
  let advertised = 4. *. 0.016 in
  let rigid = Ispn_playback.Client.rigid ~bound:advertised in
  let adaptive =
    Ispn_playback.Client.adaptive ~window:200 ~quantile:0.99 ~margin:0.002
      ~update_every:50 ()
  in
  let vat = Ispn_playback.Client.adaptive_vat ~update_every:1 () in
  let rt_flows =
    List.map
      (fun spec -> Experiment.attach_rt_flow net prng ~spec ~avg_rate_pps:85.)
      Scenario.figure1_flows
  in
  (* Re-route flow 0 so its packets also feed the two play-back clients. *)
  let watched = List.find (fun rt -> rt.Experiment.spec.Scenario.flow = 0) rt_flows in
  Network.install_flow net ~flow:0 ~ingress:0 ~egress:4 ~sink:(fun pkt ->
      let delay = Engine.now engine -. Packet.created pkt in
      Ispn_playback.Client.receive rigid ~delay;
      Ispn_playback.Client.receive adaptive ~delay;
      Ispn_playback.Client.receive vat ~delay;
      Probe.sink watched.Experiment.probe ~engine pkt);
  List.iter (fun rt -> rt.Experiment.source.Ispn_traffic.Source.start ()) rt_flows;
  Engine.run engine ~until:duration;
  let to_units s = Units.packet_times ~link_rate_bps:Units.link_rate_bps ~packet_bits:Units.packet_bits s in
  [
    {
      client = "rigid";
      mean_point = to_units (Ispn_playback.Client.mean_playback_point rigid);
      app_loss_rate = Ispn_playback.Client.loss_rate rigid;
    };
    {
      client = "adaptive";
      mean_point = to_units (Ispn_playback.Client.mean_playback_point adaptive);
      app_loss_rate = Ispn_playback.Client.loss_rate adaptive;
    };
    {
      client = "vat";
      mean_point = to_units (Ispn_playback.Client.mean_playback_point vat);
      app_loss_rate = Ispn_playback.Client.loss_rate vat;
    };
  ]

(* --- E6: jitter shifting between priority classes ------------------------ *)

type cascade_row = {
  cascade_class : string;
  c_mean : float;
  c_p999 : float;
}

let run_cascade ?(duration = Units.sim_duration_s) ?(seed = 42L)
    ?(n_classes = 4) () =
  assert (n_classes >= 1);
  let engine = Engine.create () in
  let prng = Prng.create ~seed in
  let sched_ref = ref None in
  let net =
    Network.chain ~engine ~n_switches:2 ~rate_bps:Units.link_rate_bps
      ~qdisc_of:(fun _ ->
        let pool = Qdisc.pool ~capacity:Units.buffer_packets in
        let config =
          { Csz_sched.default_config with n_predicted_classes = n_classes }
        in
        let st, q = Csz_sched.create ~config ~pool () in
        sched_ref := Some st;
        q)
      ()
  in
  let sched = Option.get !sched_ref in
  (* Per-class per-hop delays straight from the scheduler. *)
  let per_class = Array.init (n_classes + 1) (fun _ -> Ispn_util.Fvec.create ()) in
  Csz_sched.set_delay_hook sched (fun ~cls delay ->
      if cls >= 0 then Ispn_util.Fvec.push per_class.(cls) delay);
  (* Two identical policed on/off flows per predicted class, plus two
     datagram flows: 10 x 85 pkt/s on a 1000 pkt/s link. *)
  let flows_per_class = 2 in
  let attach flow maybe_cls =
    (match maybe_cls with
    | Some cls -> Csz_sched.set_predicted sched ~flow ~cls
    | None -> ());
    Network.install_flow net ~flow ~ingress:0 ~egress:1 ~sink:(fun _ -> ());
    let tb =
      Ispn_traffic.Token_bucket.create ~rate_bps:85_000. ~depth_bits:50_000. ()
    in
    let policer =
      Ispn_traffic.Token_bucket.policer ~engine ~bucket:tb
        ~mode:Ispn_traffic.Token_bucket.Drop
        ~next:(fun pkt -> Network.inject net ~at_switch:0 pkt)
    in
    let source =
      Ispn_traffic.Onoff.create ~engine ~prng:(Prng.split prng) ~flow
        ~avg_rate_pps:85.
        ~emit:(Ispn_traffic.Token_bucket.admit_fn policer)
        ()
    in
    source.Ispn_traffic.Source.start ()
  in
  let next_flow = ref 0 in
  for cls = 0 to n_classes - 1 do
    for _ = 1 to flows_per_class do
      attach !next_flow (Some cls);
      incr next_flow
    done
  done;
  for _ = 1 to flows_per_class do
    attach !next_flow None;
    (* datagram *)
    incr next_flow
  done;
  Engine.run engine ~until:duration;
  let to_units s =
    Units.packet_times ~link_rate_bps:Units.link_rate_bps
      ~packet_bits:Units.packet_bits s
  in
  List.init (n_classes + 1) (fun cls ->
      let delays = per_class.(cls) in
      let n = Ispn_util.Fvec.length delays in
      {
        cascade_class =
          (if cls = n_classes then "datagram"
           else Printf.sprintf "class %d" cls);
        c_mean =
          (if n = 0 then 0.
           else to_units (Ispn_util.Fvec.fold ( +. ) 0. delays /. float_of_int n));
        c_p999 =
          (if n = 0 then 0.
           else to_units (Ispn_util.Quantile.percentile delays 99.9));
      })

(* --- E4: isolation vs sharing with a misbehaving source ------------------ *)

type isolation_row = {
  iso_sched : string;
  honest_mean : float;
  honest_p999 : float;
  cheat_mean : float;
  cheat_p999 : float;
}

let run_isolation ?(duration = Units.sim_duration_s) ?(seed = 42L) () =
  let cheat_flow = 9 in
  let run name make_qdisc ~police_cheat =
    let engine = Engine.create () in
    let prng = Prng.create ~seed in
    let net =
      Network.chain ~engine ~n_switches:2 ~rate_bps:Units.link_rate_bps
        ~qdisc_of:(fun _ -> make_qdisc ())
        ()
    in
    let probes = Hashtbl.create 10 in
    let attach flow ~avg ~police =
      let probe = Probe.create () in
      Hashtbl.replace probes flow probe;
      Network.install_flow net ~flow ~ingress:0 ~egress:1
        ~sink:(fun pkt -> Probe.sink probe ~engine pkt);
      let inject pkt = Network.inject net ~at_switch:0 pkt in
      let emit =
        if police then begin
          (* Policed against the *declared* (85, 50) profile, whatever the
             source actually emits. *)
          let tb =
            Ispn_traffic.Token_bucket.create ~rate_bps:85_000.
              ~depth_bits:50_000. ()
          in
          Ispn_traffic.Token_bucket.admit_fn
            (Ispn_traffic.Token_bucket.policer ~engine ~bucket:tb
               ~mode:Ispn_traffic.Token_bucket.Drop ~next:inject)
        end
        else inject
      in
      let source =
        Ispn_traffic.Onoff.create ~engine ~prng:(Prng.split prng) ~flow
          ~avg_rate_pps:avg ~emit ()
      in
      source.Ispn_traffic.Source.start ()
    in
    for flow = 0 to 8 do
      attach flow ~avg:85. ~police:true
    done;
    (* The cheater claims 85 pkt/s but runs at three times that. *)
    attach cheat_flow ~avg:255. ~police:police_cheat;
    Engine.run engine ~until:duration;
    let stats flow =
      let p = Hashtbl.find probes flow in
      (Probe.mean_qdelay p, Probe.percentile_qdelay p 99.9)
    in
    let honest_mean, honest_p999 = stats 0 in
    let cheat_mean, cheat_p999 = stats cheat_flow in
    { iso_sched = name; honest_mean; honest_p999; cheat_mean; cheat_p999 }
  in
  let pool () = Qdisc.pool ~capacity:Units.buffer_packets in
  [
    run "FIFO (sharing only)"
      (fun () -> Ispn_sched.Fifo.create ~pool:(pool ()) ())
      ~police_cheat:false;
    run "WFQ (isolation)"
      (fun () ->
        Ispn_sched.Wfq.create_equal ~pool:(pool ())
          ~link_rate_bps:Units.link_rate_bps ())
      ~police_cheat:false;
    run "FIFO + edge policing (CSZ)"
      (fun () -> Ispn_sched.Fifo.create ~pool:(pool ()) ())
      ~police_cheat:true;
  ]

(* --- E5: late-packet discard --------------------------------------------- *)

type discard_result = {
  threshold : float option;
  p999_4hop : float;
  discarded_fraction : float;
}

let run_discard ?(duration = Units.sim_duration_s) ?(seed = 42L) () =
  let run threshold =
    let states = ref [] in
    let qdisc_of _engine _link =
      let st, q =
        Ispn_sched.Fifo_plus.create ?discard_late_above:threshold
          ~pool:(Qdisc.pool ~capacity:Units.buffer_packets)
          ()
      in
      states := st :: !states;
      q
    in
    let results, info = Experiment.run_figure1_custom ~qdisc_of ~duration ~seed () in
    let four_hop =
      List.find (fun (r : Experiment.flow_result) -> r.Experiment.flow = 0) results
    in
    let discarded =
      List.fold_left
        (fun acc st -> acc + Ispn_sched.Fifo_plus.discarded st)
        0 !states
    in
    let delivered =
      info.Experiment.offered - info.Experiment.source_dropped
    in
    {
      threshold;
      p999_4hop = four_hop.Experiment.p999;
      discarded_fraction =
        (if delivered = 0 then 0.
         else float_of_int discarded /. float_of_int delivered);
    }
  in
  [ run None; run (Some 0.030); run (Some 0.015) ]

(* --- E7: Table 3 through the full service stack --------------------------- *)

type e2e_row = {
  e2e_label : string;
  e2e_flow : int;
  e2e_hops : int;
  e2e_outcome : string;
}

type e2e_result = {
  e2e_rows : e2e_row list;
  e2e_admitted : int;
  e2e_rejected : int;
  e2e_utilization : float;
  e2e_violations : float;
}

let run_table3_service ?(duration = Units.sim_duration_s) ?(seed = 42L) () =
  let open Scenario in
  let engine = Engine.create () in
  let prng = Prng.create ~seed in
  (* Targets an order of magnitude apart (Section 7), sized to bracket what
     Table 3's classes actually deliver per switch: 16 ms for High, 128 ms
     for Low. *)
  let targets = [| 0.016; 0.128 |] in
  let svc =
    Service.create ~engine ~n_switches:figure1_n_switches
      ~class_targets:targets ()
  in
  Service.start svc;
  (* Target-violation accounting across all links. *)
  let rt_packets = ref 0 and violations = ref 0 in
  let fabric = Service.fabric svc in
  for i = 0 to Fabric.n_links fabric - 1 do
    let meter =
      Ispn_admission.Controller.meter (Service.controller svc) ~link:i
    in
    Csz_sched.set_delay_hook (Fabric.sched fabric ~link:i) (fun ~cls delay ->
        if cls >= 0 && cls < Array.length targets then begin
          incr rt_packets;
          if delay > targets.(cls) then incr violations;
          Meter.note_delay meter ~cls delay
        end)
  done;
  let avg_bucket = Spec.bucket ~rate_pps:85. ~depth_packets:50. () in
  let peak_bucket =
    { Spec.rate_bps = 170_000.; depth_bits = 1000. (* b(peak) = 1 packet *) }
  in
  (* A client that wants the tight class cannot honestly fit a 50-packet
     burst under a 16 ms target; it instead declares its peak rate with a
     small bucket — which its on/off process also conforms to (at r = 2A
     the bucket never builds more than a few packets of deficit). *)
  let high_bucket = Spec.bucket ~rate_pps:170. ~depth_packets:5. () in
  let start_source flow spec emit =
    let source =
      Ispn_traffic.Onoff.create ~engine ~prng:(Prng.split prng) ~flow
        ~avg_rate_pps:85. ~emit ()
    in
    ignore spec;
    source.Ispn_traffic.Source.start ()
  in
  (* Outcomes are recorded as flows get admitted; predicted clients retry
     every 20 s — as the meters replace worst-case declared accounting with
     measured load, requests that were refused at t=0 succeed later. *)
  let outcomes : (int, string) Hashtbl.t = Hashtbl.create 32 in
  let request_flow spec =
    let { flow; ingress; egress } = spec in
    let hops = Scenario.hops spec in
    let sink _ = () in
    let ask request ~own_bucket =
      Service.request svc ~flow ~ingress ~egress ?own_bucket request ~sink
    in
    match table3_class_of flow with
    | Guaranteed_peak | Guaranteed_avg -> (
        let rate, own_bucket =
          match table3_class_of flow with
          | Guaranteed_peak -> (170_000., peak_bucket)
          | _ -> (85_000., avg_bucket)
        in
        match
          ask (Spec.Guaranteed { clock_rate_bps = rate })
            ~own_bucket:(Some own_bucket)
        with
        | Ok est ->
            start_source flow spec est.Service.emit;
            Hashtbl.replace outcomes flow "guaranteed"
        | Error e -> Hashtbl.replace outcomes flow ("rejected: " ^ e))
    | Predicted_high | Predicted_low ->
        let target, bucket =
          match table3_class_of flow with
          | Predicted_high -> (targets.(0), high_bucket)
          | _ -> (targets.(Array.length targets - 1), avg_bucket)
        in
        let request =
          Spec.Predicted
            {
              bucket;
              target_delay = float_of_int hops *. target;
              target_loss = 0.01;
            }
        in
        let rec attempt () =
          match ask request ~own_bucket:None with
          | Ok est ->
              start_source flow spec est.Service.emit;
              Hashtbl.replace outcomes flow
                (Printf.sprintf "class %d at t=%.0fs"
                   (Option.get est.Service.cls)
                   (Engine.now engine))
          | Error e ->
              Hashtbl.replace outcomes flow ("rejected: " ^ e);
              if Engine.now engine +. 20. < duration then
                ignore (Engine.schedule_after engine ~delay:20. attempt)
        in
        attempt ()
  in
  (* Guaranteed clients sign up first (they need reservations), then the
     predicted population keeps knocking. *)
  let order =
    List.stable_sort
      (fun a b ->
        let rank s =
          match table3_class_of s.flow with
          | Guaranteed_peak | Guaranteed_avg -> 0
          | Predicted_high -> 1
          | Predicted_low -> 2
        in
        compare (rank a) (rank b))
      figure1_flows
  in
  List.iter request_flow order;
  (* Datagram TCP filler, via the service interface. *)
  List.iteri
    (fun i (ingress, egress) ->
      let flow = 100 + i in
      match
        Service.request svc ~flow ~ingress ~egress Spec.Datagram
          ~sink:(fun _ -> ())
      with
      | Ok est ->
          let tcp =
            Ispn_transport.Tcp.create ~engine ~flow
              ~send:est.Service.emit ()
          in
          Fabric.install_flow fabric ~flow ~ingress ~egress ~sink:(fun pkt ->
              Ispn_transport.Tcp.receive tcp pkt);
          Ispn_transport.Tcp.start tcp
      | Error _ -> ())
    table3_tcp_paths;
  Engine.run engine ~until:duration;
  let util =
    let n = Fabric.n_links fabric in
    let sum = ref 0. in
    for i = 0 to n - 1 do
      sum := !sum +. Link.utilization (Fabric.link fabric i) ~elapsed:duration
    done;
    !sum /. float_of_int n
  in
  let rows =
    List.map
      (fun spec ->
        {
          e2e_label =
            Format.asprintf "%a" pp_service_class
              (table3_class_of spec.flow);
          e2e_flow = spec.flow;
          e2e_hops = Scenario.hops spec;
          e2e_outcome =
            (try Hashtbl.find outcomes spec.flow
             with Not_found -> "no outcome recorded");
        })
      order
  in
  {
    e2e_rows = rows;
    e2e_admitted = Service.admitted svc;
    e2e_rejected = Service.rejected svc;
    e2e_utilization = util;
    e2e_violations =
      (if !rt_packets = 0 then 0.
       else float_of_int !violations /. float_of_int !rt_packets);
  }

(* --- E8: load sweep ------------------------------------------------------- *)

type sweep_row = {
  target_utilization : float;
  achieved_utilization : float;
  fifo_p999 : float;
  wfq_p999 : float;
}

let run_load_sweep ?(duration = Units.sim_duration_s) ?(seed = 42L)
    ?(points = [ 0.5; 0.65; 0.8; 0.9 ]) ?(j = 1) () =
  let sample results =
    (List.find
       (fun (r : Experiment.flow_result) -> r.Experiment.flow = 0)
       results)
      .Experiment.p999
  in
  let jobs =
    List.concat_map
      (fun target -> [ (target, Experiment.Fifo); (target, Experiment.Wfq) ])
      points
  in
  let runs =
    Ispn_exec.Pool.map ~j
      (fun (target, sched) ->
        (* Ten flows on a 1000 pkt/s link; ~2% of the offered load dies at
           the edge policer, so aim slightly high. *)
        let avg_rate_pps = target *. 1000. /. 10. /. 0.98 in
        let results, info =
          Experiment.run_single_link ~sched ~avg_rate_pps ~duration ~seed ()
        in
        (sample results, info))
      jobs
  in
  let rec regroup points runs =
    match (points, runs) with
    | [], [] -> []
    | target :: ps, (fifo_p999, info) :: (wfq_p999, _) :: rs ->
        {
          target_utilization = target;
          achieved_utilization = info.Experiment.utilization.(0);
          fifo_p999;
          wfq_p999;
        }
        :: regroup ps rs
    | _ -> assert false
  in
  regroup points runs

(* --- E9: in-band signaling latency ---------------------------------------- *)

type signaling_row = {
  sig_load : float;
  sig_setups : int;
  sig_mean_ms : float;
  sig_max_ms : float;
}

let run_signaling ?(duration = 120.) ?(seed = 42L)
    ?(loads = [ 0.; 0.5; 0.9 ]) () =
  List.map
    (fun load ->
      let engine = Engine.create () in
      let prng = Prng.create ~seed in
      let fab = Fabric.chain ~engine ~n_switches:5 () in
      let sig_net = Signaling.deploy ~fabric:fab () in
      (* Background datagram load on every link: on/off sources whose
         average hits the requested fraction. *)
      if load > 0. then
        for link = 0 to 3 do
          let flow = 700 + link in
          Fabric.install_flow fab ~flow ~ingress:link ~egress:(link + 1)
            ~sink:(fun _ -> ());
          let source =
            Ispn_traffic.Onoff.create ~engine ~prng:(Prng.split prng) ~flow
              ~avg_rate_pps:(load *. 1000.)
              ~peak_rate_pps:(Stdlib.min 2000. (load *. 2000.))
              ~emit:(fun p -> Fabric.inject fab ~at_switch:link p)
              ()
          in
          source.Ispn_traffic.Source.start ()
        done;
      (* One tiny guaranteed setup per second across the whole chain, torn
         down immediately after confirmation so reservations never pile
         up. *)
      let times = Ispn_util.Fvec.create () in
      let next_flow = ref 0 in
      let rec attempt () =
        let flow = !next_flow in
        incr next_flow;
        Signaling.setup sig_net ~flow ~ingress:0 ~egress:4
          (Spec.Guaranteed { clock_rate_bps = 10_000. })
          ~sink:(fun _ -> ())
          ~on_result:(fun result ->
            (match result with
            | Ok est ->
                Ispn_util.Fvec.push times est.Signaling.setup_time;
                Signaling.teardown sig_net ~flow
            | Error _ -> ()));
        if Engine.now engine +. 1. < duration then
          ignore (Engine.schedule_after engine ~delay:1. attempt)
      in
      attempt ();
      Engine.run engine ~until:duration;
      let n = Ispn_util.Fvec.length times in
      {
        sig_load = load;
        sig_setups = n;
        sig_mean_ms =
          (if n = 0 then 0.
           else 1000. *. Ispn_util.Fvec.fold ( +. ) 0. times /. float_of_int n);
        sig_max_ms =
          (if n = 0 then 0.
           else 1000. *. Ispn_util.Fvec.fold Stdlib.max 0. times);
      })
    loads

(* --- E10: packet-importance classes ---------------------------------------- *)

type importance_row = {
  imp_label : string;
  imp_received : int;
  imp_p999 : float;
  imp_mean : float;
}

let run_importance ?(duration = Units.sim_duration_s) ?(seed = 42L) () =
  let engine = Engine.create () in
  let prng = Prng.create ~seed in
  let sched_ref = ref None in
  let net =
    Network.chain ~engine ~n_switches:2 ~rate_bps:Units.link_rate_bps
      ~qdisc_of:(fun _ ->
        let pool = Qdisc.pool ~capacity:Units.buffer_packets in
        let st, q = Csz_sched.create ~pool () in
        sched_ref := Some st;
        q)
      ()
  in
  let sched = Option.get !sched_ref in
  (* The application's two subflows: every other packet is tagged less
     important.  Same generation process, adjacent priority classes. *)
  Csz_sched.set_predicted sched ~flow:0 ~cls:0;
  Csz_sched.set_predicted sched ~flow:1 ~cls:1;
  let probes = Array.init 2 (fun _ -> Probe.create ()) in
  let sources =
    Array.mapi
      (fun flow probe ->
        Network.install_flow net ~flow ~ingress:0 ~egress:1
          ~sink:(fun pkt -> Probe.sink probe ~engine pkt);
        let source =
          Ispn_traffic.Onoff.create ~engine ~prng:(Prng.split prng) ~flow
            ~avg_rate_pps:42.5
            ~emit:(fun pkt -> Network.inject net ~at_switch:0 pkt)
            ()
        in
        source.Ispn_traffic.Source.start ();
        source)
      probes
  in
  (* Heavy competing load in the lower class so the tiers actually bite. *)
  for flow = 10 to 18 do
    Csz_sched.set_predicted sched ~flow ~cls:1;
    Network.install_flow net ~flow ~ingress:0 ~egress:1 ~sink:(fun _ -> ());
    let tb =
      Ispn_traffic.Token_bucket.create ~rate_bps:85_000. ~depth_bits:50_000. ()
    in
    let policer =
      Ispn_traffic.Token_bucket.policer ~engine ~bucket:tb
        ~mode:Ispn_traffic.Token_bucket.Drop
        ~next:(fun pkt -> Network.inject net ~at_switch:0 pkt)
    in
    let source =
      Ispn_traffic.Onoff.create ~engine ~prng:(Prng.split prng) ~flow
        ~avg_rate_pps:95.
        ~emit:(Ispn_traffic.Token_bucket.admit_fn policer)
        ()
    in
    source.Ispn_traffic.Source.start ()
  done;
  Engine.run engine ~until:duration;
  ignore sources;
  List.mapi
    (fun flow probe ->
      {
        imp_label = (if flow = 0 then "important" else "less important");
        imp_received = Probe.received probe;
        imp_p999 =
          (if Probe.received probe = 0 then 0.
           else Probe.percentile_qdelay probe 99.9);
        imp_mean = Probe.mean_qdelay probe;
      })
    (Array.to_list probes)

(* --- Seed robustness ------------------------------------------------------ *)

type seeds_row = {
  seeds_sched : Experiment.sched;
  p999_mean : float;
  p999_min : float;
  p999_max : float;
}

let run_seed_robustness ?(duration = 300.)
    ?(seeds = [ 1L; 2L; 3L; 4L; 5L ]) ?(j = 1) () =
  let scheds = [ Experiment.Wfq; Experiment.Fifo; Experiment.Fifo_plus ] in
  (* One job per (scheduler, seed) pair — 15 independent simulations. *)
  let tails =
    Ispn_exec.Pool.map ~j
      (fun (sched, seed) ->
        let results, _ = Experiment.run_figure1 ~sched ~duration ~seed () in
        (List.find
           (fun (r : Experiment.flow_result) -> r.Experiment.flow = 0)
           results)
          .Experiment.p999)
      (List.concat_map
         (fun sched -> List.map (fun seed -> (sched, seed)) seeds)
         scheds)
  in
  let per_sched = List.length seeds in
  List.mapi
    (fun i sched ->
      let tails =
        List.filteri
          (fun k _ -> k >= i * per_sched && k < (i + 1) * per_sched)
          tails
      in
      let n = float_of_int (List.length tails) in
      {
        seeds_sched = sched;
        p999_mean = List.fold_left ( +. ) 0. tails /. n;
        p999_min = List.fold_left Stdlib.min infinity tails;
        p999_max = List.fold_left Stdlib.max neg_infinity tails;
      })
    scheds

(* --- Ablation: FIFO+ averaging gain -------------------------------------- *)

let run_gain_ablation ?(duration = Units.sim_duration_s) ?(seed = 42L)
    ?(gains = [ 1. /. 16.; 1. /. 256.; 1. /. 4096. ]) ?(j = 1) () =
  Ispn_exec.Pool.map ~j
    (fun gain ->
      let qdisc_of _engine _link =
        snd
          (Ispn_sched.Fifo_plus.create ~ewma_gain:gain
             ~pool:(Qdisc.pool ~capacity:Units.buffer_packets)
             ())
      in
      let results, _ = Experiment.run_figure1_custom ~qdisc_of ~duration ~seed () in
      let four_hop =
        List.find (fun (r : Experiment.flow_result) -> r.Experiment.flow = 0) results
      in
      (gain, four_hop))
    gains

(* --- E11: failover under injected faults ---------------------------------- *)

type failover_schedule = F_baseline | F_link_flap | F_control_loss | F_agent_crash

let failover_name = function
  | F_baseline -> "baseline"
  | F_link_flap -> "link-flap"
  | F_control_loss -> "control-loss"
  | F_agent_crash -> "agent-crash"

type failover_flow = { ff_flow : int; ff_requested : string; ff_final : string }

type failover_row = {
  fo_schedule : failover_schedule;
  fo_violation_rate : float;
  fo_lost : int;
  fo_retries : int;
  fo_abandoned : int;
  fo_crashes : int;
  fo_degraded : int;
  fo_reestablished : int;
  fo_reestablish_ms : float;
  fo_flows : failover_flow list;
  fo_series : Ispn_obs.Series.export option;
}

let run_failover ?(duration = 120.) ?(seed = 42L) ?(j = 1) ?series_interval () =
  let schedules = [ F_baseline; F_link_flap; F_control_loss; F_agent_crash ] in
  let class_targets = [| 0.008; 0.064 |] in
  let run_one schedule =
    let engine = Engine.create () in
    let prng = Prng.create ~seed in
    let fab = Fabric.chain ~engine ~n_switches:5 () in
    let n_links = Fabric.n_links fab in
    let sg =
      Signaling.deploy ~fabric:fab ~class_targets ~setup_timeout:0.02
        ~max_retries:6 ()
    in
    (* Delay hooks double as violation probes; they must keep feeding each
       agent's meter, which deploy wired to the same (single) hook slot. *)
    let rt_packets = ref 0 and violations = ref 0 in
    for link = 0 to n_links - 1 do
      let meter = Controller.meter (Signaling.controller sg ~link) ~link:0 in
      Csz_sched.set_delay_hook (Fabric.sched fab ~link) (fun ~cls delay ->
          if cls >= 0 && cls < Array.length class_targets then begin
            Meter.note_delay meter ~cls delay;
            incr rt_packets;
            if delay > class_targets.(cls) then incr violations
          end)
    done;
    (* The sampled timeline: the E11 story is the degradation ladder —
       established/degraded/reestablished counts and per-link drops as the
       fault windows open and close.  (Per-class delay histograms are not
       wired here: the single delay-hook slot is the violation probe
       above; the per-hop wait tails come off the dequeue taps instead.) *)
    let obs =
      match series_interval with
      | None -> None
      | Some interval ->
          let m = Ispn_obs.Metrics.create () in
          Engine.register_metrics engine m;
          for link = 0 to n_links - 1 do
            Link.register_metrics (Fabric.link fab link) m
              ~prefix:(Printf.sprintf "link.%d" link)
          done;
          Signaling.register_metrics sg m ();
          Experiment.register_arena_metrics m;
          let h = Ispn_obs.Hist.create ~metrics:m () in
          for link = 0 to n_links - 1 do
            let ch =
              Ispn_obs.Hist.channel h (Printf.sprintf "link.%d.wait" link)
            in
            Link.add_tap (Fabric.link fab link)
              (Tap.make
                 ~on_dequeue:(fun ~link:_ ~now:_ ~wait _ ->
                   Ispn_util.Loghist.add ch wait)
                 ())
          done;
          let s = Ispn_obs.Series.create ~interval ~metrics:m () in
          Engine.attach_series engine s;
          Some (s, h)
    in
    (* Two watched end-to-end real-time flows over the whole chain... *)
    let watched = [ (0, "guaranteed"); (1, "predicted") ] in
    Signaling.setup sg ~flow:0 ~ingress:0 ~egress:4
      ~own_bucket:{ Spec.rate_bps = 100_000.; depth_bits = 5_000. }
      (Spec.Guaranteed { clock_rate_bps = 300_000. })
      ~sink:(fun _ -> ())
      ~on_result:(function
        | Error _ -> ()
        | Ok est ->
            let src =
              Ispn_traffic.Cbr.create ~engine ~flow:0 ~rate_pps:100.
                ~emit:est.Signaling.emit ()
            in
            src.Ispn_traffic.Source.start ());
    Signaling.setup sg ~flow:1 ~ingress:0 ~egress:4
      (Spec.Predicted
         {
           bucket = { Spec.rate_bps = 85_000.; depth_bits = 20_000. };
           target_delay = 0.256;
           target_loss = 0.01;
         })
      ~sink:(fun _ -> ())
      ~on_result:(function
        | Error _ -> ()
        | Ok est ->
            let src =
              Ispn_traffic.Onoff.create ~engine ~prng:(Prng.split prng)
                ~flow:1 ~avg_rate_pps:85. ~emit:est.Signaling.emit ()
            in
            src.Ispn_traffic.Source.start ());
    (* ... one single-hop predicted flow per link, and datagram background
       load, so every link carries all three service tiers. *)
    for link = 0 to n_links - 1 do
      Signaling.setup sg ~flow:(10 + link) ~ingress:link ~egress:(link + 1)
        (Spec.Predicted
           {
             bucket = { Spec.rate_bps = 85_000.; depth_bits = 20_000. };
             target_delay = 0.064;
             target_loss = 0.01;
           })
        ~sink:(fun _ -> ())
        ~on_result:(function
          | Error _ -> ()
          | Ok est ->
              let src =
                Ispn_traffic.Onoff.create ~engine ~prng:(Prng.split prng)
                  ~flow:(10 + link) ~avg_rate_pps:85.
                  ~emit:est.Signaling.emit ()
              in
              src.Ispn_traffic.Source.start ());
      let flow = 700 + link in
      Fabric.install_flow fab ~flow ~ingress:link ~egress:(link + 1)
        ~sink:(fun _ -> ());
      let src =
        Ispn_traffic.Onoff.create ~engine ~prng:(Prng.split prng) ~flow
          ~avg_rate_pps:350.
          ~emit:(fun p -> Fabric.inject fab ~at_switch:link p)
          ()
      in
      src.Ispn_traffic.Source.start ()
    done;
    (* Short-lived probe setups across the chain keep the control plane
       exercised, so outages hit setups in flight (timeout -> retry). *)
    let next_probe = ref 1000 in
    let rec probe () =
      let flow = !next_probe in
      incr next_probe;
      Signaling.setup sg ~flow ~ingress:0 ~egress:4
        (Spec.Guaranteed { clock_rate_bps = 10_000. })
        ~sink:(fun _ -> ())
        ~on_result:(function
          | Ok _ -> Signaling.teardown sg ~flow
          | Error _ -> ());
      if Engine.now engine +. 2. < duration then
        ignore (Engine.schedule_after engine ~delay:2. probe)
    in
    probe ();
    (* The fault plan, scaled to the run length; all four schedules target
       mid-path link 1 / switch 1. *)
    let plan =
      match schedule with
      | F_baseline -> Ispn_faults.Plan.none
      | F_link_flap ->
          [
            Ispn_faults.Plan.Link_down
              { link = 1; at = 0.3 *. duration; duration = 3. };
            Ispn_faults.Plan.Link_down
              { link = 1; at = 0.6 *. duration; duration = 1. };
          ]
      | F_control_loss ->
          [
            Ispn_faults.Plan.Corrupt
              {
                link = 1;
                from_ = 0.2 *. duration;
                until = 0.8 *. duration;
                per_packet = 0.35;
              };
          ]
      | F_agent_crash ->
          [ Ispn_faults.Plan.Agent_crash { switch = 1; at = 0.4 *. duration } ]
    in
    let links = Array.init n_links (Fabric.link fab) in
    let _stats =
      Ispn_faults.Inject.apply ~engine ~links
        ~on_agent_crash:(fun ~switch -> Signaling.crash_agent sg ~switch)
        ~corrupt_seed:(Int64.add seed 77L) plan
    in
    (* After the crash wiped switch 1's book, a newcomer grabs most of the
       freed capacity before the victims' re-setup lands — forcing the
       degradation ladder to actually engage on re-admission. *)
    (match schedule with
    | F_agent_crash ->
        ignore
          (Engine.schedule engine ~at:((0.4 *. duration) +. 0.001) (fun () ->
               Signaling.setup sg ~flow:90 ~ingress:1 ~egress:2
                 (Spec.Guaranteed { clock_rate_bps = 500_000. })
                 ~sink:(fun _ -> ())
                 ~on_result:(fun _ -> ())))
    | F_baseline | F_link_flap | F_control_loss -> ());
    Engine.run engine ~until:duration;
    let lost = ref 0 in
    for link = 0 to n_links - 1 do
      lost := !lost + Link.dropped (Fabric.link fab link)
    done;
    {
      fo_schedule = schedule;
      fo_violation_rate =
        (if !rt_packets = 0 then 0.
         else float_of_int !violations /. float_of_int !rt_packets);
      fo_lost = !lost;
      fo_retries = Signaling.retries sg;
      fo_abandoned = Signaling.abandoned_count sg;
      fo_crashes = Signaling.crash_count sg;
      fo_degraded = Signaling.degraded_count sg;
      fo_reestablished = Signaling.reestablished_count sg;
      fo_reestablish_ms = 1000. *. Signaling.mean_reestablish_latency sg;
      fo_flows =
        List.map
          (fun (flow, requested) ->
            {
              ff_flow = flow;
              ff_requested = requested;
              ff_final =
                (match Signaling.service_level sg ~flow with
                | Some l -> Signaling.level_name l
                | None -> "gone");
            })
          watched;
      fo_series =
        Option.map (fun (s, h) -> Ispn_obs.Series.export ~hist:h s) obs;
    }
  in
  Ispn_exec.Pool.map ~j run_one schedules

(* --- E12: flight-recorder trace / per-hop attribution -------------------- *)

type trace_experiment = T_table1 | T_table2 | T_table3

let trace_experiment_name = function
  | T_table1 -> "table1"
  | T_table2 -> "table2"
  | T_table3 -> "table3"

type trace_hop = { th_link : int; th_queueing : float; th_transmission : float }

type trace_row = {
  tr_flow : int;
  tr_seq : int;
  tr_hops : trace_hop list;
  tr_queueing : float;
  tr_reported : float;
}

type trace_result = {
  tre_experiment : trace_experiment;
  tre_events : int;
  tre_capacity : int;
  tre_delivered : int;
  tre_complete : int;
  tre_rows : trace_row list;
}

let run_trace ?(experiment = T_table2) ?(worst = 5) ?(capacity = 1 lsl 20)
    ?recorder ?(duration = Units.sim_duration_s) ?(seed = 42L) () =
  (* A caller-supplied ring (e.g. the CLI's --dump) wins over [capacity];
     it is left filled after the run so it can be exported. *)
  let recorder =
    match recorder with
    | Some r -> r
    | None -> Ispn_obs.Recorder.create ~capacity ()
  in
  (match experiment with
  | T_table1 ->
      ignore
        (Experiment.run_single_link ~sched:Experiment.Fifo ~duration ~seed
           ~recorder ()
          : Experiment.flow_result list * Experiment.run_info)
  | T_table2 ->
      ignore
        (Experiment.run_figure1 ~sched:Experiment.Fifo_plus ~duration ~seed
           ~recorder ()
          : Experiment.flow_result list * Experiment.run_info)
  | T_table3 ->
      ignore
        (Experiment.run_table3 ~duration ~seed ~recorder ()
          : Experiment.t3_result));
  let pt =
    Units.packet_times ~link_rate_bps:Units.link_rate_bps
      ~packet_bits:Units.packet_bits
  in
  let bds = Ispn_obs.Attrib.breakdowns recorder in
  let complete =
    List.filter (fun b -> b.Ispn_obs.Attrib.bd_complete) bds
  in
  let rows =
    List.map
      (fun b ->
        let open Ispn_obs.Attrib in
        {
          tr_flow = b.bd_flow;
          tr_seq = b.bd_seq;
          tr_hops =
            List.map
              (fun h ->
                {
                  th_link = h.hop_link;
                  th_queueing = pt h.queueing;
                  th_transmission = pt h.transmission;
                })
              b.bd_hops;
          tr_queueing = pt b.bd_queueing;
          tr_reported = pt b.bd_reported;
        })
      (Ispn_obs.Attrib.worst ~n:worst recorder)
  in
  {
    tre_experiment = experiment;
    tre_events = Ispn_obs.Recorder.length recorder;
    tre_capacity = Ispn_obs.Recorder.capacity recorder;
    tre_delivered = List.length bds;
    tre_complete = List.length complete;
    tre_rows = rows;
  }

(* --- E13: session churn under soft-state signaling ------------------------ *)

type churn_scenario = C_clean | C_lossy_teardown | C_agent_crash | C_link_flap

let churn_name = function
  | C_clean -> "clean"
  | C_lossy_teardown -> "lossy-teardown"
  | C_agent_crash -> "agent-crash"
  | C_link_flap -> "link-flap"

type churn_row = {
  ch_scenario : churn_scenario;
  ch_offered : int;
  ch_established : int;
  ch_refused : int;
  ch_blocking : float;
  ch_departed : int;
  ch_active_end : int;
  ch_expired : int;
  ch_retries : int;
  ch_abandoned : int;
  ch_signaling_pps : float;
  ch_refresh_share : float;
  ch_slot_hwm : int;
  ch_recycled : int;
  ch_leaked : int;
  ch_check : Ispn_check.Audit.summary option;
  ch_series : Ispn_obs.Series.export option;
}

(* One open-loop session's control state in the workload harness; the slot
   (= flow id) is recycled through an [Idpool] once every agent's soft
   state has provably forgotten the session. *)
type churn_session = {
  mutable cs_st : [ `Pending | `Active | `Gone ];
  mutable cs_wants_out : bool;  (* holding ended while setup in flight *)
  mutable cs_departed_at : float;
  mutable cs_src : Ispn_traffic.Source.t option;
}

let run_churn ?(duration = 120.) ?(seed = 42L) ?(lambda = 420.) ?(j = 1)
    ?(check = false) ?series_interval () =
  let scenarios = [ C_clean; C_lossy_teardown; C_agent_crash; C_link_flap ] in
  let refresh_interval = 3.0 and lifetime_epochs = 3 in
  let lifetime = refresh_interval *. float_of_int lifetime_epochs in
  (* A departed session's residue anywhere is expired at most one sweep
     past its last stamp's lifetime; only then may the slot be reused, or
     a recycled flow id could collide with its predecessor's reservations. *)
  let reclaim = lifetime +. (2.1 *. refresh_interval) in
  let run_one scenario =
    let engine = Engine.create () in
    let prng = Prng.create ~seed in
    let fab = Fabric.chain ~engine ~n_switches:5 () in
    let n_links = Fabric.n_links fab in
    let sg =
      Signaling.deploy ~fabric:fab ~setup_timeout:0.02 ~max_retries:4
        ~refresh_interval ~lifetime_epochs ()
    in
    let pool = Ispn_util.Idpool.create ~capacity:1024 () in
    let audit = if check then Some (Ispn_check.Audit.create ()) else None in
    (match audit with
    | None -> ()
    | Some a ->
        for link = 0 to n_links - 1 do
          Ispn_check.Audit.attach_link a (Fabric.link fab link)
        done;
        Signaling.register_audit sg a;
        Ispn_check.Audit.register_flow_state a ~label:"flow-slots"
          ~admitted:(fun () -> Ispn_util.Idpool.takes pool)
          ~released:(fun () -> Ispn_util.Idpool.releases pool)
          ~live:(fun () -> Ispn_util.Idpool.in_use pool)
          ~bad:(fun () ->
            Ispn_util.Idpool.bad_releases pool
            + Ispn_util.Idpool.stale_releases pool)
          ());
    (* The sampled timeline: E13's headline dynamic is the expiry-reclaim
       wave (live reservations vs. flow slots in use vs. control traffic
       after a fault window), so the series registers the engine, every
       link, the signaling counters, the arena gauge and the slot pool on
       its own registry, plus a per-hop wait histogram off the dequeue
       taps.  All of it is per-job state, merged by the harness in
       canonical job order. *)
    let obs =
      match series_interval with
      | None -> None
      | Some interval ->
          let m = Ispn_obs.Metrics.create () in
          Engine.register_metrics engine m;
          for link = 0 to n_links - 1 do
            Link.register_metrics (Fabric.link fab link) m
              ~prefix:(Printf.sprintf "link.%d" link)
          done;
          Signaling.register_metrics sg m ();
          Experiment.register_arena_metrics m;
          Ispn_obs.Metrics.register_int m "flows.in_use" (fun () ->
              Ispn_util.Idpool.in_use pool);
          Ispn_obs.Metrics.register_int m "flows.hwm" (fun () ->
              Ispn_util.Idpool.hwm pool);
          Ispn_obs.Metrics.register_int m "flows.takes" (fun () ->
              Ispn_util.Idpool.takes pool);
          let h = Ispn_obs.Hist.create ~metrics:m () in
          for link = 0 to n_links - 1 do
            let ch =
              Ispn_obs.Hist.channel h (Printf.sprintf "link.%d.wait" link)
            in
            Link.add_tap (Fabric.link fab link)
              (Tap.make
                 ~on_dequeue:(fun ~link:_ ~now:_ ~wait _ ->
                   Ispn_util.Loghist.add ch wait)
                 ())
          done;
          let s = Ispn_obs.Series.create ~interval ~metrics:m () in
          Engine.attach_series engine s;
          Some (s, h)
    in
    (* Steady datagram background on every link, so signaling and data
       always compete for the wire (ids far above the recycled slot range). *)
    for link = 0 to n_links - 1 do
      let flow = 910_000 + link in
      Fabric.install_flow fab ~flow ~ingress:link ~egress:(link + 1)
        ~sink:Packet.free;
      let src =
        Ispn_traffic.Onoff.create ~engine ~prng:(Prng.split prng) ~flow
          ~avg_rate_pps:200.
          ~emit:(fun p -> Fabric.inject fab ~at_switch:link p)
          ()
      in
      src.Ispn_traffic.Source.start ()
    done;
    let sessions : (int, churn_session) Hashtbl.t = Hashtbl.create 4096 in
    let offered = ref 0 in
    let release_later flow =
      ignore
        (Engine.schedule_after engine ~delay:reclaim (fun () ->
             Ispn_util.Idpool.release pool ~id:flow))
    in
    let depart s flow =
      (match s.cs_src with
      | Some src -> src.Ispn_traffic.Source.stop ()
      | None -> ());
      s.cs_src <- None;
      s.cs_st <- `Gone;
      s.cs_departed_at <- Engine.now engine;
      Signaling.depart sg ~flow;
      release_later flow
    in
    (* The open-loop workload: Poisson arrivals, Pareto holding times, a
       guaranteed / predicted / datagram service mix, uniform spans on the
       chain.  Every random draw comes from the one arrival-ordered PRNG,
       so the workload is identical across scenarios and [-j] widths. *)
    let rec arrival () =
      incr offered;
      let flow = Ispn_util.Idpool.take pool in
      let ingress = Prng.int prng ~bound:(n_links - 1 + 1) in
      let egress = ingress + 1 + Prng.int prng ~bound:(n_links - ingress) in
      let u = Prng.float prng in
      let spec, own_bucket =
        if u < 0.15 then (
          let rate = Dist.uniform prng ~lo:2_000. ~hi:20_000. in
          ( Spec.Guaranteed { clock_rate_bps = rate },
            Some { Spec.rate_bps = rate; depth_bits = 4_000. } ))
        else if u < 0.40 then
          ( Spec.Predicted
              {
                bucket =
                  {
                    Spec.rate_bps = Dist.uniform prng ~lo:5_000. ~hi:30_000.;
                    depth_bits = 10_000.;
                  };
                target_delay = 0.256;
                target_loss = 0.01;
              },
            None )
        else (Spec.Datagram, None)
      in
      let holding = Dist.pareto prng ~shape:1.5 ~scale:(2. /. 3.) in
      let with_source = Dist.bernoulli prng ~p:0.01 in
      let s =
        { cs_st = `Pending; cs_wants_out = false; cs_departed_at = 0.;
          cs_src = None }
      in
      Hashtbl.replace sessions flow s;
      Signaling.setup sg ~flow ~ingress ~egress ?own_bucket spec
        ~sink:Packet.free
        ~on_result:(function
          | Error _ ->
              (* Refusals roll back synchronously: the slot has no residue
                 anywhere, but it still waits out the quarantine. *)
              s.cs_st <- `Gone;
              s.cs_departed_at <- Engine.now engine;
              release_later flow
          | Ok est ->
              if s.cs_wants_out then depart s flow
              else begin
                s.cs_st <- `Active;
                if with_source then begin
                  let src =
                    Ispn_traffic.Cbr.create ~engine ~flow ~rate_pps:50.
                      ~emit:est.Signaling.emit ()
                  in
                  s.cs_src <- Some src;
                  src.Ispn_traffic.Source.start ()
                end
              end);
      ignore
        (Engine.schedule_after engine ~delay:holding (fun () ->
             match s.cs_st with
             | `Pending -> s.cs_wants_out <- true
             | `Active -> depart s flow
             | `Gone -> ()));
      let gap = Dist.exponential prng ~mean:(1. /. lambda) in
      if Engine.now engine +. gap < duration then
        ignore (Engine.schedule_after engine ~delay:gap arrival)
    in
    ignore
      (Engine.schedule_after engine
         ~delay:(Dist.exponential prng ~mean:(1. /. lambda))
         arrival);
    (* Faults, scaled to the run: the lossy window eats teardown and
       refresh legs mid-path (the soft-state reclaim path), the crashes
       wipe whole agents, the flap stresses setups in flight. *)
    let plan =
      match scenario with
      | C_clean -> Ispn_faults.Plan.none
      | C_lossy_teardown ->
          [
            Ispn_faults.Plan.Corrupt
              {
                link = 1;
                from_ = 0.15 *. duration;
                until = 0.85 *. duration;
                per_packet = 0.3;
              };
            Ispn_faults.Plan.Corrupt
              {
                link = 2;
                from_ = 0.3 *. duration;
                until = 0.7 *. duration;
                per_packet = 0.3;
              };
          ]
      | C_agent_crash ->
          [
            Ispn_faults.Plan.Agent_crash { switch = 1; at = 0.4 *. duration };
            Ispn_faults.Plan.Agent_crash { switch = 2; at = 0.7 *. duration };
          ]
      | C_link_flap ->
          [
            Ispn_faults.Plan.Link_down
              { link = 2; at = 0.3 *. duration; duration = 3. };
            Ispn_faults.Plan.Link_down
              { link = 2; at = 0.65 *. duration; duration = 1. };
          ]
    in
    let links = Array.init n_links (Fabric.link fab) in
    let _stats =
      Ispn_faults.Inject.apply ~engine ~links
        ~on_agent_crash:(fun ~switch -> Signaling.crash_agent sg ~switch)
        ~corrupt_seed:(Int64.add seed 99L) plan
    in
    Engine.run engine ~until:duration;
    (* The leak sweep: a reservation still held anywhere for a session that
       departed more than the reclaim horizon ago was neither torn down nor
       expired — exactly what soft state promises cannot happen. *)
    let now = Engine.now engine in
    let leaked = ref 0 in
    for link = 0 to n_links - 1 do
      List.iter
        (fun flow ->
          match Hashtbl.find_opt sessions flow with
          | Some s
            when s.cs_st = `Gone && now -. s.cs_departed_at > reclaim ->
              incr leaked
          | Some _ | None -> ())
        (Controller.live_flows (Signaling.controller sg ~link))
    done;
    let established = Signaling.total_established sg in
    let refused = Signaling.refused_count sg in
    let decisions = established + refused in
    let ctrl_pkts = Signaling.control_packets_sent sg in
    {
      ch_scenario = scenario;
      ch_offered = !offered;
      ch_established = established;
      ch_refused = refused;
      ch_blocking =
        (if decisions = 0 then 0.
         else float_of_int refused /. float_of_int decisions);
      ch_departed = Signaling.teardown_count sg;
      ch_active_end = Signaling.established_count sg;
      ch_expired = Signaling.expired_count sg;
      ch_retries = Signaling.retries sg;
      ch_abandoned = Signaling.abandoned_count sg;
      ch_signaling_pps = float_of_int ctrl_pkts /. duration;
      ch_refresh_share =
        (if ctrl_pkts = 0 then 0.
         else
           float_of_int (Signaling.refresh_packets_sent sg)
           /. float_of_int ctrl_pkts);
      ch_slot_hwm = Ispn_util.Idpool.hwm pool;
      ch_recycled = Ispn_util.Idpool.takes pool - Ispn_util.Idpool.hwm pool;
      ch_leaked = !leaked;
      ch_check = Option.map Ispn_check.Audit.finalize audit;
      ch_series =
        Option.map (fun (s, h) -> Ispn_obs.Series.export ~hist:h s) obs;
    }
  in
  Ispn_exec.Pool.map ~j run_one scenarios

(* --- E14: sharded parking-lot at scale ------------------------------------ *)

type scale_row = {
  sc_span : int;
  sc_flows : int;
  sc_delivered : int;
  sc_mean_delay : float;
  sc_max_delay : float;
  sc_mean_qdelay : float;
}

type scale_report = {
  sc_rows : scale_row list;
  sc_switches : int;
  sc_links : int;
  sc_flow_count : int;
  sc_delivered_total : int;
  sc_sent : int;
  sc_dropped : int;
  sc_shards : int;
  sc_windows : int;
  sc_lookahead : float;
  sc_cut_links : int;
  sc_exchanged : int;
  sc_fired : int;
  sc_check : Ispn_check.Audit.summary option;
  sc_metrics : Ispn_obs.Metrics.snapshot option;
  sc_series : Ispn_obs.Series.export option;
}

(* Merge per-shard audit summaries: counters sum, the invariant catalogue
   is fixed-order in every summary, samples concatenate in shard order. *)
let merge_summaries (a : Ispn_check.Audit.summary)
    (b : Ispn_check.Audit.summary) : Ispn_check.Audit.summary =
  {
    events = a.events + b.events;
    checks = a.checks + b.checks;
    violations = a.violations + b.violations;
    invariants =
      List.map2
        (fun (x : Ispn_check.Audit.inv_summary)
             (y : Ispn_check.Audit.inv_summary) ->
          {
            Ispn_check.Audit.inv_name = x.inv_name;
            inv_checks = x.inv_checks + y.inv_checks;
            inv_violations = x.inv_violations + y.inv_violations;
          })
        a.invariants b.invariants;
    samples = a.samples @ b.samples;
  }

let run_scale ?(duration = 60.) ?(seed = 42L) ?(shards = 1) ?(regions = 4)
    ?(per_region = 5) ?(flows = 2000) ?(avg_rate_pps = 8.) ?(check = false)
    ?(metrics = false) ?series_interval () =
  if regions < 1 || per_region < 2 then
    invalid_arg "run_scale: need >= 1 region of >= 2 switches";
  if shards < 1 || shards > regions then
    invalid_arg "run_scale: shards must be in [1, regions]";
  if flows < 1 then invalid_arg "run_scale: need >= 1 flow";
  let n_switches = regions * per_region in
  (* Contiguous blocks of regions per shard: the only cut links are the
     backbone links between regions owned by different shards. *)
  let shard_of =
    Array.init n_switches (fun s -> s / per_region * shards / regions)
  in
  let link_rate_bps = 10. *. Units.link_rate_bps in
  (* A parking-lot chain: switch i <-> i+1, duplex.  Backbone links (the
     region boundaries) carry ~10 ms of propagation, access links ~1 ms;
     every link gets a distinct delay (a small index-proportional skew) so
     no two paths can produce exact-float arrival ties — the determinism
     contract's requirement (Shardnet doc). *)
  let link_specs =
    Array.init
      (2 * (n_switches - 1))
      (fun li ->
        let i = li / 2 in
        let backbone = (i + 1) mod per_region = 0 in
        let base = if backbone then 10e-3 else 1e-3 in
        let prop = base *. (1. +. (0.003 *. float_of_int li)) in
        let src, dst = if li land 1 = 0 then (i, i + 1) else (i + 1, i) in
        {
          Shardnet.l_src = src;
          l_dst = dst;
          l_rate_bps = link_rate_bps;
          l_prop_delay = prop;
          l_qdisc =
            (fun () ->
              let pool = Qdisc.pool ~capacity:Units.buffer_packets in
              Ispn_sched.Fifo.create ~pool ());
        })
  in
  (* Per-flow PRNG streams split off the master on this domain, in flow
     order, before any domain spawns — shard-count-independent. *)
  let prng = Prng.create ~seed in
  let flow_src = Array.make flows 0 in
  let flow_dst = Array.make flows 0 in
  let flow_specs =
    Array.init flows (fun f ->
        let fp = Prng.split prng in
        let src = Prng.int prng ~bound:n_switches in
        let d = Prng.int prng ~bound:(n_switches - 1) in
        let dst = if d >= src then d + 1 else d in
        flow_src.(f) <- src;
        flow_dst.(f) <- dst;
        {
          Shardnet.f_src = src;
          f_dst = dst;
          f_driver =
            (fun engine emit ->
              let source =
                Ispn_traffic.Onoff.create ~engine ~prng:fp ~flow:f
                  ~avg_rate_pps ~packet_bits:Units.packet_bits ~emit ()
              in
              source.Ispn_traffic.Source.start ());
        })
  in
  let spec =
    {
      Shardnet.n_switches;
      n_shards = shards;
      shard_of;
      links = link_specs;
      flows = flow_specs;
    }
  in
  (* One audit context per shard: created here, mutated only inside its
     shard's domain (the [on_link] hook runs there), finalized after the
     join — summaries are plain data and merge by summation. *)
  let audits =
    if check then Some (Array.init shards (fun _ -> Ispn_check.Audit.create ()))
    else None
  in
  (* Observability mirrors the audit pattern: one registry (and, behind
     [--series], one sampler + histogram set) per shard, created here,
     mutated only inside the owning domain, merged in canonical order
     after the join.  Only per-link instruments are registered — the
     [engine.*] / [arena.*] gauges of the unsharded sections are
     per-domain artifacts and would break the every-[--shards]-width
     byte-identity of the merged output. *)
  let want_obs = metrics || series_interval <> None in
  let regs =
    if want_obs then
      Some (Array.init shards (fun _ -> Ispn_obs.Metrics.create ()))
    else None
  in
  let hists =
    match (series_interval, regs) with
    | Some _, Some regs ->
        Some (Array.map (fun m -> Ispn_obs.Hist.create ~metrics:m ()) regs)
    | _ -> None
  in
  let series =
    match (series_interval, regs) with
    | Some interval, Some regs ->
        Some
          (Array.map
             (fun m -> Ispn_obs.Series.create ~interval ~metrics:m ())
             regs)
    | _ -> None
  in
  let on_link =
    if audits = None && not want_obs then None
    else
      Some
        (fun ~shard lk ->
          (match audits with
          | Some a -> Ispn_check.Audit.attach_link a.(shard) lk
          | None -> ());
          (match regs with
          | Some regs ->
              Ispn_sim.Link.register_metrics lk regs.(shard)
                ~prefix:(Printf.sprintf "link.%d" (Ispn_sim.Link.id lk))
          | None -> ());
          match hists with
          | Some hists ->
              let ch =
                Ispn_obs.Hist.channel hists.(shard)
                  (Printf.sprintf "link.%d.wait" (Ispn_sim.Link.id lk))
              in
              Ispn_sim.Link.add_tap lk
                (Tap.make
                   ~on_dequeue:(fun ~link:_ ~now:_ ~wait _ ->
                     Ispn_util.Loghist.add ch wait)
                   ())
          | None -> ())
  in
  let on_shard =
    Option.map
      (fun series ~shard engine -> Engine.attach_series engine series.(shard))
      series
  in
  let res = Shardnet.run ?on_link ?on_shard ~until:duration spec in
  (* Rows bucket flows by regions crossed; every field is a sum or max of
     shard-count-independent per-flow results, so stdout stays identical
     at every [shards]. *)
  let pt = Units.packet_times ~link_rate_bps ~packet_bits:Units.packet_bits in
  let rows =
    List.init regions (fun span ->
        let fs = ref 0
        and del = ref 0
        and dsum = ref 0.
        and dmax = ref 0.
        and qsum = ref 0. in
        for f = 0 to flows - 1 do
          let s =
            abs ((flow_dst.(f) / per_region) - (flow_src.(f) / per_region))
          in
          if s = span then begin
            incr fs;
            let st = res.Shardnet.r_flows.(f) in
            del := !del + st.Shardnet.f_delivered;
            dsum := !dsum +. st.Shardnet.f_delay_sum;
            if st.Shardnet.f_delay_max > !dmax then
              dmax := st.Shardnet.f_delay_max;
            qsum := !qsum +. st.Shardnet.f_qdelay_sum
          end
        done;
        {
          sc_span = span;
          sc_flows = !fs;
          sc_delivered = !del;
          sc_mean_delay =
            (if !del = 0 then 0. else pt (!dsum /. float_of_int !del));
          sc_max_delay = pt !dmax;
          sc_mean_qdelay =
            (if !del = 0 then 0. else pt (!qsum /. float_of_int !del));
        })
  in
  let sent = ref 0 and dropped = ref 0 in
  Array.iter
    (fun (k : Shardnet.link_stat) ->
      sent := !sent + k.Shardnet.k_sent;
      dropped := !dropped + k.Shardnet.k_dropped)
    res.Shardnet.r_links;
  let delivered_total =
    Array.fold_left
      (fun acc (s : Shardnet.flow_stat) -> acc + s.Shardnet.f_delivered)
      0 res.Shardnet.r_flows
  in
  {
    sc_rows = rows;
    sc_switches = n_switches;
    sc_links = Array.length link_specs;
    sc_flow_count = flows;
    sc_delivered_total = delivered_total;
    sc_sent = !sent;
    sc_dropped = !dropped;
    sc_shards = res.Shardnet.r_shards;
    sc_windows = res.Shardnet.r_windows;
    sc_lookahead = res.Shardnet.r_lookahead;
    sc_cut_links = res.Shardnet.r_cut_links;
    sc_exchanged = res.Shardnet.r_drained;
    sc_fired = res.Shardnet.r_fired;
    sc_check =
      Option.map
        (fun audits ->
          let summaries =
            Array.to_list (Array.map Ispn_check.Audit.finalize audits)
          in
          List.fold_left merge_summaries (List.hd summaries)
            (List.tl summaries))
        audits;
    sc_metrics =
      (* Every instrument name carries its global link id and each link
         lives in exactly one shard, so concatenating the per-shard
         snapshots and re-sorting by name is the canonical merge. *)
      (if metrics then
         Option.map
           (fun regs ->
             List.sort
               (fun (a, _) (b, _) -> compare a b)
               (List.concat_map Ispn_obs.Metrics.snapshot
                  (Array.to_list regs)))
           regs
       else None);
    sc_series =
      Option.map
        (fun series ->
          let exports =
            Array.to_list
              (Array.mapi
                 (fun s t ->
                   let hist = Option.map (fun h -> h.(s)) hists in
                   Ispn_obs.Series.export ?hist t)
                 series)
          in
          let e0 = List.hd exports in
          (* Samplers tick on the same deterministic grid in every shard
             (armed at t=0, engines all run to [duration]). *)
          List.iter
            (fun (e : Ispn_obs.Series.export) ->
              assert (e.Ispn_obs.Series.ex_times = e0.Ispn_obs.Series.ex_times))
            exports;
          {
            e0 with
            Ispn_obs.Series.ex_columns =
              List.sort
                (fun (a, _) (b, _) -> compare a b)
                (List.concat_map
                   (fun (e : Ispn_obs.Series.export) ->
                     e.Ispn_obs.Series.ex_columns)
                   exports);
            ex_hists =
              List.sort
                (fun (a, _) (b, _) -> compare a b)
                (List.concat_map
                   (fun (e : Ispn_obs.Series.export) ->
                     e.Ispn_obs.Series.ex_hists)
                   exports);
          })
        series;
  }
