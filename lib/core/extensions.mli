(** Extension experiments beyond the paper's three tables.

    These probe the claims the paper makes in prose (Sections 5, 9, 10 and
    11) but does not tabulate: the related-work scheduler comparison, the
    measurement-based admission control conjecture, the adaptive-vs-rigid
    play-back conjecture of Section 12, the isolation/sharing argument with
    a misbehaving source, the Section 10 late-discard option, and the
    FIFO+ averaging-gain ablation this reproduction's DESIGN.md calls out.

    Runners that fan out independent simulations ({!run_bakeoff},
    {!run_admission}, {!run_load_sweep}, {!run_seed_robustness},
    {!run_gain_ablation}) take [?j] (default 1), the number of domains to
    spread the jobs over via {!Ispn_exec.Pool} — results are bit-identical
    for every [j]. *)

(** {2 E1: scheduler bake-off on the Table-2 workload} *)

type bakeoff_sched =
  | B_wfq
  | B_fifo
  | B_mc_fifo
      (** Plain FIFO shared by the path-length classes, distinguished by
          its Jiang-Misra per-class analytic bound. *)
  | B_fifo_plus
  | B_virtual_clock
  | B_edf  (** Equal per-hop budgets — degenerates to FIFO. *)
  | B_drr
  | B_wrr  (** Packet-counted weighted round robin (Constantin et al.). *)
  | B_rr_groups  (** The Jacobson-Floyd per-group round robin. *)
  | B_cbs
      (** TSN Credit-Based Shaper, classes A/B by path length
          (Mohammadpour et al.); non-work-conserving. *)
  | B_ats
      (** Asynchronous Traffic Shaping: interleaved regulators before a
          strict-priority core (Mohammadpour et al.);
          non-work-conserving. *)
  | B_stop_and_go  (** Non-work-conserving framing (Golestani). *)
  | B_hrr  (** Non-work-conserving rate control (Kalmanek et al.). *)
  | B_jitter_edd  (** Non-work-conserving jitter cancellation (Verma et al.). *)

val bakeoff_name : bakeoff_sched -> string

val bakeoff_bound_kind : bakeoff_sched -> Ispn_check.Audit.bound_kind option
(** The audit invariant a scheduler's analytic bound is accounted to —
    [Some] exactly for the four bounded shapers. *)

val bakeoff_bounds : bakeoff_sched -> (int * float) list option
(** End-to-end analytic queueing-delay bounds for the modern-shaper rows,
    as [(flow, bound_s)] over the 22 Figure-1 flows — [None] for the
    classic schedulers, which publish no such closed form here.  Pure
    arithmetic on the Figure-1 constants via [Ispn_util.Analytic]:
    per-hop service-curve bounds summed along the path, with token-bucket
    bursts grown by [rate * hop_bound] per hop (except ATS, whose
    regulators re-shape every hop). *)

type bakeoff_row = {
  bk_sched : bakeoff_sched;
  bk_results : Experiment.flow_result list;
  bk_bounds : (int * float) list option;
      (** {!bakeoff_bounds} of the row's scheduler. *)
  bk_check : Ispn_check.Audit.summary option;
      (** Present when run with [~check:true]: the per-run audit, with
          every delivered packet of a bounded scheduler checked against
          its registered end-to-end bound (invariants [cbs-bound],
          [ats-bound], [wrr-bound], [mcfifo-bound]). *)
}

val run_bakeoff :
  ?duration:float ->
  ?seed:int64 ->
  ?j:int ->
  ?check:bool ->
  ?scheds:bakeoff_sched list ->
  unit ->
  bakeoff_row list
(** Figure-1 workload under each scheduler in [scheds] (default: the full
    table, in row order); results per flow as in
    {!Experiment.run_figure1}.  With [~check:true] each job attaches an
    [Ispn_check.Audit] context and registers the scheduler's analytic
    bounds, so the summaries prove measured delay <= bound per delivered
    packet; bounds are computed (and printable) either way, keeping
    default stdout identical. *)

(** {2 E2: admission control policies under dynamic load} *)

type admission_policy =
  | Measured  (** The paper's Section 9 rule ({!Ispn_admission.Controller}). *)
  | Worst_case  (** Classic: admit on declared token-bucket sums only. *)
  | Open_door  (** No admission control at all. *)

val policy_name : admission_policy -> string

type admission_result = {
  policy : admission_policy;
  requests : int;
  accepted : int;
  mean_utilization : float;  (** Mean link utilization over the run. *)
  violation_rate : float;
      (** Fraction of predicted-service packets whose per-switch queueing
          delay exceeded their class target [D_i]. *)
  net_drop_rate : float;  (** Buffer drops / packets offered to the net. *)
}

val run_admission :
  ?duration:float -> ?seed:int64 -> ?arrival_rate:float ->
  ?mean_holding:float -> ?j:int -> unit -> admission_result list
(** Single 1 Mbit/s link; predicted-service flows arrive Poisson
    ([arrival_rate] per second, default 0.5), hold for an exponential time
    (default 60 s) and depart.  Each run uses identical arrival/holding
    randomness so the three policies face the same offered load. *)

(** {2 E3: adaptive vs. rigid play-back clients} *)

type playback_result = {
  client : string;  (** "rigid" or "adaptive". *)
  mean_point : float;  (** Mean play-back point, packet-transmission times. *)
  app_loss_rate : float;  (** Fraction of packets missing the point. *)
}

val run_playback :
  ?duration:float -> ?seed:int64 -> unit -> playback_result list
(** The Figure-1 FIFO+ network; the four-hop flow feeds three parallel
    clients: rigid (play-back point at the advertised bound), adaptive
    (windowed 99th-percentile tracker) and VAT-style (exponential filters
    with spike detection). *)

(** {2 E6: jitter shifting between priority classes} *)

type cascade_row = {
  cascade_class : string;  (** "class 0" ... or "datagram". *)
  c_mean : float;  (** Per-hop queueing delay, packet times. *)
  c_p999 : float;
}

val run_cascade :
  ?duration:float -> ?seed:int64 -> ?n_classes:int -> unit ->
  cascade_row list
(** One link, [n_classes] (default 4) predicted classes with identical
    on/off load per class plus datagram background: Section 7's cascade —
    each class absorbs the jitter of the classes above it, so delay tails
    grow monotonically down the priority ladder. *)

(** {2 E4: isolation versus sharing with a misbehaving source} *)

type isolation_row = {
  iso_sched : string;
  honest_mean : float;
  honest_p999 : float;
  cheat_mean : float;
  cheat_p999 : float;
}

val run_isolation :
  ?duration:float -> ?seed:int64 -> unit -> isolation_row list
(** Nine conforming on/off flows share a link with one source sending at
    three times its declared rate, under FIFO (sharing only), WFQ
    (isolation), and FIFO behind edge policing (the CSZ answer: isolation
    by enforcement, sharing in the queue). *)

(** {2 E5: Section 10 late-packet discard} *)

type discard_result = {
  threshold : float option;  (** Offset threshold in seconds. *)
  p999_4hop : float;
  discarded_fraction : float;
}

val run_discard :
  ?duration:float -> ?seed:int64 -> unit -> discard_result list
(** Figure-1 all-FIFO+ network, with and without discarding packets whose
    accumulated offset marks them as hopelessly late. *)

(** {2 E7: Table 3's load through the full service stack} *)

type e2e_row = {
  e2e_label : string;  (** Requested service (Peak/Average/High/Low). *)
  e2e_flow : int;
  e2e_hops : int;
  e2e_outcome : string;  (** "guaranteed", "class N", or "rejected: ...". *)
}

type e2e_result = {
  e2e_rows : e2e_row list;
  e2e_admitted : int;
  e2e_rejected : int;
  e2e_utilization : float;  (** Mean link utilization achieved. *)
  e2e_violations : float;  (** Predicted per-switch target violation rate. *)
}

val run_table3_service :
  ?duration:float -> ?seed:int64 -> unit -> e2e_result
(** Offer the Table-3 flow population to the {!Service} layer (admission
    control, edge policing, unified scheduling) instead of hand-placing it
    as the paper did.  Class targets are 16/128 ms per switch (an order of
    magnitude apart, Section 7, bracketing what Table 3's classes
    deliver); High clients declare peak-rate/small-bucket filters (the only
    honest declaration that fits a tight class), Low clients the Appendix's
    [(A, 50)]; refused clients retry every 20 s.

    Findings: at [t = 0] the Section 9 example criterion refuses most of
    the load — fresh guaranteed reservations and declared buckets leave no
    worst-case slack; as the meters replace declared rates with measured
    load, retries succeed in waves (t = 20..160 s), and roughly 60% of the
    paper's hand-placed population ends up admitted, with zero target
    violations and the datagram TCPs filling the link back to ~99%.  The
    example criterion trades the paper's densest packing for enforced
    honesty of the targets. *)

(** {2 E8: load sweep — sharing's advantage vs. utilization} *)

type sweep_row = {
  target_utilization : float;
  achieved_utilization : float;
  fifo_p999 : float;
  wfq_p999 : float;
}

val run_load_sweep :
  ?duration:float -> ?seed:int64 -> ?points:float list -> ?j:int -> unit ->
  sweep_row list
(** Table 1's single-link setup at several utilizations (default 0.5, 0.65,
    0.8, 0.9): the sharing advantage (WFQ tail / FIFO tail) is negligible
    when bandwidth is plentiful and grows as the link fills — Section 12's
    point that "careful attention to sharing arises only when bandwidth is
    limited". *)

(** {2 E9: in-band signaling latency} *)

type signaling_row = {
  sig_load : float;  (** Background datagram load per link. *)
  sig_setups : int;  (** Establishment attempts completed. *)
  sig_mean_ms : float;  (** Mean three-way setup latency. *)
  sig_max_ms : float;
}

val run_signaling :
  ?duration:float -> ?seed:int64 -> ?loads:float list -> unit ->
  signaling_row list
(** {!Signaling} setup messages travel the datagram class of a 4-link
    chain while background traffic loads it (default loads 0, 0.5, 0.9):
    establishment latency grows with load because the control packets
    themselves queue — the cost of in-band signaling, which the instant
    central {!Service} hides. *)

(** {2 E10: packet-importance classes (Section 10)} *)

type importance_row = {
  imp_label : string;  (** "important" / "less important". *)
  imp_received : int;
  imp_p999 : float;  (** Queueing delay, packet times. *)
  imp_mean : float;
}

val run_importance :
  ?duration:float -> ?seed:int64 -> unit -> importance_row list
(** One application splits its packets between two adjacent priority
    classes ("packets tagged as less important go into the lower priority
    class, where they will arrive just behind the more important
    packets"), on a heavily loaded link: the less-important subflow
    absorbs the congestion's jitter while the important one sails through
    — Section 10's controlled-degradation service from existing mechanism,
    no new machinery. *)

(** {2 Seed robustness} *)

type seeds_row = {
  seeds_sched : Experiment.sched;
  p999_mean : float;  (** 4-hop 99.9%ile averaged over the seeds. *)
  p999_min : float;
  p999_max : float;
}

val run_seed_robustness :
  ?duration:float -> ?seeds:int64 list -> ?j:int -> unit -> seeds_row list
(** Table 2's 4-hop tail statistic across independent seeds (default five):
    the scheduler ordering (FIFO+ < FIFO < WFQ) must hold for {e every}
    seed, not just the headline one, or the reproduction is luck. *)

(** {2 Ablation: FIFO+ averaging gain} *)

val run_gain_ablation :
  ?duration:float -> ?seed:int64 -> ?gains:float list -> ?j:int -> unit ->
  (float * Experiment.flow_result) list
(** 4-hop tail delay of the Figure-1 workload under FIFO+ for each EWMA
    gain (default [1/16; 1/256; 1/4096]), demonstrating why the slow
    default matters. *)

(** {2 E11: failover under injected faults} *)

type failover_schedule =
  | F_baseline  (** No faults — the reference run. *)
  | F_link_flap  (** Mid-path link down twice (3 s and 1 s outages). *)
  | F_control_loss
      (** Header corruption on a mid-path link for 60% of the run. *)
  | F_agent_crash
      (** Switch agent crash, with a newcomer usurping the freed capacity
          before the victims re-assert — forcing degradation. *)

val failover_name : failover_schedule -> string

type failover_flow = {
  ff_flow : int;
  ff_requested : string;  (** Service level asked for at setup. *)
  ff_final : string;  (** Level actually held at the end of the run. *)
}

type failover_row = {
  fo_schedule : failover_schedule;
  fo_violation_rate : float;
      (** Fraction of predicted-class packets over their per-hop class
          target, across all links. *)
  fo_lost : int;  (** Packets lost on any link: overflow, outage, corruption. *)
  fo_retries : int;  (** Setup messages retransmitted after timeouts. *)
  fo_abandoned : int;  (** Setups that exhausted their retry budget. *)
  fo_crashes : int;
  fo_degraded : int;  (** Ladder rungs descended across all flows. *)
  fo_reestablished : int;  (** Post-crash re-assertion passes completed. *)
  fo_reestablish_ms : float;  (** Mean crash-to-recovery latency. *)
  fo_flows : failover_flow list;  (** The two watched end-to-end flows. *)
  fo_series : Ispn_obs.Series.export option;
      (** Present when [series_interval] was given: the schedule's sampled
          timeline (engine, per-link, signaling, arena instruments) plus
          per-hop wait histograms — the degradation ladder as dynamics. *)
}

val run_failover :
  ?duration:float ->
  ?seed:int64 ->
  ?j:int ->
  ?series_interval:float ->
  unit ->
  failover_row list
(** The architecture under fire, one row per {!failover_schedule} on the
    5-switch chain carrying guaranteed + predicted + datagram traffic with
    periodic probe setups.  Faults come from {!Ispn_faults} plans; the
    signaling layer answers with retransmission, re-setup and the
    degradation ladder.  Shapes to expect: the baseline row is clean (no
    retries, nothing lost beyond policing); link-flap and control-loss lose
    packets and force setup retries; agent-crash re-establishes every flow
    through the dead switch and degrades the watched flows whose
    re-admission the usurper defeats.  Deterministic for a given [seed] at
    every [j] — including the sampled series, which each pool job collects
    on its own registry. *)

(** {2 E12: flight-recorder trace and per-hop delay attribution} *)

type trace_experiment = T_table1 | T_table2 | T_table3
(** Which paper workload to run with the recorder attached: Table 1's
    single FIFO link, Table 2's FIFO+ Figure-1 chain, or Table 3's unified
    CSZ scheduler. *)

val trace_experiment_name : trace_experiment -> string

type trace_hop = {
  th_link : int;  (** 0-based link (hop) index on the path. *)
  th_queueing : float;  (** Packet-transmission times. *)
  th_transmission : float;  (** Packet-transmission times. *)
}

type trace_row = {
  tr_flow : int;
  tr_seq : int;
  tr_hops : trace_hop list;  (** In path order. *)
  tr_queueing : float;  (** Sum of per-hop queueing, packet times. *)
  tr_reported : float;
      (** End-to-end queueing delay the egress probe saw, packet times;
          equals [tr_queueing] up to float noise (the attribution test
          checks this). *)
}

type trace_result = {
  tre_experiment : trace_experiment;
  tre_events : int;  (** Events surviving in the ring at the end. *)
  tre_capacity : int;
  tre_delivered : int;  (** Packets reconstructed from the window. *)
  tre_complete : int;  (** Of those, observed from their first hop. *)
  tre_rows : trace_row list;  (** Worst-delay packets, worst first. *)
}

val run_trace :
  ?experiment:trace_experiment ->
  ?worst:int ->
  ?capacity:int ->
  ?recorder:Ispn_obs.Recorder.t ->
  ?duration:float ->
  ?seed:int64 ->
  unit ->
  trace_result
(** Run [experiment] (default [T_table2]) with an {!Ispn_obs.Recorder} of
    [capacity] (default [2^20]) events attached to every link, then
    decompose the [worst] (default 5) packets' end-to-end delay into
    per-hop queueing and transmission via {!Ispn_obs.Attrib}.
    A caller-supplied [recorder] overrides [capacity] and is left filled
    after the run — the CLI's [trace --dump] exports it with
    [Recorder.write_csv].  Deterministic in [seed]; the recorder does not
    perturb the simulation. *)

(** {2 E13: session churn under soft-state signaling} *)

type churn_scenario =
  | C_clean  (** No faults — teardowns all arrive; expiry stays idle. *)
  | C_lossy_teardown
      (** Corruption windows on two mid-path links eat teardown and
          refresh legs; stranded reservations must be reclaimed by the
          refresh timeout, not leak. *)
  | C_agent_crash  (** Two agents crash mid-run, wiping their books. *)
  | C_link_flap  (** A mid-path link goes dark twice under full churn. *)

val churn_name : churn_scenario -> string

type churn_row = {
  ch_scenario : churn_scenario;
  ch_offered : int;  (** Session arrivals (cumulative sessions). *)
  ch_established : int;  (** Setups that completed. *)
  ch_refused : int;  (** Admission refusals + abandoned setups. *)
  ch_blocking : float;  (** [refused / (established + refused)]. *)
  ch_departed : int;  (** Sessions that left (teardown sent). *)
  ch_active_end : int;  (** Sessions still established at the end. *)
  ch_expired : int;  (** Reservations reclaimed by refresh timeout. *)
  ch_retries : int;
  ch_abandoned : int;
  ch_signaling_pps : float;  (** Control packets per second, all kinds. *)
  ch_refresh_share : float;
      (** Fraction of control packets that were refreshes — the soft-state
          overhead knob (RSVP's refresh tax). *)
  ch_slot_hwm : int;  (** Distinct flow ids ever needed. *)
  ch_recycled : int;  (** Sessions that reused an earlier session's id. *)
  ch_leaked : int;
      (** Reservations still held for sessions departed more than the
          reclaim horizon ago — must be 0 in every scenario. *)
  ch_check : Ispn_check.Audit.summary option;  (** Present when [check]. *)
  ch_series : Ispn_obs.Series.export option;
      (** Present when [series_interval] was given: the scenario's sampled
          timeline — [signaling.established] vs [flows.in_use] vs
          [signaling.expired] is the soft-state expiry-reclaim wave. *)
}

val run_churn :
  ?duration:float ->
  ?seed:int64 ->
  ?lambda:float ->
  ?j:int ->
  ?check:bool ->
  ?series_interval:float ->
  unit ->
  churn_row list
(** The soft-state lifecycle under open-loop churn (one row per
    {!churn_scenario}): Poisson session arrivals at [lambda] per second
    (default 420 — about 1M cumulative sessions over the four scenarios at
    the full 600 s duration), Pareto(1.5) holding times with mean 2 s, a
    15/25/60 guaranteed/predicted/datagram mix on uniform spans of the
    5-switch chain.  Flow ids come from an {!Ispn_util.Idpool} and are
    recycled after a quarantine of one soft-state lifetime plus two sweep
    periods past departure.  With [check], each row carries a finalized
    audit (including the [flow-state] leak invariant over every agent's
    book, the session ledger and the id pool).  Shapes to expect:
    [ch_leaked] is 0 everywhere; [ch_expired] is 0 in the clean scenario
    and positive wherever teardowns are lost or agents die; blocking rises
    under faults (abandoned setups count as refusals).  Deterministic for
    a given [seed] at every [j]. *)

(** {2 E14: sharded parking-lot at scale} *)

type scale_row = {
  sc_span : int;  (** Regions crossed by the flows in this bucket. *)
  sc_flows : int;
  sc_delivered : int;
  sc_mean_delay : float;  (** End-to-end, in packet transmission times. *)
  sc_max_delay : float;
  sc_mean_qdelay : float;  (** Queueing share of the mean delay. *)
}

type scale_report = {
  sc_rows : scale_row list;  (** One per span bucket, ascending. *)
  sc_switches : int;
  sc_links : int;
  sc_flow_count : int;
  sc_delivered_total : int;
  sc_sent : int;  (** Link transmissions, summed over all links. *)
  sc_dropped : int;
  sc_shards : int;  (** The remaining fields describe the sharded run
                        itself and are reported on stderr only — they
                        (and host wall time) are the only quantities
                        that legitimately vary with [shards]. *)
  sc_windows : int;
  sc_lookahead : float;
  sc_cut_links : int;
  sc_exchanged : int;  (** Packets marshalled across shard boundaries. *)
  sc_fired : int;
  sc_check : Ispn_check.Audit.summary option;
      (** Present when [check]: per-shard audits merged by summation. *)
  sc_metrics : Ispn_obs.Metrics.snapshot option;
      (** Present when [metrics]: per-shard registries of per-link
          instruments ([link.<i>.*], plus [hist.link.<i>.wait.*] when the
          series sampler is on), concatenated and name-sorted — each link
          lives in exactly one shard, so the merge is canonical and the
          snapshot byte-identical at every [shards] width.  The
          per-domain [engine.*] / [arena.*] gauges are deliberately not
          registered. *)
  sc_series : Ispn_obs.Series.export option;
      (** Present when [series_interval]: per-shard samplers on one
          shared deterministic tick grid, columns and histogram channels
          concatenated and name-sorted into a single export. *)
}

val run_scale :
  ?duration:float ->
  ?seed:int64 ->
  ?shards:int ->
  ?regions:int ->
  ?per_region:int ->
  ?flows:int ->
  ?avg_rate_pps:float ->
  ?check:bool ->
  ?metrics:bool ->
  ?series_interval:float ->
  unit ->
  scale_report
(** One large simulation partitioned over OCaml 5 domains
    ({!Ispn_sim.Shardnet}): a parking-lot chain of [regions] (default 4)
    regions of [per_region] (default 5) switches — 20 switches, 38 duplex
    links at 10 Mbit/s — carrying [flows] (default 2000) on/off flows
    between uniformly random switches.  Backbone links between regions
    have ~10 ms propagation delays and become the cut links; each link's
    delay carries a distinct index-proportional skew so cross-path
    arrivals never tie on an exact float instant, which is what makes the
    report a pure function of [(seed, duration)]: every field except the
    stderr-only shard diagnostics is byte-identical for every [shards]
    (CI gates [--shards 1] vs [--shards 4] with [cmp]).  Per-flow PRNG
    streams are split off the master in flow order before any domain
    spawns.  [shards] must divide the regions into contiguous blocks
    ([1 <= shards <= regions]).  With [check], each shard owns an audit
    context and the merged summary must be violation-free; [metrics] and
    [series_interval] follow the same per-shard-context,
    merge-in-canonical-order pattern (fields {!scale_report.sc_metrics}
    and {!scale_report.sc_series}).  Shapes to
    expect: mean delay grows with span (propagation dominates; ~10 ms per
    backbone hop), queueing delay stays a small share at this load, and
    drops are rare. *)
