(** Time-series sampler: periodic snapshots of a {!Metrics} registry.

    [--metrics] reads every instrument once, after the run — dynamics like
    the E13 soft-state expiry wave or the E11 degradation ladder are
    invisible in it.  A [Series.t] samples the {e same} registry at a fixed
    {e simulation-time} interval instead: the experiment runner arms it on
    the engine (see [Ispn_sim.Engine.attach_series]), the tick re-schedules
    itself on the timing wheel, and each tick appends one row — the sim
    clock plus a full snapshot.  Because ticks are engine events keyed by
    deterministic sim time (never host time), two runs with identical
    dynamics produce byte-identical series at any [-j]; like [--metrics],
    each pool job samples its own registry and the harness merges exports
    in canonical job order.

    Sampling is observer-visible in exactly one place: the tick events
    count toward the [engine.*] instruments ([events_fired], [pending],
    [heap_depth_hwm]).  They read counters only — no packet, queue, or PRNG
    state is touched — so all simulation results and the default stdout are
    unchanged.

    Export formats ([write_file] picks by extension, like [Metrics]):

    - JSON: one object per label with ["interval"], ["times"], ["series"]
      (instrument name to column, aligned with ["times"]; an instrument
      omitted at some tick — e.g. an empty distribution's min/max — reads
      as 0 there) and ["hist"] (per channel: count, under/overflow,
      p50/p90/p99/p999, and the raw [\[lower, upper, count\]] buckets).
    - CSV: long format [label,time,name,value]; histogram channels appear
      as summary rows ([hist.<ch>.{count,p50,p90,p99,p999}]) with an empty
      time column.  Bucket detail is JSON-only. *)

type t

val create : ?interval:float -> metrics:Metrics.t -> unit -> t
(** [interval] is simulation seconds between samples (default 1.0).
    Raises [Invalid_argument] unless positive. *)

val interval : t -> float

val sample : t -> now:float -> unit
(** Append one row: [now] plus a snapshot of the registry.  Called by the
    engine's tick event — not a hot path (one snapshot per sim second, not
    per packet). *)

val length : t -> int
(** Rows sampled so far. *)

(** {2 Export} *)

type hist_summary = {
  hs_count : int;
  hs_underflow : int;
  hs_overflow : int;
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
  hs_p999 : float;
  hs_buckets : (float * float * int) list;
}

type export = {
  ex_interval : float;
  ex_times : float array;
  ex_columns : (string * float array) list;  (** name-sorted, aligned *)
  ex_hists : (string * hist_summary) list;  (** name-sorted; empty channels skipped *)
}

val export : ?hist:Hist.t -> t -> export
(** Freeze the sampled rows (and the histogram channels, when given) into
    a renderable export.  Channels with zero samples are skipped — they
    have no percentiles to report. *)

val render_json : (string * export) list -> string
val render_csv : (string * export) list -> string

val write_file : string -> (string * export) list -> unit
(** Write to [path]; CSV when [path] ends in [.csv], JSON otherwise. *)
