module Loghist = Ispn_util.Loghist

type t = {
  s_interval : float;
  metrics : Metrics.t;
  mutable rev_rows : (float * Metrics.snapshot) list;
  mutable n : int;
}

let create ?(interval = 1.0) ~metrics () =
  if not (interval > 0.) then
    invalid_arg "Series.create: interval must be positive";
  { s_interval = interval; metrics; rev_rows = []; n = 0 }

let interval t = t.s_interval

let sample t ~now =
  t.rev_rows <- (now, Metrics.snapshot t.metrics) :: t.rev_rows;
  t.n <- t.n + 1

let length t = t.n

(* --- Export --------------------------------------------------------------- *)

type hist_summary = {
  hs_count : int;
  hs_underflow : int;
  hs_overflow : int;
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
  hs_p999 : float;
  hs_buckets : (float * float * int) list;
}

type export = {
  ex_interval : float;
  ex_times : float array;
  ex_columns : (string * float array) list;
  ex_hists : (string * hist_summary) list;
}

let float_of_value = function
  | Metrics.Int i -> float_of_int i
  | Metrics.Float f -> f

(* Snapshots are name-sorted, but the column set can differ between ticks
   (option instruments appear once non-empty), so columns are built over
   the union of names with absent cells reading 0. *)
let columns_of_rows rows =
  let module S = Set.Make (String) in
  let names =
    List.fold_left
      (fun acc (_, snap) ->
        List.fold_left (fun acc (name, _) -> S.add name acc) acc snap)
      S.empty rows
  in
  let n_rows = List.length rows in
  List.map
    (fun name ->
      let col = Array.make n_rows 0. in
      List.iteri
        (fun i (_, snap) ->
          match List.assoc_opt name snap with
          | Some v -> col.(i) <- float_of_value v
          | None -> ())
        rows;
      (name, col))
    (S.elements names)

let summarize h =
  {
    hs_count = Loghist.count h;
    hs_underflow = Loghist.underflow h;
    hs_overflow = Loghist.overflow h;
    hs_p50 = Loghist.percentile h 50.;
    hs_p90 = Loghist.percentile h 90.;
    hs_p99 = Loghist.percentile h 99.;
    hs_p999 = Loghist.percentile h 99.9;
    hs_buckets = Loghist.buckets h;
  }

let export ?hist t =
  let rows = List.rev t.rev_rows in
  {
    ex_interval = t.s_interval;
    ex_times = Array.of_list (List.map fst rows);
    ex_columns = columns_of_rows rows;
    ex_hists =
      (match hist with
      | None -> []
      | Some h ->
          List.filter_map
            (fun (name, lh) ->
              if Loghist.count lh = 0 then None
              else Some (name, summarize lh))
            (Hist.export h));
  }

(* --- Rendering ------------------------------------------------------------ *)

let fnum f = Printf.sprintf "%.9g" f

let add_float_array buf a =
  Buffer.add_char buf '[';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (fnum v))
    a;
  Buffer.add_char buf ']'

let add_json_export buf ex =
  Buffer.add_string buf "{\n    \"interval\": ";
  Buffer.add_string buf (fnum ex.ex_interval);
  Buffer.add_string buf ",\n    \"times\": ";
  add_float_array buf ex.ex_times;
  Buffer.add_string buf ",\n    \"series\": {";
  List.iteri
    (fun i (name, col) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\n      %S: " name);
      add_float_array buf col)
    ex.ex_columns;
  Buffer.add_string buf "\n    },\n    \"hist\": {";
  List.iteri
    (fun i (name, hs) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n      %S: {\n        \"count\": %d, \"underflow\": %d, \
            \"overflow\": %d,\n        \"p50\": %s, \"p90\": %s, \"p99\": \
            %s, \"p999\": %s,\n        \"buckets\": ["
           name hs.hs_count hs.hs_underflow hs.hs_overflow (fnum hs.hs_p50)
           (fnum hs.hs_p90) (fnum hs.hs_p99) (fnum hs.hs_p999));
      List.iteri
        (fun j (lo, hi, c) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf "[%s, %s, %d]" (fnum lo) (fnum hi) c))
        hs.hs_buckets;
      Buffer.add_string buf "]\n      }")
    ex.ex_hists;
  Buffer.add_string buf "\n    }\n  }"

let render_json labeled =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{";
  List.iteri
    (fun i (label, ex) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\n  %S: " label);
      add_json_export buf ex)
    labeled;
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

let render_csv labeled =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "label,time,name,value\n";
  List.iter
    (fun (label, ex) ->
      List.iter
        (fun (name, col) ->
          Array.iteri
            (fun i v ->
              Buffer.add_string buf
                (Printf.sprintf "%s,%s,%s,%s\n" label (fnum ex.ex_times.(i))
                   name (fnum v)))
            col)
        ex.ex_columns;
      List.iter
        (fun (name, hs) ->
          let row suffix v =
            Buffer.add_string buf
              (Printf.sprintf "%s,,hist.%s.%s,%s\n" label name suffix v)
          in
          row "count" (string_of_int hs.hs_count);
          row "p50" (fnum hs.hs_p50);
          row "p90" (fnum hs.hs_p90);
          row "p99" (fnum hs.hs_p99);
          row "p999" (fnum hs.hs_p999))
        ex.ex_hists)
    labeled;
  Buffer.contents buf

let write_file path labeled =
  let rendered =
    if Filename.check_suffix path ".csv" then render_csv labeled
    else render_json labeled
  in
  let oc = open_out path in
  output_string oc rendered;
  close_out oc
