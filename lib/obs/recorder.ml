type kind = Enqueue | Dequeue | Tx_start | Deliver | Drop
type cause = No_cause | Buffer | Down | Wire

let kind_code = function
  | Enqueue -> 0
  | Dequeue -> 1
  | Tx_start -> 2
  | Deliver -> 3
  | Drop -> 4

let kind_of_code = function
  | 0 -> Enqueue
  | 1 -> Dequeue
  | 2 -> Tx_start
  | 3 -> Deliver
  | _ -> Drop

let cause_code = function No_cause -> 0 | Buffer -> 1 | Down -> 2 | Wire -> 3

let cause_of_code = function
  | 1 -> Buffer
  | 2 -> Down
  | 3 -> Wire
  | _ -> No_cause

(* Parallel scalar arrays: recording stores into preallocated unboxed slots
   (float arrays are flat), so a record call allocates nothing in the
   ring. *)
type t = {
  cap : int;
  mutable len : int;
  mutable next : int;
  times : float array;
  kinds : int array;
  links : int array;
  flows : int array;
  seqs : int array;
  classes : int array;
  offsets : float array;
  values : float array;
  causes : int array;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Recorder.create: capacity must be > 0";
  {
    cap = capacity;
    len = 0;
    next = 0;
    times = Array.make capacity 0.;
    kinds = Array.make capacity 0;
    links = Array.make capacity 0;
    flows = Array.make capacity 0;
    seqs = Array.make capacity 0;
    classes = Array.make capacity 0;
    offsets = Array.make capacity 0.;
    values = Array.make capacity 0.;
    causes = Array.make capacity 0;
  }

let record t ~time ~kind ~link ~flow ~seq ~cls ~offset ~value ~cause =
  let i = t.next in
  t.times.(i) <- time;
  t.kinds.(i) <- kind_code kind;
  t.links.(i) <- link;
  t.flows.(i) <- flow;
  t.seqs.(i) <- seq;
  t.classes.(i) <- cls;
  t.offsets.(i) <- offset;
  t.values.(i) <- value;
  t.causes.(i) <- cause_code cause;
  t.next <- (i + 1) mod t.cap;
  if t.len < t.cap then t.len <- t.len + 1

type event = {
  time : float;
  kind : kind;
  link : int;
  flow : int;
  seq : int;
  cls : int;
  offset : float;
  value : float;
  cause : cause;
}

let event_at t i =
  {
    time = t.times.(i);
    kind = kind_of_code t.kinds.(i);
    link = t.links.(i);
    flow = t.flows.(i);
    seq = t.seqs.(i);
    cls = t.classes.(i);
    offset = t.offsets.(i);
    value = t.values.(i);
    cause = cause_of_code t.causes.(i);
  }

let iter t f =
  let start = if t.len < t.cap then 0 else t.next in
  for k = 0 to t.len - 1 do
    f (event_at t ((start + k) mod t.cap))
  done

let events t =
  let acc = ref [] in
  iter t (fun ev -> acc := ev :: !acc);
  List.rev !acc

let length t = t.len
let capacity t = t.cap

let clear t =
  t.len <- 0;
  t.next <- 0

let kind_name = function
  | Enqueue -> "enqueue"
  | Dequeue -> "dequeue"
  | Tx_start -> "tx-start"
  | Deliver -> "deliver"
  | Drop -> "drop"

let cause_name = function
  | No_cause -> "-"
  | Buffer -> "buffer"
  | Down -> "down"
  | Wire -> "wire"

let to_csv t =
  let buf = Buffer.create (64 * t.len) in
  Buffer.add_string buf "time,kind,link,flow,seq,cls,offset,value,cause\n";
  iter t (fun ev ->
      Buffer.add_string buf
        (Printf.sprintf "%.9g,%s,%d,%d,%d,%d,%.9g,%.9g,%s\n" ev.time
           (kind_name ev.kind) ev.link ev.flow ev.seq ev.cls ev.offset
           ev.value
           (cause_name ev.cause)));
  Buffer.contents buf

let write_csv path t =
  let oc = open_out path in
  output_string oc (to_csv t);
  close_out oc

let pp ppf t =
  iter t (fun ev ->
      Format.fprintf ppf
        "%.6f %-8s link=%d flow=%d seq=%d cls=%d off=%.6f val=%.6f%s@."
        ev.time (kind_name ev.kind) ev.link ev.flow ev.seq ev.cls ev.offset
        ev.value
        (match ev.cause with
        | No_cause -> ""
        | c -> " cause=" ^ cause_name c))
