module Stats = Ispn_util.Stats

type value = Int of int | Float of float

(* Samplers may decline to produce a value at snapshot time (an empty
   distribution has no min/max) — those instruments are simply absent from
   the snapshot rather than rendered as a fake 0. *)
type t = { mutable samplers : (string * (unit -> value option)) list }

let create () = { samplers = [] }

let register_opt t name sample =
  if List.mem_assoc name t.samplers then
    invalid_arg (Printf.sprintf "Metrics.register: duplicate name %S" name);
  t.samplers <- (name, sample) :: t.samplers

let register t name sample = register_opt t name (fun () -> Some (sample ()))
let register_int t name f = register t name (fun () -> Int (f ()))
let register_float t name f = register t name (fun () -> Float (f ()))

let register_stats t name st =
  register_int t (name ^ ".count") (fun () -> Stats.count st);
  register_float t (name ^ ".mean") (fun () -> Stats.mean st);
  register_opt t (name ^ ".min") (fun () ->
      if Stats.count st = 0 then None else Some (Float (Stats.min st)));
  register_opt t (name ^ ".max") (fun () ->
      if Stats.count st = 0 then None else Some (Float (Stats.max st)))

let dist t name =
  let st = Stats.create () in
  register_stats t name st;
  st

type snapshot = (string * value) list

let snapshot t =
  List.filter_map
    (fun (name, sample) ->
      match sample () with Some v -> Some (name, v) | None -> None)
    t.samplers
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let size t = List.length t.samplers

let value_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.9g" f

let flatten labeled =
  List.concat_map
    (fun (label, snap) ->
      List.map
        (fun (name, v) ->
          ((if label = "" then name else label ^ "." ^ name), v))
        snap)
    labeled

let render_json labeled =
  let entries = flatten labeled in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  let last = List.length entries - 1 in
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string buf
        (Printf.sprintf "  %S: %s%s\n" name (value_string v)
           (if i = last then "" else ",")))
    entries;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let render_csv labeled =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "name,value\n";
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf "%s,%s\n" name (value_string v)))
    (flatten labeled);
  Buffer.contents buf

let write_file path labeled =
  let rendered =
    if Filename.check_suffix path ".csv" then render_csv labeled
    else render_json labeled
  in
  let oc = open_out path in
  output_string oc rendered;
  close_out oc
