module Stats = Ispn_util.Stats

type value = Int of int | Float of float

type t = { mutable samplers : (string * (unit -> value)) list }

let create () = { samplers = [] }

let register t name sample =
  if List.mem_assoc name t.samplers then
    invalid_arg (Printf.sprintf "Metrics.register: duplicate name %S" name);
  t.samplers <- (name, sample) :: t.samplers

let register_int t name f = register t name (fun () -> Int (f ()))
let register_float t name f = register t name (fun () -> Float (f ()))

let finite_or_zero x = if Float.is_finite x then x else 0.

let register_stats t name st =
  register_int t (name ^ ".count") (fun () -> Stats.count st);
  register_float t (name ^ ".mean") (fun () -> Stats.mean st);
  register_float t (name ^ ".min") (fun () -> finite_or_zero (Stats.min st));
  register_float t (name ^ ".max") (fun () -> finite_or_zero (Stats.max st))

let dist t name =
  let st = Stats.create () in
  register_stats t name st;
  st

type snapshot = (string * value) list

let snapshot t =
  List.map (fun (name, sample) -> (name, sample ())) t.samplers
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let size t = List.length t.samplers

let value_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.9g" f

let flatten labeled =
  List.concat_map
    (fun (label, snap) ->
      List.map
        (fun (name, v) ->
          ((if label = "" then name else label ^ "." ^ name), v))
        snap)
    labeled

let render_json labeled =
  let entries = flatten labeled in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  let last = List.length entries - 1 in
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string buf
        (Printf.sprintf "  %S: %s%s\n" name (value_string v)
           (if i = last then "" else ",")))
    entries;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let render_csv labeled =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "name,value\n";
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf "%s,%s\n" name (value_string v)))
    (flatten labeled);
  Buffer.contents buf

let write_file path labeled =
  let rendered =
    if Filename.check_suffix path ".csv" then render_csv labeled
    else render_json labeled
  in
  let oc = open_out path in
  output_string oc rendered;
  close_out oc
