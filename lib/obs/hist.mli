(** Named delay-histogram channels: the tail-latency side of [--series].

    A [Hist.t] is a registry of [Ispn_util.Loghist] channels keyed by the
    same dotted names as the metrics catalogue — [link.<i>.wait] for a
    hop's queueing delay (fed from the link's dequeue tap) and
    [csz.class.<c>.delay] for a CSZ scheduling class (fed from the
    scheduler's delay hook).  Feeding a channel is an [Loghist.add]: one
    branch and an int store, no allocation, so a channel can stay attached
    to the dequeue path for a whole run.

    When created with [~metrics], every channel also registers pull-based
    instruments [hist.<name>.count] and [hist.<name>.{p50,p90,p99,p999}] on
    the registry, so [--metrics] snapshots and the [\[obs\]] report footers
    pick the percentiles up with no extra plumbing.  The percentile
    instruments are omitted while the channel is empty (same rule as an
    empty distribution's min/max).  Percentile values are in seconds, like
    every internal time; reports convert to ms or packet times at the
    edge. *)

type t

val create : ?metrics:Metrics.t -> unit -> t

val channel :
  ?lo:float -> ?hi:float -> ?per_decade:int -> t -> string -> Ispn_util.Loghist.t
(** [channel t name] returns the channel registered under [name], creating
    it (with the given bucket layout, defaults as [Loghist.create]) on
    first use.  Creation order does not matter: exports and metrics
    snapshots are name-sorted. *)

val export : t -> (string * Ispn_util.Loghist.t) list
(** All channels, sorted by name. *)
