(** Metrics registry: typed instruments under stable dotted names.

    The registry is {e pull-based}: components register sampling closures
    over counters they already maintain ([Link.sent], [Engine.stats],
    [Qdisc.pool_in_use], ...), so the packet hot path is untouched — when no
    registry is created nothing is registered and nothing allocates.  The
    only push-style instrument is {!dist}, an [Ispn_util.Stats] accumulator
    for per-packet observations (e.g. the FIFO+ offset distribution) that a
    component feeds only when it was created with a registry attached.

    Instruments are read once, at {!snapshot} time, after the simulation has
    finished.  A snapshot is a name-sorted association list, so two runs
    with identical dynamics render byte-identical JSON/CSV — experiment
    jobs snapshot inside their own {!Ispn_exec.Pool} job and the harness
    merges the snapshots in canonical job order, keeping [--metrics] output
    independent of [-j].

    Naming convention (see DESIGN.md for the full catalogue):
    [engine.*], [link.<i>.*], [qdisc.<sched>.<i>.*], [csz.<i>.*],
    [signaling.*], where [<i>] is the 0-based inter-switch link index. *)

type t
(** A registry.  One per simulation run; not domain-safe (each
    [Ispn_exec.Pool] job builds its own). *)

type value = Int of int | Float of float

val create : unit -> t

val register : t -> string -> (unit -> value) -> unit
(** Register a sampler under a dotted name.  Raises [Invalid_argument] on a
    duplicate name — instrument names must be stable and unique. *)

val register_opt : t -> string -> (unit -> value option) -> unit
(** Like {!register}, for instruments that may have no defined value at
    snapshot time (an empty distribution's extrema, a percentile with no
    samples).  A [None] omits the instrument from that snapshot instead of
    rendering a placeholder. *)

val register_int : t -> string -> (unit -> int) -> unit
val register_float : t -> string -> (unit -> float) -> unit

val register_stats : t -> string -> Ispn_util.Stats.t -> unit
(** Export an online-moments accumulator as [name.count], [name.mean],
    [name.min], [name.max].  While [name.count] is 0, [name.min] and
    [name.max] are {e omitted} from the snapshot — an exported 0 would be
    indistinguishable from a real zero observation. *)

val dist : t -> string -> Ispn_util.Stats.t
(** Create and register (as {!register_stats}) a push-style distribution;
    the caller feeds it with [Ispn_util.Stats.add].  Components accept the
    accumulator as an [option] and skip the add when absent, so the
    disabled path costs one branch and no allocation. *)

type snapshot = (string * value) list
(** Sorted by name. *)

val snapshot : t -> snapshot
val size : t -> int

(** {2 Rendering}

    Both renderers take labeled snapshots — [(job label, snapshot)] in
    canonical job order — and emit one entry per instrument under
    [<label>.<name>].  Floats are printed with ["%.9g"], so equal doubles
    render equally. *)

val render_json : (string * snapshot) list -> string
val render_csv : (string * snapshot) list -> string

val write_file : string -> (string * snapshot) list -> unit
(** Write to [path]; CSV when [path] ends in [.csv], JSON otherwise. *)
