(** Per-hop delay attribution from a flight-recorder trace.

    FIFO+'s whole argument (paper Sections 6-7) is about {e where} along the
    path queueing delay and jitter accumulate; this module reconstructs that
    decomposition from recorder events.  For every packet whose final
    [Deliver] survives in the ring, the end-to-end delay splits into
    per-hop queueing (the scheduling-dependent part) and transmission
    terms:

    [latency = sum_hops (queueing + transmission) + propagation]

    and the queueing sum equals the [Packet.qdelay_total] the egress probe
    reports — {!breakdown}[.bd_reported] carries the probe-side value so
    consumers (and tests) can check the attribution closes to within float
    noise.

    A breakdown is [bd_complete] when the packet's first hop was observed
    from its [Enqueue] with zero accumulated delay; packets whose early
    events were evicted by the ring are kept but flagged, with only the
    surviving suffix of their path attributed. *)

type hop = {
  hop_link : int;  (** Link index as stamped by the emitter. *)
  enqueued_at : float;  (** Arrival time at this hop's qdisc. *)
  queueing : float;  (** Seconds waiting for the transmitter. *)
  transmission : float;  (** Serialization seconds at this hop. *)
}

type breakdown = {
  bd_flow : int;
  bd_seq : int;
  bd_hops : hop list;  (** In path order. *)
  bd_queueing : float;  (** Sum of [queueing] over {!bd_hops}. *)
  bd_reported : float;
      (** The packet's accumulated queueing delay as carried by its final
          [Deliver] event — what the egress probe records. *)
  bd_delivered_at : float;
  bd_complete : bool;
}

val breakdowns : Recorder.t -> breakdown list
(** Every packet delivered (not dropped, not still queued) within the
    recorded window, ordered by delivery time (ties by flow then seq). *)

val worst : ?n:int -> Recorder.t -> breakdown list
(** The [n] (default 5) complete breakdowns with the largest end-to-end
    queueing delay, worst first. *)
