(** Flight recorder: a bounded, structured per-packet event trace.

    A ring of the most recent [capacity] events, stored as parallel scalar
    arrays (struct-of-arrays) so that recording overwrites slots in place —
    no allocation per event, no GC pressure, cheap enough to leave attached
    for a whole run.  This replaces the old string-based [Ispn_sim.Trace]:
    events carry typed fields (link, flow, sequence number, class, the
    FIFO+ offset header and a kind-dependent value) instead of formatted
    text, so consumers can attribute delay without parsing.

    Event schema, as emitted by [Ispn_sim.Link] (one hop = one link):

    - [Enqueue]  — packet accepted by the hop's qdisc; [value] is the
      packet's accumulated queueing delay {e before} this hop (0 at the
      first hop of its path).
    - [Dequeue]  — transmission begins; [value] is this hop's queueing
      (waiting) delay in seconds.
    - [Tx_start] — same instant as [Dequeue]; [value] is the transmission
      time [size_bits / rate_bps].
    - [Deliver]  — handed to the hop's receiver (after propagation);
      [value] is the packet's accumulated queueing delay {e including}
      this hop.
    - [Drop]     — lost at this hop; [cause] says why.

    [cls] is the scheduling class where the emitter knows it and [-1]
    otherwise; [offset] is the packet's FIFO+ jitter-offset header at the
    time of the event. *)

type kind = Enqueue | Dequeue | Tx_start | Deliver | Drop
type cause = No_cause | Buffer | Down | Wire

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 65536 events.  The ring keeps the newest events. *)

val record :
  t ->
  time:float ->
  kind:kind ->
  link:int ->
  flow:int ->
  seq:int ->
  cls:int ->
  offset:float ->
  value:float ->
  cause:cause ->
  unit

type event = {
  time : float;
  kind : kind;
  link : int;
  flow : int;
  seq : int;
  cls : int;
  offset : float;
  value : float;
  cause : cause;
}

val events : t -> event list
(** Oldest surviving event first. *)

val iter : t -> (event -> unit) -> unit
(** Like {!events}, without materializing the list. *)

val length : t -> int
val capacity : t -> int
val clear : t -> unit

val kind_name : kind -> string
val cause_name : cause -> string

val to_csv : t -> string
(** The surviving ring, oldest first, as CSV with one typed column per
    event field — [time,kind,link,flow,seq,cls,offset,value,cause], kind
    and cause by {!kind_name}/{!cause_name}, floats as ["%.9g"] — so a
    dumped trace can be analyzed offline without parsing formatted text.
    Note the packet handle itself is {e not} a column: handles are
    allocation-history-dependent and must never be printed; (flow, seq)
    is the stable identity. *)

val write_csv : string -> t -> unit
(** [write_csv path t] writes {!to_csv} to [path]. *)

val pp : Format.formatter -> t -> unit
(** One line per event, oldest first — the [pp] shim kept from the old
    string trace for quick debugging. *)
