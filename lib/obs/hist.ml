module Loghist = Ispn_util.Loghist

type t = {
  mutable channels : (string * Loghist.t) list;
  metrics : Metrics.t option;
}

let create ?metrics () = { channels = []; metrics }

let register_instruments m name h =
  let prefix = "hist." ^ name in
  Metrics.register_int m (prefix ^ ".count") (fun () -> Loghist.count h);
  List.iter
    (fun (suffix, p) ->
      Metrics.register_opt m (prefix ^ suffix) (fun () ->
          if Loghist.count h = 0 then None
          else Some (Metrics.Float (Loghist.percentile h p))))
    [ (".p50", 50.); (".p90", 90.); (".p99", 99.); (".p999", 99.9) ]

let channel ?lo ?hi ?per_decade t name =
  match List.assoc_opt name t.channels with
  | Some h -> h
  | None ->
      let h = Loghist.create ?lo ?hi ?per_decade () in
      t.channels <- (name, h) :: t.channels;
      (match t.metrics with
      | None -> ()
      | Some m -> register_instruments m name h);
      h

let export t =
  List.sort (fun (a, _) (b, _) -> compare a b) t.channels
