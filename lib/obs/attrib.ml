type hop = {
  hop_link : int;
  enqueued_at : float;
  queueing : float;
  transmission : float;
}

type breakdown = {
  bd_flow : int;
  bd_seq : int;
  bd_hops : hop list;
  bd_queueing : float;
  bd_reported : float;
  bd_delivered_at : float;
  bd_complete : bool;
}

(* Per-packet reassembly state while scanning the ring in time order.  A hop
   opens at Enqueue and closes at Deliver; Dequeue/Tx_start fill in its
   queueing and transmission terms in between. *)
type state = {
  mutable hops_rev : hop list;
  mutable complete : bool;  (* first hop seen from a zero-delay Enqueue *)
  mutable in_hop : bool;
  mutable dropped : bool;
  mutable cur_link : int;
  mutable cur_enq : float;
  mutable cur_queue : float;
  mutable cur_tx : float;
  mutable reported : float;
  mutable delivered_at : float;
}

let breakdowns recorder =
  let tbl : (int * int, state) Hashtbl.t = Hashtbl.create 1024 in
  let get ev first_is_start =
    let key = (ev.Recorder.flow, ev.Recorder.seq) in
    match Hashtbl.find_opt tbl key with
    | Some st -> st
    | None ->
        let st =
          {
            hops_rev = [];
            complete = first_is_start;
            in_hop = false;
            dropped = false;
            cur_link = -1;
            cur_enq = 0.;
            cur_queue = 0.;
            cur_tx = 0.;
            reported = 0.;
            delivered_at = 0.;
          }
        in
        Hashtbl.add tbl key st;
        st
  in
  Recorder.iter recorder (fun ev ->
      match ev.Recorder.kind with
      | Recorder.Enqueue ->
          (* value = accumulated queueing delay before this hop: zero marks
             the start of the packet's path. *)
          let st = get ev (ev.Recorder.value = 0.) in
          st.in_hop <- true;
          st.cur_link <- ev.Recorder.link;
          st.cur_enq <- ev.Recorder.time;
          st.cur_queue <- 0.;
          st.cur_tx <- 0.
      | Recorder.Dequeue ->
          let st = get ev false in
          if st.in_hop then st.cur_queue <- ev.Recorder.value
      | Recorder.Tx_start ->
          let st = get ev false in
          if st.in_hop then st.cur_tx <- ev.Recorder.value
      | Recorder.Deliver ->
          let st = get ev false in
          if st.in_hop then begin
            st.hops_rev <-
              {
                hop_link = st.cur_link;
                enqueued_at = st.cur_enq;
                queueing = st.cur_queue;
                transmission = st.cur_tx;
              }
              :: st.hops_rev;
            st.in_hop <- false
          end;
          st.reported <- ev.Recorder.value;
          st.delivered_at <- ev.Recorder.time
      | Recorder.Drop ->
          let st = get ev false in
          st.dropped <- true);
  Hashtbl.fold
    (fun (flow, seq) st acc ->
      (* Delivered iff the last thing that happened was a Deliver: not
         dropped, not opened at a further hop, and at least one hop closed. *)
      if st.dropped || st.in_hop || st.hops_rev = [] then acc
      else
        let hops = List.rev st.hops_rev in
        {
          bd_flow = flow;
          bd_seq = seq;
          bd_hops = hops;
          bd_queueing =
            List.fold_left (fun s h -> s +. h.queueing) 0. hops;
          bd_reported = st.reported;
          bd_delivered_at = st.delivered_at;
          bd_complete = st.complete;
        }
        :: acc)
    tbl []
  |> List.sort (fun a b ->
         match compare a.bd_delivered_at b.bd_delivered_at with
         | 0 -> (
             match compare a.bd_flow b.bd_flow with
             | 0 -> compare a.bd_seq b.bd_seq
             | c -> c)
         | c -> c)

let worst ?(n = 5) recorder =
  breakdowns recorder
  |> List.filter (fun bd -> bd.bd_complete)
  |> List.sort (fun a b ->
         match compare b.bd_reported a.bd_reported with
         | 0 -> (
             match compare a.bd_flow b.bd_flow with
             | 0 -> compare a.bd_seq b.bd_seq
             | c -> c)
         | c -> c)
  |> List.filteri (fun i _ -> i < n)
