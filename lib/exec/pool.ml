let default_jobs () = Domain.recommended_domain_count ()

type error = { job : int; exn : exn; backtrace : string }

let capture job exn =
  (* Must run before anything else raises: the raw backtrace is a global. *)
  let backtrace =
    Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ())
  in
  { job; exn; backtrace }

(* Domain [d] of [j] owns the strided slice [d, d+j, ...]: a fixed partition
   decided before any domain starts, so which domain runs which job never
   depends on timing.  Each worker buffers [(index, result)] pairs locally;
   the only cross-domain communication is [Domain.join] returning the
   buffer, whose happens-before edge also publishes the jobs' writes. *)
let worker f jobs ~d ~j =
  let n = Array.length jobs in
  let buf = ref [] in
  let i = ref d in
  while !i < n do
    let r = try Ok (f jobs.(!i)) with e -> Error (capture !i e) in
    buf := (!i, r) :: !buf;
    i := !i + j
  done;
  !buf

let try_map ?j f xs =
  let jobs = Array.of_list xs in
  let n = Array.length jobs in
  let j = match j with None -> default_jobs () | Some j -> j in
  let j = Stdlib.max 1 (Stdlib.min j n) in
  if n = 0 then []
  else if j = 1 then
    List.mapi (fun i x -> try Ok (f x) with e -> Error (capture i e)) xs
  else begin
    let spawned =
      Array.init (j - 1) (fun d ->
          Domain.spawn (fun () -> worker f jobs ~d:(d + 1) ~j))
    in
    let own = worker f jobs ~d:0 ~j in
    let out = Array.make n None in
    let place = List.iter (fun (i, r) -> out.(i) <- Some r) in
    place own;
    Array.iter (fun dom -> place (Domain.join dom)) spawned;
    Array.to_list out
    |> List.map (function Some r -> r | None -> assert false)
  end

let map ?j f xs =
  try_map ?j f xs
  |> List.map (function Ok v -> v | Error e -> raise e.exn)
