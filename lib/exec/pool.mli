(** Deterministic domain-parallel run fabric.

    Every multi-run experiment in this repository (the paper tables, the
    bake-off, seed sweeps, load sweeps) is an embarrassingly parallel
    fan-out of independent simulations: each job builds its own
    {!Ispn_sim.Engine.t} and draws from its own {!Ispn_util.Prng} seed, so
    no mutable state crosses jobs.  This module fans such jobs across
    OCaml 5 [Domain]s with a {e fixed partition} (no work stealing): domain
    [d] of [j] owns jobs [d, d+j, d+2j, ...], buffers its results locally,
    and the buffers are merged back into canonical job order after all
    domains join.  Output is therefore bit-identical for every [j],
    including [j = 1] (which runs in the calling domain, spawning
    nothing).

    Jobs must not share mutable state and must derive all randomness from
    per-job {!Ispn_util.Prng} seeds — the repository-wide rule anyway. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the [-j] default of the bench
    harness and CLI. *)

type error = {
  job : int;  (** Index of the crashed job in the input list. *)
  exn : exn;
  backtrace : string;
      (** [Printexc] backtrace captured at the raise, in the crashing
          domain — without it a fanned-out crash points nowhere.  Empty
          when backtrace recording is off. *)
}

val try_map : ?j:int -> ('a -> 'b) -> 'a list -> ('b, error) result list
(** [try_map ~j f xs] applies [f] to every element of [xs] across at most
    [j] domains (clamped to [max 1 (min j (length xs))]; default
    {!default_jobs}) and returns the results in the order of [xs].  A
    raising job yields [Error] in its slot — carrying which job crashed,
    the exception and its backtrace — and does not disturb the others:
    crash containment is per job, not per pool. *)

val map : ?j:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~j f xs] is {!try_map} with failures re-raised: once every job
    has finished, the first exception in canonical job order (not wall-clock
    order, so the raise is deterministic too) is re-raised. *)
