test/test_histogram.ml: Alcotest Ispn_util List QCheck QCheck_alcotest String
