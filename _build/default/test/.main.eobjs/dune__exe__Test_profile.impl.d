test/test_profile.ml: Alcotest Gen Ispn_traffic Ispn_util List QCheck QCheck_alcotest
