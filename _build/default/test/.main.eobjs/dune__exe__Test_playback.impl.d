test/test_playback.ml: Alcotest Ispn_playback List QCheck QCheck_alcotest
