test/test_replay.ml: Alcotest Engine Ispn_sim Ispn_traffic List Packet Printf
