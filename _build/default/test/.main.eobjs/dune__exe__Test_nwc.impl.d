test/test_nwc.ml: Alcotest Engine Helpers Ispn_sched Ispn_sim Link List Network Packet Printf Qdisc
