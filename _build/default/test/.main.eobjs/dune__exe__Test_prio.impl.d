test/test_prio.ml: Alcotest Array Gen Helpers Ispn_sched Ispn_sim List Option Packet QCheck QCheck_alcotest Qdisc
