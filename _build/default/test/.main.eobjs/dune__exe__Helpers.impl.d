test/helpers.ml: Engine Ispn_sim Link List Packet Stdlib
