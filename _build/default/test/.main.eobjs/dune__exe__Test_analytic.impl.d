test/test_analytic.ml: Alcotest Engine Float Ispn_sched Ispn_sim Ispn_traffic Ispn_util List Network Probe Qdisc
