test/test_wire.ml: Alcotest Bytes Float Ispn_sim Packet QCheck QCheck_alcotest Wire
