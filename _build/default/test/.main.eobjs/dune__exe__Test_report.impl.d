test/test_report.ml: Alcotest Csz List Printf String
