test/test_token_bucket.ml: Alcotest Engine Gen Ispn_sim Ispn_traffic List Packet Printf QCheck QCheck_alcotest Stdlib
