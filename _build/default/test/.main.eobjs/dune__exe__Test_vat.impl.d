test/test_vat.ml: Alcotest Ispn_playback Ispn_util
