test/test_fifo.ml: Alcotest Gen Helpers Ispn_sched Ispn_sim List Packet QCheck QCheck_alcotest Qdisc
