test/test_dist.ml: Alcotest Dist Float Ispn_util Prng QCheck QCheck_alcotest
