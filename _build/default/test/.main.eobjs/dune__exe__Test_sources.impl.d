test/test_sources.ml: Alcotest Engine Float Ispn_sim Ispn_traffic Ispn_util List Packet
