test/test_service.ml: Alcotest Csz Engine Ispn_admission Ispn_sim Packet
