test/test_engine.ml: Alcotest Engine Fun Gen Ispn_sim List QCheck QCheck_alcotest
