test/test_stats.ml: Alcotest Float Gen Ispn_util List QCheck QCheck_alcotest Stats
