test/test_pg_bound.ml: Alcotest Csz Engine Ispn_admission Ispn_sched Ispn_sim Ispn_traffic List Network Probe QCheck QCheck_alcotest Qdisc
