test/test_csz_sched.ml: Alcotest Csz Gen Helpers Ispn_sim List Option Packet QCheck QCheck_alcotest Qdisc
