test/test_extensions.ml: Alcotest Csz List Printf String
