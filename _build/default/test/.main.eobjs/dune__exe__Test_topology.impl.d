test/test_topology.ml: Alcotest Engine Gen Ispn_sched Ispn_sim List Packet Printf QCheck QCheck_alcotest Qdisc Topology
