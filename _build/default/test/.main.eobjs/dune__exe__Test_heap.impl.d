test/test_heap.ml: Alcotest Heap Ispn_util List QCheck QCheck_alcotest
