test/test_prng.ml: Alcotest Array Float Ispn_util List Prng QCheck QCheck_alcotest
