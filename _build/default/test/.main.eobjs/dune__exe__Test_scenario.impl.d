test/test_scenario.ml: Alcotest Csz List Printf
