test/test_sim.ml: Alcotest Engine Format Ispn_sched Ispn_sim Ispn_util Link List Network Node Packet Printf Probe Qdisc String Trace
