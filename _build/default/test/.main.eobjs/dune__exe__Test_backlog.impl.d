test/test_backlog.ml: Alcotest Backlog Engine Ispn_sched Ispn_sim Ispn_util Link Packet Qdisc
