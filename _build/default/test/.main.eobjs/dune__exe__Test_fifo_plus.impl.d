test/test_fifo_plus.ml: Alcotest Gen Helpers Ispn_sched Ispn_sim List Option Packet QCheck QCheck_alcotest Qdisc
