test/test_signaling.ml: Alcotest Csz Engine Ispn_admission Ispn_sim Ispn_traffic List Option Packet Printf Result String
