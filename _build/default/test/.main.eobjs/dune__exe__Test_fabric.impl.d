test/test_fabric.ml: Alcotest Csz Engine Ispn_admission Ispn_sim Packet
