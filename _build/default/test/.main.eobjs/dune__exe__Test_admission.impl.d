test/test_admission.ml: Alcotest Ispn_admission Ispn_util
