test/test_baselines.ml: Alcotest Fun Gen Helpers Ispn_sched Ispn_sim List Option Packet QCheck QCheck_alcotest Qdisc
