test/test_vtime.ml: Alcotest Ispn_sched
