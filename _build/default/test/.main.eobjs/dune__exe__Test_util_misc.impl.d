test/test_util_misc.ml: Alcotest Array Ewma Float Fvec Gen Ispn_util List QCheck QCheck_alcotest Quantile String Table Units
