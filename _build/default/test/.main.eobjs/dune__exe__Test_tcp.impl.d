test/test_tcp.ml: Alcotest Engine Ispn_sched Ispn_sim Ispn_transport Network Qdisc
