test/test_wfq.ml: Alcotest Float Gen Hashtbl Helpers Ispn_sched Ispn_sim List Packet QCheck QCheck_alcotest Qdisc
