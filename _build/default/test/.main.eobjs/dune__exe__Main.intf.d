test/main.mli:
