test/test_integration.ml: Alcotest Array Csz Float List
