test/test_mixed_sizes.ml: Alcotest Array Csz Engine Float Gen Helpers Ispn_sched Ispn_sim Link List Packet QCheck QCheck_alcotest Qdisc
