module Profile = Ispn_traffic.Profile
module Tb = Ispn_traffic.Token_bucket

let cbr ?(n = 100) ?(gap = 0.01) ?(bits = 1000) () =
  let p = Profile.create () in
  for i = 0 to n - 1 do
    Profile.record p ~time:(gap *. float_of_int i) ~bits
  done;
  p

let test_basic_accounting () =
  let p = cbr () in
  Alcotest.(check int) "packets" 100 (Profile.packets p);
  Alcotest.(check int) "bits" 100_000 (Profile.total_bits p);
  Alcotest.(check (float 1e-6)) "duration" 0.99 (Profile.duration p);
  Alcotest.(check (float 1.)) "peak = 1000/0.01" 100_000. (Profile.peak_rate_bps p)

let test_cbr_depth_is_one_packet () =
  (* A CBR stream at exactly its own rate needs only one packet of depth. *)
  let p = cbr () in
  Alcotest.(check (float 1e-6)) "b(rate) = 1 packet" 1000.
    (Profile.min_depth_bits p ~rate_bps:100_000.)

let test_depth_grows_as_rate_shrinks () =
  let p = cbr () in
  let b_full = Profile.min_depth_bits p ~rate_bps:100_000. in
  let b_half = Profile.min_depth_bits p ~rate_bps:50_000. in
  let b_tenth = Profile.min_depth_bits p ~rate_bps:10_000. in
  Alcotest.(check bool) "monotone" true (b_full <= b_half && b_half <= b_tenth);
  (* At half rate the deficit accumulates 500 bits per 10 ms over 99 gaps,
     plus the final packet. *)
  Alcotest.(check (float 1.)) "b(r/2)" (500. *. 99. +. 1000.) b_half

let test_burst_depth () =
  (* A 10-packet instantaneous burst then silence: b(r) = 10 packets for
     any finite r. *)
  let p = Profile.create () in
  for _ = 1 to 10 do
    Profile.record p ~time:0. ~bits:1000
  done;
  Profile.record p ~time:10. ~bits:1000;
  Alcotest.(check (float 1e-6)) "burst depth" 10_000.
    (Profile.min_depth_bits p ~rate_bps:1e6)

let test_depth_certifies_conformance () =
  (* The computed b(r) must actually pass the recorded trace through a real
     token bucket without drops — and b(r) minus one packet must not. *)
  let p = Profile.create () in
  let prng = Ispn_util.Prng.create ~seed:5L in
  let time = ref 0. in
  for i = 0 to 499 do
    time := !time +. Ispn_util.Dist.exponential prng ~mean:0.01;
    Profile.record p ~time:!time ~bits:(if i mod 3 = 0 then 2000 else 1000)
  done;
  let rate = 120_000. in
  let depth = Profile.min_depth_bits p ~rate_bps:rate in
  (* Replay the identical trace (same seed) through a real token bucket. *)
  let conforms depth =
    let tb = Tb.create ~rate_bps:rate ~depth_bits:depth () in
    let all_ok = ref true in
    let prng2 = Ispn_util.Prng.create ~seed:5L in
    let time2 = ref 0. in
    for i = 0 to 499 do
      time2 := !time2 +. Ispn_util.Dist.exponential prng2 ~mean:0.01;
      let bits = if i mod 3 = 0 then 2000 else 1000 in
      if not (Tb.conforms tb ~now:!time2 ~bits) then all_ok := false
    done;
    !all_ok
  in
  Alcotest.(check bool) "b(r) conforms" true (conforms depth);
  Alcotest.(check bool) "b(r) is minimal (within one packet)" false
    (conforms (depth -. 1000.))

let test_delay_bound_uses_pg_formula () =
  let p = cbr () in
  (* b(r) = 1000 bits at the full rate; 3 hops add two max packets. *)
  Alcotest.(check (float 1e-9)) "bound" (3000. /. 100_000.)
    (Profile.delay_bound p ~rate_bps:100_000. ~hops:3)

let test_clock_rate_search () =
  let p = Profile.create () in
  (* On/off-ish: 5-packet bursts at 5 ms spacing, 100 ms apart. *)
  for burst = 0 to 19 do
    for i = 0 to 4 do
      Profile.record p
        ~time:((0.1 *. float_of_int burst) +. (0.005 *. float_of_int i))
        ~bits:1000
    done
  done;
  let target = 0.05 in
  (match Profile.clock_rate_for_delay p ~target ~hops:2 () with
  | Some r ->
      Alcotest.(check bool) "bound met at found rate" true
        (Profile.delay_bound p ~rate_bps:r ~hops:2 <= target);
      Alcotest.(check bool) "rate between mean and peak" true
        (r >= Profile.mean_rate_bps p -. 1. && r <= Profile.peak_rate_bps p +. 1.)
  | None -> Alcotest.fail "expected a feasible rate");
  (* An impossible target (tighter than one packet at peak) is refused. *)
  Alcotest.(check bool) "impossible target" true
    (Profile.clock_rate_for_delay p ~target:1e-5 ~hops:2 () = None)

let test_time_monotonicity_enforced () =
  let p = Profile.create () in
  Profile.record p ~time:1. ~bits:1000;
  try
    Profile.record p ~time:0.5 ~bits:1000;
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let qcheck_depth_at_least_one_packet =
  QCheck.Test.make ~name:"b(r) >= largest packet" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 50)
           (pair (float_range 0.001 0.1) (int_range 100 5000)))
        (float_range 1e3 1e7))
    (fun (gaps, rate) ->
      let p = Profile.create () in
      let time = ref 0. in
      let biggest = ref 0 in
      List.iter
        (fun (gap, bits) ->
          time := !time +. gap;
          biggest := max !biggest bits;
          Profile.record p ~time:!time ~bits)
        gaps;
      Profile.min_depth_bits p ~rate_bps:rate >= float_of_int !biggest)

let qcheck_depth_monotone_in_rate =
  QCheck.Test.make ~name:"b(r) non-increasing in r" ~count:200
    QCheck.(
      list_of_size (Gen.int_range 2 40)
        (pair (float_range 0.001 0.05) (int_range 500 2000)))
    (fun gaps ->
      let p = Profile.create () in
      let time = ref 0. in
      List.iter
        (fun (gap, bits) ->
          time := !time +. gap;
          Profile.record p ~time:!time ~bits)
        gaps;
      let rates = [ 1e4; 5e4; 1e5; 5e5; 1e6 ] in
      let depths = List.map (fun r -> Profile.min_depth_bits p ~rate_bps:r) rates in
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b -. 1e-6 && non_increasing rest
        | _ -> true
      in
      non_increasing depths)

let suite =
  [
    Alcotest.test_case "basic accounting" `Quick test_basic_accounting;
    Alcotest.test_case "cbr depth is one packet" `Quick
      test_cbr_depth_is_one_packet;
    Alcotest.test_case "depth grows as rate shrinks" `Quick
      test_depth_grows_as_rate_shrinks;
    Alcotest.test_case "burst depth" `Quick test_burst_depth;
    Alcotest.test_case "depth certifies conformance" `Quick
      test_depth_certifies_conformance;
    Alcotest.test_case "delay bound uses P-G formula" `Quick
      test_delay_bound_uses_pg_formula;
    Alcotest.test_case "clock rate search" `Quick test_clock_rate_search;
    Alcotest.test_case "time monotonicity enforced" `Quick
      test_time_monotonicity_enforced;
    QCheck_alcotest.to_alcotest qcheck_depth_at_least_one_packet;
    QCheck_alcotest.to_alcotest qcheck_depth_monotone_in_rate;
  ]
