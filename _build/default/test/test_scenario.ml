module Scenario = Csz.Scenario

let test_flow_count () =
  Alcotest.(check int) "22 flows" 22 (List.length Scenario.figure1_flows)

let test_path_length_distribution () =
  let count len =
    List.length
      (List.filter (fun f -> Scenario.hops f = len) Scenario.figure1_flows)
  in
  Alcotest.(check int) "length 1" 12 (count 1);
  Alcotest.(check int) "length 2" 4 (count 2);
  Alcotest.(check int) "length 3" 4 (count 3);
  Alcotest.(check int) "length 4" 2 (count 4)

let test_ten_flows_per_link () =
  for link = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "link %d" link)
      10
      (List.length (Scenario.flows_on_link link))
  done

let test_unique_flow_ids () =
  let ids = List.map (fun f -> f.Scenario.flow) Scenario.figure1_flows in
  Alcotest.(check int) "distinct" 22 (List.length (List.sort_uniq compare ids))

let test_table3_per_link_mix () =
  (* The paper: each link carries 2 Guaranteed-Peak, 1 Guaranteed-Average,
     3 Predicted-High and 4 Predicted-Low. *)
  for link = 0 to 3 do
    let on_link = Scenario.flows_on_link link in
    let count cls =
      List.length
        (List.filter
           (fun f -> Scenario.table3_class_of f.Scenario.flow = cls)
           on_link)
    in
    Alcotest.(check int)
      (Printf.sprintf "GP on link %d" link)
      2
      (count Scenario.Guaranteed_peak);
    Alcotest.(check int)
      (Printf.sprintf "GA on link %d" link)
      1
      (count Scenario.Guaranteed_avg);
    Alcotest.(check int)
      (Printf.sprintf "PH on link %d" link)
      3
      (count Scenario.Predicted_high);
    Alcotest.(check int)
      (Printf.sprintf "PL on link %d" link)
      4
      (count Scenario.Predicted_low)
  done

let test_table3_totals () =
  let count cls =
    List.length
      (List.filter
         (fun f -> Scenario.table3_class_of f.Scenario.flow = cls)
         Scenario.figure1_flows)
  in
  (* "5 of the real-time flows are guaranteed service clients; 3 of these
     [at peak rate] ... 7 flows in the high priority class and the other 10
     flows in the low priority class." *)
  Alcotest.(check int) "3 Guaranteed-Peak" 3 (count Scenario.Guaranteed_peak);
  Alcotest.(check int) "2 Guaranteed-Average" 2 (count Scenario.Guaranteed_avg);
  Alcotest.(check int) "7 Predicted-High" 7 (count Scenario.Predicted_high);
  Alcotest.(check int) "10 Predicted-Low" 10 (count Scenario.Predicted_low)

let test_sample_flows_match_paper_rows () =
  (* Labels and path lengths of the eight sample rows, in the paper's
     order: Peak/4, Peak/2, Average/3, Average/1, High/4, High/2, Low/3,
     Low/1. *)
  let expected =
    [
      ("Peak", 4); ("Peak", 2); ("Average", 3); ("Average", 1);
      ("High", 4); ("High", 2); ("Low", 3); ("Low", 1);
    ]
  in
  let actual =
    List.map
      (fun (label, flow) ->
        let spec =
          List.find (fun f -> f.Scenario.flow = flow) Scenario.figure1_flows
        in
        (label, Scenario.hops spec))
      Scenario.table3_sample_flows
  in
  Alcotest.(check (list (pair string int))) "rows" expected actual

let test_tcp_paths_tile_links () =
  (* Every link carries exactly one datagram connection. *)
  let covering link =
    List.filter
      (fun (i, e) -> i <= link && link < e)
      Scenario.table3_tcp_paths
  in
  for link = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "link %d" link)
      1
      (List.length (covering link))
  done

let test_appendix_parameters () =
  Alcotest.(check (float 0.)) "A = 85" 85. Scenario.default_avg_rate_pps;
  Alcotest.(check (float 0.)) "bucket depth 50" 50.
    Scenario.token_bucket_depth_packets

let suite =
  [
    Alcotest.test_case "flow count" `Quick test_flow_count;
    Alcotest.test_case "path length distribution" `Quick
      test_path_length_distribution;
    Alcotest.test_case "ten flows per link" `Quick test_ten_flows_per_link;
    Alcotest.test_case "unique flow ids" `Quick test_unique_flow_ids;
    Alcotest.test_case "table3 per-link mix" `Quick test_table3_per_link_mix;
    Alcotest.test_case "table3 totals" `Quick test_table3_totals;
    Alcotest.test_case "sample flows match paper rows" `Quick
      test_sample_flows_match_paper_rows;
    Alcotest.test_case "tcp paths tile links" `Quick test_tcp_paths_tile_links;
    Alcotest.test_case "appendix parameters" `Quick test_appendix_parameters;
  ]
