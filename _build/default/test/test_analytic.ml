(* Closed-form formulas, plus the key validation: the discrete-event
   substrate reproduces M/D/1 waiting times for Poisson arrivals. *)
open Ispn_sim
module Analytic = Ispn_util.Analytic

let close tol = Alcotest.check (Alcotest.float tol)

let test_mm1_values () =
  (* rho = 0.5: W = 0.5 / (2 - 1) = 0.5; T = 1 / (2 - 1) = 1. *)
  close 1e-9 "W" 0.5 (Analytic.mm1_mean_wait ~lambda:1. ~mu:2.);
  close 1e-9 "T" 1.0 (Analytic.mm1_mean_sojourn ~lambda:1. ~mu:2.);
  close 1e-9 "T = W + 1/mu"
    (Analytic.mm1_mean_wait ~lambda:1. ~mu:2. +. 0.5)
    (Analytic.mm1_mean_sojourn ~lambda:1. ~mu:2.)

let test_md1_half_of_mm1 () =
  (* Classic fact: M/D/1 mean wait is half the M/M/1 wait at equal rho. *)
  let lambda = 800. and mu = 1000. in
  close 1e-9 "ratio"
    (Analytic.mm1_mean_wait ~lambda ~mu /. 2.)
    (Analytic.md1_mean_wait ~lambda ~service:(1. /. mu))

let test_instability_rejected () =
  try
    ignore (Analytic.mm1_mean_wait ~lambda:2. ~mu:1.);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_utilization () =
  close 1e-9 "rho" 0.8 (Analytic.utilization ~lambda:800. ~service:0.001)

(* The validation run: Poisson packets through a FIFO link = M/D/1. *)
let simulated_poisson_wait ~lambda ~duration =
  let engine = Engine.create () in
  let net =
    Network.chain ~engine ~n_switches:2 ~rate_bps:1e6
      ~qdisc_of:(fun _ ->
        Ispn_sched.Fifo.create ~pool:(Qdisc.pool ~capacity:10_000) ())
      ()
  in
  let probe = Probe.create () in
  Network.install_flow net ~flow:0 ~ingress:0 ~egress:1
    ~sink:(fun p -> Probe.sink probe ~engine p);
  let source =
    Ispn_traffic.Poisson.create ~engine
      ~prng:(Ispn_util.Prng.create ~seed:99L)
      ~flow:0 ~rate_pps:lambda
      ~emit:(fun p -> Network.inject net ~at_switch:0 p)
      ()
  in
  source.Ispn_traffic.Source.start ();
  Engine.run engine ~until:duration;
  (* Probe reports in packet times (ms); convert back to seconds. *)
  Probe.mean_qdelay probe /. 1000.

let test_simulator_matches_md1 () =
  List.iter
    (fun lambda ->
      let simulated = simulated_poisson_wait ~lambda ~duration:400. in
      let predicted = Analytic.md1_mean_wait ~lambda ~service:0.001 in
      let err = Float.abs (simulated -. predicted) /. predicted in
      if err > 0.08 then
        Alcotest.failf
          "lambda=%.0f: simulated %.6f vs M/D/1 %.6f (%.1f%% off)" lambda
          simulated predicted (100. *. err))
    [ 300.; 600.; 800. ]

let suite =
  [
    Alcotest.test_case "mm1 values" `Quick test_mm1_values;
    Alcotest.test_case "md1 is half mm1" `Quick test_md1_half_of_mm1;
    Alcotest.test_case "instability rejected" `Quick test_instability_rejected;
    Alcotest.test_case "utilization" `Quick test_utilization;
    Alcotest.test_case "simulator matches M/D/1" `Slow
      test_simulator_matches_md1;
  ]
