(* The Parekh-Gallager guarantee, tested end to end:

   - SAFETY: a token-bucket-conforming flow with clock rate r never exceeds
     (b + (K-1) Lmax) / r of queueing delay across K WFQ hops, no matter
     what the competing traffic does.
   - TIGHTNESS: greedy sources that keep their buckets empty get close to
     the bound (Section 4: "these bounds are strict").  *)
open Ispn_sim
module Bounds = Ispn_admission.Bounds
module Spec = Ispn_admission.Spec

let packet_bits = 1000

(* A chain of [hops] WFQ links at 1 Mbit/s; the observed flow has clock rate
   [rate_bps] everywhere, competitors share the rest. *)
let run_wfq_chain ~hops ~rate_bps ~attach_cross ~attach_flow ~duration =
  let engine = Engine.create () in
  let cross_rate = (1e6 -. rate_bps) /. 3. in
  let weight_of flow = if flow = 0 then rate_bps else cross_rate in
  let net =
    Network.chain ~engine ~n_switches:(hops + 1) ~rate_bps:1e6
      ~qdisc_of:(fun _ ->
        Ispn_sched.Wfq.create ~pool:(Qdisc.pool ~capacity:2000) ~link_rate_bps:1e6
          ~weight_of ())
      ()
  in
  let probe = Probe.create () in
  Network.install_flow net ~flow:0 ~ingress:0 ~egress:hops
    ~sink:(fun p -> Probe.sink probe ~engine p);
  attach_flow engine net;
  attach_cross engine net hops;
  Engine.run engine ~until:duration;
  probe

(* Three hostile competitors per link: greedy sources pushing far beyond
   their share so every link is permanently saturated. *)
let hostile_cross engine net hops =
  for link = 0 to hops - 1 do
    for i = 0 to 2 do
      let flow = 100 + (10 * link) + i in
      Network.install_flow net ~flow ~ingress:link ~egress:(link + 1)
        ~sink:(fun _ -> ());
      let source =
        Ispn_traffic.Greedy.create ~engine ~flow ~rate_pps:500.
          ~burst_packets:100
          ~emit:(fun p -> Network.inject net ~at_switch:link p)
          ()
      in
      source.Ispn_traffic.Source.start ()
    done
  done

(* Three competitors share each link with the observed flow, so the
   packetized (self-clocked) bound adds 3 Lmax/C of slack per hop on top of
   the fluid (b + (K-1) Lmax) / r. *)
let bound_seconds ~bucket_packets ~rate_bps ~hops =
  let bucket =
    {
      Spec.rate_bps;
      depth_bits = float_of_int (bucket_packets * packet_bits);
    }
  in
  Bounds.pg_bound_packetized ~bucket ~clock_rate_bps:rate_bps ~hops
    ~link_rate_bps:1e6 ~max_competitors:3 ()

let max_delay_seconds probe =
  Probe.max_qdelay probe /. 1000. (* packet times -> seconds at 1 Mbit/s *)

let test_safety_under_hostile_load () =
  (* The observed flow is greedy within its (r, b): worst conforming case. *)
  List.iter
    (fun (hops, bucket_packets) ->
      let rate_bps = 200_000. in
      let attach_flow engine net =
        let source =
          Ispn_traffic.Greedy.create ~engine ~flow:0 ~rate_pps:200.
            ~burst_packets:bucket_packets
            ~emit:(fun p -> Network.inject net ~at_switch:0 p)
            ()
        in
        source.Ispn_traffic.Source.start ()
      in
      let probe =
        run_wfq_chain ~hops ~rate_bps ~attach_cross:hostile_cross
          ~attach_flow ~duration:60.
      in
      let bound = bound_seconds ~bucket_packets ~rate_bps ~hops in
      let worst = max_delay_seconds probe in
      if worst > bound then
        Alcotest.failf "hops=%d b=%d: worst %.6f exceeds bound %.6f" hops
          bucket_packets worst bound)
    [ (1, 10); (2, 10); (3, 25); (4, 5) ]

let test_tightness_single_hop () =
  (* One hop, a greedy (r, b) flow against saturating competitors: the last
     packet of the opening burst should wait close to b/r. *)
  let rate_bps = 200_000. and bucket_packets = 20 in
  let attach_flow engine net =
    let source =
      Ispn_traffic.Greedy.create ~engine ~flow:0 ~rate_pps:200.
        ~burst_packets:bucket_packets
        ~emit:(fun p -> Network.inject net ~at_switch:0 p)
        ()
    in
    source.Ispn_traffic.Source.start ()
  in
  let probe =
    run_wfq_chain ~hops:1 ~rate_bps ~attach_cross:hostile_cross ~attach_flow
      ~duration:60.
  in
  let bound = bound_seconds ~bucket_packets ~rate_bps ~hops:1 in
  let worst = max_delay_seconds probe in
  (* Strictness: the realized worst case reaches at least 70% of the bound
     (packetization slack accounts for the rest). *)
  if worst < 0.7 *. bound then
    Alcotest.failf "bound loose: worst %.6f vs bound %.6f" worst bound;
  if worst > bound then
    Alcotest.failf "bound violated: %.6f > %.6f" worst bound

let test_isolation_independent_of_cross_traffic () =
  (* The same conforming flow sees (nearly) the same worst case whether the
     competitors are idle or hostile — the definition of isolation. *)
  let rate_bps = 200_000. and bucket_packets = 10 in
  let attach_flow engine net =
    let source =
      Ispn_traffic.Greedy.create ~engine ~flow:0 ~rate_pps:200.
        ~burst_packets:bucket_packets
        ~emit:(fun p -> Network.inject net ~at_switch:0 p)
        ()
    in
    source.Ispn_traffic.Source.start ()
  in
  let quiet_cross _ _ _ = () in
  let hostile =
    run_wfq_chain ~hops:2 ~rate_bps ~attach_cross:hostile_cross ~attach_flow
      ~duration:60.
  in
  let quiet =
    run_wfq_chain ~hops:2 ~rate_bps ~attach_cross:quiet_cross ~attach_flow
      ~duration:60.
  in
  let bound = bound_seconds ~bucket_packets ~rate_bps ~hops:2 in
  Alcotest.(check bool) "hostile within bound" true
    (max_delay_seconds hostile <= bound);
  Alcotest.(check bool) "quiet within bound" true
    (max_delay_seconds quiet <= bound)

let qcheck_safety_random_parameters =
  QCheck.Test.make ~name:"P-G safety for random (r, b, hops)" ~count:15
    QCheck.(
      triple (int_range 1 4) (int_range 1 30)
        (int_range 100_000 400_000))
    (fun (hops, bucket_packets, rate) ->
      let rate_bps = float_of_int rate in
      let attach_flow engine net =
        let source =
          Ispn_traffic.Greedy.create ~engine ~flow:0
            ~rate_pps:(rate_bps /. 1000.)
            ~burst_packets:bucket_packets
            ~emit:(fun p -> Network.inject net ~at_switch:0 p)
            ()
        in
        source.Ispn_traffic.Source.start ()
      in
      let probe =
        run_wfq_chain ~hops ~rate_bps ~attach_cross:hostile_cross
          ~attach_flow ~duration:20.
      in
      max_delay_seconds probe
      <= bound_seconds ~bucket_packets ~rate_bps ~hops +. 1e-9)

(* The same guarantee must hold through the *unified* scheduler, where the
   competition is not other WFQ flows but pseudo-flow 0 stuffed with
   predicted and datagram floods. *)
let test_safety_through_unified_scheduler () =
  let hops = 3 and rate_bps = 250_000. and bucket_packets = 15 in
  let engine = Engine.create () in
  let net =
    Network.chain ~engine ~n_switches:(hops + 1) ~rate_bps:1e6
      ~qdisc_of:(fun _ ->
        (* Unbounded buffers: this test isolates the *scheduling* guarantee;
           with finite shared buffers a persistent flow-0 overload would
           eventually buffer-drop guaranteed packets too, which is exactly
           why the architecture pairs the scheduler with admission control
           and a datagram quota. *)
        let st, q =
          Csz.Csz_sched.create ~pool:(Qdisc.unbounded_pool ()) ()
        in
        Csz.Csz_sched.add_guaranteed st ~flow:0 ~clock_rate_bps:rate_bps;
        Csz.Csz_sched.set_predicted st ~flow:50 ~cls:0;
        q)
      ()
  in
  let probe = Probe.create () in
  Network.install_flow net ~flow:0 ~ingress:0 ~egress:hops
    ~sink:(fun p -> Probe.sink probe ~engine p);
  let source =
    Ispn_traffic.Greedy.create ~engine ~flow:0 ~rate_pps:250.
      ~burst_packets:bucket_packets
      ~emit:(fun p -> Network.inject net ~at_switch:0 p)
      ()
  in
  source.Ispn_traffic.Source.start ();
  (* Hostile flow-0-mates: a high-priority predicted flood and a datagram
     flood at every hop. *)
  for link = 0 to hops - 1 do
    List.iter
      (fun flow ->
        Network.install_flow net ~flow ~ingress:link ~egress:(link + 1)
          ~sink:(fun _ -> ());
        let s =
          Ispn_traffic.Greedy.create ~engine ~flow ~rate_pps:600.
            ~burst_packets:100
            ~emit:(fun p -> Network.inject net ~at_switch:link p)
            ()
        in
        s.Ispn_traffic.Source.start ())
      [ 50; 99 + link ]
  done;
  Engine.run engine ~until:30.;
  (* In the unified scheduler the guaranteed flow competes only with
     pseudo-flow 0 at the GPS level; the 3-competitor slack in
     [bound_seconds] is ample. *)
  let bound = bound_seconds ~bucket_packets ~rate_bps ~hops in
  let worst = max_delay_seconds probe in
  if worst > bound then
    Alcotest.failf "CSZ guaranteed bound violated: %.6f > %.6f" worst bound;
  Alcotest.(check bool) "flow was actually exercised" true
    (Probe.received probe > 5000)

let suite =
  [
    Alcotest.test_case "safety under hostile load" `Slow
      test_safety_under_hostile_load;
    Alcotest.test_case "safety through unified scheduler" `Slow
      test_safety_through_unified_scheduler;
    Alcotest.test_case "tightness at a single hop" `Slow
      test_tightness_single_hop;
    Alcotest.test_case "isolation independent of cross traffic" `Slow
      test_isolation_independent_of_cross_traffic;
    QCheck_alcotest.to_alcotest qcheck_safety_random_parameters;
  ]
