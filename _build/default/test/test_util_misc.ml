(* Ewma, Fvec, Quantile, Units and Table in one suite: small modules, small
   tests. *)
open Ispn_util

let close = Alcotest.check (Alcotest.float 1e-9)

(* --- Ewma --- *)

let test_ewma_first_observation_replaces_init () =
  let e = Ewma.create ~init:99. ~gain:0.5 () in
  close "before" 99. (Ewma.value e);
  Ewma.update e 10.;
  close "first obs wins" 10. (Ewma.value e)

let test_ewma_gain_one_tracks_exactly () =
  let e = Ewma.create ~gain:1.0 () in
  List.iter (Ewma.update e) [ 1.; 5.; 3. ];
  close "gain 1" 3. (Ewma.value e)

let test_ewma_convergence () =
  let e = Ewma.create ~gain:0.25 () in
  Ewma.update e 0.;
  for _ = 1 to 200 do
    Ewma.update e 8.
  done;
  if Float.abs (Ewma.value e -. 8.) > 1e-6 then
    Alcotest.failf "did not converge: %g" (Ewma.value e)

let test_ewma_count () =
  let e = Ewma.create ~gain:0.1 () in
  List.iter (Ewma.update e) [ 1.; 2.; 3. ];
  Alcotest.(check int) "count" 3 (Ewma.count e)

(* --- Fvec --- *)

let test_fvec_push_get_growth () =
  let v = Fvec.create ~capacity:2 () in
  for i = 0 to 99 do
    Fvec.push v (float_of_int i)
  done;
  Alcotest.(check int) "length" 100 (Fvec.length v);
  close "get 0" 0. (Fvec.get v 0);
  close "get 99" 99. (Fvec.get v 99);
  Alcotest.check_raises "out of bounds" (Invalid_argument "Fvec.get")
    (fun () -> ignore (Fvec.get v 100))

let test_fvec_fold_iter () =
  let v = Fvec.create () in
  List.iter (Fvec.push v) [ 1.; 2.; 3. ];
  close "fold sum" 6. (Fvec.fold ( +. ) 0. v);
  let count = ref 0 in
  Fvec.iter (fun _ -> incr count) v;
  Alcotest.(check int) "iter count" 3 !count

let test_fvec_clear () =
  let v = Fvec.create () in
  Fvec.push v 1.;
  Fvec.clear v;
  Alcotest.(check int) "cleared" 0 (Fvec.length v)

let qcheck_fvec_model =
  QCheck.Test.make ~name:"fvec to_array equals pushed list" ~count:300
    QCheck.(list (float_range (-10.) 10.))
    (fun xs ->
      let v = Fvec.create () in
      List.iter (Fvec.push v) xs;
      Array.to_list (Fvec.to_array v) = xs)

let qcheck_fvec_sorted =
  QCheck.Test.make ~name:"sorted_copy is sorted permutation" ~count:300
    QCheck.(list (float_range (-10.) 10.))
    (fun xs ->
      let v = Fvec.create () in
      List.iter (Fvec.push v) xs;
      let sorted = Array.to_list (Fvec.sorted_copy v) in
      sorted = List.sort compare xs)

(* --- Quantile --- *)

let test_quantile_known () =
  let a = [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. |] in
  close "median" 5. (Quantile.of_sorted a 0.5);
  close "p90" 9. (Quantile.of_sorted a 0.9);
  close "p100" 10. (Quantile.of_sorted a 1.0);
  close "p0" 1. (Quantile.of_sorted a 0.)

let test_quantile_singleton () =
  close "single" 7. (Quantile.of_sorted [| 7. |] 0.999)

let test_quantile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Quantile.of_sorted: empty")
    (fun () -> ignore (Quantile.of_sorted [||] 0.5));
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Quantile.of_sorted: q out of range") (fun () ->
      ignore (Quantile.of_sorted [| 1. |] 1.5))

let qcheck_quantile_membership =
  QCheck.Test.make ~name:"quantile is an element of the sample" ~count:300
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 100) (float_range 0. 100.))
        (float_range 0. 1.))
    (fun (xs, q) ->
      let a = Array.of_list (List.sort compare xs) in
      List.mem (Quantile.of_sorted a q) xs)

let qcheck_quantile_monotone =
  QCheck.Test.make ~name:"quantile monotone in q" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 100) (float_range 0. 100.))
    (fun xs ->
      let a = Array.of_list (List.sort compare xs) in
      let qs = [ 0.; 0.25; 0.5; 0.75; 0.9; 0.999; 1.0 ] in
      let vals = List.map (Quantile.of_sorted a) qs in
      List.sort compare vals = vals)

(* --- Units --- *)

let test_units_transmission_time () =
  close "1000 bits at 1Mbps = 1ms" 0.001
    (Units.transmission_time ~link_rate_bps:1e6 ~packet_bits:1000)

let test_units_roundtrip () =
  let s = 0.042 in
  let units = Units.packet_times ~link_rate_bps:1e6 ~packet_bits:1000 s in
  close "42 packet times" 42. units;
  close "roundtrip" s
    (Units.seconds_of_packet_times ~link_rate_bps:1e6 ~packet_bits:1000 units)

(* --- Table --- *)

let test_table_layout () =
  let out =
    Table.render ~header:[ "name"; "x" ]
      ~rows:[ [ "a"; "1.00" ]; [ "bb"; "10.00" ] ]
      ()
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "line count" 4 (List.length lines);
  (* All lines equal width. *)
  match lines with
  | first :: rest ->
      List.iter
        (fun l ->
          Alcotest.(check int) "width" (String.length first) (String.length l))
        rest
  | [] -> Alcotest.fail "no output"

let test_table_pads_short_rows () =
  let out = Table.render ~header:[ "a"; "b"; "c" ] ~rows:[ [ "x" ] ] () in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_fmt_float () =
  Alcotest.(check string) "two decimals" "3.14" (Table.fmt_float 3.14159);
  Alcotest.(check string) "custom" "3.1416"
    (Table.fmt_float ~decimals:4 3.14159)

let suite =
  [
    Alcotest.test_case "ewma first observation" `Quick
      test_ewma_first_observation_replaces_init;
    Alcotest.test_case "ewma gain one" `Quick test_ewma_gain_one_tracks_exactly;
    Alcotest.test_case "ewma convergence" `Quick test_ewma_convergence;
    Alcotest.test_case "ewma count" `Quick test_ewma_count;
    Alcotest.test_case "fvec push/get/growth" `Quick test_fvec_push_get_growth;
    Alcotest.test_case "fvec fold/iter" `Quick test_fvec_fold_iter;
    Alcotest.test_case "fvec clear" `Quick test_fvec_clear;
    QCheck_alcotest.to_alcotest qcheck_fvec_model;
    QCheck_alcotest.to_alcotest qcheck_fvec_sorted;
    Alcotest.test_case "quantile known" `Quick test_quantile_known;
    Alcotest.test_case "quantile singleton" `Quick test_quantile_singleton;
    Alcotest.test_case "quantile errors" `Quick test_quantile_errors;
    QCheck_alcotest.to_alcotest qcheck_quantile_membership;
    QCheck_alcotest.to_alcotest qcheck_quantile_monotone;
    Alcotest.test_case "units transmission time" `Quick
      test_units_transmission_time;
    Alcotest.test_case "units roundtrip" `Quick test_units_roundtrip;
    Alcotest.test_case "table layout" `Quick test_table_layout;
    Alcotest.test_case "table pads short rows" `Quick
      test_table_pads_short_rows;
    Alcotest.test_case "fmt_float" `Quick test_fmt_float;
  ]
