open Ispn_sim
module Service = Csz.Service
module Spec = Ispn_admission.Spec

let make () =
  let engine = Engine.create () in
  let svc = Service.create ~engine ~n_switches:3 () in
  (engine, svc)

let test_guaranteed_establishment () =
  let _, svc = make () in
  let got = ref 0 in
  match
    Service.request svc ~flow:1 ~ingress:0 ~egress:2
      ~own_bucket:(Spec.bucket ~rate_pps:85. ~depth_packets:50. ())
      (Spec.Guaranteed { clock_rate_bps = 85_000. })
      ~sink:(fun _ -> incr got)
  with
  | Error e -> Alcotest.failf "rejected: %s" e
  | Ok est ->
      Alcotest.(check (option int)) "no class" None est.Service.cls;
      (match est.Service.advertised_bound with
      | Some b ->
          (* (50 pkts + 1 pkt store-and-forward) / 85 pkt/s = 0.6 s. *)
          Alcotest.(check (float 1e-3)) "P-G bound" 0.6 b
      | None -> Alcotest.fail "expected a bound");
      (* The scheduler at both links knows the flow. *)
      Alcotest.(check (float 1e-6)) "link 0 reserved" 85_000.
        (Csz.Csz_sched.guaranteed_reserved_bps (Service.sched svc ~link:0));
      Alcotest.(check (float 1e-6)) "link 1 reserved" 85_000.
        (Csz.Csz_sched.guaranteed_reserved_bps (Service.sched svc ~link:1))

let test_predicted_establishment_and_policing () =
  let engine, svc = make () in
  let got = ref 0 in
  match
    Service.request svc ~flow:2 ~ingress:0 ~egress:1
      (Spec.Predicted
         {
           bucket = Spec.bucket ~rate_pps:100. ~depth_packets:2. ();
           target_delay = 0.1;
           target_loss = 0.01;
         })
      ~sink:(fun _ -> incr got)
  with
  | Error e -> Alcotest.failf "rejected: %s" e
  | Ok est ->
      Alcotest.(check bool) "assigned a class" true (est.Service.cls <> None);
      (match est.Service.advertised_bound with
      | Some b -> Alcotest.(check bool) "bound positive" true (b > 0.)
      | None -> Alcotest.fail "expected a bound");
      (* Blast 10 packets instantly: depth 2 conform, the rest are policed
         away at the edge. *)
      for i = 0 to 9 do
        est.Service.emit (Packet.make ~flow:2 ~seq:i ~created:0. ())
      done;
      Engine.run engine ~until:1.;
      Alcotest.(check int) "edge policing enforced" 2 !got

let test_datagram_passes_unpoliced () =
  let engine, svc = make () in
  let got = ref 0 in
  (match
     Service.request svc ~flow:3 ~ingress:0 ~egress:2 Spec.Datagram
       ~sink:(fun _ -> incr got)
   with
  | Error e -> Alcotest.failf "rejected: %s" e
  | Ok est ->
      for i = 0 to 9 do
        est.Service.emit (Packet.make ~flow:3 ~seq:i ~created:0. ())
      done);
  Engine.run engine ~until:1.;
  Alcotest.(check int) "all through" 10 !got

let test_rejection_surfaces () =
  let _, svc = make () in
  ignore
    (Service.request svc ~flow:1 ~ingress:0 ~egress:2
       (Spec.Guaranteed { clock_rate_bps = 850_000. })
       ~sink:(fun _ -> ()));
  match
    Service.request svc ~flow:2 ~ingress:0 ~egress:2
      (Spec.Guaranteed { clock_rate_bps = 200_000. })
      ~sink:(fun _ -> ())
  with
  | Error _ ->
      Alcotest.(check int) "rejected count" 1 (Service.rejected svc)
  | Ok _ -> Alcotest.fail "over-quota request admitted"

let test_teardown_releases () =
  let _, svc = make () in
  (match
     Service.request svc ~flow:1 ~ingress:0 ~egress:2
       (Spec.Guaranteed { clock_rate_bps = 500_000. })
       ~sink:(fun _ -> ())
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "rejected: %s" e);
  Service.teardown svc ~flow:1;
  Alcotest.(check (float 1e-6)) "sched released" 0.
    (Csz.Csz_sched.guaranteed_reserved_bps (Service.sched svc ~link:0));
  Alcotest.(check int) "controller released" 0 (Service.admitted svc)

let test_epoch_pump_runs () =
  let engine, svc = make () in
  Service.start svc;
  (* Nothing should blow up over many epochs with idle links. *)
  Engine.run engine ~until:20.;
  Alcotest.(check bool) "pump alive" true (Engine.pending engine > 0)

let suite =
  [
    Alcotest.test_case "guaranteed establishment" `Quick
      test_guaranteed_establishment;
    Alcotest.test_case "predicted establishment and policing" `Quick
      test_predicted_establishment_and_policing;
    Alcotest.test_case "datagram passes unpoliced" `Quick
      test_datagram_passes_unpoliced;
    Alcotest.test_case "rejection surfaces" `Quick test_rejection_surfaces;
    Alcotest.test_case "teardown releases" `Quick test_teardown_releases;
    Alcotest.test_case "epoch pump runs" `Quick test_epoch_pump_runs;
  ]
