module Spec = Ispn_admission.Spec
module Bounds = Ispn_admission.Bounds
module Meter = Ispn_admission.Meter
module Controller = Ispn_admission.Controller
module Units = Ispn_util.Units

(* --- Spec --- *)

let test_bucket_constructor () =
  let b = Spec.bucket ~rate_pps:85. ~depth_packets:50. () in
  Alcotest.(check (float 1e-6)) "rate" 85_000. b.Spec.rate_bps;
  Alcotest.(check (float 1e-6)) "depth" 50_000. b.Spec.depth_bits

let test_declared_rate () =
  Alcotest.(check (float 0.)) "guaranteed" 1e5
    (Spec.declared_rate_bps (Spec.Guaranteed { clock_rate_bps = 1e5 }));
  Alcotest.(check (float 0.)) "datagram" 0. (Spec.declared_rate_bps Spec.Datagram)

let test_is_realtime () =
  Alcotest.(check bool) "guaranteed" true
    (Spec.is_realtime (Spec.Guaranteed { clock_rate_bps = 1. }));
  Alcotest.(check bool) "datagram" false (Spec.is_realtime Spec.Datagram)

(* --- Bounds: the paper's Table 3 values --- *)

let to_units s = Units.packet_times ~link_rate_bps:1e6 ~packet_bits:1000 s

let test_pg_bound_matches_table3 () =
  (* Guaranteed-Peak (r = 170 pkt/s, effective depth 1 packet):
     4 hops -> 23.53, 2 hops -> 11.76 packet times. *)
  let peak = { Spec.rate_bps = 170_000.; depth_bits = 1000. } in
  let b4 = Bounds.pg_bound ~bucket:peak ~clock_rate_bps:170_000. ~hops:4 () in
  let b2 = Bounds.pg_bound ~bucket:peak ~clock_rate_bps:170_000. ~hops:2 () in
  Alcotest.(check (float 0.01)) "Peak/4" 23.53 (to_units b4);
  Alcotest.(check (float 0.01)) "Peak/2" 11.76 (to_units b2);
  (* Guaranteed-Average (r = 85 pkt/s, depth 50 packets):
     3 hops -> 611.76, 1 hop -> 588.24. *)
  let avg = Spec.bucket ~rate_pps:85. ~depth_packets:50. () in
  let b3 = Bounds.pg_bound ~bucket:avg ~clock_rate_bps:85_000. ~hops:3 () in
  let b1 = Bounds.pg_bound ~bucket:avg ~clock_rate_bps:85_000. ~hops:1 () in
  Alcotest.(check (float 0.01)) "Average/3" 611.76 (to_units b3);
  Alcotest.(check (float 0.01)) "Average/1" 588.24 (to_units b1)

let test_pg_bound_validations () =
  let b = Spec.bucket ~rate_pps:85. ~depth_packets:50. () in
  Alcotest.check_raises "hops < 1"
    (Invalid_argument "Bounds.pg_bound: hops must be >= 1") (fun () ->
      ignore (Bounds.pg_bound ~bucket:b ~clock_rate_bps:85_000. ~hops:0 ()));
  Alcotest.check_raises "clock below bucket rate"
    (Invalid_argument "Bounds.pg_bound: clock rate below bucket rate")
    (fun () -> ignore (Bounds.pg_bound ~bucket:b ~clock_rate_bps:1000. ~hops:1 ()))

let test_pg_bound_packetized () =
  let b = Spec.bucket ~rate_pps:200. ~depth_packets:10. () in
  let fluid = Bounds.pg_bound ~bucket:b ~clock_rate_bps:200_000. ~hops:2 () in
  let packetized =
    Bounds.pg_bound_packetized ~bucket:b ~clock_rate_bps:200_000. ~hops:2
      ~link_rate_bps:1e6 ~max_competitors:3 ()
  in
  (* 2 hops x 3 competitors x 1 ms of slack. *)
  Alcotest.(check (float 1e-9)) "slack" 0.006 (packetized -. fluid);
  Alcotest.check_raises "negative competitors"
    (Invalid_argument "Bounds.pg_bound_packetized: negative competitors")
    (fun () ->
      ignore
        (Bounds.pg_bound_packetized ~bucket:b ~clock_rate_bps:200_000. ~hops:1
           ~link_rate_bps:1e6 ~max_competitors:(-1) ()))

let test_effective_depth () =
  let b = Spec.bucket ~rate_pps:85. ~depth_packets:50. () in
  (* Clock at or above peak: one packet. *)
  Alcotest.(check (float 1e-6)) "peak clock" 1000.
    (Bounds.effective_depth_bits ~bucket:b ~clock_rate_bps:170_000.
       ~peak_rate_bps:170_000. ());
  (* Clock below peak: declared depth. *)
  Alcotest.(check (float 1e-6)) "average clock" 50_000.
    (Bounds.effective_depth_bits ~bucket:b ~clock_rate_bps:85_000.
       ~peak_rate_bps:170_000. ())

let test_predicted_bound_sums_targets () =
  let targets = [| 0.008; 0.064 |] in
  Alcotest.(check (float 1e-9)) "3 hops class 1" 0.192
    (Bounds.predicted_bound ~class_targets:targets ~cls:1 ~hops:3)

(* --- Meter --- *)

let test_meter_windowed_max () =
  let m = Meter.create ~n_classes:2 ~epochs:3 () in
  Meter.note_util m 0.5;
  Meter.note_util m 0.7;
  Alcotest.(check (float 1e-9)) "max within epoch" 0.7 (Meter.util_hat m);
  Meter.rotate m;
  Meter.note_util m 0.2;
  Alcotest.(check (float 1e-9)) "max across epochs" 0.7 (Meter.util_hat m);
  Meter.rotate m;
  Meter.rotate m;
  (* The 0.7 epoch has fallen out of the 3-epoch window. *)
  Alcotest.(check (float 1e-9)) "old peak expires" 0.2 (Meter.util_hat m)

let test_meter_class_delays () =
  let m = Meter.create ~n_classes:2 ~epochs:2 () in
  Meter.note_delay m ~cls:0 0.004;
  Meter.note_delay m ~cls:1 0.050;
  Meter.note_delay m ~cls:0 0.002;
  Alcotest.(check (float 1e-9)) "class 0 max" 0.004 (Meter.delay_hat m ~cls:0);
  Alcotest.(check (float 1e-9)) "class 1 max" 0.050 (Meter.delay_hat m ~cls:1);
  Alcotest.check_raises "bad class"
    (Invalid_argument "Meter.delay_hat: class out of range") (fun () ->
      ignore (Meter.delay_hat m ~cls:5))

(* --- Controller --- *)

let mk_ctrl ?(n_links = 2) () =
  Controller.create ~n_links ~mu_bps:1e6 ~class_targets:[| 0.008; 0.064 |] ()

let test_datagram_always_admitted () =
  let c = mk_ctrl () in
  match Controller.request c ~flow:1 ~path:[] Spec.Datagram with
  | Controller.Admitted { cls = None } -> ()
  | _ -> Alcotest.fail "datagram must be admitted"

let test_guaranteed_quota () =
  let c = mk_ctrl () in
  let ask flow r =
    Controller.request c ~flow ~path:[ 0 ]
      (Spec.Guaranteed { clock_rate_bps = r })
  in
  (match ask 1 500_000. with
  | Controller.Admitted _ -> ()
  | Controller.Rejected r -> Alcotest.failf "first 500k rejected: %s" r);
  (* 500k reserved; another 500k would exceed the 90% quota. *)
  (match ask 2 500_000. with
  | Controller.Rejected _ -> ()
  | Controller.Admitted _ -> Alcotest.fail "quota not enforced");
  Alcotest.(check (float 1e-6)) "reserved" 500_000.
    (Controller.guaranteed_reserved_bps c ~link:0);
  Alcotest.(check int) "one admitted" 1 (Controller.admitted c);
  Alcotest.(check int) "one rejected" 1 (Controller.rejected c)

let test_release_restores_capacity () =
  let c = mk_ctrl () in
  let ask flow =
    Controller.request c ~flow ~path:[ 0 ]
      (Spec.Guaranteed { clock_rate_bps = 500_000. })
  in
  ignore (ask 1);
  Controller.release c ~flow:1;
  (* Declared-rate accounting of the released flow must also be gone after
     the measurement window passes. *)
  for _ = 1 to 10 do
    Controller.epoch c
  done;
  match ask 2 with
  | Controller.Admitted _ -> ()
  | Controller.Rejected r -> Alcotest.failf "capacity not restored: %s" r

let test_predicted_class_selection () =
  let c = mk_ctrl () in
  let bucket = Spec.bucket ~rate_pps:85. ~depth_packets:10. () in
  (* Loose end-to-end target over 2 hops: lowest class (1) suffices. *)
  (match
     Controller.request c ~flow:1 ~path:[ 0; 1 ]
       (Spec.Predicted { bucket; target_delay = 0.2; target_loss = 0.01 })
   with
  | Controller.Admitted { cls = Some 1 } -> ()
  | Controller.Admitted { cls } ->
      Alcotest.failf "expected class 1, got %s"
        (match cls with Some c -> string_of_int c | None -> "none")
  | Controller.Rejected r -> Alcotest.failf "rejected: %s" r);
  (* Tight target: needs class 0 (2 hops * 8 ms fits under 17 ms; 2 * 64 ms
     does not).  The burst must also be small enough to drain inside the
     8 ms class target, hence the shallow bucket. *)
  let small = Spec.bucket ~rate_pps:85. ~depth_packets:2. () in
  (match
     Controller.request c ~flow:2 ~path:[ 0; 1 ]
       (Spec.Predicted
          { bucket = small; target_delay = 0.017; target_loss = 0.01 })
   with
  | Controller.Admitted { cls = Some 0 } -> ()
  | _ -> Alcotest.fail "expected class 0");
  (* Unattainable target: rejected. *)
  match
    Controller.request c ~flow:3 ~path:[ 0; 1 ]
      (Spec.Predicted { bucket; target_delay = 0.001; target_loss = 0.01 })
  with
  | Controller.Rejected _ -> ()
  | Controller.Admitted _ -> Alcotest.fail "impossible target admitted"

let test_predicted_burst_rejected_when_class_loaded () =
  let c = mk_ctrl ~n_links:1 () in
  (* Report a measured class-1 delay of 60 ms against a 64 ms target: only
     4 ms of slack.  A flow with a large bucket must be refused. *)
  let m = Controller.meter c ~link:0 in
  Meter.note_delay m ~cls:1 0.060;
  Meter.note_util m 0.5;
  let big = Spec.bucket ~rate_pps:50. ~depth_packets:50. () in
  (match
     Controller.request c ~flow:1 ~path:[ 0 ]
       (Spec.Predicted { bucket = big; target_delay = 0.064; target_loss = 0.01 })
   with
  | Controller.Rejected _ -> ()
  | Controller.Admitted _ -> Alcotest.fail "burst risk ignored");
  (* A small-bucket flow still fits. *)
  let small = Spec.bucket ~rate_pps:10. ~depth_packets:1. () in
  match
    Controller.request c ~flow:2 ~path:[ 0 ]
      (Spec.Predicted { bucket = small; target_delay = 0.064; target_loss = 0.01 })
  with
  | Controller.Admitted _ -> ()
  | Controller.Rejected r -> Alcotest.failf "small flow rejected: %s" r

let test_measured_utilization_gates_admission () =
  let c = mk_ctrl ~n_links:1 () in
  let m = Controller.meter c ~link:0 in
  Meter.note_util m 0.88;
  (* 0.88 measured + 0.05 requested > 0.9: refuse. *)
  match
    Controller.request c ~flow:1 ~path:[ 0 ]
      (Spec.Guaranteed { clock_rate_bps = 50_000. })
  with
  | Controller.Rejected _ -> ()
  | Controller.Admitted _ -> Alcotest.fail "measured load ignored"

let test_duplicate_flow_rejected () =
  let c = mk_ctrl () in
  ignore
    (Controller.request c ~flow:1 ~path:[ 0 ]
       (Spec.Guaranteed { clock_rate_bps = 1000. }));
  try
    ignore
      (Controller.request c ~flow:1 ~path:[ 0 ]
         (Spec.Guaranteed { clock_rate_bps = 1000. }));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_increasing_targets_required () =
  try
    ignore
      (Controller.create ~n_links:1 ~mu_bps:1e6
         ~class_targets:[| 0.064; 0.008 |] ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "bucket constructor" `Quick test_bucket_constructor;
    Alcotest.test_case "declared rate" `Quick test_declared_rate;
    Alcotest.test_case "is_realtime" `Quick test_is_realtime;
    Alcotest.test_case "P-G bounds match Table 3" `Quick
      test_pg_bound_matches_table3;
    Alcotest.test_case "P-G bound validations" `Quick test_pg_bound_validations;
    Alcotest.test_case "P-G packetized slack" `Quick test_pg_bound_packetized;
    Alcotest.test_case "effective depth" `Quick test_effective_depth;
    Alcotest.test_case "predicted bound sums targets" `Quick
      test_predicted_bound_sums_targets;
    Alcotest.test_case "meter windowed max" `Quick test_meter_windowed_max;
    Alcotest.test_case "meter class delays" `Quick test_meter_class_delays;
    Alcotest.test_case "datagram always admitted" `Quick
      test_datagram_always_admitted;
    Alcotest.test_case "guaranteed quota" `Quick test_guaranteed_quota;
    Alcotest.test_case "release restores capacity" `Quick
      test_release_restores_capacity;
    Alcotest.test_case "predicted class selection" `Quick
      test_predicted_class_selection;
    Alcotest.test_case "burst rejected when class loaded" `Quick
      test_predicted_burst_rejected_when_class_loaded;
    Alcotest.test_case "measured utilization gates admission" `Quick
      test_measured_utilization_gates_admission;
    Alcotest.test_case "duplicate flow rejected" `Quick
      test_duplicate_flow_rejected;
    Alcotest.test_case "increasing targets required" `Quick
      test_increasing_targets_required;
  ]
