open Ispn_sim
module Tcp = Ispn_transport.Tcp

(* A one-link network with a configurable buffer; TCP data flows across it,
   acks return out of band (Tcp's own ack_delay). *)
let make_net ?(buffer = 50) ?(rate_bps = 1e6) () =
  let engine = Engine.create () in
  let net =
    Network.chain ~engine ~n_switches:2 ~rate_bps
      ~qdisc_of:(fun _ ->
        Ispn_sched.Fifo.create ~pool:(Qdisc.pool ~capacity:buffer) ())
      ()
  in
  (engine, net)

let make_conn ?(buffer = 50) ?config () =
  let engine, net = make_net ~buffer () in
  let tcp =
    Tcp.create ~engine ~flow:1 ?config
      ~send:(fun p -> Network.inject net ~at_switch:0 p)
      ()
  in
  Network.install_flow net ~flow:1 ~ingress:0 ~egress:1
    ~sink:(fun p -> Tcp.receive tcp p);
  (engine, net, tcp)

let test_transfers_lossless () =
  (* Buffer larger than the 64-segment receive window: no drops possible. *)
  let engine, net, tcp = make_conn ~buffer:100 () in
  Tcp.start tcp;
  Engine.run engine ~until:5.;
  Alcotest.(check int) "no buffer drops" 0 (Network.total_dropped net);
  Alcotest.(check int) "no retransmissions" 0 (Tcp.retransmissions tcp);
  (* The link fits 1000 pkt/s; a healthy connection should deliver most of
     that once the window opens. *)
  if Tcp.delivered tcp < 4000 then
    Alcotest.failf "poor goodput: %d delivered in 5s" (Tcp.delivered tcp)

let test_slow_start_growth () =
  let engine, _, tcp = make_conn () in
  Tcp.start tcp;
  Engine.run engine ~until:0.1;
  if Tcp.cwnd tcp <= 1. then
    Alcotest.failf "cwnd did not grow: %.1f" (Tcp.cwnd tcp)

let test_recovers_from_drops () =
  (* A 5-packet buffer forces drops; the connection must keep delivering,
     in order, without duplication. *)
  let engine, net, tcp = make_conn ~buffer:5 () in
  Tcp.start tcp;
  Engine.run engine ~until:10.;
  Alcotest.(check bool) "drops happened" true (Network.total_dropped net > 0);
  Alcotest.(check bool) "recovered and progressed" true
    (Tcp.delivered tcp > 1000);
  Alcotest.(check bool) "loss visible to sender" true
    (Tcp.retransmissions tcp > 0)

let test_delivery_bounded_by_sent () =
  let engine, _, tcp = make_conn ~buffer:5 () in
  Tcp.start tcp;
  Engine.run engine ~until:3.;
  Alcotest.(check bool) "delivered <= distinct sent" true
    (Tcp.delivered tcp <= Tcp.segments_sent tcp - Tcp.retransmissions tcp + 1)

let test_utilizes_link () =
  let engine, net, tcp = make_conn () in
  Tcp.start tcp;
  Engine.run engine ~until:10.;
  let util = Network.utilization net ~link:0 ~elapsed:10. in
  if util < 0.9 then Alcotest.failf "TCP left link underused: %.2f" util

let test_stop_freezes () =
  let engine, _, tcp = make_conn () in
  Tcp.start tcp;
  Engine.run engine ~until:1.;
  Tcp.stop tcp;
  let sent = Tcp.segments_sent tcp in
  Engine.run engine ~until:5.;
  Alcotest.(check int) "no segments after stop" sent (Tcp.segments_sent tcp)

let test_goodput_accounting () =
  let engine, _, tcp = make_conn () in
  Tcp.start tcp;
  Engine.run engine ~until:2.;
  let g = Tcp.goodput_bps tcp ~elapsed:2. in
  Alcotest.(check (float 1.)) "goodput = delivered * bits / t"
    (float_of_int (Tcp.delivered tcp) *. 1000. /. 2.)
    g

let test_two_connections_share () =
  (* Two TCPs over one link should each get a nontrivial share. *)
  let engine, net = make_net () in
  let mk flow =
    let tcp =
      Tcp.create ~engine ~flow
        ~send:(fun p -> Network.inject net ~at_switch:0 p)
        ()
    in
    Network.install_flow net ~flow ~ingress:0 ~egress:1
      ~sink:(fun p -> Tcp.receive tcp p);
    tcp
  in
  let a = mk 1 and b = mk 2 in
  Tcp.start a;
  Tcp.start b;
  Engine.run engine ~until:10.;
  let da = Tcp.delivered a and db = Tcp.delivered b in
  if da = 0 || db = 0 then Alcotest.failf "starvation: %d vs %d" da db

let reno_config = { Tcp.default_config with Tcp.flavor = Tcp.Reno }

let test_reno_recovers_without_collapse () =
  (* A tight buffer forces drops; Reno should take fast-recovery exits and
     keep delivering. *)
  let engine, net, tcp = make_conn ~buffer:8 ~config:reno_config () in
  Tcp.start tcp;
  Engine.run engine ~until:10.;
  Alcotest.(check bool) "drops happened" true (Network.total_dropped net > 0);
  Alcotest.(check bool) "fast recovery used" true (Tcp.fast_recoveries tcp > 0);
  Alcotest.(check bool) "still delivering" true (Tcp.delivered tcp > 1000)

let test_reno_matches_tahoe_when_lossless () =
  let run config =
    let engine, _, tcp = make_conn ~buffer:100 ~config () in
    Tcp.start tcp;
    Engine.run engine ~until:5.;
    Tcp.delivered tcp
  in
  Alcotest.(check int) "identical without loss"
    (run Tcp.default_config) (run reno_config)

let test_reno_outperforms_tahoe_under_loss () =
  (* Same deterministic network, same drops at first: Reno's halving beats
     Tahoe's collapse on goodput. *)
  let run config =
    let engine, _, tcp = make_conn ~buffer:8 ~config () in
    Tcp.start tcp;
    Engine.run engine ~until:20.;
    Tcp.delivered tcp
  in
  let tahoe = run Tcp.default_config in
  let reno = run reno_config in
  if float_of_int reno < 0.95 *. float_of_int tahoe then
    Alcotest.failf "reno %d well below tahoe %d" reno tahoe

let test_reno_in_order_delivery () =
  (* Out-of-order arrival at the receiver never produces gaps: delivered
     counts only the in-order prefix. *)
  let engine, _, tcp = make_conn ~buffer:8 ~config:reno_config () in
  Tcp.start tcp;
  Engine.run engine ~until:10.;
  Alcotest.(check bool) "delivered prefix consistent" true
    (Tcp.delivered tcp <= Tcp.segments_sent tcp)

let suite =
  [
    Alcotest.test_case "transfers lossless" `Quick test_transfers_lossless;
    Alcotest.test_case "reno recovers without collapse" `Quick
      test_reno_recovers_without_collapse;
    Alcotest.test_case "reno matches tahoe when lossless" `Quick
      test_reno_matches_tahoe_when_lossless;
    Alcotest.test_case "reno outperforms tahoe under loss" `Quick
      test_reno_outperforms_tahoe_under_loss;
    Alcotest.test_case "reno in-order delivery" `Quick
      test_reno_in_order_delivery;
    Alcotest.test_case "slow start growth" `Quick test_slow_start_growth;
    Alcotest.test_case "recovers from drops" `Quick test_recovers_from_drops;
    Alcotest.test_case "delivery bounded by sent" `Quick
      test_delivery_bounded_by_sent;
    Alcotest.test_case "utilizes link" `Quick test_utilizes_link;
    Alcotest.test_case "stop freezes" `Quick test_stop_freezes;
    Alcotest.test_case "goodput accounting" `Quick test_goodput_accounting;
    Alcotest.test_case "two connections share" `Quick
      test_two_connections_share;
  ]
