open Ispn_sim
module Tb = Ispn_traffic.Token_bucket

let test_starts_full () =
  let tb = Tb.create ~rate_bps:1000. ~depth_bits:5000. () in
  Alcotest.(check (float 1e-6)) "full" 5000. (Tb.level_bits tb ~now:0.)

let test_burst_up_to_depth () =
  let tb = Tb.create ~rate_bps:1000. ~depth_bits:5000. () in
  for i = 1 to 5 do
    if not (Tb.conforms tb ~now:0. ~bits:1000) then
      Alcotest.failf "packet %d of the initial burst rejected" i
  done;
  Alcotest.(check bool) "sixth rejected" false (Tb.conforms tb ~now:0. ~bits:1000)

let test_refill_over_time () =
  let tb = Tb.create ~rate_bps:1000. ~depth_bits:5000. () in
  for _ = 1 to 5 do
    ignore (Tb.conforms tb ~now:0. ~bits:1000)
  done;
  Alcotest.(check bool) "empty" false (Tb.conforms tb ~now:0. ~bits:1000);
  (* One second at 1000 bits/s refills one packet. *)
  Alcotest.(check bool) "after refill" true (Tb.conforms tb ~now:1.0 ~bits:1000)

let test_refill_caps_at_depth () =
  let tb = Tb.create ~rate_bps:1000. ~depth_bits:2000. () in
  Alcotest.(check (float 1e-6)) "capped" 2000.
    (Tb.level_bits tb ~now:1000.)

let test_nonconforming_leaves_bucket_unchanged () =
  let tb = Tb.create ~rate_bps:1000. ~depth_bits:1500. () in
  Alcotest.(check bool) "too big" false (Tb.conforms tb ~now:0. ~bits:2000);
  Alcotest.(check (float 1e-6)) "level intact" 1500. (Tb.level_bits tb ~now:0.)

(* Reference implementation: the paper's recurrence
   n_i = min (b, n_{i-1} + (t_i - t_{i-1}) r - p_i), conforming iff n_i >= 0
   for all i (with n_0' = b at t = 0). *)
let reference_conformance ~rate ~depth arrivals =
  let rec go level last_t acc = function
    | [] -> List.rev acc
    | (t, p) :: rest ->
        let filled = Stdlib.min depth (level +. ((t -. last_t) *. rate)) in
        let after = filled -. p in
        if after >= 0. then go after t (true :: acc) rest
        else go filled t (false :: acc) rest
  in
  go depth 0. [] arrivals

let qcheck_matches_paper_recurrence =
  let gen =
    QCheck.(
      list_of_size (Gen.int_range 0 50)
        (pair (float_range 0.001 0.5) (int_range 100 2000)))
  in
  QCheck.Test.make ~name:"filter decisions match the paper's n_i recurrence"
    ~count:300 gen (fun gaps ->
      (* Build a monotone arrival sequence from the positive gaps. *)
      let _, arrivals =
        List.fold_left
          (fun (t, acc) (gap, bits) ->
            let t = t +. gap in
            (t, (t, float_of_int bits) :: acc))
          (0., []) gaps
      in
      let arrivals = List.rev arrivals in
      let rate = 4000. and depth = 3000. in
      let tb = Tb.create ~rate_bps:rate ~depth_bits:depth () in
      let ours =
        List.map
          (fun (t, bits) -> Tb.conforms tb ~now:t ~bits:(int_of_float bits))
          arrivals
      in
      ours = reference_conformance ~rate ~depth arrivals)

(* --- Policer --- *)

let test_policer_drop_mode () =
  let engine = Engine.create () in
  let bucket = Tb.create ~rate_bps:1000. ~depth_bits:2000. () in
  let passed = ref 0 in
  let p =
    Tb.policer ~engine ~bucket ~mode:Tb.Drop ~next:(fun _ -> incr passed)
  in
  for i = 0 to 4 do
    Tb.police p (Packet.make ~flow:0 ~seq:i ~created:0. ())
  done;
  Alcotest.(check int) "offered" 5 (Tb.offered p);
  Alcotest.(check int) "passed" 2 !passed;
  Alcotest.(check int) "dropped" 3 (Tb.dropped p);
  Alcotest.(check int) "violations" 3 (Tb.violations p)

let test_policer_pass_mode () =
  let engine = Engine.create () in
  let bucket = Tb.create ~rate_bps:1000. ~depth_bits:1000. () in
  let passed = ref 0 in
  let p =
    Tb.policer ~engine ~bucket ~mode:Tb.Pass ~next:(fun _ -> incr passed)
  in
  for i = 0 to 3 do
    Tb.police p (Packet.make ~flow:0 ~seq:i ~created:0. ())
  done;
  Alcotest.(check int) "all forwarded" 4 !passed;
  Alcotest.(check int) "violations counted" 3 (Tb.violations p);
  Alcotest.(check int) "none dropped" 0 (Tb.dropped p)

(* --- Leaky bucket shaper --- *)

let test_leaky_bucket_spaces_output () =
  let engine = Engine.create () in
  let times = ref [] in
  let lb =
    Ispn_traffic.Leaky_bucket.create ~engine ~rate_bps:1e5
      ~next:(fun _ -> times := Engine.now engine :: !times)
      ()
  in
  (* Burst of 5 at t=0 through a 100 kbit/s shaper with one-packet depth:
     output at 0, 10ms, 20ms, 30ms, 40ms. *)
  for i = 0 to 4 do
    Ispn_traffic.Leaky_bucket.send lb
      (Packet.make ~flow:0 ~seq:i ~created:0. ())
  done;
  Engine.run engine ~until:1.;
  let times = List.rev !times in
  Alcotest.(check int) "all forwarded" 5 (List.length times);
  List.iteri
    (fun i t ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "spacing %d" i)
        (0.01 *. float_of_int i)
        t)
    times;
  Alcotest.(check int) "forwarded count" 5
    (Ispn_traffic.Leaky_bucket.forwarded lb)

let test_leaky_bucket_queue_bound () =
  let engine = Engine.create () in
  let lb =
    Ispn_traffic.Leaky_bucket.create ~engine ~rate_bps:1e3 ~max_queue:2
      ~next:(fun _ -> ())
      ()
  in
  for i = 0 to 9 do
    Ispn_traffic.Leaky_bucket.send lb (Packet.make ~flow:0 ~seq:i ~created:0. ())
  done;
  Alcotest.(check bool) "some dropped" true
    (Ispn_traffic.Leaky_bucket.dropped lb > 0)

let suite =
  [
    Alcotest.test_case "starts full" `Quick test_starts_full;
    Alcotest.test_case "burst up to depth" `Quick test_burst_up_to_depth;
    Alcotest.test_case "refill over time" `Quick test_refill_over_time;
    Alcotest.test_case "refill caps at depth" `Quick test_refill_caps_at_depth;
    Alcotest.test_case "nonconforming leaves bucket" `Quick
      test_nonconforming_leaves_bucket_unchanged;
    QCheck_alcotest.to_alcotest qcheck_matches_paper_recurrence;
    Alcotest.test_case "policer drop mode" `Quick test_policer_drop_mode;
    Alcotest.test_case "policer pass mode" `Quick test_policer_pass_mode;
    Alcotest.test_case "leaky bucket spaces output" `Quick
      test_leaky_bucket_spaces_output;
    Alcotest.test_case "leaky bucket queue bound" `Quick
      test_leaky_bucket_queue_bound;
  ]
