open Ispn_util

let check = Alcotest.check

let test_determinism () =
  let a = Prng.create ~seed:7L and b = Prng.create ~seed:7L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same sequence" (Prng.int64 a) (Prng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:7L and b = Prng.create ~seed:8L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.int64 a = Prng.int64 b then incr same
  done;
  check Alcotest.int "different seeds differ" 0 !same

let test_split_independence () =
  let parent = Prng.create ~seed:1L in
  let child = Prng.split parent in
  (* The child must not replay the parent's subsequent stream. *)
  let p = List.init 32 (fun _ -> Prng.int64 parent) in
  let c = List.init 32 (fun _ -> Prng.int64 child) in
  Alcotest.(check bool) "streams differ" false (p = c)

let test_split_deterministic () =
  let mk () =
    let parent = Prng.create ~seed:99L in
    let child = Prng.split parent in
    List.init 8 (fun _ -> Prng.int64 child)
  in
  Alcotest.(check bool) "split is reproducible" true (mk () = mk ())

let test_float_range () =
  let g = Prng.create ~seed:3L in
  for _ = 1 to 10_000 do
    let x = Prng.float g in
    if x < 0. || x >= 1. then Alcotest.failf "float out of range: %g" x
  done

let test_float_mean () =
  let g = Prng.create ~seed:4L in
  let n = 100_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.float g
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 0.5) > 0.01 then
    Alcotest.failf "mean %g too far from 0.5" mean

let test_int_bound () =
  let g = Prng.create ~seed:5L in
  let seen = Array.make 10 false in
  for _ = 1 to 10_000 do
    let v = Prng.int g ~bound:10 in
    if v < 0 || v >= 10 then Alcotest.failf "int out of range: %d" v;
    seen.(v) <- true
  done;
  Array.iteri
    (fun i hit -> if not hit then Alcotest.failf "value %d never drawn" i)
    seen

let test_bool_balance () =
  let g = Prng.create ~seed:6L in
  let heads = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Prng.bool g then incr heads
  done;
  let frac = float_of_int !heads /. float_of_int n in
  if Float.abs (frac -. 0.5) > 0.01 then
    Alcotest.failf "coin bias: %g" frac

let qcheck_float_unit =
  QCheck.Test.make ~name:"prng float always in [0,1)" ~count:200
    QCheck.int64 (fun seed ->
      let g = Prng.create ~seed in
      let x = Prng.float g in
      x >= 0. && x < 1.)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "split deterministic" `Quick test_split_deterministic;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "int bound coverage" `Quick test_int_bound;
    Alcotest.test_case "bool balance" `Quick test_bool_balance;
    QCheck_alcotest.to_alcotest qcheck_float_unit;
  ]
