(* Report rendering: the formatted output the bench and CLI print. *)
module E = Csz.Experiment

let fake_results =
  List.map
    (fun (flow, hops, mean, p999, mx) ->
      { E.flow; hops; received = 1000; mean; p999; max = mx })
    [
      (0, 4, 9.5, 65.2, 80.0); (2, 3, 7.2, 54.2, 60.0);
      (8, 2, 4.6, 48.3, 50.0); (18, 1, 2.4, 32.0, 40.0);
    ]

let fake_info =
  {
    E.duration = 600.;
    utilization = [| 0.83 |];
    offered = 500_000;
    source_dropped = 10_000;
    net_dropped = 0;
  }

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table1_layout () =
  let out =
    Csz.Report.table1
      [ (E.Wfq, fake_results, fake_info); (E.Fifo, fake_results, fake_info) ]
      ~sample_flow:0
  in
  Alcotest.(check bool) "has WFQ row" true (contains out "WFQ");
  Alcotest.(check bool) "has FIFO row" true (contains out "FIFO");
  Alcotest.(check bool) "prints the sample stats" true (contains out "65.20");
  Alcotest.(check bool) "prints utilization" true (contains out "83.0%")

let test_table2_layout () =
  let out =
    Csz.Report.table2
      [ (E.Wfq, fake_results); (E.Fifo_plus, fake_results) ]
      ~sample_flows:[ 18; 8; 2; 0 ]
  in
  let lines = String.split_on_char '\n' out in
  (* Header + rule + path-length row + 2 scheduler rows. *)
  Alcotest.(check int) "line count" 5 (List.length lines);
  Alcotest.(check bool) "path lengths present" true (contains out "path len");
  Alcotest.(check bool) "FIFO+ labelled" true (contains out "FIFO+")

let test_figure1_layout () =
  let out = Csz.Report.figure1 () in
  Alcotest.(check bool) "all switches drawn" true (contains out "S-5");
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "flow %d listed" i)
        true
        (contains out (Printf.sprintf "flow %2d:" i)))
    [ 0; 10; 21 ]

let test_flow_results_layout () =
  let out = Csz.Report.flow_results fake_results in
  Alcotest.(check int) "header + rule + 4 rows" 6
    (List.length (String.split_on_char '\n' out));
  Alcotest.(check bool) "received column" true (contains out "1000")

let test_table3_layout () =
  let res = E.run_table3 ~duration:10. () in
  let out = Csz.Report.table3 res in
  Alcotest.(check bool) "guaranteed section" true
    (contains out "Guaranteed Service");
  Alcotest.(check bool) "predicted section" true
    (contains out "Predicted Service");
  Alcotest.(check bool) "P-G bound column" true (contains out "P-G bound");
  Alcotest.(check bool) "bounds printed" true (contains out "611.76");
  Alcotest.(check bool) "tcp lines" true (contains out "TCP flow 100")

let suite =
  [
    Alcotest.test_case "table1 layout" `Quick test_table1_layout;
    Alcotest.test_case "table2 layout" `Quick test_table2_layout;
    Alcotest.test_case "figure1 layout" `Quick test_figure1_layout;
    Alcotest.test_case "flow_results layout" `Quick test_flow_results_layout;
    Alcotest.test_case "table3 layout" `Quick test_table3_layout;
  ]
