open Ispn_util

let mean_of f n g =
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. f g
  done;
  !sum /. float_of_int n

let check_close name expected actual tolerance =
  if Float.abs (actual -. expected) > tolerance then
    Alcotest.failf "%s: expected ~%g, got %g" name expected actual

let test_uniform_bounds () =
  let g = Prng.create ~seed:1L in
  for _ = 1 to 10_000 do
    let x = Dist.uniform g ~lo:2. ~hi:5. in
    if x < 2. || x >= 5. then Alcotest.failf "uniform out of bounds: %g" x
  done

let test_uniform_mean () =
  let g = Prng.create ~seed:2L in
  let m = mean_of (fun g -> Dist.uniform g ~lo:0. ~hi:10.) 100_000 g in
  check_close "uniform mean" 5.0 m 0.1

let test_exponential_mean () =
  let g = Prng.create ~seed:3L in
  let m = mean_of (fun g -> Dist.exponential g ~mean:0.03) 200_000 g in
  check_close "exponential mean" 0.03 m 0.001

let test_exponential_positive () =
  let g = Prng.create ~seed:4L in
  for _ = 1 to 10_000 do
    if Dist.exponential g ~mean:1. < 0. then Alcotest.fail "negative variate"
  done

let test_geometric_mean () =
  let g = Prng.create ~seed:5L in
  let m =
    mean_of (fun g -> float_of_int (Dist.geometric g ~mean:5.)) 200_000 g
  in
  check_close "geometric mean (paper's B=5)" 5.0 m 0.1

let test_geometric_support () =
  let g = Prng.create ~seed:6L in
  for _ = 1 to 10_000 do
    if Dist.geometric g ~mean:3. < 1 then Alcotest.fail "geometric < 1"
  done;
  Alcotest.(check int) "mean 1 is constant" 1 (Dist.geometric g ~mean:1.)

let test_bernoulli () =
  let g = Prng.create ~seed:7L in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Dist.bernoulli g ~p:0.3 then incr hits
  done;
  check_close "bernoulli 0.3" 0.3 (float_of_int !hits /. float_of_int n) 0.01

let test_poisson_mean () =
  let g = Prng.create ~seed:8L in
  let m = mean_of (fun g -> float_of_int (Dist.poisson g ~mean:7.5)) 50_000 g in
  check_close "poisson mean" 7.5 m 0.1

let test_poisson_zero () =
  let g = Prng.create ~seed:9L in
  Alcotest.(check int) "mean 0" 0 (Dist.poisson g ~mean:0.)

let test_poisson_large_mean () =
  let g = Prng.create ~seed:10L in
  let m =
    mean_of (fun g -> float_of_int (Dist.poisson g ~mean:1000.)) 20_000 g
  in
  check_close "poisson large mean (normal approx)" 1000. m 5.

let qcheck_geometric_at_least_one =
  QCheck.Test.make ~name:"geometric >= 1 for any mean >= 1" ~count:500
    QCheck.(pair int64 (float_range 1. 100.))
    (fun (seed, mean) ->
      let g = Prng.create ~seed in
      Dist.geometric g ~mean >= 1)

let qcheck_exponential_nonneg =
  QCheck.Test.make ~name:"exponential >= 0 for any positive mean" ~count:500
    QCheck.(pair int64 (float_range 1e-6 1e6))
    (fun (seed, mean) ->
      let g = Prng.create ~seed in
      Dist.exponential g ~mean >= 0.)

let suite =
  [
    Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
    Alcotest.test_case "uniform mean" `Quick test_uniform_mean;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    Alcotest.test_case "geometric support" `Quick test_geometric_support;
    Alcotest.test_case "bernoulli" `Quick test_bernoulli;
    Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
    Alcotest.test_case "poisson zero" `Quick test_poisson_zero;
    Alcotest.test_case "poisson large mean" `Quick test_poisson_large_mean;
    QCheck_alcotest.to_alcotest qcheck_geometric_at_least_one;
    QCheck_alcotest.to_alcotest qcheck_exponential_nonneg;
  ]
