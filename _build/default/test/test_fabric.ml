open Ispn_sim
module Fabric = Csz.Fabric
module Service = Csz.Service
module Spec = Ispn_admission.Spec

let test_chain_paths () =
  let engine = Engine.create () in
  let f = Fabric.chain ~engine ~n_switches:4 () in
  Alcotest.(check int) "links" 3 (Fabric.n_links f);
  Alcotest.(check (option (list int))) "0->3" (Some [ 0; 1; 2 ])
    (Fabric.path f ~ingress:0 ~egress:3);
  Alcotest.(check (option (list int))) "1->2" (Some [ 1 ])
    (Fabric.path f ~ingress:1 ~egress:2);
  Alcotest.(check (option (list int))) "self" (Some [])
    (Fabric.path f ~ingress:2 ~egress:2);
  Alcotest.(check (option (list int))) "backwards is unroutable" None
    (Fabric.path f ~ingress:3 ~egress:0)

(* Diamond: 0 -> 1 -> 3 and 0 -> 2 -> 3. *)
let diamond engine =
  Fabric.topology ~engine ~n_switches:4
    ~links:[ (0, 1); (1, 3); (0, 2); (2, 3) ]
    ()

let test_topology_paths () =
  let engine = Engine.create () in
  let f = diamond engine in
  Alcotest.(check int) "links" 4 (Fabric.n_links f);
  (* Shortest path ties break toward switch 1 (lower id): links 0 then 1. *)
  Alcotest.(check (option (list int))) "0->3" (Some [ 0; 1 ])
    (Fabric.path f ~ingress:0 ~egress:3);
  Alcotest.(check (option (list int))) "unreachable" None
    (Fabric.path f ~ingress:3 ~egress:0)

let test_topology_delivery () =
  let engine = Engine.create () in
  let f = diamond engine in
  let got = ref 0 in
  Fabric.install_flow f ~flow:9 ~ingress:0 ~egress:3 ~sink:(fun _ -> incr got);
  Fabric.inject f ~at_switch:0 (Packet.make ~flow:9 ~seq:0 ~created:0. ());
  Engine.run engine ~until:1.;
  Alcotest.(check int) "delivered over two hops" 1 !got

let test_service_over_topology () =
  let engine = Engine.create () in
  let f = diamond engine in
  let svc = Service.create_on ~fabric:f () in
  let got = ref 0 in
  match
    Service.request svc ~flow:1 ~ingress:0 ~egress:3
      ~own_bucket:(Spec.bucket ~rate_pps:100. ~depth_packets:10. ())
      (Spec.Guaranteed { clock_rate_bps = 100_000. })
      ~sink:(fun _ -> incr got)
  with
  | Error e -> Alcotest.failf "rejected: %s" e
  | Ok est ->
      (* Reservation lands on exactly the links of the shortest path. *)
      Alcotest.(check (float 1e-6)) "link 0 reserved" 100_000.
        (Csz.Csz_sched.guaranteed_reserved_bps (Fabric.sched f ~link:0));
      Alcotest.(check (float 1e-6)) "link 1 reserved" 100_000.
        (Csz.Csz_sched.guaranteed_reserved_bps (Fabric.sched f ~link:1));
      Alcotest.(check (float 1e-6)) "off-path link untouched" 0.
        (Csz.Csz_sched.guaranteed_reserved_bps (Fabric.sched f ~link:2));
      (* The bound reflects the 2-hop path: (10 + 1 pkts) / 100 pkt/s. *)
      (match est.Service.advertised_bound with
      | Some b -> Alcotest.(check (float 1e-6)) "P-G bound" 0.11 b
      | None -> Alcotest.fail "expected bound");
      est.Service.emit (Packet.make ~flow:1 ~seq:0 ~created:0. ());
      Engine.run engine ~until:1.;
      Alcotest.(check int) "delivered" 1 !got

let test_service_no_route () =
  let engine = Engine.create () in
  let f = diamond engine in
  let svc = Service.create_on ~fabric:f () in
  match
    Service.request svc ~flow:1 ~ingress:3 ~egress:0 Spec.Datagram
      ~sink:(fun _ -> ())
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "routed the unroutable"

let test_class_count_mismatch () =
  let engine = Engine.create () in
  let f = Fabric.topology ~engine ~n_switches:2 ~links:[ (0, 1) ] ~n_classes:3 () in
  try
    ignore (Service.create_on ~fabric:f ~class_targets:[| 0.008; 0.064 |] ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "chain paths" `Quick test_chain_paths;
    Alcotest.test_case "topology paths" `Quick test_topology_paths;
    Alcotest.test_case "topology delivery" `Quick test_topology_delivery;
    Alcotest.test_case "service over topology" `Quick
      test_service_over_topology;
    Alcotest.test_case "service no route" `Quick test_service_no_route;
    Alcotest.test_case "class count mismatch" `Quick
      test_class_count_mismatch;
  ]
