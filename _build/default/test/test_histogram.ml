module Histogram = Ispn_util.Histogram

let test_binning () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.9; 9.99; 10.0; 42. ];
  Alcotest.(check int) "count" 6 (Histogram.count h);
  Alcotest.(check int) "bin 0" 1 (Histogram.bin_count h 0);
  Alcotest.(check int) "bin 1" 2 (Histogram.bin_count h 1);
  Alcotest.(check int) "bin 9" 1 (Histogram.bin_count h 9);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h)

let test_below_lo_clamps () =
  let h = Histogram.create ~lo:5. ~hi:10. ~bins:5 in
  Histogram.add h 0.;
  Alcotest.(check int) "clamped to first bin" 1 (Histogram.bin_count h 0)

let test_bounds () =
  let h = Histogram.create ~lo:0. ~hi:100. ~bins:4 in
  let lo, hi = Histogram.bin_bounds h 2 in
  Alcotest.(check (float 1e-9)) "lo" 50. lo;
  Alcotest.(check (float 1e-9)) "hi" 75. hi;
  Alcotest.check_raises "range" (Invalid_argument "Histogram.bin_bounds")
    (fun () -> ignore (Histogram.bin_bounds h 4))

let test_of_values_and_render () =
  let h = Histogram.of_values ~lo:0. ~hi:4. ~bins:4 [| 0.1; 1.1; 1.2; 9. |] in
  let out = Histogram.render ~width:10 h in
  Alcotest.(check int) "five lines (4 bins + overflow)" 5
    (List.length (String.split_on_char '\n' (String.trim out)));
  Alcotest.(check bool) "bars drawn" true (String.contains out '#')

let qcheck_conservation =
  QCheck.Test.make ~name:"histogram conserves observations" ~count:300
    QCheck.(list (float_range (-10.) 110.))
    (fun xs ->
      let h = Histogram.create ~lo:0. ~hi:100. ~bins:7 in
      List.iter (Histogram.add h) xs;
      let binned = ref (Histogram.overflow h) in
      for i = 0 to 6 do
        binned := !binned + Histogram.bin_count h i
      done;
      !binned = List.length xs && Histogram.count h = List.length xs)

let suite =
  [
    Alcotest.test_case "binning" `Quick test_binning;
    Alcotest.test_case "below lo clamps" `Quick test_below_lo_clamps;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "of_values and render" `Quick test_of_values_and_render;
    QCheck_alcotest.to_alcotest qcheck_conservation;
  ]
