module Vat = Ispn_playback.Vat_estimator
module Estimator = Ispn_playback.Estimator

let test_empty () =
  let v = Vat.create () in
  Alcotest.(check (float 0.)) "zero before data" 0. (Vat.estimate v);
  Alcotest.(check int) "count" 0 (Vat.count v)

let test_constant_delays_converge () =
  let v = Vat.create () in
  for _ = 1 to 500 do
    Vat.observe v 0.030
  done;
  (* Deviation decays to ~0, so the estimate approaches the constant. *)
  let e = Vat.estimate v in
  if e < 0.030 || e > 0.035 then
    Alcotest.failf "estimate %.4f not near constant delay" e

let test_estimate_covers_variation () =
  let v = Vat.create () in
  let prng = Ispn_util.Prng.create ~seed:1L in
  for _ = 1 to 2000 do
    Vat.observe v (0.02 +. Ispn_util.Dist.exponential prng ~mean:0.005)
  done;
  (* d + 4v should cover the vast majority of draws. *)
  let e = Vat.estimate v in
  let covered = ref 0 in
  let prng2 = Ispn_util.Prng.create ~seed:2L in
  for _ = 1 to 1000 do
    if 0.02 +. Ispn_util.Dist.exponential prng2 ~mean:0.005 <= e then
      incr covered
  done;
  if !covered < 950 then
    Alcotest.failf "estimate %.4f covers only %d/1000" e !covered

let test_spike_mode () =
  let v = Vat.create () in
  for _ = 1 to 200 do
    Vat.observe v 0.010
  done;
  Alcotest.(check bool) "calm before spike" false (Vat.in_spike v);
  Vat.observe v 0.200;
  Alcotest.(check bool) "spike detected" true (Vat.in_spike v);
  (* During the spike, the estimate follows the new level quickly. *)
  Vat.observe v 0.200;
  Alcotest.(check bool) "tracking the spike" true (Vat.estimate v > 0.15);
  (* Delays settle back: spike mode exits and the estimate relaxes. *)
  for _ = 1 to 400 do
    Vat.observe v 0.010
  done;
  Alcotest.(check bool) "spike exited" false (Vat.in_spike v);
  Alcotest.(check bool) "relaxed" true (Vat.estimate v < 0.08)

let test_estimator_facade () =
  let e = Estimator.of_vat (Vat.create ()) in
  e.Estimator.observe 0.05;
  Alcotest.(check int) "count through facade" 1 (e.Estimator.count ());
  Alcotest.(check bool) "estimate through facade" true
    (e.Estimator.estimate () > 0.);
  let c = Estimator.constant 0.1 in
  c.Estimator.observe 55.;
  Alcotest.(check (float 0.)) "constant ignores data" 0.1
    (c.Estimator.estimate ())

let test_client_with_vat () =
  let client = Ispn_playback.Client.adaptive_vat ~update_every:1 () in
  for _ = 1 to 300 do
    Ispn_playback.Client.receive client ~delay:0.02
  done;
  let p = Ispn_playback.Client.playback_point client in
  if p < 0.02 || p > 0.03 then Alcotest.failf "vat client point %.4f" p;
  Alcotest.(check bool) "low loss on steady delays" true
    (Ispn_playback.Client.loss_rate client < 0.02)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "constant delays converge" `Quick
      test_constant_delays_converge;
    Alcotest.test_case "estimate covers variation" `Quick
      test_estimate_covers_variation;
    Alcotest.test_case "spike mode" `Quick test_spike_mode;
    Alcotest.test_case "estimator facade" `Quick test_estimator_facade;
    Alcotest.test_case "client with vat" `Quick test_client_with_vat;
  ]
