open Ispn_sim

let test_samples_queue_depth () =
  let engine = Engine.create () in
  let pool = Qdisc.pool ~capacity:100 in
  let qdisc = Ispn_sched.Fifo.create ~pool () in
  let link = Link.create ~engine ~rate_bps:1e6 ~qdisc ~name:"l" () in
  Link.set_receiver link (fun _ -> ());
  let watcher = Backlog.watch ~engine ~link ~interval:0.0005 () in
  (* A 10-packet burst drains one packet per ms: depth decays 9, 8, ... *)
  for i = 0 to 9 do
    Link.send link (Packet.make ~flow:0 ~seq:i ~created:0. ())
  done;
  Engine.run engine ~until:0.02;
  Alcotest.(check bool) "sampled" true (Backlog.count watcher > 10);
  Alcotest.(check (float 0.5)) "peak depth seen" 9. (Backlog.max watcher);
  Alcotest.(check bool) "decays to empty" true
    (Ispn_util.Fvec.get (Backlog.samples watcher)
       (Backlog.count watcher - 1)
    = 0.)

let test_empty_link_samples_zero () =
  let engine = Engine.create () in
  let pool = Qdisc.pool ~capacity:10 in
  let qdisc = Ispn_sched.Fifo.create ~pool () in
  let link = Link.create ~engine ~rate_bps:1e6 ~qdisc ~name:"l" () in
  Link.set_receiver link (fun _ -> ());
  let watcher = Backlog.watch ~engine ~link ~interval:0.01 () in
  Engine.run engine ~until:0.1;
  Alcotest.(check (float 0.)) "all zero" 0. (Backlog.max watcher);
  Alcotest.(check (float 0.)) "mean zero" 0. (Backlog.mean watcher)

let test_histogram_buckets () =
  let engine = Engine.create () in
  let pool = Qdisc.pool ~capacity:100 in
  let qdisc = Ispn_sched.Fifo.create ~pool () in
  let link = Link.create ~engine ~rate_bps:1e6 ~qdisc ~name:"l" () in
  Link.set_receiver link (fun _ -> ());
  let watcher = Backlog.watch ~engine ~link ~interval:0.001 () in
  for i = 0 to 4 do
    Link.send link (Packet.make ~flow:0 ~seq:i ~created:0. ())
  done;
  Engine.run engine ~until:0.02;
  let h = Backlog.histogram ~bins:5 watcher in
  Alcotest.(check int) "histogram covers all samples"
    (Backlog.count watcher)
    (Ispn_util.Histogram.count h)

let suite =
  [
    Alcotest.test_case "samples queue depth" `Quick test_samples_queue_depth;
    Alcotest.test_case "empty link samples zero" `Quick
      test_empty_link_samples_zero;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
  ]
