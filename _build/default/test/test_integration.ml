(* Miniature versions of the paper's experiments asserting their qualitative
   shape.  Durations are short (tens of simulated seconds) so `dune runtest`
   stays fast; the full 600 s reproductions live in bench/main.exe. *)
module E = Csz.Experiment

let find_flow results flow =
  List.find (fun (r : E.flow_result) -> r.flow = flow) results

let test_table1_shape () =
  (* FIFO shares jitter: its 99.9th percentile beats WFQ's at equal mean. *)
  let wfq, info_w = E.run_single_link ~sched:E.Wfq ~duration:120. () in
  let fifo, info_f = E.run_single_link ~sched:E.Fifo ~duration:120. () in
  let w = find_flow wfq 0 and f = find_flow fifo 0 in
  Alcotest.(check bool) "tails: FIFO < WFQ" true (f.E.p999 < w.E.p999);
  if Float.abs (f.E.mean -. w.E.mean) > 1.5 then
    Alcotest.failf "means diverge: %.2f vs %.2f" f.E.mean w.E.mean;
  (* The Appendix's load: ~83.5% utilization, ~2% source drops. *)
  let util = info_f.E.utilization.(0) in
  if util < 0.80 || util > 0.87 then Alcotest.failf "utilization %.3f" util;
  let drop =
    float_of_int info_w.E.source_dropped /. float_of_int info_w.E.offered
  in
  if drop < 0.005 || drop > 0.05 then Alcotest.failf "source drop %.3f" drop

let test_table2_shape () =
  (* Multi-hop: everyone's tail grows with path length; FIFO+ grows slowest
     and wins at four hops. *)
  let fifo, _ = E.run_figure1 ~sched:E.Fifo ~duration:120. () in
  let fplus, _ = E.run_figure1 ~sched:E.Fifo_plus ~duration:120. () in
  let wfq, _ = E.run_figure1 ~sched:E.Wfq ~duration:120. () in
  List.iter
    (fun results ->
      let one = find_flow results 18 and four = find_flow results 0 in
      Alcotest.(check bool) "tail grows with hops" true
        (four.E.p999 > one.E.p999))
    [ fifo; fplus; wfq ];
  let f4 = (find_flow fifo 0).E.p999
  and p4 = (find_flow fplus 0).E.p999
  and w4 = (find_flow wfq 0).E.p999 in
  Alcotest.(check bool) "FIFO+ < FIFO at 4 hops" true (p4 < f4);
  Alcotest.(check bool) "FIFO+ < WFQ at 4 hops" true (p4 < w4)

let test_table3_shape () =
  let res = E.run_table3 ~duration:120. () in
  (* Guaranteed flows never exceed their Parekh-Gallager bounds. *)
  List.iter
    (fun (row : E.t3_row) ->
      match row.E.pg_bound with
      | Some bound ->
          if row.E.t3_max > bound then
            Alcotest.failf "flow %d max %.2f exceeds P-G bound %.2f"
              row.E.t3_flow row.E.t3_max bound
      | None -> ())
    res.E.rows;
  let get label hops =
    List.find
      (fun (r : E.t3_row) -> r.E.label = label && r.E.t3_hops = hops)
      res.E.rows
  in
  (* Peak-rate clocks buy much lower delay than average-rate clocks. *)
  Alcotest.(check bool) "Peak/2 < Average/1 tail" true
    ((get "Peak" 2).E.t3_p999 < (get "Average" 1).E.t3_p999);
  (* The high priority class beats the low one. *)
  Alcotest.(check bool) "High/4 < Low/3 tail" true
    ((get "High" 4).E.t3_p999 < (get "Low" 3).E.t3_p999);
  Alcotest.(check bool) "High/2 < Low/1 tail" true
    ((get "High" 2).E.t3_p999 < (get "Low" 1).E.t3_p999);
  (* The link is nearly saturated: real-time at ~83.5%, TCP filling the
     rest to >95%. *)
  Array.iteri
    (fun i u ->
      if u < 0.95 then Alcotest.failf "link %d utilization only %.3f" i u)
    res.E.info.E.utilization;
  Array.iteri
    (fun i u ->
      if u < 0.78 || u > 0.88 then
        Alcotest.failf "link %d real-time utilization %.3f" i u)
    res.E.realtime_utilization;
  (* Both TCP connections make progress with a small loss rate. *)
  List.iter
    (fun (t : E.tcp_result) ->
      Alcotest.(check bool) "tcp progresses" true (t.E.delivered > 1000);
      if t.E.loss_rate > 0.05 then
        Alcotest.failf "tcp loss %.3f too high" t.E.loss_rate)
    res.E.tcp

let test_determinism () =
  let run () = E.run_single_link ~sched:E.Fifo ~duration:20. ~seed:7L () in
  let a, _ = run () and b, _ = run () in
  Alcotest.(check bool) "identical results for identical seeds" true (a = b)

let test_seed_changes_results () =
  let a, _ = E.run_single_link ~sched:E.Fifo ~duration:20. ~seed:1L () in
  let b, _ = E.run_single_link ~sched:E.Fifo ~duration:20. ~seed:2L () in
  Alcotest.(check bool) "different seeds differ" false (a = b)

let suite =
  [
    Alcotest.test_case "table 1 shape" `Slow test_table1_shape;
    Alcotest.test_case "table 2 shape" `Slow test_table2_shape;
    Alcotest.test_case "table 3 shape" `Slow test_table3_shape;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_results;
  ]
