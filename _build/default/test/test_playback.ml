module Client = Ispn_playback.Client
module De = Ispn_playback.Delay_estimator

(* --- Delay estimator --- *)

let test_estimator_empty_is_margin () =
  let e = De.create ~margin:0.02 () in
  Alcotest.(check (float 1e-9)) "margin" 0.02 (De.estimate e)

let test_estimator_tracks_quantile () =
  let e = De.create ~window:100 ~quantile:0.5 () in
  for i = 1 to 100 do
    De.observe e (float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "median of 1..100" 50. (De.estimate e)

let test_estimator_window_slides () =
  let e = De.create ~window:10 ~quantile:1.0 () in
  for i = 1 to 100 do
    De.observe e (float_of_int i)
  done;
  (* Only the last 10 observations (91..100) remain. *)
  Alcotest.(check (float 1e-9)) "windowed max" 100. (De.estimate e);
  for _ = 1 to 10 do
    De.observe e 1.
  done;
  Alcotest.(check (float 1e-9)) "old peak forgotten" 1. (De.estimate e)

let test_estimator_margin_added () =
  let e = De.create ~window:10 ~quantile:1.0 ~margin:0.5 () in
  De.observe e 2.;
  Alcotest.(check (float 1e-9)) "margin added" 2.5 (De.estimate e)

(* --- Rigid client --- *)

let test_rigid_counts_misses () =
  let c = Client.rigid ~bound:0.1 in
  List.iter (fun d -> Client.receive c ~delay:d) [ 0.05; 0.09; 0.11; 0.2; 0.01 ];
  Alcotest.(check int) "received" 5 (Client.received c);
  Alcotest.(check int) "missed" 2 (Client.missed c);
  Alcotest.(check (float 1e-9)) "loss rate" 0.4 (Client.loss_rate c);
  Alcotest.(check (float 1e-9)) "fixed point" 0.1 (Client.playback_point c);
  Alcotest.(check (float 1e-9)) "mean point" 0.1 (Client.mean_playback_point c)

(* --- Adaptive client --- *)

let test_adaptive_tracks_delays () =
  let c = Client.adaptive ~window:50 ~quantile:0.99 ~update_every:10 () in
  for _ = 1 to 200 do
    Client.receive c ~delay:0.03
  done;
  Alcotest.(check (float 1e-6)) "settles on observed delay" 0.03
    (Client.playback_point c)

let test_adaptive_beats_rigid_on_mean_point () =
  (* Delays are almost always 10 ms with rare 100 ms spikes.  A rigid client
     provisioned at the worst case holds a 100 ms play-back point; an
     adaptive client should sit far lower while losing only the spikes. *)
  let delays =
    List.init 2000 (fun i -> if i mod 200 = 199 then 0.1 else 0.01)
  in
  let rigid = Client.rigid ~bound:0.1 in
  let adaptive = Client.adaptive ~window:100 ~quantile:0.99 ~update_every:20 () in
  List.iter
    (fun d ->
      Client.receive rigid ~delay:d;
      Client.receive adaptive ~delay:d)
    delays;
  let r = Client.mean_playback_point rigid in
  let a = Client.mean_playback_point adaptive in
  if a >= r /. 2. then
    Alcotest.failf "adaptive point %.4f not well below rigid %.4f" a r;
  (* And its loss stays small. *)
  if Client.loss_rate adaptive > 0.02 then
    Alcotest.failf "adaptive loss too high: %.3f" (Client.loss_rate adaptive)

let test_adaptive_readjusts_upward () =
  (* When conditions worsen the client suffers briefly, then adapts. *)
  let c = Client.adaptive ~window:50 ~quantile:1.0 ~update_every:10 () in
  for _ = 1 to 100 do
    Client.receive c ~delay:0.01
  done;
  let before = Client.playback_point c in
  for _ = 1 to 100 do
    Client.receive c ~delay:0.05
  done;
  let after = Client.playback_point c in
  Alcotest.(check bool) "moved up" true (after > before);
  Alcotest.(check (float 1e-6)) "tracks new level" 0.05 after;
  Alcotest.(check bool) "took some losses while adapting" true
    (Client.missed c > 0)

let test_zero_received () =
  let c = Client.adaptive () in
  Alcotest.(check (float 1e-9)) "loss rate" 0. (Client.loss_rate c)

let qcheck_rigid_miss_count =
  QCheck.Test.make ~name:"rigid client misses exactly delays above bound"
    ~count:200
    QCheck.(pair (float_range 0.01 0.2) (list (float_range 0. 0.3)))
    (fun (bound, delays) ->
      let c = Client.rigid ~bound in
      List.iter (fun d -> Client.receive c ~delay:d) delays;
      Client.missed c = List.length (List.filter (fun d -> d > bound) delays))

let suite =
  [
    Alcotest.test_case "estimator empty is margin" `Quick
      test_estimator_empty_is_margin;
    Alcotest.test_case "estimator tracks quantile" `Quick
      test_estimator_tracks_quantile;
    Alcotest.test_case "estimator window slides" `Quick
      test_estimator_window_slides;
    Alcotest.test_case "estimator margin added" `Quick
      test_estimator_margin_added;
    Alcotest.test_case "rigid counts misses" `Quick test_rigid_counts_misses;
    Alcotest.test_case "adaptive tracks delays" `Quick
      test_adaptive_tracks_delays;
    Alcotest.test_case "adaptive beats rigid on mean point" `Quick
      test_adaptive_beats_rigid_on_mean_point;
    Alcotest.test_case "adaptive readjusts upward" `Quick
      test_adaptive_readjusts_upward;
    Alcotest.test_case "zero received" `Quick test_zero_received;
    QCheck_alcotest.to_alcotest qcheck_rigid_miss_count;
  ]
