open Ispn_util

let feed xs =
  let s = Stats.create () in
  List.iter (Stats.add s) xs;
  s

let close = Alcotest.check (Alcotest.float 1e-9)

let test_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  close "mean" 0. (Stats.mean s);
  close "variance" 0. (Stats.variance s)

let test_known_values () =
  let s = feed [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  Alcotest.(check int) "count" 8 (Stats.count s);
  close "mean" 5.0 (Stats.mean s);
  (* Sample (unbiased) variance of this classic set is 32/7. *)
  close "variance" (32. /. 7.) (Stats.variance s);
  close "min" 2. (Stats.min s);
  close "max" 9. (Stats.max s);
  close "total" 40. (Stats.total s)

let test_single_observation () =
  let s = feed [ 42. ] in
  close "mean" 42. (Stats.mean s);
  close "variance" 0. (Stats.variance s);
  close "min" 42. (Stats.min s);
  close "max" 42. (Stats.max s)

let test_reset () =
  let s = feed [ 1.; 2.; 3. ] in
  Stats.reset s;
  Alcotest.(check int) "count after reset" 0 (Stats.count s);
  Stats.add s 10.;
  close "mean after reset" 10. (Stats.mean s)

let naive_variance xs =
  let n = List.length xs in
  if n < 2 then 0.
  else begin
    let mean = List.fold_left ( +. ) 0. xs /. float_of_int n in
    List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
    /. float_of_int (n - 1)
  end

let qcheck_welford_matches_naive =
  QCheck.Test.make ~name:"welford variance matches naive" ~count:300
    QCheck.(list_of_size (Gen.int_range 0 50) (float_range (-100.) 100.))
    (fun xs ->
      let s = feed xs in
      Float.abs (Stats.variance s -. naive_variance xs) < 1e-6)

let qcheck_merge_equals_combined =
  QCheck.Test.make ~name:"merge a b == feed (a @ b)" ~count:300
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 30) (float_range (-50.) 50.))
        (list_of_size (Gen.int_range 0 30) (float_range (-50.) 50.)))
    (fun (xs, ys) ->
      let merged = Stats.merge (feed xs) (feed ys) in
      let combined = feed (xs @ ys) in
      Stats.count merged = Stats.count combined
      && Float.abs (Stats.mean merged -. Stats.mean combined) < 1e-6
      && Float.abs (Stats.variance merged -. Stats.variance combined) < 1e-6)

let qcheck_min_max_bound_mean =
  QCheck.Test.make ~name:"min <= mean <= max" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = feed xs in
      Stats.min s <= Stats.mean s +. 1e-9
      && Stats.mean s <= Stats.max s +. 1e-9)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "known values" `Quick test_known_values;
    Alcotest.test_case "single observation" `Quick test_single_observation;
    Alcotest.test_case "reset" `Quick test_reset;
    QCheck_alcotest.to_alcotest qcheck_welford_matches_naive;
    QCheck_alcotest.to_alcotest qcheck_merge_equals_combined;
    QCheck_alcotest.to_alcotest qcheck_min_max_bound_mean;
  ]
