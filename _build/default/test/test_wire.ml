open Ispn_sim

let test_roundtrip_basics () =
  let p = Packet.make ~flow:42 ~seq:1234 ~size_bits:1000 ~created:5. () in
  p.Packet.offset <- 0.003125;
  let q = Wire.decode ~created:5. (Wire.encode p) in
  Alcotest.(check int) "flow" 42 q.Packet.flow;
  Alcotest.(check int) "seq" 1234 q.Packet.seq;
  Alcotest.(check int) "size" 1000 q.Packet.size_bits;
  Alcotest.(check (float 1e-6)) "offset" 0.003125 q.Packet.offset;
  Alcotest.(check (float 0.)) "created" 5. q.Packet.created

let test_kind_roundtrip () =
  let ack = Packet.make ~flow:1 ~seq:0 ~kind:Packet.Ack ~created:0. () in
  let q = Wire.decode (Wire.encode ack) in
  Alcotest.(check bool) "ack survives" true (q.Packet.kind = Packet.Ack)

let test_negative_offset () =
  let p = Packet.make ~flow:1 ~seq:0 ~created:0. () in
  p.Packet.offset <- -0.012;
  let q = Wire.decode (Wire.encode p) in
  Alcotest.(check (float 1e-6)) "negative offset" (-0.012) q.Packet.offset

let test_offset_saturates () =
  let p = Packet.make ~flow:1 ~seq:0 ~created:0. () in
  p.Packet.offset <- 1e9;
  let q = Wire.decode (Wire.encode p) in
  Alcotest.(check (float 1.)) "clamped to int32 max microseconds" 2147.483647
    q.Packet.offset

let test_malformed () =
  Alcotest.check_raises "short" (Wire.Malformed "short header") (fun () ->
      ignore (Wire.decode (Bytes.create 3)));
  let b = Wire.encode (Packet.make ~flow:1 ~seq:0 ~created:0. ()) in
  Bytes.set_uint8 b 0 9;
  Alcotest.check_raises "version" (Wire.Malformed "version 9") (fun () ->
      ignore (Wire.decode b));
  Bytes.set_uint8 b 0 Wire.version;
  Bytes.set_uint8 b 1 7;
  Alcotest.check_raises "kind" (Wire.Malformed "kind 7") (fun () ->
      ignore (Wire.decode b))

let test_field_range_checks () =
  let p = Packet.make ~flow:1 ~seq:0 ~size_bits:70_000 ~created:0. () in
  try
    ignore (Wire.encode p);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let qcheck_roundtrip =
  QCheck.Test.make ~name:"wire roundtrip preserves all header fields"
    ~count:500
    QCheck.(
      quad (int_bound 1_000_000) (int_bound 1_000_000) (int_bound 0xFFFF)
        (float_range (-100.) 100.))
    (fun (flow, seq, size_bits, offset) ->
      QCheck.assume (size_bits > 0);
      let p = Packet.make ~flow ~seq ~size_bits ~created:0. () in
      p.Packet.offset <- offset;
      let q = Wire.decode (Wire.encode p) in
      q.Packet.flow = flow && q.Packet.seq = seq
      && q.Packet.size_bits = size_bits
      && Float.abs (q.Packet.offset -. offset) <= Wire.offset_quantum)

let suite =
  [
    Alcotest.test_case "roundtrip basics" `Quick test_roundtrip_basics;
    Alcotest.test_case "kind roundtrip" `Quick test_kind_roundtrip;
    Alcotest.test_case "negative offset" `Quick test_negative_offset;
    Alcotest.test_case "offset saturates" `Quick test_offset_saturates;
    Alcotest.test_case "malformed" `Quick test_malformed;
    Alcotest.test_case "field range checks" `Quick test_field_range_checks;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
  ]
