open Ispn_sim
module Spec = Ispn_admission.Spec
module Bounds = Ispn_admission.Bounds
module Controller = Ispn_admission.Controller
module Meter = Ispn_admission.Meter
module Units = Ispn_util.Units

type flow_entry = { path : int list; guaranteed : bool; cls : int option }

type t = {
  fabric : Fabric.t;
  ctrl : Controller.t;
  class_targets : float array;
  epoch_interval : float;
  flows : (int, flow_entry) Hashtbl.t;
  (* Last sampled real-time bit counters, for per-epoch utilization. *)
  last_rt_bits : int array;
  mutable started : bool;
}

let default_targets = [| 0.008; 0.064 |]

let create_on ~fabric ?(class_targets = default_targets)
    ?(epoch_interval = 1.0) () =
  let n_links = Fabric.n_links fabric in
  assert (n_links >= 1);
  let k = Array.length class_targets in
  (* Every link's scheduler must agree on the class count. *)
  for i = 0 to n_links - 1 do
    if Csz_sched.datagram_class (Fabric.sched fabric ~link:i) <> k then
      invalid_arg "Service.create_on: class_targets/fabric class mismatch"
  done;
  let link_rate_bps = Units.link_rate_bps in
  let ctrl =
    Controller.create ~n_links ~mu_bps:link_rate_bps ~class_targets ()
  in
  (* Predicted-class queueing delays flow straight into the link meters. *)
  for i = 0 to n_links - 1 do
    let meter = Controller.meter ctrl ~link:i in
    Csz_sched.set_delay_hook (Fabric.sched fabric ~link:i) (fun ~cls delay ->
        if cls >= 0 && cls < k then Meter.note_delay meter ~cls delay)
  done;
  {
    fabric;
    ctrl;
    class_targets;
    epoch_interval;
    flows = Hashtbl.create 32;
    last_rt_bits = Array.make n_links 0;
    started = false;
  }

let create ~engine ~n_switches ?(link_rate_bps = Units.link_rate_bps)
    ?(class_targets = default_targets)
    ?(buffer_packets = Units.buffer_packets) ?(epoch_interval = 1.0) () =
  let fabric =
    Fabric.chain ~engine ~n_switches ~link_rate_bps
      ~n_classes:(Array.length class_targets) ~buffer_packets ()
  in
  create_on ~fabric ~class_targets ~epoch_interval ()

let start t =
  if not t.started then begin
    t.started <- true;
    let engine = Fabric.engine t.fabric in
    let link_rate_bps = Units.link_rate_bps in
    let rec pump () =
      for i = 0 to Fabric.n_links t.fabric - 1 do
        let bits = Csz_sched.realtime_bits_sent (Fabric.sched t.fabric ~link:i) in
        let delta = bits - t.last_rt_bits.(i) in
        t.last_rt_bits.(i) <- bits;
        let util = float_of_int delta /. (link_rate_bps *. t.epoch_interval) in
        Meter.note_util (Controller.meter t.ctrl ~link:i) util
      done;
      Controller.epoch t.ctrl;
      ignore (Engine.schedule_after engine ~delay:t.epoch_interval pump)
    in
    ignore (Engine.schedule_after engine ~delay:t.epoch_interval pump)
  end

let fabric t = t.fabric
let controller t = t.ctrl
let sched t ~link = Fabric.sched t.fabric ~link

type established = {
  flow : int;
  advertised_bound : float option;
  cls : int option;
  emit : Packet.t -> unit;
}

let request t ~flow ~ingress ~egress ?own_bucket spec ~sink =
  match Fabric.path t.fabric ~ingress ~egress with
  | None -> Error "no route between the requested switches"
  | Some [] -> Error "ingress and egress coincide"
  | Some path -> (
      let hops = List.length path in
      match Controller.request t.ctrl ~flow ~path spec with
      | Controller.Rejected reason -> Error reason
      | Controller.Admitted { cls } ->
          Fabric.install_flow t.fabric ~flow ~ingress ~egress ~sink;
          let inject pkt = Fabric.inject t.fabric ~at_switch:ingress pkt in
          let entry, bound, emit =
            match spec with
            | Spec.Guaranteed { clock_rate_bps } ->
                List.iter
                  (fun i ->
                    Csz_sched.add_guaranteed
                      (Fabric.sched t.fabric ~link:i)
                      ~flow ~clock_rate_bps)
                  path;
                let bound =
                  Option.map
                    (fun bucket -> Bounds.pg_bound ~bucket ~clock_rate_bps ~hops ())
                    own_bucket
                in
                ({ path; guaranteed = true; cls = None }, bound, inject)
            | Spec.Predicted { bucket; _ } ->
                let cls = Option.get cls in
                List.iter
                  (fun i ->
                    Csz_sched.set_predicted (Fabric.sched t.fabric ~link:i)
                      ~flow ~cls)
                  path;
                let tb =
                  Ispn_traffic.Token_bucket.create
                    ~rate_bps:bucket.Spec.rate_bps
                    ~depth_bits:bucket.Spec.depth_bits ()
                in
                let policer =
                  Ispn_traffic.Token_bucket.policer
                    ~engine:(Fabric.engine t.fabric) ~bucket:tb
                    ~mode:Ispn_traffic.Token_bucket.Drop ~next:inject
                in
                let bound =
                  Some
                    (Bounds.predicted_bound ~class_targets:t.class_targets
                       ~cls ~hops)
                in
                ( { path; guaranteed = false; cls = Some cls },
                  bound,
                  Ispn_traffic.Token_bucket.admit_fn policer )
            | Spec.Datagram ->
                ({ path; guaranteed = false; cls = None }, None, inject)
          in
          Hashtbl.replace t.flows flow entry;
          Logs.info ~src:Ispn_util.Log.service (fun m ->
              m "flow %d established over links [%s]%s" flow
                (String.concat ";" (List.map string_of_int path))
                (match bound with
                | Some b -> Printf.sprintf " bound=%.3fs" b
                | None -> ""));
          Ok { flow; advertised_bound = bound; cls = entry.cls; emit })

let teardown t ~flow =
  match Hashtbl.find_opt t.flows flow with
  | None -> ()
  | Some entry ->
      Hashtbl.remove t.flows flow;
      Logs.info ~src:Ispn_util.Log.service (fun m -> m "flow %d torn down" flow);
      Controller.release t.ctrl ~flow;
      List.iter
        (fun i ->
          let st = Fabric.sched t.fabric ~link:i in
          if entry.guaranteed then Csz_sched.remove_guaranteed st ~flow
          else if entry.cls <> None then Csz_sched.clear_predicted st ~flow)
        entry.path

let admitted t = Controller.admitted t.ctrl
let rejected t = Controller.rejected t.ctrl
