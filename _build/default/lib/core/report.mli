(** Render experiment results in the layout of the paper's tables. *)

val table1 :
  (Experiment.sched * Experiment.flow_result list * Experiment.run_info) list ->
  sample_flow:int ->
  string
(** One row per scheduler: mean and 99.9th-percentile queueing delay of the
    sample flow, as in Table 1. *)

val table2 :
  (Experiment.sched * Experiment.flow_result list) list ->
  sample_flows:int list ->
  string
(** Rows per scheduler, columns (mean, 99.9 %ile) per path length, as in
    Table 2.  [sample_flows] picks one flow per path length, shortest
    first. *)

val table3 : Experiment.t3_result -> string
(** The eight sample rows with measured mean / 99.9 %ile / max and the
    computed Parekh-Gallager bound for guaranteed flows, plus the
    utilization and datagram summary lines the paper quotes in the text. *)

val figure1 : unit -> string
(** ASCII rendering of the Figure-1 topology and flow layout. *)

val flow_results : Experiment.flow_result list -> string
(** Generic per-flow dump used by the CLI. *)
