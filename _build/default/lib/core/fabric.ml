open Ispn_sim
module Units = Ispn_util.Units

type backend =
  | Chain of Network.t
  | Mesh of Topology.t * (int * int, int) Hashtbl.t
      (* (src, dst) -> link index *)

type t = {
  engine : Engine.t;
  scheds : Csz_sched.t array;
  links : Link.t array;
  backend : backend;
  n_switches : int;
}

let engine t = t.engine
let n_links t = Array.length t.links
let n_switches t = t.n_switches
let sched t ~link = t.scheds.(link)
let link t i = t.links.(i)

let make_sched ~link_rate_bps ~n_classes ~buffer_packets =
  let pool = Qdisc.pool ~capacity:buffer_packets in
  let config =
    { Csz_sched.default_config with link_rate_bps; n_predicted_classes = n_classes }
  in
  Csz_sched.create ~config ~pool ()

let chain ~engine ~n_switches ?(link_rate_bps = Units.link_rate_bps)
    ?(n_classes = 2) ?(buffer_packets = Units.buffer_packets) () =
  assert (n_switches >= 2);
  let scheds = Array.make (n_switches - 1) None in
  let net =
    Network.chain ~engine ~n_switches ~rate_bps:link_rate_bps
      ~qdisc_of:(fun i ->
        let st, q = make_sched ~link_rate_bps ~n_classes ~buffer_packets in
        scheds.(i) <- Some st;
        q)
      ()
  in
  {
    engine;
    scheds = Array.map Option.get scheds;
    links = Array.init (n_switches - 1) (fun i -> Network.link net i);
    backend = Chain net;
    n_switches;
  }

let topology ~engine ~n_switches ~links:link_specs
    ?(link_rate_bps = Units.link_rate_bps) ?(n_classes = 2)
    ?(buffer_packets = Units.buffer_packets) () =
  assert (n_switches >= 1);
  let topo = Topology.create ~engine () in
  for i = 0 to n_switches - 1 do
    ignore (Topology.add_switch topo ~name:(Printf.sprintf "S-%d" (i + 1)))
  done;
  let index = Hashtbl.create 16 in
  let scheds = ref [] and links = ref [] in
  List.iteri
    (fun i (src, dst) ->
      let st, q = make_sched ~link_rate_bps ~n_classes ~buffer_packets in
      Topology.connect topo ~src ~dst ~rate_bps:link_rate_bps ~qdisc:q ();
      Hashtbl.replace index (src, dst) i;
      scheds := st :: !scheds;
      links := Option.get (Topology.link topo ~src ~dst) :: !links)
    link_specs;
  {
    engine;
    scheds = Array.of_list (List.rev !scheds);
    links = Array.of_list (List.rev !links);
    backend = Mesh (topo, index);
    n_switches;
  }

let path t ~ingress ~egress =
  match t.backend with
  | Chain _ ->
      if ingress < 0 || egress >= t.n_switches || ingress > egress then None
      else Some (List.init (egress - ingress) (fun i -> ingress + i))
  | Mesh (topo, index) -> (
      match Topology.shortest_path topo ~src:ingress ~dst:egress with
      | None -> None
      | Some hops ->
          let rec links = function
            | a :: (b :: _ as rest) -> Hashtbl.find index (a, b) :: links rest
            | [ _ ] | [] -> []
          in
          Some (links hops))

let install_flow t ~flow ~ingress ~egress ~sink =
  match t.backend with
  | Chain net -> Network.install_flow net ~flow ~ingress ~egress ~sink
  | Mesh (topo, _) ->
      ignore (Topology.install_flow topo ~flow ~src:ingress ~dst:egress ~sink)

let inject t ~at_switch pkt =
  match t.backend with
  | Chain net -> Network.inject net ~at_switch pkt
  | Mesh (topo, _) -> Topology.inject topo ~at_switch pkt
