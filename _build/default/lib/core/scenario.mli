(** The paper's experimental configurations.

    Figure 1: five switches S-1..S-5 in a chain joined by four 1 Mbit/s
    links, each host attached by an infinitely fast link, all traffic
    flowing in the same direction.  22 statistically identical real-time
    flows cover the links so that every inter-switch link carries exactly
    10 flows: 12 flows of path length 1, 4 of length 2, 4 of length 3 and 2
    of length 4.

    For Table 3 the paper only states the per-link class mix (2
    Guaranteed-Peak, 1 Guaranteed-Average, 3 Predicted-High, 4
    Predicted-Low, plus one datagram connection); [table3_class_of] is the
    unique-up-to-symmetry assignment of classes to the 22 paths consistent
    with that mix and with the sample rows the paper prints (see
    DESIGN.md). *)

type flow_spec = { flow : int; ingress : int; egress : int }

val hops : flow_spec -> int
(** Inter-switch links traversed — the paper's "path length". *)

val figure1_flows : flow_spec list
(** The 22 flows, ids 0-21, in a fixed documented order: 0-1 have length 4,
    2-5 length 3, 6-9 length 2, 10-21 length 1. *)

val figure1_n_switches : int
val flows_on_link : int -> flow_spec list
(** Flows of {!figure1_flows} crossing inter-switch link [i] (0-based);
    always 10 of them. *)

(** {2 Table 3 service assignment} *)

type service_class =
  | Guaranteed_peak  (** Clock rate = peak generation rate [2A]. *)
  | Guaranteed_avg  (** Clock rate = average generation rate [A]. *)
  | Predicted_high  (** Priority class 0. *)
  | Predicted_low  (** Priority class 1. *)

val table3_class_of : int -> service_class
(** Service class of figure-1 flow [0..21]. *)

val table3_sample_flows : (string * int) list
(** The eight sample rows of Table 3 as [(label, flow id)], in the paper's
    order: Peak/4, Peak/2, Average/3, Average/1, High/4, High/2, Low/3,
    Low/1. *)

val table3_tcp_paths : (int * int) list
(** Ingress/egress switch of the two datagram TCP connections; they tile
    the chain so each link carries exactly one connection. *)

(** {2 Appendix parameters} *)

val default_avg_rate_pps : float
(** [A] = 85 packets/s. *)

val token_bucket_depth_packets : float
(** 50 packets. *)

val pp_service_class : Format.formatter -> service_class -> unit
