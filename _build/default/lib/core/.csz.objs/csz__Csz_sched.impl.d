lib/core/csz_sched.ml: Array Hashtbl Ispn_sched Ispn_sim Ispn_util Packet Printf Qdisc Stdlib
