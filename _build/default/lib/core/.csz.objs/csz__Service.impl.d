lib/core/service.ml: Array Csz_sched Engine Fabric Hashtbl Ispn_admission Ispn_sim Ispn_traffic Ispn_util List Logs Option Packet Printf String
