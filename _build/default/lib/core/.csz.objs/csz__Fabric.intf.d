lib/core/fabric.mli: Csz_sched Ispn_sim
