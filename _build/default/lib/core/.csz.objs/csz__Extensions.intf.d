lib/core/extensions.mli: Experiment
