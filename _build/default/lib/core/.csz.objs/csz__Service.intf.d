lib/core/service.mli: Csz_sched Fabric Ispn_admission Ispn_sim
