lib/core/report.mli: Experiment
