lib/core/fabric.ml: Array Csz_sched Engine Hashtbl Ispn_sim Ispn_util Link List Network Option Printf Qdisc Topology
