lib/core/signaling.ml: Array Csz_sched Engine Fabric Hashtbl Ispn_admission Ispn_sim Ispn_traffic Ispn_util List Option Packet Printf
