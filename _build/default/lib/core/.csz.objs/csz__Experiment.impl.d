lib/core/experiment.ml: Array Csz_sched Engine Ispn_admission Ispn_sched Ispn_sim Ispn_traffic Ispn_transport Ispn_util List Network Option Probe Qdisc Scenario
