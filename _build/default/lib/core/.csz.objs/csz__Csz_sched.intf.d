lib/core/csz_sched.mli: Ispn_sim
