lib/core/scenario.ml: Format List Printf
