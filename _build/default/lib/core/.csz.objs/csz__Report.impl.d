lib/core/report.ml: Array Buffer Experiment Ispn_util List Printf Scenario String
