lib/core/experiment.mli: Ispn_sim Ispn_traffic Ispn_util Scenario
