lib/core/signaling.mli: Fabric Ispn_admission Ispn_sim
