(** End-to-end service architecture: interface + admission + enforcement +
    scheduling.

    This module wires the pieces of the CSZ architecture together over a
    {!Fabric} (a chain or an arbitrary routed topology whose links all run
    the unified scheduler): every link has a measurement
    {!Ispn_admission.Meter} fed by the scheduler's delay hook and by
    periodic utilization sampling, and a {!Ispn_admission.Controller}
    arbitrates requests.  Admitted predicted flows are policed against
    their declared token bucket at the edge (and only there — Section 8);
    guaranteed flows are never conformance-checked; datagram traffic flows
    freely.

    This is the API an application uses: ask for service, get back an
    advertised delay bound and an injection function, send packets. *)

type t

val create :
  engine:Ispn_sim.Engine.t ->
  n_switches:int ->
  ?link_rate_bps:float ->
  ?class_targets:float array ->
  ?buffer_packets:int ->
  ?epoch_interval:float ->
  unit ->
  t
(** A chain fabric (the Figure-1 shape).  [class_targets] are the
    per-switch predicted-service delay targets [D_i], seconds, increasing
    (default [| 0.008; 0.064 |] — two widely spaced classes, roughly an
    order of magnitude apart as Section 7 recommends).  [epoch_interval]
    (default 1 s) is the measurement rotation period; the first call to
    {!start} begins the sampling pump. *)

val create_on :
  fabric:Fabric.t ->
  ?class_targets:float array ->
  ?epoch_interval:float ->
  unit ->
  t
(** Manage an existing fabric (e.g. one built with {!Fabric.topology}).
    The number of class targets must match the fabric's predicted class
    count. *)

val start : t -> unit
(** Start the periodic measurement/epoch pump. *)

val fabric : t -> Fabric.t
val controller : t -> Ispn_admission.Controller.t
val sched : t -> link:int -> Csz_sched.t

type established = {
  flow : int;
  advertised_bound : float option;
      (** Seconds.  Guaranteed: the Parekh-Gallager bound (when the caller
          supplied its own bucket); predicted: the sum of class targets
          along the path. *)
  cls : int option;  (** Assigned predicted class. *)
  emit : Ispn_sim.Packet.t -> unit;
      (** Edge entry point: policing (predicted only) then injection. *)
}

val request :
  t ->
  flow:int ->
  ingress:int ->
  egress:int ->
  ?own_bucket:Ispn_admission.Spec.bucket ->
  Ispn_admission.Spec.request ->
  sink:(Ispn_sim.Packet.t -> unit) ->
  (established, string) result
(** Ask for service from switch [ingress] to switch [egress].
    [own_bucket] lets a guaranteed client communicate its private traffic
    characterization so the advertised bound can be computed (the network
    itself never uses it).  Fails with an explanation when the path does
    not exist or admission control refuses. *)

val teardown : t -> flow:int -> unit
(** Release the flow's reservations and class assignments. *)

val admitted : t -> int
val rejected : t -> int
