type flow_spec = { flow : int; ingress : int; egress : int }

let hops fs = fs.egress - fs.ingress

let figure1_n_switches = 5

(* Path layout solving the paper's constraints: every inter-switch link
   carries 10 flows; 12/4/4/2 flows of length 1/2/3/4. *)
let figure1_flows =
  let f flow ingress egress = { flow; ingress; egress } in
  [
    (* length 4 *)
    f 0 0 4;
    f 1 0 4;
    (* length 3 *)
    f 2 0 3;
    f 3 0 3;
    f 4 1 4;
    f 5 1 4;
    (* length 2 *)
    f 6 0 2;
    f 7 0 2;
    f 8 2 4;
    f 9 2 4;
    (* length 1 *)
    f 10 0 1;
    f 11 0 1;
    f 12 0 1;
    f 13 0 1;
    f 14 1 2;
    f 15 1 2;
    f 16 2 3;
    f 17 2 3;
    f 18 3 4;
    f 19 3 4;
    f 20 3 4;
    f 21 3 4;
  ]

let flows_on_link i =
  List.filter (fun fs -> fs.ingress <= i && i < fs.egress) figure1_flows

type service_class =
  | Guaranteed_peak
  | Guaranteed_avg
  | Predicted_high
  | Predicted_low

(* Class assignment consistent with the per-link mix (2 GP / 1 GA / 3 PH /
   4 PL) and Table 3's sample path lengths; derivation in DESIGN.md. *)
let table3_class_of = function
  | 0 -> Guaranteed_peak (* length 4 *)
  | 1 -> Predicted_high (* length 4 *)
  | 2 -> Guaranteed_avg (* length 3, links 1-3 *)
  | 3 -> Predicted_low (* length 3 *)
  | 4 | 5 -> Predicted_low (* length 3, links 2-4 *)
  | 6 -> Guaranteed_peak (* length 2, links 1-2 *)
  | 7 -> Predicted_high (* length 2, links 1-2 *)
  | 8 -> Guaranteed_peak (* length 2, links 3-4 *)
  | 9 -> Predicted_high (* length 2, links 3-4 *)
  | 10 -> Predicted_high (* link 1 *)
  | 11 | 12 | 13 -> Predicted_low (* link 1 *)
  | 14 -> Predicted_high (* link 2 *)
  | 15 -> Predicted_low (* link 2 *)
  | 16 -> Predicted_high (* link 3 *)
  | 17 -> Predicted_low (* link 3 *)
  | 18 -> Guaranteed_avg (* link 4 *)
  | 19 -> Predicted_high (* link 4 *)
  | 20 | 21 -> Predicted_low (* link 4 *)
  | n -> invalid_arg (Printf.sprintf "Scenario.table3_class_of: flow %d" n)

let table3_sample_flows =
  [
    ("Peak", 0);
    ("Peak", 6);
    ("Average", 2);
    ("Average", 18);
    ("High", 1);
    ("High", 7);
    ("Low", 3);
    ("Low", 11);
  ]

let table3_tcp_paths = [ (0, 2); (2, 4) ]

let default_avg_rate_pps = 85.
let token_bucket_depth_packets = 50.

let pp_service_class ppf = function
  | Guaranteed_peak -> Format.fprintf ppf "Guaranteed-Peak"
  | Guaranteed_avg -> Format.fprintf ppf "Guaranteed-Average"
  | Predicted_high -> Format.fprintf ppf "Predicted-High"
  | Predicted_low -> Format.fprintf ppf "Predicted-Low"
