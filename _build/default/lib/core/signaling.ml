open Ispn_sim
module Spec = Ispn_admission.Spec
module Bounds = Ispn_admission.Bounds
module Controller = Ispn_admission.Controller
module Meter = Ispn_admission.Meter
module Units = Ispn_util.Units

let control_packet_bits = 500
let ctrl_flow_base = 900_000

type established = {
  flow : int;
  cls : int option;
  advertised_bound : float option;
  setup_time : float;
  emit : Packet.t -> unit;
}

(* A setup in flight.  [granted] records, per completed hop, the link index
   and the class granted there (None = guaranteed), newest first — exactly
   what a rollback must undo. *)
type setup_ctx = {
  ctx_flow : int;
  ingress : int;
  egress : int;
  spec : Spec.request;
  own_bucket : Spec.bucket option;
  sink : Packet.t -> unit;
  on_result : (established, string) result -> unit;
  started_at : float;
  path : int list;
  mutable granted : (int * int option) list;
  mutable bound_acc : float;  (* summed class targets along the path *)
}

type flow_record = { fr_granted : (int * int option) list }

type t = {
  fab : Fabric.t;
  class_targets : float array;
  reverse_hop_delay : float;
  (* One single-link controller per link, owned by that link's upstream
     agent. *)
  ctrls : Controller.t array;
  pending_msgs : (int, setup_ctx * int) Hashtbl.t;  (* token -> (ctx, hop) *)
  mutable next_token : int;
  in_flight : (int, unit) Hashtbl.t;  (* flows with a setup travelling *)
  flows : (int, flow_record) Hashtbl.t;  (* established *)
  mutable established_count : int;
  mutable refused_count : int;
  mutable control_packets : int;
}

let fabric t = t.fab
let established_count t = t.established_count
let refused_count t = t.refused_count
let control_packets_sent t = t.control_packets

let engine t = Fabric.engine t.fab

(* Forward declaration dance: agents need [process] which needs [t]. *)
let rec process t token =
  match Hashtbl.find_opt t.pending_msgs token with
  | None -> ()  (* stale or duplicated control packet; ignore *)
  | Some (ctx, hop) ->
      Hashtbl.remove t.pending_msgs token;
      advance t ctx hop

(* Try to reserve at [hop] (an index into ctx.path); on success forward the
   setup message over that hop's link, or confirm if past the last hop. *)
and advance t ctx hop =
  if hop >= List.length ctx.path then confirm t ctx
  else begin
    let link = List.nth ctx.path hop in
    let ctrl = t.ctrls.(link) in
    match Controller.request ctrl ~flow:ctx.ctx_flow ~path:[ 0 ] (local_spec t ctx) with
    | Controller.Rejected reason -> refuse t ctx hop reason
    | Controller.Admitted { cls } ->
        let sched = Fabric.sched t.fab ~link in
        (match (ctx.spec, cls) with
        | Spec.Guaranteed { clock_rate_bps }, _ ->
            Csz_sched.add_guaranteed sched ~flow:ctx.ctx_flow ~clock_rate_bps
        | Spec.Predicted _, Some c ->
            Csz_sched.set_predicted sched ~flow:ctx.ctx_flow ~cls:c;
            ctx.bound_acc <- ctx.bound_acc +. t.class_targets.(c)
        | Spec.Predicted _, None | Spec.Datagram, _ -> ());
        ctx.granted <- (link, cls) :: ctx.granted;
        forward t ctx (hop + 1)
  end

(* The per-hop admission request: the end-to-end delay target is split
   evenly over the remaining hops so each local controller can pick a class
   for its own switch (the paper allows different levels per switch). *)
and local_spec t ctx =
  ignore t;
  match ctx.spec with
  | Spec.Predicted { bucket; target_delay; target_loss } ->
      let hops = List.length ctx.path in
      Spec.Predicted
        {
          bucket;
          target_delay = target_delay /. float_of_int hops;
          target_loss;
        }
  | (Spec.Guaranteed _ | Spec.Datagram) as s -> s

(* Put the setup message on the wire toward the next agent.  [hop] is the
   next hop to reserve; the message travels the link just reserved (the
   last element of ctx.granted). *)
and forward t ctx hop =
  let sent_over =
    match ctx.granted with
    | (link, _) :: _ -> link
    | [] -> assert false
  in
  let token = t.next_token in
  t.next_token <- t.next_token + 1;
  Hashtbl.replace t.pending_msgs token (ctx, hop);
  t.control_packets <- t.control_packets + 1;
  let pkt =
    Packet.make
      ~flow:(ctrl_flow_base + sent_over)
      ~seq:token ~size_bits:control_packet_bits
      ~created:(Engine.now (engine t))
      ()
  in
  (* Inject at the upstream switch of that link; the pre-installed control
     route carries it across exactly one hop, through the datagram class. *)
  Fabric.inject t.fab ~at_switch:(ctx.ingress + List.length ctx.granted - 1) pkt

and confirm t ctx =
  let hops = List.length ctx.path in
  let delay = t.reverse_hop_delay *. float_of_int hops in
  ignore
    (Engine.schedule_after (engine t) ~delay (fun () ->
         Hashtbl.remove t.in_flight ctx.ctx_flow;
         Hashtbl.replace t.flows ctx.ctx_flow { fr_granted = ctx.granted };
         t.established_count <- t.established_count + 1;
         Fabric.install_flow t.fab ~flow:ctx.ctx_flow ~ingress:ctx.ingress
           ~egress:ctx.egress ~sink:ctx.sink;
         let inject pkt = Fabric.inject t.fab ~at_switch:ctx.ingress pkt in
         let emit, cls, bound =
           match ctx.spec with
           | Spec.Guaranteed { clock_rate_bps } ->
               let bound =
                 Option.map
                   (fun bucket ->
                     Bounds.pg_bound ~bucket ~clock_rate_bps ~hops ())
                   ctx.own_bucket
               in
               (inject, None, bound)
           | Spec.Predicted { bucket; _ } ->
               let tb =
                 Ispn_traffic.Token_bucket.create ~rate_bps:bucket.Spec.rate_bps
                   ~depth_bits:bucket.Spec.depth_bits ()
               in
               let policer =
                 Ispn_traffic.Token_bucket.policer ~engine:(engine t)
                   ~bucket:tb ~mode:Ispn_traffic.Token_bucket.Drop ~next:inject
               in
               let ingress_cls =
                 match List.rev ctx.granted with
                 | (_, c) :: _ -> c
                 | [] -> None
               in
               ( Ispn_traffic.Token_bucket.admit_fn policer,
                 ingress_cls,
                 Some ctx.bound_acc )
           | Spec.Datagram -> (inject, None, None)
         in
         ctx.on_result
           (Ok
              {
                flow = ctx.ctx_flow;
                cls;
                advertised_bound = bound;
                setup_time = Engine.now (engine t) -. ctx.started_at;
                emit;
              })))

and refuse t ctx failed_hop reason =
  (* Roll back every reservation made so far, then report after the
     reverse trip. *)
  release_granted t ~flow:ctx.ctx_flow ctx.granted;
  let delay = t.reverse_hop_delay *. float_of_int (failed_hop + 1) in
  ignore
    (Engine.schedule_after (engine t) ~delay (fun () ->
         Hashtbl.remove t.in_flight ctx.ctx_flow;
         t.refused_count <- t.refused_count + 1;
         ctx.on_result
           (Error
              (Printf.sprintf "refused at hop %d: %s" (failed_hop + 1) reason))))

and release_granted t ~flow granted =
  List.iter
    (fun (link, cls) ->
      Controller.release t.ctrls.(link) ~flow;
      let sched = Fabric.sched t.fab ~link in
      match cls with
      | Some _ -> Csz_sched.clear_predicted sched ~flow
      | None -> (
          (* Guaranteed or datagram; removing an unknown guaranteed flow is
             the datagram case. *)
          try Csz_sched.remove_guaranteed sched ~flow
          with Invalid_argument _ -> ()))
    granted

let deploy ~fabric:fab ?(class_targets = [| 0.008; 0.064 |])
    ?(epoch_interval = 1.0) ?(reverse_hop_delay = 1e-3) () =
  let n_links = Fabric.n_links fab in
  (* Chain check: link i must be the one-hop path from switch i to i+1. *)
  for i = 0 to n_links - 1 do
    if Fabric.path fab ~ingress:i ~egress:(i + 1) <> Some [ i ] then
      invalid_arg "Signaling.deploy: chain fabrics only"
  done;
  let ctrls =
    Array.init n_links (fun _ ->
        Controller.create ~n_links:1 ~mu_bps:Units.link_rate_bps ~class_targets
          ())
  in
  let t =
    {
      fab;
      class_targets;
      reverse_hop_delay;
      ctrls;
      pending_msgs = Hashtbl.create 64;
      next_token = 0;
      in_flight = Hashtbl.create 16;
      flows = Hashtbl.create 32;
      established_count = 0;
      refused_count = 0;
      control_packets = 0;
    }
  in
  (* Control channels: one flow per link, delivered to the downstream
     agent, which resumes the setup from there. *)
  for link = 0 to n_links - 1 do
    Fabric.install_flow fab ~flow:(ctrl_flow_base + link) ~ingress:link
      ~egress:(link + 1)
      ~sink:(fun pkt -> process t pkt.Packet.seq)
  done;
  (* Measurement pumps, one per link's controller. *)
  let last_bits = Array.make n_links 0 in
  let rec pump () =
    for i = 0 to n_links - 1 do
      let bits = Csz_sched.realtime_bits_sent (Fabric.sched fab ~link:i) in
      Meter.note_util
        (Controller.meter ctrls.(i) ~link:0)
        (float_of_int (bits - last_bits.(i))
        /. (Units.link_rate_bps *. epoch_interval));
      last_bits.(i) <- bits;
      Controller.epoch ctrls.(i)
    done;
    ignore (Engine.schedule_after (engine t) ~delay:epoch_interval pump)
  in
  ignore (Engine.schedule_after (engine t) ~delay:epoch_interval pump);
  (* Per-class delay measurements feed each link's own controller. *)
  for i = 0 to n_links - 1 do
    let meter = Controller.meter ctrls.(i) ~link:0 in
    let k = Array.length class_targets in
    Csz_sched.set_delay_hook (Fabric.sched fab ~link:i) (fun ~cls delay ->
        if cls >= 0 && cls < k then Meter.note_delay meter ~cls delay)
  done;
  t

let setup t ~flow ~ingress ~egress ?own_bucket spec ~sink ~on_result =
  if Hashtbl.mem t.in_flight flow || Hashtbl.mem t.flows flow then
    invalid_arg
      (Printf.sprintf "Signaling.setup: flow %d already in flight" flow);
  match Fabric.path t.fab ~ingress ~egress with
  | None | Some [] -> on_result (Error "no route")
  | Some path ->
      Hashtbl.replace t.in_flight flow ();
      let ctx =
        {
          ctx_flow = flow;
          ingress;
          egress;
          spec;
          own_bucket;
          sink;
          on_result;
          started_at = Engine.now (engine t);
          path;
          granted = [];
          bound_acc = 0.;
        }
      in
      (* The ingress agent processes hop 0 locally, with no wire delay. *)
      advance t ctx 0

let teardown t ~flow =
  match Hashtbl.find_opt t.flows flow with
  | None -> ()
  | Some { fr_granted } ->
      Hashtbl.remove t.flows flow;
      t.established_count <- t.established_count - 1;
      release_granted t ~flow fr_granted
