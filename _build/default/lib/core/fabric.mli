(** A set of CSZ-scheduled links with path resolution — the substrate the
    {!Service} layer manages.

    The paper's experiments run on the Figure-1 chain, but the architecture
    is topology-agnostic: every output link runs the unified scheduler and
    admission control reasons per-link along a flow's path.  A fabric
    packages exactly that: the links (each with its {!Csz_sched} state),
    a path resolver from switch pairs to link sequences, and flow
    installation/injection. *)

type t

val engine : t -> Ispn_sim.Engine.t
val n_links : t -> int
val n_switches : t -> int
val sched : t -> link:int -> Csz_sched.t
val link : t -> int -> Ispn_sim.Link.t

val path : t -> ingress:int -> egress:int -> int list option
(** Link indices a flow from [ingress] to [egress] traverses; [None] when
    unreachable, [Some []] when [ingress = egress]. *)

val install_flow :
  t -> flow:int -> ingress:int -> egress:int -> sink:(Ispn_sim.Packet.t -> unit) ->
  unit
(** Raises [Failure] when no path exists. *)

val inject : t -> at_switch:int -> Ispn_sim.Packet.t -> unit

(** {2 Constructors}

    Both build every link with the unified scheduler; [config] defaults to
    {!Csz_sched.default_config} with the given link rate and class count. *)

val chain :
  engine:Ispn_sim.Engine.t ->
  n_switches:int ->
  ?link_rate_bps:float ->
  ?n_classes:int ->
  ?buffer_packets:int ->
  unit ->
  t
(** The Figure-1 shape: switches 0..n-1, link [i] from switch [i] to
    [i+1]. *)

val topology :
  engine:Ispn_sim.Engine.t ->
  n_switches:int ->
  links:(int * int) list ->
  ?link_rate_bps:float ->
  ?n_classes:int ->
  ?buffer_packets:int ->
  unit ->
  t
(** Arbitrary directed links (shortest-path routed).  Duplicate links and
    self-loops are rejected as in {!Ispn_sim.Topology.connect}. *)
