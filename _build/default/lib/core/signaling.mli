(** Hop-by-hop service establishment — the paper's fourth architectural
    component, realized.

    Section 1 names "the means by which the traffic and service commitments
    get established" as the final part of the architecture and Section 9
    explicitly leaves "the negotiation process" unspecified.  This module
    supplies an example mechanism in the spirit the authors' line of work
    later took (RSVP): a {e setup} message carrying the service request
    travels the flow's path as a real control packet through each link's
    datagram class, each switch's agent runs the Section 9 admission test
    for its own outgoing link and installs the reservation before
    forwarding; the egress agent returns a confirmation, and a mid-path
    refusal sends a teardown back along the hops already reserved, rolling
    them back.

    Consequences the instant central {!Service} cannot exhibit, and tests
    do: setup takes real network time (it queues behind data traffic);
    concurrent setups race and serialize in arrival order at each hop; a
    refusal at hop [k] leaves no residue at hops [< k].

    Control packets are 500 bits and travel in-band; confirmations and
    teardowns return on the uncongested reverse path (fixed per-hop delay),
    consistent with the paper's one-directional data plane. *)

type t
(** A fabric with a signaling agent deployed at every switch. *)

val deploy :
  fabric:Fabric.t ->
  ?class_targets:float array ->
  ?epoch_interval:float ->
  ?reverse_hop_delay:float ->
  unit ->
  t
(** Attach agents to every switch of [fabric] (each owns the admission
    state of its outgoing links) and start their measurement pumps.
    [class_targets] defaults to [| 0.008; 0.064 |];
    [reverse_hop_delay] to 1 ms. *)

val fabric : t -> Fabric.t

type established = {
  flow : int;
  cls : int option;  (** Predicted class, as granted hop-by-hop. *)
  advertised_bound : float option;
      (** Guaranteed: Parekh-Gallager (if [own_bucket] given); predicted:
          summed class targets. *)
  setup_time : float;  (** Seconds the three-way establishment took. *)
  emit : Ispn_sim.Packet.t -> unit;  (** Edge-policed injection. *)
}

val setup :
  t ->
  flow:int ->
  ingress:int ->
  egress:int ->
  ?own_bucket:Ispn_admission.Spec.bucket ->
  Ispn_admission.Spec.request ->
  sink:(Ispn_sim.Packet.t -> unit) ->
  on_result:((established, string) result -> unit) ->
  unit
(** Launch the setup message; [on_result] fires when the confirmation (or
    the refusal) arrives back at the ingress, which takes at least one
    control-packet transmission per hop.  Raises [Invalid_argument] when a
    setup for [flow] is already in flight. *)

val teardown : t -> flow:int -> unit
(** Release an established flow's reservations at every hop (immediate;
    teardown signaling latency is not modelled on the release side). *)

(** {2 Introspection} *)

val established_count : t -> int
val refused_count : t -> int
val control_packets_sent : t -> int
(** Setup messages put on the wire (per hop). *)
