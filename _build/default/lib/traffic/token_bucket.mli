(** Token-bucket traffic filter (Section 4).

    A bucket fills with tokens at rate [r] up to depth [b]; a packet of size
    [p] conforms iff the bucket holds at least [p] tokens, which the packet
    then consumes.  This is exactly the paper's definition
    [n_i = min (b, n_{i-1} + (t_i - t_{i-1}) r - p_i) >= 0].

    Enforcement happens only at the network edge (first switch): the
    Appendix drops nonconforming packets at the source, and Section 8
    explains why conformance is never re-checked at later switches.  The
    paper's sources are policed by an [(A, 50 packets)] bucket, dropping
    about 2% of generated packets. *)

type t

val create : rate_bps:float -> depth_bits:float -> ?initial_bits:float ->
  unit -> t
(** The bucket starts full unless [initial_bits] says otherwise. *)

val rate_bps : t -> float
val depth_bits : t -> float

val conforms : t -> now:float -> bits:int -> bool
(** Refill up to [now]; if at least [bits] tokens are present, consume them
    and return [true], else leave the bucket unchanged and return [false].
    [now] must not go backwards. *)

val level_bits : t -> now:float -> float
(** Tokens currently in the bucket (after refill to [now]). *)

type mode =
  | Drop  (** Discard nonconforming packets (the Appendix behaviour). *)
  | Pass  (** Count violations but forward anyway (monitoring only). *)

type policer

val policer :
  engine:Ispn_sim.Engine.t -> bucket:t -> mode:mode ->
  next:(Ispn_sim.Packet.t -> unit) -> policer

val police : policer -> Ispn_sim.Packet.t -> unit
(** Feed one packet through the filter. *)

val admit_fn : policer -> Ispn_sim.Packet.t -> unit
(** [police] partially applied, shaped for use as a source's [emit]. *)

val offered : policer -> int
val dropped : policer -> int
val violations : policer -> int
(** Nonconforming packets seen (equals [dropped] in [Drop] mode). *)
