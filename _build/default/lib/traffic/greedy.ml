open Ispn_sim
open Ispn_util

let create ~engine ~flow ~rate_pps ~burst_packets
    ?(packet_bits = Units.packet_bits) ?(overdrive = 1.0) ~emit () =
  assert (rate_pps > 0. && burst_packets >= 0 && overdrive > 0.);
  let running = ref false in
  let count = ref 0 in
  let next_seq = ref 0 in
  let send () =
    let pkt =
      Packet.make ~flow ~seq:!next_seq ~size_bits:packet_bits
        ~created:(Engine.now engine) ()
    in
    incr next_seq;
    incr count;
    emit pkt
  in
  let rec steady () =
    if !running then begin
      send ();
      ignore
        (Engine.schedule_after engine
           ~delay:(1. /. (rate_pps *. overdrive))
           steady)
    end
  in
  let start () =
    if not !running then begin
      running := true;
      (* The opening burst drains the full bucket instantaneously. *)
      for _ = 1 to burst_packets do
        send ()
      done;
      ignore
        (Engine.schedule_after engine
           ~delay:(1. /. (rate_pps *. overdrive))
           steady)
    end
  in
  let stop () = running := false in
  { Source.start; stop; generated = (fun () -> !count) }
