(** Leaky-bucket shaper.

    Section 4's intuition for the Parekh-Gallager bound: putting a flow
    through a leaky bucket of its clock rate at the network edge concentrates
    *all* of its queueing delay in the shaper, after which it sails through a
    conforming WFQ network.  This component delays (rather than drops)
    packets so that the output never exceeds rate [r] with burst tolerance
    [depth]; tests use it to demonstrate that equivalence. *)

type t

val create :
  engine:Ispn_sim.Engine.t ->
  rate_bps:float ->
  ?depth_bits:float ->
  ?max_queue:int ->
  next:(Ispn_sim.Packet.t -> unit) ->
  unit ->
  t
(** [depth_bits] is the burst allowance (default: one 1000-bit packet, i.e.
    a pure rate shaper).  [max_queue] bounds the holding queue (default
    unbounded); overflow packets are dropped. *)

val send : t -> Ispn_sim.Packet.t -> unit
val queued : t -> int
val dropped : t -> int
val forwarded : t -> int
