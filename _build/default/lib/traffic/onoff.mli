(** Two-state Markov (on/off) source — the paper's Appendix process.

    In each burst period a geometrically distributed number of packets
    (mean [burst_mean], the paper's [B = 5]) is generated at peak rate [P]
    packets/s; between bursts the source idles for an exponentially
    distributed period whose mean [I] is derived from the average rate [A]
    by [1/A = I/B + 1/P].  The paper sets [P = 2A] so that the peak rate is
    double the average.

    All simulated real-time flows in Tables 1-3 use this process with
    [A = 85] packets/s. *)

val create :
  engine:Ispn_sim.Engine.t ->
  prng:Ispn_util.Prng.t ->
  flow:int ->
  avg_rate_pps:float ->
  ?peak_rate_pps:float ->
  ?burst_mean:float ->
  ?packet_bits:int ->
  emit:(Ispn_sim.Packet.t -> unit) ->
  unit ->
  Source.t
(** [peak_rate_pps] defaults to [2 *. avg_rate_pps]; [burst_mean] to [5.];
    [packet_bits] to 1000.  Requires [peak_rate_pps > avg_rate_pps > 0]. *)

val idle_mean :
  avg_rate_pps:float -> peak_rate_pps:float -> burst_mean:float -> float
(** The mean idle period implied by the Appendix relation
    [1/A = I/B + 1/P]; exposed for tests. *)
