(** Greedy (worst-case) source for a token bucket.

    Section 4 notes the Parekh-Gallager bounds "are strict, in that they can
    be realized with a set of greedy sources which keep their token buckets
    empty."  This source does exactly that: it dumps a [depth]-sized burst
    at start-up and then emits at exactly the token rate, so the bucket is
    empty at all times.  Tests and the isolation bench use it both to probe
    bound tightness and as the canonical *misbehaving* source when its
    emissions are configured above the declared rate. *)

val create :
  engine:Ispn_sim.Engine.t ->
  flow:int ->
  rate_pps:float ->
  burst_packets:int ->
  ?packet_bits:int ->
  ?overdrive:float ->
  emit:(Ispn_sim.Packet.t -> unit) ->
  unit ->
  Source.t
(** [overdrive] scales the steady emission rate (default 1.0 = exactly
    conforming; 2.0 sends at twice the declared rate, i.e. misbehaves). *)
