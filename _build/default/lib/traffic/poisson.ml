open Ispn_sim
open Ispn_util

let create ~engine ~prng ~flow ~rate_pps ?(packet_bits = Units.packet_bits)
    ~emit () =
  assert (rate_pps > 0.);
  let running = ref false in
  let count = ref 0 in
  let next_seq = ref 0 in
  let rec tick () =
    if !running then begin
      let pkt =
        Packet.make ~flow ~seq:!next_seq ~size_bits:packet_bits
          ~created:(Engine.now engine) ()
      in
      incr next_seq;
      incr count;
      emit pkt;
      let gap = Dist.exponential prng ~mean:(1. /. rate_pps) in
      ignore (Engine.schedule_after engine ~delay:gap tick)
    end
  in
  let start () =
    if not !running then begin
      running := true;
      let gap = Dist.exponential prng ~mean:(1. /. rate_pps) in
      ignore (Engine.schedule_after engine ~delay:gap tick)
    end
  in
  let stop () = running := false in
  { Source.start; stop; generated = (fun () -> !count) }
