(** Poisson source: exponential inter-arrival times.

    Not used in the paper's tables (its real-time sources are on/off Markov)
    but a standard reference workload for the admission-control and
    bake-off extension experiments. *)

val create :
  engine:Ispn_sim.Engine.t ->
  prng:Ispn_util.Prng.t ->
  flow:int ->
  rate_pps:float ->
  ?packet_bits:int ->
  emit:(Ispn_sim.Packet.t -> unit) ->
  unit ->
  Source.t
