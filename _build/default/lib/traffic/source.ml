type t = {
  start : unit -> unit;
  stop : unit -> unit;
  generated : unit -> int;
}

let null = { start = (fun () -> ()); stop = (fun () -> ()); generated = (fun () -> 0) }
