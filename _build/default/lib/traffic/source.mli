(** Common shape of a traffic generator.

    A source, once started, schedules its own packet emissions on the engine
    and hands each packet to the [emit] callback it was built with (typically
    a token-bucket filter feeding a network ingress switch). *)

type t = {
  start : unit -> unit;  (** Begin generating at the current sim time. *)
  stop : unit -> unit;  (** Cease generating; idempotent. *)
  generated : unit -> int;  (** Packets emitted so far. *)
}

val null : t
(** A source that never sends; placeholder in scenario tables. *)
