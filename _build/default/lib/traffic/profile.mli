(** Empirical traffic characterization: the paper's [b(r)] function.

    Section 4 defines, for a packet generation process, the non-increasing
    function [b(r)] as the minimal bucket depth such that the process
    conforms to an [(r, b(r))] token-bucket filter.  A guaranteed-service
    client "uses its known value for b(r) to compute its worst case
    queueing delay.  If the delay is unsuitable, it must request a higher
    clock rate" — this module is that computation: record (or replay) an
    arrival sequence, then query depths and delay bounds as a function of
    the clock rate.

    The recorder keeps only O(1) state per candidate rate by running one
    virtual bucket per queried rate over the recorded arrivals. *)

type t

val create : unit -> t
val record : t -> time:float -> bits:int -> unit
(** Append one packet; times must be non-decreasing. *)

val packets : t -> int
val duration : t -> float
(** Time span from the first to the last recorded packet. *)

val total_bits : t -> int
val mean_rate_bps : t -> float
(** [total_bits / duration]; 0 with fewer than two packets. *)

val peak_rate_bps : t -> float
(** Highest two-packet instantaneous rate observed. *)

val iter : t -> (time:float -> bits:int -> unit) -> unit
(** Visit the recorded packets in order. *)

val min_depth_bits : t -> rate_bps:float -> float
(** [b(r)]: the smallest depth (at least one packet) such that every
    recorded packet conforms.  Raises [Invalid_argument] on a non-positive
    rate or an empty recording. *)

val delay_bound : t -> rate_bps:float -> hops:int -> float
(** The Parekh-Gallager bound [ (b(r) + (hops-1) Lmax) / r ] this process
    would receive at clock rate [r] (seconds). *)

val clock_rate_for_delay :
  t -> target:float -> hops:int -> ?tolerance_bps:float -> unit ->
  float option
(** Smallest clock rate (within [tolerance_bps], default 1000) whose delay
    bound meets [target] seconds, found by bisection between the mean rate
    and the peak rate; [None] when even the peak rate is not enough (the
    bound never falls below roughly one packet time per hop). *)
