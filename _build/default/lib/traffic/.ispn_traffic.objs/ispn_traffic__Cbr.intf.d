lib/traffic/cbr.mli: Ispn_sim Ispn_util Source
