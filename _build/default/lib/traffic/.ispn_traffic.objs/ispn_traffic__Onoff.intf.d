lib/traffic/onoff.mli: Ispn_sim Ispn_util Source
