lib/traffic/greedy.mli: Ispn_sim Source
