lib/traffic/source.mli:
