lib/traffic/profile.ml: Ispn_util Stdlib
