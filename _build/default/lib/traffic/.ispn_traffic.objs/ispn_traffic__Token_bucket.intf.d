lib/traffic/token_bucket.mli: Ispn_sim
