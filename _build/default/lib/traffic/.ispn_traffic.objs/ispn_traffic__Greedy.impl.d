lib/traffic/greedy.ml: Engine Ispn_sim Ispn_util Packet Source Units
