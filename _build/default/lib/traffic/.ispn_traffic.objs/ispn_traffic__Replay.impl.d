lib/traffic/replay.ml: Array Engine Float Ispn_sim List Packet Profile Source Stdlib
