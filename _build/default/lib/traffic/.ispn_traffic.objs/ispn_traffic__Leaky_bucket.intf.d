lib/traffic/leaky_bucket.mli: Ispn_sim
