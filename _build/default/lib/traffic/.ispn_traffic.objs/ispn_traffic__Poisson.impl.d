lib/traffic/poisson.ml: Dist Engine Ispn_sim Ispn_util Packet Source Units
