lib/traffic/onoff.ml: Dist Engine Ispn_sim Ispn_util Option Packet Source Units
