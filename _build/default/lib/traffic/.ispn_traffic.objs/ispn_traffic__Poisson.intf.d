lib/traffic/poisson.mli: Ispn_sim Ispn_util Source
