lib/traffic/source.ml:
