lib/traffic/profile.mli:
