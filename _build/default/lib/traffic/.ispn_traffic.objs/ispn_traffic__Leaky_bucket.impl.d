lib/traffic/leaky_bucket.ml: Engine Ispn_sim Ispn_util Option Packet Queue Stdlib Token_bucket
