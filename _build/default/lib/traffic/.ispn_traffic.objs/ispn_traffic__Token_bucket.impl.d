lib/traffic/token_bucket.ml: Ispn_sim Option Stdlib
