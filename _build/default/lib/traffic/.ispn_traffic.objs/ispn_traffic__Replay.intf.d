lib/traffic/replay.mli: Ispn_sim Profile Source
