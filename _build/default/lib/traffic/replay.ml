open Ispn_sim

let validate schedule =
  let rec go last = function
    | [] -> ()
    | (t, bits) :: rest ->
        if t < last then invalid_arg "Replay.create: offsets decrease";
        if bits <= 0 then invalid_arg "Replay.create: non-positive size";
        go t rest
  in
  go 0. schedule

let mean_gap schedule =
  match schedule with
  | [] | [ _ ] -> 1e-6
  | (first, _) :: _ ->
      let last, _ = List.nth schedule (List.length schedule - 1) in
      Stdlib.max 1e-6 ((last -. first) /. float_of_int (List.length schedule - 1))

let create ~engine ~flow ~schedule ?(loop = false) ~emit () =
  validate schedule;
  let arr = Array.of_list schedule in
  let running = ref false in
  let count = ref 0 in
  let gap = mean_gap schedule in
  (* [fire base i] emits packet [i] of the current cycle (scheduled
     relative to [base]). *)
  let rec fire base i () =
    if !running then begin
      let _, bits = arr.(i) in
      emit (Packet.make ~flow ~seq:!count ~size_bits:bits ~created:(Engine.now engine) ());
      incr count;
      if i + 1 < Array.length arr then
        schedule_packet base (i + 1)
      else if loop then begin
        let last_offset, _ = arr.(Array.length arr - 1) in
        schedule_cycle (base +. last_offset +. gap)
      end
    end
  and schedule_packet base i =
    let offset, _ = arr.(i) in
    let at = Stdlib.max (Engine.now engine) (base +. offset) in
    ignore (Engine.schedule engine ~at (fire base i))
  and schedule_cycle base = schedule_packet base 0 in
  let start () =
    if (not !running) && Array.length arr > 0 then begin
      running := true;
      let base = Engine.now engine -. fst arr.(0) in
      schedule_cycle base
    end
  in
  let stop () = running := false in
  { Source.start; stop; generated = (fun () -> !count) }

let of_profile profile =
  let acc = ref [] in
  let base = ref nan in
  Profile.iter profile (fun ~time ~bits ->
      if Float.is_nan !base then base := time;
      acc := (time -. !base, bits) :: !acc);
  List.rev !acc
