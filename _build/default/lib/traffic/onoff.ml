open Ispn_sim
open Ispn_util

let idle_mean ~avg_rate_pps ~peak_rate_pps ~burst_mean =
  burst_mean *. ((1. /. avg_rate_pps) -. (1. /. peak_rate_pps))

let create ~engine ~prng ~flow ~avg_rate_pps ?peak_rate_pps ?(burst_mean = 5.)
    ?(packet_bits = Units.packet_bits) ~emit () =
  let peak = Option.value peak_rate_pps ~default:(2. *. avg_rate_pps) in
  assert (avg_rate_pps > 0. && peak > avg_rate_pps);
  let idle = idle_mean ~avg_rate_pps ~peak_rate_pps:peak ~burst_mean in
  assert (idle > 0.);
  let running = ref false in
  let count = ref 0 in
  let next_seq = ref 0 in
  let send () =
    let pkt =
      Packet.make ~flow ~seq:!next_seq ~size_bits:packet_bits
        ~created:(Engine.now engine) ()
    in
    incr next_seq;
    incr count;
    emit pkt
  in
  (* [burst remaining] emits one packet then either continues the burst at
     the peak-rate spacing or idles for an exponential period.  The idle
     clock starts after the last packet's peak-rate slot, so a burst of N
     packets occupies N/P seconds and the mean rate satisfies the Appendix
     relation 1/A = I/B + 1/P exactly. *)
  let rec burst remaining =
    if !running then begin
      send ();
      let continue () =
        if remaining > 1 then burst (remaining - 1) else go_idle ()
      in
      ignore (Engine.schedule_after engine ~delay:(1. /. peak) continue)
    end
  and go_idle () =
    let pause = Dist.exponential prng ~mean:idle in
    ignore
      (Engine.schedule_after engine ~delay:pause (fun () -> start_burst ()))
  and start_burst () =
    if !running then burst (Dist.geometric prng ~mean:burst_mean)
  in
  let start () =
    if not !running then begin
      running := true;
      (* Begin in the idle state so sources with distinct PRNG streams
         desynchronize immediately. *)
      go_idle ()
    end
  in
  let stop () = running := false in
  { Source.start; stop; generated = (fun () -> !count) }
