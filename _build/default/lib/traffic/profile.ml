type t = {
  times : Ispn_util.Fvec.t;
  sizes : Ispn_util.Fvec.t;  (* bits, stored as floats *)
  mutable total_bits : int;
  mutable max_packet_bits : int;
  mutable peak_rate : float;
}

let create () =
  {
    times = Ispn_util.Fvec.create ();
    sizes = Ispn_util.Fvec.create ();
    total_bits = 0;
    max_packet_bits = 0;
    peak_rate = 0.;
  }

let packets t = Ispn_util.Fvec.length t.times

let record t ~time ~bits =
  assert (bits > 0);
  let n = packets t in
  if n > 0 then begin
    let last = Ispn_util.Fvec.get t.times (n - 1) in
    if time < last then invalid_arg "Profile.record: time went backwards";
    let gap = time -. last in
    if gap > 0. then
      t.peak_rate <- Stdlib.max t.peak_rate (float_of_int bits /. gap)
  end;
  Ispn_util.Fvec.push t.times time;
  Ispn_util.Fvec.push t.sizes (float_of_int bits);
  t.total_bits <- t.total_bits + bits;
  t.max_packet_bits <- Stdlib.max t.max_packet_bits bits

let duration t =
  let n = packets t in
  if n < 2 then 0.
  else Ispn_util.Fvec.get t.times (n - 1) -. Ispn_util.Fvec.get t.times 0

let total_bits t = t.total_bits

let iter t f =
  for i = 0 to packets t - 1 do
    f
      ~time:(Ispn_util.Fvec.get t.times i)
      ~bits:(int_of_float (Ispn_util.Fvec.get t.sizes i))
  done

let mean_rate_bps t =
  let d = duration t in
  if d <= 0. then 0. else float_of_int t.total_bits /. d

let peak_rate_bps t = t.peak_rate

(* One pass of the paper's recurrence at rate r, tracking the worst
   shortfall: b(r) = max_i (consumed_i - refilled_i), i.e. the depth needed
   so that n_i >= 0 throughout. *)
let min_depth_bits t ~rate_bps =
  if rate_bps <= 0. then invalid_arg "Profile.min_depth_bits: rate";
  let n = packets t in
  if n = 0 then invalid_arg "Profile.min_depth_bits: empty profile";
  (* Simulate a bucket of infinite depth starting from level 0 at the first
     arrival; the minimal depth is the largest deficit below the start. *)
  let level = ref 0. in
  let worst = ref 0. in
  let last = ref (Ispn_util.Fvec.get t.times 0) in
  for i = 0 to n - 1 do
    let time = Ispn_util.Fvec.get t.times i in
    let bits = Ispn_util.Fvec.get t.sizes i in
    (* Refill (uncapped: depth is what we are solving for; the binding
       constraint is the running deficit, and not capping only weakens
       later deficits, so the result is exact for the capped bucket too
       when the start level equals the depth). *)
    level := Stdlib.min 0. (!level +. ((time -. !last) *. rate_bps));
    last := time;
    level := !level -. bits;
    if -. !level > !worst then worst := -. !level
  done;
  Stdlib.max !worst (float_of_int t.max_packet_bits)

let delay_bound t ~rate_bps ~hops =
  assert (hops >= 1);
  let b = min_depth_bits t ~rate_bps in
  (b +. float_of_int ((hops - 1) * t.max_packet_bits)) /. rate_bps

let clock_rate_for_delay t ~target ~hops ?(tolerance_bps = 1000.) () =
  assert (target > 0. && tolerance_bps > 0.);
  let lo = Stdlib.max 1. (mean_rate_bps t) in
  let hi = Stdlib.max lo (peak_rate_bps t) in
  if delay_bound t ~rate_bps:hi ~hops > target then None
  else begin
    (* delay_bound is non-increasing in the rate, so bisection applies. *)
    let rec bisect lo hi =
      if hi -. lo <= tolerance_bps then hi
      else begin
        let mid = (lo +. hi) /. 2. in
        if delay_bound t ~rate_bps:mid ~hops <= target then bisect lo mid
        else bisect mid hi
      end
    in
    Some (if delay_bound t ~rate_bps:lo ~hops <= target then lo else bisect lo hi)
  end
