(** Trace-driven source: replay a recorded packet schedule.

    The paper notes "there is no widely accepted set of benchmarks for
    real-time loads"; replaying captured traces is the standard answer.  A
    replay source emits packets at recorded offsets from its start time,
    optionally in a loop (re-basing the clock each cycle), so one recorded
    burst pattern can drive an arbitrarily long simulation. *)

val create :
  engine:Ispn_sim.Engine.t ->
  flow:int ->
  schedule:(float * int) list ->
  ?loop:bool ->
  emit:(Ispn_sim.Packet.t -> unit) ->
  unit ->
  Source.t
(** [schedule] is a list of [(offset_seconds, size_bits)] pairs with
    non-decreasing non-negative offsets (raises [Invalid_argument]
    otherwise; an empty schedule is allowed and emits nothing).  With
    [loop] (default false) the schedule repeats, each cycle starting one
    inter-cycle gap (the mean inter-packet gap, at least one microsecond)
    after the previous cycle's last packet. *)

val of_profile : Profile.t -> (float * int) list
(** Turn a recorded {!Profile} into a replayable schedule (offsets re-based
    to the first packet). *)
