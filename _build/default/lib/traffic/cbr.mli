(** Constant-bit-rate source.

    One packet every [1 / rate_pps] seconds — the classic rigid codec the
    paper contrasts with bursty sources.  Used in examples and in tests
    where deterministic arrivals make assertions exact. *)

val create :
  engine:Ispn_sim.Engine.t ->
  flow:int ->
  rate_pps:float ->
  ?packet_bits:int ->
  ?jitter:(Ispn_util.Prng.t * float) ->
  emit:(Ispn_sim.Packet.t -> unit) ->
  unit ->
  Source.t
(** [jitter (prng, j)] adds a uniform perturbation in [\[0, j)] seconds to
    each inter-packet gap, for tests that need to break phase locking. *)
