(** Store-and-forward output link.

    A link serializes packets at a fixed bit rate from its qdisc, then hands
    them to the downstream receiver after a propagation delay.  The paper's
    switches are output-queued: each inter-switch link has one qdisc and a
    200-packet buffer.

    Per-hop queueing delay is defined as the time from arrival at the qdisc
    to the start of transmission (the scheduling-dependent part of the
    delay); the link accumulates it into [Packet.qdelay_total], which is the
    quantity the paper's tables report summed over a path. *)

type t

val create :
  engine:Engine.t ->
  rate_bps:float ->
  ?prop_delay:float ->
  qdisc:Qdisc.t ->
  name:string ->
  unit ->
  t
(** The receiver is attached afterwards with {!set_receiver} so that
    topologies with cycles of references can be wired up. *)

val set_receiver : t -> (Packet.t -> unit) -> unit
val name : t -> string
val qdisc : t -> Qdisc.t

val send : t -> Packet.t -> unit
(** Enqueue a packet for transmission; starts the transmitter if idle.
    Raises [Failure] if no receiver has been attached. *)

val set_drop_hook : t -> (Packet.t -> unit) -> unit
(** Called for every packet rejected by the qdisc (buffer overflow). *)

(** {2 Accounting} *)

val sent : t -> int
val dropped : t -> int
val busy_time : t -> float
(** Total seconds spent transmitting. *)

val utilization : t -> elapsed:float -> float
(** [busy_time /. elapsed]. *)

val wait_stats : t -> Ispn_util.Stats.t
(** Per-hop queueing (waiting) delays of all packets sent on this link. *)
