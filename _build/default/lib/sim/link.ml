type t = {
  engine : Engine.t;
  rate_bps : float;
  prop_delay : float;
  qdisc : Qdisc.t;
  link_name : string;
  mutable receiver : (Packet.t -> unit) option;
  mutable drop_hook : (Packet.t -> unit) option;
  mutable busy : bool;
  mutable sent : int;
  mutable dropped : int;
  mutable busy_time : float;
  waits : Ispn_util.Stats.t;
}

let set_receiver t f = t.receiver <- Some f
let name t = t.link_name
let qdisc t = t.qdisc
let set_drop_hook t f = t.drop_hook <- Some f

let deliver t pkt =
  match t.receiver with
  | Some f -> f pkt
  | None -> failwith ("Link " ^ t.link_name ^ ": no receiver attached")

let rec start_transmission t =
  let now = Engine.now t.engine in
  match t.qdisc.Qdisc.dequeue ~now with
  | None -> t.busy <- false
  | Some pkt ->
      t.busy <- true;
      let wait = now -. pkt.Packet.enqueued_at in
      (* A scheduler may not dequeue a packet before it arrived. *)
      assert (wait >= -1e-9);
      let wait = Stdlib.max 0. wait in
      pkt.Packet.qdelay_total <- pkt.Packet.qdelay_total +. wait;
      Ispn_util.Stats.add t.waits wait;
      let tx_time = float_of_int pkt.Packet.size_bits /. t.rate_bps in
      t.busy_time <- t.busy_time +. tx_time;
      let finish () =
        t.sent <- t.sent + 1;
        if t.prop_delay = 0. then deliver t pkt
        else
          ignore
            (Engine.schedule_after t.engine ~delay:t.prop_delay (fun () ->
                 deliver t pkt));
        start_transmission t
      in
      ignore (Engine.schedule_after t.engine ~delay:tx_time finish)

let create ~engine ~rate_bps ?(prop_delay = 0.) ~qdisc ~name () =
  assert (rate_bps > 0. && prop_delay >= 0.);
  let t =
    {
      engine;
      rate_bps;
      prop_delay;
      qdisc;
      link_name = name;
      receiver = None;
      drop_hook = None;
      busy = false;
      sent = 0;
      dropped = 0;
      busy_time = 0.;
      waits = Ispn_util.Stats.create ();
    }
  in
  (* Non-work-conserving schedulers call this back when a held packet
     becomes eligible while the transmitter is idle. *)
  qdisc.Qdisc.attach_waker (fun () -> if not t.busy then start_transmission t);
  t

let send t pkt =
  let now = Engine.now t.engine in
  pkt.Packet.enqueued_at <- now;
  if t.qdisc.Qdisc.enqueue ~now pkt then begin
    if not t.busy then start_transmission t
  end
  else begin
    t.dropped <- t.dropped + 1;
    Logs.debug ~src:Ispn_util.Log.link (fun m ->
        m "%s: buffer full, dropping flow %d seq %d at t=%.6f" t.link_name
          pkt.Packet.flow pkt.Packet.seq now);
    match t.drop_hook with Some f -> f pkt | None -> ()
  end

let sent t = t.sent
let dropped t = t.dropped
let busy_time t = t.busy_time
let utilization t ~elapsed = if elapsed <= 0. then 0. else t.busy_time /. elapsed
let wait_stats t = t.waits
