(** Bounded in-memory event trace.

    A cheap debugging aid: components append timestamped lines, the trace
    keeps the most recent [capacity] of them.  Tests use it to assert event
    orderings without parsing logs. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 4096 entries. *)

val record : t -> time:float -> string -> unit
val entries : t -> (float * string) list
(** Oldest first. *)

val length : t -> int
val clear : t -> unit
val pp : Format.formatter -> t -> unit
