(** Per-flow delay measurement at the receiver.

    Records, for every delivered packet, the total queueing delay the packet
    accumulated along its path ([Packet.qdelay_total]) — the quantity the
    paper's Tables 1-3 report — plus end-to-end latency
    ([arrival - created]).  Values are stored in seconds; use {!to_units} or
    the report helpers to convert to per-packet transmission-time units. *)

type t

val create : unit -> t

val sink : t -> engine:Engine.t -> Packet.t -> unit
(** Deliver one packet into the probe. *)

val port : t -> engine:Engine.t -> Node.port
(** Convenience: a [Node.Deliver] port feeding this probe. *)

val received : t -> int

val qdelays : t -> Ispn_util.Fvec.t
(** Accumulated queueing delays, one per packet, in seconds, arrival
    order. *)

val latencies : t -> Ispn_util.Fvec.t
(** End-to-end (creation to delivery) latencies in seconds. *)

(** {2 Summaries in paper units}

    All three convert seconds into per-packet transmission times using the
    standard 1 Mbit/s / 1000-bit configuration unless overridden. *)

val mean_qdelay : ?link_rate_bps:float -> ?packet_bits:int -> t -> float
val percentile_qdelay :
  ?link_rate_bps:float -> ?packet_bits:int -> t -> float -> float
(** [percentile_qdelay t 99.9] is the tail statistic the paper tabulates.
    Raises [Invalid_argument] when no packet has arrived. *)

val max_qdelay : ?link_rate_bps:float -> ?packet_bits:int -> t -> float
