type event = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

type t = {
  mutable clock : float;
  mutable next_seq : int;
  mutable live : int;
  heap : event Ispn_util.Heap.t;
}

let compare_event a b =
  match compare a.time b.time with 0 -> compare a.seq b.seq | c -> c

let create () =
  {
    clock = 0.;
    next_seq = 0;
    live = 0;
    heap = Ispn_util.Heap.create ~cmp:compare_event ();
  }

let now t = t.clock

let schedule t ~at action =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%g is before now=%g" at t.clock);
  let ev = { time = at; seq = t.next_seq; action; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  Ispn_util.Heap.push t.heap ev;
  ev

let schedule_after t ~delay action =
  if delay < 0. then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(t.clock +. delay) action

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1
  end

let pending t = t.live

let step t =
  match Ispn_util.Heap.pop t.heap with
  | None -> false
  | Some ev ->
      if ev.cancelled then true
      else begin
        t.live <- t.live - 1;
        t.clock <- ev.time;
        ev.action ();
        true
      end

let run t ~until =
  let rec loop () =
    match Ispn_util.Heap.peek t.heap with
    | Some ev when ev.time <= until ->
        ignore (step t);
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  t.clock <- Stdlib.max t.clock until

let run_until_idle t ~max_events =
  let rec loop n =
    if n > max_events then failwith "Engine.run_until_idle: event budget blown"
    else if step t then loop (n + 1)
  in
  loop 0
